# Development entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint lint-hot alloc-check snapshot-check test race race-kernel race-obs race-faults race-txn cover shape bench bench-kernel bench-obs bench-compare bench-smoke experiments paper synth examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism, invariant & hot-path purity rules
# (cmd/vichar-lint): no map ranges or ambient entropy in the simulator
# core, no dropped errors, panics only in constructors or at annotated
# invariants, no allocation on the tick path beyond the committed
# lint.baseline ratchet, nil-guarded probes, and shard-owned writes in
# phase functions (DESIGN.md §9, §13). Runs go vet first.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/vichar-lint ./...

# The hot-path purity contract cross-checked against the compiler:
# the AST pass's hot set and explanations must account for every heap
# decision `go build -gcflags='-m -m'` reports in a hot function.
lint-hot:
	$(GO) run ./cmd/vichar-lint -escape-audit ./...

# The runtime half of the purity contract: Network.Step performs zero
# heap allocations at steady state for all four buffer architectures.
alloc-check:
	$(GO) test ./internal/network/ -run TestStepAllocFree -count=1 -v

# The bit-identical resume contract (DESIGN.md §15): snapshot at C,
# restore, run to completion — results, latencies, counters and flit
# events byte-equal to the straight-through run for every
# architecture, with faults and metrics on, in-process and across a
# process boundary, plus corruption rejection and the mid-hold cut.
snapshot-check:
	$(GO) test . -run 'TestSnapshot|TestRestore|TestRunCheckpointed' -count=1
	$(GO) test ./internal/network/ -run 'TestSnapshot' -count=1
	$(GO) test ./experiments/ -run 'TestBranchSweep' -count=1

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel-stepper contract under the race detector: the sharded
# two-phase kernel, its determinism tests and the composed experiment
# parallelism.
race-kernel:
	$(GO) test -race ./internal/network/ -run 'TestWorkers|TestDeterministic'
	$(GO) test -race ./experiments/ -run 'TestJobWorkers|TestKernelWorkers'

# The observability layer under the race detector: registry merges and
# tracer drains in the kernel's serial phase racing against HTTP-style
# snapshot readers, plus the instrumented determinism contract.
race-obs:
	$(GO) test -race ./internal/metrics/
	$(GO) test -race ./internal/network/ -run 'TestMetrics|TestFlit|TestWorkersBitIdentical'

# The fault-injection subsystem under the race detector: the fault
# plan, the faulted link/router paths in the kernel, and the faulted
# bit-identical-workers contract.
race-faults:
	$(GO) test -race ./internal/faults/ ./internal/routing/
	$(GO) test -race ./internal/network/ -run 'TestHardLinkFailure|TestTransientFault|TestScheduledStall|TestWorkersBitIdentical'

# The transaction layer under the race detector: the serial engine
# tick and ejection-side admission gates against the sharded kernel,
# the protocol-deadlock wall, and the transaction-loaded bit-identical
# workers and snapshot contracts.
race-txn:
	$(GO) test -race ./internal/txn/ ./internal/network/ -run 'TestTxn|TestWorkersBitIdentical'
	$(GO) test -race . -run 'TestSnapshotResumeBitIdentical|FuzzParseTxn'

# Coverage floor for the simulator proper (commands and examples are
# thin shells and excluded). CI fails if total statement coverage
# drops below COVER_FLOOR.
COVER_FLOOR ?= 75.0
COVER_PKGS = . ./internal/... ./experiments/...

cover:
	$(GO) test -coverprofile=coverage.out $(COVER_PKGS)
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		printf "coverage %.1f%% meets the %.1f%% floor\n", t, floor }'

# Just the statistical assertions of the paper's claims.
shape:
	$(GO) test . -run TestShape -v

# One benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem

# The two-phase cycle kernel sweep (all four architectures, workers
# 1/2/max near saturation plus a single-threaded near-idle point on an
# 8x8 mesh), persisted as BENCH_kernel.json with host provenance. The
# harness warns when the artifact it is about to replace (or
# VICHAR_BENCH_BASELINE) was recorded with a different GOMAXPROCS.
bench-kernel:
	VICHAR_BENCH_JSON=$(CURDIR)/BENCH_kernel.json $(GO) test . -run TestKernelBenchArtifact -v

# Re-measure the kernel sweep into a scratch artifact and print a
# benchstat-style delta report against the checked-in
# BENCH_kernel.json, without touching it.
bench-compare:
	VICHAR_BENCH_JSON=$(CURDIR)/results/BENCH_kernel_new.json \
		VICHAR_BENCH_BASELINE=$(CURDIR)/BENCH_kernel.json \
		sh -c 'mkdir -p results && $(GO) test . -run TestKernelBenchArtifact -v'
	$(GO) run ./cmd/vichar-benchcmp BENCH_kernel.json results/BENCH_kernel_new.json

# One fast iteration of every kernel benchmark cell — CI's guard that
# the benchmark harness itself can never silently rot — followed by
# the throughput-regression gate: the smoke sweep is written as an
# artifact and compared against the committed
# results/BENCH_kernel_pre.json lineage; a saturated-rate cell losing
# more than 10% of its router-cycles/s fails the build. Shared-host
# noise is one-sided slow, so each cell keeps the fastest of three
# one-iteration repetitions (VICHAR_BENCH_BEST_OF) — a lower bound on
# true cost that keeps the gate from flaking on load spikes while a
# structural regression still fails every repetition.
bench-smoke:
	mkdir -p results
	VICHAR_BENCH_JSON=$(CURDIR)/results/BENCH_kernel_smoke.json \
		VICHAR_BENCH_BASELINE=$(CURDIR)/results/BENCH_kernel_pre.json \
		VICHAR_BENCH_BEST_OF=3 \
		$(GO) test . -run TestKernelBenchArtifact -benchtime 1x
	$(GO) run ./cmd/vichar-benchcmp -max-loss 10 \
		results/BENCH_kernel_pre.json results/BENCH_kernel_smoke.json

# CPU profile of the saturated single-threaded ViChaR kernel cell —
# the PR-over-PR optimization loop's instrument. Writes the raw
# profile to results/kernel.prof and checks in the top-10 flat/cum
# report as results/PROFILE_kernel.txt so the hot-spot ranking is
# reviewable without rerunning the profiler.
profile:
	mkdir -p results
	$(GO) test . -run 'TestNone$$' -bench 'BenchmarkKernel/ViC/rate=0.40/workers=1' \
		-benchtime 20x -cpuprofile results/kernel.prof -o results/kernel.test
	{ echo "# Top-10 flat (self) CPU, BenchmarkKernel ViChaR rate=0.40 workers=1"; \
	  $(GO) tool pprof -top -nodecount=10 results/kernel.test results/kernel.prof; \
	  echo; \
	  echo "# Top-10 cumulative CPU"; \
	  $(GO) tool pprof -top -cum -nodecount=10 results/kernel.test results/kernel.prof; \
	} > results/PROFILE_kernel.txt
	@echo wrote results/PROFILE_kernel.txt

# Observability overhead sweep (disabled / metrics / metrics+trace on
# the kernel benchmark platform), persisted as BENCH_obs.json. Set
# VICHAR_OBS_SEED_NS=<ns/run> to also record drift vs a pre-metrics
# baseline measured on the same machine.
bench-obs:
	VICHAR_OBS_JSON=$(CURDIR)/BENCH_obs.json $(GO) test . -run TestObsBenchArtifact -v

# Regenerate every figure/table at quick scale into results/.
experiments:
	$(GO) run ./cmd/vichar-experiments -all -extras -csv results

# The paper's full 300k-message protocol (slow).
paper:
	$(GO) run ./cmd/vichar-experiments -all -paper -csv results-paper

synth:
	$(GO) run ./cmd/vichar-synth

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bufferpressure
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/powerbudget
	$(GO) run ./examples/tracereplay

clean:
	rm -rf results results-paper test_output.txt bench_output.txt coverage.out
