// Package vichar is a cycle-accurate Network-on-Chip simulation
// library reproducing "ViChaR: A Dynamic Virtual Channel Regulator
// for Network-on-Chip Routers" (Nicopoulos et al., MICRO 2006).
//
// It provides:
//
//   - a complete wormhole, credit-based, virtual-channel NoC
//     simulator (mesh topology, 4-stage pipelined routers, XY and
//     minimal-adaptive routing, uniform-random and self-similar
//     traffic);
//   - four input-buffer organizations: the conventional statically
//     partitioned buffer (Generic), the paper's dynamic Virtual
//     Channel Regulator (ViChaR), and the DAMQ and FC-CB unified
//     baselines;
//   - an area/power model calibrated to the paper's 90 nm synthesis
//     results (Table 1) with activity-based power back-annotation;
//   - experiment harnesses regenerating every figure and table of the
//     paper's evaluation (see the experiments package).
//
// Quick start:
//
//	cfg := vichar.DefaultConfig()
//	cfg.Arch = vichar.ViChaR
//	cfg.InjectionRate = 0.30
//	res, err := vichar.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("avg latency: %.1f cycles\n", res.AvgLatency)
package vichar

import (
	"fmt"
	"io"

	"net/http"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/metrics"
	"vichar/internal/network"
	"vichar/internal/power"
	"vichar/internal/stats"
	"vichar/internal/synth"
	"vichar/internal/topology"
	"vichar/internal/trace"
)

// Config describes one simulation; see DefaultConfig for the paper's
// evaluation platform.
type Config = config.Config

// Results carries the metrics of one finished run.
type Results = stats.Results

// SeriesPoint is one sample of a time-series metric.
type SeriesPoint = stats.SeriesPoint

// Counters are the activity-event totals the power model consumes.
type Counters = stats.Counters

// Packet is a simulated message; returned by Simulator.Inject for
// tests and custom workloads.
type Packet = flit.Packet

// BufferArch selects the router input-buffer organization.
type BufferArch = config.BufferArch

// Buffer architectures.
const (
	// Generic is the statically partitioned per-VC FIFO buffer
	// ("GEN").
	Generic = config.Generic
	// ViChaR is the paper's dynamic Virtual Channel Regulator
	// ("ViC").
	ViChaR = config.ViChaR
	// DAMQ is the Dynamically Allocated Multi-Queue baseline.
	DAMQ = config.DAMQ
	// FCCB is the Fully Connected Circular Buffer baseline.
	FCCB = config.FCCB
)

// RoutingAlg selects the routing function.
type RoutingAlg = config.RoutingAlg

// Routing algorithms.
const (
	// XY is deterministic dimension-ordered routing.
	XY = config.XY
	// MinimalAdaptive routes adaptively with escape-VC deadlock
	// recovery.
	MinimalAdaptive = config.MinimalAdaptive
)

// TrafficProcess selects the temporal injection process.
type TrafficProcess = config.TrafficProcess

// Traffic processes.
const (
	// UniformRandom is Bernoulli injection ("UR").
	UniformRandom = config.UniformRandom
	// SelfSimilar is Pareto ON/OFF burst injection ("SS").
	SelfSimilar = config.SelfSimilar
)

// DestPattern selects the spatial destination distribution.
type DestPattern = config.DestPattern

// Destination patterns.
const (
	// NormalRandom draws destinations uniformly ("NR").
	NormalRandom = config.NormalRandom
	// Tornado offsets destinations half-way along X ("TN").
	Tornado = config.Tornado
	// Transpose sends (x,y) -> (y,x) ("TP").
	Transpose = config.Transpose
	// BitComplement sends node i to node N-1-i ("BC").
	BitComplement = config.BitComplement
	// Hotspot redirects a fraction of packets to the mesh center
	// ("HS"); see Config.HotspotFraction.
	Hotspot = config.Hotspot
)

// Faults configures the deterministic fault model: transient flit
// drops/corruptions recovered by per-link retransmission buffers,
// router port stalls, and scheduled hard link failures routed around
// by the fault-aware escape tree. Zero value = no faults.
type Faults = config.FaultsConfig

// Txn configures the network-interface (NIU) transaction layer:
// request/response protocol traffic (reads, writes, posted writes,
// atomics) with per-node outstanding-request windows, finite
// memory-controller service queues, and message classes mapped onto
// disjoint virtual-channel classes so responses can never be blocked
// behind requests. Zero value = no transaction layer.
type Txn = config.TxnConfig

// TxnResults carries the transaction layer's end-to-end latency
// metrics; Results.Txn is non-nil only when the layer is enabled.
type TxnResults = stats.TxnResults

// FaultEvent is one scheduled fault of a Faults.Events list.
type FaultEvent = config.FaultEvent

// FaultKind discriminates scheduled fault events.
type FaultKind = config.FaultKind

// Fault kinds.
const (
	// KillLink permanently disables a directed inter-router link
	// ("kill-link"); requires MinimalAdaptive routing.
	KillLink = config.KillLink
	// StallPort freezes an input port's control logic for a window
	// ("stall-port").
	StallPort = config.StallPort
	// DropFlit drops the next flit crossing a link once ("drop-flit").
	DropFlit = config.DropFlit
)

// DefaultConfig returns the paper's evaluation platform: an 8x8 mesh
// of 5-port routers with 4 VCs x 4 flits of 128 bits per port, XY
// routing, uniform random traffic, 500 MHz.
func DefaultConfig() Config { return config.Default() }

// Simulator drives one network simulation. Construct with
// NewSimulator, then either call Run for the full measurement
// protocol or Step/Inject/Drain for fine-grained control.
type Simulator struct {
	cfg   Config
	net   *network.Network
	model *power.Model
}

// NewSimulator validates cfg and builds the simulated network.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vichar: %w", err)
	}
	return &Simulator{
		cfg:   cfg,
		net:   network.New(&cfg),
		model: power.NewModel(&cfg),
	}, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Run executes the full measurement protocol (inject until the
// warm-up + measurement ejection quota is met) and returns the
// power-annotated results.
func (s *Simulator) Run() Results {
	res := s.net.Run()
	s.model.Annotate(&res)
	return res
}

// Step advances the simulation by one cycle.
func (s *Simulator) Step() { s.net.Step() }

// Close releases the cycle kernel's worker pool (only present when
// Config.Workers > 1). Optional — a finalizer backstops it — but
// closing a finished simulator frees its goroutines immediately. The
// simulator stays usable; a later Step restarts the pool.
func (s *Simulator) Close() { s.net.Close() }

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.net.Now() }

// RouteTableBytes returns the footprint of the network's precomputed
// routing tables in bytes (grows as nodes²); the kernel benchmark
// artifact records it for the scaling cells.
func (s *Simulator) RouteTableBytes() int { return s.net.RouteTableBytes() }

// Inject creates one packet from src to dst at the current cycle,
// bypassing the configured traffic generator.
func (s *Simulator) Inject(src, dst int) *Packet { return s.net.InjectPacket(src, dst) }

// InjectSized creates one packet with an explicit flit count.
func (s *Simulator) InjectSized(src, dst, size int) *Packet {
	return s.net.InjectPacketSized(src, dst, size)
}

// RecordTrace turns on packet-creation recording; retrieve the events
// with RecordedTrace after (or during) the run.
func (s *Simulator) RecordTrace() { s.net.RecordTrace() }

// RecordedTrace returns the packet creation events captured since
// RecordTrace was enabled.
func (s *Simulator) RecordedTrace() []TraceEntry { return s.net.RecordedTrace() }

// LoadTrace schedules a recorded workload for replay: each entry's
// packet is injected at its cycle. Combine with InjectionRate zero
// for a pure replay.
func (s *Simulator) LoadTrace(entries []TraceEntry) error { return s.net.ScheduleTrace(entries) }

// Drain runs until all injected packets are ejected or maxCycles
// elapse, returning the number still in flight. Use with
// InjectionRate zero and manual Inject calls.
func (s *Simulator) Drain(maxCycles int64) int64 { return s.net.Drain(maxCycles) }

// MetricsSnapshot is a consistent copy of the live metrics registry.
type MetricsSnapshot = metrics.Snapshot

// FlitEvent is one flit-lifecycle record of the event tracer.
type FlitEvent = metrics.Event

// MetricsSnapshot copies the live metrics registry (enabled with
// Config.Metrics or Config.TraceEvents). ok is false when the
// observability layer is off. Safe to call from any goroutine; during
// a run the snapshot lags the simulation by at most
// Config.SampleEvery cycles (Run/Drain flush exactly at their end).
func (s *Simulator) MetricsSnapshot() (MetricsSnapshot, bool) {
	reg := s.net.Metrics()
	if reg == nil {
		return MetricsSnapshot{}, false
	}
	return reg.Snapshot(), true
}

// FlitEvents returns the retained flit-lifecycle events in recording
// order (empty without Config.TraceEvents).
func (s *Simulator) FlitEvents() []FlitEvent {
	tr := s.net.FlitTracer()
	if tr == nil {
		return nil
	}
	return tr.Events()
}

// FlitTimeline reconstructs one packet's retained lifecycle in
// chronological order (empty without Config.TraceEvents, or when the
// packet's events have been evicted from the bounded ring).
func (s *Simulator) FlitTimeline(packet uint64) []FlitEvent {
	tr := s.net.FlitTracer()
	if tr == nil {
		return nil
	}
	return tr.Timeline(packet)
}

// WriteFlitEventsJSONL writes the retained flit events as one JSON
// object per line.
func (s *Simulator) WriteFlitEventsJSONL(w io.Writer) error {
	tr := s.net.FlitTracer()
	if tr == nil {
		return nil
	}
	return tr.WriteJSONL(w)
}

// MetricsHandler returns an http.Handler serving the live registry in
// the Prometheus text format at "/" and, when tracing is enabled, the
// retained flit events as JSONL at "/trace". nil when the
// observability layer is off. The handler is safe to serve from
// another goroutine while the simulation is stepping.
func (s *Simulator) MetricsHandler() http.Handler {
	reg := s.net.Metrics()
	if reg == nil {
		return nil
	}
	return metrics.Handler(reg, s.net.FlitTracer())
}

// FlushMetrics forces an observability commit outside the sampling
// cadence; call it from the goroutine driving Step before reading an
// exact mid-run snapshot.
func (s *Simulator) FlushMetrics() { s.net.FlushMetrics() }

// Run is the one-shot convenience API: validate, simulate, annotate.
func Run(cfg Config) (Results, error) {
	s, err := NewSimulator(cfg)
	if err != nil {
		return Results{}, err
	}
	defer s.Close()
	return s.Run(), nil
}

// TraceEntry is one packet creation event of a recorded workload.
type TraceEntry = trace.Entry

// WriteTrace serializes a recorded workload (one "cycle src dst size"
// line per packet).
func WriteTrace(w io.Writer, entries []TraceEntry) error { return trace.Write(w, entries) }

// ReadTrace parses a workload trace, returning entries sorted by
// cycle.
func ReadTrace(r io.Reader) ([]TraceEntry, error) { return trace.Read(r) }

// SynthBreakdown is the per-component area/power synthesis estimate
// for one router (the Table 1 substitute).
type SynthBreakdown = synth.Breakdown

// Synthesize returns the synthesis-model estimate for cfg's router.
func Synthesize(cfg Config) SynthBreakdown { return synth.Estimate(&cfg) }

// Table1Row is one line of the regenerated Table 1.
type Table1Row = synth.Table1Row

// Table1 regenerates the paper's Table 1 (per-port area/power
// breakdown of the ViChaR and generic architectures) plus the
// overhead/savings deltas.
func Table1() (vichar, generic []Table1Row, areaDelta, powerDelta float64) {
	return synth.Table1()
}

// HalfBufferSavings returns the router-level area and power savings
// of a half-buffer ViChaR router versus the full-size generic router
// (the paper's ~30%/~34% headline claim).
func HalfBufferSavings() (areaSaving, powerSaving float64) { return synth.HalfBufferSavings() }

// StaticPowerWatts returns the load-independent network power of a
// configuration in watts.
func StaticPowerWatts(cfg Config) float64 { return power.NewModel(&cfg).StaticWatts() }

// NodeAt returns the node id at mesh coordinates (x, y) of cfg's
// topology; a convenience for custom workloads.
func NodeAt(cfg Config, x, y int) int {
	return topology.New(cfg.Width, cfg.Height).Node(x, y)
}

// CoordsOf returns the mesh coordinates of node id.
func CoordsOf(cfg Config, node int) (x, y int) {
	return topology.New(cfg.Width, cfg.Height).XY(node)
}
