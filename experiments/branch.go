package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"vichar"
)

// BranchSweep is the warm-once/branch-N sweep protocol built on the
// checkpoint/restore API: one simulator is warmed at the base
// configuration's injection rate to half its warm-up quota and
// snapshotted once; each sweep point then restores that snapshot with
// its own rate overridden and completes the measurement protocol.
// Every branch shares the warmed buffer, credit and RNG state instead
// of paying its own cold start, and branching is deterministic — the
// same snapshot and rate always produce bit-identical results.
//
// The cut deliberately lands mid-warm-up: each branch still ejects
// the remaining warm-up quota at its own rate before its measurement
// window opens, so measured statistics reflect the branch rate alone.
func BranchSweep(cfg vichar.Config, rates []float64, metric Metric, opts Options) (Series, error) {
	if len(rates) == 0 {
		return Series{}, fmt.Errorf("experiments: BranchSweep needs at least one rate")
	}
	base := opts.apply(cfg)
	warm, err := vichar.NewSimulator(base)
	if err != nil {
		return Series{}, err
	}
	target := int64(base.WarmupPackets) / 2
	maxCycles := base.EffectiveMaxCycles()
	for warm.Ejected() < target && warm.Now() < maxCycles {
		warm.Step()
	}
	blob, err := warm.Snapshot()
	warm.Close()
	if err != nil {
		return Series{}, err
	}

	series := Series{
		Name:   base.Label(),
		Points: make([]Point, len(rates)),
	}
	workers := jobWorkers(opts.Workers, len(rates), base.Workers, runtime.GOMAXPROCS(0))
	sem := make(chan struct{}, workers)
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	for i, rate := range rates {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, rate float64) {
			defer wg.Done()
			defer func() { <-sem }()
			branch, err := vichar.RestoreWith(blob, vichar.Overrides{InjectionRate: &rate})
			if err != nil {
				errs[i] = fmt.Errorf("experiments: branch at rate %v: %w", rate, err)
				return
			}
			res := branch.Run()
			branch.Close()
			series.Points[i] = Point{X: rate, Y: metric.Value(&res), Results: res}
		}(i, rate)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Series{}, err
		}
	}
	return series, nil
}
