package experiments

import (
	"strings"
	"testing"

	"vichar"
)

func TestObserveReconciles(t *testing.T) {
	cfg := vichar.DefaultConfig()
	cfg.Arch = vichar.ViChaR
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	obs, err := Observe(cfg, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Reconciled() {
		t.Fatalf("registry totals do not reconcile with Results:\n%s", obs.Report())
	}
	if len(obs.Events) == 0 {
		t.Fatal("instrumented run retained no flit events")
	}
	rep := obs.Report()
	for _, want := range []string{
		"registry totals",
		"vichar_buffer_writes_total",
		"busiest links",
		"reconciliation vs Results",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "MISMATCH") {
		t.Errorf("report flags a mismatch:\n%s", rep)
	}
}
