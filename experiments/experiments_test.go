package experiments

import (
	"strings"
	"testing"

	"vichar"
)

// tinyOpts shrinks runs to near-nothing; these tests exercise the
// harness plumbing, not the science.
func tinyOpts() Options {
	return Options{
		WarmupPackets:  50,
		MeasurePackets: 150,
		MaxCycles:      20_000,
		Workers:        4,
		Seed:           7,
	}
}

// shrink keeps at most one run per series.
func shrink(e *Experiment) *Experiment {
	seen := map[string]bool{}
	var runs []Run
	for _, r := range e.Runs {
		if seen[r.Series] {
			continue
		}
		seen[r.Series] = true
		r.Config.Width, r.Config.Height = 4, 4
		runs = append(runs, r)
	}
	e.Runs = runs
	return e
}

func TestAllExperimentsWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.XLabel == "" {
			t.Errorf("experiment %q incompletely labeled", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if len(e.Runs) == 0 {
			t.Errorf("%s has no runs", e.ID)
		}
		for i, r := range e.Runs {
			if err := r.Config.Validate(); err != nil {
				t.Errorf("%s run %d invalid: %v", e.ID, i, err)
			}
		}
	}
	// Paper order: nine Figure-12 artifacts plus six Figure-13 ones.
	if len(ids) != 15 {
		t.Errorf("got %d experiments, want 15", len(ids))
	}
}

func TestExpectedSeries(t *testing.T) {
	want := map[string][]string{
		"fig12a": {"GEN-NR-16", "ViC-NR-16", "GEN-TN-16", "ViC-TN-16"},
		"fig12c": {"GEN-16", "GEN-12", "ViC-16", "ViC-12", "ViC-8"},
		"fig12d": {"GEN-16", "ViC-16", "ViC-12", "ViC-8"},
		"fig13c": {"GEN-12 (4x3)", "GEN-12 (3x4)", "ViC-12"},
		"fig13d": {"ViC-16", "DAMQ-16", "FC-CB-16"},
	}
	for id, series := range want {
		e := ByID(id)
		if e == nil {
			t.Fatalf("experiment %s missing", id)
		}
		got := map[string]bool{}
		for _, r := range e.Runs {
			got[r.Series] = true
		}
		for _, s := range series {
			if !got[s] {
				t.Errorf("%s missing series %q (has %v)", id, s, got)
			}
		}
		if len(got) != len(series) {
			t.Errorf("%s has %d series, want %d", id, len(got), len(series))
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("fig12a") == nil || ByID("fig13f") == nil {
		t.Fatal("known ids not found")
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id found")
	}
}

func TestSelfSimilarSweepBounded(t *testing.T) {
	for _, id := range []string{"fig12b", "fig12e", "fig13b"} {
		for _, r := range ByID(id).Runs {
			if r.X > 0.36 {
				t.Errorf("%s sweeps to %.2f, above the SS peak bound", id, r.X)
			}
			if r.Config.Traffic != vichar.SelfSimilar {
				t.Errorf("%s run at %.2f is not self-similar", id, r.X)
			}
		}
	}
}

func TestAdaptiveExperimentConfig(t *testing.T) {
	for _, r := range Fig12i().Runs {
		if r.Config.Routing != vichar.MinimalAdaptive {
			t.Fatal("fig12i must use adaptive routing")
		}
		if r.Config.EscapeVCs < 1 {
			t.Fatal("fig12i needs escape VCs")
		}
	}
}

func TestExecuteAssemblesSeries(t *testing.T) {
	e := shrink(Fig13d())
	out, err := e.Execute(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 3 {
		t.Fatalf("%d series, want 3", len(out.Series))
	}
	for _, s := range out.Series {
		if len(s.Points) != 1 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		if s.Points[0].Y <= 0 {
			t.Fatalf("series %s has empty Y", s.Name)
		}
	}
	if out.SeriesByName("DAMQ-16") == nil || out.SeriesByName("nope") != nil {
		t.Fatal("SeriesByName broken")
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	bad := Fig12g()
	bad.Runs[0].Config.InjectionRate = 5 // invalid
	if _, err := bad.Execute(tinyOpts()); err == nil {
		t.Fatal("invalid run config not reported")
	}
}

func TestExecuteProgress(t *testing.T) {
	e := shrink(Fig12g())
	opts := tinyOpts()
	var calls int
	opts.Progress = func(done, total int) {
		calls++
		if total != len(e.Runs) || done < 1 || done > total {
			t.Errorf("progress (%d,%d) out of range", done, total)
		}
	}
	if _, err := e.Execute(opts); err != nil {
		t.Fatal(err)
	}
	if calls != len(e.Runs) {
		t.Fatalf("progress called %d times for %d runs", calls, len(e.Runs))
	}
}

func TestPointsSortedByX(t *testing.T) {
	e := Fig12g()
	// Keep two X values per series, reversed.
	e.Runs = []Run{e.Runs[2], e.Runs[0]}
	for i := range e.Runs {
		e.Runs[i].Config.Width, e.Runs[i].Config.Height = 4, 4
	}
	out, err := e.Execute(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	pts := out.Series[0].Points
	if len(pts) != 2 || pts[0].X >= pts[1].X {
		t.Fatalf("points not sorted: %+v", pts)
	}
}

func TestMetricStringsAndValues(t *testing.T) {
	r := vichar.Results{AvgLatency: 10, Throughput: 20, AvgOccupancy: 0.3, AvgPowerWatts: 4, AvgInUseVCs: 5}
	cases := []struct {
		m    Metric
		want float64
	}{
		{Latency, 10}, {Throughput, 20}, {Occupancy, 30}, {Power, 4}, {VCs, 5},
	}
	for _, c := range cases {
		if got := c.m.Value(&r); got != c.want {
			t.Errorf("%v.Value = %g, want %g", c.m, got, c.want)
		}
		if c.m.String() == "" || strings.HasPrefix(c.m.String(), "Metric(") {
			t.Errorf("metric %d has no label", c.m)
		}
	}
}

func TestQuickAndPaperProtocols(t *testing.T) {
	q, p := Quick(), Paper()
	if q.MeasurePackets >= p.MeasurePackets {
		t.Fatal("quick protocol not smaller than paper protocol")
	}
	if p.WarmupPackets != 100_000 || p.MeasurePackets != 200_000 {
		t.Fatalf("paper protocol wrong: %+v", p)
	}
}

func TestTableAndCSVFormatting(t *testing.T) {
	e := shrink(Fig13d())
	out, err := e.Execute(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	table := out.Table()
	for _, want := range []string{"FIG13D", "ViC-16", "DAMQ-16", "FC-CB-16", "Latency"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := out.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines, want header + 1 row:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "x,") {
		t.Fatalf("csv header %q", lines[0])
	}
	if got := strings.Count(lines[0], ","); got != 3 {
		t.Fatalf("csv header has %d columns", got+1)
	}
}

func TestNodeGrid(t *testing.T) {
	g := NodeGrid([]float64{1, 2, 3, 4}, 2)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("grid:\n%s", g)
	}
	if NodeGrid([]float64{1, 2, 3}, 2) == g {
		t.Fatal("ragged input not handled")
	}
}

func TestSeriesSparkline(t *testing.T) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{X: float64(i), Y: float64(i) * 2}
	}
	s := SeriesSparkline(pts, 10)
	if n := len(strings.Fields(s)); n < 10 || n > 12 {
		t.Fatalf("sparkline has %d entries: %q", n, s)
	}
	if SeriesSparkline(nil, 10) != "" || SeriesSparkline(pts, 0) != "" {
		t.Fatal("degenerate sparkline inputs not empty")
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	if seedFor("A", 0.1) != seedFor("A", 0.1) {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor("A", 0.1) == seedFor("B", 0.1) {
		t.Fatal("series not decorrelated")
	}
	if seedFor("A", 0.1) == seedFor("A", 0.2) {
		t.Fatal("rates not decorrelated")
	}
}

func TestGenericShapePanicsOnOddSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd generic slot count did not panic")
		}
	}()
	baseConfig(vichar.Generic, 10)
}

func TestChartRendering(t *testing.T) {
	e := Fig12g()
	e.Runs = e.Runs[:2] // two buffer sizes: a real X span
	for i := range e.Runs {
		e.Runs[i].Config.Width, e.Runs[i].Config.Height = 4, 4
	}
	out, err := e.Execute(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	chart := out.Chart(40, 10)
	for _, want := range []string{"FIG12G", "o = GEN", "+---", "x: Buffer Size"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// Degenerate sizes fall back to the table.
	if !strings.Contains(out.Chart(2, 2), "Buffer Size") {
		t.Error("tiny chart did not fall back to table")
	}
	// A single-X outcome cannot be scaled; it falls back too.
	single := shrink(Fig13d())
	sout, err := single.Execute(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sout.Chart(40, 10), "Injection Rate") {
		t.Error("single-X chart did not fall back to table")
	}
}

func TestMeanStderr(t *testing.T) {
	m, s := meanStderr(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty sample nonzero")
	}
	m, s = meanStderr([]float64{5})
	if m != 5 || s != 0 {
		t.Fatal("singleton wrong")
	}
	m, s = meanStderr([]float64{1, 2, 3, 4, 5})
	if m != 3 {
		t.Fatalf("mean %.2f", m)
	}
	// stddev = sqrt(2.5), sem = sqrt(2.5/5) ≈ 0.7071
	if s < 0.70 || s > 0.71 {
		t.Fatalf("sem %.4f", s)
	}
}

func TestReplicatedExecution(t *testing.T) {
	e := shrink(Fig12g())
	opts := tinyOpts()
	opts.Replicates = 3
	var total int
	opts.Progress = func(done, tot int) { total = tot }
	out, err := e.Execute(opts)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(e.Runs)*3 {
		t.Fatalf("progress total %d, want %d", total, len(e.Runs)*3)
	}
	p := out.Series[0].Points[0]
	if p.YErr <= 0 {
		t.Fatalf("replicated point has no error estimate: %+v", p)
	}
	if p.Y <= 0 {
		t.Fatal("mean missing")
	}
}

func TestSaturationRateOrdering(t *testing.T) {
	opts := Options{WarmupPackets: 300, MeasurePackets: 1200, MaxCycles: 30_000, Seed: 5}
	small := func(arch vichar.BufferArch, slots, vcs, depth int) vichar.Config {
		cfg := vichar.DefaultConfig()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.BufferSlots = slots
		cfg.VCs, cfg.VCDepth = vcs, depth
		return cfg
	}
	gen, err := SaturationRate(small(vichar.Generic, 16, 4, 4), opts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	vic, err := SaturationRate(small(vichar.ViChaR, 16, 4, 4), opts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if gen < 0.1 || gen > 1.0 || vic < 0.1 || vic > 1.0 {
		t.Fatalf("implausible saturation rates gen=%.2f vic=%.2f", gen, vic)
	}
	// ViChaR saturates no earlier than the generic buffer (paper:
	// "ViChaR saturates at higher injection rates").
	if vic < gen-0.05 {
		t.Fatalf("ViChaR saturates earlier: %.3f vs %.3f", vic, gen)
	}
	t.Logf("saturation: GEN-16 %.3f, ViC-16 %.3f flits/node/cycle", gen, vic)
}

func TestExtrasWellFormed(t *testing.T) {
	for _, e := range Extras() {
		if e.ID == "" || len(e.Runs) == 0 {
			t.Errorf("extra %q malformed", e.ID)
		}
		for i, r := range e.Runs {
			if err := r.Config.Validate(); err != nil {
				t.Errorf("%s run %d invalid: %v", e.ID, i, err)
			}
		}
		if ByID(e.ID) == nil {
			t.Errorf("extra %q not reachable via ByID", e.ID)
		}
	}
	if len(Extras()) != 5 {
		t.Errorf("expected 5 extras, got %d", len(Extras()))
	}
}

func TestSVGRendering(t *testing.T) {
	e := Fig12g()
	e.Runs = e.Runs[:3]
	for i := range e.Runs {
		e.Runs[i].Config.Width, e.Runs[i].Config.Height = 4, 4
	}
	opts := tinyOpts()
	opts.Replicates = 2
	out, err := e.Execute(opts)
	if err != nil {
		t.Fatal(err)
	}
	svg := out.SVG(640, 420)
	for _, want := range []string{"<svg", "</svg>", "polyline", "FIG12G", "GEN", "Buffer Size"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Error bars present with replicates.
	if !strings.Contains(svg, "<circle") {
		t.Error("svg missing point markers")
	}
	// Empty outcome degrades gracefully.
	empty := &Outcome{Experiment: e}
	if !strings.Contains(empty.SVG(300, 200), "<svg") {
		t.Error("empty svg malformed")
	}
}

func TestSVGEscapes(t *testing.T) {
	if svgEscape(`a<b&"c"`) != "a&lt;b&amp;&quot;c&quot;" {
		t.Errorf("escape wrong: %q", svgEscape(`a<b&"c"`))
	}
	if trimFloat(0.250) != "0.25" || trimFloat(8) != "8" || trimFloat(0) != "0" {
		t.Error("tick trimming wrong")
	}
}
