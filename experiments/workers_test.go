package experiments

import (
	"reflect"
	"testing"

	"vichar"
)

// TestJobWorkersBudget pins the composed-parallelism accounting:
// job-level workers times the widest per-run cycle kernel must never
// exceed GOMAXPROCS, while degenerate inputs still yield at least one
// worker.
func TestJobWorkersBudget(t *testing.T) {
	cases := []struct {
		name                                          string
		requested, total, maxKernel, gomaxprocs, want int
	}{
		{"default fills machine", 0, 100, 1, 8, 8},
		{"explicit request honored", 3, 100, 1, 8, 3},
		{"clamped to total", 0, 2, 1, 8, 2},
		{"kernel width divides budget", 0, 100, 4, 8, 2},
		{"request clamped by kernel budget", 6, 100, 4, 8, 2},
		{"kernel wider than machine still runs", 0, 100, 16, 8, 1},
		{"zero kernel treated as serial", 0, 100, 0, 8, 8},
		{"empty experiment", 0, 0, 1, 8, 1},
		{"single core", 0, 100, 1, 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := jobWorkers(c.requested, c.total, c.maxKernel, c.gomaxprocs)
			if got != c.want {
				t.Fatalf("jobWorkers(%d, %d, %d, %d) = %d, want %d",
					c.requested, c.total, c.maxKernel, c.gomaxprocs, got, c.want)
			}
			if c.maxKernel > 0 && c.gomaxprocs >= c.maxKernel && got*c.maxKernel > c.gomaxprocs && got > 1 {
				t.Fatalf("budget exceeded: %d workers x %d kernel > %d procs", got, c.maxKernel, c.gomaxprocs)
			}
		})
	}
}

// TestKernelWorkersOption verifies Options.KernelWorkers reaches each
// run's configuration and that an experiment executed with a parallel
// kernel matches the serial kernel bit for bit (the library-level echo
// of the network package's determinism test).
func TestKernelWorkersOption(t *testing.T) {
	base := vichar.DefaultConfig()
	base.Width, base.Height = 4, 4
	base.InjectionRate = 0.25
	base.Seed = 99

	opts := Quick()
	opts.WarmupPackets, opts.MeasurePackets = 50, 200
	opts.KernelWorkers = 4
	if got := opts.apply(base).Workers; got != 4 {
		t.Fatalf("apply left Workers = %d, want 4", got)
	}

	exp := &Experiment{
		ID:     "kernel-test",
		Metric: Latency,
		Runs: []Run{
			{Series: "s", X: 1, Config: base},
		},
	}
	run := func(kernel int) *Outcome {
		o := opts
		o.KernelWorkers = kernel
		out, err := exp.Execute(o)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	a, b := serial.Series[0].Points[0].Results, parallel.Series[0].Points[0].Results
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("kernel workers changed results:\nserial:   %+v\nparallel: %+v", a, b)
	}
}
