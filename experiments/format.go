package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table renders the outcome as an aligned ASCII table: one row per X
// value, one column per series — the same rows/series the paper's
// figure plots.
func (o *Outcome) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(o.Experiment.ID), o.Experiment.Title)
	fmt.Fprintf(&b, "Y: %s\n", o.Experiment.Metric)

	xs := o.xValues()
	byXS := o.index()

	w := 14
	fmt.Fprintf(&b, "%-*s", w, o.Experiment.XLabel)
	for _, s := range o.Series {
		fmt.Fprintf(&b, "%*s", w, s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*.3f", w, x)
		for si := range o.Series {
			if y, ok := byXS[si][x]; ok {
				fmt.Fprintf(&b, "%*.2f", w, y)
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the outcome as comma-separated values with an x column
// followed by one column per series.
func (o *Outcome) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range o.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	xs := o.xValues()
	byXS := o.index()
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for si := range o.Series {
			if y, ok := byXS[si][x]; ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// xValues returns the sorted union of X coordinates across series.
func (o *Outcome) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range o.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// index maps series index -> X -> Y.
func (o *Outcome) index() []map[float64]float64 {
	idx := make([]map[float64]float64, len(o.Series))
	for si, s := range o.Series {
		idx[si] = make(map[float64]float64, len(s.Points))
		for _, p := range s.Points {
			idx[si][p.X] = p.Y
		}
	}
	return idx
}

// NodeGrid renders a per-node metric (e.g. Figure 13(e)'s spatial VC
// map) as a Height x Width grid, given the mesh width.
func NodeGrid(values []float64, width int) string {
	if width <= 0 || len(values)%width != 0 {
		return fmt.Sprintf("%v", values)
	}
	var b strings.Builder
	for i, v := range values {
		fmt.Fprintf(&b, "%6.2f", v)
		if (i+1)%width == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// SeriesSparkline renders a time series compactly: sampled values
// joined as "cycle:value" pairs, at most n entries, evenly spaced.
func SeriesSparkline(points []Point, n int) string {
	if n <= 0 || len(points) == 0 {
		return ""
	}
	step := len(points) / n
	if step < 1 {
		step = 1
	}
	var parts []string
	for i := 0; i < len(points); i += step {
		parts = append(parts, fmt.Sprintf("%.0f:%.2f", points[i].X, points[i].Y))
	}
	return strings.Join(parts, " ")
}
