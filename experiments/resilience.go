package experiments

import "vichar"

// ExtResilience evaluates graceful degradation under transient link
// faults: average latency as the per-attempt flit fault rate sweeps
// from fault-free to one fault per hundred link traversals, at a
// fixed offered load below saturation. Every faulted flit is
// recovered by the per-link retransmission buffer (Config.Faults),
// so the curve isolates the latency cost of retransmission and the
// head-of-line blocking it induces — where ViChaR's dynamic buffer
// pool is expected to absorb fault-stalled worms better than the
// statically partitioned baseline.
func ExtResilience() *Experiment {
	e := &Experiment{
		ID:     "ext-resilience",
		Title:  "Resilience: Latency under Transient Link Faults (0.25 load)",
		XLabel: "Flit Fault Rate (faults/link attempt)",
		Metric: Latency,
	}
	faultRates := []float64{0, 0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01}
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"GEN-16", vichar.Generic},
		{"ViC-16", vichar.ViChaR},
		{"DAMQ-16", vichar.DAMQ},
		{"FC-CB-16", vichar.FCCB},
	} {
		for _, fr := range faultRates {
			cfg := baseConfig(v.arch, 16)
			cfg.InjectionRate = 0.25
			cfg.Seed = seedFor(v.series, fr)
			// Three quarters of faults drop the flit on the wire, one
			// quarter corrupts it at the receiver; both recover through
			// the same retransmission path.
			cfg.Faults.Seed = 7
			cfg.Faults.DropRate = fr * 0.75
			cfg.Faults.CorruptRate = fr * 0.25
			e.Runs = append(e.Runs, Run{Series: v.series, X: fr, Config: cfg})
		}
	}
	return e
}
