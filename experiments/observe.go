package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vichar"
)

// Observation is one instrumented run: the usual Results next to the
// metrics-registry snapshot and the retained flit-event totals the
// live observability layer produced for the same simulation.
type Observation struct {
	Config   vichar.Config
	Results  vichar.Results
	Snapshot vichar.MetricsSnapshot
	Events   []vichar.FlitEvent
}

// Observe runs one configuration with the metrics registry and flit
// tracer switched on and returns the paired outputs. It is the
// in-process consumer of the Snapshot API that cmd/vichar-sim exposes
// over HTTP: the snapshot totals must reconcile with Results, which
// Report asserts in its rendering.
func Observe(cfg vichar.Config, opts Options) (*Observation, error) {
	cfg = opts.apply(cfg)
	cfg.Metrics = true
	if cfg.TraceEvents == 0 {
		cfg.TraceEvents = 1 << 15
	}
	sim, err := vichar.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	res := sim.Run()
	snap, ok := sim.MetricsSnapshot()
	if !ok {
		return nil, fmt.Errorf("experiments: metrics registry missing after instrumented run")
	}
	return &Observation{
		Config:   cfg,
		Results:  res,
		Snapshot: snap,
		Events:   sim.FlitEvents(),
	}, nil
}

// observedTotals are the network-wide counter names Report renders,
// in presentation order.
var observedTotals = []string{
	"vichar_packets_created_total",
	"vichar_packets_ejected_total",
	"vichar_flits_ejected_total",
	"vichar_ni_flits_injected_total",
	"vichar_buffer_writes_total",
	"vichar_buffer_reads_total",
	"vichar_rc_total",
	"vichar_va_ops_total",
	"vichar_va_grants_total",
	"vichar_va_denials_total",
	"vichar_sa_ops_total",
	"vichar_sa_grants_total",
	"vichar_sa_denials_total",
	"vichar_xbar_traversals_total",
	"vichar_link_flits_total",
	"vichar_credit_stalls_total",
	"vichar_ni_credit_stalls_total",
}

// Report renders the observation as an aligned text table: registry
// totals, the busiest links, and the reconciliation of the registry
// against the run's Results.
func (o *Observation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instrumented run: %s, %dx%d mesh, rate %.3f, seed %d\n",
		o.Results.Label, o.Config.Width, o.Config.Height, o.Config.InjectionRate, o.Config.Seed)
	b.WriteString("\nregistry totals (network-wide):\n")
	for _, name := range observedTotals {
		fmt.Fprintf(&b, "  %-34s %12d\n", name, o.Snapshot.Sum(name))
	}

	type link struct {
		labels string
		flits  uint64
	}
	var links []link
	for _, c := range o.Snapshot.Counters {
		if c.Name == "vichar_link_flits_total" {
			links = append(links, link{c.Labels.String(), c.Value})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].flits != links[j].flits {
			return links[i].flits > links[j].flits
		}
		return links[i].labels < links[j].labels
	})
	b.WriteString("\nbusiest links:\n")
	for i, l := range links {
		if i == 8 {
			break
		}
		fmt.Fprintf(&b, "  %-34s %12d flits\n", l.labels, l.flits)
	}

	// The registry is cumulative over the whole run while
	// Results.Counters is windowed to the measurement interval, so
	// whole-run quantities must match exactly and activity counters
	// must bound their windowed counterparts from above.
	b.WriteString("\nreconciliation vs Results:\n")
	exact := func(name string, got, want uint64) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Fprintf(&b, "  %-34s %12d vs %-12d %s\n", name, got, want, status)
	}
	covers := func(name string, whole, window uint64) {
		status := "ok (cumulative >= measurement window)"
		if whole < window {
			status = "MISMATCH"
		}
		fmt.Fprintf(&b, "  %-34s %12d vs %-12d %s\n", name, whole, window, status)
	}
	exact("packets_ejected", o.Snapshot.Sum("vichar_packets_ejected_total"), uint64(o.Results.EjectedPackets))
	covers("buffer_writes", o.Snapshot.Sum("vichar_buffer_writes_total"), o.Results.Counters.BufferWrites)
	covers("xbar_traversals", o.Snapshot.Sum("vichar_xbar_traversals_total"), o.Results.Counters.XbarTraversals)
	covers("link_flits", o.Snapshot.Sum("vichar_link_flits_total"), o.Results.Counters.LinkTraversals)
	if cyc, ok := o.Snapshot.Gauge("vichar_cycle"); ok {
		exact("final_cycle", uint64(cyc), uint64(o.Results.TotalCycles))
	}
	fmt.Fprintf(&b, "  flit events retained: %d\n", len(o.Events))
	return b.String()
}

// Reconciled reports whether the registry agrees with the run's
// Results: whole-run quantities (ejections, final cycle) match
// exactly, and the cumulative activity counters cover the
// measurement-window Counters.
func (o *Observation) Reconciled() bool {
	if o.Snapshot.Sum("vichar_packets_ejected_total") != uint64(o.Results.EjectedPackets) ||
		o.Snapshot.Sum("vichar_buffer_writes_total") < o.Results.Counters.BufferWrites ||
		o.Snapshot.Sum("vichar_xbar_traversals_total") < o.Results.Counters.XbarTraversals ||
		o.Snapshot.Sum("vichar_link_flits_total") < o.Results.Counters.LinkTraversals {
		return false
	}
	cyc, ok := o.Snapshot.Gauge("vichar_cycle")
	return ok && cyc == float64(o.Results.TotalCycles)
}
