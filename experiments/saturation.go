package experiments

import (
	"fmt"

	"vichar"
)

// AcceptanceThreshold defines saturation for SaturationRate: the
// network is saturated at a given offered load when its accepted
// throughput falls below this fraction of the offered traffic (or the
// run cannot meet its ejection quota at all). Unlike a
// latency-multiple criterion, acceptance is comparable across
// architectures with different zero-load latencies.
const AcceptanceThreshold = 0.95

// SaturationRate estimates a configuration's saturation throughput in
// flits/node/cycle by bisecting the offered load: the returned rate
// is the highest at which the network still accepts at least
// AcceptanceThreshold of the offered flits, within tol. The
// configuration's InjectionRate field is ignored.
func SaturationRate(cfg vichar.Config, opts Options, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 0.01
	}
	nodes := float64(cfg.Nodes())
	saturatedAt := func(rate float64) (bool, error) {
		c := opts.apply(cfg)
		c.InjectionRate = rate
		res, err := vichar.Run(c)
		if err != nil {
			return false, err
		}
		if res.Saturated {
			return true, nil
		}
		offered := rate * nodes
		return res.Throughput < AcceptanceThreshold*offered, nil
	}

	lo, hi := 0.02, 1.0
	if sat, err := saturatedAt(lo); err != nil {
		return 0, fmt.Errorf("experiments: low-load probe: %w", err)
	} else if sat {
		return 0, fmt.Errorf("experiments: network saturated at the %.2f low-load probe", lo)
	}
	// If even full load is accepted the network never saturates for
	// this workload.
	if sat, err := saturatedAt(hi); err != nil {
		return 0, err
	} else if !sat {
		return hi, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		sat, err := saturatedAt(mid)
		if err != nil {
			return 0, err
		}
		if sat {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
