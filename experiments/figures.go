package experiments

import (
	"fmt"

	"vichar"
)

// Default sweep of offered loads, flits/node/cycle (paper Figures 12
// and 13 sweep 0.05 through ~0.50).
func injectionSweep() []float64 {
	return []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
}

// baseConfig returns the paper platform with the given buffer
// architecture and per-port slot count. Generic slot counts are
// arranged as 4 VCs of slots/4 depth (the paper's shapes); other
// shapes use genericShaped.
func baseConfig(arch vichar.BufferArch, slots int) vichar.Config {
	cfg := vichar.DefaultConfig()
	cfg.Arch = arch
	cfg.BufferSlots = slots
	if arch == vichar.Generic {
		if slots%4 != 0 {
			panic(fmt.Sprintf("experiments: generic buffer of %d slots is not 4 VCs of equal depth", slots))
		}
		cfg.VCs, cfg.VCDepth = 4, slots/4
	}
	return cfg
}

// genericShaped returns a generic configuration with an explicit
// VC-count x depth shape (Figure 13(c) compares 4x3 against 3x4).
func genericShaped(vcs, depth int) vichar.Config {
	cfg := vichar.DefaultConfig()
	cfg.Arch = vichar.Generic
	cfg.VCs, cfg.VCDepth = vcs, depth
	cfg.BufferSlots = vcs * depth
	return cfg
}

// seedFor decorrelates runs within an experiment without losing
// reproducibility.
func seedFor(series string, x float64) int64 {
	h := int64(1469598103934665603)
	for _, c := range series {
		h = h*1099511628211 + int64(c)
	}
	return h ^ int64(x*1000)
}

// sweep appends one run per injection rate for a series.
func sweep(runs []Run, series string, rates []float64, make func(rate float64) vichar.Config) []Run {
	for _, r := range rates {
		cfg := make(r)
		cfg.InjectionRate = r
		cfg.Seed = seedFor(series, r)
		runs = append(runs, Run{Series: series, X: r, Config: cfg})
	}
	return runs
}

// Fig12a builds Figure 12(a): average latency vs injection rate under
// Uniform Random traffic for Normal Random and Tornado destinations,
// GEN-16 vs ViC-16.
func Fig12a() *Experiment {
	e := &Experiment{
		ID:     "fig12a",
		Title:  "Average Latency (UR Traffic)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
		dest   vichar.DestPattern
	}{
		{"GEN-NR-16", vichar.Generic, vichar.NormalRandom},
		{"ViC-NR-16", vichar.ViChaR, vichar.NormalRandom},
		{"GEN-TN-16", vichar.Generic, vichar.Tornado},
		{"ViC-TN-16", vichar.ViChaR, vichar.Tornado},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, 16)
			cfg.Dest = v.dest
			return cfg
		})
	}
	return e
}

// Fig12b builds Figure 12(b): the same comparison under Self-Similar
// traffic.
func Fig12b() *Experiment {
	e := Fig12a()
	e.ID = "fig12b"
	e.Title = "Average Latency (SS Traffic)"
	// Self-similar sources cannot exceed their ON-peak; the paper
	// sweeps SS to 0.35.
	var runs []Run
	for _, r := range e.Runs {
		if r.X > 0.36 {
			continue
		}
		r.Config.Traffic = vichar.SelfSimilar
		runs = append(runs, r)
	}
	e.Runs = runs
	return e
}

// Fig12c builds Figure 12(c): percent buffer occupancy at injection
// rates just before saturation for GEN-16/12 and ViC-16/12/8.
func Fig12c() *Experiment {
	e := &Experiment{
		ID:     "fig12c",
		Title:  "% Buffer Occupancy (UR, pre-saturation)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Occupancy,
	}
	rates := []float64{0.25, 0.275, 0.30, 0.325, 0.35}
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
		slots  int
	}{
		{"GEN-16", vichar.Generic, 16},
		{"GEN-12", vichar.Generic, 12},
		{"ViC-16", vichar.ViChaR, 16},
		{"ViC-12", vichar.ViChaR, 12},
		{"ViC-8", vichar.ViChaR, 8},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			return baseConfig(v.arch, v.slots)
		})
	}
	return e
}

// bufferSizeLadder is the GEN-16 / ViC-16 / ViC-12 / ViC-8 latency
// comparison of Figures 12(d) and 12(e).
func bufferSizeLadder(id, title string, traffic vichar.TrafficProcess) *Experiment {
	e := &Experiment{
		ID:     id,
		Title:  title,
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	if traffic == vichar.SelfSimilar {
		rates = rates[:7] // up to 0.35: SS peak bound
	}
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
		slots  int
	}{
		{"GEN-16", vichar.Generic, 16},
		{"ViC-16", vichar.ViChaR, 16},
		{"ViC-12", vichar.ViChaR, 12},
		{"ViC-8", vichar.ViChaR, 8},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, v.slots)
			cfg.Traffic = traffic
			return cfg
		})
	}
	return e
}

// Fig12d builds Figure 12(d): latency across ViChaR buffer sizes vs
// GEN-16, Uniform Random traffic.
func Fig12d() *Experiment {
	return bufferSizeLadder("fig12d", "Avg. Latency for Diff. Buffer Sizes (UR)", vichar.UniformRandom)
}

// Fig12e builds Figure 12(e): the same under Self-Similar traffic.
func Fig12e() *Experiment {
	return bufferSizeLadder("fig12e", "Avg. Latency for Diff. Buffer Sizes (SS)", vichar.SelfSimilar)
}

// Fig12f builds Figure 12(f): ViChaR latency as a function of its
// buffer size at injection rate 0.25, against the fixed GEN-16
// reference (the paper's 50.49-cycle dashed line).
func Fig12f() *Experiment {
	e := &Experiment{
		ID:     "fig12f",
		Title:  "ViChaR vs Generic Efficiency (UR, inj 0.25)",
		XLabel: "ViChaR Buffer Size (flits/port)",
		Metric: Latency,
	}
	const rate = 0.25
	for _, slots := range []int{4, 5, 6, 7, 8, 10, 12, 14, 16} {
		cfg := baseConfig(vichar.ViChaR, slots)
		cfg.InjectionRate = rate
		cfg.Seed = seedFor("ViChaR", float64(slots))
		e.Runs = append(e.Runs, Run{Series: "ViChaR", X: float64(slots), Config: cfg})
	}
	ref := baseConfig(vichar.Generic, 16)
	ref.InjectionRate = rate
	ref.Seed = seedFor("Generic (16 flits/port)", 16)
	e.Runs = append(e.Runs, Run{Series: "Generic (16 flits/port)", X: 16, Config: ref})
	return e
}

// Fig12g builds Figure 12(g): generic-router latency as a function of
// statically assigned buffer size (always 4 VCs) at injection 0.25.
func Fig12g() *Experiment {
	e := &Experiment{
		ID:     "fig12g",
		Title:  "Avg. Latency for Diff. Generic Buffer Sizes (UR, inj 0.25)",
		XLabel: "Buffer Size (flits/port)",
		Metric: Latency,
	}
	const rate = 0.25
	for _, slots := range []int{8, 12, 16, 20, 24} {
		cfg := baseConfig(vichar.Generic, slots)
		cfg.InjectionRate = rate
		cfg.Seed = seedFor("GEN", float64(slots))
		e.Runs = append(e.Runs, Run{Series: "GEN", X: float64(slots), Config: cfg})
	}
	return e
}

// Fig12h builds Figure 12(h): average network power consumption vs
// injection rate for GEN-16, ViC-16, ViC-12 and ViC-8.
func Fig12h() *Experiment {
	e := bufferSizeLadder("fig12h", "Avg. Power Consumption (UR)", vichar.UniformRandom)
	e.Metric = Power
	return e
}

// Fig12i builds Figure 12(i): average latency under minimal adaptive
// routing with escape-channel deadlock recovery, GEN-16 vs ViC-16.
func Fig12i() *Experiment {
	e := &Experiment{
		ID:     "fig12i",
		Title:  "Average Latency under Adaptive Routing (UR Traffic)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"GEN-16", vichar.Generic},
		{"ViC-16", vichar.ViChaR},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, 16)
			cfg.Routing = vichar.MinimalAdaptive
			cfg.EscapeVCs = 1
			return cfg
		})
	}
	return e
}

// Fig13a builds Figure 13(a): throughput vs injection rate, Uniform
// Random traffic.
func Fig13a() *Experiment {
	e := bufferSizeLadder("fig13a", "Throughput (UR Traffic)", vichar.UniformRandom)
	e.Metric = Throughput
	return e
}

// Fig13b builds Figure 13(b): throughput under Self-Similar traffic.
func Fig13b() *Experiment {
	e := bufferSizeLadder("fig13b", "Throughput (SS Traffic)", vichar.SelfSimilar)
	e.Metric = Throughput
	return e
}

// Fig13c builds Figure 13(c): throughput of two equal-size generic VC
// organizations (4 VCs x 3 flits and 3 VCs x 4 flits) against ViC-12.
func Fig13c() *Experiment {
	e := &Experiment{
		ID:     "fig13c",
		Title:  "Experimenting with Different Buffer Organizations (UR)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Throughput,
	}
	rates := injectionSweep()
	e.Runs = sweep(e.Runs, "GEN-12 (4x3)", rates, func(rate float64) vichar.Config {
		return genericShaped(4, 3)
	})
	e.Runs = sweep(e.Runs, "GEN-12 (3x4)", rates, func(rate float64) vichar.Config {
		return genericShaped(3, 4)
	})
	e.Runs = sweep(e.Runs, "ViC-12", rates, func(rate float64) vichar.Config {
		return baseConfig(vichar.ViChaR, 12)
	})
	return e
}

// Fig13d builds Figure 13(d): latency of ViC-16 against the DAMQ and
// FC-CB unified-buffer baselines, Uniform Random traffic.
func Fig13d() *Experiment {
	e := &Experiment{
		ID:     "fig13d",
		Title:  "ViChaR vs DAMQ vs FC-CB (UR)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"ViC-16", vichar.ViChaR},
		{"DAMQ-16", vichar.DAMQ},
		{"FC-CB-16", vichar.FCCB},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			return baseConfig(v.arch, 16)
		})
	}
	return e
}

// Fig13e builds Figure 13(e): the spatial variation of the average
// number of in-use VCs per node at injection rate 0.25 (ViC-16).
// The per-node map is in the single run's Results.PerNodeVCs.
func Fig13e() *Experiment {
	cfg := baseConfig(vichar.ViChaR, 16)
	cfg.InjectionRate = 0.25
	cfg.Seed = seedFor("ViC-16", 0.25)
	return &Experiment{
		ID:     "fig13e",
		Title:  "ViChaR's Spatial Variation in # of VCs (UR, inj 0.25)",
		XLabel: "Node",
		Metric: VCs,
		Runs:   []Run{{Series: "ViC-16", X: 0.25, Config: cfg}},
	}
}

// Fig13f builds Figure 13(f): the temporal variation of the average
// number of in-use VCs as the network fills (ViC-16). The time
// series is in the single run's Results.VCSeries.
func Fig13f() *Experiment {
	// Run near saturation so the fill-up ramp is pronounced, as in
	// the paper's figure.
	cfg := baseConfig(vichar.ViChaR, 16)
	cfg.InjectionRate = 0.45
	cfg.SampleEvery = 50
	cfg.Seed = seedFor("ViC-16", 0.45)
	return &Experiment{
		ID:     "fig13f",
		Title:  "ViChaR's Temporal Variation in # of VCs (UR, inj 0.45)",
		XLabel: "Simulation Time (cycles)",
		Metric: VCs,
		Runs:   []Run{{Series: "ViC-16", X: 0.45, Config: cfg}},
	}
}

// All returns every figure experiment in paper order. Table 1 and the
// half-buffer savings are analytic (no simulation) and exposed via
// vichar.Table1 and vichar.HalfBufferSavings.
func All() []*Experiment {
	return []*Experiment{
		Fig12a(), Fig12b(), Fig12c(), Fig12d(), Fig12e(), Fig12f(),
		Fig12g(), Fig12h(), Fig12i(),
		Fig13a(), Fig13b(), Fig13c(), Fig13d(), Fig13e(), Fig13f(),
	}
}

// ByID returns the experiment (paper figure or extension) with the
// given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range append(All(), Extras()...) {
		if e.ID == id {
			return e
		}
	}
	return nil
}
