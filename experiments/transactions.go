package experiments

import "vichar"

// ExtTransactions evaluates the network-interface transaction layer
// on all four buffer architectures: mean end-to-end transaction
// latency (request creation to retirement) as the per-node request
// rate sweeps toward the memory controllers' service limit. The
// workload is the DRAM-edge pattern — memory controllers on the left
// and right mesh columns, interior tiles issuing a 70/25/5
// read/write/atomic mix with half the writes posted — so request and
// response traffic contend for the same east/west channels and the
// class-separated VC partition is actually load-bearing. The p99 tail
// of every point travels in Results.Txn alongside the plotted mean.
func ExtTransactions() *Experiment {
	e := &Experiment{
		ID:     "ext-transactions",
		Title:  "Transactions: End-to-End Latency under Memory-Edge Traffic",
		XLabel: "Request Rate (requests/node/cycle)",
		Metric: TxnLatency,
	}
	rates := []float64{0.01, 0.02, 0.03, 0.04, 0.06}
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"GEN-16", vichar.Generic},
		{"ViC-16", vichar.ViChaR},
		{"DAMQ-16", vichar.DAMQ},
		{"FC-CB-16", vichar.FCCB},
	} {
		for _, rr := range rates {
			cfg := baseConfig(v.arch, 16)
			// The transaction layer is the sole traffic source; the
			// background Bernoulli injector is off.
			cfg.InjectionRate = 0
			cfg.Seed = seedFor(v.series, rr)
			cfg.Txn = vichar.Txn{
				Enabled:    true,
				Rate:       rr,
				ReadFrac:   0.70,
				WriteFrac:  0.25,
				AtomicFrac: 0.05,
				PostedFrac: 0.5,
				MemEdge:    true,
			}
			e.Runs = append(e.Runs, Run{Series: v.series, X: rr, Config: cfg})
		}
	}
	return e
}
