// Package experiments defines one runnable experiment per figure and
// table of the paper's evaluation (Section 4), plus a parallel sweep
// executor. Each experiment enumerates the simulations behind one
// paper artifact; Execute runs them across workers and assembles the
// series the paper plots.
//
// Experiments default to the paper's measurement protocol scaled
// down (quick mode); pass Paper() options to reproduce the full
// 100k-warm-up / 200k-measurement protocol.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"vichar"
)

// Metric names the Results field an experiment plots on its Y axis.
type Metric int

const (
	// Latency plots Results.AvgLatency (cycles).
	Latency Metric = iota
	// Throughput plots Results.Throughput (flits/cycle).
	Throughput
	// Occupancy plots Results.AvgOccupancy as a percentage.
	Occupancy
	// Power plots Results.AvgPowerWatts (W).
	Power
	// VCs plots Results.AvgInUseVCs (per port).
	VCs
	// TxnLatency plots Results.Txn.AvgLatency, the mean end-to-end
	// transaction latency (request creation to retirement, cycles).
	TxnLatency
	// TxnP99 plots Results.Txn.P99Latency, the transaction latency
	// tail (cycles).
	TxnP99
)

// String returns the axis label of the metric.
func (m Metric) String() string {
	switch m {
	case Latency:
		return "Latency (cycles)"
	case Throughput:
		return "Throughput (flits/cycle)"
	case Occupancy:
		return "% Buffer Occupancy"
	case Power:
		return "Avg. Power Cons. (W)"
	case VCs:
		return "Avg. # of In-Use VCs"
	case TxnLatency:
		return "Txn Latency (cycles)"
	case TxnP99:
		return "Txn p99 Latency (cycles)"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Value extracts the metric from finished results.
func (m Metric) Value(r *vichar.Results) float64 {
	switch m {
	case Latency:
		return r.AvgLatency
	case Throughput:
		return r.Throughput
	case Occupancy:
		return r.AvgOccupancy * 100
	case Power:
		return r.AvgPowerWatts
	case VCs:
		return r.AvgInUseVCs
	case TxnLatency:
		if r.Txn == nil {
			return 0
		}
		return r.Txn.AvgLatency
	case TxnP99:
		if r.Txn == nil {
			return 0
		}
		return r.Txn.P99Latency
	default:
		return 0
	}
}

// Run is one simulation within an experiment.
type Run struct {
	// Series is the legend label ("GEN-NR-16", "ViC-8", ...).
	Series string
	// X is the sweep coordinate (injection rate, buffer size, ...).
	X float64
	// Config is the full simulation configuration.
	Config vichar.Config
}

// Experiment enumerates the simulations behind one paper artifact.
type Experiment struct {
	// ID is the artifact identifier ("fig12a", "table1", ...).
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// XLabel names the sweep coordinate.
	XLabel string
	// Metric selects the plotted Y value.
	Metric Metric
	// Runs are the simulations to perform.
	Runs []Run
}

// Point is one finished simulation within a series. With replicated
// execution, Y is the across-replicate mean, YErr its standard error,
// and Results the first replicate's full results.
type Point struct {
	X       float64
	Y       float64
	YErr    float64
	Results vichar.Results
}

// Series is one legend entry's sweep.
type Series struct {
	Name   string
	Points []Point
}

// Outcome is a fully executed experiment.
type Outcome struct {
	Experiment *Experiment
	Series     []Series
}

// SeriesByName returns the named series, or nil.
func (o *Outcome) SeriesByName(name string) *Series {
	for i := range o.Series {
		if o.Series[i].Name == name {
			return &o.Series[i]
		}
	}
	return nil
}

// Options control execution scale and parallelism.
type Options struct {
	// WarmupPackets / MeasurePackets override the per-run protocol
	// when positive.
	WarmupPackets  int
	MeasurePackets int
	// MaxCycles caps each run when positive.
	MaxCycles int64
	// Workers bounds parallel simulations; 0 means GOMAXPROCS. The
	// effective job-level parallelism is additionally capped so that
	// jobs x per-run kernel workers never exceeds GOMAXPROCS (see
	// jobWorkers).
	Workers int
	// KernelWorkers, when positive, sets each run's cycle-kernel
	// worker count (Config.Workers): the two-phase kernel shards every
	// cycle across that many goroutines. Results are bit-identical at
	// any setting; it trades run-level for cycle-level parallelism.
	KernelWorkers int
	// Seed overrides every run's seed when nonzero.
	Seed int64
	// Replicates repeats each run with derived seeds and reports the
	// across-replicate mean and standard error per point; values
	// below 2 mean single runs.
	Replicates int
	// Progress, when non-nil, is called after each finished run.
	Progress func(done, total int)
}

// Quick returns options for fast, shape-preserving runs (a few
// thousand packets per point); suitable for tests and exploration.
func Quick() Options {
	return Options{WarmupPackets: 2_000, MeasurePackets: 6_000, MaxCycles: 120_000}
}

// Paper returns the paper's full measurement protocol: 100,000
// warm-up and 200,000 measured ejections per point.
func Paper() Options {
	return Options{WarmupPackets: 100_000, MeasurePackets: 200_000}
}

// apply merges the options into a run's configuration.
func (o Options) apply(cfg vichar.Config) vichar.Config {
	if o.WarmupPackets > 0 {
		cfg.WarmupPackets = o.WarmupPackets
	}
	if o.MeasurePackets > 0 {
		cfg.MeasurePackets = o.MeasurePackets
	}
	if o.MaxCycles > 0 {
		cfg.MaxCycles = o.MaxCycles
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.KernelWorkers > 0 {
		cfg.Workers = o.KernelWorkers
	}
	return cfg
}

// jobWorkers computes the effective job-level parallelism: the
// requested worker count (0 meaning all of GOMAXPROCS), clamped to
// the job total, and capped so that job-level parallelism times the
// widest per-run cycle kernel stays within GOMAXPROCS — each parallel
// run spawns its own kernel pool, and oversubscribing the scheduler
// with jobs x kernel workers goroutines would slow every run down.
func jobWorkers(requested, total, maxKernel, gomaxprocs int) int {
	if maxKernel < 1 {
		maxKernel = 1
	}
	budget := gomaxprocs / maxKernel
	if budget < 1 {
		budget = 1
	}
	workers := requested
	if workers <= 0 || workers > budget {
		workers = budget
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Execute runs every simulation of the experiment (times Replicates),
// fanning out across workers, and assembles the outcome. Series keep
// the order of first appearance in Runs; points are sorted by X.
func (e *Experiment) Execute(opts Options) (*Outcome, error) {
	reps := opts.Replicates
	if reps < 1 {
		reps = 1
	}
	total := len(e.Runs) * reps

	// The widest cycle kernel any run will spawn decides how many runs
	// can execute side by side without oversubscribing the scheduler.
	maxKernel := 1
	for i := range e.Runs {
		if w := opts.apply(e.Runs[i].Config).Workers; w > maxKernel {
			maxKernel = w
		}
	}
	workers := jobWorkers(opts.Workers, total, maxKernel, runtime.GOMAXPROCS(0))

	type job struct {
		run, rep int
	}
	type done struct {
		run, rep int
		res      vichar.Results
		err      error
	}

	jobs := make(chan job)
	results := make(chan done)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := opts.apply(e.Runs[j.run].Config)
				// Decorrelate replicates deterministically.
				cfg.Seed += int64(j.rep) * 1_000_000_007
				res, err := vichar.Run(cfg)
				results <- done{run: j.run, rep: j.rep, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := range e.Runs {
			for r := 0; r < reps; r++ {
				jobs <- job{run: i, rep: r}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	finished := make([][]vichar.Results, len(e.Runs))
	for i := range finished {
		finished[i] = make([]vichar.Results, reps)
	}
	count := 0
	var firstErr error
	for d := range results {
		if d.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s run %d: %w", e.ID, d.run, d.err)
		}
		finished[d.run][d.rep] = d.res
		count++
		if opts.Progress != nil {
			opts.Progress(count, total)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &Outcome{Experiment: e}
	index := map[string]int{}
	for i, r := range e.Runs {
		si, ok := index[r.Series]
		if !ok {
			si = len(out.Series)
			index[r.Series] = si
			out.Series = append(out.Series, Series{Name: r.Series})
		}
		ys := make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			ys[rep] = e.Metric.Value(&finished[i][rep])
		}
		mean, sem := meanStderr(ys)
		out.Series[si].Points = append(out.Series[si].Points, Point{
			X:       r.X,
			Y:       mean,
			YErr:    sem,
			Results: finished[i][0],
		})
	}
	for i := range out.Series {
		pts := out.Series[i].Points
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
	}
	return out, nil
}

// meanStderr returns the sample mean and the standard error of the
// mean (zero for fewer than two samples).
func meanStderr(xs []float64) (mean, sem float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	return mean, math.Sqrt(variance / float64(len(xs)))
}
