package experiments

import (
	"reflect"
	"testing"

	"vichar"
)

// TestBranchSweep checks the warm-once/branch-N protocol: every
// branch completes its measurement quota at its own rate, points line
// up with the requested rates, and the whole sweep is deterministic.
func TestBranchSweep(t *testing.T) {
	cfg := vichar.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = vichar.ViChaR
	cfg.InjectionRate = 0.15
	cfg.Seed = 5
	opts := Options{WarmupPackets: 60, MeasurePackets: 150, MaxCycles: 20_000, Workers: 2}
	rates := []float64{0.05, 0.15, 0.25}

	run := func() Series {
		s, err := BranchSweep(cfg, rates, Latency, opts)
		if err != nil {
			t.Fatalf("BranchSweep: %v", err)
		}
		return s
	}
	s := run()
	if len(s.Points) != len(rates) {
		t.Fatalf("sweep produced %d points, want %d", len(s.Points), len(rates))
	}
	for i, p := range s.Points {
		if p.X != rates[i] {
			t.Errorf("point %d at rate %v, want %v", i, p.X, rates[i])
		}
		if p.Results.InjectionRate != rates[i] {
			t.Errorf("point %d results report rate %v, want %v", i, p.Results.InjectionRate, rates[i])
		}
		if p.Results.MeasuredPackets != int64(opts.MeasurePackets) {
			t.Errorf("point %d measured %d packets, want %d", i, p.Results.MeasuredPackets, opts.MeasurePackets)
		}
		if p.Y <= 0 {
			t.Errorf("point %d has non-positive latency %v", i, p.Y)
		}
	}
	if again := run(); !reflect.DeepEqual(s, again) {
		t.Errorf("BranchSweep is not deterministic across invocations")
	}

	if _, err := BranchSweep(cfg, nil, Latency, opts); err == nil {
		t.Fatalf("BranchSweep accepted an empty rate list")
	}
}
