package experiments

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette holds distinguishable series colors (Okabe-Ito, color
// blind safe).
var svgPalette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#56B4E9", "#E69F00", "#000000", "#F0E442",
}

// svgMarkers cycles through point-marker shapes alongside colors.
var svgMarkers = []string{"circle", "square", "diamond", "triangle"}

// SVG renders the outcome as a self-contained SVG line chart with
// axes, tick labels, per-series markers and a legend — a publishable
// rendition of the paper figure. Error bars appear when the points
// carry replicate standard errors.
func (o *Outcome) SVG(width, height int) string {
	const (
		marginL = 64.0
		marginR = 16.0
		marginT = 40.0
		marginB = 56.0
	)
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB

	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range o.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y+p.YErr)
		}
	}
	if math.IsInf(minX, 1) {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05 // headroom

	sx := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return marginT + plotH - y/maxY*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`,
		width, height, width, height)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	b.WriteString("\n")

	// Title.
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="13" font-weight="bold">%s — %s</text>`,
		marginL, svgEscape(strings.ToUpper(o.Experiment.ID)), svgEscape(o.Experiment.Title))
	b.WriteString("\n")

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginL, marginT, marginL, marginT+plotH)
	b.WriteString("\n")

	// Ticks: five per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := maxY * float64(i) / 4
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
			sx(fx), marginT+plotH, sx(fx), marginT+plotH+4)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`,
			sx(fx), marginT+plotH+18, trimFloat(fx))
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
			marginL-4, sy(fy), marginL, sy(fy))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`,
			marginL-7, sy(fy)+4, trimFloat(fy))
		// light gridline
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`,
			marginL, sy(fy), marginL+plotW, sy(fy))
		b.WriteString("\n")
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`,
		marginL+plotW/2, float64(height)-12, svgEscape(o.Experiment.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, svgEscape(o.Experiment.Metric.String()))
	b.WriteString("\n")

	// Series.
	for si, s := range o.Series {
		color := svgPalette[si%len(svgPalette)]
		if len(s.Points) > 1 {
			var pts []string
			for _, p := range s.Points {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
				strings.Join(pts, " "), color)
			b.WriteString("\n")
		}
		for _, p := range s.Points {
			if p.YErr > 0 {
				fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`,
					sx(p.X), sy(p.Y-p.YErr), sx(p.X), sy(p.Y+p.YErr), color)
			}
			b.WriteString(svgMarker(svgMarkers[si%len(svgMarkers)], sx(p.X), sy(p.Y), color))
		}
		b.WriteString("\n")
	}

	// Legend (top-left inside the plot).
	for si, s := range o.Series {
		color := svgPalette[si%len(svgPalette)]
		y := marginT + 14 + float64(si)*15
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.5"/>`,
			marginL+8, y-4, marginL+28, y-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`, marginL+33, y, svgEscape(s.Name))
		b.WriteString("\n")
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// svgMarker emits one data-point marker.
func svgMarker(shape string, x, y float64, color string) string {
	const r = 3.0
	switch shape {
	case "square":
		return fmt.Sprintf(`<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>`,
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		return fmt.Sprintf(`<polygon points="%g,%g %g,%g %g,%g %g,%g" fill="%s"/>`,
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		return fmt.Sprintf(`<polygon points="%g,%g %g,%g %g,%g" fill="%s"/>`,
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	default:
		return fmt.Sprintf(`<circle cx="%g" cy="%g" r="%g" fill="%s"/>`, x, y, r, color)
	}
}

// trimFloat prints a tick value without trailing noise.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// svgEscape escapes XML-special characters in labels.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
