package experiments

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarks are the plot symbols assigned to series in order.
var seriesMarks = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// Chart renders the outcome as an ASCII scatter plot, width x height
// characters of plotting area, with axes and a legend — a terminal
// rendition of the paper's figure. Series beyond the mark alphabet
// reuse symbols.
func (o *Outcome) Chart(width, height int) string {
	if width < 8 || height < 4 {
		return o.Table()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range o.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) || maxY <= minY || maxX <= minX {
		return o.Table()
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range o.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, p := range s.Points {
			cx := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mark
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(o.Experiment.ID), o.Experiment.Title)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s%-*.3g%*.3g\n", "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%8sx: %s   y: %s\n", "", o.Experiment.XLabel, o.Experiment.Metric)
	for si, s := range o.Series {
		fmt.Fprintf(&b, "%8s%c = %s\n", "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}
