package experiments

import "vichar"

// Extras returns experiments beyond the paper's own artifacts: the
// extension features this library adds (speculative pipeline, hotspot
// traffic, variable-size packets, fault resilience, NIU transactions)
// evaluated with the same harness.
func Extras() []*Experiment {
	return []*Experiment{ExtSpeculative(), ExtHotspot(), ExtVariablePackets(), ExtResilience(), ExtTransactions()}
}

// ExtSpeculative compares the baseline 4-stage router against the
// speculative 3-stage organization (Peh & Dally, HPCA 2001) on both
// buffer architectures.
func ExtSpeculative() *Experiment {
	e := &Experiment{
		ID:     "ext-speculative",
		Title:  "Speculative (3-stage) vs Baseline (4-stage) Pipelines",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
		spec   bool
	}{
		{"GEN-16", vichar.Generic, false},
		{"GEN-16-spec", vichar.Generic, true},
		{"ViC-16", vichar.ViChaR, false},
		{"ViC-16-spec", vichar.ViChaR, true},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, 16)
			cfg.Speculative = v.spec
			return cfg
		})
	}
	return e
}

// ExtHotspot evaluates GEN-16 vs ViC-16 when 10% of packets target
// the mesh center (a shared resource such as a memory controller).
func ExtHotspot() *Experiment {
	e := &Experiment{
		ID:     "ext-hotspot",
		Title:  "Hotspot Traffic (10% to mesh center)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()[:7] // hotspots saturate early
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"GEN-16", vichar.Generic},
		{"ViC-16", vichar.ViChaR},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, 16)
			cfg.Dest = vichar.Hotspot
			cfg.HotspotFraction = 0.1
			return cfg
		})
	}
	return e
}

// ExtVariablePackets evaluates the variable-size packet protocol
// (1 to 8 flits, uniform) the paper's VC Control Table "can trivially
// be changed to accommodate".
func ExtVariablePackets() *Experiment {
	e := &Experiment{
		ID:     "ext-varpkt",
		Title:  "Variable-Size Packets (1-8 flits)",
		XLabel: "Injection Rate (flits/node/cycle)",
		Metric: Latency,
	}
	rates := injectionSweep()
	for _, v := range []struct {
		series string
		arch   vichar.BufferArch
	}{
		{"GEN-16", vichar.Generic},
		{"ViC-16", vichar.ViChaR},
	} {
		v := v
		e.Runs = sweep(e.Runs, v.series, rates, func(rate float64) vichar.Config {
			cfg := baseConfig(v.arch, 16)
			cfg.PacketSize = 1
			cfg.PacketSizeMax = 8
			return cfg
		})
	}
	return e
}
