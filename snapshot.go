package vichar

import (
	"encoding/json"
	"fmt"

	"vichar/internal/network"
	"vichar/internal/power"
	"vichar/internal/snap"
)

// This file is the public checkpoint/restore API. A snapshot is a
// versioned, checksummed, self-describing byte blob carrying the
// configuration (as JSON) and the network's complete mutable state —
// every buffered flit, in-flight link payload, pipeline register,
// arbiter pointer, credit mirror, retransmission hold, RNG stream
// position, statistic and staged metric. The resume contract is
// bit-identical: a simulator restored at cycle C and run to completion
// produces exactly the results, per-packet latencies, counters and
// flit-event streams of the simulator that ran straight through.
//
// Snapshots are legal only between Steps (Snapshot refuses mid-cycle
// state, which cannot arise through this package's API). Restore
// follows a construct-then-load discipline: the embedded configuration
// rebuilds all wiring, then only mutable values are loaded, so a
// snapshot never carries pointers, and any single corrupted byte is
// rejected by the envelope checksum before state is touched.

// Snapshot serializes the simulator's complete state. The staged
// metrics pipeline is captured as-is — deliberately not flushed first,
// so the restored run's registry drains on exactly the straight-through
// run's cadence.
func (s *Simulator) Snapshot() ([]byte, error) {
	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return nil, fmt.Errorf("vichar: snapshot config: %w", err)
	}
	w := snap.NewWriter()
	w.Section("config")
	w.Bytes(cfgJSON)
	if err := s.net.SaveState(w); err != nil {
		return nil, fmt.Errorf("vichar: snapshot: %w", err)
	}
	return w.Finish(), nil
}

// Overrides names the protocol parameters RestoreWith may change on a
// restored simulator. Only parameters that do not shape wired state
// are overridable — warm one simulator once, snapshot it, and branch N
// runs with different injection rates or measurement quotas from the
// same warmed state. A nil field keeps the snapshot's value.
type Overrides struct {
	// InjectionRate replaces the offered load (flits/node/cycle).
	InjectionRate *float64
	// WarmupPackets replaces the warm-up quota.
	WarmupPackets *int
	// MeasurePackets replaces the measurement quota.
	MeasurePackets *int
	// MaxCycles replaces the saturation cycle cap.
	MaxCycles *int64
}

// Restore rebuilds a simulator from a Snapshot blob. The restored
// simulator is indistinguishable from the one that produced the
// snapshot: running both forward produces bit-identical results.
func Restore(data []byte) (*Simulator, error) {
	return RestoreWith(data, Overrides{})
}

// RestoreWith rebuilds a simulator from a Snapshot blob with selected
// protocol parameters overridden; see Overrides.
func RestoreWith(data []byte, o Overrides) (*Simulator, error) {
	r, err := snap.Open(data)
	if err != nil {
		return nil, fmt.Errorf("vichar: restore: %w", err)
	}
	if err := r.Section("config"); err != nil {
		return nil, fmt.Errorf("vichar: restore: %w", err)
	}
	raw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vichar: restore: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("vichar: restore config: %w", err)
	}
	if o.InjectionRate != nil {
		cfg.InjectionRate = *o.InjectionRate
	}
	if o.WarmupPackets != nil {
		cfg.WarmupPackets = *o.WarmupPackets
	}
	if o.MeasurePackets != nil {
		cfg.MeasurePackets = *o.MeasurePackets
	}
	if o.MaxCycles != nil {
		cfg.MaxCycles = *o.MaxCycles
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vichar: restore: %w", err)
	}
	s := &Simulator{
		cfg:   cfg,
		net:   network.New(&cfg),
		model: power.NewModel(&cfg),
	}
	if err := s.net.LoadState(r); err != nil {
		return nil, fmt.Errorf("vichar: restore: %w", err)
	}
	return s, nil
}

// Ejected returns the number of packets ejected so far; with Created
// it tells whether a prospective checkpoint would land mid-packet.
func (s *Simulator) Ejected() int64 { return s.net.Collector().Ejected() }

// Created returns the number of packets created so far.
func (s *Simulator) Created() int64 { return s.net.CreatedPackets() }

// Latencies returns a copy of the per-packet latencies recorded in
// the measurement window so far; the bit-identical resume contract
// covers it sample for sample.
func (s *Simulator) Latencies() []int64 { return s.net.Collector().Latencies() }

// RunCheckpointed executes the full measurement protocol like Run,
// additionally handing sink a fresh snapshot roughly every `every`
// cycles. A non-nil error from sink aborts the run.
func (s *Simulator) RunCheckpointed(every int64, sink func(cycle int64, data []byte) error) (Results, error) {
	if every <= 0 {
		return Results{}, fmt.Errorf("vichar: checkpoint interval %d, want > 0", every)
	}
	next := s.net.Now() + every
	res, err := s.net.RunWith(func(now int64) error {
		if now < next {
			return nil
		}
		next = now + every
		data, err := s.Snapshot()
		if err != nil {
			return err
		}
		return sink(now, data)
	})
	if err != nil {
		return Results{}, err
	}
	s.model.Annotate(&res)
	return res, nil
}
