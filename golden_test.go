package vichar_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vichar"
)

// update rewrites the golden fixtures instead of comparing:
//
//	go test . -run TestGoldenResults -update
//
// Review the diff before committing — a changed fixture means the
// simulator's observable behavior changed.
var update = flag.Bool("update", false, "rewrite the golden fixtures under testdata/golden")

// goldenConfig is the fixture platform: a 4x4 mesh under the quick
// protocol, small enough that all five runs finish in seconds but
// busy enough that every pipeline stage, allocator and link sees
// traffic. Workers is left serial; TestWorkersBitIdentical separately
// guarantees any worker count produces these exact results.
func goldenConfig(arch vichar.BufferArch) vichar.Config {
	cfg := vichar.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = arch
	cfg.InjectionRate = 0.25
	cfg.WarmupPackets = 30
	cfg.MeasurePackets = 200
	cfg.Seed = 1719
	return cfg
}

// TestGoldenResults is the regression wall: complete Results of one
// deterministic run per buffer architecture (plus one faulted run),
// compared byte-for-byte against committed fixtures. Any behavioral
// change — an arbitration tweak, a counter added, a float reordered —
// shows up as a fixture diff that must be reviewed and regenerated
// deliberately with -update.
func TestGoldenResults(t *testing.T) {
	cases := []struct {
		name string
		cfg  vichar.Config
	}{
		{"generic", goldenConfig(vichar.Generic)},
		{"vichar", goldenConfig(vichar.ViChaR)},
		{"damq", goldenConfig(vichar.DAMQ)},
		{"fccb", goldenConfig(vichar.FCCB)},
	}
	faulty := goldenConfig(vichar.ViChaR)
	faulty.Audit = true
	faulty.Faults = vichar.Faults{
		Seed:        5,
		DropRate:    0.002,
		CorruptRate: 0.001,
		StallRate:   0.0005,
	}
	cases = append(cases, struct {
		name string
		cfg  vichar.Config
	}{"vichar-faults", faulty})

	// One transaction-layer run per architecture: the NIU request/
	// response protocol, class-separated VC partition and memory-edge
	// responders all feed the fixture, including the Results.Txn
	// latency block.
	for _, arch := range []struct {
		name string
		arch vichar.BufferArch
	}{
		{"txn-generic", vichar.Generic},
		{"txn-vichar", vichar.ViChaR},
		{"txn-damq", vichar.DAMQ},
		{"txn-fccb", vichar.FCCB},
	} {
		cfg := goldenConfig(arch.arch)
		cfg.InjectionRate = 0
		cfg.Txn = vichar.Txn{
			Enabled:    true,
			Rate:       0.04,
			ReadFrac:   0.7,
			WriteFrac:  0.25,
			AtomicFrac: 0.05,
			PostedFrac: 0.5,
			MemEdge:    true,
		}
		cases = append(cases, struct {
			name string
			cfg  vichar.Config
		}{arch.name, cfg})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := vichar.Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", c.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test . -run TestGoldenResults -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("results diverged from %s\ngot:\n%s\nwant:\n%s\n(if the change is intended, regenerate with: go test . -run TestGoldenResults -update)",
					path, got, want)
			}
		})
	}
}
