package vichar_test

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"vichar"
)

// This file enforces the checkpoint/restore contract: a simulator
// restored from a snapshot taken at cycle C and run to completion is
// bit-identical to the simulator that ran straight through — results,
// per-packet latencies, counters and flit-event streams — for every
// architecture, with faults and metrics on, at several C including
// cuts landing mid-packet, in-process and across a process boundary.

// snapCfg is the matrix base: a small mesh with enough traffic that
// any cut past the first few cycles lands mid-packet.
func snapCfg(arch vichar.BufferArch) vichar.Config {
	cfg := vichar.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = arch
	cfg.InjectionRate = 0.20
	cfg.WarmupPackets = 40
	cfg.MeasurePackets = 120
	cfg.MaxCycles = 20000
	cfg.Seed = 7
	cfg.SampleEvery = 16
	return cfg
}

// withFaults turns on rate-driven transient faults plus one scheduled
// stall so retransmission and stall state is exercised.
func withFaults(cfg vichar.Config) vichar.Config {
	cfg.Faults = vichar.Faults{
		Seed:        11,
		DropRate:    0.02,
		CorruptRate: 0.01,
		StallRate:   0.002,
		Events: []vichar.FaultEvent{
			{Kind: vichar.StallPort, Node: 5, Port: 1, Cycle: 60, Cycles: 12},
		},
	}
	return cfg
}

// runOutput is everything the bit-identical contract covers.
type runOutput struct {
	res    vichar.Results
	lats   []int64
	events []vichar.FlitEvent
}

// finish runs s to completion and captures the contract surface.
func finish(s *vichar.Simulator) runOutput {
	defer s.Close()
	return runOutput{res: s.Run(), lats: s.Latencies(), events: s.FlitEvents()}
}

// digest hashes a run's output exactly: %#v prints float64s with the
// shortest round-tripping representation, so equal digests mean
// bit-equal values.
func (o runOutput) digest() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v|%#v|%#v", o.res, o.lats, o.events)))
	return fmt.Sprintf("%x", h)
}

func compareRuns(t *testing.T, want, got runOutput, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.res, got.res) {
		t.Errorf("%s: results diverge\nstraight: %+v\nresumed:  %+v", label, want.res, got.res)
	}
	if !reflect.DeepEqual(want.lats, got.lats) {
		t.Errorf("%s: per-packet latencies diverge (%d vs %d samples)", label, len(want.lats), len(got.lats))
	}
	if !reflect.DeepEqual(want.events, got.events) {
		t.Errorf("%s: flit-event streams diverge (%d vs %d events)", label, len(want.events), len(got.events))
	}
}

// stepTo advances s to cycle c.
func stepTo(t *testing.T, s *vichar.Simulator, c int64) {
	t.Helper()
	for s.Now() < c {
		s.Step()
	}
}

// checkResume asserts the bit-identical resume contract for cfg at
// three cuts spread across the run (all strictly before the
// straight-through run's final cycle, where the protocols align), and
// that restoring and immediately re-snapshotting reproduces the blob
// byte for byte. It returns whether any cut landed mid-packet.
func checkResume(t *testing.T, cfg vichar.Config) bool {
	t.Helper()
	base, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	want := finish(base)
	total := want.res.TotalCycles
	if total < 8 {
		t.Fatalf("straight-through run lasted only %d cycles; config too small to cut", total)
	}
	cuts := []int64{total / 5, total / 2, total * 3 / 4}
	midPacket := false
	prev := int64(-1)
	for _, c := range cuts {
		if c <= 0 || c == prev {
			continue
		}
		prev = c
		s, err := vichar.NewSimulator(cfg)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		stepTo(t, s, c)
		if s.Created() > s.Ejected() {
			midPacket = true
		}
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at cycle %d: %v", c, err)
		}
		s.Close()

		r, err := vichar.Restore(blob)
		if err != nil {
			t.Fatalf("Restore at cycle %d: %v", c, err)
		}
		if r.Now() != c {
			t.Fatalf("restored simulator at cycle %d, want %d", r.Now(), c)
		}
		again, err := r.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot at cycle %d: %v", c, err)
		}
		if !bytes.Equal(blob, again) {
			t.Errorf("cycle %d: snapshot of restored simulator differs from original blob", c)
		}
		compareRuns(t, want, finish(r), fmt.Sprintf("cut at cycle %d", c))
	}
	return midPacket
}

// TestSnapshotResumeBitIdentical is the headline enforcement: all
// four architectures, faults on, metrics and event tracing on, cuts
// at three cycles including mid-packet and mid-warmup ones — and the
// same matrix again with the NIU transaction layer running, so the
// engine's rng streams, pending tables, memory-controller queues and
// per-class NI streams all cross the snapshot boundary.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	for _, arch := range []vichar.BufferArch{vichar.Generic, vichar.ViChaR, vichar.DAMQ, vichar.FCCB} {
		for _, txnOn := range []bool{false, true} {
			name := fmt.Sprint(arch)
			if txnOn {
				name += "-txn"
			}
			t.Run(name, func(t *testing.T) {
				cfg := withFaults(snapCfg(arch))
				cfg.Metrics = true
				cfg.TraceEvents = 4096
				if txnOn {
					cfg.Txn = vichar.Txn{
						Enabled:    true,
						Rate:       0.04,
						ReadFrac:   0.7,
						WriteFrac:  0.25,
						AtomicFrac: 0.05,
						PostedFrac: 0.5,
						MemEdge:    true,
					}
				}
				if !checkResume(t, cfg) {
					t.Fatalf("no cut landed mid-packet; test lost its teeth")
				}
			})
		}
	}
}

// TestSnapshotResumeMatrix sweeps the satellite matrix: each
// architecture under a torus topology, a multi-worker kernel, and an
// adaptive-routing escape configuration.
func TestSnapshotResumeMatrix(t *testing.T) {
	variants := []struct {
		name string
		mut  func(vichar.Config) vichar.Config
	}{
		{"torus", func(c vichar.Config) vichar.Config { c.Torus = true; return c }},
		{"workers", func(c vichar.Config) vichar.Config { c.Workers = 4; return c }},
		{"adaptive", func(c vichar.Config) vichar.Config {
			c.Routing = vichar.MinimalAdaptive
			c.EscapeVCs = 1
			c.DeadlockThreshold = 16
			return c
		}},
		{"selfsimilar", func(c vichar.Config) vichar.Config { c.Traffic = vichar.SelfSimilar; return c }},
	}
	for _, arch := range []vichar.BufferArch{vichar.Generic, vichar.ViChaR, vichar.DAMQ, vichar.FCCB} {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%v-%s", arch, v.name), func(t *testing.T) {
				checkResume(t, v.mut(snapCfg(arch)))
			})
		}
	}
}

// TestRestoreWithOverrides branches a warmed snapshot onto a
// different injection rate and quota; the branch must adopt the
// overridden protocol and still complete deterministically.
func TestRestoreWithOverrides(t *testing.T) {
	cfg := snapCfg(vichar.ViChaR)
	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	stepTo(t, s, 100)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	rate := 0.05
	measure := 60
	branch := func() runOutput {
		r, err := vichar.RestoreWith(blob, vichar.Overrides{InjectionRate: &rate, MeasurePackets: &measure})
		if err != nil {
			t.Fatalf("RestoreWith: %v", err)
		}
		if got := r.Config().InjectionRate; got != rate {
			t.Fatalf("branch injection rate %v, want %v", got, rate)
		}
		return finish(r)
	}
	first, second := branch(), branch()
	compareRuns(t, first, second, "override branches")
	if first.res.InjectionRate != rate {
		t.Errorf("branch results report rate %v, want %v", first.res.InjectionRate, rate)
	}

	bad := -0.5
	if _, err := vichar.RestoreWith(blob, vichar.Overrides{InjectionRate: &bad}); err == nil {
		t.Fatalf("RestoreWith accepted a negative injection rate")
	}
}

// TestRunCheckpointed drives the periodic-checkpoint runner and
// resumes from its last emitted snapshot.
func TestRunCheckpointed(t *testing.T) {
	cfg := snapCfg(vichar.Generic)
	base, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	want := finish(base)

	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	var blobs [][]byte
	var cycles []int64
	res, err := s.RunCheckpointed(100, func(cycle int64, data []byte) error {
		cycles = append(cycles, cycle)
		blobs = append(blobs, data)
		return nil
	})
	s.Close()
	if err != nil {
		t.Fatalf("RunCheckpointed: %v", err)
	}
	if !reflect.DeepEqual(res, want.res) {
		t.Errorf("checkpointed run diverges from plain run")
	}
	if len(blobs) == 0 {
		t.Fatalf("RunCheckpointed emitted no snapshots over %d cycles", res.TotalCycles)
	}
	r, err := vichar.Restore(blobs[len(blobs)-1])
	if err != nil {
		t.Fatalf("Restore of last checkpoint (cycle %d): %v", cycles[len(cycles)-1], err)
	}
	compareRuns(t, want, finish(r), "resume from last periodic checkpoint")

	s2, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	defer s2.Close()
	if _, err := s2.RunCheckpointed(0, func(int64, []byte) error { return nil }); err == nil {
		t.Fatalf("RunCheckpointed accepted a non-positive interval")
	}
}

// TestSnapshotRestoreSubprocess proves the snapshot is self-contained:
// a fresh process restores the blob and finishes with the same digest
// as the straight-through run in this process. The child is this same
// test re-executed with VICHAR_RESTORE_SNAPSHOT set.
func TestSnapshotRestoreSubprocess(t *testing.T) {
	if path := os.Getenv("VICHAR_RESTORE_SNAPSHOT"); path != "" {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("helper: %v", err)
		}
		r, err := vichar.Restore(blob)
		if err != nil {
			t.Fatalf("helper: %v", err)
		}
		fmt.Printf("RESTORE-DIGEST %s\n", finish(r).digest())
		return
	}

	cfg := withFaults(snapCfg(vichar.ViChaR))
	cfg.Metrics = true
	cfg.TraceEvents = 4096

	base, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	want := finish(base).digest()

	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	stepTo(t, s, 150)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()
	path := filepath.Join(t.TempDir(), "mid.snap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestSnapshotRestoreSubprocess$", "-test.v")
	cmd.Env = append(os.Environ(), "VICHAR_RESTORE_SNAPSHOT="+path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, out)
	}
	got := ""
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		if _, err := fmt.Sscanf(sc.Text(), "RESTORE-DIGEST %s", &got); err == nil {
			break
		}
	}
	if got == "" {
		t.Fatalf("helper printed no digest:\n%s", out)
	}
	if got != want {
		t.Errorf("cross-process resume digest %s, straight-through %s", got, want)
	}
}

// TestSnapshotCorruptionRejected flips a single bit at sampled
// offsets across the blob (plus every header and trailer byte);
// Restore must reject each mutant before loading any state.
func TestSnapshotCorruptionRejected(t *testing.T) {
	cfg := withFaults(snapCfg(vichar.Generic))
	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	stepTo(t, s, 120)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	offsets := make(map[int]bool)
	for i := 0; i < 24 && i < len(blob); i++ {
		offsets[i] = true // magic, version, config length
	}
	for i := len(blob) - 8; i < len(blob); i++ {
		offsets[i] = true // checksum trailer
	}
	stride := len(blob)/512 + 1
	for i := 0; i < len(blob); i += stride {
		offsets[i] = true
	}
	for off := range offsets {
		mutant := append([]byte(nil), blob...)
		mutant[off] ^= 0x10
		if _, err := vichar.Restore(mutant); err == nil {
			t.Fatalf("Restore accepted a snapshot with byte %d flipped", off)
		}
	}
	for _, n := range []int{0, 1, 7, 8, 12, len(blob) / 2, len(blob) - 1} {
		if _, err := vichar.Restore(blob[:n]); err == nil {
			t.Fatalf("Restore accepted a snapshot truncated to %d bytes", n)
		}
	}
	if _, err := vichar.Restore(append(append([]byte(nil), blob...), 0xEE)); err == nil {
		t.Fatalf("Restore accepted a snapshot with trailing garbage")
	}
}

// FuzzRestore feeds arbitrary mutations of a valid snapshot to
// Restore: it must either reject the input or yield a simulator that
// survives stepping — never panic.
func FuzzRestore(f *testing.F) {
	cfg := withFaults(snapCfg(vichar.ViChaR))
	cfg.Metrics = true
	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		f.Fatalf("NewSimulator: %v", err)
	}
	stepTo := func(c int64) {
		for s.Now() < c {
			s.Step()
		}
	}
	stepTo(90)
	blob, err := s.Snapshot()
	if err != nil {
		f.Fatalf("Snapshot: %v", err)
	}
	s.Close()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:9])
	f.Add([]byte("VCHRSNAP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := vichar.Restore(data)
		if err != nil {
			return
		}
		defer r.Close()
		for i := 0; i < 3; i++ {
			r.Step()
		}
	})
}
