package vichar_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vichar"
)

func TestParseBufferArch(t *testing.T) {
	cases := map[string]vichar.BufferArch{
		"generic": vichar.Generic,
		"GEN":     vichar.Generic,
		"vichar":  vichar.ViChaR,
		"ViC":     vichar.ViChaR,
		"damq":    vichar.DAMQ,
		"FC-CB":   vichar.FCCB,
		"fccb":    vichar.FCCB,
		" vic ":   vichar.ViChaR,
	}
	for in, want := range cases {
		got, err := vichar.ParseBufferArch(in)
		if err != nil || got != want {
			t.Errorf("ParseBufferArch(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := vichar.ParseBufferArch("bogus"); err == nil {
		t.Error("bogus architecture accepted")
	}
}

func TestParseRouting(t *testing.T) {
	if got, err := vichar.ParseRouting("XY"); err != nil || got != vichar.XY {
		t.Errorf("XY: %v, %v", got, err)
	}
	if got, err := vichar.ParseRouting("adaptive"); err != nil || got != vichar.MinimalAdaptive {
		t.Errorf("adaptive: %v, %v", got, err)
	}
	if _, err := vichar.ParseRouting("chaotic"); err == nil {
		t.Error("bogus routing accepted")
	}
}

func TestParseTraffic(t *testing.T) {
	if got, err := vichar.ParseTraffic("ur"); err != nil || got != vichar.UniformRandom {
		t.Errorf("ur: %v, %v", got, err)
	}
	if got, err := vichar.ParseTraffic("self-similar"); err != nil || got != vichar.SelfSimilar {
		t.Errorf("ss: %v, %v", got, err)
	}
	if _, err := vichar.ParseTraffic("bursty"); err == nil {
		t.Error("bogus traffic accepted")
	}
}

func TestParseDest(t *testing.T) {
	cases := map[string]vichar.DestPattern{
		"nr":       vichar.NormalRandom,
		"tornado":  vichar.Tornado,
		"tp":       vichar.Transpose,
		"bc":       vichar.BitComplement,
		"hotspot":  vichar.Hotspot,
		"HS":       vichar.Hotspot,
		"Tornado ": vichar.Tornado,
	}
	for in, want := range cases {
		got, err := vichar.ParseDest(in)
		if err != nil || got != want {
			t.Errorf("ParseDest(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := vichar.ParseDest("everywhere"); err == nil {
		t.Error("bogus pattern accepted")
	}
}

// Round trip: parsing each enum's String form (or its conventional
// alias) returns the value.
func TestParseStringRoundTrip(t *testing.T) {
	for _, a := range []vichar.BufferArch{vichar.Generic, vichar.ViChaR, vichar.DAMQ, vichar.FCCB} {
		if got, err := vichar.ParseBufferArch(a.String()); err != nil || got != a {
			t.Errorf("arch %v round trip: %v, %v", a, got, err)
		}
	}
	for _, d := range []vichar.DestPattern{vichar.NormalRandom, vichar.Tornado, vichar.Transpose, vichar.BitComplement, vichar.Hotspot} {
		if got, err := vichar.ParseDest(d.String()); err != nil || got != d {
			t.Errorf("dest %v round trip: %v, %v", d, got, err)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := vichar.DefaultConfig()
	cfg.Arch = vichar.ViChaR
	cfg.Routing = vichar.MinimalAdaptive
	cfg.Traffic = vichar.SelfSimilar
	cfg.Dest = vichar.Tornado
	cfg.InjectionRate = 0.33
	cfg.BufferSlots = 12

	var buf bytes.Buffer
	if err := vichar.SaveConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"ViC"`, `"MinAdaptive"`, `"SS"`, `"TN"`} {
		if !strings.Contains(s, want) {
			t.Errorf("json missing readable enum %s:\n%s", want, s)
		}
	}
	got, err := vichar.LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", got, cfg)
	}
}

func TestLoadConfigPartial(t *testing.T) {
	// A file with only overrides inherits the defaults.
	in := strings.NewReader(`{"Arch":"vichar","InjectionRate":0.4}`)
	cfg, err := vichar.LoadConfig(in)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arch != vichar.ViChaR || cfg.InjectionRate != 0.4 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.Width != 8 || cfg.VCs != 4 {
		t.Fatalf("defaults lost: %+v", cfg)
	}
}

func TestLoadConfigRejects(t *testing.T) {
	if _, err := vichar.LoadConfig(strings.NewReader(`{"Arch":"bogus"}`)); err == nil {
		t.Error("bogus enum accepted")
	}
	if _, err := vichar.LoadConfig(strings.NewReader(`{"NotAField":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := vichar.LoadConfig(strings.NewReader(`{"InjectionRate":7}`)); err == nil {
		t.Error("invalid config accepted")
	}
}
