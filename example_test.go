package vichar_test

import (
	"fmt"
	"log"

	"vichar"
)

// The smallest complete simulation: the paper's 8x8 platform with a
// ViChaR buffer under moderate uniform-random load.
func Example() {
	cfg := vichar.DefaultConfig()
	cfg.Arch = vichar.ViChaR
	cfg.InjectionRate = 0.10
	cfg.WarmupPackets = 500
	cfg.MeasurePackets = 2000
	cfg.Seed = 1

	res, err := vichar.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Label, res.MeasuredPackets, res.Saturated)
	// Output: ViC-16 2000 false
}

// Manual packet injection with a Simulator instead of the stochastic
// traffic generator.
func ExampleSimulator_Inject() {
	cfg := vichar.DefaultConfig()
	cfg.InjectionRate = 0 // no generated traffic
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1

	sim, err := vichar.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src := vichar.NodeAt(cfg, 0, 0)
	dst := vichar.NodeAt(cfg, 7, 7)
	p := sim.Inject(src, dst)
	if left := sim.Drain(10_000); left != 0 {
		log.Fatal("undelivered")
	}
	fmt.Println(p.Latency() > 0)
	// Output: true
}

// Regenerating Table 1 from the synthesis model.
func ExampleTable1() {
	_, _, areaDelta, powerDelta := vichar.Table1()
	fmt.Printf("area %+.2f µm², power %+.2f mW per port\n", areaDelta, powerDelta)
	// Output: area -4282.05 µm², power +0.54 mW per port
}

// The paper's headline claim from the synthesis model.
func ExampleHalfBufferSavings() {
	area, power := vichar.HalfBufferSavings()
	fmt.Printf("%.0f%% area, %.0f%% power\n", area*100, power*100)
	// Output: 30% area, 34% power
}
