package vichar_test

import (
	"strings"
	"testing"

	"vichar"
)

func quickCfg() vichar.Config {
	cfg := vichar.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.15
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 600
	cfg.Seed = 21
	return cfg
}

func TestRunEndToEnd(t *testing.T) {
	cfg := quickCfg()
	res, err := vichar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredPackets != 600 {
		t.Fatalf("measured %d packets", res.MeasuredPackets)
	}
	if res.AvgLatency <= 0 || res.Throughput <= 0 {
		t.Fatalf("empty metrics: %+v", res)
	}
	if res.AvgPowerWatts <= 0 {
		t.Fatal("results not power-annotated")
	}
	if res.Label != "GEN-16" {
		t.Fatalf("label %q", res.Label)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.InjectionRate = 2.0
	_, err := vichar.Run(cfg)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "vichar:") {
		t.Fatalf("error %q not package-prefixed", err)
	}
	if _, err := vichar.NewSimulator(cfg); err == nil {
		t.Fatal("NewSimulator accepted invalid config")
	}
}

func TestSimulatorManualControl(t *testing.T) {
	cfg := quickCfg()
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	s, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatal("fresh simulator not at cycle 0")
	}
	p := s.Inject(0, 15)
	if p == nil || p.Src != 0 || p.Dst != 15 {
		t.Fatalf("inject returned %+v", p)
	}
	s.Step()
	if s.Now() != 1 {
		t.Fatal("step did not advance")
	}
	if left := s.Drain(10_000); left != 0 {
		t.Fatalf("%d packets stuck", left)
	}
	if p.EjectedAt == 0 {
		t.Fatal("packet not stamped")
	}
	if got := s.Config().Width; got != 4 {
		t.Fatalf("config accessor wrong: %d", got)
	}
}

func TestCoordinateHelpers(t *testing.T) {
	cfg := vichar.DefaultConfig()
	n := vichar.NodeAt(cfg, 3, 2)
	x, y := vichar.CoordsOf(cfg, n)
	if x != 3 || y != 2 {
		t.Fatalf("round trip (3,2) -> %d -> (%d,%d)", n, x, y)
	}
}

func TestTable1API(t *testing.T) {
	vic, gen, areaDelta, powerDelta := vichar.Table1()
	if len(vic) != 5 || len(gen) != 5 {
		t.Fatalf("table shape %d/%d rows", len(vic), len(gen))
	}
	if areaDelta >= 0 {
		t.Fatal("ViChaR should save port area")
	}
	if powerDelta <= 0 {
		t.Fatal("ViChaR should cost slightly more port power")
	}
}

func TestSynthesizeAPI(t *testing.T) {
	cfg := vichar.DefaultConfig()
	b := vichar.Synthesize(cfg)
	if b.RouterArea() <= 0 || b.RouterPower() <= 0 {
		t.Fatal("synthesis estimate empty")
	}
	if vichar.StaticPowerWatts(cfg) <= 0 {
		t.Fatal("static power missing")
	}
}

func TestArchitectureConstantsDistinct(t *testing.T) {
	archs := map[vichar.BufferArch]bool{
		vichar.Generic: true, vichar.ViChaR: true, vichar.DAMQ: true, vichar.FCCB: true,
	}
	if len(archs) != 4 {
		t.Fatal("architecture constants collide")
	}
}

// TestSimulatorCloseIdempotent locks the Close contract at the public
// API level: Close may be called any number of times, interleaved
// with Step, on a parallel simulator, without panicking or leaking
// the worker pool.
func TestSimulatorCloseIdempotent(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 4
	sim, err := vichar.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sim.Step()
	}
	sim.Close()
	sim.Close() // second Close must be a no-op
	// The simulator stays usable serially after Close.
	before := sim.Now()
	sim.Step()
	if sim.Now() != before+1 {
		t.Fatalf("step after Close did not advance the clock (%d -> %d)", before, sim.Now())
	}
	sim.Close()
}
