// Observability-layer overhead benchmarks (DESIGN.md §11): the
// metrics registry and flit tracer ride the router's per-cycle hot
// path, so their cost is measured explicitly — above all the cost of
// having them compiled in but switched off, which every ordinary run
// pays.
//
//	go test -bench=BenchmarkMetricsOverhead
//	make bench-obs
package vichar_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"vichar"
	"vichar/internal/benchfmt"
)

// obsBenchModes are the instrumentation levels the overhead gate
// sweeps, from the always-on baseline to full event tracing.
var obsBenchModes = []struct {
	name    string
	metrics bool
	trace   int
}{
	{"disabled", false, 0},
	{"metrics", true, 0},
	{"metrics+trace", true, 1 << 16},
}

// obsBenchConfig is kernelBenchConfig's platform with one
// observability mode applied.
func obsBenchConfig(mode int) vichar.Config {
	cfg := kernelBenchConfig(vichar.ViChaR, 8, kernelSaturatedRate, 1)
	cfg.Metrics = obsBenchModes[mode].metrics
	cfg.TraceEvents = obsBenchModes[mode].trace
	return cfg
}

// BenchmarkMetricsOverhead measures the same near-saturation ViChaR
// run at each instrumentation level. The disabled mode is the
// acceptance gate: it must stay within noise of the pre-observability
// kernel baseline (every probe call is one nil check).
func BenchmarkMetricsOverhead(b *testing.B) {
	for mode := range obsBenchModes {
		cfg := obsBenchConfig(mode)
		b.Run(obsBenchModes[mode].name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runKernelOnce(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestObsBenchArtifact writes BENCH_obs.json — ns/run per
// instrumentation mode with overheads relative to the disabled mode —
// when VICHAR_OBS_JSON names the output path (see `make bench-obs`).
// Set VICHAR_OBS_SEED_NS to the seed kernel's ns/run on the same
// machine to also record the disabled mode's drift against the
// pre-observability baseline.
//
// Modes are measured in interleaved rounds (disabled, metrics,
// metrics+trace, repeat) and each mode reports its median round, so a
// load spike on a shared machine skews every mode alike instead of
// whichever one it landed on.
func TestObsBenchArtifact(t *testing.T) {
	path := os.Getenv("VICHAR_OBS_JSON")
	if path == "" {
		t.Skip("set VICHAR_OBS_JSON=<path> to write the observability benchmark artifact")
	}
	type row struct {
		Mode               string  `json:"mode"`
		NsPerRun           int64   `json:"ns_per_run"`
		OverheadPct        float64 `json:"overhead_pct_vs_disabled"`
		TraceEventsCap     int     `json:"trace_events_cap"`
		SimulatedCycles    int64   `json:"simulated_cycles"`
		RouterCyclesPerSec float64 `json:"router_cycles_per_sec"`
	}
	artifact := struct {
		Mesh           string        `json:"mesh"`
		Arch           string        `json:"arch"`
		InjectionRate  float64       `json:"injection_rate"`
		GOMAXPROCS     int           `json:"gomaxprocs"`
		Host           benchfmt.Host `json:"host"`
		Rounds         int           `json:"median_of_rounds"`
		SeedNsPerRun   int64         `json:"seed_ns_per_run,omitempty"`
		DisabledVsSeed float64       `json:"disabled_vs_seed_pct,omitempty"`
		Rows           []row         `json:"rows"`
	}{Mesh: "8x8", Arch: "ViC-16", InjectionRate: kernelSaturatedRate,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Host: benchfmt.CurrentHost(), Rounds: 7}

	const runsPerRound = 3
	benchCfg := obsBenchConfig(0)
	samples := make([][]int64, len(obsBenchModes))
	var cycles int64
	for round := 0; round < artifact.Rounds; round++ {
		for mode := range obsBenchModes {
			cfg := obsBenchConfig(mode)
			//vichar:nolint ambient-entropy wall clock measures benchmark duration, not simulation behavior
			start := time.Now()
			for i := 0; i < runsPerRound; i++ {
				c, err := runKernelOnce(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cycles = c
			}
			//vichar:nolint ambient-entropy wall clock measures benchmark duration, not simulation behavior
			samples[mode] = append(samples[mode], time.Since(start).Nanoseconds()/runsPerRound)
		}
	}

	median := func(xs []int64) int64 {
		s := append([]int64(nil), xs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	disabledNs := median(samples[0])
	for mode := range obsBenchModes {
		perRun := median(samples[mode])
		overhead := 0.0
		if disabledNs > 0 {
			overhead = 100 * (float64(perRun) - float64(disabledNs)) / float64(disabledNs)
		}
		artifact.Rows = append(artifact.Rows, row{
			Mode:               obsBenchModes[mode].name,
			NsPerRun:           perRun,
			OverheadPct:        overhead,
			TraceEventsCap:     obsBenchModes[mode].trace,
			SimulatedCycles:    cycles,
			RouterCyclesPerSec: float64(cycles*int64(benchCfg.Nodes())) * 1e9 / float64(perRun),
		})
		t.Logf("%s: %d ns/run (%+.2f%% vs disabled)", obsBenchModes[mode].name, perRun, overhead)
	}

	if seed := os.Getenv("VICHAR_OBS_SEED_NS"); seed != "" {
		seedNs, err := strconv.ParseInt(seed, 10, 64)
		if err != nil {
			t.Fatalf("bad VICHAR_OBS_SEED_NS %q: %v", seed, err)
		}
		artifact.SeedNsPerRun = seedNs
		artifact.DisabledVsSeed = 100 * (float64(disabledNs) - float64(seedNs)) / float64(seedNs)
		t.Logf("disabled vs seed baseline: %+.2f%%", artifact.DisabledVsSeed)
	}

	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
