module vichar

go 1.22
