// Command vichar-sim runs one NoC simulation from command-line flags
// and prints its metrics: the interactive front door to the
// simulator.
//
// Example — compare ViChaR to a generic buffer near saturation:
//
//	vichar-sim -arch vichar -rate 0.40
//	vichar-sim -arch generic -rate 0.40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"vichar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vichar-sim: ")

	var (
		arch      = flag.String("arch", "vichar", "buffer architecture: generic|vichar|damq|fccb")
		width     = flag.Int("width", 8, "mesh width")
		height    = flag.Int("height", 8, "mesh height")
		vcs       = flag.Int("vcs", 4, "virtual channels per port (fixed-VC schemes; design v for ViChaR)")
		depth     = flag.Int("depth", 4, "per-VC FIFO depth k (generic)")
		slots     = flag.Int("slots", 0, "buffer slots per port (default vcs*depth)")
		rate      = flag.Float64("rate", 0.25, "injection rate, flits/node/cycle")
		traffic   = flag.String("traffic", "ur", "traffic process: ur|ss")
		dest      = flag.String("dest", "nr", "destination pattern: nr|tornado|transpose|bitcomplement|hotspot")
		routing   = flag.String("routing", "xy", "routing: xy|adaptive")
		torus     = flag.Bool("torus", false, "wrap the mesh into a torus (requires escape VCs; enabled automatically)")
		warmup    = flag.Int("warmup", 10_000, "warm-up packets (ejected)")
		measure   = flag.Int("measure", 30_000, "measured packets (ejected)")
		seed      = flag.Int64("seed", 1, "random seed")
		series    = flag.Bool("vc-series", false, "print the in-use VC time series")
		grid      = flag.Bool("vc-grid", false, "print the per-node in-use VC grid")
		jsonOut   = flag.Bool("json", false, "print results as JSON instead of text")
		spec      = flag.Bool("speculative", false, "use the speculative 3-stage router pipeline")
		pktMax    = flag.Int("packet-max", 0, "maximum packet size for variable-size packets (0 = fixed)")
		traceIn   = flag.String("replay-trace", "", "replay a recorded packet trace instead of generated traffic")
		traceOut  = flag.String("record-trace", "", "record the packet workload to this file")
		confIn    = flag.String("config", "", "load the full configuration from a JSON file (other config flags are ignored)")
		confOut   = flag.String("save-config", "", "write the resolved configuration as JSON and exit")
		workers   = flag.Int("workers", 0, "cycle-kernel worker goroutines; 0/1 = serial, results identical at any setting")
		faultSpec = flag.String("faults", "",
			"fault model spec: seed=N,drop=R,corrupt=R,retx=N,stall=R[:N],kill=NODE.PORT@CYC,freeze=NODE.PORT@CYC+N,drop1=NODE.PORT@CYC")
		txnSpec = flag.String("txn", "",
			"transaction layer spec: rate=R,window=N,mix=READ/WRITE/ATOMIC,posted=F,service=N,queue=N,edge=B,reqs=N,shared=B,seed=N")
		auditOn = flag.Bool("audit", false, "run the per-cycle invariant auditor (slow; catches conservation bugs)")

		ckptEvery = flag.Int64("checkpoint-every", 0, "write a checkpoint every N cycles (requires -checkpoint-file)")
		ckptFile  = flag.String("checkpoint-file", "", "checkpoint destination; atomically replaced at each cadence")
		restoreIn = flag.String("restore", "", "resume from a checkpoint file (config flags are ignored; -rate/-warmup/-measure override the snapshot)")

		metricsAddr = flag.String("metrics-addr", "",
			"serve live Prometheus-text metrics at this address (/metrics, /trace, /debug/pprof/); implies -metrics")
		metricsOn  = flag.Bool("metrics", false, "enable the metrics registry even without -metrics-addr")
		traceCap   = flag.Int("trace-events", 0, "retain the newest N flit lifecycle events (implies -metrics)")
		traceJSONL = flag.String("trace-jsonl", "", "write the retained flit events to this JSONL file after the run (implies -trace-events 65536 unless set)")
	)
	flag.Parse()

	var cfg vichar.Config
	if *confIn != "" {
		f, err := os.Open(*confIn)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := vichar.LoadConfig(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg = loaded
	} else {
		var err error
		cfg = vichar.DefaultConfig()
		if cfg.Arch, err = vichar.ParseBufferArch(*arch); err != nil {
			log.Fatal(err)
		}
		cfg.Width, cfg.Height = *width, *height
		cfg.VCs, cfg.VCDepth = *vcs, *depth
		cfg.BufferSlots = *slots
		if cfg.BufferSlots == 0 {
			cfg.BufferSlots = *vcs * *depth
		}
		cfg.InjectionRate = *rate
		cfg.WarmupPackets, cfg.MeasurePackets = *warmup, *measure
		cfg.Seed = *seed
		if cfg.Traffic, err = vichar.ParseTraffic(*traffic); err != nil {
			log.Fatal(err)
		}
		if cfg.Dest, err = vichar.ParseDest(*dest); err != nil {
			log.Fatal(err)
		}
		if cfg.Routing, err = vichar.ParseRouting(*routing); err != nil {
			log.Fatal(err)
		}
		cfg.Speculative = *spec
		cfg.PacketSizeMax = *pktMax
		cfg.Torus = *torus
	}

	if *confOut != "" {
		f, err := os.Create(*confOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := vichar.SaveConfig(f, cfg); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *faultSpec != "" {
		faults, err := vichar.ParseFaults(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = faults
	}
	if *txnSpec != "" {
		txn, err := vichar.ParseTxn(*txnSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Txn = txn
	}
	if *auditOn {
		cfg.Audit = true
	}
	if *traceJSONL != "" && *traceCap == 0 {
		*traceCap = 1 << 16
	}
	if *metricsOn || *metricsAddr != "" {
		cfg.Metrics = true
	}
	if *traceCap > 0 {
		cfg.TraceEvents = *traceCap
	}

	if *traceIn != "" {
		cfg.InjectionRate = 0
	}
	var sim *vichar.Simulator
	if *restoreIn != "" {
		if *traceIn != "" {
			log.Fatal("-restore cannot be combined with -replay-trace; the snapshot carries its own schedule")
		}
		blob, err := os.ReadFile(*restoreIn)
		if err != nil {
			log.Fatal(err)
		}
		var o vichar.Overrides
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "rate":
				o.InjectionRate = rate
			case "warmup":
				o.WarmupPackets = warmup
			case "measure":
				o.MeasurePackets = measure
			}
		})
		if sim, err = vichar.RestoreWith(blob, o); err != nil {
			log.Fatal(err)
		}
		cfg = sim.Config()
		fmt.Printf("restored      : %s at cycle %d\n", *restoreIn, sim.Now())
	} else {
		var err error
		if sim, err = vichar.NewSimulator(cfg); err != nil {
			log.Fatal(err)
		}
	}
	defer sim.Close()

	if *metricsAddr != "" {
		h := sim.MetricsHandler()
		mux := http.NewServeMux()
		mux.Handle("/metrics", h)
		mux.Handle("/trace", h)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		fmt.Printf("metrics       : http://%s/metrics (pprof at /debug/pprof/)\n", *metricsAddr)
	}
	if *traceOut != "" {
		sim.RecordTrace()
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		entries, err := vichar.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.LoadTrace(entries); err != nil {
			log.Fatal(err)
		}
	}
	var res vichar.Results
	if *ckptEvery > 0 {
		if *ckptFile == "" {
			log.Fatal("-checkpoint-every requires -checkpoint-file")
		}
		var err error
		res, err = sim.RunCheckpointed(*ckptEvery, func(cycle int64, data []byte) error {
			tmp := *ckptFile + ".tmp"
			if err := os.WriteFile(tmp, data, 0o644); err != nil {
				return err
			}
			return os.Rename(tmp, *ckptFile)
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res = sim.Run()
	}
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.WriteFlitEventsJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := vichar.WriteTrace(f, sim.RecordedTrace()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("configuration : %s, %dx%d mesh, %s traffic, %s destinations, %s routing\n",
		res.Label, cfg.Width, cfg.Height, cfg.Traffic, cfg.Dest, cfg.Routing)
	fmt.Printf("offered load  : %.3f flits/node/cycle\n", cfg.InjectionRate)
	fmt.Printf("avg latency   : %.2f cycles (%.2f queueing + %.2f network)\n",
		res.AvgLatency, res.AvgQueueLatency, res.AvgNetworkLatency)
	fmt.Printf("latency tail  : p50 %.1f / p95 %.1f / p99 %.1f / max %d cycles\n",
		res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("throughput    : %.2f flits/cycle\n", res.Throughput)
	fmt.Printf("peak channel  : %.3f flits/cycle\n", res.MaxChannelLoad)
	fmt.Printf("occupancy     : %.2f %%\n", res.AvgOccupancy*100)
	fmt.Printf("in-use VCs    : %.2f per port\n", res.AvgInUseVCs)
	fmt.Printf("network power : %.3f W\n", res.AvgPowerWatts)
	fmt.Printf("packets       : %d measured / %d ejected over %d cycles\n",
		res.MeasuredPackets, res.EjectedPackets, res.TotalCycles)
	if res.Txn != nil {
		fmt.Printf("transactions  : %d issued / %d retired, latency %.2f avg / p50 %.1f / p95 %.1f / p99 %.1f / max %d cycles\n",
			res.Txn.Issued, res.Txn.Retired,
			res.Txn.AvgLatency, res.Txn.P50Latency, res.Txn.P95Latency, res.Txn.P99Latency, res.Txn.MaxLatency)
	}
	if cfg.Faults.Enabled() {
		fmt.Printf("faults        : %d drops, %d corrupts, %d retransmits, %d stall cycles, %d escape reroutes\n",
			res.Counters.FlitDrops, res.Counters.FlitCorrupts, res.Counters.Retransmits,
			res.Counters.StallCycles, res.Counters.EscapeReroutes)
	}
	if res.Saturated {
		fmt.Println("NOTE          : run hit its cycle cap (network saturated at this load)")
	}

	if *grid {
		fmt.Println("\nper-node in-use VCs (per port):")
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				fmt.Printf("%6.2f", res.PerNodeVCs[vichar.NodeAt(cfg, x, y)])
			}
			fmt.Println()
		}
	}
	if *series {
		fmt.Println("\nin-use VC time series (cycle value):")
		for _, p := range res.VCSeries {
			fmt.Printf("%d %.3f\n", p.Cycle, p.Value)
		}
	}
	os.Exit(0)
}
