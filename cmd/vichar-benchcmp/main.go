// Command vichar-benchcmp prints a benchstat-style delta report
// between two kernel benchmark artifacts (the BENCH_kernel.json
// schema), matching cells by (architecture, mesh, injection rate,
// workers) and warning when the two were recorded on different host
// shapes.
//
//	vichar-benchcmp [-max-loss PCT] OLD.json NEW.json
//
// Without -max-loss, exit status is non-zero only for unreadable
// input; regressions are reported, not judged. With -max-loss PCT the
// command becomes a CI gate: it exits 1 when any saturated-rate cell
// present in both artifacts lost more than PCT percent of its
// router-cycles/s throughput (see `make bench-smoke`).
package main

import (
	"flag"
	"fmt"
	"os"

	"vichar/internal/benchfmt"
)

func main() {
	maxLoss := flag.Float64("max-loss", 0,
		"fail when a saturated-rate cell loses more than this percent of throughput (0 disables the gate)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vichar-benchcmp [-max-loss PCT] OLD.json NEW.json\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := benchfmt.LoadKernel(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cur, err := benchfmt.LoadKernel(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	benchfmt.WriteCompare(os.Stdout, old, cur)
	if *maxLoss > 0 {
		if bad := benchfmt.MaxLossViolations(old, cur, *maxLoss); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "vichar-benchcmp: regression: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("max-loss gate: no saturated cell lost more than %.0f%%\n", *maxLoss)
	}
}
