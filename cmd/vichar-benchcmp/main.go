// Command vichar-benchcmp prints a benchstat-style delta report
// between two kernel benchmark artifacts (the BENCH_kernel.json
// schema), matching cells by (architecture, injection rate, workers)
// and warning when the two were recorded on different host shapes.
//
//	vichar-benchcmp OLD.json NEW.json
//
// Exit status is non-zero only for unreadable input; regressions are
// reported, not judged — this is a measurement tool, not a gate.
package main

import (
	"fmt"
	"os"

	"vichar/internal/benchfmt"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: vichar-benchcmp OLD.json NEW.json\n")
		os.Exit(2)
	}
	old, err := benchfmt.LoadKernel(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cur, err := benchfmt.LoadKernel(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	benchfmt.WriteCompare(os.Stdout, old, cur)
}
