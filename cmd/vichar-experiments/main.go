// Command vichar-experiments regenerates the paper's evaluation
// artifacts: every figure of Figures 12 and 13 plus Table 1 and the
// half-buffer savings claim. Results print as aligned tables (and
// optionally CSV files) with the same rows and series the paper
// plots.
//
// By default it runs a scaled-down protocol that preserves the
// curves' shape in seconds-to-minutes; -paper switches to the full
// 100k-warm-up / 200k-measurement protocol of §4.1.
//
// Examples:
//
//	vichar-experiments -list
//	vichar-experiments -id fig12a
//	vichar-experiments -all -csv results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vichar"
	"vichar/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vichar-experiments: ")

	var (
		id         = flag.String("id", "", "run a single experiment by id (see -list)")
		all        = flag.Bool("all", false, "run every paper experiment")
		extras     = flag.Bool("extras", false, "also run the extension experiments (speculative, hotspot, variable packets)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		paper      = flag.Bool("paper", false, "use the paper's full measurement protocol (slow)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS; capped so jobs x kernel workers fit the machine)")
		kernel     = flag.Int("kernel-workers", 0, "cycle-kernel workers per simulation (0/1 = serial; results identical at any setting)")
		reps       = flag.Int("replicates", 1, "independent replicates per point (reports the mean)")
		csvDir     = flag.String("csv", "", "also write <id>.csv files into this directory")
		svgDir     = flag.String("svg", "", "also write <id>.svg charts into this directory")
		chart      = flag.Bool("chart", false, "also print each experiment as an ASCII chart")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		observe    = flag.Bool("observe", false, "run one instrumented simulation and print the metrics-registry report instead of an experiment")
		resilience = flag.Bool("resilience", false, "run the fault-resilience sweep (shorthand for -id ext-resilience)")
		txns       = flag.Bool("transactions", false, "run the NIU transaction-layer sweep (shorthand for -id ext-transactions)")
	)
	flag.Parse()

	if *resilience {
		*id = "ext-resilience"
	}
	if *txns {
		*id = "ext-transactions"
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Extras() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-8s %s\n", "table1", "Area and Power Overhead of the ViChaR Architecture")
		return
	}

	opts := experiments.Quick()
	if *paper {
		opts = experiments.Paper()
	}

	if *observe {
		cfg := vichar.DefaultConfig()
		cfg.Arch = vichar.ViChaR
		cfg.InjectionRate = 0.30
		if *kernel > 0 {
			opts.KernelWorkers = *kernel
		}
		obs, err := experiments.Observe(cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(obs.Report())
		if !obs.Reconciled() {
			log.Fatal("registry totals do not reconcile with Results")
		}
		return
	}

	opts.Workers = *workers
	opts.KernelWorkers = *kernel
	opts.Replicates = *reps
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var exps []*experiments.Experiment
	switch {
	case *all:
		exps = experiments.All()
		if *extras {
			exps = append(exps, experiments.Extras()...)
		}
	case *id == "table1":
		printTable1()
		return
	case *id != "":
		e := experiments.ByID(*id)
		if e == nil {
			log.Fatalf("unknown experiment %q (try -list)", *id)
		}
		exps = []*experiments.Experiment{e}
	default:
		log.Fatal("nothing to do: pass -id <experiment>, -all or -list")
	}

	for _, e := range exps {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s: %s (%d runs)\n", e.ID, e.Title, len(e.Runs))
		}
		out, err := e.Execute(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out.Table())
		if *chart {
			fmt.Println(out.Chart(64, 16))
		}
		printSpecial(out)
		if *csvDir != "" {
			writeArtifact(*csvDir, e.ID+".csv", out.CSV(), *quiet)
		}
		if *svgDir != "" {
			writeArtifact(*svgDir, e.ID+".svg", out.SVG(640, 420), *quiet)
		}
	}

	if *all {
		printTable1()
	}
}

// writeArtifact persists one rendered experiment artifact.
func writeArtifact(dir, name, content string, quiet bool) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// printSpecial renders the extra artifacts of the single-run figures:
// 13(e)'s spatial node grid and 13(f)'s temporal series.
func printSpecial(out *experiments.Outcome) {
	switch out.Experiment.ID {
	case "ext-transactions":
		fmt.Println("Transaction latency mean / p99 (cycles):")
		for _, s := range out.Series {
			fmt.Printf("%-10s", s.Name)
			for _, p := range s.Points {
				t := p.Results.Txn
				if t == nil {
					fmt.Printf("  %14s", "-")
					continue
				}
				fmt.Printf("  %6.1f/%-7.1f", t.AvgLatency, t.P99Latency)
			}
			fmt.Println()
		}
	case "fig13e":
		res := out.Series[0].Points[0].Results
		fmt.Println("Per-node average # of in-use VCs (8 columns = X coordinate):")
		fmt.Println(experiments.NodeGrid(res.PerNodeVCs, 8))
	case "fig13f":
		res := out.Series[0].Points[0].Results
		fmt.Println("Network-mean in-use VCs over time (cycle:value):")
		pts := make([]experiments.Point, len(res.VCSeries))
		for i, sp := range res.VCSeries {
			pts[i] = experiments.Point{X: float64(sp.Cycle), Y: sp.Value}
		}
		fmt.Println(experiments.SeriesSparkline(pts, 24))
	}
}

// printTable1 regenerates Table 1 and the half-buffer savings from
// the synthesis model.
func printTable1() {
	vic, gen, areaDelta, powerDelta := vichar.Table1()
	fmt.Println("TABLE 1 — Area and Power Overhead of the ViChaR Architecture (per input port)")
	fmt.Printf("%-36s %14s %12s\n", "Component (one input port)", "Area (µm²)", "Power (mW)")
	for _, r := range vic {
		fmt.Printf("%-36s %14.2f %12.2f\n", r.Component, r.AreaUm2, r.PowerMW)
	}
	for _, r := range gen {
		fmt.Printf("%-36s %14.2f %12.2f\n", r.Component, r.AreaUm2, r.PowerMW)
	}
	genTotalArea := gen[len(gen)-1].AreaUm2
	genTotalPower := gen[len(gen)-1].PowerMW
	fmt.Printf("%-36s %14.2f %12.2f\n", "ViChaR delta", areaDelta, powerDelta)
	fmt.Printf("%-36s %13.2f%% %11.2f%%\n", "relative",
		100*areaDelta/genTotalArea, 100*powerDelta/genTotalPower)

	area, pow := vichar.HalfBufferSavings()
	fmt.Printf("\nHalf-buffer ViChaR router vs generic router: %.1f%% area, %.1f%% power savings\n",
		area*100, pow*100)
}
