// Command vichar-lint enforces the simulator's determinism and
// invariant contract (DESIGN.md, "Determinism & invariants") over the
// given package patterns:
//
//	go run ./cmd/vichar-lint ./...
//
// Rules: map-range (no map iteration in the deterministic
// simulator-core packages), ambient-entropy (no global math/rand, no
// time.Now — randomness flows from Config.Seed), checked-errors (no
// silently dropped error returns from simulator-internal calls),
// panic-discipline (panics only in constructors or annotated
// invariant violations) and concurrency-ownership (no `go` statements
// in internal packages outside the cycle kernel's shard executor,
// internal/network/shards.go — all simulator parallelism must flow
// through the two-phase kernel's ownership contract, DESIGN.md §10).
// Sites proven safe are annotated in source:
//
//	//vichar:ordered <reason>      waives map-range
//	//vichar:invariant <reason>    waives panic-discipline
//	//vichar:nolint <rule> <reason> waives any rule
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"vichar/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vichar-lint [packages]\n\n"+
			"Package patterns are directories relative to the current module,\n"+
			"optionally ending in /... (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vichar-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vichar-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vichar-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}
