// Command vichar-lint enforces the simulator's determinism, invariant
// and hot-path purity contracts (DESIGN.md, "Determinism &
// invariants" and §13 "Hot-path purity contract") over the given
// package patterns:
//
//	go run ./cmd/vichar-lint ./...
//
// Rules: map-range (no map iteration in the deterministic
// simulator-core packages), ambient-entropy (no global math/rand, no
// time.Now — randomness flows from Config.Seed), checked-errors (no
// silently dropped error returns from simulator-internal calls),
// panic-discipline (panics only in constructors or annotated
// invariant violations), concurrency-ownership (no `go` statements
// in internal packages outside the cycle kernel's shard executor,
// internal/network/shards.go), hot-path-alloc (no allocation in
// functions reachable from the tick roots Network.Step and
// Router.Tick), probe-guard (metrics accesses in deterministic
// packages must be nil-guarded or nil-receiver-safe) and
// phase-ownership (shard functions passed to runSharded may only
// write through shard-derived indexes). Sites proven safe are
// annotated in source:
//
//	//vichar:ordered <reason>       waives map-range
//	//vichar:invariant <reason>     waives panic-discipline
//	//vichar:alloc <reason>         waives hot-path-alloc
//	//vichar:nolint <rule> <reason> waives any rule
//
// A bare marker with no reason never suppresses anything.
//
// The committed lint.baseline at the module root is a ratchet: it
// grandfathers pre-existing hot-path findings by (rule, package,
// function, count). New findings still fail; when the tree improves
// past an entry, the run fails with baseline-stale until the file is
// regenerated with -update-baseline, so the baseline only shrinks.
//
// Flags:
//
//	-json             emit findings as a JSON array instead of text
//	-baseline PATH    ratchet file to apply (default <module>/lint.baseline)
//	-no-baseline      ignore any baseline; report raw findings
//	-update-baseline  rewrite the baseline to grandfather today's findings
//	-escape-audit     cross-check the AST pass against go build -gcflags=-m
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vichar/internal/lint"
)

func main() {
	var (
		jsonOut        = flag.Bool("json", false, "emit findings as a JSON array")
		baselinePath   = flag.String("baseline", "", "ratchet file to apply (default <module root>/lint.baseline)")
		noBaseline     = flag.Bool("no-baseline", false, "ignore any baseline; report raw findings")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite the baseline to grandfather today's findings")
		escapeAudit    = flag.Bool("escape-audit", false, "cross-check the AST pass against go build -gcflags=-m -m")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vichar-lint [flags] [packages]\n\n"+
			"Package patterns are directories relative to the current module,\n"+
			"optionally ending in /... (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *noBaseline && *updateBaseline {
		fmt.Fprintln(os.Stderr, "vichar-lint: -no-baseline and -update-baseline are mutually exclusive")
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vichar-lint:", err)
		os.Exit(2)
	}
	res, err := lint.Analyze(cwd, lint.Options{
		Patterns:     flag.Args(),
		BaselinePath: *baselinePath,
		NoBaseline:   *noBaseline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vichar-lint:", err)
		os.Exit(2)
	}

	if *updateBaseline {
		path := *baselinePath
		if path == "" {
			path = filepath.Join(res.ModuleRoot, lint.BaselineName)
		}
		if err := lint.WriteBaseline(path, res.Raw); err != nil {
			fmt.Fprintln(os.Stderr, "vichar-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "vichar-lint: wrote %s (%d grandfathered finding(s))\n", path, len(res.Raw))
		return
	}

	diags := res.Diags
	if *escapeAudit {
		audit, err := lint.EscapeAudit(res.ModuleRoot, res.Hot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vichar-lint:", err)
			os.Exit(2)
		}
		diags = append(diags, audit...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "vichar-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "vichar-lint: %d issue(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
