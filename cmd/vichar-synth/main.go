// Command vichar-synth prints the synthesis model's area and power
// estimates: the regenerated Table 1 at the paper's calibration
// point, and scaled estimates for arbitrary router configurations.
//
// Examples:
//
//	vichar-synth                     # Table 1 + headline savings
//	vichar-synth -arch vichar -slots 8
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"vichar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vichar-synth: ")

	var (
		arch  = flag.String("arch", "", "estimate one configuration: generic|vichar|damq|fccb")
		vcs   = flag.Int("vcs", 4, "virtual channels per port")
		depth = flag.Int("depth", 4, "per-VC depth (generic)")
		slots = flag.Int("slots", 0, "buffer slots per port (default vcs*depth)")
		width = flag.Int("flit", 128, "flit width in bits")
	)
	flag.Parse()

	if *arch == "" {
		printTable1()
		return
	}

	cfg := vichar.DefaultConfig()
	switch strings.ToLower(*arch) {
	case "generic", "gen":
		cfg.Arch = vichar.Generic
	case "vichar", "vic":
		cfg.Arch = vichar.ViChaR
	case "damq":
		cfg.Arch = vichar.DAMQ
	case "fccb", "fc-cb":
		cfg.Arch = vichar.FCCB
	default:
		log.Fatalf("unknown architecture %q", *arch)
	}
	cfg.VCs, cfg.VCDepth = *vcs, *depth
	cfg.BufferSlots = *slots
	if cfg.BufferSlots == 0 {
		cfg.BufferSlots = *vcs * *depth
	}
	cfg.FlitWidthBits = *width
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	b := vichar.Synthesize(cfg)
	fmt.Printf("%s router, %d slots/port, %d-bit flits (TSMC 90 nm model)\n",
		cfg.Arch, cfg.BufferSlots, cfg.FlitWidthBits)
	fmt.Printf("%-24s %14s %12s\n", "component (per port)", "area (µm²)", "power (mW)")
	fmt.Printf("%-24s %14.2f %12.2f\n", "control logic", b.CtrlArea, b.CtrlPower)
	fmt.Printf("%-24s %14.2f %12.2f\n", "buffer slots", b.BufArea, b.BufPower)
	fmt.Printf("%-24s %14.2f %12.2f\n", "VA logic", b.VAArea, b.VAPower)
	fmt.Printf("%-24s %14.2f %12.2f\n", "SA logic", b.SAArea, b.SAPower)
	fmt.Printf("%-24s %14.2f %12.2f\n", "port total", b.PortArea(), b.PortPower())
	fmt.Printf("%-24s %14.2f %12.2f\n", "rest of router", b.RestArea, b.RestPower)
	fmt.Printf("%-24s %14.2f %12.2f\n", "ROUTER TOTAL", b.RouterArea(), b.RouterPower())
}

func printTable1() {
	vic, gen, areaDelta, powerDelta := vichar.Table1()
	fmt.Println("TABLE 1 — per input port, P=5, v=4, k=4, 128-bit flits, TSMC 90 nm, 500 MHz")
	fmt.Printf("%-36s %14s %12s\n", "Component (one input port)", "Area (µm²)", "Power (mW)")
	for _, r := range append(vic, gen...) {
		fmt.Printf("%-36s %14.2f %12.2f\n", r.Component, r.AreaUm2, r.PowerMW)
	}
	genArea := gen[len(gen)-1].AreaUm2
	genPower := gen[len(gen)-1].PowerMW
	fmt.Printf("\nViChaR vs generic: area %+.2f µm² (%.2f%% savings), power %+.2f mW (%.2f%% overhead)\n",
		areaDelta, -100*areaDelta/genArea, powerDelta, 100*powerDelta/genPower)

	area, pow := vichar.HalfBufferSavings()
	fmt.Printf("ViC-8 router vs GEN-16 router: %.1f%% area savings, %.1f%% power savings\n",
		area*100, pow*100)
}
