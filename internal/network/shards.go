// The shard executor of the two-phase cycle kernel (DESIGN.md §10).
//
// This file is the single place under internal/ where goroutines may
// be spawned — vichar-lint's concurrency-ownership rule rejects `go`
// statements anywhere else. Confining the pool here keeps the
// ownership contract auditable: every parallel region in the
// simulator runs through shardExecutor.run, whose callers partition
// state by router ID and merge global accounting serially in index
// order, so worker scheduling can never leak into results.
package network

import (
	"runtime"
	"sync"
)

// shardExecutor is a fixed pool of worker goroutines executing
// per-shard closures with a completion barrier. The pool is created
// lazily on the first parallel Step and lives until the owning
// Network is closed (or finalized by the garbage collector).
type shardExecutor struct {
	workers int

	// fn is the closure of the batch in flight. It is written by run
	// before the first shard is enqueued and cleared after the barrier;
	// the channel send/receive pair orders every worker's read of fn
	// after the write, and wg orders the clear after every read.
	fn func(shard int)

	shards chan int
	wg     sync.WaitGroup
}

// newShardExecutor starts a pool of workers goroutines blocked on the
// shard channel.
func newShardExecutor(workers int) *shardExecutor {
	//vichar:alloc one-time lazy pool construction on the first parallel Step; the pool lives for the network's lifetime
	e := &shardExecutor{workers: workers, shards: make(chan int, workers)}
	for w := 0; w < workers; w++ {
		//vichar:alloc the worker goroutines are spawned once and reused for every subsequent phase barrier
		go e.work()
	}
	return e
}

// work is one pool goroutine: it executes batch closures shard by
// shard until the pool is stopped. Workers hold a reference to the
// executor only — never to the Network — so an idle pool does not keep
// its network reachable and the network's finalizer can stop the pool.
func (e *shardExecutor) work() {
	for s := range e.shards {
		e.fn(s)
		e.wg.Done()
	}
}

// run executes fn(shard) for every shard in [0, count) across the
// pool and returns once all of them have completed (the phase
// barrier). fn must confine its writes to state owned by its shard;
// any cross-shard accounting must be buffered per shard and merged by
// the caller after run returns, in shard index order.
func (e *shardExecutor) run(count int, fn func(shard int)) {
	e.fn = fn
	e.wg.Add(count)
	for s := 0; s < count; s++ {
		e.shards <- s
	}
	e.wg.Wait()
	e.fn = nil
}

// stop terminates the pool goroutines. The executor must be idle (no
// run in flight).
func (e *shardExecutor) stop() { close(e.shards) }

// runSharded executes fn over every shard: inline for the serial
// kernel, across the worker pool otherwise. The pool is created on
// first use; a finalizer backstops Close for networks that are
// dropped without it.
func (n *Network) runSharded(fn func(shard int)) {
	if n.shardCount <= 1 {
		fn(0)
		return
	}
	if n.exec == nil {
		n.exec = newShardExecutor(n.shardCount)
		runtime.SetFinalizer(n, (*Network).stopKernel)
	}
	n.exec.run(n.shardCount, fn)
}

// stopKernel releases the worker pool; a later parallel Step restarts
// it. The finalizer backstop is cleared so a restart can arm it again.
func (n *Network) stopKernel() {
	if n.exec != nil {
		n.exec.stop()
		n.exec = nil
		runtime.SetFinalizer(n, nil)
	}
}

// shardBounds returns the half-open router ID range [lo, hi) owned by
// the shard: contiguous, balanced partitions that are a pure function
// of (nodes, shardCount), so the shard→router map never depends on
// scheduling.
func (n *Network) shardBounds(shard int) (lo, hi int) {
	nodes := len(n.routers)
	return shard * nodes / n.shardCount, (shard + 1) * nodes / n.shardCount
}

// chunkBounds partitions an arbitrary index space (audited links)
// across the same shard set.
func chunkBounds(length, shards, shard int) (lo, hi int) {
	return shard * length / shards, (shard + 1) * length / shards
}
