package network

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/topology"
	"vichar/internal/trace"
)

// Replaying a recorded workload must reproduce the original run
// exactly (same architecture) — the record/replay fidelity check.
func TestTraceReplayFidelity(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	cfg.WarmupPackets = 300
	cfg.MeasurePackets = 1200
	cfg.Seed = 31

	orig := New(&cfg)
	orig.RecordTrace()
	origRes := orig.Run()
	rec := orig.RecordedTrace()
	if len(rec) == 0 {
		t.Fatal("nothing recorded")
	}

	replayCfg := cfg
	replayCfg.InjectionRate = 0
	rep := New(&replayCfg)
	if err := rep.ScheduleTrace(rec); err != nil {
		t.Fatal(err)
	}
	repRes := rep.Run()

	if repRes.AvgLatency != origRes.AvgLatency {
		t.Fatalf("replay latency %.4f != original %.4f", repRes.AvgLatency, origRes.AvgLatency)
	}
	if repRes.Throughput != origRes.Throughput {
		t.Fatalf("replay throughput diverged")
	}
	if repRes.TotalCycles != origRes.TotalCycles {
		t.Fatalf("replay cycles %d != %d", repRes.TotalCycles, origRes.TotalCycles)
	}
}

// A trace can be replayed against a different architecture.
func TestTraceReplayCrossArchitecture(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.30
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 800
	cfg.Seed = 33

	orig := New(&cfg)
	orig.RecordTrace()
	orig.Run()
	rec := orig.RecordedTrace()

	vic := cfg
	vic.Arch = config.ViChaR
	vic.InjectionRate = 0
	rep := New(&vic)
	if err := rep.ScheduleTrace(rec); err != nil {
		t.Fatal(err)
	}
	res := rep.Run()
	if res.MeasuredPackets != 800 {
		t.Fatalf("cross-arch replay measured %d packets", res.MeasuredPackets)
	}
}

func TestScheduleTraceValidation(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	n := New(&cfg)
	if err := n.ScheduleTrace([]trace.Entry{{Cycle: 0, Src: 0, Dst: 99, Size: 4}}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := n.ScheduleTrace([]trace.Entry{
		{Cycle: 5, Src: 0, Dst: 1, Size: 4},
		{Cycle: 2, Src: 0, Dst: 1, Size: 4},
	}); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	if err := n.ScheduleTrace([]trace.Entry{{Cycle: 1, Src: 0, Dst: 1, Size: 4}}); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if n.TracePending() != 1 {
		t.Fatal("pending count wrong")
	}
}

// Variable packet sizes: all sizes deliver, across architectures.
func TestVariablePacketSizes(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.PacketSize = 1
			cfg.PacketSizeMax = 8
			cfg.InjectionRate = 0.2
			cfg.WarmupPackets = 200
			cfg.MeasurePackets = 800
			cfg.Seed = 41
			n := New(&cfg)
			res := n.Run()
			if res.Saturated || res.MeasuredPackets != 800 {
				t.Fatalf("variable-size run failed: %+v", res)
			}
		})
	}
}

func TestSingleFlitPackets(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.PacketSize = 1
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	n := New(&cfg)
	p := n.InjectPacketSized(0, 15, 1)
	if left := n.Drain(5_000); left != 0 {
		t.Fatal("single-flit packet undelivered")
	}
	if p.EjectedAt == 0 {
		t.Fatal("not stamped")
	}
}

// Speculative pipeline: one stage shorter per hop at zero load, and
// still correct under load for all architectures.
func TestSpeculativePipeline(t *testing.T) {
	lat := func(spec bool) int64 {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = config.ViChaR
		cfg.Speculative = spec
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 0
		cfg.MeasurePackets = 1
		n := New(&cfg)
		p := n.InjectPacket(0, 15)
		if left := n.Drain(5_000); left != 0 {
			t.Fatal("undelivered")
		}
		return p.Latency()
	}
	base := lat(false)
	spec := lat(true)
	if spec >= base {
		t.Fatalf("speculative latency %d not below baseline %d", spec, base)
	}
	// 6 hops + ejection: roughly one cycle saved per router.
	if base-spec < 5 {
		t.Fatalf("speculation saved only %d cycles over 7 routers", base-spec)
	}
}

func TestSpeculativeUnderLoadAllArchs(t *testing.T) {
	for _, arch := range allArchs {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.Speculative = true
		cfg.InjectionRate = 0.25
		cfg.WarmupPackets = 200
		cfg.MeasurePackets = 800
		cfg.Seed = 47
		n := New(&cfg)
		res := n.Run()
		if res.Saturated || res.MeasuredPackets != 800 {
			t.Fatalf("%v speculative run failed: %+v", arch, res)
		}
	}
}

// Queue/network latency decomposition must sum to the total and the
// queueing share must grow with offered load.
func TestLatencyDecomposition(t *testing.T) {
	run := func(rate float64) (q, net, total float64) {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.InjectionRate = rate
		cfg.WarmupPackets = 300
		cfg.MeasurePackets = 1200
		cfg.Seed = 53
		n := New(&cfg)
		res := n.Run()
		return res.AvgQueueLatency, res.AvgNetworkLatency, res.AvgLatency
	}
	q1, n1, t1 := run(0.10)
	if diff := t1 - q1 - n1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decomposition does not sum: %f + %f != %f", q1, n1, t1)
	}
	q2, _, _ := run(0.40)
	if q2 <= q1 {
		t.Fatalf("queueing latency did not grow with load: %.2f -> %.2f", q1, q2)
	}
}

// The new destination patterns complete end to end.
func TestNewDestinationPatterns(t *testing.T) {
	for _, dest := range []config.DestPattern{config.Transpose, config.BitComplement, config.Hotspot} {
		dest := dest
		t.Run(dest.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Dest = dest
			cfg.InjectionRate = 0.10
			cfg.WarmupPackets = 200
			cfg.MeasurePackets = 600
			cfg.Seed = 59
			n := New(&cfg)
			res := n.Run()
			if res.Saturated || res.MeasuredPackets != 600 {
				t.Fatalf("%v run failed: %+v", dest, res)
			}
		})
	}
}

// Channel loads must reflect the traffic pattern: under tornado, X
// links carry everything and Y links nothing; no link exceeds
// capacity.
func TestChannelLoads(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Dest = config.Tornado
	cfg.InjectionRate = 0.15
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 800
	cfg.Seed = 61
	n := New(&cfg)
	res := n.Run()
	if len(res.ChannelLoads) == 0 {
		t.Fatal("no channel loads recorded")
	}
	if res.MaxChannelLoad <= 0 || res.MaxChannelLoad > 1.0001 {
		t.Fatalf("max channel load %.3f outside (0,1]", res.MaxChannelLoad)
	}
	var xFlits, yFlits float64
	for _, cl := range res.ChannelLoads {
		switch cl.Port {
		case topology.East, topology.West:
			xFlits += cl.Load
		case topology.North, topology.South:
			yFlits += cl.Load
		}
		if cl.Load > 1.0001 {
			t.Fatalf("link %d->%d overloaded: %.3f", cl.From, cl.To, cl.Load)
		}
	}
	if yFlits != 0 {
		t.Fatalf("tornado put %.3f flits/cycle on Y links", yFlits)
	}
	if xFlits <= 0 {
		t.Fatal("tornado moved nothing on X links")
	}
}

// Torus: every packet delivers under wrap-around routing with escape
// VCs, and wrap links genuinely shorten paths.
func TestTorusDelivery(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.Torus = true
			cfg.EscapeVCs = 1
			cfg.DeadlockThreshold = 32
			cfg.InjectionRate = 0.15
			cfg.WarmupPackets = 200
			cfg.MeasurePackets = 800
			cfg.Seed = 71
			n := New(&cfg)
			res := n.Run()
			if res.Saturated || res.MeasuredPackets != 800 {
				t.Fatalf("torus run failed: %+v", res)
			}
		})
	}
}

func TestTorusShortensPaths(t *testing.T) {
	lat := func(torus bool) int64 {
		cfg := config.Default()
		cfg.Width, cfg.Height = 8, 8
		cfg.Arch = config.ViChaR
		cfg.Torus = torus
		cfg.EscapeVCs = 1
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 0
		cfg.MeasurePackets = 1
		n := New(&cfg)
		p := n.InjectPacket(0, 63) // corner to corner
		if left := n.Drain(10_000); left != 0 {
			t.Fatal("undelivered")
		}
		return p.Latency()
	}
	mesh, torus := lat(false), lat(true)
	// 14 hops vs 2 hops: the torus should save roughly 12 router
	// traversals' worth of cycles.
	if torus >= mesh-30 {
		t.Fatalf("torus latency %d not far below mesh %d", torus, mesh)
	}
}

// Deep saturation on the torus must never wedge: wrap rings close
// cycles, and the non-wrapping escape network plus timeouts must
// drain them.
func TestTorusNoWedge(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR} {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.Torus = true
		cfg.EscapeVCs = 1
		cfg.DeadlockThreshold = 32
		cfg.Traffic = config.SelfSimilar
		cfg.InjectionRate = 0.45
		cfg.WarmupPackets = 1
		cfg.MeasurePackets = 1 << 30
		cfg.MaxCycles = 10_000
		cfg.Seed = 77
		n := New(&cfg)
		last := int64(0)
		for i := 0; i < 5; i++ {
			for c := 0; c < 2_000; c++ {
				n.Step()
			}
			ej := n.Collector().Ejected()
			if i >= 2 && ej == last {
				t.Fatalf("%v: torus wedged between %d and %d", arch, n.Now()-2000, n.Now())
			}
			last = ej
		}
	}
}

// Bit-complement sends every packet across the whole network; wrap
// links halve those paths, so the torus must deliver clearly lower
// latency at moderate load.
func TestBitComplementPrefersTorus(t *testing.T) {
	lat := func(torus bool) float64 {
		cfg := config.Default()
		cfg.Width, cfg.Height = 8, 8
		cfg.Arch = config.ViChaR
		cfg.Torus = torus
		cfg.EscapeVCs = 1
		cfg.Dest = config.BitComplement
		cfg.InjectionRate = 0.10
		cfg.WarmupPackets = 500
		cfg.MeasurePackets = 2_000
		cfg.MaxCycles = 60_000
		cfg.Seed = 81
		n := New(&cfg)
		res := n.Run()
		if res.Saturated {
			t.Fatalf("torus=%v saturated at 0.10", torus)
		}
		return res.AvgLatency
	}
	mesh, torus := lat(false), lat(true)
	if torus >= mesh*0.8 {
		t.Fatalf("bit-complement latency on torus %.1f not clearly below mesh %.1f", torus, mesh)
	}
}

// Flow conservation: the sum of all inter-router link loads must
// equal the delivered flit rate times the mean inter-router hop
// count of the traffic pattern. Any flit duplicated, dropped or
// misrouted breaks this equality.
func TestFlowConservation(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.20
	cfg.WarmupPackets = 500
	cfg.MeasurePackets = 4_000
	cfg.Seed = 101
	n := New(&cfg)
	res := n.Run()
	if res.Saturated {
		t.Fatal("saturated")
	}
	var sumLoads float64
	for _, cl := range res.ChannelLoads {
		sumLoads += cl.Load
	}
	// Mean Manhattan distance over distinct pairs of the 4x4 mesh.
	mesh := topology.New(4, 4)
	var hops, pairs float64
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a != b {
				hops += float64(mesh.Hops(a, b))
				pairs++
			}
		}
	}
	meanHops := hops / pairs
	want := res.Throughput * meanHops
	if sumLoads < want*0.93 || sumLoads > want*1.07 {
		t.Fatalf("flow not conserved: Σ loads %.2f, throughput×hops %.2f", sumLoads, want)
	}
}

// Pre-saturation the network must accept what is offered: throughput
// equals the injection rate times the node count, for every
// architecture.
func TestThroughputTracksOfferedLoad(t *testing.T) {
	for _, arch := range allArchs {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.InjectionRate = 0.15
		cfg.WarmupPackets = 500
		cfg.MeasurePackets = 4_000
		cfg.Seed = 103
		n := New(&cfg)
		res := n.Run()
		offered := cfg.InjectionRate * float64(cfg.Nodes())
		if res.Throughput < offered*0.95 || res.Throughput > offered*1.05 {
			t.Fatalf("%v: accepted %.2f of %.2f offered flits/cycle", arch, res.Throughput, offered)
		}
	}
}

// Percentiles from a live run are ordered and bracket the mean.
func TestLivePercentileOrdering(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.30
	cfg.WarmupPackets = 300
	cfg.MeasurePackets = 2_000
	cfg.Seed = 107
	n := New(&cfg)
	res := n.Run()
	if !(res.P50Latency <= res.P95Latency && res.P95Latency <= res.P99Latency &&
		res.P99Latency <= float64(res.MaxLatency)) {
		t.Fatalf("percentiles unordered: %+v", res)
	}
	if res.AvgLatency < res.P50Latency*0.5 || res.AvgLatency > float64(res.MaxLatency) {
		t.Fatalf("mean %.1f outside the distribution", res.AvgLatency)
	}
}
