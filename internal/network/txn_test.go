package network

import (
	"testing"

	"vichar/internal/config"
)

// txnWallConfig builds the protocol-deadlock wall workload: a
// saturating read-heavy memory-edge pattern on a 4x4 mesh with two
// virtual channels per port. Memory controllers sit on the left and
// right columns behind a shallow service queue, the eight interior
// tiles fire read requests at half a request per cycle against a deep
// outstanding window, and each requester is capped so the workload is
// drainable — a finished run retires every transaction. Eastbound
// read responses from the left controllers share channels with
// eastbound requests piling into the full right controllers (and
// mirrored westbound), so whether responses can always make forward
// progress is exactly the VC-assignment question. The per-cycle
// invariant auditor is on throughout, including the VC-class
// separation check.
func txnWallConfig(arch config.BufferArch, shared bool) config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = arch
	cfg.VCs, cfg.VCDepth = 2, 4
	cfg.BufferSlots = 8
	cfg.InjectionRate = 0
	cfg.Seed = 61
	cfg.Audit = true
	cfg.Txn = config.TxnConfig{
		Enabled:       true,
		Rate:          0.5,
		Window:        16,
		ReadFrac:      1,
		ServiceCycles: 4,
		QueueDepth:    2,
		MemEdge:       true,
		Requests:      30,
		SharedVCs:     shared,
	}
	return cfg
}

// TestTxnProtocolDeadlockWall is the protocol-deadlock regression
// wall. With request and response classes separated onto disjoint VC
// partitions, the saturating memory-edge workload must drain on every
// buffer architecture within a generous cycle bound: responses always
// find forward progress, so the memory controllers' finite queues
// always eventually drain and every request retires. The negative
// control runs the identical workload with both message classes on
// one shared VC partition — read requests wedged at a full memory
// controller hold the very channel VCs its outbound read responses
// need, the classic request/response protocol deadlock — and must
// freeze: not just miss the bound, but stop retiring entirely.
func TestTxnProtocolDeadlockWall(t *testing.T) {
	const bound = 50_000
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := txnWallConfig(arch, false)
			n := New(&cfg)
			defer n.Close()
			for n.Now() < bound && !n.Txn().Done() {
				n.Step()
			}
			if !n.Txn().Done() {
				t.Fatalf("class-separated workload did not drain within %d cycles (%d retired)",
					int64(bound), n.Txn().Retired())
			}
		})
	}
	t.Run("shared-vcs-wedge", func(t *testing.T) {
		cfg := txnWallConfig(config.Generic, true)
		n := New(&cfg)
		defer n.Close()
		for n.Now() < bound/2 && !n.Txn().Done() {
			n.Step()
		}
		atHalf := n.Txn().Retired()
		for n.Now() < bound && !n.Txn().Done() {
			n.Step()
		}
		if n.Txn().Done() {
			t.Fatalf("shared-VC negative control drained %d transactions; the deadlock wall lost its teeth",
				n.Txn().Retired())
		}
		if got := n.Txn().Retired(); got != atHalf {
			t.Fatalf("shared-VC negative control still retiring (%d at cycle %d, %d at %d): starvation, not deadlock",
				atHalf, int64(bound/2), got, int64(bound))
		}
	})
}
