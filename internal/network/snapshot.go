package network

import (
	"fmt"
	"sort"

	"vichar/internal/flit"
	"vichar/internal/router"
	"vichar/internal/snap"
	"vichar/internal/trace"
)

// This file implements the network-level checkpoint: SaveState writes
// the complete mutable simulation state into a snap.Writer, and
// LoadState restores it into a network freshly constructed from the
// same configuration (construct-then-load: New rebuilds all wiring,
// arenas and slabs; load copies only values, in place wherever live
// pointers alias the backing arrays).
//
// Packets are serialized exactly once, in a table sorted by ID; every
// other occurrence of a packet or flit travels as a reference that
// resolves against the table at load time. Flit objects are rebuilt
// per packet via flit.MakeFlits, so a packet's flits keep their
// shared-identity structure, and each container applies the mutable
// (VC, ArrivedAt) fields of exactly the flits it holds.
//
// Snapshots are legal only between Steps: ejection staging and wake
// buffers are empty there, and router per-tick scratch is dead.
// SaveState verifies the former and refuses otherwise.

// pktTable resolves packet and flit references against the snapshot's
// packet table, materializing each packet's flit sequence on first
// use (packets still waiting in a source queue never materialize —
// their NI builds the flits at injection time, exactly like the
// straight-through run).
type pktTable struct {
	pkts  map[uint64]*flit.Packet
	flits map[uint64][]*flit.Flit
}

func (t *pktTable) packet(id uint64) (*flit.Packet, error) {
	p, ok := t.pkts[id]
	if !ok {
		return nil, fmt.Errorf("network: snapshot references unknown packet %d", id)
	}
	return p, nil
}

func (t *pktTable) flitsOf(id uint64) ([]*flit.Flit, error) {
	if fs, ok := t.flits[id]; ok {
		return fs, nil
	}
	p, err := t.packet(id)
	if err != nil {
		return nil, err
	}
	fs := flit.MakeFlits(p)
	t.flits[id] = fs
	return fs, nil
}

func (t *pktTable) flit(id uint64, seq int) (*flit.Flit, error) {
	fs, err := t.flitsOf(id)
	if err != nil {
		return nil, err
	}
	if seq < 0 || seq >= len(fs) {
		return nil, fmt.Errorf("network: snapshot references flit %d of packet %d (%d flits)", seq, id, len(fs))
	}
	return fs[seq], nil
}

// collectPackets gathers every packet still referenced by live
// simulation state — source queues, mid-injection flit sequences,
// link payloads, retransmission buffers, input buffers and VC state
// machines — deduplicated and sorted by ID.
func (n *Network) collectPackets() []*flit.Packet {
	seen := make(map[uint64]bool)
	var out []*flit.Packet
	add := func(p *flit.Packet) {
		if p == nil || seen[p.ID] {
			return
		}
		seen[p.ID] = true
		out = append(out, p)
	}
	for _, s := range n.nis {
		for si := range s.streams {
			st := &s.streams[si]
			for i := st.qhead; i < len(st.queue); i++ {
				add(st.queue[i])
			}
			if st.cur != nil {
				add(st.cur[0].Pkt)
			}
		}
	}
	for id := range n.plan {
		for _, l := range n.plan[id].flits {
			for i := l.head; i < len(l.q); i++ {
				add(l.q[i].f.Pkt)
			}
			add(heldPacket(l))
		}
	}
	for _, r := range n.routers {
		r.Packets(add)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// heldPacket returns the packet of the link's retransmission-held
// flit, if any.
func heldPacket(l *flitLink) *flit.Packet {
	if f := l.faults.HeldFlit(); f != nil {
		return f.Pkt
	}
	return nil
}

// savePacket writes one packet's full record.
func savePacket(w *snap.Writer, p *flit.Packet) {
	w.U64(p.ID)
	w.Int(p.Src)
	w.Int(p.Dst)
	w.Int(p.Size)
	w.I64(p.CreatedAt)
	w.I64(p.InjectedAt)
	w.I64(p.EjectedAt)
	w.U64(p.SeqNo)
	w.Bool(p.Escaped)
	w.U8(p.Class)
	w.U8(p.Kind)
	w.U64(p.Req)
}

// loadPacket reads one packet record.
func loadPacket(r *snap.Reader) *flit.Packet {
	return &flit.Packet{
		ID:         r.U64(),
		Src:        r.Int(),
		Dst:        r.Int(),
		Size:       r.Int(),
		CreatedAt:  r.I64(),
		InjectedAt: r.I64(),
		EjectedAt:  r.I64(),
		SeqNo:      r.U64(),
		Escaped:    r.Bool(),
		Class:      r.U8(),
		Kind:       r.U8(),
		Req:        r.U64(),
	}
}

// saveFlitLink writes one flit link's in-flight payloads and fault
// state.
func (n *Network) saveFlitLink(w *snap.Writer, l *flitLink) {
	w.Int(l.inflight())
	for i := l.head; i < len(l.q); i++ {
		w.Flit(l.q[i].f)
		w.I64(l.q[i].at)
	}
	l.faults.SaveState(w)
}

// loadFlitLink restores one flit link, compacting the queue head to
// zero (layout, not state).
func (n *Network) loadFlitLink(r *snap.Reader, l *flitLink, resolve snap.Resolver) error {
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative link occupancy %d in snapshot", cnt)
	}
	l.q = l.q[:0]
	l.head = 0
	for i := 0; i < cnt; i++ {
		f, err := r.Flit(resolve)
		if err != nil {
			return err
		}
		if f == nil {
			return fmt.Errorf("network: nil flit reference on a link")
		}
		l.q = append(l.q, timedFlit{f: f, at: r.I64()})
		if r.Err() != nil {
			return r.Err()
		}
	}
	return l.faults.LoadState(r, resolve)
}

// saveCreditLink writes one credit link's in-flight credits.
func (n *Network) saveCreditLink(w *snap.Writer, l *creditLink) {
	w.Int(l.inflight())
	for i := l.head; i < len(l.q); i++ {
		w.Int(l.q[i].c.VC)
		w.Bool(l.q[i].c.ReleaseVC)
		w.I64(l.q[i].at)
	}
}

// loadCreditLink restores one credit link.
func (n *Network) loadCreditLink(r *snap.Reader, l *creditLink) error {
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative credit-link occupancy %d in snapshot", cnt)
	}
	l.q = l.q[:0]
	l.head = 0
	for i := 0; i < cnt; i++ {
		c := flit.Credit{VC: r.Int(), ReleaseVC: r.Bool()}
		l.q = append(l.q, timedCredit{c: c, at: r.I64()})
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}

// saveNI writes one network interface's per-class source queues,
// mid-injection cursors, round-robin pointer and credit view.
func saveNI(w *snap.Writer, s *ni) {
	w.Section("ni")
	w.Int(len(s.streams))
	for si := range s.streams {
		st := &s.streams[si]
		w.Int(st.queued())
		for i := st.qhead; i < len(st.queue); i++ {
			w.Packet(st.queue[i])
		}
		w.Bool(st.cur != nil)
		if st.cur != nil {
			w.U64(st.cur[0].Pkt.ID)
			w.Int(st.idx)
			w.Int(st.vc)
		}
	}
	w.Int(s.rr)
	router.SaveView(w, s.view)
}

// loadNI restores one network interface.
func loadNI(r *snap.Reader, s *ni, t *pktTable) error {
	if err := r.Section("ni"); err != nil {
		return err
	}
	if cnt := r.Int(); cnt != len(s.streams) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("network: snapshot NI has %d streams, configuration has %d", cnt, len(s.streams))
	}
	for si := range s.streams {
		st := &s.streams[si]
		cnt := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if cnt < 0 {
			return fmt.Errorf("network: negative NI queue length %d in snapshot", cnt)
		}
		st.queue = st.queue[:0]
		st.qhead = 0
		for i := 0; i < cnt; i++ {
			p, err := r.Packet(t.packet)
			if err != nil {
				return err
			}
			if p == nil {
				return fmt.Errorf("network: nil packet reference in an NI queue")
			}
			st.queue = append(st.queue, p)
		}
		st.cur = nil
		if r.Bool() {
			id := r.U64()
			idx := r.Int()
			vc := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			cur, err := t.flitsOf(id)
			if err != nil {
				return err
			}
			if idx < 0 || idx >= len(cur) {
				return fmt.Errorf("network: NI injection cursor %d outside packet %d (%d flits)", idx, id, len(cur))
			}
			st.cur = cur
			st.idx = idx
			st.vc = vc
		}
	}
	s.rr = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if s.rr < 0 || s.rr >= len(s.streams) {
		return fmt.Errorf("network: NI round-robin pointer %d outside %d streams", s.rr, len(s.streams))
	}
	return router.LoadView(r, s.view)
}

// saveObs writes the observability layer's registry totals, staged
// recorder state and tracer ring.
func (n *Network) saveObs(w *snap.Writer) {
	w.Section("obs")
	w.Bool(n.obs != nil)
	if n.obs == nil {
		return
	}
	o := n.obs
	//vichar:nolint probe-guard the obs layer wires reg and every recorder at construction; nil obs already returned above
	o.reg.SaveState(w)
	w.Int(len(o.recs))
	for _, rec := range o.recs {
		//vichar:nolint probe-guard recorders are never nil inside a wired obs layer
		rec.SaveState(w)
	}
	w.Bool(o.tracer != nil)
	if o.tracer != nil {
		o.tracer.SaveState(w)
	}
}

// loadObs restores the observability layer.
func (n *Network) loadObs(r *snap.Reader) error {
	if err := r.Section("obs"); err != nil {
		return err
	}
	has := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if has != (n.obs != nil) {
		return fmt.Errorf("network: snapshot observability present=%v, configuration has %v", has, n.obs != nil)
	}
	if n.obs == nil {
		return nil
	}
	o := n.obs
	//vichar:nolint probe-guard the obs layer wires reg and every recorder at construction; nil obs already returned above
	if err := o.reg.LoadState(r); err != nil {
		return err
	}
	if cnt := r.Int(); cnt != len(o.recs) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("network: snapshot has %d recorders, configuration has %d", cnt, len(o.recs))
	}
	for _, rec := range o.recs {
		//vichar:nolint probe-guard recorders are never nil inside a wired obs layer
		if err := rec.LoadState(r); err != nil {
			return err
		}
	}
	hasTracer := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasTracer != (o.tracer != nil) {
		return fmt.Errorf("network: snapshot tracer present=%v, configuration has %v", hasTracer, o.tracer != nil)
	}
	if o.tracer != nil {
		return o.tracer.LoadState(r)
	}
	return nil
}

// saveTraceState writes the remaining replay schedule and the
// recording state.
func (n *Network) saveTraceState(w *snap.Writer) {
	w.Section("tracestate")
	rest := n.schedule[n.scheduleIdx:]
	w.Int(len(rest))
	for _, e := range rest {
		w.I64(e.Cycle)
		w.Int(e.Src)
		w.Int(e.Dst)
		w.Int(e.Size)
	}
	w.Bool(n.recording)
	w.Int(len(n.recorded))
	for _, e := range n.recorded {
		w.I64(e.Cycle)
		w.Int(e.Src)
		w.Int(e.Dst)
		w.Int(e.Size)
	}
}

// loadTraceState restores the replay schedule and recording state.
func (n *Network) loadTraceState(r *snap.Reader) error {
	if err := r.Section("tracestate"); err != nil {
		return err
	}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative schedule length %d in snapshot", cnt)
	}
	n.schedule = n.schedule[:0]
	n.scheduleIdx = 0
	for i := 0; i < cnt; i++ {
		n.schedule = append(n.schedule, trace.Entry{Cycle: r.I64(), Src: r.Int(), Dst: r.Int(), Size: r.Int()})
		if r.Err() != nil {
			return r.Err()
		}
	}
	n.recording = r.Bool()
	cnt = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative recorded-trace length %d in snapshot", cnt)
	}
	n.recorded = n.recorded[:0]
	for i := 0; i < cnt; i++ {
		n.recorded = append(n.recorded, trace.Entry{Cycle: r.I64(), Src: r.Int(), Dst: r.Int(), Size: r.Int()})
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}

// SaveState writes the network's complete mutable state. It must be
// called between Steps; mid-cycle staging (pending ejections, wake
// buffers) would be lost, so SaveState refuses if any is live.
func (n *Network) SaveState(w *snap.Writer) error {
	for id := range n.pendingEject {
		if len(n.pendingEject[id]) != 0 {
			return fmt.Errorf("network: snapshot mid-cycle: node %d has staged ejections", id)
		}
	}
	for id := range n.wakes {
		if len(n.wakes[id]) != 0 {
			return fmt.Errorf("network: snapshot mid-cycle: router %d has unmerged wakes", id)
		}
	}
	w.Section("network")
	w.I64(n.now)
	w.U64(n.nextID)
	w.I64(n.created)

	pkts := n.collectPackets()
	w.Section("packets")
	w.Int(len(pkts))
	for _, p := range pkts {
		savePacket(w, p)
	}

	w.Section("expect")
	type exp struct {
		id  uint64
		seq int
	}
	exps := make([]exp, 0, len(n.expectSeq))
	//vichar:ordered collected pairs are sorted by packet ID below before serialization
	for id, seq := range n.expectSeq {
		exps = append(exps, exp{id: id, seq: seq})
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].id < exps[j].id })
	w.Int(len(exps))
	for _, e := range exps {
		w.U64(e.id)
		w.Int(e.seq)
	}

	for _, r := range n.routers {
		r.SaveState(w)
	}
	for _, s := range n.nis {
		saveNI(w, s)
	}

	w.Section("links")
	for id := range n.plan {
		for _, l := range n.plan[id].flits {
			n.saveFlitLink(w, l)
		}
		for _, l := range n.plan[id].credits {
			n.saveCreditLink(w, l)
		}
	}

	w.Section("linkstats")
	w.U64s(n.linkFlits)
	w.Bool(n.linkStartSnap != nil)
	if n.linkStartSnap != nil {
		w.U64s(n.linkStartSnap)
	}
	w.Bool(n.linkEndSnap != nil)
	if n.linkEndSnap != nil {
		w.U64s(n.linkEndSnap)
	}
	n.startSnap.SaveState(w)
	n.endSnap.SaveState(w)
	w.Bool(n.haveStart)
	w.Bool(n.haveEnd)

	w.Section("worklist")
	w.Bools(n.computeActive)
	w.Bools(n.deliverActive)
	w.Int(len(n.wlStats))
	for i := range n.wlStats {
		w.U64(n.wlStats[i].ComputeTicked)
		w.U64(n.wlStats[i].ComputeSkipped)
		w.U64(n.wlStats[i].DeliverTicked)
		w.U64(n.wlStats[i].DeliverSkipped)
	}

	n.saveTraceState(w)
	n.collector.SaveState(w)
	n.gen.SaveState(w)
	if n.txn != nil {
		n.txn.SaveState(w)
	}
	n.saveObs(w)
	return nil
}

// LoadState restores state saved by SaveState into a network freshly
// constructed from the same configuration.
func (n *Network) LoadState(r *snap.Reader) error {
	if err := r.Section("network"); err != nil {
		return err
	}
	n.now = r.I64()
	n.nextID = r.U64()
	n.created = r.I64()

	if err := r.Section("packets"); err != nil {
		return err
	}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative packet-table length %d in snapshot", cnt)
	}
	t := &pktTable{
		pkts:  make(map[uint64]*flit.Packet, cnt),
		flits: make(map[uint64][]*flit.Flit, cnt),
	}
	for i := 0; i < cnt; i++ {
		p := loadPacket(r)
		if r.Err() != nil {
			return r.Err()
		}
		if p.Size <= 0 {
			return fmt.Errorf("network: packet %d has non-positive size %d in snapshot", p.ID, p.Size)
		}
		if _, dup := t.pkts[p.ID]; dup {
			return fmt.Errorf("network: duplicate packet %d in snapshot table", p.ID)
		}
		t.pkts[p.ID] = p
	}

	if err := r.Section("expect"); err != nil {
		return err
	}
	cnt = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cnt < 0 {
		return fmt.Errorf("network: negative expect-table length %d in snapshot", cnt)
	}
	n.expectSeq = make(map[uint64]int, cnt)
	for i := 0; i < cnt; i++ {
		id := r.U64()
		seq := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		n.expectSeq[id] = seq
	}

	for _, rt := range n.routers {
		if err := rt.LoadState(r, t.flit, t.packet); err != nil {
			return err
		}
	}
	for _, s := range n.nis {
		if err := loadNI(r, s, t); err != nil {
			return err
		}
	}

	if err := r.Section("links"); err != nil {
		return err
	}
	for id := range n.plan {
		for _, l := range n.plan[id].flits {
			if err := n.loadFlitLink(r, l, t.flit); err != nil {
				return err
			}
		}
		for _, l := range n.plan[id].credits {
			if err := n.loadCreditLink(r, l); err != nil {
				return err
			}
		}
	}

	if err := r.Section("linkstats"); err != nil {
		return err
	}
	r.U64sInto(n.linkFlits)
	n.linkStartSnap = nil
	if r.Bool() {
		s := make([]uint64, len(n.linkFlits))
		r.U64sInto(s)
		n.linkStartSnap = s
	}
	n.linkEndSnap = nil
	if r.Bool() {
		s := make([]uint64, len(n.linkFlits))
		r.U64sInto(s)
		n.linkEndSnap = s
	}
	if err := n.startSnap.LoadState(r); err != nil {
		return err
	}
	if err := n.endSnap.LoadState(r); err != nil {
		return err
	}
	n.haveStart = r.Bool()
	n.haveEnd = r.Bool()

	if err := r.Section("worklist"); err != nil {
		return err
	}
	r.BoolsInto(n.computeActive)
	r.BoolsInto(n.deliverActive)
	if cnt := r.Int(); cnt != len(n.wlStats) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("network: snapshot has %d worklist shards, configuration has %d", cnt, len(n.wlStats))
	}
	for i := range n.wlStats {
		n.wlStats[i].ComputeTicked = r.U64()
		n.wlStats[i].ComputeSkipped = r.U64()
		n.wlStats[i].DeliverTicked = r.U64()
		n.wlStats[i].DeliverSkipped = r.U64()
	}

	if err := n.loadTraceState(r); err != nil {
		return err
	}
	if err := n.collector.LoadState(r); err != nil {
		return err
	}
	if err := n.gen.LoadState(r); err != nil {
		return err
	}
	if n.txn != nil {
		if err := n.txn.LoadState(r); err != nil {
			return err
		}
	}
	if err := n.loadObs(r); err != nil {
		return err
	}
	return r.Err()
}
