// Package network assembles the complete simulated system: the mesh
// of routers, the inter-router links, the per-node network interfaces
// (traffic sources and sinks) and the cycle-driven simulation loop
// with the paper's measurement protocol.
//
// The simulator is cycle-accurate at the granularity of architectural
// components. Each cycle runs as an explicit two-phase kernel
// (DESIGN.md §10): a deliver/inject phase that moves due link
// payloads into their receivers and enqueues new traffic, then a
// compute phase that evaluates every router's pipeline stages in
// reverse order so that flits progress exactly one stage per cycle.
// Every flit and credit link has exactly one writer router (compute
// phase) and one receiver router (deliver phase), so both phases
// shard by router ID across a fixed worker pool (Config.Workers) with
// barriers between them; all global accounting — collector ejections,
// the end-to-end sequence check, link traversal totals — is either
// per-router/per-link indexed or committed serially in index order
// between the phases. Results are therefore independent of router
// iteration order and of the worker count, and fully deterministic
// for a given seed.
package network

import (
	"fmt"

	"vichar/internal/audit"
	"vichar/internal/buffers"
	"vichar/internal/config"
	"vichar/internal/faults"
	"vichar/internal/flit"
	"vichar/internal/metrics"
	"vichar/internal/router"
	"vichar/internal/routing"
	"vichar/internal/stats"
	"vichar/internal/topology"
	"vichar/internal/trace"
	"vichar/internal/traffic"
	"vichar/internal/txn"
)

// timedFlit is a flit in flight on a link.
type timedFlit struct {
	f  *flit.Flit
	at int64
}

// flitLink is a fixed-latency flit pipeline between an output port
// and a receiver.
type flitLink struct {
	delay int64
	q     []timedFlit
	head  int

	// Delivery target, encoded as plain fields instead of a per-link
	// closure so the deliver phase's hottest call is a direct method
	// invocation on stable memory. Exactly one shape is wired per link:
	// an ejection link stages into *eject; every other link hands the
	// flit to dst.ReceiveFlit(inPort, ...), bumping *count (the
	// network's per-link flit counter) and the probe when attached.
	dst    *router.Router
	inPort int
	count  *uint64
	lp     *metrics.LinkProbe
	eject  *[]*flit.Flit

	// Active-router worklist wiring (DESIGN.md §14): owner is the
	// router whose deliver-phase plan ticks this link; wake points at
	// the WRITER router's wake buffer (Network.wakes[writer]). A send
	// that makes an empty link non-empty appends owner there; the
	// serial merge after the compute barrier re-activates the owner's
	// deliver entry. Only the writer's shard touches the buffer, so
	// the edge-triggered append is race-free at any worker count.
	owner int
	wake  *[]int

	// faults is the link's fault-model state (retransmission buffer,
	// scheduled drops); nil without Config.Faults, which keeps the
	// fault-free tick path identical to the seed's. fprobe mirrors
	// fault activity into the observability layer (nil-safe).
	faults *faults.LinkState
	fprobe *metrics.LinkFaultProbe
}

// SendFlit enqueues f for delivery delay cycles from now.
func (l *flitLink) SendFlit(f *flit.Flit, now int64) {
	if l.head == len(l.q) && l.wake != nil {
		//vichar:alloc edge-triggered wake: at most one append per empty->non-empty transition, into a per-writer buffer reset each cycle
		*l.wake = append(*l.wake, l.owner)
	}
	//vichar:alloc in-flight queue is bounded by link occupancy; tick resets it to its backing array, so capacity reaches steady state after warm-up
	l.q = append(l.q, timedFlit{f: f, at: now + l.delay})
}

// pending reports whether the link still carries undelivered work: an
// in-flight payload or a flit parked in its retransmission buffer.
// The deliver shard keeps the owning router's deliver entry active
// while any plan link is pending, so fault-held links keep their
// router on the worklist until the retransmission drains.
func (l *flitLink) pending() bool {
	if l.head < len(l.q) {
		return true
	}
	return l.faults != nil && l.faults.Held() > 0
}

// deliverFlit hands a due flit to the link's wired target (see the
// field comment on flitLink).
func (l *flitLink) deliverFlit(f *flit.Flit, now int64) {
	if l.eject != nil {
		//vichar:alloc staging slice is reset to length 0 each commit, so its capacity reaches the per-cycle ejection peak and stays there
		*l.eject = append(*l.eject, f)
		return
	}
	if l.count != nil {
		*l.count++
	}
	if l.lp != nil {
		l.lp.Deliver(now, f.Pkt.ID, f.Seq, f.VC)
	}
	l.dst.ReceiveFlit(l.inPort, f, now)
}

// tick delivers every flit due at or before now and reports whether
// the link still carries undelivered work (pending, folded in so the
// deliver sweep needs no second pass over the link).
func (l *flitLink) tick(now int64) bool {
	if l.faults != nil {
		l.tickFaulty(now)
		return l.pending()
	}
	for l.head < len(l.q) && l.q[l.head].at <= now {
		tf := l.q[l.head]
		l.q[l.head] = timedFlit{}
		l.head++
		l.deliverFlit(tf.f, now)
	}
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
		return false
	}
	return true
}

// tickFaulty is the fault-model delivery path: each due flit's fate
// is rolled per attempt; a dropped or corrupted flit moves into the
// link's single-flit retransmission buffer and blocks the flits
// behind it until re-sent (preserving wormhole order), and a
// retransmission attempt may itself be faulted. The held flit stays
// inside the link's credit accounting as the RetxHeld audit term.
func (l *flitLink) tickFaulty(now int64) {
	s := l.faults
	if s.HeldDue(now) {
		l.fprobe.Retransmit()
		if out := s.Attempt(now); out == faults.Deliver {
			l.deliverFlit(s.Release(), now)
		} else {
			s.Rearm(now)
			l.fprobe.Fault(out == faults.Corrupt)
		}
	}
	for l.head < len(l.q) && l.q[l.head].at <= now && !s.Blocked() {
		tf := l.q[l.head]
		l.q[l.head] = timedFlit{}
		l.head++
		if out := s.Attempt(now); out == faults.Deliver {
			l.deliverFlit(tf.f, now)
		} else {
			s.Hold(tf.f, now)
			l.fprobe.Fault(out == faults.Corrupt)
		}
	}
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	}
}

// timedCredit is a credit in flight on a reverse channel.
type timedCredit struct {
	c  flit.Credit
	at int64
}

// creditLink is the fixed-latency reverse channel of a link.
type creditLink struct {
	delay int64
	q     []timedCredit
	head  int

	// Delivery target as plain fields (same rationale as flitLink): an
	// inter-router reverse channel credits dst's output port outPort;
	// the NI reverse channel credits view directly.
	dst     *router.Router
	outPort int
	view    router.CreditView

	// Worklist wiring, identical contract to flitLink.owner/wake.
	owner int
	wake  *[]int
}

// SendCredit enqueues c for delivery delay cycles from now.
func (l *creditLink) SendCredit(c flit.Credit, now int64) {
	if l.head == len(l.q) && l.wake != nil {
		//vichar:alloc edge-triggered wake: at most one append per empty->non-empty transition, into a per-writer buffer reset each cycle
		*l.wake = append(*l.wake, l.owner)
	}
	//vichar:alloc in-flight queue is bounded by link occupancy; tick resets it to its backing array, so capacity reaches steady state after warm-up
	l.q = append(l.q, timedCredit{c: c, at: now + l.delay})
}

// tick delivers every credit due at or before now and reports whether
// the channel still carries undelivered credits.
func (l *creditLink) tick(now int64) bool {
	for l.head < len(l.q) && l.q[l.head].at <= now {
		tc := l.q[l.head]
		l.head++
		if l.dst != nil {
			l.dst.ReceiveCredit(l.outPort, tc.c)
		} else {
			l.view.OnCredit(tc.c)
		}
	}
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
		return false
	}
	return true
}

// inflight returns the number of undelivered flits on the link.
func (l *flitLink) inflight() int { return len(l.q) - l.head }

// inflight returns the number of undelivered credits on the link.
func (l *creditLink) inflight() int { return len(l.q) - l.head }

// auditedLink ties together the four parties of one directed link's
// credit-conservation equation: the upstream credit view, the forward
// flit channel, the downstream input buffer and the reverse credit
// channel. Collected at wiring time, checked every step when
// Config.Audit is set.
type auditedLink struct {
	name string
	view router.CreditView
	fl   *flitLink
	cl   *creditLink
	buf  buffers.Buffer
}

// retxHeld returns the link's declared-fault conservation term: the
// flit count parked in its retransmission buffer.
func (al *auditedLink) retxHeld() int { return al.fl.faults.Held() }

// niStream is one injection stream of a network interface: the packet
// queue and in-flight flit cursor of a single VC class. Fire-and-
// forget runs have exactly one stream; the transaction layer gives
// each VC class its own so a queued response can never wait behind a
// request (or background packet) that cannot obtain a VC.
type niStream struct {
	queue []*flit.Packet
	qhead int

	cur []*flit.Flit
	idx int
	vc  int
}

func (st *niStream) queued() int { return len(st.queue) - st.qhead }

// ni is one network interface: the per-class packet source queues
// feeding the router's local input port. It mirrors the local input
// port's buffer state through a credit view, allocates a VC per
// packet within the packet's class and injects one flit per cycle
// when credits allow.
type ni struct {
	node    int
	view    router.CreditView
	link    *flitLink
	streams []niStream
	rr      int // round-robin pointer over streams for the one-flit-per-cycle send

	// txn, when the transaction layer is on, receives the fully-
	// injected notification that releases a responder's egress slot.
	// ni.tick runs in the node's compute shard and the hook touches
	// only this node's responder state, so the call is race-free.
	txn *txn.Engine

	// probe mirrors injection activity into the live metrics
	// registry; nil (no-op) without an observability layer.
	probe *metrics.NIProbe
}

func (s *ni) enqueue(p *flit.Packet) {
	//vichar:alloc one append per generated packet, amortized by tick's queue compaction — not per-cycle churn
	s.streams[p.Class].queue = append(s.streams[p.Class].queue, p)
}

func (s *ni) queued() int {
	n := 0
	for i := range s.streams {
		n += s.streams[i].queued()
	}
	return n
}

// idle reports whether a tick would be a no-op: no stream holds a
// packet mid-flight or queued. The compute worklist only lets a node
// sleep when its NI is idle; a stalled injection (cur != nil waiting
// for credit) keeps the node active until the credit arrives.
func (s *ni) idle() bool {
	for i := range s.streams {
		if s.streams[i].cur != nil || s.streams[i].queued() > 0 {
			return false
		}
	}
	return true
}

func (s *ni) tick(now int64) {
	// Start phase: every stream with a queued packet and no packet in
	// flight tries to allocate a VC within its own class.
	for c := range s.streams {
		st := &s.streams[c]
		if st.cur != nil || st.queued() == 0 {
			continue
		}
		if vc, ok := s.view.AllocVCIn(c, false); ok {
			p := st.queue[st.qhead]
			st.queue[st.qhead] = nil
			st.qhead++
			if st.qhead > len(st.queue)/2 && st.qhead > 16 {
				n := copy(st.queue, st.queue[st.qhead:])
				st.queue = st.queue[:n]
				st.qhead = 0
			}
			p.InjectedAt = now
			//vichar:alloc packet materialization allocates its flits once at injection, amortized over the packet's network lifetime
			st.cur = flit.MakeFlits(p)
			st.idx = 0
			st.vc = vc
		}
	}
	// Send phase: the injection channel carries one flit per cycle;
	// streams with credit take turns round-robin. With one stream this
	// reduces exactly to the classic NI.
	n := len(s.streams)
	blocked := false
	for i := 0; i < n; i++ {
		c := s.rr + i
		if c >= n {
			c -= n
		}
		st := &s.streams[c]
		if st.cur == nil {
			continue
		}
		if !s.view.CanSendFlit(st.vc) {
			blocked = true
			continue
		}
		f := st.cur[st.idx]
		f.VC = st.vc
		s.view.OnSend(f)
		s.link.SendFlit(f, now)
		if s.probe != nil {
			s.probe.Inject(now, f.Pkt.ID, f.Seq, st.vc)
		}
		st.idx++
		if st.idx == len(st.cur) {
			if s.txn != nil {
				s.txn.OnInjected(s.node, f.Pkt)
			}
			st.cur = nil
		}
		if n > 1 {
			s.rr = c + 1
			if s.rr == n {
				s.rr = 0
			}
		}
		return
	}
	if blocked {
		s.probe.CreditStall()
	}
}

// routerLinks is the deliver-phase plan of one router: every link
// whose delivery mutates state owned by that router — flit links
// feeding its input buffers, the ejection link of its processing
// element (staged, see pendingEject), and credit links feeding its
// output views or its network interface's view. One link appears in
// exactly one router's plan, which is what makes the deliver phase
// shardable by router ID.
type routerLinks struct {
	flits   []*flitLink
	credits []*creditLink
}

// Network is a complete simulated NoC.
type Network struct {
	cfg  *config.Config
	mesh topology.Mesh

	routers []*router.Router
	nis     []*ni

	// plan[id] holds the links the deliver phase ticks on router id's
	// behalf; shards own contiguous ID ranges (shardBounds).
	plan []routerLinks

	// Link slabs in delivery order (DESIGN.md §17): the slabs are laid
	// out grouped by owning router — flitSlab[flitOff[id]:flitOff[id+1]]
	// are exactly plan[id].flits, in plan order — so deliverShard walks
	// each router's links as one contiguous slab range and commits its
	// deliveries in a single streaming sweep instead of chasing the
	// plan's pointers. plan keeps the pointer view for the cold paths
	// (snapshot, audit, packet collection).
	flitSlab   []flitLink
	creditSlab []creditLink
	flitOff    []int32
	creditOff  []int32

	// pendingEject[id] stages flits delivered to node id's processing
	// element during the sharded deliver phase; the serial commit
	// sub-phase ejects them in ascending node order, which matches the
	// serial kernel's ejection-link order exactly.
	pendingEject [][]*flit.Flit

	// Active-router worklist (DESIGN.md §14). computeActive[id] marks
	// routers the compute phase must tick; it is cleared by the
	// owning shard once router id is quiescent, its NI idle and no
	// fault plan is attached, and re-set by the same shard's deliver
	// pass or by the serial injection path. deliverActive[id] marks
	// routers whose plan links may carry payloads; the owning shard
	// recomputes it from link occupancy each cycle, and cross-shard
	// sends re-arm it through wakes: wakes[w] is written only by
	// router w's shard (during its compute) and drained serially
	// after the compute barrier, so activation is deterministic (a
	// pure OR over an order-free set) and race-free at any worker
	// count. Skipped entries are exact no-ops, so results stay
	// bit-identical to the always-tick kernel.
	computeActive []bool
	deliverActive []bool
	wakes         [][]int

	// wlStats tallies worklist effectiveness per shard (shard-owned
	// slots, summed on demand by WorklistStats).
	wlStats []WorklistStats

	// shardCount is the number of kernel shards (1 = serial); exec is
	// the lazily created worker pool behind runSharded.
	shardCount int
	exec       *shardExecutor

	// Phase closures bound once at construction: Step and audit hand
	// runSharded (and the traffic generator) the same values every
	// cycle instead of allocating a fresh closure per call. The shard
	// methods read n.now themselves, so no per-cycle capture is needed.
	deliverFn      func(shard int)
	computeFn      func(shard int)
	auditLinksFn   func(shard int)
	auditRoutersFn func(shard int)
	injectFn       func(src, dst, size int)

	// samplePerNode is sample's per-node VC-usage scratch; the
	// collector consumes the values synchronously and never retains
	// the slice.
	samplePerNode []float64

	// auditedLinks holds every credit-carrying link's conservation
	// parties; checked per step when cfg.Audit is set. auditStates and
	// auditErrs are per-shard scratch for the sharded audit pass.
	auditedLinks []auditedLink
	auditStates  [][]audit.LinkState
	auditErrs    []error

	// fplan is the compiled fault schedule (nil without Config.Faults);
	// faultLinks collects every inter-router link's fault state so
	// totalCounters can fold drop/corrupt/retransmit tallies into the
	// run's Counters.
	fplan      *faults.Plan
	faultLinks []*faults.LinkState

	// arena owns the struct-of-arrays backing store for every router's
	// and credit view's hot state (DESIGN.md §14).
	arena *router.Arena

	gen       *traffic.Generator
	collector *stats.Collector

	// txn is the network-interface transaction layer (nil without
	// Config.Txn); every hook on the hot path hides behind this one
	// pointer check so fire-and-forget runs stay byte-identical.
	txn *txn.Engine

	now    int64
	nextID uint64

	// Inter-router channel load accounting: one entry per directed
	// link, with snapshots bracketing the measurement window.
	linkMeta      []stats.ChannelLoad
	linkFlits     []uint64
	linkStartSnap []uint64
	linkEndSnap   []uint64

	startSnap stats.Counters
	endSnap   stats.Counters
	haveStart bool
	haveEnd   bool

	created int64

	// expectSeq tracks, per in-flight packet, the next flit sequence
	// number the sink must observe: the end-to-end ordering check.
	expectSeq map[uint64]int

	// schedule replays a recorded trace (sorted by cycle);
	// scheduleIdx is the next entry to inject.
	schedule    []trace.Entry
	scheduleIdx int

	// recorded accumulates creation events when recording is on.
	recording bool
	recorded  []trace.Entry

	// obs is the live observability layer (internal/metrics); nil when
	// Config.Metrics and Config.TraceEvents are both off. netProbe is
	// obs's serial-phase probe, kept as its own field so eject and
	// InjectPacketSized pay one nil check when observability is off.
	obs      *obsState
	netProbe *metrics.NetProbe
}

// obsState bundles the network's observability wiring: the shared
// registry, one recorder per shard-owned node (index 1+id) plus one
// for the serial phase (index 0), the optional event tracer and the
// network-level gauges. Recorders are merged and drained — in fixed
// index order — only from the serial side of the kernel (flushObs),
// which is what keeps registry and event-stream state bit-identical
// for any worker count.
type obsState struct {
	reg    *metrics.Registry
	tracer *metrics.Tracer
	recs   []*metrics.Recorder

	gCycle    metrics.GaugeID
	gOcc      metrics.GaugeID
	gVCs      metrics.GaugeID
	gInflight metrics.GaugeID
}

// New builds and wires a network for the configuration. It panics on
// an invalid configuration; call cfg.Validate first when the config
// comes from untrusted input.
func New(cfg *config.Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("network: %v", err))
	}
	mesh := topology.New(cfg.Width, cfg.Height)
	mesh.Torus = cfg.Torus
	n := &Network{
		cfg:          cfg,
		mesh:         mesh,
		routers:      make([]*router.Router, mesh.Nodes()),
		nis:          make([]*ni, mesh.Nodes()),
		plan:         make([]routerLinks, mesh.Nodes()),
		pendingEject: make([][]*flit.Flit, mesh.Nodes()),
		collector:    stats.NewCollector(cfg.WarmupPackets, cfg.MeasurePackets, mesh.Nodes()),
		expectSeq:    make(map[uint64]int),
	}
	n.shardCount = cfg.Workers
	if n.shardCount < 1 {
		n.shardCount = 1
	}
	if n.shardCount > mesh.Nodes() {
		n.shardCount = mesh.Nodes()
	}
	n.auditStates = make([][]audit.LinkState, n.shardCount)
	n.auditErrs = make([]error, n.shardCount)
	n.computeActive = make([]bool, mesh.Nodes())
	n.deliverActive = make([]bool, mesh.Nodes())
	n.wakes = make([][]int, mesh.Nodes())
	n.wlStats = make([]WorklistStats, n.shardCount)
	for id := range n.computeActive {
		n.computeActive[id] = true
		n.deliverActive[id] = true
	}
	// The struct-of-arrays arena: routers and credit views below draw
	// their hot per-(router, port, VC) state from it in ascending id
	// order, laying the whole mesh's tick-path state out contiguously.
	n.arena = router.NewArena(cfg, mesh)
	for id := range n.routers {
		n.routers[id] = router.NewIn(n.arena, id, cfg, mesh)
	}

	// Fault model: compile the schedule (nil when disabled), hand each
	// router its stall/dead-link state, and — when links are scheduled
	// to die — switch every router's escape routing to the up*/down*
	// tree over the links that survive the whole run (planned-outage
	// model, see routing.EscapeTree). Validate guarantees the surviving
	// links still connect the mesh, so tree construction cannot fail.
	n.fplan = faults.NewPlan(cfg)
	if n.fplan != nil {
		for id, r := range n.routers {
			r.SetFaults(n.fplan.Router(id))
		}
		if n.fplan.HasHardFaults() {
			tree, err := routing.NewEscapeTree(mesh, func(node, port int) bool {
				return !n.fplan.LinkEverDead(node, port)
			})
			if err != nil {
				//vichar:invariant Config.Validate rejects fault schedules that disconnect the mesh
				panic(fmt.Sprintf("network: %v", err))
			}
			for _, r := range n.routers {
				r.SetEscapeTree(tree)
			}
		}
	}

	// Observability layer: one recorder per node (written only by the
	// shard that owns the node) plus one for the serial phase, built
	// before link wiring so deliver closures can capture link probes.
	if cfg.Metrics || cfg.TraceEvents > 0 {
		o := &obsState{reg: metrics.NewRegistry()}
		tracing := cfg.TraceEvents > 0
		if tracing {
			o.tracer = metrics.NewTracer(o.reg, cfg.TraceEvents)
		}
		o.recs = make([]*metrics.Recorder, 1+mesh.Nodes())
		for i := range o.recs {
			o.recs[i] = o.reg.NewRecorder(tracing)
		}
		n.netProbe = metrics.NewNetProbe(o.recs[0])
		o.gCycle = o.reg.Gauge("vichar_cycle", "Current simulation cycle.", nil)
		o.gOcc = o.reg.Gauge("vichar_buffer_occupancy_fraction",
			"Network-wide input-buffer occupancy over total slots, at the last sample.", nil)
		o.gVCs = o.reg.Gauge("vichar_inuse_vcs_per_port_avg",
			"Mean in-use virtual channels per input port across the network, at the last sample.", nil)
		o.gInflight = o.reg.Gauge("vichar_packets_inflight",
			"Packets created but not yet fully ejected.", nil)
		n.obs = o
		portNames := make([]string, cfg.Ports())
		for p := range portNames {
			portNames[p] = topology.PortName(p)
		}
		for id, r := range n.routers {
			r.SetProbe(metrics.NewRouterProbe(o.recs[1+id], id, portNames))
		}
	}

	// Link slabs: every flit and credit link of the mesh lives in one
	// contiguous array each, grouped by owning router in plan order, so
	// the deliver phase walks each router's links as one contiguous
	// slab range (see the flitSlab field comment). Per-owner capacities
	// are exact: Degree incoming inter-router flit links plus ejection
	// and injection per node; Degree outgoing reverse channels plus the
	// NI credit per node. The cursor-guarded takes below panic rather
	// than reallocate, which would orphan the already-wired pointers.
	nLinks := 0
	nodes := mesh.Nodes()
	n.flitOff = make([]int32, nodes+1)
	n.creditOff = make([]int32, nodes+1)
	for id := 0; id < nodes; id++ {
		d := mesh.Degree(id)
		nLinks += d
		n.flitOff[id+1] = n.flitOff[id] + int32(d) + 2
		n.creditOff[id+1] = n.creditOff[id] + int32(d) + 1
	}
	n.flitSlab = make([]flitLink, nLinks+2*nodes)
	n.creditSlab = make([]creditLink, nLinks+nodes)
	// Exact capacity up front: links hold *count pointers into this
	// array, so it must never reallocate.
	n.linkFlits = make([]uint64, 0, nLinks)
	fCur := make([]int32, nodes)
	cCur := make([]int32, nodes)
	copy(fCur, n.flitOff)
	copy(cCur, n.creditOff)
	takeFlitLink := func(l flitLink) *flitLink {
		i := fCur[l.owner]
		if i == n.flitOff[l.owner+1] {
			//vichar:invariant the per-owner link counts above are the same Degree sums the wiring loops walk
			panic(fmt.Sprintf("network: flit-link slab overflow at owner %d", l.owner))
		}
		fCur[l.owner] = i + 1
		p := &n.flitSlab[i]
		*p = l
		return p
	}
	takeCreditLink := func(l creditLink) *creditLink {
		i := cCur[l.owner]
		if i == n.creditOff[l.owner+1] {
			//vichar:invariant the per-owner link counts above are the same Degree sums the wiring loops walk
			panic(fmt.Sprintf("network: credit-link slab overflow at owner %d", l.owner))
		}
		cCur[l.owner] = i + 1
		p := &n.creditSlab[i]
		*p = l
		return p
	}

	// Inter-router links: one flit link (downstream) and one credit
	// link (upstream) per connected cardinal port pair.
	for id, r := range n.routers {
		for port := 0; port < topology.Local; port++ {
			nb, ok := mesh.Neighbor(id, port)
			if !ok {
				continue
			}
			dst := n.routers[nb]
			inPort := topology.Opposite(port)

			linkIdx := len(n.linkMeta)
			n.linkMeta = append(n.linkMeta, stats.ChannelLoad{From: id, To: nb, Port: port})
			n.linkFlits = append(n.linkFlits, 0)

			// Delivery mutates the downstream router's input buffer
			// (and this link's own flit counter), so the link belongs
			// to the receiver's deliver-phase plan — and its probe
			// writes on the receiver's recorder. The same ownership
			// covers the link's fault state: only the receiver's shard
			// ticks it.
			// Worklist: router id's compute writes this link; router
			// nb's deliver drains it.
			fl := takeFlitLink(flitLink{
				delay: router.FlitDelay, owner: nb, wake: &n.wakes[id],
				dst: dst, inPort: inPort, count: &n.linkFlits[linkIdx],
			})
			if fs := n.fplan.Link(id, port); fs != nil {
				fl.faults = fs
				n.faultLinks = append(n.faultLinks, fs)
				if n.obs != nil {
					fl.fprobe = metrics.NewLinkFaultProbe(n.obs.recs[1+nb], id, nb, topology.PortName(port))
				}
			}
			if n.obs != nil {
				fl.lp = metrics.NewLinkProbe(n.obs.recs[1+nb], id, nb, inPort, topology.PortName(port))
			}
			n.plan[nb].flits = append(n.plan[nb].flits, fl)

			// Credit delivery mutates the upstream router's output
			// view, so the reverse channel belongs to the upstream
			// router's plan; the downstream router nb writes it.
			cl := takeCreditLink(creditLink{
				delay: router.CreditDelay, owner: id, wake: &n.wakes[nb],
				dst: r, outPort: port,
			})
			n.plan[id].credits = append(n.plan[id].credits, cl)

			view := router.NewCreditViewIn(n.arena, cfg)
			r.ConnectOutput(port, fl, view)
			dst.ConnectInputCredit(inPort, cl)
			n.auditedLinks = append(n.auditedLinks, auditedLink{
				name: fmt.Sprintf("%d->%d", id, nb),
				view: view, fl: fl, cl: cl, buf: dst.InputBuffer(inPort),
			})
		}
	}

	// The transaction layer, when on, is built before the local ports
	// so each responder node's admission gate can be wired into its
	// ejection sink view.
	if cfg.Txn.Enabled {
		n.txn = txn.New(cfg, mesh, n)
	}

	// Local ports: ejection to the sink and injection from the NI.
	for id, r := range n.routers {
		// Ejection: router local output -> processing element. The
		// sink mutates network-global state (collector, sequence
		// check, snapshots), so delivery only stages the flit; the
		// serial commit sub-phase of Step ejects staged flits in
		// ascending node order. A responder node's finite service
		// queue gates its sink's ejection grants.
		ej := takeFlitLink(flitLink{
			delay: router.FlitDelay, owner: id, wake: &n.wakes[id],
			eject: &n.pendingEject[id],
		})
		n.plan[id].flits = append(n.plan[id].flits, ej)
		sink := router.NewSinkView()
		if n.txn != nil {
			if mc := n.txn.Responder(id); mc != nil {
				sink = router.NewSinkViewWith(mc)
			}
		}
		r.ConnectOutput(topology.Local, ej, sink)

		// Injection: NI -> router local input (one-cycle channel).
		s := &ni{
			node:    id,
			view:    router.NewCreditViewIn(n.arena, cfg),
			streams: make([]niStream, cfg.VCClasses()),
			txn:     n.txn,
		}
		if n.obs != nil {
			s.probe = metrics.NewNIProbe(n.obs.recs[1+id], id)
		}
		inj := takeFlitLink(flitLink{
			delay: 1, owner: id, wake: &n.wakes[id],
			dst: r, inPort: topology.Local,
		})
		n.plan[id].flits = append(n.plan[id].flits, inj)
		s.link = inj

		cl := takeCreditLink(creditLink{
			delay: router.CreditDelay, owner: id, wake: &n.wakes[id],
			view: s.view,
		})
		view := s.view
		n.plan[id].credits = append(n.plan[id].credits, cl)
		r.ConnectInputCredit(topology.Local, cl)
		n.auditedLinks = append(n.auditedLinks, auditedLink{
			name: fmt.Sprintf("ni%d->%d", id, id),
			view: view, fl: inj, cl: cl, buf: r.InputBuffer(topology.Local),
		})

		n.nis[id] = s
	}

	n.gen = traffic.New(cfg, mesh)

	// Bind the phase closures once; Step and audit reuse them every
	// cycle (see the field comments on Network).
	n.deliverFn = n.deliverShard
	n.computeFn = n.computeShard
	n.auditLinksFn = n.auditLinksShard
	n.auditRoutersFn = n.auditRoutersShard
	n.injectFn = n.injectGenerated
	n.samplePerNode = make([]float64, mesh.Nodes())
	return n
}

// Mesh returns the network's topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Router returns router id (tests and diagnostics).
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// Now returns the current simulation cycle.
func (n *Network) Now() int64 { return n.now }

// CreatedPackets returns the number of packets generated so far.
func (n *Network) CreatedPackets() int64 { return n.created }

// InjectPacket creates a packet from src to dst at the current cycle
// and enqueues it at src's network interface; tests and custom
// workloads use it instead of the built-in traffic generator.
func (n *Network) InjectPacket(src, dst int) *flit.Packet {
	return n.InjectPacketSized(src, dst, n.cfg.PacketSize)
}

// InjectPacketSized creates a packet with an explicit flit count
// (variable-size packet protocol).
func (n *Network) InjectPacketSized(src, dst, size int) *flit.Packet {
	return n.SendTxnPacket(src, dst, size, 0, 0, 0)
}

// SendTxnPacket implements txn.Sender: it creates a packet carrying a
// transaction-layer kind, VC class and request reference, and
// enqueues it on the source interface's stream for that class. Plain
// fire-and-forget injection is the zero-kind, zero-class case.
func (n *Network) SendTxnPacket(src, dst, size int, kind, class uint8, req uint64) *flit.Packet {
	n.nextID++
	//vichar:alloc one packet object per generated packet — the protocol unit, not per-cycle churn
	p := &flit.Packet{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Size:      size,
		CreatedAt: n.now,
		SeqNo:     n.nextID,
		Class:     class,
		Kind:      kind,
		Req:       req,
	}
	n.created++
	n.nis[src].enqueue(p)
	// Injection happens on the serial side of the kernel, before the
	// compute phase, so waking the source here preserves same-cycle NI
	// processing for a sleeping node.
	n.computeActive[src] = true
	n.netProbe.PacketCreated(n.now, p.ID, src)
	if n.recording {
		//vichar:alloc trace recording is an opt-in diagnostic mode; one entry per recorded packet
		n.recorded = append(n.recorded, trace.Entry{Cycle: n.now, Src: src, Dst: dst, Size: size})
	}
	return p
}

// injectGenerated adapts InjectPacketSized to the traffic generator's
// callback signature; bound once in New as n.injectFn.
func (n *Network) injectGenerated(src, dst, size int) { n.InjectPacketSized(src, dst, size) }

// RecordTrace turns on packet-creation recording; RecordedTrace
// returns the events captured so far.
func (n *Network) RecordTrace() { n.recording = true }

// RecordedTrace returns the creation events captured since
// RecordTrace.
func (n *Network) RecordedTrace() []trace.Entry { return n.recorded }

// ScheduleTrace queues a recorded workload for replay: each entry is
// injected at its cycle. Entries must be sorted by cycle (trace.Read
// guarantees this) and valid for this network's node count. Typically
// used with InjectionRate zero so the stochastic generator stays
// silent.
func (n *Network) ScheduleTrace(entries []trace.Entry) error {
	if err := trace.ValidateAll(entries, n.mesh.Nodes()); err != nil {
		return err
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Cycle < entries[i-1].Cycle {
			return fmt.Errorf("network: trace entries out of order at %d", i)
		}
	}
	n.schedule = append(n.schedule, entries...)
	return nil
}

// TracePending returns the number of scheduled entries not yet
// injected.
func (n *Network) TracePending() int { return len(n.schedule) - n.scheduleIdx }

// eject consumes a flit at its destination's processing element,
// enforcing the end-to-end delivery invariants: flits of a packet
// arrive exactly once, in sequence order, at the right node.
func (n *Network) eject(f *flit.Flit, now int64) {
	if f.Pkt.Dst != dstOf(f) {
		//vichar:invariant the routing function must deliver every flit to its packet destination
		panic(fmt.Sprintf("network: flit %s ejected at wrong node", f))
	}
	want := n.expectSeq[f.Pkt.ID]
	if f.Seq != want {
		//vichar:invariant wormhole switching on a fixed VC cannot reorder flits of one packet
		panic(fmt.Sprintf("network: flit %s ejected out of order (want seq %d)", f, want))
	}
	if n.netProbe != nil {
		n.netProbe.FlitEjected(now, f.Pkt.ID, f.Seq, f.Pkt.Dst, f.VC, f.IsTail())
	}
	if !f.IsTail() {
		n.expectSeq[f.Pkt.ID] = want + 1
		return
	}
	if f.Seq != f.Pkt.Size-1 {
		//vichar:invariant a tail at the wrong sequence number means flits were lost or duplicated in flight
		panic(fmt.Sprintf("network: tail %s at seq %d of %d", f, f.Seq, f.Pkt.Size))
	}
	delete(n.expectSeq, f.Pkt.ID)
	p := f.Pkt
	p.EjectedAt = now
	was := n.collector.Measuring()
	n.collector.PacketEjected(p, now)
	if !was && n.collector.Measuring() && !n.haveStart {
		n.startSnap = n.totalCounters()
		//vichar:alloc measurement-window snapshot, taken at most once per run
		n.linkStartSnap = append([]uint64(nil), n.linkFlits...)
		n.haveStart = true
	}
	if was && !n.collector.Measuring() && !n.haveEnd {
		n.endSnap = n.totalCounters()
		//vichar:alloc measurement-window snapshot, taken at most once per run
		n.linkEndSnap = append([]uint64(nil), n.linkFlits...)
		n.haveEnd = true
	}
	if n.txn != nil {
		// Serial commit sub-phase: requests enter their responder's
		// service queue, responses retire their transaction.
		n.txn.OnEject(p, now, was)
	}
}

// dstOf exists to keep the ejection assertion honest without carrying
// the ejecting node through every link closure: the flit's packet
// destination is authoritative.
func dstOf(f *flit.Flit) int { return f.Pkt.Dst }

// totalCounters sums activity across routers plus network-level link
// traversals. Link traversals are kept per link (each link is ticked
// by exactly one shard), so the network-wide total is their sum.
func (n *Network) totalCounters() stats.Counters {
	var c stats.Counters
	for _, r := range n.routers {
		c.Add(r.Counters)
	}
	for _, f := range n.linkFlits {
		c.LinkTraversals += f
	}
	for _, fs := range n.faultLinks {
		c.FlitDrops += fs.Drops
		c.FlitCorrupts += fs.Corrupts
		c.Retransmits += fs.Retransmits
	}
	return c
}

// Step advances the simulation by exactly one cycle through the
// two-phase kernel:
//
//  1. Deliver (sharded by receiver router): every link delivers its
//     due payloads into the receiving router's input buffers and
//     credit views; ejections are staged per node.
//  2. Commit + inject (serial): staged ejections are committed in
//     ascending node order — the only phase that mutates the stats
//     collector, the end-to-end sequence check and the measurement
//     snapshots — then new traffic is generated and scheduled trace
//     entries injected.
//  3. Compute (sharded by router): every network interface and router
//     evaluates its pipeline; the only cross-router effects are sends
//     on links the router owns the write side of, delivered next
//     cycle by phase 1.
//
// Shards own disjoint state and the serial sub-phase runs in a fixed
// index order, so the cycle's outcome is bit-identical for any worker
// count.
func (n *Network) Step() {
	n.now++
	now := n.now
	n.runSharded(n.deliverFn)
	for id := range n.pendingEject {
		staged := n.pendingEject[id]
		for i, f := range staged {
			staged[i] = nil
			n.eject(f, now)
		}
		n.pendingEject[id] = staged[:0]
	}
	if n.cfg.InjectionRate > 0 {
		n.gen.Tick(now, n.injectFn)
	}
	for n.scheduleIdx < len(n.schedule) && n.schedule[n.scheduleIdx].Cycle <= now {
		e := n.schedule[n.scheduleIdx]
		n.scheduleIdx++
		n.InjectPacketSized(e.Src, e.Dst, e.Size)
	}
	if n.txn != nil {
		// Serial like the generator: responder completions inject
		// responses and requesters draw new requests, both in
		// ascending node order off per-node streams.
		n.txn.Tick(now)
	}
	n.runSharded(n.computeFn)
	// Merge the per-writer wake buffers: sends that made an empty link
	// non-empty re-activate the owning router's deliver entry. A pure
	// OR over an order-free set, run serially after the compute
	// barrier, so the result is independent of worker scheduling.
	for w := range n.wakes {
		for _, owner := range n.wakes[w] {
			n.deliverActive[owner] = true
		}
		n.wakes[w] = n.wakes[w][:0]
	}
	if n.cfg.Audit {
		n.audit(now)
	}
	if now%n.cfg.SampleEvery == 0 {
		n.sample(now)
		n.flushObs()
	}
}

// deliverShard is phase 1 for one shard: every link owned by the
// shard's routers delivers its due flits and credits. The walk runs
// over the owner-grouped link slabs in slab order — one contiguous
// range per router (flitOff/creditOff), batching each router's
// delivery commits into a single streaming sweep — rather than over
// the plan's pointer slices. Reads n.now itself (set before the phase
// barrier) so the bound closure carries no per-cycle state.
func (n *Network) deliverShard(shard int) {
	now := n.now
	lo, hi := n.shardBounds(shard)
	st := &n.wlStats[shard]
	for id := lo; id < hi; id++ {
		// Skip routers none of whose links carry payloads; the flag is
		// re-armed by the serial wake merge when a writer makes one of
		// them non-empty again.
		if !n.deliverActive[id] {
			st.DeliverSkipped++
			continue
		}
		st.DeliverTicked++
		pending := false
		for i := n.flitOff[id]; i < n.flitOff[id+1]; i++ {
			if n.flitSlab[i].tick(now) {
				pending = true
			}
		}
		for i := n.creditOff[id]; i < n.creditOff[id+1]; i++ {
			if n.creditSlab[i].tick(now) {
				pending = true
			}
		}
		// Both flags are shard-owned here: deliver and compute shard
		// by the same id ranges, so no other worker reads them before
		// the phase barrier. Anything delivered (or still in flight)
		// may have changed router id's state, so its compute entry is
		// re-armed conservatively.
		n.deliverActive[id] = pending
		n.computeActive[id] = true
	}
}

// computeShard is phase 3 for one shard: the shard's network
// interfaces and routers evaluate their pipelines.
func (n *Network) computeShard(shard int) {
	now := n.now
	lo, hi := n.shardBounds(shard)
	st := &n.wlStats[shard]
	for id := lo; id < hi; id++ {
		if !n.computeActive[id] {
			st.ComputeSkipped++
			continue
		}
		st.ComputeTicked++
		s := n.nis[id]
		s.tick(now)
		n.routers[id].Tick(now)
		// A node may sleep only when a tick provably does nothing: the
		// router's masks are empty (Quiescent also rules out attached
		// fault state), the NI neither holds nor queues a packet, and
		// no fault plan is compiled — fault schedules mutate per-cycle
		// state regardless of traffic, so faulted runs never sleep.
		if n.fplan == nil && s.idle() && n.routers[id].Quiescent() {
			n.computeActive[id] = false
		}
	}
}

// flushObs commits the observability layer: staged counter deltas
// merge into the registry and staged events drain into the tracer,
// both in fixed recorder index order, and the network-level gauges
// refresh. Runs only on the serial side of the kernel — Step's sample
// cadence and the end of Run/Drain — after the compute barrier, so
// recorders are quiescent. A live scrape therefore lags the
// simulation by at most SampleEvery cycles.
func (n *Network) flushObs() {
	o := n.obs
	if o == nil {
		return
	}
	o.reg.MergeRecorders(o.recs)
	if o.tracer != nil {
		o.tracer.Drain(o.recs)
	}
	o.reg.SetGauge(o.gCycle, float64(n.now))
	o.reg.SetGauge(o.gInflight, float64(n.created-n.collector.Ejected()))
}

// Metrics returns the live metrics registry, or nil when the
// observability layer is off (Config.Metrics / Config.TraceEvents).
func (n *Network) Metrics() *metrics.Registry {
	if n.obs == nil {
		return nil
	}
	return n.obs.reg
}

// FlitTracer returns the flit-lifecycle event tracer, or nil when
// Config.TraceEvents is zero.
func (n *Network) FlitTracer() *metrics.Tracer {
	if n.obs == nil {
		return nil
	}
	return n.obs.tracer
}

// FlushMetrics forces an observability commit outside the regular
// cadence. It must be called from the goroutine driving Step (between
// steps); tests and custom protocols use it before reading snapshots.
func (n *Network) FlushMetrics() { n.flushObs() }

// Close releases the cycle kernel's worker pool (if any). The network
// stays usable — a later parallel Step lazily restarts the pool — but
// closing a finished network frees its goroutines immediately instead
// of waiting for the garbage collector's finalizer.
func (n *Network) Close() { n.stopKernel() }

// audit runs the per-cycle invariant auditor (internal/audit) over
// every credit-carrying link and every unified buffer. All router and
// link mutation for the cycle has completed behind the compute-phase
// barrier, so the checks are pure reads over quiescent state and are
// sharded across the same worker pool as the kernel; per-shard first
// violations are merged in index order, so the reported violation is
// the same one the serial kernel would find. Any violation is a
// simulator bug and panics.
func (n *Network) audit(now int64) {
	n.runSharded(n.auditLinksFn)
	for _, err := range n.auditErrs {
		if err != nil {
			//vichar:invariant a conservation imbalance means flow-control state corrupted mid-run; continuing would corrupt results
			panic(fmt.Sprintf("network: cycle %d: %v", now, err))
		}
	}
	n.runSharded(n.auditRoutersFn)
	for _, err := range n.auditErrs {
		if err != nil {
			//vichar:invariant a UBS bookkeeping divergence means buffered flits can be lost or duplicated; continuing would corrupt results
			panic(fmt.Sprintf("network: cycle %d: %v", now, err))
		}
	}
}

// auditLinksShard checks credit conservation over the shard's chunk
// of audited links, writing only its own auditStates/auditErrs slots.
func (n *Network) auditLinksShard(shard int) {
	states := n.auditStates[shard][:0]
	lo, hi := chunkBounds(len(n.auditedLinks), n.shardCount, shard)
	for _, al := range n.auditedLinks[lo:hi] {
		//vichar:alloc appends into the shard's reusable audit-state scratch; capacity reaches the chunk size after the first audited cycle
		states = append(states, audit.LinkState{
			Name:               al.name,
			Outstanding:        al.view.OutstandingFlits(),
			InFlightFlits:      al.fl.inflight(),
			DownstreamOccupied: al.buf.Occupied(),
			InFlightCredits:    al.cl.inflight(),
			RetxHeld:           al.retxHeld(),
		})
	}
	n.auditStates[shard] = states
	n.auditErrs[shard] = audit.CheckLinks(states)
	if n.auditErrs[shard] == nil {
		for _, al := range n.auditedLinks[lo:hi] {
			fs := al.fl.faults
			if fs == nil {
				continue
			}
			if err := audit.CheckLinkFaults(al.name, fs.Drops, fs.Corrupts, fs.Retransmits, fs.Held()); err != nil {
				n.auditErrs[shard] = err
				break
			}
		}
	}
}

// auditRoutersShard runs the UBS invariant auditor over the shard's
// routers, recording the first violation in its auditErrs slot.
func (n *Network) auditRoutersShard(shard int) {
	n.auditErrs[shard] = nil
	lo, hi := n.shardBounds(shard)
	for id := lo; id < hi; id++ {
		if err := n.routers[id].AuditInvariants(n.now); err != nil {
			n.auditErrs[shard] = err
			return
		}
	}
}

// sample records occupancy and VC-usage statistics.
func (n *Network) sample(now int64) {
	occ, slots := 0, 0
	perNode := n.samplePerNode
	for i, r := range n.routers {
		occ += r.Occupied()
		slots += r.TotalSlots()
		perNode[i] = r.InUseVCsPerPort()
	}
	frac := 0.0
	if slots > 0 {
		frac = float64(occ) / float64(slots)
	}
	n.collector.Sample(now, frac, perNode)
	if n.obs != nil {
		vcs := 0.0
		for _, v := range perNode {
			vcs += v
		}
		n.obs.reg.SetGauge(n.obs.gOcc, frac)
		n.obs.reg.SetGauge(n.obs.gVCs, vcs/float64(len(perNode)))
	}
}

// Run executes the full measurement protocol: inject until the
// ejection quota (warm-up + measurement) is met or the cycle cap is
// hit, then finalize statistics. The returned results carry the
// configuration label and offered load; power annotation is the
// caller's concern.
func (n *Network) Run() stats.Results {
	res, _ := n.RunWith(nil)
	return res
}

// RunWith executes the measurement protocol exactly like Run, calling
// hook (when non-nil) between completed cycles — the only point where
// a checkpoint is legal. A non-nil error from hook aborts the run and
// is returned verbatim; the hook must not Step the network itself.
func (n *Network) RunWith(hook func(now int64) error) (stats.Results, error) {
	maxCycles := n.cfg.EffectiveMaxCycles()
	saturated := false
	for {
		n.Step()
		if hook != nil {
			if err := hook(n.now); err != nil {
				return stats.Results{}, err
			}
		}
		if n.collector.Done() {
			break
		}
		if n.now >= maxCycles {
			saturated = true
			break
		}
	}
	if !n.haveEnd {
		n.endSnap = n.totalCounters()
		n.linkEndSnap = append([]uint64(nil), n.linkFlits...)
		n.haveEnd = true
	}
	n.flushObs()
	res := n.collector.Finalize(n.now, saturated)
	if n.haveStart {
		res.Counters = n.endSnap.Sub(n.startSnap)
	} else {
		res.Counters = n.endSnap
	}
	res.ChannelLoads, res.MaxChannelLoad = n.channelLoads(res.MeasureCycles)
	res.Label = n.cfg.Label()
	res.InjectionRate = n.cfg.InjectionRate
	if n.txn != nil {
		res.Txn = stats.FinalizeTxn(n.txn.Samples(), n.txn.Issued(), n.txn.Retired())
	}
	return res, nil
}

// channelLoads converts the bracketed per-link flit counts into loads
// over the measurement window.
func (n *Network) channelLoads(cycles int64) ([]stats.ChannelLoad, float64) {
	if cycles <= 0 || n.linkEndSnap == nil {
		return nil, 0
	}
	loads := make([]stats.ChannelLoad, len(n.linkMeta))
	maxLoad := 0.0
	for i, meta := range n.linkMeta {
		delta := n.linkEndSnap[i]
		if n.linkStartSnap != nil {
			delta -= n.linkStartSnap[i]
		}
		meta.Load = float64(delta) / float64(cycles)
		loads[i] = meta
		if meta.Load > maxLoad {
			maxLoad = meta.Load
		}
	}
	return loads, maxLoad
}

// Drain runs without injection until every in-flight packet has been
// ejected or maxCycles elapse; tests use it after manual InjectPacket
// calls. It returns the number of packets still unejected.
func (n *Network) Drain(maxCycles int64) int64 {
	deadline := n.now + maxCycles
	for n.now < deadline {
		if n.collector.Ejected() >= n.created && n.TracePending() == 0 &&
			(n.txn == nil || n.txn.Quiescent()) {
			break
		}
		n.Step()
	}
	n.flushObs()
	return n.created - n.collector.Ejected() + int64(n.TracePending())
}

// Collector exposes the stats collector (tests and custom protocols).
func (n *Network) Collector() *stats.Collector { return n.collector }

// Txn exposes the transaction-layer engine, or nil when Config.Txn is
// off (tests and custom protocols).
func (n *Network) Txn() *txn.Engine { return n.txn }

// WorklistStats tallies active-router worklist effectiveness: how many
// per-router compute and deliver entries each Step ran versus skipped.
type WorklistStats struct {
	ComputeTicked  uint64
	ComputeSkipped uint64
	DeliverTicked  uint64
	DeliverSkipped uint64
}

// WorklistStats sums the per-shard worklist tallies accumulated since
// construction. Purely diagnostic — the counts do not feed results.
func (n *Network) WorklistStats() WorklistStats {
	var s WorklistStats
	for i := range n.wlStats {
		s.ComputeTicked += n.wlStats[i].ComputeTicked
		s.ComputeSkipped += n.wlStats[i].ComputeSkipped
		s.DeliverTicked += n.wlStats[i].DeliverTicked
		s.DeliverSkipped += n.wlStats[i].DeliverSkipped
	}
	return s
}

// ArenaOverflow returns the number of hot-state elements the
// struct-of-arrays arena served outside its backing arrays; nonzero
// means router.NewArena's sizing formula undershot (locality lost,
// correctness unaffected). TestArenaSizingExact pins it at zero.
func (n *Network) ArenaOverflow() int { return n.arena.Overflow() }

// RouteTableBytes returns the memory footprint of the network's
// route-memoization tables (DESIGN.md §17): the price paid at
// construction for an RC stage that is a flat array load. Grows as
// nodes² — the kernel benchmark's big-mesh cells record it.
func (n *Network) RouteTableBytes() int { return n.arena.Tables().Bytes() }
