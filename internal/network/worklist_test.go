package network

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/trace"
)

// The active-router worklist tests (DESIGN.md §14): a drained network
// must step in near-zero time touching no router, and every event
// that can make a sleeping router relevant again — scheduled
// injection, credit return, a compiled fault plan — must keep or put
// it back on the worklist. All run the serial kernel: worklist
// bookkeeping is identical at every worker count (the determinism
// wall pins that), and Workers=1 keeps alloc accounting exact.

// drain steps until the network is empty and asserts nothing was left
// behind.
func drainOrFatal(t *testing.T, n *Network, budget int64) {
	t.Helper()
	if left := n.Drain(budget); left != 0 {
		t.Fatalf("%d packets undelivered after %d cycles", left, budget)
	}
}

// TestWorklistDrainedQuiescent pins the tentpole claim: once traffic
// has drained, Step touches no router at all — every compute and
// deliver entry is skipped — and allocates nothing.
func TestWorklistDrainedQuiescent(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR, config.DAMQ, config.FCCB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := smokeCfg(arch)
			cfg.InjectionRate = 0
			cfg.Workers = 1
			n := New(&cfg)
			n.InjectPacket(0, 15)
			n.InjectPacket(15, 0)
			drainOrFatal(t, n, 10_000)

			before := n.WorklistStats()
			const window = 200
			for i := 0; i < window; i++ {
				n.Step()
			}
			after := n.WorklistStats()
			if d := after.ComputeTicked - before.ComputeTicked; d != 0 {
				t.Errorf("drained network ran %d compute entries over %d cycles, want 0", d, window)
			}
			if d := after.DeliverTicked - before.DeliverTicked; d != 0 {
				t.Errorf("drained network ran %d deliver entries over %d cycles, want 0", d, window)
			}
			if allocs := testing.AllocsPerRun(100, func() { n.Step() }); allocs != 0 {
				t.Errorf("drained Step allocates %.1f times per cycle, want 0", allocs)
			}
		})
	}
}

// TestWorklistWakeOnScheduledInjection puts the whole network to
// sleep, schedules a packet for a future cycle, and checks the source
// wakes exactly then, the packet delivers, and everything re-sleeps.
func TestWorklistWakeOnScheduledInjection(t *testing.T) {
	cfg := smokeCfg(config.ViChaR)
	cfg.InjectionRate = 0
	cfg.Workers = 1
	n := New(&cfg)
	n.InjectPacket(0, 5)
	drainOrFatal(t, n, 10_000)

	const wakeAt = 120
	start := n.Now()
	if err := n.ScheduleTrace([]trace.Entry{{Cycle: start + wakeAt, Src: 2, Dst: 13, Size: cfg.PacketSize}}); err != nil {
		t.Fatal(err)
	}
	asleep := n.WorklistStats()
	for n.Now() < start+wakeAt-1 {
		n.Step()
	}
	if d := n.WorklistStats().ComputeTicked - asleep.ComputeTicked; d != 0 {
		t.Fatalf("network ran %d compute entries while waiting on a scheduled injection, want 0", d)
	}
	created := n.CreatedPackets()
	drainOrFatal(t, n, 10_000)
	if n.CreatedPackets() != created+1 {
		t.Fatalf("scheduled packet not created: %d -> %d", created, n.CreatedPackets())
	}
	if d := n.WorklistStats().ComputeTicked - asleep.ComputeTicked; d == 0 {
		t.Fatal("scheduled injection woke no router")
	}
	// And back to sleep: the wake is edge-triggered, not sticky.
	settled := n.WorklistStats()
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if d := n.WorklistStats().ComputeTicked - settled.ComputeTicked; d != 0 {
		t.Fatalf("network still running %d compute entries after re-draining, want 0", d)
	}
}

// TestWorklistWakeOnCreditReturn exercises the reverse-channel wake:
// a multi-flit packet's tail credit must reach the upstream router
// after the payload has moved on, and the worklist must wake the
// upstream router to process it — otherwise the run would either
// deadlock or leak credits, both of which the per-cycle audit
// catches. The audit also cross-checks the readiness overlay masks.
func TestWorklistWakeOnCreditReturn(t *testing.T) {
	cfg := smokeCfg(config.ViChaR)
	cfg.InjectionRate = 0
	cfg.Workers = 1
	cfg.Audit = true
	n := New(&cfg)
	// Corner-to-corner both ways: every hop's credit channel sees
	// traffic, and the final tail credits arrive at routers whose
	// forward path has already gone quiet.
	n.InjectPacket(0, 15)
	n.InjectPacket(15, 0)
	drainOrFatal(t, n, 10_000)
	settled := n.WorklistStats()
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if d := n.WorklistStats().ComputeTicked - settled.ComputeTicked; d != 0 {
		t.Fatalf("network still running %d compute entries after credits drained, want 0", d)
	}
}

// TestWorklistFaultPlanNeverSleeps pins the conservative fault-model
// contract: fault schedules mutate per-cycle state regardless of
// traffic (stall windows expire, kill events arm), so a network with
// a compiled fault plan keeps every router on the worklist.
func TestWorklistFaultPlanNeverSleeps(t *testing.T) {
	cfg := smokeCfg(config.ViChaR)
	cfg.InjectionRate = 0
	cfg.Workers = 1
	cfg.Routing = config.MinimalAdaptive // kill-link faults need a way around the dead link
	cfg.Faults = config.FaultsConfig{Events: []config.FaultEvent{
		{Cycle: 40, Kind: config.StallPort, Node: 5, Port: 0, Cycles: 10},
		{Cycle: 60, Kind: config.KillLink, Node: 9, Port: 1},
	}}
	n := New(&cfg)
	n.InjectPacket(0, 15)
	drainOrFatal(t, n, 10_000)

	before := n.WorklistStats()
	const window = 100
	for i := 0; i < window; i++ {
		n.Step()
	}
	after := n.WorklistStats()
	if after.ComputeSkipped != before.ComputeSkipped {
		t.Fatalf("faulted network skipped %d compute entries, want 0: fault plans must keep routers awake",
			after.ComputeSkipped-before.ComputeSkipped)
	}
	if got, want := after.ComputeTicked-before.ComputeTicked, uint64(window*n.Mesh().Nodes()); got != want {
		t.Fatalf("faulted network ran %d compute entries over %d cycles, want %d", got, window, want)
	}
}

// TestWorklistTorusWraparound routes a packet across a wraparound
// link (0 -> 3 on a 4-wide ring takes the West wrap: distance 1
// against 3 through the row) and checks the border router on the far
// side wakes, delivers, and the network re-sleeps — wrap links carry
// the same worklist wiring as interior ones.
func TestWorklistTorusWraparound(t *testing.T) {
	cfg := smokeCfg(config.ViChaR)
	cfg.InjectionRate = 0
	cfg.Workers = 1
	cfg.Torus = true
	n := New(&cfg)
	n.InjectPacket(0, 15)
	drainOrFatal(t, n, 10_000)
	asleep := n.WorklistStats()

	n.InjectPacket(0, 3)
	drainOrFatal(t, n, 10_000)
	if d := n.WorklistStats().ComputeTicked - asleep.ComputeTicked; d == 0 {
		t.Fatal("wraparound delivery woke no router")
	}
	settled := n.WorklistStats()
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if d := n.WorklistStats().ComputeTicked - settled.ComputeTicked; d != 0 {
		t.Fatalf("torus network still running %d compute entries after drain, want 0", d)
	}
}

// TestArenaSizingExact pins router.NewArena's closed-form capacity
// formula: every hot-state take across every architecture — torus
// wrap views and escape-VC dispenser bitmaps included — must land
// inside the arena's backing arrays, or construction-order locality
// silently degrades.
func TestArenaSizingExact(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR, config.DAMQ, config.FCCB} {
		for _, torus := range []bool{false, true} {
			arch, torus := arch, torus
			name := arch.String()
			if torus {
				name += "/torus"
			}
			t.Run(name, func(t *testing.T) {
				cfg := smokeCfg(arch)
				cfg.Torus = torus
				cfg.Workers = 1
				cfg.InjectionRate = 0
				n := New(&cfg)
				n.InjectPacket(0, 15)
				drainOrFatal(t, n, 10_000)
				if ov := n.ArenaOverflow(); ov != 0 {
					t.Fatalf("%s: %d hot-state elements allocated outside the arena, want 0", name, ov)
				}
			})
		}
	}
}
