package network

import (
	"testing"
	"testing/quick"

	"vichar/internal/config"
	"vichar/internal/topology"
)

// Zero-load latency must match the pipeline model analytically:
// each of the H+1 routers on an H-hop path costs 4 cycles (RC, VA,
// SA, ST+link folded), the injection link 1 cycle, and the tail
// trails the head by size-1 cycles of serialization. This pins the
// cycle accounting of the whole simulator against a closed form.
func TestZeroLoadLatencyModel(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 6, 5
			cfg.Arch = arch
			cfg.InjectionRate = 0
			cfg.WarmupPackets = 0
			cfg.MeasurePackets = 1
			cfg.DAMQDelay = 0 // isolate the pipeline from DAMQ's penalty
			mesh := topology.New(cfg.Width, cfg.Height)

			prop := func(a, b uint8) bool {
				src := int(a) % mesh.Nodes()
				dst := int(b) % mesh.Nodes()
				if src == dst {
					return true
				}
				n := New(&cfg)
				p := n.InjectPacket(src, dst)
				if left := n.Drain(10_000); left != 0 {
					t.Logf("undelivered %d->%d", src, dst)
					return false
				}
				hops := mesh.Hops(src, dst)
				want := int64(4*(hops+1) + cfg.PacketSize - 1 + 1)
				got := p.Latency()
				if got < want-2 || got > want+2 {
					t.Logf("%d->%d (H=%d): latency %d, model %d", src, dst, hops, got, want)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// The speculative pipeline's zero-load model: 3 cycles per router.
func TestZeroLoadLatencyModelSpeculative(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 6, 5
	cfg.Arch = config.ViChaR
	cfg.Speculative = true
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	mesh := topology.New(cfg.Width, cfg.Height)

	for _, pair := range [][2]int{{0, 29}, {5, 24}, {7, 22}, {0, 1}} {
		n := New(&cfg)
		p := n.InjectPacket(pair[0], pair[1])
		if left := n.Drain(10_000); left != 0 {
			t.Fatalf("undelivered %v", pair)
		}
		hops := mesh.Hops(pair[0], pair[1])
		want := int64(3*(hops+1) + cfg.PacketSize - 1 + 1)
		got := p.Latency()
		if got < want-2 || got > want+2 {
			t.Fatalf("%v (H=%d): speculative latency %d, model %d", pair, hops, got, want)
		}
	}
}

// DAMQ's bookkeeping penalty appears directly in zero-load latency:
// roughly +delay cycles per traversed router.
func TestZeroLoadDAMQPenalty(t *testing.T) {
	lat := func(delay int) int64 {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = config.DAMQ
		cfg.DAMQDelay = delay
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 0
		cfg.MeasurePackets = 1
		n := New(&cfg)
		p := n.InjectPacket(0, 15)
		if left := n.Drain(10_000); left != 0 {
			t.Fatal("undelivered")
		}
		return p.Latency()
	}
	l0, l3 := lat(0), lat(3)
	// 7 routers on the 6-hop path; the arrival-side penalty is
	// delay-1 extra cycles per router versus the 1-cycle buffer
	// write, and the read-port busy window costs more for the tail.
	extra := l3 - l0
	if extra < 7 || extra > 40 {
		t.Fatalf("3-cycle DAMQ penalty added %d cycles over %d routers", extra, 7)
	}
}
