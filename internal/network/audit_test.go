package network

import (
	"testing"

	"vichar/internal/config"
)

// TestAuditCleanRun exercises the per-cycle invariant auditor
// (internal/audit) against every buffer architecture under stochastic
// load: with Config.Audit set, every step verifies credit
// conservation on every link and, for ViChaR, the VC Control Table ↔
// Slot Availability Tracker cross-check. A violation panics, so a
// completed run is a zero-violation certificate.
func TestAuditCleanRun(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.InjectionRate = 0.3
			cfg.WarmupPackets = 100
			cfg.MeasurePackets = 400
			cfg.Seed = 77
			cfg.Audit = true
			n := New(&cfg)
			res := n.Run()
			if res.MeasuredPackets == 0 {
				t.Fatal("audited run measured nothing")
			}
		})
	}
}

// TestAuditAdaptiveEscape runs the auditor over the adaptive-routing
// configuration, whose escape-channel re-allocation stresses the
// Token Dispenser paths the XY runs never reach.
func TestAuditAdaptiveEscape(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.Routing = config.MinimalAdaptive
	cfg.InjectionRate = 0.35
	cfg.WarmupPackets = 100
	cfg.MeasurePackets = 300
	cfg.Seed = 78
	cfg.Audit = true
	n := New(&cfg)
	if res := n.Run(); res.MeasuredPackets == 0 {
		t.Fatal("audited adaptive run measured nothing")
	}
}
