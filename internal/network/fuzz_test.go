package network

import (
	"errors"
	"testing"
	"testing/quick"

	"vichar/internal/audit"
	"vichar/internal/buffers"
	"vichar/internal/config"
	"vichar/internal/core"
	"vichar/internal/flit"
)

// Config-space fuzz: random combinations of architecture, topology,
// routing, pipeline, packet sizing and traffic must always (a) build,
// (b) deliver every packet, and (c) conserve buffers and credits
// after a drain. This is the broadest invariant sweep in the suite —
// any flow-control hole in a feature interaction shows up here as a
// wedge or a panic.
func TestConfigFuzz(t *testing.T) {
	prop := func(bits uint32, seed int64) bool {
		cfg := config.Default()
		cfg.Width = 3 + int(bits%3)       // 3..5
		cfg.Height = 3 + int((bits>>2)%2) // 3..4
		cfg.Arch = config.BufferArch(int(bits>>4) % 4)
		cfg.Torus = bits>>6&1 == 1
		cfg.Speculative = bits>>7&1 == 1
		cfg.AtomicVCAlloc = bits>>8&1 == 1
		if bits>>9&1 == 1 {
			cfg.Routing = config.MinimalAdaptive
		}
		cfg.PacketSize = 1 + int((bits>>10)%4) // 1..4
		if bits>>12&1 == 1 {
			cfg.PacketSizeMax = cfg.PacketSize + int((bits>>13)%4)
		}
		if cfg.Arch == config.Generic {
			cfg.VCs, cfg.VCDepth = 4, 2+int((bits>>15)%3) // depth 2..4
			cfg.BufferSlots = cfg.VCs * cfg.VCDepth
		} else {
			cfg.BufferSlots = 6 + int((bits>>15)%10) // 6..15
			cfg.VCs = 4
		}
		if cfg.Arch == config.ViChaR && bits>>19&1 == 1 {
			cfg.VCLimit = 3 + int((bits>>20)%4)
		}
		cfg.EscapeVCs = 1
		cfg.DeadlockThreshold = 24
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 0
		cfg.MeasurePackets = 1
		cfg.Seed = seed

		if err := cfg.Validate(); err != nil {
			// Some random corners are legitimately invalid (e.g. a
			// capped ViChaR whose escape set eats every VC); skip.
			return true
		}

		n := New(&cfg)
		// Burst-inject a modest workload.
		nodes := cfg.Nodes()
		for i := 0; i < 5*nodes; i++ {
			src := i % nodes
			dst := (i*7 + 3) % nodes
			if src == dst {
				continue
			}
			n.InjectPacket(src, dst)
			if i%3 == 0 {
				n.Step()
			}
		}
		if left := n.Drain(150_000); left != 0 {
			t.Logf("cfg %+v: %d packets stuck", cfg, left)
			return false
		}
		for i := 0; i < 10; i++ {
			n.Step()
		}
		for id := 0; id < nodes; id++ {
			if n.Router(id).Occupied() != 0 {
				t.Logf("cfg %+v: router %d holds flits after drain", cfg, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzUBSAudit drives a random but protocol-legal write/read/drain
// sequence against a Unified Buffer Structure and cross-checks the
// invariant auditor after every operation: table/tracker coherence,
// slot-leak freedom, one-packet-per-VC and per-VC FIFO order must
// hold at every intermediate state, and the buffer's occupancy must
// match the driver's own flit accounting.
//
// Input encoding: byte 0 sizes the pool (1..16 slots); each further
// byte is one operation — the top two bits select write / pop /
// advance-clock / drain-readable, the low bits pick the VC and, for
// writes that open a packet, its size.
func FuzzUBSAudit(f *testing.F) {
	f.Add([]byte{0x07, 0x00, 0x04, 0x81, 0x00, 0x41, 0xc0, 0x82})
	f.Add([]byte{0x0f, 0x00, 0x00, 0x00, 0x80, 0x40, 0x40, 0x40, 0xc1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		slots := 1 + int(ops[0])%16
		b := core.NewUBS(slots)
		vcs := b.MaxVCs()
		// Per-VC driver state: the packet currently streaming through
		// the VC, their write and read progress.
		type vcDriver struct {
			flits  []*flit.Flit
			next   int // flits written so far
			popped int // flits popped so far (== next seq expected out)
		}
		st := make([]vcDriver, vcs)
		resident := 0
		now := int64(1)
		var nextID uint64

		pop := func(vc int) {
			fr := b.Front(vc, now)
			if fr == nil {
				return
			}
			got, err := b.Pop(vc, now)
			if err != nil {
				t.Fatalf("pop vc %d with readable front: %v", vc, err)
			}
			s := &st[vc]
			if got.Seq != s.popped {
				t.Fatalf("vc %d popped seq %d, want %d", vc, got.Seq, s.popped)
			}
			s.popped++
			resident--
		}

		for _, op := range ops[1:] {
			vc := int(op&0x3f) % vcs
			switch op >> 6 {
			case 0: // write the VC's next flit, opening a packet if needed
				s := &st[vc]
				if s.next == len(s.flits) {
					if b.Len(vc) != 0 {
						// The finished packet still has flits resident:
						// starting another would break one-packet-per-VC.
						continue
					}
					nextID++
					p := &flit.Packet{ID: nextID, Size: 1 + int(op>>2)%4}
					s.flits = flit.MakeFlits(p)
					s.next, s.popped = 0, 0
				}
				fl := s.flits[s.next]
				fl.VC = vc
				if err := b.Write(fl, now); err != nil {
					if !errors.Is(err, buffers.ErrFull) {
						t.Fatalf("write vc %d: %v", vc, err)
					}
					// Pool exhausted: a legal stall; retry later.
					continue
				}
				s.next++
				resident++
			case 1:
				pop(vc)
			case 2:
				now++
			case 3: // drain everything readable this cycle
				for v := 0; v < vcs; v++ {
					for b.Front(v, now) != nil {
						pop(v)
					}
				}
			}
			if err := audit.CheckUBS(b); err != nil {
				t.Fatalf("after op %#02x: %v", op, err)
			}
			if b.Occupied() != resident {
				t.Fatalf("occupancy %d, driver accounts %d", b.Occupied(), resident)
			}
		}
	})
}
