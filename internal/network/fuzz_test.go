package network

import (
	"testing"
	"testing/quick"

	"vichar/internal/config"
)

// Config-space fuzz: random combinations of architecture, topology,
// routing, pipeline, packet sizing and traffic must always (a) build,
// (b) deliver every packet, and (c) conserve buffers and credits
// after a drain. This is the broadest invariant sweep in the suite —
// any flow-control hole in a feature interaction shows up here as a
// wedge or a panic.
func TestConfigFuzz(t *testing.T) {
	prop := func(bits uint32, seed int64) bool {
		cfg := config.Default()
		cfg.Width = 3 + int(bits%3)       // 3..5
		cfg.Height = 3 + int((bits>>2)%2) // 3..4
		cfg.Arch = config.BufferArch(int(bits>>4) % 4)
		cfg.Torus = bits>>6&1 == 1
		cfg.Speculative = bits>>7&1 == 1
		cfg.AtomicVCAlloc = bits>>8&1 == 1
		if bits>>9&1 == 1 {
			cfg.Routing = config.MinimalAdaptive
		}
		cfg.PacketSize = 1 + int((bits>>10)%4) // 1..4
		if bits>>12&1 == 1 {
			cfg.PacketSizeMax = cfg.PacketSize + int((bits>>13)%4)
		}
		if cfg.Arch == config.Generic {
			cfg.VCs, cfg.VCDepth = 4, 2+int((bits>>15)%3) // depth 2..4
			cfg.BufferSlots = cfg.VCs * cfg.VCDepth
		} else {
			cfg.BufferSlots = 6 + int((bits>>15)%10) // 6..15
			cfg.VCs = 4
		}
		if cfg.Arch == config.ViChaR && bits>>19&1 == 1 {
			cfg.VCLimit = 3 + int((bits>>20)%4)
		}
		cfg.EscapeVCs = 1
		cfg.DeadlockThreshold = 24
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 0
		cfg.MeasurePackets = 1
		cfg.Seed = seed

		if err := cfg.Validate(); err != nil {
			// Some random corners are legitimately invalid (e.g. a
			// capped ViChaR whose escape set eats every VC); skip.
			return true
		}

		n := New(&cfg)
		// Burst-inject a modest workload.
		nodes := cfg.Nodes()
		for i := 0; i < 5*nodes; i++ {
			src := i % nodes
			dst := (i*7 + 3) % nodes
			if src == dst {
				continue
			}
			n.InjectPacket(src, dst)
			if i%3 == 0 {
				n.Step()
			}
		}
		if left := n.Drain(150_000); left != 0 {
			t.Logf("cfg %+v: %d packets stuck", cfg, left)
			return false
		}
		for i := 0; i < 10; i++ {
			n.Step()
		}
		for id := 0; id < nodes; id++ {
			if n.Router(id).Occupied() != 0 {
				t.Logf("cfg %+v: router %d holds flits after drain", cfg, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
