package network

import (
	"reflect"
	"runtime"
	"testing"

	"vichar/internal/config"
	"vichar/internal/metrics"
	"vichar/internal/stats"
)

// TestDeterministicCountersAndLatencies is the determinism contract's
// strongest regression test: two runs with the same seed must agree
// not just on the summary averages (TestDeterministicReplay) but on
// the complete activity counters and on every individual packet
// latency in ejection order. Any map-iteration or ambient-entropy
// dependence anywhere in the pipeline — the bug class vichar-lint
// exists to keep out — shows up here as a flipped arbitration
// somewhere in hundreds of thousands of decisions.
func TestDeterministicCountersAndLatencies(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.InjectionRate = 0.3
			cfg.WarmupPackets = 50
			cfg.MeasurePackets = 300
			cfg.Seed = 4242

			run := func() (stats.Counters, []int64) {
				c := cfg
				n := New(&c)
				res := n.Run()
				return res.Counters, n.Collector().Latencies()
			}
			c1, l1 := run()
			c2, l2 := run()
			if !reflect.DeepEqual(c1, c2) {
				t.Fatalf("same-seed runs diverged in counters:\n%+v\n%+v", c1, c2)
			}
			if len(l1) != len(l2) {
				t.Fatalf("same-seed runs measured %d vs %d packets", len(l1), len(l2))
			}
			for i := range l1 {
				if l1[i] != l2[i] {
					t.Fatalf("same-seed runs diverged at packet %d: latency %d vs %d", i, l1[i], l2[i])
				}
			}
		})
	}
}

// TestWorkersBitIdentical is the parallel kernel's contract test: a
// same-seed run must produce bit-identical Results — every counter and
// every per-packet latency in ejection order — whether the two-phase
// kernel steps serially (Workers=1) or shards cycles across a worker
// pool (Workers=GOMAXPROCS, floored at 4 so the parallel path is
// exercised even on small CI hosts). The per-cycle invariant auditor
// runs throughout, so a sharding bug that corrupts flow-control state
// without flipping an arbitration is caught too.
//
// The run has the full observability layer on: the metrics registry
// (merged serially in recorder index order) and the flit-event tracer
// (drained in the same order, assigning global sequence numbers) must
// also be bit-identical across worker counts — the contract
// internal/metrics is designed around.
func TestWorkersBitIdentical(t *testing.T) {
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	modes := []struct {
		suffix string
		faulty bool
		txn    bool
	}{
		{"", false, false},
		{"-faults", true, false},
		// NIU transaction layer on top of faulty links: the serial
		// engine tick, ejection-side admission gates and per-class NI
		// streams must shard as cleanly as the rest.
		{"-txn", true, true},
	}
	for _, arch := range allArchs {
		for _, mode := range modes {
			arch, faulty, txnOn := arch, mode.faulty, mode.txn
			name := arch.String() + mode.suffix
			t.Run(name, func(t *testing.T) {
				run := func(workers int) (stats.Results, []int64, metrics.Snapshot, []metrics.Event) {
					cfg := config.Default()
					cfg.Width, cfg.Height = 4, 4
					cfg.Arch = arch
					cfg.InjectionRate = 0.3
					cfg.WarmupPackets = 50
					cfg.MeasurePackets = 300
					cfg.Seed = 4242
					cfg.Audit = true
					cfg.Workers = workers
					cfg.Metrics = true
					cfg.TraceEvents = 4096
					if faulty {
						// Transient faults and stalls on every link class,
						// plus scheduled events: the fault layer's state
						// (retransmission buffers, stall windows, hash
						// rolls) must shard as cleanly as the rest.
						cfg.Faults = config.FaultsConfig{
							Seed:        99,
							DropRate:    0.002,
							CorruptRate: 0.001,
							StallRate:   0.0005,
							Events: []config.FaultEvent{
								{Cycle: 40, Kind: config.DropFlit, Node: 5, Port: 1},
								{Cycle: 60, Kind: config.StallPort, Node: 10, Port: 0, Cycles: 9},
							},
						}
					}
					if txnOn {
						cfg.Txn = config.TxnConfig{
							Enabled:    true,
							Rate:       0.05,
							ReadFrac:   0.7,
							WriteFrac:  0.25,
							AtomicFrac: 0.05,
							PostedFrac: 0.5,
							MemEdge:    true,
						}
					}
					n := New(&cfg)
					defer n.Close()
					res := n.Run()
					return res, n.Collector().Latencies(), n.Metrics().Snapshot(), n.FlitTracer().Events()
				}
				r1, l1, s1, e1 := run(1)
				rN, lN, sN, eN := run(parallel)
				if !reflect.DeepEqual(r1, rN) {
					t.Fatalf("Workers=1 vs Workers=%d diverged in results:\n%+v\n%+v", parallel, r1, rN)
				}
				if len(l1) != len(lN) {
					t.Fatalf("Workers=1 vs Workers=%d measured %d vs %d packets", parallel, len(l1), len(lN))
				}
				for i := range l1 {
					if l1[i] != lN[i] {
						t.Fatalf("Workers=1 vs Workers=%d diverged at packet %d: latency %d vs %d", parallel, i, l1[i], lN[i])
					}
				}
				if !reflect.DeepEqual(s1, sN) {
					t.Fatalf("Workers=1 vs Workers=%d diverged in metrics registry state", parallel)
				}
				if !reflect.DeepEqual(e1, eN) {
					t.Fatalf("Workers=1 vs Workers=%d diverged in the flit event stream (%d vs %d events)", parallel, len(e1), len(eN))
				}
				if faulty && r1.Counters.FlitDrops+r1.Counters.FlitCorrupts == 0 {
					t.Fatal("faulty run recorded no drops or corruptions: fault rates not applied")
				}
			})
		}
	}
}

// TestWorkersClampAndClose exercises the shard-count clamp (a worker
// count beyond the node count degrades to one shard per router) and
// verifies Close is idempotent and leaves the network usable: a
// closed kernel lazily restarts its pool on the next parallel step.
func TestWorkersClampAndClose(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 2, 2
	cfg.InjectionRate = 0.2
	cfg.WarmupPackets = 5
	cfg.MeasurePackets = 20
	cfg.Workers = 64 // far beyond 4 nodes: must clamp, not crash
	n := New(&cfg)
	if n.shardCount != 4 {
		t.Fatalf("shardCount = %d, want clamp to 4 nodes", n.shardCount)
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	n.Close()
	n.Close() // idempotent
	for i := 0; i < 10; i++ {
		n.Step() // pool restarts lazily
	}
	n.Close()
}
