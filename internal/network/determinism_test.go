package network

import (
	"reflect"
	"testing"

	"vichar/internal/config"
	"vichar/internal/stats"
)

// TestDeterministicCountersAndLatencies is the determinism contract's
// strongest regression test: two runs with the same seed must agree
// not just on the summary averages (TestDeterministicReplay) but on
// the complete activity counters and on every individual packet
// latency in ejection order. Any map-iteration or ambient-entropy
// dependence anywhere in the pipeline — the bug class vichar-lint
// exists to keep out — shows up here as a flipped arbitration
// somewhere in hundreds of thousands of decisions.
func TestDeterministicCountersAndLatencies(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.InjectionRate = 0.3
			cfg.WarmupPackets = 50
			cfg.MeasurePackets = 300
			cfg.Seed = 4242

			run := func() (stats.Counters, []int64) {
				c := cfg
				n := New(&c)
				res := n.Run()
				return res.Counters, n.Collector().Latencies()
			}
			c1, l1 := run()
			c2, l2 := run()
			if !reflect.DeepEqual(c1, c2) {
				t.Fatalf("same-seed runs diverged in counters:\n%+v\n%+v", c1, c2)
			}
			if len(l1) != len(l2) {
				t.Fatalf("same-seed runs measured %d vs %d packets", len(l1), len(l2))
			}
			for i := range l1 {
				if l1[i] != l2[i] {
					t.Fatalf("same-seed runs diverged at packet %d: latency %d vs %d", i, l1[i], l2[i])
				}
			}
		})
	}
}
