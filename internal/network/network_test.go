package network

import (
	"math/rand"
	"testing"

	"vichar/internal/config"
	"vichar/internal/topology"
)

func testCfg(arch config.BufferArch) config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = arch
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	cfg.Seed = 11
	return cfg
}

var allArchs = []config.BufferArch{config.Generic, config.ViChaR, config.DAMQ, config.FCCB}

// Every packet injected must be delivered, for every architecture,
// under a random many-packet workload.
func TestAllPacketsDelivered(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := testCfg(arch)
			n := New(&cfg)
			rng := rand.New(rand.NewSource(5))
			var pkts []*struct {
				src, dst int
				id       uint64
			}
			for i := 0; i < 400; i++ {
				// Spread injections over time to vary interleaving.
				for c := 0; c < rng.Intn(3); c++ {
					n.Step()
				}
				src := rng.Intn(16)
				dst := rng.Intn(15)
				if dst >= src {
					dst++
				}
				p := n.InjectPacket(src, dst)
				pkts = append(pkts, &struct {
					src, dst int
					id       uint64
				}{src, dst, p.ID})
			}
			if left := n.Drain(100_000); left != 0 {
				t.Fatalf("%d packets never delivered", left)
			}
		})
	}
}

// The same seed must reproduce identical results bit-for-bit.
func TestDeterministicReplay(t *testing.T) {
	for _, arch := range allArchs {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.InjectionRate = 0.25
		cfg.WarmupPackets = 300
		cfg.MeasurePackets = 1000
		cfg.Seed = 1234

		run := func() (float64, float64, int64) {
			n := New(&cfg)
			r := n.Run()
			return r.AvgLatency, r.Throughput, r.TotalCycles
		}
		l1, t1, c1 := run()
		l2, t2, c2 := run()
		if l1 != l2 || t1 != t2 || c1 != c2 {
			t.Fatalf("%v: replay diverged: (%.4f,%.4f,%d) vs (%.4f,%.4f,%d)",
				arch, l1, t1, c1, l2, t2, c2)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	cfg.WarmupPackets = 300
	cfg.MeasurePackets = 1000

	lat := func(seed int64) float64 {
		c := cfg
		c.Seed = seed
		n := New(&c)
		return n.Run().AvgLatency
	}
	if lat(1) == lat(2) {
		t.Fatal("different seeds produced identical latency (suspicious)")
	}
}

// After a full drain, every buffer is empty and every credit has
// returned: flit and credit conservation end to end.
func TestCreditConservationAfterDrain(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := testCfg(arch)
			n := New(&cfg)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 300; i++ {
				src := rng.Intn(16)
				dst := rng.Intn(15)
				if dst >= src {
					dst++
				}
				n.InjectPacket(src, dst)
				if i%5 == 0 {
					n.Step()
				}
			}
			if left := n.Drain(100_000); left != 0 {
				t.Fatalf("%d packets stuck", left)
			}
			// A few extra cycles so trailing credits land.
			for i := 0; i < 10; i++ {
				n.Step()
			}
			for id := 0; id < 16; id++ {
				r := n.Router(id)
				if r.Occupied() != 0 {
					t.Fatalf("router %d still buffers %d flits", id, r.Occupied())
				}
				for p := 0; p < 5; p++ {
					view := r.OutputView(p)
					if p != topology.Local && view != nil {
						if view.FreeSlots() != freeSlotsWhenIdle(&cfg) {
							t.Fatalf("router %d port %d: %d free slots, want %d",
								id, p, view.FreeSlots(), freeSlotsWhenIdle(&cfg))
						}
						if view.OutstandingVCs() != 0 {
							t.Fatalf("router %d port %d: %d outstanding VCs after drain",
								id, p, view.OutstandingVCs())
						}
					}
				}
			}
		})
	}
}

// freeSlotsWhenIdle returns the shared-pool credit a fully drained
// view must show: everything for generic (summed private credits) and
// ViChaR (all reservations returned with their tokens), the pool
// minus the permanent per-queue reservations for DAMQ/FC-CB.
func freeSlotsWhenIdle(cfg *config.Config) int {
	if cfg.Arch == config.DAMQ || cfg.Arch == config.FCCB {
		return cfg.BufferSlots - cfg.VCs
	}
	return cfg.BufferSlots
}

// Per-packet flit order: the tail must never be ejected before
// SeqNo-later packets' creation violates nothing — verified stronger
// at the buffer level; here we check tail-only ejection accounting
// matched packet count (done via Drain) and latency sanity per hop.
func TestLatencyLowerBound(t *testing.T) {
	cfg := testCfg(config.ViChaR)
	n := New(&cfg)
	p := n.InjectPacket(0, 15) // corner to corner: 6 hops
	if left := n.Drain(10_000); left != 0 {
		t.Fatal("undelivered")
	}
	// Minimum: each of 6 hops costs at least 1 cycle of link plus
	// pipeline; 4-flit serialization adds 3. Anything under ~10 would
	// mean the pipeline is being skipped.
	if p.Latency() < 10 {
		t.Fatalf("latency %d below physical floor", p.Latency())
	}
}

func TestSaturationCapStopsRun(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.9 // far beyond saturation
	cfg.WarmupPackets = 1000
	cfg.MeasurePackets = 100_000 // unreachable quota
	cfg.MaxCycles = 3_000
	n := New(&cfg)
	res := n.Run()
	if !res.Saturated {
		t.Fatal("cap hit but not flagged saturated")
	}
	if res.TotalCycles > cfg.MaxCycles+1 {
		t.Fatalf("ran %d cycles past the cap", res.TotalCycles)
	}
}

func TestTornadoAndSelfSimilarComplete(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR} {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.Traffic = config.SelfSimilar
		cfg.Dest = config.Tornado
		cfg.InjectionRate = 0.15
		cfg.WarmupPackets = 200
		cfg.MeasurePackets = 800
		cfg.Seed = 3
		n := New(&cfg)
		res := n.Run()
		if res.Saturated {
			t.Fatalf("%v: SS+TN run saturated at 0.15", arch)
		}
		if res.AvgLatency <= 0 {
			t.Fatalf("%v: no latency recorded", arch)
		}
	}
}

// Adaptive routing with escape VCs must complete under heavy
// contention for every architecture (the deadlock-recovery test).
func TestAdaptiveNoWedge(t *testing.T) {
	for _, arch := range allArchs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Arch = arch
			cfg.Routing = config.MinimalAdaptive
			cfg.EscapeVCs = 1
			cfg.DeadlockThreshold = 32
			cfg.InjectionRate = 0
			cfg.WarmupPackets = 0
			cfg.MeasurePackets = 1
			cfg.Seed = 13
			n := New(&cfg)
			// All-to-all bursts maximize cyclic contention.
			rng := rand.New(rand.NewSource(17))
			for burst := 0; burst < 8; burst++ {
				for src := 0; src < 16; src++ {
					dst := rng.Intn(15)
					if dst >= src {
						dst++
					}
					n.InjectPacket(src, dst)
				}
				n.Step()
			}
			if left := n.Drain(200_000); left != 0 {
				t.Fatalf("%v: %d packets wedged under adaptive routing", arch, left)
			}
		})
	}
}

// The ejection assertion must catch mis-delivered flits; simulate by
// checking the panic path indirectly: a normal run must never panic.
func TestNoPanicsUnderLoad(t *testing.T) {
	for _, arch := range allArchs {
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Arch = arch
		cfg.InjectionRate = 0.45 // at/over saturation: worst case
		cfg.WarmupPackets = 200
		cfg.MeasurePackets = 800
		cfg.MaxCycles = 30_000
		cfg.Seed = 23
		n := New(&cfg)
		_ = n.Run() // success == no panic from flow-control violations
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cfg := config.Default()
	cfg.Width = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(&cfg)
}

func TestVCLimitRuns(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.VCLimit = 4
	cfg.InjectionRate = 0.2
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 500
	n := New(&cfg)
	res := n.Run()
	if res.Saturated || res.MeasuredPackets != 500 {
		t.Fatalf("capped ViChaR run failed: %+v", res)
	}
	// The in-use VC count can never exceed the cap.
	if res.AvgInUseVCs > 4 {
		t.Fatalf("in-use VCs %.2f above the cap", res.AvgInUseVCs)
	}
}

func TestCountersAccumulate(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.2
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 800
	n := New(&cfg)
	res := n.Run()
	c := res.Counters
	if c.BufferWrites == 0 || c.BufferReads == 0 || c.XbarTraversals == 0 ||
		c.LinkTraversals == 0 || c.VAOps == 0 || c.SAOps == 0 || c.VCGrants == 0 {
		t.Fatalf("counters incomplete: %+v", c)
	}
	// Reads cannot exceed writes globally (every read had a write).
	if c.BufferReads > c.BufferWrites+uint64(cfg.Nodes()*cfg.Ports()*cfg.BufferSlots) {
		t.Fatalf("reads %d outstrip writes %d", c.BufferReads, c.BufferWrites)
	}
}

// Non-atomic generic allocation lets packets queue back-to-back in a
// VC FIFO; everything still delivers and conserves credits.
func TestNonAtomicGenericDelivery(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.AtomicVCAlloc = false
	cfg.InjectionRate = 0.35
	cfg.WarmupPackets = 300
	cfg.MeasurePackets = 1200
	cfg.Seed = 91
	n := New(&cfg)
	res := n.Run()
	if res.Saturated || res.MeasuredPackets != 1200 {
		t.Fatalf("non-atomic run failed: %+v", res)
	}
}

// A capped-dispenser ViChaR behaves like a v-VC unified buffer and
// still conserves everything through a drain.
func TestCappedViCharDrain(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.VCLimit = 2
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	n := New(&cfg)
	for i := 0; i < 60; i++ {
		n.InjectPacket(i%16, (i+7)%16)
		n.Step()
	}
	if left := n.Drain(100_000); left != 0 {
		t.Fatalf("%d packets stuck with capped dispenser", left)
	}
}

// Rectangular meshes (non-square) work end to end.
func TestRectangularMesh(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 6, 3
	cfg.InjectionRate = 0.15
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 600
	cfg.Seed = 93
	n := New(&cfg)
	res := n.Run()
	if res.Saturated || res.MeasuredPackets != 600 {
		t.Fatalf("6x3 mesh failed: %+v", res)
	}
	// Transpose on a rectangle is not a permutation; the config layer
	// rejects it rather than delivering skewed load.
	cfg.Dest = config.Transpose
	if err := cfg.Validate(); err == nil {
		t.Fatal("6x3 transpose validated")
	}
}

// Speculative + torus + adaptive together: the feature matrix's far
// corner still delivers.
func TestFeatureMatrixCorner(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.Torus = true
	cfg.Routing = config.MinimalAdaptive
	cfg.EscapeVCs = 2
	cfg.DeadlockThreshold = 24
	cfg.Speculative = true
	cfg.PacketSize = 1
	cfg.PacketSizeMax = 6
	cfg.Traffic = config.SelfSimilar
	cfg.InjectionRate = 0.2
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 800
	cfg.Seed = 97
	n := New(&cfg)
	res := n.Run()
	if res.Saturated || res.MeasuredPackets != 800 {
		t.Fatalf("feature-matrix corner failed: %+v", res)
	}
}
