package network

import (
	"testing"

	"vichar/internal/config"
)

// TestStepAllocFree pins the hot-path purity contract (DESIGN.md §13)
// at runtime: after traffic has warmed every scratch buffer to its
// steady-state capacity and drained, Network.Step performs zero heap
// allocations. The static side of the same contract is vichar-lint's
// hot-path-alloc pass; this test catches whatever the AST
// approximation misses (e.g. an allocation behind a waiver that was
// wrongly justified as one-time).
func TestStepAllocFree(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR, config.DAMQ, config.FCCB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := smokeCfg(arch)
			cfg.InjectionRate = 0
			cfg.Workers = 1 // the serial kernel; pool goroutines park nondeterministically
			n := New(&cfg)
			// Warm up: run real traffic corner-to-corner and crosswise so
			// links, VC scratch, ejection staging, and the stats scratch
			// all grow to their steady-state capacity, then drain.
			for round := 0; round < 2; round++ {
				n.InjectPacket(0, 15)
				n.InjectPacket(15, 0)
				n.InjectPacket(3, 12)
				if left := n.Drain(10_000); left != 0 {
					t.Fatalf("warm-up round %d: %d packets undelivered", round, left)
				}
				// Step across a sampling boundary so the stats path is warm too.
				for i := int64(0); i < cfg.SampleEvery+1; i++ {
					n.Step()
				}
			}
			allocs := testing.AllocsPerRun(100, func() { n.Step() })
			if allocs != 0 {
				t.Fatalf("%v: Network.Step allocates %.1f times per cycle at steady state, want 0", arch, allocs)
			}
		})
	}
}
