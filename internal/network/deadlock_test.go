package network

import (
	"testing"

	"vichar/internal/config"
)

// Regression: shared-buffer schemes deadlocked under bursty traffic
// before per-VC slot reservations were added to the credit views. The
// failure mode: a pool fills with flits of packets waiting for VC
// tokens that are held by packets whose own flits cannot enter the
// pool — hold-and-wait through the shared storage, independent of the
// routing algorithm's acyclicity. This exact seed wedged a ViC-8
// network permanently at cycle ~15,000.
func TestSharedBufferDeadlockRegression(t *testing.T) {
	cfg := config.Default()
	cfg.Arch = config.ViChaR
	cfg.BufferSlots = 8
	cfg.Traffic = config.SelfSimilar
	cfg.InjectionRate = 0.35
	cfg.WarmupPackets = 2_000
	cfg.MeasurePackets = 6_000
	cfg.MaxCycles = 120_000
	cfg.Seed = -4538974679908472910

	n := New(&cfg)
	res := n.Run()
	if res.Saturated {
		t.Fatalf("formerly wedging workload saturated again: %s", res.String())
	}
	if res.Throughput < 10 {
		t.Fatalf("throughput collapsed: %.2f flits/cycle", res.Throughput)
	}
}

// Wedge detector: every shared-buffer architecture must keep ejecting
// under deep saturation — zero forward progress over a long window is
// a deadlock, however rare the triggering interleaving.
func TestNoWedgeUnderDeepSaturation(t *testing.T) {
	archs := []config.BufferArch{config.ViChaR, config.DAMQ, config.FCCB}
	for _, arch := range archs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := config.Default()
				cfg.Width, cfg.Height = 4, 4
				cfg.Arch = arch
				cfg.BufferSlots = 8
				if arch != config.ViChaR {
					cfg.VCs = 4
				}
				cfg.Traffic = config.SelfSimilar
				cfg.InjectionRate = 0.45 // far past saturation
				cfg.WarmupPackets = 1
				cfg.MeasurePackets = 1 << 30 // never met: run to the cap
				cfg.MaxCycles = 12_000
				cfg.Seed = seed

				n := New(&cfg)
				lastEjected := int64(0)
				for i := 0; i < 6; i++ {
					for c := 0; c < 2_000; c++ {
						n.Step()
					}
					ej := n.Collector().Ejected()
					if i >= 2 && ej == lastEjected {
						t.Fatalf("seed %d: no ejections between cycles %d and %d — wedged\n%s",
							seed, n.Now()-2_000, n.Now(), n.Router(0).DebugState())
					}
					lastEjected = ej
				}
			}
		})
	}
}

// The reservation bookkeeping must survive a full drain: this is the
// conservation check specialized to the smallest pools, where every
// slot is a reservation at some point.
func TestTinyPoolDrainConservation(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = config.ViChaR
	cfg.BufferSlots = 4 // four slots, up to four VCs
	cfg.PacketSize = 4
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	n := New(&cfg)
	for i := 0; i < 50; i++ {
		n.InjectPacket(i%16, (i+5)%16)
		n.Step()
	}
	if left := n.Drain(100_000); left != 0 {
		t.Fatalf("%d packets stuck in tiny-pool network", left)
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	for id := 0; id < 16; id++ {
		r := n.Router(id)
		for p := 0; p < 4; p++ {
			if v := r.OutputView(p); v != nil {
				if v.FreeSlots() != 4 || v.OutstandingVCs() != 0 {
					t.Fatalf("router %d port %d: free=%d outstanding=%d after drain",
						id, p, v.FreeSlots(), v.OutstandingVCs())
				}
			}
		}
	}
}
