package network

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"vichar/internal/config"
	"vichar/internal/metrics"
)

// obsConfig is a small mesh run with the full observability layer on.
func obsConfig() *config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	cfg.WarmupPackets = 30
	cfg.MeasurePackets = 200
	cfg.Seed = 77
	cfg.Metrics = true
	cfg.TraceEvents = 1 << 16
	return &cfg
}

// The registry's cumulative totals must reconcile exactly with the
// network's own accounting: the per-router stats.Counters sums and
// the per-link traversal counts the power model is built on.
func TestMetricsReconcileWithCounters(t *testing.T) {
	cfg := obsConfig()
	n := New(cfg)
	defer n.Close()
	res := n.Run()

	s := n.Metrics().Snapshot()
	total := n.totalCounters()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"vichar_buffer_writes_total", total.BufferWrites},
		{"vichar_buffer_reads_total", total.BufferReads},
		{"vichar_xbar_traversals_total", total.XbarTraversals},
		{"vichar_link_flits_total", total.LinkTraversals},
		{"vichar_va_ops_total", total.VAOps},
		{"vichar_sa_ops_total", total.SAOps},
		{"vichar_va_grants_total", total.VCGrants},
	} {
		if got := s.Sum(c.name); got != c.want {
			t.Errorf("%s = %d, want %d (network accounting)", c.name, got, c.want)
		}
	}
	if got := s.Sum("vichar_packets_ejected_total"); got != uint64(res.EjectedPackets) {
		t.Errorf("packets_ejected = %d, want %d", got, res.EjectedPackets)
	}
	if got := s.Sum("vichar_packets_created_total"); got != uint64(n.CreatedPackets()) {
		t.Errorf("packets_created = %d, want %d", got, n.CreatedPackets())
	}
	if cyc, ok := s.Gauge("vichar_cycle"); !ok || cyc != float64(res.TotalCycles) {
		t.Errorf("cycle gauge = %g, want %d", cyc, res.TotalCycles)
	}
	if inflight, ok := s.Gauge("vichar_packets_inflight"); !ok ||
		inflight != float64(n.CreatedPackets()-res.EjectedPackets) {
		t.Errorf("inflight gauge = %g, want %d", inflight, n.CreatedPackets()-res.EjectedPackets)
	}
	// Per-port buffer writes must also sum to the same total as the
	// unlabeled reconciliation above, i.e. labels partition the count.
	perPort := uint64(0)
	for _, cv := range s.Counters {
		if cv.Name == "vichar_buffer_writes_total" {
			perPort += cv.Value
		}
	}
	if perPort != total.BufferWrites {
		t.Errorf("per-port buffer writes sum %d, want %d", perPort, total.BufferWrites)
	}
}

// A scrape of the live HTTP handler must reconcile with the final
// stats.Results — the acceptance criterion for -metrics-addr.
func TestMetricsHandlerReconcilesWithResults(t *testing.T) {
	cfg := obsConfig()
	n := New(cfg)
	defer n.Close()
	res := n.Run()

	srv := httptest.NewServer(metrics.Handler(n.Metrics(), n.FlitTracer()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}

	series := map[string]uint64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue // gauges with fractional values are not summed here
		}
		series[name] += uint64(v)
	}
	if got := series["vichar_packets_ejected_total"]; got != uint64(res.EjectedPackets) {
		t.Errorf("scraped packets_ejected = %d, want Results.EjectedPackets %d", got, res.EjectedPackets)
	}
	if got := series["vichar_flits_ejected_total"]; got == 0 {
		t.Error("scraped flits_ejected = 0")
	}
	if got := series["vichar_cycle"]; got != uint64(res.TotalCycles) {
		t.Errorf("scraped cycle = %d, want Results.TotalCycles %d", got, res.TotalCycles)
	}
}

// Every packet's retained event timeline must be internally
// consistent: cycles non-decreasing, starting with create and ending
// with the tail's ejection, with per-flit stages in pipeline order.
func TestFlitTimelineReconstruction(t *testing.T) {
	cfg := obsConfig()
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 50
	n := New(cfg)
	defer n.Close()
	n.Run()

	tr := n.FlitTracer()
	if tr.Total() == 0 {
		t.Fatal("tracer recorded no events")
	}
	// Pick a packet whose full lifecycle is retained: the ring holds
	// the newest events, so walk backwards from the end for a
	// timeline that starts with create.
	evs := tr.Events()
	checked := 0
	seen := map[uint64]bool{}
	for i := len(evs) - 1; i >= 0 && checked < 5; i-- {
		pkt := evs[i].Packet
		if seen[pkt] {
			continue
		}
		seen[pkt] = true
		tl := tr.Timeline(pkt)
		if tl[0].Kind != metrics.EvCreate {
			continue // truncated by the ring; try another packet
		}
		checked++
		last := tl[0].Cycle
		ejects := 0
		for _, e := range tl[1:] {
			if e.Cycle < last {
				t.Fatalf("packet %d timeline goes backwards: %+v", pkt, tl)
			}
			last = e.Cycle
			if e.Kind == metrics.EvEject {
				ejects++
			}
		}
		if ejects == 0 {
			continue // still in flight at run end
		}
		if tl[len(tl)-1].Kind != metrics.EvEject {
			t.Fatalf("packet %d timeline does not end with ejection: %+v", pkt, tl)
		}
	}
	if checked == 0 {
		t.Fatal("no fully retained packet timeline found")
	}
}

// With observability off the network must not build any of the layer.
func TestMetricsDisabledByDefault(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 2, 2
	cfg.WarmupPackets = 2
	cfg.MeasurePackets = 10
	n := New(&cfg)
	defer n.Close()
	n.Run()
	if n.Metrics() != nil || n.FlitTracer() != nil {
		t.Fatal("observability layer built despite Metrics=false, TraceEvents=0")
	}
}
