package network

import (
	"bytes"
	"testing"

	"vichar/internal/config"
	"vichar/internal/snap"
)

// roundTrip saves n into a fresh network of the same configuration
// and returns both, failing the test on any codec error.
func roundTrip(t *testing.T, n *Network, cfg *config.Config) *Network {
	t.Helper()
	w := snap.NewWriter()
	if err := n.SaveState(w); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	blob := w.Finish()
	r, err := snap.Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n2 := New(cfg)
	if err := n2.LoadState(r); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	return n2
}

// saveBytes serializes n's state for byte comparison.
func saveBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	w := snap.NewWriter()
	if err := n.SaveState(w); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	return w.Finish()
}

// heldFlits counts flits parked in retransmission buffers across all
// links.
func heldFlits(n *Network) int {
	held := 0
	for id := range n.plan {
		for _, l := range n.plan[id].flits {
			if l.faults.HeldFlit() != nil {
				held++
			}
		}
	}
	return held
}

// TestSnapshotMidRetransmissionHold cuts a checkpoint at a cycle
// where at least one flit sits in a link's retransmission buffer
// waiting for its retry; the restored network must carry the hold
// (same count, same fault counters) and evolve bit-identically —
// every subsequent per-cycle snapshot matches the original's byte for
// byte until both drain.
func TestSnapshotMidRetransmissionHold(t *testing.T) {
	cfg := faultBase()
	cfg.Audit = false
	cfg.Faults = config.FaultsConfig{
		Seed:            3,
		DropRate:        0.05,
		CorruptRate:     0.03,
		RetransmitDelay: 6,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n := New(&cfg)

	// Step until a retransmission hold is live (the 8% fault rate
	// makes this a matter of a few dozen cycles).
	foundAt := int64(-1)
	for c := 0; c < 2000; c++ {
		n.Step()
		if heldFlits(n) > 0 {
			foundAt = n.Now()
			break
		}
	}
	if foundAt < 0 {
		t.Fatalf("no retransmission hold materialized in 2000 cycles")
	}

	n2 := roundTrip(t, n, &cfg)
	if got, want := heldFlits(n2), heldFlits(n); got != want {
		t.Fatalf("restored network holds %d flits, original %d", got, want)
	}

	// Lockstep: the two networks must stay byte-identical through the
	// hold's release, the retry (which may itself fault), and beyond.
	for c := 0; c < 200; c++ {
		n.Step()
		n2.Step()
		if a, b := saveBytes(t, n), saveBytes(t, n2); !bytes.Equal(a, b) {
			t.Fatalf("states diverge %d cycles after a mid-hold restore (cut at cycle %d)", c+1, foundAt)
		}
	}
}

// TestSnapshotRejectsMidCycleState documents the between-Steps
// contract: SaveState refuses when ejection staging is live.
func TestSnapshotRejectsMidCycleState(t *testing.T) {
	cfg := faultBase()
	cfg.Audit = false
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n := New(&cfg)
	for c := 0; c < 32; c++ {
		n.Step()
	}
	n.pendingEject[0] = append(n.pendingEject[0], nil)
	w := snap.NewWriter()
	if err := n.SaveState(w); err == nil {
		t.Fatalf("SaveState accepted mid-cycle state with staged ejections")
	}
	n.pendingEject[0] = n.pendingEject[0][:0]
	if err := n.SaveState(snap.NewWriter()); err != nil {
		t.Fatalf("SaveState after clearing staged ejections: %v", err)
	}
}
