package network

import (
	"testing"

	"vichar/internal/config"
)

// smokeCfg returns a small, fast configuration for end-to-end tests.
func smokeCfg(arch config.BufferArch) config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Arch = arch
	if arch != config.Generic {
		cfg.VCDepth = 4
	}
	cfg.WarmupPackets = 200
	cfg.MeasurePackets = 500
	cfg.InjectionRate = 0.1
	cfg.Seed = 7
	return cfg
}

func TestSmokeAllArchitectures(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR, config.DAMQ, config.FCCB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := smokeCfg(arch)
			n := New(&cfg)
			res := n.Run()
			if res.Saturated {
				t.Fatalf("%v saturated at low load: %+v", arch, res)
			}
			if res.MeasuredPackets != int64(cfg.MeasurePackets) {
				t.Fatalf("measured %d packets, want %d", res.MeasuredPackets, cfg.MeasurePackets)
			}
			if res.AvgLatency < 5 || res.AvgLatency > 500 {
				t.Fatalf("implausible average latency %.2f", res.AvgLatency)
			}
			t.Logf("%v: %v", arch, res.String())
		})
	}
}

func TestSmokeSingleDelivery(t *testing.T) {
	cfg := smokeCfg(config.ViChaR)
	cfg.InjectionRate = 0
	cfg.WarmupPackets = 0
	cfg.MeasurePackets = 1
	n := New(&cfg)
	p := n.InjectPacket(0, 15)
	left := n.Drain(10_000)
	if left != 0 {
		t.Fatalf("%d packets undelivered", left)
	}
	if p.EjectedAt <= p.CreatedAt {
		t.Fatalf("bogus timestamps: created=%d ejected=%d", p.CreatedAt, p.EjectedAt)
	}
	// 4x4 mesh corner to corner: 6 hops + inject/eject, 4 pipeline
	// stages + link each, 4-flit serialization: roughly 40 cycles.
	if lat := p.Latency(); lat < 20 || lat > 120 {
		t.Fatalf("implausible zero-load latency %d", lat)
	}
	t.Logf("zero-load corner-to-corner latency: %d cycles", p.Latency())
}
