package network

import (
	"reflect"
	"testing"

	"vichar/internal/config"
	"vichar/internal/stats"
	"vichar/internal/topology"
)

// faultBase is the shared platform of the fault-model tests: a small
// mesh kept below saturation so every run drains.
func faultBase() config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.InjectionRate = 0.25
	cfg.WarmupPackets = 30
	cfg.MeasurePackets = 200
	cfg.Seed = 7
	cfg.Audit = true
	return cfg
}

// TestHardLinkFailureDeadlockFree is the resilience tentpole's
// acceptance test: with links scheduled to die mid-run, the adaptive
// router must route around them on the fault-aware escape tree,
// complete the full measurement protocol deadlock-free with the
// invariant auditor on, and stay bit-identical between the serial and
// the sharded kernel.
func TestHardLinkFailureDeadlockFree(t *testing.T) {
	run := func(workers int) (stats.Results, []int64) {
		cfg := faultBase()
		cfg.Routing = config.MinimalAdaptive
		cfg.Workers = workers
		cfg.Faults = config.FaultsConfig{
			Seed: 3,
			Events: []config.FaultEvent{
				{Cycle: 80, Kind: config.KillLink, Node: 5, Port: topology.East},
				{Cycle: 80, Kind: config.KillLink, Node: 6, Port: topology.West},
				{Cycle: 120, Kind: config.KillLink, Node: 10, Port: topology.North},
			},
		}
		n := New(&cfg)
		defer n.Close()
		res := n.Run()
		return res, n.Collector().Latencies()
	}
	r1, l1 := run(1)
	r4, l4 := run(4)
	if r1.Saturated {
		t.Fatal("hard-failure run hit its cycle cap: traffic did not route around the dead links")
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("Workers=1 vs Workers=4 diverged under hard link failures:\n%+v\n%+v", r1, r4)
	}
	if !reflect.DeepEqual(l1, l4) {
		t.Fatal("Workers=1 vs Workers=4 diverged in per-packet latencies under hard link failures")
	}
}

// TestTransientFaultAccounting drains a faulted workload to empty and
// checks the declared-fault ledger end to end: faults happened, every
// one of them was recovered by a retransmission (nothing is parked
// once the network is idle), and no packet was lost — all under the
// per-cycle auditor, which checks the same conservation each step.
func TestTransientFaultAccounting(t *testing.T) {
	cfg := faultBase()
	cfg.InjectionRate = 0
	cfg.Faults = config.FaultsConfig{
		Seed:        11,
		DropRate:    0.02,
		CorruptRate: 0.01,
	}
	n := New(&cfg)
	defer n.Close()
	for i := 0; i < 200; i++ {
		src := i % n.mesh.Nodes()
		n.InjectPacket(src, (src+7)%n.mesh.Nodes())
	}
	if left := n.Drain(200_000); left != 0 {
		t.Fatalf("%d packets still in flight after drain", left)
	}
	c := n.totalCounters()
	if c.FlitDrops == 0 || c.FlitCorrupts == 0 {
		t.Fatalf("fault rates produced no faults: %d drops, %d corrupts", c.FlitDrops, c.FlitCorrupts)
	}
	if c.Retransmits != c.FlitDrops+c.FlitCorrupts {
		t.Fatalf("declared-fault ledger imbalanced after drain: %d retransmits for %d drops + %d corrupts",
			c.Retransmits, c.FlitDrops, c.FlitCorrupts)
	}
}

// TestScheduledStallWindow checks the targeted fault events: a frozen
// input port accrues exactly its scheduled stall cycles (the window is
// latched whether or not traffic touches the port), and a scheduled
// one-shot drop retransmits exactly once.
func TestScheduledStallWindow(t *testing.T) {
	cfg := faultBase()
	cfg.InjectionRate = 0
	cfg.Faults = config.FaultsConfig{
		Events: []config.FaultEvent{
			{Cycle: 10, Kind: config.StallPort, Node: 3, Port: topology.West, Cycles: 5},
		},
	}
	n := New(&cfg)
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if c := n.totalCounters(); c.StallCycles != 5 {
		t.Fatalf("scheduled 5-cycle stall accrued %d stall cycles", c.StallCycles)
	}

	cfg = faultBase()
	cfg.InjectionRate = 0
	cfg.Faults = config.FaultsConfig{
		Events: []config.FaultEvent{
			{Cycle: 1, Kind: config.DropFlit, Node: 0, Port: topology.East},
		},
	}
	n = New(&cfg)
	n.InjectPacket(0, 3)
	if left := n.Drain(10_000); left != 0 {
		t.Fatalf("%d packets in flight after scheduled drop", left)
	}
	c := n.totalCounters()
	if c.FlitDrops != 1 || c.Retransmits != 1 {
		t.Fatalf("scheduled one-shot drop tallied %d drops, %d retransmits; want 1, 1", c.FlitDrops, c.Retransmits)
	}
}

// TestFaultFreePathUntouched pins the zero-overhead contract: a
// configuration with a zero-value Faults block must build no fault
// plan at all, so the hot delivery path keeps its seed shape.
func TestFaultFreePathUntouched(t *testing.T) {
	cfg := faultBase()
	n := New(&cfg)
	if n.fplan != nil || len(n.faultLinks) != 0 {
		t.Fatal("fault plan built for a fault-free configuration")
	}
	for _, rl := range n.plan {
		for _, l := range rl.flits {
			if l.faults != nil {
				t.Fatal("fault state attached to a link in a fault-free configuration")
			}
		}
	}
}
