package router

import (
	"vichar/internal/arbiter"
	"vichar/internal/config"
	"vichar/internal/routing"
	"vichar/internal/soa"
	"vichar/internal/topology"
)

// Arena is the router layer's view of the network-owned
// struct-of-arrays backing store (DESIGN.md §14): the shared typed
// pools of internal/soa plus router-private pools for VC pipeline
// state and arbiter banks. The network builds one per simulation and
// threads it through NewIn / NewCreditViewIn in ascending router-id
// order, so the hot per-(router, port, VC) state — UBS slots and
// bitmaps, control-table rings, credit counters, VC state machines,
// arbiter pointers, scan masks — lands in construction order on one
// contiguous slab.
//
// A nil *Arena degrades every take to a plain allocation; standalone
// routers (unit tests) need no pool.
type Arena struct {
	soa *soa.Arena
	vcs *soa.Pool[vcState]
	rrs *soa.Pool[arbiter.RoundRobin]
	// tables is the network-wide route memoization (one per arena, not
	// per router): every router's RC stage reads the same flat byte
	// tables, carved from the soa byte pool.
	tables *routing.Tables
}

// NewArena sizes an arena for `nodes` routers of the configuration
// plus the network's link credit views. The per-pool capacities are
// the closed-form sum of every take the construction path performs;
// TestArenaSizingExact pins the formula by asserting zero overflow.
func NewArena(cfg *config.Config, mesh topology.Mesh) *Arena {
	nodes := mesh.Nodes()
	p := cfg.Ports()
	v := cfg.MaxVCs()
	w := maskWords(v)

	// Inter-router links: one credit view per connected cardinal port.
	links := 0
	for id := 0; id < nodes; id++ {
		links += mesh.Degree(id)
	}
	// One view per inter-router link plus one NI view per node (the
	// ejection port's sink view holds no arrays).
	views := links + nodes

	var flits, ints, int64s, words, bools int

	// Per input port: the buffer. Only the ViChaR UBS is arena-backed;
	// the fixed organizations keep their self-recycling FIFO slices.
	inPorts := nodes * p
	if cfg.Arch == config.ViChaR {
		slots := cfg.BufferSlots
		flits += inPorts * slots               // UBS slot array
		int64s += inPorts * (slots + v)        // arrival stamps: per slot + head cache
		words += inPorts * ((slots + 63) / 64) // slot availability tracker
		words += inPorts * 2 * ((v + 63) / 64) // readiness overlay (ready + pending)
		ints += inPorts * (v*slots + 2*v)      // control-table rings + head/count
	}

	// Per input port: VC pipeline state, the three scan masks and the
	// packed (outPort, outVC) route of each granted VC.
	words += inPorts * 3 * w
	ints += inPorts * v

	// Per router: arbiter banks (vaS1, saS1 over VCs; vaS2, saS2 over
	// ports; the generic organization adds a per-output-VC stage 2).
	rrs := nodes * 4 * p
	if cfg.Arch != config.ViChaR {
		rrs += nodes * p * v
	}

	// Per credit view.
	escape := 0
	if cfg.NeedsEscape() {
		escape = cfg.EscapeVCs
	}
	switch cfg.Arch {
	case config.Generic:
		ints += views * cfg.VCs  // credits
		bools += views * cfg.VCs // open
	case config.ViChaR:
		ints += views * v      // held
		bools += views * 2 * v // resFree + granted
		dw := (v - escape + 63) / 64
		if escape > 0 {
			dw += (escape + 63) / 64
		}
		words += views * dw // dispenser availability bitmaps
	case config.DAMQ, config.FCCB:
		ints += views * cfg.VCs      // held
		bools += views * 2 * cfg.VCs // resFree + open
	}

	// The network-wide route memoization tables (DESIGN.md §17).
	route := routeFor(cfg)
	bytes := routing.TableBytes(route, mesh)

	a := &Arena{
		soa: soa.NewArena(flits, ints, int64s, words, bools, bytes),
		vcs: soa.NewPool[vcState](inPorts * v),
		rrs: soa.NewPool[arbiter.RoundRobin](rrs),
	}
	a.tables = routing.NewTablesIn(a.soa, route, mesh)
	return a
}

// Tables returns the arena's shared route-memoization tables (nil for
// a nil arena; NewIn then builds per-router tables).
func (a *Arena) Tables() *routing.Tables {
	if a == nil {
		return nil
	}
	return a.tables
}

// Soa returns the shared typed pools (nil for a nil arena).
func (a *Arena) Soa() *soa.Arena {
	if a == nil {
		return nil
	}
	return a.soa
}

// Overflow sums fallback allocations across all pools; nonzero means
// the sizing formula undershot.
func (a *Arena) Overflow() int {
	if a == nil {
		return 0
	}
	return a.soa.Overflow() + a.vcs.Overflow() + a.rrs.Overflow()
}

// takeVCs carves n VC state machines (nil-arena safe).
func (a *Arena) takeVCs(n int) []vcState {
	if a == nil {
		return make([]vcState, n)
	}
	return a.vcs.Take(n)
}

// takeBank carves a round-robin arbiter bank (nil-arena safe),
// mirroring arbiter.NewRoundRobinBank.
func (a *Arena) takeBank(count, inputs int) []arbiter.RoundRobin {
	if a == nil {
		return arbiter.NewRoundRobinBank(count, inputs)
	}
	bank := a.rrs.Take(count)
	arbiter.InitBank(bank, inputs)
	return bank
}

// maskWords returns the uint64 words needed for one bit per VC.
func maskWords(vcs int) int { return (vcs + 63) / 64 }
