package router

import (
	"fmt"

	"vichar/internal/arbiter"
	"vichar/internal/flit"
	"vichar/internal/snap"
)

// This file implements the checkpoint half of the router pipeline:
// the activity counters, each input port's buffer contents, VC state
// machines, scan masks and packed routes, each output port's credit
// view, the arbiter banks' priority pointers, and the fault-model
// stall registers. Per-tick scratch (nominee arrays, request masks)
// is dead between Steps and never serialized. Everything loads into a
// router freshly constructed from the same configuration: masks and
// outInfo are arena-backed and aliased by the network's worklist
// scans, so they load in place.

// Packets calls fn for every packet referenced by this router's input
// buffers or VC state machines; the network's checkpoint walks it to
// build the snapshot's packet table. fn may see the same packet more
// than once.
func (r *Router) Packets(fn func(*flit.Packet)) {
	for p := range r.in {
		in := &r.in[p]
		in.buf.ForEachFlit(func(f *flit.Flit) { fn(f.Pkt) })
		for v := range in.vc {
			if pkt := in.vc[v].pkt; pkt != nil {
				fn(pkt)
			}
		}
	}
}

// SaveView serializes a credit view's mutable mirror state. The view
// kind is wiring (it re-derives from the configuration and port
// role), so a kind marker travels only to catch writer/reader drift.
func SaveView(w *snap.Writer, v CreditView) {
	switch cv := v.(type) {
	case nil:
		// Boundary output ports of a mesh face no neighbor and carry
		// no view.
		w.Section("noview")
	case *genericView:
		w.Section("genview")
		w.Ints(cv.credits)
		w.Bools(cv.open)
		w.Int(cv.rr)
	case *sharedView:
		w.Section("sharedview")
		w.Int(cv.sharedFree)
		w.Bools(cv.resFree)
		w.Ints(cv.held)
		w.Bools(cv.open)
		w.Int(cv.rr)
	case *vicharView:
		w.Section("vicview")
		w.Int(cv.sharedFree)
		w.Bools(cv.resFree)
		w.Bools(cv.granted)
		w.Ints(cv.held)
		w.Bools(cv.classRes)
		cv.dispenser.SaveState(w)
	case *sinkView:
		w.Section("sinkview")
		w.Int(cv.outstanding)
	default:
		//vichar:invariant every credit view the network wires is one of the four kinds above
		panic(fmt.Sprintf("router: unknown credit view %T", v))
	}
}

// LoadView restores state saved by SaveView into a view of the same
// kind and shape.
func LoadView(r *snap.Reader, v CreditView) error {
	switch cv := v.(type) {
	case nil:
		if err := r.Section("noview"); err != nil {
			return err
		}
	case *genericView:
		if err := r.Section("genview"); err != nil {
			return err
		}
		r.IntsInto(cv.credits)
		r.BoolsInto(cv.open)
		cv.rr = r.Int()
	case *sharedView:
		if err := r.Section("sharedview"); err != nil {
			return err
		}
		cv.sharedFree = r.Int()
		r.BoolsInto(cv.resFree)
		r.IntsInto(cv.held)
		r.BoolsInto(cv.open)
		cv.rr = r.Int()
	case *vicharView:
		if err := r.Section("vicview"); err != nil {
			return err
		}
		cv.sharedFree = r.Int()
		r.BoolsInto(cv.resFree)
		r.BoolsInto(cv.granted)
		r.IntsInto(cv.held)
		r.BoolsInto(cv.classRes)
		if err := cv.dispenser.LoadState(r); err != nil {
			return err
		}
	case *sinkView:
		if err := r.Section("sinkview"); err != nil {
			return err
		}
		cv.outstanding = r.Int()
	default:
		return fmt.Errorf("router: unknown credit view %T", v)
	}
	return r.Err()
}

// saveBank writes the priority pointers of one arbiter bank.
func saveBank(w *snap.Writer, bank []arbiter.RoundRobin) {
	w.Int(len(bank))
	for i := range bank {
		w.Int(bank[i].Pos())
	}
}

// loadBank restores the priority pointers of a bank of the same size.
func loadBank(r *snap.Reader, bank []arbiter.RoundRobin) error {
	if n := r.Int(); n != len(bank) {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("router: snapshot arbiter bank size %d, constructed %d", n, len(bank))
	}
	for i := range bank {
		pos := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if err := bank[i].SetPos(pos); err != nil {
			return err
		}
	}
	return r.Err()
}

// saveVC writes one input VC's allocation state machine.
func saveVC(w *snap.Writer, st *vcState) {
	w.U8(st.state)
	w.Packet(st.pkt)
	w.Ints(st.cands)
	w.Int(st.outPort)
	w.Int(st.outVC)
	w.I64(st.waitSince)
}

// loadVC restores one input VC's allocation state machine, reusing
// the candidate slice's backing array.
func loadVC(r *snap.Reader, st *vcState, pkts snap.PacketResolver) error {
	state := r.U8()
	if r.Err() != nil {
		return r.Err()
	}
	if state > vcActive {
		return fmt.Errorf("router: snapshot VC state %d out of range", state)
	}
	pkt, err := r.Packet(pkts)
	if err != nil {
		return err
	}
	st.state = state
	st.pkt = pkt
	st.cands = r.IntsAppend(st.cands)
	st.outPort = r.Int()
	st.outVC = r.Int()
	st.waitSince = r.I64()
	return r.Err()
}

// SaveState serializes the router's mutable pipeline state.
func (r *Router) SaveState(w *snap.Writer) {
	w.Section("router")
	r.Counters.SaveState(w)
	for p := range r.in {
		in := &r.in[p]
		in.buf.SaveState(w)
		for v := range in.vc {
			saveVC(w, &in.vc[v])
		}
		w.U64s(in.bufMask)
		w.U64s(in.vaMask)
		w.U64s(in.actMask)
		w.Ints(in.outInfo)
	}
	for p := range r.out {
		SaveView(w, r.out[p].view)
	}
	saveBank(w, r.vaS1)
	saveBank(w, r.vaS2)
	saveBank(w, r.vaS2G)
	saveBank(w, r.saS1)
	saveBank(w, r.saS2)
	r.faults.SaveState(w)
}

// LoadState restores state saved by SaveState into a router freshly
// constructed and wired from the same configuration.
func (r *Router) LoadState(rd *snap.Reader, resolve snap.Resolver, pkts snap.PacketResolver) error {
	if err := rd.Section("router"); err != nil {
		return err
	}
	if err := r.Counters.LoadState(rd); err != nil {
		return err
	}
	for p := range r.in {
		in := &r.in[p]
		if err := in.buf.LoadState(rd, resolve); err != nil {
			return err
		}
		for v := range in.vc {
			if err := loadVC(rd, &in.vc[v], pkts); err != nil {
				return err
			}
		}
		rd.U64sInto(in.bufMask)
		rd.U64sInto(in.vaMask)
		rd.U64sInto(in.actMask)
		rd.IntsInto(in.outInfo)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	for p := range r.out {
		if err := LoadView(rd, r.out[p].view); err != nil {
			return err
		}
	}
	for _, bank := range [][]arbiter.RoundRobin{r.vaS1, r.vaS2, r.vaS2G, r.saS1, r.saS2} {
		if err := loadBank(rd, bank); err != nil {
			return err
		}
	}
	if err := r.faults.LoadState(rd); err != nil {
		return err
	}
	return rd.Err()
}
