package router

import (
	"fmt"

	"vichar/internal/config"
	"vichar/internal/core"
	"vichar/internal/flit"
	"vichar/internal/soa"
)

// CreditView is the upstream mirror of a downstream input port's
// buffer state, maintained at each router output port (and at each
// network interface for the local injection port). It answers the
// two questions flow control asks: can one more flit be sent on a
// given VC (slot credit), and can a new packet be granted a VC (VC
// availability) — for ViChaR, the latter is the Token Dispenser.
type CreditView interface {
	// CanSendFlit reports whether a flit may be sent on vc this cycle
	// (a downstream slot is available to it).
	CanSendFlit(vc int) bool
	// OnSend debits the view for a departing flit.
	OnSend(f *flit.Flit)
	// OnCredit credits the view for a downstream departure.
	OnCredit(c flit.Credit)
	// HasFreeVC reports whether a VC of the given class (escape or
	// regular) could be granted to a new packet this cycle.
	HasFreeVC(escape bool) bool
	// AllocVC grants a VC of the given class to a new packet. The
	// caller must route all the packet's flits onto the returned VC.
	AllocVC(escape bool) (vc int, ok bool)
	// FreeSlots returns the downstream slots currently available to
	// new flits (summed over VCs for partitioned buffers); used by
	// adaptive routing to score candidate outputs.
	FreeSlots() int
	// OutstandingVCs returns the number of VCs currently granted and
	// not yet released.
	OutstandingVCs() int
	// OutstandingFlits returns the view's debit: flits sent minus
	// credits received. The invariant auditor balances it against the
	// link's in-flight flits, the downstream occupancy and the
	// in-flight credits.
	OutstandingFlits() int
}

// NewCreditView builds the view matching the configuration's buffer
// architecture, mirroring one downstream input port.
func NewCreditView(cfg *config.Config) CreditView { return NewCreditViewIn(nil, cfg) }

// NewCreditViewIn is NewCreditView drawing the view's per-VC counters
// and flags from the network arena (nil-arena safe), so the credit
// state the tick path debits sits beside the rest of the router's hot
// state (DESIGN.md §14).
func NewCreditViewIn(a *Arena, cfg *config.Config) CreditView {
	escape := 0
	if cfg.NeedsEscape() {
		escape = cfg.EscapeVCs
	}
	switch cfg.Arch {
	case config.Generic:
		return newGenericView(a.Soa(), cfg.VCs, cfg.VCDepth, escape, cfg.AtomicVCAlloc)
	case config.ViChaR:
		return newViCharView(a.Soa(), cfg.BufferSlots, cfg.MaxVCs(), escape)
	case config.DAMQ, config.FCCB:
		return newSharedView(a.Soa(), cfg.VCs, cfg.BufferSlots, escape)
	default:
		panic(fmt.Sprintf("router: unknown buffer architecture %v", cfg.Arch))
	}
}

// genericView mirrors a statically partitioned buffer: one private
// credit counter per VC plus per-VC allocation state. With atomic
// allocation a VC is re-grantable only when fully drained; otherwise
// packets may queue back-to-back within the FIFO.
type genericView struct {
	depth   int
	credits []int
	open    []bool // a packet holds the VC and its tail has not been sent
	escBase int    // first escape VC ID; len(credits) when no escape set
	atomic  bool
	rr      int // round-robin pointer for AllocVC
}

func newGenericView(a *soa.Arena, vcs, depth, escape int, atomic bool) *genericView {
	v := &genericView{
		depth:   depth,
		credits: a.TakeInts(vcs),
		open:    a.TakeBools(vcs),
		escBase: vcs - escape,
		atomic:  atomic,
	}
	for i := range v.credits {
		v.credits[i] = depth
	}
	return v
}

func (v *genericView) CanSendFlit(vc int) bool {
	return vc >= 0 && vc < len(v.credits) && v.credits[vc] > 0
}

func (v *genericView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without credit on vc %d", f.VC))
	}
	v.credits[f.VC]--
	if f.IsTail() {
		v.open[f.VC] = false
	}
}

func (v *genericView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.credits) {
		//vichar:invariant a credit naming a VC the view does not mirror means the link is miswired
		panic(fmt.Sprintf("router: credit for unknown vc %d", c.VC))
	}
	v.credits[c.VC]++
	if v.credits[c.VC] > v.depth {
		//vichar:invariant more credits than depth means a duplicated or spurious credit upstream
		panic(fmt.Sprintf("router: credit overflow on vc %d", c.VC))
	}
}

// grantable reports whether the VC may be given to a new packet.
func (v *genericView) grantable(vc int) bool {
	if v.open[vc] {
		return false
	}
	if v.atomic {
		return v.credits[vc] == v.depth
	}
	return true
}

func (v *genericView) vcRange(escape bool) (lo, hi int) {
	if escape {
		return v.escBase, len(v.credits)
	}
	return 0, v.escBase
}

func (v *genericView) HasFreeVC(escape bool) bool {
	lo, hi := v.vcRange(escape)
	for vc := lo; vc < hi; vc++ {
		if v.grantable(vc) {
			return true
		}
	}
	return false
}

func (v *genericView) AllocVC(escape bool) (int, bool) {
	lo, hi := v.vcRange(escape)
	n := hi - lo
	if n <= 0 {
		return -1, false
	}
	for i := 0; i < n; i++ {
		vc := lo + (v.rr+i)%n
		if v.grantable(vc) {
			v.rr = (vc - lo + 1) % n
			v.open[vc] = true
			return vc, true
		}
	}
	return -1, false
}

// GrantableVC returns a grantable VC of the class, scanning
// round-robin from hint, without claiming it (generic VA stage 1).
func (v *genericView) GrantableVC(escape bool, hint int) int {
	lo, hi := v.vcRange(escape)
	n := hi - lo
	if n <= 0 {
		return -1
	}
	if hint < 0 {
		hint = 0
	}
	for i := 0; i < n; i++ {
		vc := lo + (hint+i)%n
		if v.grantable(vc) {
			return vc
		}
	}
	return -1
}

// ClaimVC marks vc granted to a new packet (generic VA stage 2).
func (v *genericView) ClaimVC(vc int) {
	if vc < 0 || vc >= len(v.open) || !v.grantable(vc) {
		//vichar:invariant VA stage 2 claims only VCs stage 1 reported grantable within the same cycle
		panic(fmt.Sprintf("router: claim of ungrantable vc %d", vc))
	}
	v.open[vc] = true
}

func (v *genericView) FreeSlots() int {
	n := 0
	for _, c := range v.credits {
		n += c
	}
	return n
}

func (v *genericView) OutstandingFlits() int {
	n := 0
	for _, c := range v.credits {
		n += v.depth - c
	}
	return n
}

func (v *genericView) OutstandingVCs() int {
	n := 0
	for vc := range v.open {
		if v.open[vc] || v.credits[vc] < v.depth {
			n++
		}
	}
	return n
}

// sharedView mirrors a DAMQ or FC-CB input port: a shared slot pool
// with a fixed set of VCs; packets may queue back-to-back within a
// queue (their head-of-line weakness).
//
// One slot is permanently reserved per queue — the classical DAMQ
// provision — so every queue can always accept at least one flit.
// Without it, a pool filled by packets waiting for resources held by
// packets whose flits cannot enter the pool deadlocks (hold-and-wait
// through the shared storage, independent of routing acyclicity).
type sharedView struct {
	slots      int
	sharedFree int    // pool slots beyond the per-queue reservations
	resFree    []bool // per queue: reserved slot currently empty
	held       []int  // per queue: flits resident downstream
	open       []bool
	escBase    int
	rr         int
}

func newSharedView(a *soa.Arena, vcs, slots, escape int) *sharedView {
	if slots < vcs {
		panic(fmt.Sprintf("router: shared view needs a reservable slot per VC, got %d slots for %d VCs", slots, vcs))
	}
	v := &sharedView{
		slots:      slots,
		sharedFree: slots - vcs,
		resFree:    a.TakeBools(vcs),
		held:       a.TakeInts(vcs),
		open:       a.TakeBools(vcs),
		escBase:    vcs - escape,
	}
	for i := range v.resFree {
		v.resFree[i] = true
	}
	return v
}

func (v *sharedView) CanSendFlit(vc int) bool {
	if vc < 0 || vc >= len(v.open) {
		return false
	}
	return v.sharedFree > 0 || v.resFree[vc]
}

func (v *sharedView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without shared credit on vc %d", f.VC))
	}
	if v.sharedFree > 0 {
		v.sharedFree--
	} else {
		v.resFree[f.VC] = false
	}
	v.held[f.VC]++
	if f.IsTail() {
		v.open[f.VC] = false
	}
}

func (v *sharedView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.open) || v.held[c.VC] == 0 {
		//vichar:invariant a credit for a VC with no resident flits means double-crediting — pool accounting corruption
		panic(fmt.Sprintf("router: stray shared credit on vc %d", c.VC))
	}
	v.held[c.VC]--
	// Refill the queue's reservation before the shared pool so the
	// queue always keeps its guaranteed slot.
	if !v.resFree[c.VC] {
		v.resFree[c.VC] = true
	} else {
		v.sharedFree++
		if v.sharedFree > v.slots-len(v.open) {
			//vichar:invariant free count exceeding unreserved capacity means a leaked reservation or double credit
			panic("router: shared credit overflow")
		}
	}
}

func (v *sharedView) vcRange(escape bool) (lo, hi int) {
	if escape {
		return v.escBase, len(v.open)
	}
	return 0, v.escBase
}

func (v *sharedView) HasFreeVC(escape bool) bool {
	lo, hi := v.vcRange(escape)
	for vc := lo; vc < hi; vc++ {
		if !v.open[vc] {
			return true
		}
	}
	return false
}

func (v *sharedView) AllocVC(escape bool) (int, bool) {
	lo, hi := v.vcRange(escape)
	n := hi - lo
	if n <= 0 {
		return -1, false
	}
	for i := 0; i < n; i++ {
		vc := lo + (v.rr+i)%n
		if !v.open[vc] {
			v.rr = (vc - lo + 1) % n
			v.open[vc] = true
			return vc, true
		}
	}
	return -1, false
}

// GrantableVC returns a grantable VC of the class, scanning
// round-robin from hint, without claiming it.
func (v *sharedView) GrantableVC(escape bool, hint int) int {
	lo, hi := v.vcRange(escape)
	n := hi - lo
	if n <= 0 {
		return -1
	}
	if hint < 0 {
		hint = 0
	}
	for i := 0; i < n; i++ {
		vc := lo + (hint+i)%n
		if !v.open[vc] {
			return vc
		}
	}
	return -1
}

// ClaimVC marks vc granted to a new packet.
func (v *sharedView) ClaimVC(vc int) {
	if vc < 0 || vc >= len(v.open) || v.open[vc] {
		//vichar:invariant VA stage 2 claims only VCs stage 1 reported grantable within the same cycle
		panic(fmt.Sprintf("router: claim of ungrantable vc %d", vc))
	}
	v.open[vc] = true
}

func (v *sharedView) FreeSlots() int { return v.sharedFree }

func (v *sharedView) OutstandingFlits() int {
	n := 0
	for _, h := range v.held {
		n += h
	}
	return n
}

func (v *sharedView) OutstandingVCs() int {
	n := 0
	for _, o := range v.open {
		if o {
			n++
		}
	}
	return n
}

// vicharView mirrors a ViChaR input port: a shared slot pool plus the
// Token (VC) Dispenser. This is where the paper's per-output-port UCL
// modules (Token Dispenser + VC Availability Tracker) live.
//
// Every dispensed token carries a one-slot reservation, so an in-use
// VC can always land at least one flit in the UBS even when the
// shared pool is exhausted — the provision that makes the paper's
// "vk single-slot VCs" extreme (Figure 5) live, and that prevents
// hold-and-wait deadlock through the shared storage: without it, a
// pool full of packets waiting for tokens held by packets whose flits
// cannot enter the pool wedges permanently. Because the dispenser has
// exactly as many tokens as the UBS has slots, reservations can never
// oversubscribe the pool.
//
// The reservation is parked only while the VC has no flit resident
// downstream: a resident flit guarantees the VC's progress by itself
// (it drains along the routing function's acyclic chain, and its
// departure credit re-parks the reservation if it was the last).
// Maintained invariant for every granted VC: reservation parked OR at
// least one flit resident. This keeps busy VCs from idling buffer
// capacity while preserving the deadlock-freedom guarantee.
type vicharView struct {
	slots      int
	sharedFree int
	dispenser  *core.Dispenser
	resFree    []bool // per VC: reservation available (token outstanding)
	granted    []bool // per VC: token outstanding
	held       []int  // per VC: flits resident downstream
}

func newViCharView(a *soa.Arena, slots, vcs, escape int) *vicharView {
	return &vicharView{
		slots:      slots,
		sharedFree: slots,
		dispenser:  core.NewDispenserIn(a, vcs, escape),
		resFree:    a.TakeBools(vcs),
		granted:    a.TakeBools(vcs),
		held:       a.TakeInts(vcs),
	}
}

func (v *vicharView) CanSendFlit(vc int) bool {
	if vc < 0 || vc >= len(v.granted) {
		return false
	}
	return v.sharedFree > 0 || (v.granted[vc] && v.resFree[vc])
}

func (v *vicharView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without UBS credit on vc %d", f.VC))
	}
	if v.sharedFree > 0 {
		v.sharedFree--
	} else {
		v.resFree[f.VC] = false
	}
	v.held[f.VC]++
	// A resident flit carries the VC's progress guarantee; unpark the
	// reservation while it does.
	if v.resFree[f.VC] {
		v.resFree[f.VC] = false
		v.sharedFree++
	}
}

func (v *vicharView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.granted) || v.held[c.VC] == 0 {
		//vichar:invariant a credit for an ungranted or empty VC means Token Dispenser / UBS bookkeeping divergence
		panic(fmt.Sprintf("router: stray UBS credit on vc %d", c.VC))
	}
	v.held[c.VC]--
	switch {
	case c.ReleaseVC:
		if v.held[c.VC] != 0 {
			//vichar:invariant tails depart last, so a release credit with residents means flit reordering or a lost credit
			panic(fmt.Sprintf("router: VC %d released with %d flits resident", c.VC, v.held[c.VC]))
		}
		// Tails depart last, so the reservation cannot be parked
		// here; the departing flit's slot returns to the pool.
		v.sharedFree++
		v.resFree[c.VC] = false
		v.granted[c.VC] = false
		v.dispenser.Return(c.VC)
	case v.held[c.VC] == 0:
		// Last resident flit left mid-packet: re-park the reservation
		// so the VC keeps its guaranteed landing slot.
		v.resFree[c.VC] = true
	default:
		v.sharedFree++
	}
	if v.sharedFree > v.slots {
		//vichar:invariant free slots exceeding pool capacity means a slot was credited twice
		panic("router: UBS credit overflow")
	}
}

func (v *vicharView) HasFreeVC(escape bool) bool {
	if v.sharedFree == 0 {
		return false // no slot left to carry the token's reservation
	}
	if escape {
		return v.dispenser.FreeEscape() > 0
	}
	return v.dispenser.FreeNormal() > 0
}

// AllocVC grants the next token and moves one slot from the shared
// pool into the new VC's reservation.
func (v *vicharView) AllocVC(escape bool) (int, bool) {
	if v.sharedFree == 0 {
		return -1, false
	}
	vc, ok := v.dispenser.Grant(escape)
	if !ok {
		return -1, false
	}
	v.sharedFree--
	v.resFree[vc] = true
	v.granted[vc] = true
	return vc, true
}

func (v *vicharView) FreeSlots() int { return v.sharedFree }

func (v *vicharView) OutstandingFlits() int {
	n := 0
	for _, h := range v.held {
		n += h
	}
	return n
}

func (v *vicharView) OutstandingVCs() int { return v.dispenser.InUse() }

// sinkView models the processing element at the end of a local
// ejection port: it consumes one flit per cycle with effectively
// infinite buffering, so it always has credit and a VC.
type sinkView struct{ outstanding int }

// NewSinkView returns the ejection-side credit view.
func NewSinkView() CreditView { return &sinkView{} }

func (v *sinkView) CanSendFlit(vc int) bool { return true }

func (v *sinkView) OnSend(f *flit.Flit) {
	if f.IsHead() {
		v.outstanding++
	}
	if f.IsTail() {
		v.outstanding--
	}
}

func (v *sinkView) OnCredit(c flit.Credit)          {}
func (v *sinkView) HasFreeVC(escape bool) bool      { return true }
func (v *sinkView) AllocVC(escape bool) (int, bool) { return 0, true }
func (v *sinkView) FreeSlots() int                  { return 1 << 20 }
func (v *sinkView) OutstandingVCs() int             { return v.outstanding }

// OutstandingFlits is always zero at the sink: the processing element
// consumes flits immediately and sends no credits back.
func (v *sinkView) OutstandingFlits() int { return 0 }

// GrantableVC always offers VC 0: the processing element consumes
// flits of any number of interleaved packets.
func (v *sinkView) GrantableVC(escape bool, hint int) int { return 0 }

// ClaimVC is a no-op at the sink.
func (v *sinkView) ClaimVC(vc int) {}

var (
	_ CreditView = (*genericView)(nil)
	_ CreditView = (*sharedView)(nil)
	_ CreditView = (*vicharView)(nil)
	_ CreditView = (*sinkView)(nil)
)
