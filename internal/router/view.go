package router

import (
	"fmt"

	"vichar/internal/config"
	"vichar/internal/core"
	"vichar/internal/flit"
	"vichar/internal/soa"
)

// CreditView is the upstream mirror of a downstream input port's
// buffer state, maintained at each router output port (and at each
// network interface for the local injection port). It answers the
// two questions flow control asks: can one more flit be sent on a
// given VC (slot credit), and can a new packet be granted a VC (VC
// availability) — for ViChaR, the latter is the Token Dispenser.
type CreditView interface {
	// CanSendFlit reports whether a flit may be sent on vc this cycle
	// (a downstream slot is available to it).
	CanSendFlit(vc int) bool
	// OnSend debits the view for a departing flit.
	OnSend(f *flit.Flit)
	// OnCredit credits the view for a downstream departure.
	OnCredit(c flit.Credit)
	// HasFreeVC reports whether a VC of the given kind (escape or
	// regular) could be granted to a new packet of class 0 this cycle.
	HasFreeVC(escape bool) bool
	// AllocVC grants a VC of the given kind to a new class-0 packet.
	// The caller must route all the packet's flits onto the returned
	// VC.
	AllocVC(escape bool) (vc int, ok bool)
	// HasFreeVCIn and AllocVCIn are the class-aware variants the VC
	// allocator uses: each VC class (request, response) owns a disjoint
	// contiguous chunk of the regular and escape VC ID ranges, so a
	// grant for one class can never consume a channel the other class
	// depends on. With one class (every non-transaction run) they are
	// identical to HasFreeVC/AllocVC.
	HasFreeVCIn(class int, escape bool) bool
	AllocVCIn(class int, escape bool) (vc int, ok bool)
	// FreeSlots returns the downstream slots currently available to
	// new flits (summed over VCs for partitioned buffers); used by
	// adaptive routing to score candidate outputs.
	FreeSlots() int
	// OutstandingVCs returns the number of VCs currently granted and
	// not yet released.
	OutstandingVCs() int
	// OutstandingFlits returns the view's debit: flits sent minus
	// credits received. The invariant auditor balances it against the
	// link's in-flight flits, the downstream occupancy and the
	// in-flight credits.
	OutstandingFlits() int
}

// classSpan splits the VC ID range [lo, hi) into classes contiguous
// chunks and returns chunk class; earlier chunks absorb any
// remainder. With one class the range is returned unchanged, so every
// non-transaction configuration keeps today's allocation behavior
// bit-for-bit.
func classSpan(lo, hi, classes, class int) (int, int) {
	n := hi - lo
	if classes <= 1 || n <= 0 {
		return lo, hi
	}
	size, rem := n/classes, n%classes
	start := lo + class*size + min(class, rem)
	end := start + size
	if class < rem {
		end++
	}
	return start, end
}

// classOfVC returns the class whose regular or escape chunk contains
// vc, given the port's VC layout ([0, escBase) regular, [escBase,
// total) escape).
func classOfVC(vc, escBase, total, classes int) int {
	if classes <= 1 {
		return 0
	}
	for c := 0; c < classes; c++ {
		if lo, hi := classSpan(0, escBase, classes, c); vc >= lo && vc < hi {
			return c
		}
		if lo, hi := classSpan(escBase, total, classes, c); vc >= lo && vc < hi {
			return c
		}
	}
	return 0
}

// NewCreditView builds the view matching the configuration's buffer
// architecture, mirroring one downstream input port.
func NewCreditView(cfg *config.Config) CreditView { return NewCreditViewIn(nil, cfg) }

// NewCreditViewIn is NewCreditView drawing the view's per-VC counters
// and flags from the network arena (nil-arena safe), so the credit
// state the tick path debits sits beside the rest of the router's hot
// state (DESIGN.md §14).
func NewCreditViewIn(a *Arena, cfg *config.Config) CreditView {
	escape := 0
	if cfg.NeedsEscape() {
		escape = cfg.EscapeVCs
	}
	classes := cfg.VCClasses()
	switch cfg.Arch {
	case config.Generic:
		return newGenericView(a.Soa(), cfg.VCs, cfg.VCDepth, escape, cfg.AtomicVCAlloc, classes)
	case config.ViChaR:
		return newViCharView(a.Soa(), cfg.BufferSlots, cfg.MaxVCs(), escape, classes)
	case config.DAMQ, config.FCCB:
		return newSharedView(a.Soa(), cfg.VCs, cfg.BufferSlots, escape, classes)
	default:
		panic(fmt.Sprintf("router: unknown buffer architecture %v", cfg.Arch))
	}
}

// genericView mirrors a statically partitioned buffer: one private
// credit counter per VC plus per-VC allocation state. With atomic
// allocation a VC is re-grantable only when fully drained; otherwise
// packets may queue back-to-back within the FIFO.
type genericView struct {
	depth   int
	credits []int
	open    []bool // a packet holds the VC and its tail has not been sent
	escBase int    // first escape VC ID; len(credits) when no escape set
	atomic  bool
	classes int // VC classes partitioning both ID ranges (1 = unpartitioned)
	rr      int // round-robin pointer for AllocVC
}

func newGenericView(a *soa.Arena, vcs, depth, escape int, atomic bool, classes int) *genericView {
	v := &genericView{
		depth:   depth,
		credits: a.TakeInts(vcs),
		open:    a.TakeBools(vcs),
		escBase: vcs - escape,
		atomic:  atomic,
		classes: classes,
	}
	for i := range v.credits {
		v.credits[i] = depth
	}
	return v
}

func (v *genericView) CanSendFlit(vc int) bool {
	return vc >= 0 && vc < len(v.credits) && v.credits[vc] > 0
}

func (v *genericView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without credit on vc %d", f.VC))
	}
	v.credits[f.VC]--
	if f.IsTail() {
		v.open[f.VC] = false
	}
}

func (v *genericView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.credits) {
		//vichar:invariant a credit naming a VC the view does not mirror means the link is miswired
		panic(fmt.Sprintf("router: credit for unknown vc %d", c.VC))
	}
	v.credits[c.VC]++
	if v.credits[c.VC] > v.depth {
		//vichar:invariant more credits than depth means a duplicated or spurious credit upstream
		panic(fmt.Sprintf("router: credit overflow on vc %d", c.VC))
	}
}

// grantable reports whether the VC may be given to a new packet.
func (v *genericView) grantable(vc int) bool {
	if v.open[vc] {
		return false
	}
	if v.atomic {
		return v.credits[vc] == v.depth
	}
	return true
}

func (v *genericView) vcRange(class int, escape bool) (lo, hi int) {
	if escape {
		return classSpan(v.escBase, len(v.credits), v.classes, class)
	}
	return classSpan(0, v.escBase, v.classes, class)
}

func (v *genericView) HasFreeVC(escape bool) bool { return v.HasFreeVCIn(0, escape) }

func (v *genericView) HasFreeVCIn(class int, escape bool) bool {
	lo, hi := v.vcRange(class, escape)
	for vc := lo; vc < hi; vc++ {
		if v.grantable(vc) {
			return true
		}
	}
	return false
}

func (v *genericView) AllocVC(escape bool) (int, bool) { return v.AllocVCIn(0, escape) }

func (v *genericView) AllocVCIn(class int, escape bool) (int, bool) {
	lo, hi := v.vcRange(class, escape)
	n := hi - lo
	if n <= 0 {
		return -1, false
	}
	for i := 0; i < n; i++ {
		vc := lo + (v.rr+i)%n
		if v.grantable(vc) {
			v.rr = (vc - lo + 1) % n
			v.open[vc] = true
			return vc, true
		}
	}
	return -1, false
}

// GrantableVC returns a grantable class-0 VC of the kind, scanning
// round-robin from hint, without claiming it (generic VA stage 1).
func (v *genericView) GrantableVC(escape bool, hint int) int {
	return v.GrantableVCIn(0, escape, hint)
}

// GrantableVCIn is GrantableVC restricted to the class's VC chunk.
func (v *genericView) GrantableVCIn(class int, escape bool, hint int) int {
	lo, hi := v.vcRange(class, escape)
	n := hi - lo
	if n <= 0 {
		return -1
	}
	if hint < 0 {
		hint = 0
	}
	for i := 0; i < n; i++ {
		vc := lo + (hint+i)%n
		if v.grantable(vc) {
			return vc
		}
	}
	return -1
}

// ClaimVC marks vc granted to a new packet (generic VA stage 2).
func (v *genericView) ClaimVC(vc int) {
	if vc < 0 || vc >= len(v.open) || !v.grantable(vc) {
		//vichar:invariant VA stage 2 claims only VCs stage 1 reported grantable within the same cycle
		panic(fmt.Sprintf("router: claim of ungrantable vc %d", vc))
	}
	v.open[vc] = true
}

// ClaimVCIn is ClaimVC; the class is implied by the VC's chunk.
func (v *genericView) ClaimVCIn(class, vc int) { v.ClaimVC(vc) }

func (v *genericView) FreeSlots() int {
	n := 0
	for _, c := range v.credits {
		n += c
	}
	return n
}

func (v *genericView) OutstandingFlits() int {
	n := 0
	for _, c := range v.credits {
		n += v.depth - c
	}
	return n
}

func (v *genericView) OutstandingVCs() int {
	n := 0
	for vc := range v.open {
		if v.open[vc] || v.credits[vc] < v.depth {
			n++
		}
	}
	return n
}

// sharedView mirrors a DAMQ or FC-CB input port: a shared slot pool
// with a fixed set of VCs; packets may queue back-to-back within a
// queue (their head-of-line weakness).
//
// One slot is permanently reserved per queue — the classical DAMQ
// provision — so every queue can always accept at least one flit.
// Without it, a pool filled by packets waiting for resources held by
// packets whose flits cannot enter the pool deadlocks (hold-and-wait
// through the shared storage, independent of routing acyclicity).
type sharedView struct {
	slots      int
	sharedFree int    // pool slots beyond the per-queue reservations
	resFree    []bool // per queue: reserved slot currently empty
	held       []int  // per queue: flits resident downstream
	open       []bool
	escBase    int
	classes    int // VC classes partitioning both ID ranges (1 = unpartitioned)
	rr         int
}

func newSharedView(a *soa.Arena, vcs, slots, escape, classes int) *sharedView {
	if slots < vcs {
		panic(fmt.Sprintf("router: shared view needs a reservable slot per VC, got %d slots for %d VCs", slots, vcs))
	}
	v := &sharedView{
		slots:      slots,
		sharedFree: slots - vcs,
		resFree:    a.TakeBools(vcs),
		held:       a.TakeInts(vcs),
		open:       a.TakeBools(vcs),
		escBase:    vcs - escape,
		classes:    classes,
	}
	for i := range v.resFree {
		v.resFree[i] = true
	}
	return v
}

func (v *sharedView) CanSendFlit(vc int) bool {
	if vc < 0 || vc >= len(v.open) {
		return false
	}
	return v.sharedFree > 0 || v.resFree[vc]
}

func (v *sharedView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without shared credit on vc %d", f.VC))
	}
	if v.sharedFree > 0 {
		v.sharedFree--
	} else {
		v.resFree[f.VC] = false
	}
	v.held[f.VC]++
	if f.IsTail() {
		v.open[f.VC] = false
	}
}

func (v *sharedView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.open) || v.held[c.VC] == 0 {
		//vichar:invariant a credit for a VC with no resident flits means double-crediting — pool accounting corruption
		panic(fmt.Sprintf("router: stray shared credit on vc %d", c.VC))
	}
	v.held[c.VC]--
	// Refill the queue's reservation before the shared pool so the
	// queue always keeps its guaranteed slot.
	if !v.resFree[c.VC] {
		v.resFree[c.VC] = true
	} else {
		v.sharedFree++
		if v.sharedFree > v.slots-len(v.open) {
			//vichar:invariant free count exceeding unreserved capacity means a leaked reservation or double credit
			panic("router: shared credit overflow")
		}
	}
}

func (v *sharedView) vcRange(class int, escape bool) (lo, hi int) {
	if escape {
		return classSpan(v.escBase, len(v.open), v.classes, class)
	}
	return classSpan(0, v.escBase, v.classes, class)
}

func (v *sharedView) HasFreeVC(escape bool) bool { return v.HasFreeVCIn(0, escape) }

func (v *sharedView) HasFreeVCIn(class int, escape bool) bool {
	lo, hi := v.vcRange(class, escape)
	for vc := lo; vc < hi; vc++ {
		if !v.open[vc] {
			return true
		}
	}
	return false
}

func (v *sharedView) AllocVC(escape bool) (int, bool) { return v.AllocVCIn(0, escape) }

func (v *sharedView) AllocVCIn(class int, escape bool) (int, bool) {
	lo, hi := v.vcRange(class, escape)
	n := hi - lo
	if n <= 0 {
		return -1, false
	}
	for i := 0; i < n; i++ {
		vc := lo + (v.rr+i)%n
		if !v.open[vc] {
			v.rr = (vc - lo + 1) % n
			v.open[vc] = true
			return vc, true
		}
	}
	return -1, false
}

// GrantableVC returns a grantable class-0 VC of the kind, scanning
// round-robin from hint, without claiming it.
func (v *sharedView) GrantableVC(escape bool, hint int) int {
	return v.GrantableVCIn(0, escape, hint)
}

// GrantableVCIn is GrantableVC restricted to the class's VC chunk.
func (v *sharedView) GrantableVCIn(class int, escape bool, hint int) int {
	lo, hi := v.vcRange(class, escape)
	n := hi - lo
	if n <= 0 {
		return -1
	}
	if hint < 0 {
		hint = 0
	}
	for i := 0; i < n; i++ {
		vc := lo + (hint+i)%n
		if !v.open[vc] {
			return vc
		}
	}
	return -1
}

// ClaimVC marks vc granted to a new packet.
func (v *sharedView) ClaimVC(vc int) {
	if vc < 0 || vc >= len(v.open) || v.open[vc] {
		//vichar:invariant VA stage 2 claims only VCs stage 1 reported grantable within the same cycle
		panic(fmt.Sprintf("router: claim of ungrantable vc %d", vc))
	}
	v.open[vc] = true
}

// ClaimVCIn is ClaimVC; the class is implied by the VC's chunk.
func (v *sharedView) ClaimVCIn(class, vc int) { v.ClaimVC(vc) }

func (v *sharedView) FreeSlots() int { return v.sharedFree }

func (v *sharedView) OutstandingFlits() int {
	n := 0
	for _, h := range v.held {
		n += h
	}
	return n
}

func (v *sharedView) OutstandingVCs() int {
	n := 0
	for _, o := range v.open {
		if o {
			n++
		}
	}
	return n
}

// vicharView mirrors a ViChaR input port: a shared slot pool plus the
// Token (VC) Dispenser. This is where the paper's per-output-port UCL
// modules (Token Dispenser + VC Availability Tracker) live.
//
// Every dispensed token carries a one-slot reservation, so an in-use
// VC can always land at least one flit in the UBS even when the
// shared pool is exhausted — the provision that makes the paper's
// "vk single-slot VCs" extreme (Figure 5) live, and that prevents
// hold-and-wait deadlock through the shared storage: without it, a
// pool full of packets waiting for tokens held by packets whose flits
// cannot enter the pool wedges permanently. Because the dispenser has
// exactly as many tokens as the UBS has slots, reservations can never
// oversubscribe the pool.
//
// The reservation is parked only while the VC has no flit resident
// downstream: a resident flit guarantees the VC's progress by itself
// (it drains along the routing function's acyclic chain, and its
// departure credit re-parks the reservation if it was the last).
// Maintained invariant for every granted VC: reservation parked OR at
// least one flit resident. This keeps busy VCs from idling buffer
// capacity while preserving the deadlock-freedom guarantee.
// With VC classes (classes > 1), the dispenser's regular and escape
// ID ranges are chunked per class and grants come from the requesting
// class's chunk only (Dispenser.GrantIn), and one pool slot per class
// is carved out as that class's grant reserve (classRes): a class can
// take a token — and with it the token's landing-slot reservation —
// even when the shared pool has been exhausted by the other class.
// Together these make the response class's progress independent of
// request-class congestion, which is what breaks the request/response
// protocol-deadlock cycle through the unified storage. Slots freed by
// a VC refill its own class's reserve before the shared pool.
type vicharView struct {
	slots      int
	sharedFree int
	dispenser  *core.Dispenser
	resFree    []bool // per VC: reservation available (token outstanding)
	granted    []bool // per VC: token outstanding
	held       []int  // per VC: flits resident downstream
	escBase    int    // first escape VC ID; == len(granted) when no escape set
	classes    int
	classRes   []bool // per class: grant-reserve slot currently free; nil when classes == 1
}

func newViCharView(a *soa.Arena, slots, vcs, escape, classes int) *vicharView {
	v := &vicharView{
		slots:      slots,
		sharedFree: slots,
		dispenser:  core.NewDispenserIn(a, vcs, escape),
		resFree:    a.TakeBools(vcs),
		granted:    a.TakeBools(vcs),
		held:       a.TakeInts(vcs),
		escBase:    vcs - escape,
		classes:    classes,
	}
	if classes > 1 {
		if slots <= classes {
			panic(fmt.Sprintf("router: class-partitioned UBS needs more slots (%d) than classes (%d)", slots, classes))
		}
		v.sharedFree = slots - classes
		v.classRes = a.TakeBools(classes)
		for c := range v.classRes {
			v.classRes[c] = true
		}
	}
	return v
}

// classOf returns the VC class that owns vc's ID chunk.
func (v *vicharView) classOf(vc int) int {
	return classOfVC(vc, v.escBase, len(v.granted), v.classes)
}

// freeSlot returns the slot a departing flit (or unparked reservation)
// of vc just vacated: the VC's class reserve refills first so every
// class keeps its token-grant guarantee, then the shared pool.
func (v *vicharView) freeSlot(vc int) {
	if v.classRes != nil {
		if c := v.classOf(vc); !v.classRes[c] {
			v.classRes[c] = true
			return
		}
	}
	v.sharedFree++
}

// grantSlotFree reports whether a token grant for the class could
// carry its one-slot reservation.
func (v *vicharView) grantSlotFree(class int) bool {
	return v.sharedFree > 0 || (v.classRes != nil && v.classRes[class])
}

func (v *vicharView) CanSendFlit(vc int) bool {
	if vc < 0 || vc >= len(v.granted) {
		return false
	}
	return v.sharedFree > 0 || (v.granted[vc] && v.resFree[vc])
}

func (v *vicharView) OnSend(f *flit.Flit) {
	if !v.CanSendFlit(f.VC) {
		//vichar:invariant SA checks CanSendFlit the same cycle; a creditless send is a flow-control conservation bug
		panic(fmt.Sprintf("router: send without UBS credit on vc %d", f.VC))
	}
	if v.sharedFree > 0 {
		v.sharedFree--
	} else {
		v.resFree[f.VC] = false
	}
	v.held[f.VC]++
	// A resident flit carries the VC's progress guarantee; unpark the
	// reservation while it does.
	if v.resFree[f.VC] {
		v.resFree[f.VC] = false
		v.freeSlot(f.VC)
	}
}

func (v *vicharView) OnCredit(c flit.Credit) {
	if c.VC < 0 || c.VC >= len(v.granted) || v.held[c.VC] == 0 {
		//vichar:invariant a credit for an ungranted or empty VC means Token Dispenser / UBS bookkeeping divergence
		panic(fmt.Sprintf("router: stray UBS credit on vc %d", c.VC))
	}
	v.held[c.VC]--
	switch {
	case c.ReleaseVC:
		if v.held[c.VC] != 0 {
			//vichar:invariant tails depart last, so a release credit with residents means flit reordering or a lost credit
			panic(fmt.Sprintf("router: VC %d released with %d flits resident", c.VC, v.held[c.VC]))
		}
		// Tails depart last, so the reservation cannot be parked
		// here; the departing flit's slot returns to the pool.
		v.resFree[c.VC] = false
		v.granted[c.VC] = false
		v.dispenser.Return(c.VC)
		v.freeSlot(c.VC)
	case v.held[c.VC] == 0:
		// Last resident flit left mid-packet: re-park the reservation
		// so the VC keeps its guaranteed landing slot.
		v.resFree[c.VC] = true
	default:
		v.freeSlot(c.VC)
	}
	limit := v.slots
	if v.classRes != nil {
		limit -= len(v.classRes)
	}
	if v.sharedFree > limit {
		//vichar:invariant free slots exceeding pool capacity means a slot was credited twice
		panic("router: UBS credit overflow")
	}
}

// tokenRange returns the class's chunk of the dispenser's global VC
// ID range for the chosen token kind.
func (v *vicharView) tokenRange(class int, escape bool) (lo, hi int) {
	if escape {
		return classSpan(v.escBase, len(v.granted), v.classes, class)
	}
	return classSpan(0, v.escBase, v.classes, class)
}

func (v *vicharView) HasFreeVC(escape bool) bool { return v.HasFreeVCIn(0, escape) }

func (v *vicharView) HasFreeVCIn(class int, escape bool) bool {
	if !v.grantSlotFree(class) {
		return false // no slot left to carry the token's reservation
	}
	lo, hi := v.tokenRange(class, escape)
	return v.dispenser.FreeIn(escape, lo, hi) > 0
}

// AllocVC grants the next token and moves one slot from the shared
// pool (or the class's grant reserve) into the new VC's reservation.
func (v *vicharView) AllocVC(escape bool) (int, bool) { return v.AllocVCIn(0, escape) }

func (v *vicharView) AllocVCIn(class int, escape bool) (int, bool) {
	if !v.grantSlotFree(class) {
		return -1, false
	}
	lo, hi := v.tokenRange(class, escape)
	vc, ok := v.dispenser.GrantIn(escape, lo, hi)
	if !ok {
		return -1, false
	}
	if v.sharedFree > 0 {
		v.sharedFree--
	} else {
		v.classRes[class] = false
	}
	v.resFree[vc] = true
	v.granted[vc] = true
	return vc, true
}

func (v *vicharView) FreeSlots() int { return v.sharedFree }

func (v *vicharView) OutstandingFlits() int {
	n := 0
	for _, h := range v.held {
		n += h
	}
	return n
}

func (v *vicharView) OutstandingVCs() int { return v.dispenser.InUse() }

// Admission is the per-class back-pressure a network-interface
// endpoint exerts on its ejection port. Peek reports whether a new
// packet of the class may be granted ejection this cycle; Admit
// reserves the endpoint resource that grant will occupy. Both run
// inside the owning router's compute phase and must touch only state
// owned by that node (the memory-controller service queue of
// internal/txn), reading deterministically from the committed cycle
// state.
type Admission interface {
	Peek(class int) bool
	Admit(class int)
}

// sinkView models the processing element at the end of a local
// ejection port: it consumes one flit per cycle with effectively
// infinite buffering, so it always has credit — and, unless an
// Admission gate is installed, always has a VC.
type sinkView struct {
	outstanding int
	admit       Admission
}

// NewSinkView returns the ejection-side credit view.
func NewSinkView() CreditView { return &sinkView{} }

// NewSinkViewWith returns an ejection-side credit view whose VC
// grants are gated by the admission policy (nil behaves like
// NewSinkView). This is how a finite network-interface queue refuses
// ejection to a packet class — the real NIU buffer bound that makes
// protocol deadlock reachable.
func NewSinkViewWith(admit Admission) CreditView { return &sinkView{admit: admit} }

func (v *sinkView) CanSendFlit(vc int) bool { return true }

func (v *sinkView) OnSend(f *flit.Flit) {
	if f.IsHead() {
		v.outstanding++
	}
	if f.IsTail() {
		v.outstanding--
	}
}

func (v *sinkView) OnCredit(c flit.Credit)          {}
func (v *sinkView) HasFreeVC(escape bool) bool      { return v.HasFreeVCIn(0, escape) }
func (v *sinkView) AllocVC(escape bool) (int, bool) { return v.AllocVCIn(0, escape) }

func (v *sinkView) HasFreeVCIn(class int, escape bool) bool {
	return v.admit == nil || v.admit.Peek(class)
}

func (v *sinkView) AllocVCIn(class int, escape bool) (int, bool) {
	if v.admit != nil {
		if !v.admit.Peek(class) {
			return -1, false
		}
		v.admit.Admit(class)
	}
	return 0, true
}

func (v *sinkView) FreeSlots() int      { return 1 << 20 }
func (v *sinkView) OutstandingVCs() int { return v.outstanding }

// OutstandingFlits is always zero at the sink: the processing element
// consumes flits immediately and sends no credits back.
func (v *sinkView) OutstandingFlits() int { return 0 }

// GrantableVC always offers VC 0: the processing element consumes
// flits of any number of interleaved packets.
func (v *sinkView) GrantableVC(escape bool, hint int) int { return v.GrantableVCIn(0, escape, hint) }

// GrantableVCIn offers VC 0 unless the admission gate refuses the
// class this cycle.
func (v *sinkView) GrantableVCIn(class int, escape bool, hint int) int {
	if v.admit != nil && !v.admit.Peek(class) {
		return -1
	}
	return 0
}

// ClaimVC is a no-op at the sink.
func (v *sinkView) ClaimVC(vc int) {}

// ClaimVCIn reserves the admission slot GrantableVCIn peeked.
func (v *sinkView) ClaimVCIn(class, vc int) {
	if v.admit != nil {
		v.admit.Admit(class)
	}
}

var (
	_ CreditView = (*genericView)(nil)
	_ CreditView = (*sharedView)(nil)
	_ CreditView = (*vicharView)(nil)
	_ CreditView = (*sinkView)(nil)
)
