package router

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/topology"
)

// stubFlitConn records sent flits with their send cycle.
type stubFlitConn struct {
	sent []struct {
		f  *flit.Flit
		at int64
	}
}

func (s *stubFlitConn) SendFlit(f *flit.Flit, now int64) {
	s.sent = append(s.sent, struct {
		f  *flit.Flit
		at int64
	}{f, now})
}

// stubCreditConn records sent credits with their send cycle.
type stubCreditConn struct {
	sent []struct {
		c  flit.Credit
		at int64
	}
}

func (s *stubCreditConn) SendCredit(c flit.Credit, now int64) {
	s.sent = append(s.sent, struct {
		c  flit.Credit
		at int64
	}{c, now})
}

// harness wires one router with stub connections on every port.
type harness struct {
	r       *Router
	mesh    topology.Mesh
	flits   [5]*stubFlitConn
	credits [5]*stubCreditConn
}

func newHarness(cfg *config.Config, node int) *harness {
	mesh := topology.New(cfg.Width, cfg.Height)
	h := &harness{r: New(node, cfg, mesh), mesh: mesh}
	for p := 0; p < 5; p++ {
		h.flits[p] = &stubFlitConn{}
		h.credits[p] = &stubCreditConn{}
		var view CreditView
		if p == topology.Local {
			view = NewSinkView()
		} else {
			view = NewCreditView(cfg)
		}
		h.r.ConnectOutput(p, h.flits[p], view)
		h.r.ConnectInputCredit(p, h.credits[p])
	}
	return h
}

// injectPacket delivers a whole packet into an input port, one flit
// per cycle starting at cycle start, ticking the router each cycle,
// and continues ticking until cycle end.
func (h *harness) runPacket(t *testing.T, inPort, vc, dst int, start, end int64) *flit.Packet {
	t.Helper()
	p := &flit.Packet{ID: 1, Dst: dst, Size: 4}
	fs := flit.MakeFlits(p)
	for now := start; now <= end; now++ {
		idx := int(now - start)
		if idx < len(fs) {
			fs[idx].VC = vc
			h.r.ReceiveFlit(inPort, fs[idx], now)
		}
		h.r.Tick(now)
	}
	return p
}

func genericCfg() *config.Config {
	cfg := config.Default()
	return &cfg
}

func vicharCfg() *config.Config {
	cfg := config.Default()
	cfg.Arch = config.ViChaR
	return &cfg
}

// The 4-stage pipeline: a head arriving at cycle t must win SA at
// t+2 (RC at t, VA at t+1, SA at t+2) and leave on the link then.
func TestPipelineTiming(t *testing.T) {
	for _, cfg := range []*config.Config{genericCfg(), vicharCfg()} {
		cfg := cfg
		t.Run(cfg.Arch.String(), func(t *testing.T) {
			// Router at (1,1) on the 8x8 mesh; destination due East.
			node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
			h := newHarness(cfg, node)
			dst := h.mesh.Node(5, 1)

			h.runPacket(t, topology.West, 0, dst, 1, 10)

			out := h.flits[topology.East].sent
			if len(out) != 4 {
				t.Fatalf("forwarded %d flits, want 4", len(out))
			}
			if out[0].at != 3 {
				t.Fatalf("head left at cycle %d, want 3 (arrive 1, RC 1, VA 2, SA 3)", out[0].at)
			}
			// Body flits follow at one per cycle.
			for i := 1; i < 4; i++ {
				if out[i].at != out[i-1].at+1 {
					t.Fatalf("flit %d left at %d, previous at %d", i, out[i].at, out[i-1].at)
				}
			}
			// All flits carry the same granted output VC.
			for i := 1; i < 4; i++ {
				if out[i].f.VC != out[0].f.VC {
					t.Fatalf("flit %d on vc %d, head on %d", i, out[i].f.VC, out[0].f.VC)
				}
			}
		})
	}
}

// Every forwarded flit returns exactly one upstream credit on the
// input VC it occupied, with the tail marked as a release.
func TestCreditsReturned(t *testing.T) {
	for _, cfg := range []*config.Config{genericCfg(), vicharCfg()} {
		cfg := cfg
		t.Run(cfg.Arch.String(), func(t *testing.T) {
			node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
			h := newHarness(cfg, node)
			h.runPacket(t, topology.West, 2, h.mesh.Node(5, 1), 1, 10)

			creds := h.credits[topology.West].sent
			if len(creds) != 4 {
				t.Fatalf("returned %d credits, want 4", len(creds))
			}
			for i, c := range creds {
				if c.c.VC != 2 {
					t.Fatalf("credit %d on vc %d, want 2", i, c.c.VC)
				}
				wantRelease := i == 3
				if c.c.ReleaseVC != wantRelease {
					t.Fatalf("credit %d release=%v", i, c.c.ReleaseVC)
				}
			}
		})
	}
}

// Ejection: a packet addressed to this node leaves through the local
// port.
func TestLocalEjection(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(2, 2)
	h := newHarness(cfg, node)
	h.runPacket(t, topology.North, 0, node, 1, 10)
	if len(h.flits[topology.Local].sent) != 4 {
		t.Fatalf("ejected %d flits, want 4", len(h.flits[topology.Local].sent))
	}
	for p := 0; p < 4; p++ {
		if len(h.flits[p].sent) != 0 {
			t.Fatalf("flits leaked out of port %s", topology.PortName(p))
		}
	}
}

// XY routing: the router must pick the dimension-ordered port.
func TestRouteSelection(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(3, 3)
	cases := []struct {
		dstX, dstY int
		port       int
	}{
		{6, 3, topology.East},
		{0, 3, topology.West},
		{3, 0, topology.North},
		{3, 6, topology.South},
		{6, 6, topology.East}, // X first
	}
	for _, c := range cases {
		h := newHarness(cfg, node)
		dst := h.mesh.Node(c.dstX, c.dstY)
		h.runPacket(t, topology.Local, 0, dst, 1, 10)
		if got := len(h.flits[c.port].sent); got != 4 {
			t.Errorf("dst (%d,%d): port %s carried %d flits, want 4",
				c.dstX, c.dstY, topology.PortName(c.port), got)
		}
	}
}

// Without downstream credit, nothing moves; restoring credit resumes.
func TestBackpressure(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	// Exhaust every VC of the East output (atomic allocation: claim
	// all 4 VCs).
	view := h.r.OutputView(topology.East)
	for i := 0; i < 4; i++ {
		if _, ok := view.AllocVC(false); !ok {
			t.Fatal("setup alloc failed")
		}
	}
	h.runPacket(t, topology.West, 0, h.mesh.Node(5, 1), 1, 20)
	if len(h.flits[topology.East].sent) != 0 {
		t.Fatal("flits moved without a granted VC")
	}
	// Release one VC (its phantom packet's tail "was sent") and
	// continue ticking; no slot credits moved, so none return.
	gv := view.(*genericView)
	gv.open[1] = false
	for now := int64(21); now <= 30; now++ {
		h.r.Tick(now)
	}
	if len(h.flits[topology.East].sent) != 4 {
		t.Fatalf("after credit restore %d flits moved, want 4", len(h.flits[topology.East].sent))
	}
}

// ViChaR grants at most one new VC per output port per cycle (the
// single Token Dispenser grant of Figure 7(b)).
func TestViCharOneGrantPerOutputPerCycle(t *testing.T) {
	cfg := vicharCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)

	// Two heads on different VCs of different input ports, both
	// wanting East.
	dst := h.mesh.Node(5, 1)
	p1 := &flit.Packet{ID: 1, Dst: dst, Size: 1}
	p2 := &flit.Packet{ID: 2, Dst: dst, Size: 1}
	f1 := flit.MakeFlits(p1)[0]
	f2 := flit.MakeFlits(p2)[0]
	f1.VC, f2.VC = 0, 1
	h.r.ReceiveFlit(topology.West, f1, 1)
	h.r.ReceiveFlit(topology.North, f2, 1)

	h.r.Tick(1) // RC both
	h.r.Tick(2) // VA: only one grant for East
	if got := h.r.OutputView(topology.East).OutstandingVCs(); got != 1 {
		t.Fatalf("%d VC grants in one cycle, want 1", got)
	}
	h.r.Tick(3) // VA grants the second
	if got := h.r.OutputView(topology.East).OutstandingVCs(); got != 2 {
		t.Fatalf("second grant missing: %d", got)
	}
}

// The deadlock-threshold escape path: a waiting packet under adaptive
// routing must re-channel onto the escape VC of the XY port.
func TestEscapeAfterThreshold(t *testing.T) {
	cfg := vicharCfg()
	cfg.Routing = config.MinimalAdaptive
	cfg.EscapeVCs = 1
	cfg.DeadlockThreshold = 5
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	dst := h.mesh.Node(5, 5) // SE: candidates are East and South

	// Drain all normal tokens of both candidate outputs.
	for _, p := range []int{topology.East, topology.South} {
		view := h.r.OutputView(p)
		for view.HasFreeVC(false) {
			view.AllocVC(false)
		}
	}

	p := &flit.Packet{ID: 1, Dst: dst, Size: 1}
	f := flit.MakeFlits(p)[0]
	f.VC = 0
	h.r.ReceiveFlit(topology.West, f, 1)
	for now := int64(1); now <= 20; now++ {
		h.r.Tick(now)
	}
	if !p.Escaped {
		t.Fatal("packet never escaped past the deadlock threshold")
	}
	out := h.flits[topology.East].sent // XY: East first
	if len(out) != 1 {
		t.Fatalf("escape packet not forwarded on the XY port (%d flits)", len(out))
	}
	// The granted VC must be the escape token (highest ID).
	if out[0].f.VC != cfg.BufferSlots-1 {
		t.Fatalf("escape flit on vc %d, want %d", out[0].f.VC, cfg.BufferSlots-1)
	}
}

// Activity counters reflect the four forwarded flits.
func TestCounters(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	h.runPacket(t, topology.West, 0, h.mesh.Node(5, 1), 1, 10)
	c := h.r.Counters
	if c.BufferWrites != 4 || c.BufferReads != 4 || c.XbarTraversals != 4 {
		t.Fatalf("flit counters wrong: %+v", c)
	}
	if c.VCGrants != 1 {
		t.Fatalf("VC grants %d, want 1", c.VCGrants)
	}
	if c.VAOps < 1 || c.SAOps < 4 {
		t.Fatalf("allocator ops implausible: %+v", c)
	}
}

// InUseVCsPerPort and Occupied see a buffered, waiting packet.
func TestOccupancyProbes(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	// Block East completely so the packet stays resident.
	view := h.r.OutputView(topology.East)
	for i := 0; i < 4; i++ {
		view.AllocVC(false)
	}
	h.runPacket(t, topology.West, 0, h.mesh.Node(5, 1), 1, 8)
	if h.r.Occupied() != 4 {
		t.Fatalf("occupied %d, want 4", h.r.Occupied())
	}
	if got := h.r.InUseVCsPerPort(); got != 1.0/5 {
		t.Fatalf("in-use VCs per port %.3f, want 0.2", got)
	}
	if h.r.TotalSlots() != 80 {
		t.Fatalf("total slots %d, want 80", h.r.TotalSlots())
	}
}

// A body flit at the head of an idle VC is a protocol violation and
// must panic loudly rather than corrupt state.
func TestBodyAtIdleVCPanics(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	f := &flit.Flit{Pkt: &flit.Packet{ID: 1, Dst: 0, Size: 4}, Type: flit.Body, Seq: 1, VC: 0}
	h.r.ReceiveFlit(topology.West, f, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("stray body flit did not panic")
		}
	}()
	h.r.Tick(1)
}

// Buffer overflow (a flow-control violation) must panic.
func TestReceiveOverflowPanics(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	for i := 0; i < 6; i++ {
		f := &flit.Flit{Pkt: &flit.Packet{ID: uint64(i), Dst: 9, Size: 1}, Type: flit.HeadTail, VC: 0}
		h.r.ReceiveFlit(topology.West, f, 1)
	}
}

// The speculative organization must move the head through VA and SA
// in the same cycle: it leaves at cycle 2 instead of 3.
func TestSpeculativePipelineTiming(t *testing.T) {
	for _, arch := range []config.BufferArch{config.Generic, config.ViChaR} {
		cfg := config.Default()
		cfg.Arch = arch
		cfg.Speculative = true
		node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
		h := newHarness(&cfg, node)
		h.runPacket(t, topology.West, 0, h.mesh.Node(5, 1), 1, 10)
		out := h.flits[topology.East].sent
		if len(out) != 4 {
			t.Fatalf("%v: forwarded %d flits", arch, len(out))
		}
		if out[0].at != 2 {
			t.Fatalf("%v: speculative head left at %d, want 2", arch, out[0].at)
		}
	}
}

// Head-of-line blocking, the paper's Figure 3 scenario, demonstrated
// deterministically: two packets share an FC-CB queue; the first is
// blocked, so the second — bound for a free output — cannot move.
// Under ViChaR each packet owns a VC, and the second proceeds.
func TestHeadOfLineBlocking(t *testing.T) {
	run := func(cfg *config.Config, vc2 int) (southFlits int) {
		node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
		h := newHarness(cfg, node)
		// Saturate every East VC so packets bound East stall in VA.
		east := h.r.OutputView(topology.East)
		for east.HasFreeVC(false) {
			east.AllocVC(false)
		}
		dstEast := h.mesh.Node(5, 1)
		dstSouth := h.mesh.Node(1, 5)
		p1 := &flit.Packet{ID: 1, Dst: dstEast, Size: 2}
		p2 := &flit.Packet{ID: 2, Dst: dstSouth, Size: 2}
		now := int64(1)
		for _, f := range flit.MakeFlits(p1) {
			f.VC = 0
			h.r.ReceiveFlit(topology.West, f, now)
			h.r.Tick(now)
			now++
		}
		for _, f := range flit.MakeFlits(p2) {
			f.VC = vc2
			h.r.ReceiveFlit(topology.West, f, now)
			h.r.Tick(now)
			now++
		}
		for ; now <= 30; now++ {
			h.r.Tick(now)
		}
		return len(h.flits[topology.South].sent)
	}

	// FC-CB: both packets in queue 0 — head-of-line blocking.
	fccb := config.Default()
	fccb.Arch = config.FCCB
	if got := run(&fccb, 0); got != 0 {
		t.Fatalf("FC-CB: blocked-behind packet moved %d flits", got)
	}
	// ViChaR: the second packet has its own VC and routes South.
	vic := config.Default()
	vic.Arch = config.ViChaR
	if got := run(&vic, 1); got != 2 {
		t.Fatalf("ViChaR: free packet moved %d flits, want 2", got)
	}
}

func TestReceiveCredit(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	view := h.r.OutputView(topology.East)
	vc, _ := view.AllocVC(false)
	h.r.OutputView(topology.East).OnSend(headFlit(vc))
	before := view.FreeSlots()
	h.r.ReceiveCredit(topology.East, flit.Credit{VC: vc})
	if view.FreeSlots() != before+1 {
		t.Fatal("credit not applied through ReceiveCredit")
	}
}

func TestAccessors(t *testing.T) {
	cfg := genericCfg()
	node := topology.New(cfg.Width, cfg.Height).Node(2, 1)
	h := newHarness(cfg, node)
	if h.r.ID() != node {
		t.Fatal("ID wrong")
	}
	if h.r.InputBuffer(0) == nil {
		t.Fatal("InputBuffer nil")
	}
	if s := h.r.DebugState(); s == "" {
		t.Fatal("DebugState empty")
	}
}

// Adaptive routing's VA prefers the candidate output with more free
// downstream slots.
func TestAdaptiveCreditScoring(t *testing.T) {
	cfg := vicharCfg()
	cfg.Routing = config.MinimalAdaptive
	cfg.EscapeVCs = 1
	node := topology.New(cfg.Width, cfg.Height).Node(1, 1)
	h := newHarness(cfg, node)
	dst := h.mesh.Node(5, 5) // SE: candidates East and South

	// Congest East: burn most of its slot credits.
	east := h.r.OutputView(topology.East)
	vc, _ := east.AllocVC(false)
	for i := 0; i < 10; i++ {
		f := headFlit(vc)
		east.OnSend(f)
	}

	p := &flit.Packet{ID: 1, Dst: dst, Size: 2}
	now := int64(1)
	for _, f := range flit.MakeFlits(p) {
		f.VC = 0
		h.r.ReceiveFlit(topology.West, f, now)
		h.r.Tick(now)
		now++
	}
	for ; now <= 10; now++ {
		h.r.Tick(now)
	}
	if len(h.flits[topology.South].sent) != 2 {
		t.Fatalf("adaptive VA did not prefer the uncongested South port (S=%d E=%d)",
			len(h.flits[topology.South].sent), len(h.flits[topology.East].sent))
	}
}
