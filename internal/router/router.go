// Package router implements the 4-stage pipelined virtual-channel
// router of the paper's evaluation platform: Routing Computation
// (RC), Virtual-channel Allocation (VA), Switch Allocation (SA) and
// crossbar traversal (ST), followed by a one-cycle link. Flow control
// is credit-based wormhole.
//
// The input buffer organization is pluggable (buffers.Buffer), which
// is how the same router hosts the generic, ViChaR, DAMQ and FC-CB
// schemes; the VA structure switches between the generic two-stage
// allocator of paper Figure 7(a) and ViChaR's input-port arbitration
// plus Token Dispenser of Figure 7(b).
package router

import (
	"fmt"
	"math/bits"

	"vichar/internal/arbiter"
	"vichar/internal/audit"
	"vichar/internal/buffers"
	"vichar/internal/config"
	"vichar/internal/core"
	"vichar/internal/faults"
	"vichar/internal/flit"
	"vichar/internal/metrics"
	"vichar/internal/routing"
	"vichar/internal/stats"
	"vichar/internal/topology"
)

// Pipeline latencies: a flit granted the switch at cycle t traverses
// the crossbar at t+1 and the link at t+2 (arriving downstream at
// t+2); a credit sent at t is visible upstream at t+1.
const (
	// FlitDelay is switch traversal plus link traversal in cycles.
	FlitDelay = 2
	// CreditDelay is the credit return latency in cycles.
	CreditDelay = 1
)

// FlitSender carries flits downstream; implemented by network links.
type FlitSender interface {
	SendFlit(f *flit.Flit, now int64)
}

// CreditSender carries credits upstream; implemented by network
// links.
type CreditSender interface {
	SendCredit(c flit.Credit, now int64)
}

// perVCAllocator is the extra allocation surface of fixed-VC credit
// views (generic, DAMQ, FC-CB, sink): the generic two-stage VA picks
// a specific output VC in stage 1 and claims it only if it wins
// stage 2.
type perVCAllocator interface {
	// GrantableVCIn returns a grantable VC within the class's chunk of
	// the kind's ID range, scanning round-robin from hint, or -1. It
	// does not claim.
	GrantableVCIn(class int, escape bool, hint int) int
	// ClaimVCIn marks the specific VC granted to a packet of the class.
	ClaimVCIn(class, vc int)
}

// VC allocation state machine of one input virtual channel.
const (
	vcIdle uint8 = iota
	vcWaitVA
	vcActive
)

type vcState struct {
	state     uint8
	pkt       *flit.Packet
	cands     []int
	outPort   int
	outVC     int
	waitSince int64
}

type inputPort struct {
	buf buffers.Buffer
	// ubs devirtualizes buf when it is a ViChaR unified buffer: the SA
	// stage polls Ready on every active VC every cycle, and the direct
	// (inlinable) call keeps that poll to one array load instead of an
	// interface dispatch. nil for the fixed organizations.
	ubs    *core.UBS
	vc     []vcState
	credit CreditSender

	// Per-VC scan masks, one bit per VC id (DESIGN.md §14). The tick
	// stages iterate set bits instead of scanning every VC, and the
	// network's active-router worklist derives quiescence from them.
	// Invariants (cross-checked by AuditInvariants): bit v of bufMask
	// is set iff buf.Len(v) > 0; vaMask iff vc[v] is in vcWaitVA;
	// actMask iff vc[v] is in vcActive.
	bufMask []uint64
	vaMask  []uint64
	actMask []uint64

	// outInfo[v] packs the granted route of an active VC:
	// outPort<<outInfoShift | outVC, mirrored from vc[v] at VA-grant
	// time. The SA scan polls every active VC every cycle and needs
	// only this pair; the packed side array keeps that poll off the
	// much wider vcState records. Meaningful only while actMask bit v
	// is set (cross-checked by AuditInvariants).
	outInfo []int
}

// outInfoShift packs (outPort, outVC) into one outInfo word; 16 bits
// of VC id is far beyond any configured unified buffer depth.
const outInfoShift = 16

type outputPort struct {
	view CreditView
	// vichar devirtualizes view when it is a ViChaR dispenser view,
	// for the same per-active-VC SA poll as inputPort.ubs; nil for
	// other view kinds (including the ejection sink).
	vichar *vicharView
	conn   FlitSender
}

// Router is one 5-port pipelined NoC router.
type Router struct {
	id   int
	cfg  *config.Config
	mesh topology.Mesh
	// tables memoizes the routing function and the escape network over
	// every (cur, dst) pair (DESIGN.md §17): RC is a flat array load,
	// with no interface dispatch left on the steady-state tick. Shared
	// across the network's routers when an arena is supplied.
	tables *routing.Tables

	in  []inputPort
	out []outputPort
	// outVic[p] == out[p].vichar, as a flat pointer array: the SA scan
	// indexes it per poll, and the 8-byte stride beats computing an
	// offset into the wide outputPort records.
	outVic []*vicharView

	maxVCs int
	ports  int
	maskW  int // uint64 words per per-VC mask

	// Arbiter banks are contiguous value slices (struct-of-arrays): a
	// tick touches all of them, so their priority pointers share cache
	// lines instead of hiding behind per-arbiter heap pointers.
	vaS1  []arbiter.RoundRobin // per input port, over its VCs
	vaS2  []arbiter.RoundRobin // ViChaR: per output port, over input ports
	vaS2G []arbiter.RoundRobin // generic: per (output port, output VC) flat, over input port x VC
	saS1  []arbiter.RoundRobin // per input port, over its VCs
	saS2  []arbiter.RoundRobin // per output port, over input ports

	// Counters accumulates activity events since construction; the
	// network snapshots it around the measurement window.
	Counters stats.Counters

	// probe mirrors Counters into the live metrics registry with
	// per-port, per-stage resolution; nil (all calls no-ops) unless
	// the network attached an observability layer.
	probe *metrics.RouterProbe

	// faults is the router's fault-model state (port stalls, dead
	// output links); nil without Config.Faults. escapeTree replaces
	// the XY escape network when the fault schedule kills links: an
	// up*/down* tree over the surviving links that preserves Duato
	// deadlock freedom.
	faults     *faults.RouterState
	escapeTree *routing.EscapeTree

	// scratch state reused across ticks to avoid per-cycle allocation
	saNominee []int       // per input port: winning VC or -1
	reqWords  []uint64    // request-mask scratch, ports*maxVCs bits wide
	saReq     []bool      // per input port, for the port-wide stage-2 arbiters
	opReq     []uint64    // per output port: input-port request bits (stage 2)
	vaNoms    []vaNominee // ViChaR VA: per input port nominee
	vaPicks   []vaPick    // generic VA stage 1, by flat input-VC id
	vaFlats   []int       // flat ids picked this cycle, ascending
	vaKeys    []int       // contested output VCs (op*maxVCs+ovc)
	vaGroups  [][]int     // per output VC: requesting flat ids

	// VA candidate-masking bitmasks (DESIGN.md §17), filled lazily
	// within each VA tick: for every (class, escape) kind,
	// vaKnown[kind] holds one bit per output port already polled this
	// tick and vaFree[kind] the subset that can grant a VC of that
	// kind (unconnected and dead-link ports stay clear); vaSlotsKnown/
	// vaSlots memoize FreeSlots the same way. VA stage 1 performs no
	// credit-view mutations — grants happen only in stage 2 — so each
	// (port, kind) is polled at most once per cycle no matter how many
	// waiting VCs nominate it, and every repeat lookup (the stage-1
	// winner's re-score included) is a pure bit test. Decisions are
	// bit-exactly those of per-VC polling.
	vaKnown      []uint64 // per kind: ports polled this tick
	vaFree       []uint64 // per kind: ports that can grant
	vaSlots      []int    // per output port: FreeSlots memo
	vaSlotsKnown uint64   // ports with a valid vaSlots entry this tick
}

// vaNominee is the per-input-port nomination of the ViChaR VA stage:
// the winning input VC (or -1), its chosen output port and whether
// the packet is on the escape network.
type vaNominee struct {
	invc   int
	port   int
	escape bool
}

// routeFor returns the routing function implementation for the
// configuration.
func routeFor(cfg *config.Config) routing.Function {
	if cfg.Routing == config.MinimalAdaptive {
		return routing.MinimalAdaptive{}
	}
	return routing.XY{}
}

// newBuffer builds the input-port buffer for the configuration,
// drawing the UBS's arrays from the arena when one is supplied.
func newBuffer(cfg *config.Config, a *Arena) buffers.Buffer {
	switch cfg.Arch {
	case config.Generic:
		return buffers.NewGeneric(cfg.VCs, cfg.VCDepth)
	case config.ViChaR:
		return core.NewUBSIn(a.Soa(), cfg.BufferSlots, cfg.MaxVCs())
	case config.DAMQ:
		return buffers.NewDAMQ(cfg.VCs, cfg.BufferSlots, cfg.DAMQDelay)
	case config.FCCB:
		return buffers.NewFCCB(cfg.VCs, cfg.BufferSlots)
	default:
		panic(fmt.Sprintf("router: unknown buffer architecture %v", cfg.Arch))
	}
}

// New constructs router id on the mesh. Ports must be wired with
// ConnectOutput/ConnectInputCredit before the first tick.
func New(id int, cfg *config.Config, mesh topology.Mesh) *Router {
	return NewIn(nil, id, cfg, mesh)
}

// NewIn is New drawing the router's hot state — buffers, VC state
// machines, scan masks, arbiter banks — from the network arena, so
// adjacent routers' tick-path state packs contiguously (DESIGN.md
// §14). A nil arena allocates normally.
func NewIn(a *Arena, id int, cfg *config.Config, mesh topology.Mesh) *Router {
	p := cfg.Ports()
	r := &Router{
		id:     id,
		cfg:    cfg,
		mesh:   mesh,
		tables: a.Tables(),
		maxVCs: cfg.MaxVCs(),
		ports:  p,
		maskW:  maskWords(cfg.MaxVCs()),

		in:     make([]inputPort, p),
		out:    make([]outputPort, p),
		outVic: make([]*vicharView, p),

		saNominee: make([]int, p),
	}
	if r.tables == nil {
		// Standalone construction (unit tests, nil arena): build the
		// router's own copy of the memoization tables.
		r.tables = routing.NewTables(routeFor(cfg), mesh)
	}
	soa := a.Soa()
	for i := 0; i < p; i++ {
		in := &r.in[i]
		in.buf = newBuffer(cfg, a)
		in.ubs, _ = in.buf.(*core.UBS)
		in.vc = a.takeVCs(r.maxVCs)
		in.bufMask = soa.TakeWords(r.maskW)
		in.vaMask = soa.TakeWords(r.maskW)
		in.actMask = soa.TakeWords(r.maskW)
		in.outInfo = soa.TakeInts(r.maxVCs)
	}
	r.vaS1 = a.takeBank(p, r.maxVCs)
	r.saS1 = a.takeBank(p, r.maxVCs)
	r.vaS2 = a.takeBank(p, p)
	r.saS2 = a.takeBank(p, p)
	if cfg.Arch != config.ViChaR {
		r.vaS2G = a.takeBank(p*r.maxVCs, p*r.maxVCs)
	}
	r.reqWords = make([]uint64, maskWords(p*r.maxVCs))
	r.saReq = make([]bool, p)
	r.opReq = make([]uint64, p)
	r.vaNoms = make([]vaNominee, p)
	r.vaKnown = make([]uint64, cfg.VCClasses()*2)
	r.vaFree = make([]uint64, cfg.VCClasses()*2)
	r.vaSlots = make([]int, p)
	if cfg.Arch != config.ViChaR {
		r.vaPicks = make([]vaPick, p*r.maxVCs)
		r.vaFlats = make([]int, 0, p*r.maxVCs)
		r.vaKeys = make([]int, 0, p*r.maxVCs)
		r.vaGroups = make([][]int, p*r.maxVCs)
	}
	return r
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// ConnectOutput wires output port p to a downstream link and the
// credit view mirroring the downstream input port (or the sink view
// for the local ejection port). Unconnected cardinal ports on mesh
// edges stay nil; the routing function never selects them.
func (r *Router) ConnectOutput(p int, conn FlitSender, view CreditView) {
	r.out[p].conn = conn
	r.out[p].view = view
	r.out[p].vichar, _ = view.(*vicharView)
	r.outVic[p] = r.out[p].vichar
}

// ConnectInputCredit wires input port p's upstream credit channel.
func (r *Router) ConnectInputCredit(p int, credit CreditSender) {
	r.in[p].credit = credit
}

// SetProbe attaches the live-metrics probe. Like the ports it must be
// wired before the first tick; a nil probe (the default) keeps every
// instrumentation site a single pointer check.
func (r *Router) SetProbe(p *metrics.RouterProbe) { r.probe = p }

// SetFaults attaches the router's fault-model state; wired before the
// first tick, nil (the default) keeps the fault paths a pointer check.
func (r *Router) SetFaults(s *faults.RouterState) { r.faults = s }

// SetEscapeTree switches deadlock-escape routing from the XY escape
// network to a fault-aware up*/down* tree; wired before the first
// tick when the fault schedule contains hard link failures.
func (r *Router) SetEscapeTree(t *routing.EscapeTree) { r.escapeTree = t }

// OutputView returns the credit view at output port p (tests and the
// network interface use it).
func (r *Router) OutputView(p int) CreditView { return r.out[p].view }

// ReceiveFlit writes a delivered flit into input port p's buffer.
// The upstream credit view guarantees space; a full buffer here is a
// flow-control bug and panics.
func (r *Router) ReceiveFlit(p int, f *flit.Flit, now int64) {
	if err := r.in[p].buf.Write(f, now); err != nil {
		//vichar:invariant upstream credit view guarantees space; a full buffer is a flow-control conservation bug
		panic(fmt.Sprintf("router %d port %d: %v", r.id, p, err))
	}
	r.in[p].bufMask[f.VC>>6] |= 1 << (uint(f.VC) & 63)
	r.Counters.BufferWrites++
	r.probe.BufferWrite(p)
}

// ReceiveCredit applies an upstream-bound credit at output port p.
func (r *Router) ReceiveCredit(p int, c flit.Credit) {
	// Branch-devirtualized like the SA polls: one credit arrives per
	// link per cycle at saturation, and the direct call skips the
	// interface dispatch.
	if o := &r.out[p]; o.vichar != nil {
		o.vichar.OnCredit(c)
	} else {
		o.view.OnCredit(c)
	}
}

// Tick advances the router one cycle. Stages run in reverse pipeline
// order (SA, then VA, then RC) so a flit progresses exactly one stage
// per cycle; switch traversal is folded into the FlitDelay of the
// link enqueue performed by SA winners.
//
// In the speculative organization (Peh & Dally, HPCA 2001; paper
// §3.1) VA runs before SA within the cycle, so a head granted a VC
// bids for the switch the same cycle — speculation modeled as always
// succeeding — shortening the pipeline to RC, VA/SA, ST.
//
// Tick is the compute step of the network's two-phase cycle kernel
// (DESIGN.md §10) and honors its ownership contract: it reads and
// writes only this router's state — input buffers, VC state machines,
// per-output credit views — plus the write ends of links this router
// owns (output flit links and input-port credit links). It never
// touches another router, so the kernel may run all routers' Ticks
// concurrently between barriers.
func (r *Router) Tick(now int64) {
	if r.faults != nil {
		r.faults.BeginCycle(now)
		for p := 0; p < r.ports; p++ {
			if r.faults.Stalled(p) {
				r.Counters.StallCycles++
				r.probe.PortStall(p)
			}
		}
	}
	r.escapeCheck(now)
	if r.cfg.Speculative {
		r.tickVA(now)
		r.tickSA(now)
	} else {
		r.tickSA(now)
		r.tickVA(now)
	}
	r.tickRC(now)
}

// tickRC performs routing computation for newly arrived head flits.
// Buffer write happens in parallel with RC, so a head arriving this
// cycle routes this cycle (Front is probed at now+1).
func (r *Router) tickRC(now int64) {
	for ip := range r.in {
		if r.faults != nil && r.faults.Stalled(ip) {
			continue
		}
		in := &r.in[ip]
		// Idle VCs holding flits: buffered but neither waiting nor
		// granted. The mask invariants make the state check implicit.
		for wi := range in.bufMask {
			for m := in.bufMask[wi] &^ (in.vaMask[wi] | in.actMask[wi]); m != 0; {
				b := bits.TrailingZeros64(m)
				m &^= 1 << uint(b)
				v := wi<<6 + b
				st := &in.vc[v]
				f := in.buf.Front(v, now+1)
				if f == nil {
					continue // still in (DAMQ) arrival bookkeeping
				}
				if !f.IsHead() {
					//vichar:invariant an idle VC must start with a head flit; a body here means VC state-machine corruption
					panic(fmt.Sprintf("router %d: %s at head of idle vc %d", r.id, f, v))
				}
				st.pkt = f.Pkt
				if f.Pkt.Escaped {
					//vichar:alloc appends into the VC's cands scratch, which forward preserves across packets; capacity settles at ≤ 2
					st.cands = append(st.cands[:0], r.escapePort(f.Pkt.Dst))
				} else {
					// Memoized RC: a flat table load per head flit
					// (DESIGN.md §17), same candidates in the same order
					// as the routing function itself.
					st.cands = r.tables.AppendCandidates(st.cands[:0], r.id, f.Pkt.Dst)
				}
				st.state = vcWaitVA
				in.vaMask[wi] |= 1 << uint(b)
				st.waitSince = now
				if r.probe != nil {
					r.probe.RC()
					r.probe.Event(metrics.EvRC, now, r.id, f.Pkt.ID, -1, -1, v)
				}
			}
		}
	}
}

// resetVAMasks clears the lazily-filled VA candidate masks at the top
// of a VA tick; a handful of word stores.
func (r *Router) resetVAMasks() {
	for k := range r.vaKnown {
		r.vaKnown[k] = 0
		r.vaFree[k] = 0
	}
	r.vaSlotsKnown = 0
}

// portFree reports whether output port p can grant a VC of the kind
// (class, escape), polling the credit view at most once per tick per
// (port, kind) and memoizing the answer in the vaFree bitmask.
func (r *Router) portFree(p, k, class int, escape bool) bool {
	bit := uint64(1) << uint(p)
	if r.vaKnown[k]&bit == 0 {
		r.vaKnown[k] |= bit
		o := &r.out[p]
		// Unconnected edge ports stay dark; a dead output link accepts
		// no new packets (worms granted the link before it died keep
		// draining — SA does not consult candidates).
		ok := o.view != nil && (r.faults == nil || !r.faults.LinkDead(p))
		if ok {
			// Branch-devirtualized like the SA polls: the direct
			// vicharView call inlines.
			if o.vichar != nil {
				ok = o.vichar.HasFreeVCIn(class, escape)
			} else {
				ok = o.view.HasFreeVCIn(class, escape)
			}
		}
		if ok {
			r.vaFree[k] |= bit
		}
	}
	return r.vaFree[k]&bit != 0
}

// portSlots returns output port p's free downstream slots, memoized
// per tick like portFree. Only called for ports portFree approved, so
// the view is connected.
func (r *Router) portSlots(p int) int {
	bit := uint64(1) << uint(p)
	if r.vaSlotsKnown&bit == 0 {
		r.vaSlotsKnown |= bit
		o := &r.out[p]
		if o.vichar != nil {
			r.vaSlots[p] = o.vichar.FreeSlots()
		} else {
			r.vaSlots[p] = o.view.FreeSlots()
		}
	}
	return r.vaSlots[p]
}

// bestCandidate scores the packet's candidate output ports by VC
// availability then free downstream slots, returning -1 when no
// candidate can currently grant a VC of the required kind within the
// packet's VC class. Candidates come memoized from the route tables;
// availability is a bit test against the lazily-filled vaFree masks,
// with ties broken toward the first-listed candidate exactly as
// direct per-VC polling did. Deterministic functions have a single
// candidate and skip the slot scoring entirely (a lone candidate
// always won the old s > -1 comparison).
func (r *Router) bestCandidate(st *vcState, class int, escape bool) int {
	k := class << 1
	if escape {
		k |= 1
	}
	cands := st.cands
	if len(cands) == 1 {
		if p := cands[0]; r.portFree(p, k, class, escape) {
			return p
		}
		return -1
	}
	best, bestSlots := -1, -1
	for _, p := range cands {
		if !r.portFree(p, k, class, escape) {
			continue
		}
		if s := r.portSlots(p); s > bestSlots {
			best, bestSlots = p, s
		}
	}
	return best
}

// escapeCheck re-channels packets that have waited past the deadlock
// threshold onto the deterministic escape path (the Token Dispenser's
// deadlock-recovery flow, paper Figure 10).
func (r *Router) escapeCheck(now int64) {
	if !r.cfg.NeedsEscape() {
		return
	}
	for ip := range r.in {
		if r.faults != nil && r.faults.Stalled(ip) {
			// A frozen port's control logic cannot re-channel; the
			// wait clock keeps running, so the packet escapes as soon
			// as the stall lifts.
			continue
		}
		in := &r.in[ip]
		for wi, wm := range in.vaMask {
			for m := wm; m != 0; {
				b := bits.TrailingZeros64(m)
				m &^= 1 << uint(b)
				st := &in.vc[wi<<6+b]
				if st.pkt.Escaped {
					continue
				}
				if now-st.waitSince > int64(r.cfg.DeadlockThreshold) {
					st.pkt.Escaped = true
					//vichar:alloc rewrites the VC's cands scratch in place; RC already grew it to hold at least one port
					st.cands = append(st.cands[:0], r.escapePort(st.pkt.Dst))
					r.Counters.EscapeReroutes++
					r.probe.EscapeReroute()
				}
			}
		}
	}
}

// escapePort returns the deterministic escape-network output port for
// a packet bound for dst: the fault-aware up*/down* tree when hard
// link failures are scheduled, the never-wrapping XY escape network
// otherwise.
func (r *Router) escapePort(dst int) int {
	if r.escapeTree != nil {
		return r.escapeTree.NextHop(r.id, dst)
	}
	return r.tables.EscapePort(r.id, dst)
}

// tickVA performs the two-stage virtual channel allocation.
// Deadlock-escape re-channeling (escapeCheck) has already run at the
// top of Tick; it only retargets VCs still in vcWaitVA, which tickSA
// never touches, so hoisting it out of VA leaves the serial semantics
// unchanged in both pipeline organizations.
func (r *Router) tickVA(now int64) {
	if r.cfg.Arch == config.ViChaR {
		r.tickVAViChaR(now)
	} else {
		r.tickVAGeneric(now)
	}
}

// tickVAViChaR implements paper Figure 7(b): a vk:1 arbiter per input
// port nominates one waiting VC; a P:1 arbiter per output port picks
// among nominees; the winner's packet receives the next free token
// from the output's dispenser view.
func (r *Router) tickVAViChaR(now int64) {
	noms := r.vaNoms
	for i := range noms {
		noms[i].invc = -1
	}
	contenders, grants := 0, 0
	r.resetVAMasks()
	req := r.reqWords[:r.maskW]
	for ip := range r.in {
		if r.faults != nil && r.faults.Stalled(ip) {
			continue
		}
		in := &r.in[ip]
		any := false
		for wi, wm := range in.vaMask {
			req[wi] = 0
			for m := wm; m != 0; {
				b := bits.TrailingZeros64(m)
				m &^= 1 << uint(b)
				st := &in.vc[wi<<6+b]
				if r.bestCandidate(st, int(st.pkt.Class), st.pkt.Escaped) >= 0 {
					req[wi] |= 1 << uint(b)
					any = true
					contenders++
				}
			}
		}
		if !any {
			continue
		}
		r.Counters.VAOps++
		r.probe.VAOp()
		w := r.vaS1[ip].ArbitrateMask(req)
		if w < 0 {
			continue
		}
		st := &in.vc[w]
		p := r.bestCandidate(st, int(st.pkt.Class), st.pkt.Escaped)
		noms[ip] = vaNominee{invc: w, port: p, escape: st.pkt.Escaped}
	}
	// Stage 2: one grant per output port. A single pass over the
	// nominees builds each contested port's input-request word;
	// TrailingZeros over anyOp then visits ports in the same ascending
	// order as the old op loop, skipping uncontested ones.
	opReq := r.opReq
	var anyOp uint64
	for ip := range noms {
		if noms[ip].invc < 0 {
			continue
		}
		op := noms[ip].port
		if anyOp&(1<<uint(op)) == 0 {
			anyOp |= 1 << uint(op)
			opReq[op] = 0
		}
		opReq[op] |= 1 << uint(ip)
	}
	for m := anyOp; m != 0; {
		op := bits.TrailingZeros64(m)
		m &^= 1 << uint(op)
		w := r.vaS2[op].ArbitrateMask(opReq[op : op+1])
		if w < 0 {
			continue
		}
		n := noms[w]
		win := &r.in[w]
		st := &win.vc[n.invc]
		var vc int
		var ok bool
		if o := &r.out[op]; o.vichar != nil {
			vc, ok = o.vichar.AllocVCIn(int(st.pkt.Class), n.escape)
		} else {
			vc, ok = o.view.AllocVCIn(int(st.pkt.Class), n.escape)
		}
		if !ok {
			continue // availability changed within the cycle; retry next
		}
		st.state = vcActive
		win.vaMask[n.invc>>6] &^= 1 << (uint(n.invc) & 63)
		win.actMask[n.invc>>6] |= 1 << (uint(n.invc) & 63)
		st.outPort = op
		st.outVC = vc
		win.outInfo[n.invc] = op<<outInfoShift | vc
		r.Counters.VCGrants++
		grants++
		if r.probe != nil {
			r.probe.VAGrant()
			r.probe.Event(metrics.EvVAGrant, now, r.id, st.pkt.ID, -1, op, vc)
		}
	}
	r.probe.VADenials(contenders - grants)
}

// vaPick is one stage-1 VA nomination: the (output port, output VC)
// pair a waiting input VC reduced its requests to.
type vaPick struct {
	op, ovc int
	escape  bool
	valid   bool
}

// tickVAGeneric implements paper Figure 7(a): each waiting input VC
// reduces its requests to a single (output port, output VC) pair in
// stage 1; a Pv:1 arbiter per output VC resolves conflicts in
// stage 2. DAMQ and FC-CB share this structure (their VC count is
// fixed like the generic router's).
//
// All bookkeeping is index-ordered (flat input-VC ids ascending, then
// contested output VCs in first-nomination order): hardware evaluates
// these arbiters in parallel, and the software model must not let an
// iteration order — in particular Go's randomized map order — leak
// into arbiter priority evolution. vichar-lint's map-range rule
// enforces this structurally.
func (r *Router) tickVAGeneric(now int64) {
	picks := r.vaPicks
	for i := range picks {
		picks[i] = vaPick{}
	}
	r.resetVAMasks()
	flats := r.vaFlats[:0]
	for ip := range r.in {
		if r.faults != nil && r.faults.Stalled(ip) {
			continue
		}
		in := &r.in[ip]
		for wi, wm := range in.vaMask {
			for m := wm; m != 0; {
				b := bits.TrailingZeros64(m)
				m &^= 1 << uint(b)
				v := wi<<6 + b
				st := &in.vc[v]
				escape := st.pkt.Escaped
				class := int(st.pkt.Class)
				op := r.bestCandidate(st, class, escape)
				if op < 0 {
					continue
				}
				alloc, ok := r.out[op].view.(perVCAllocator)
				if !ok {
					//vichar:invariant non-ViChaR configurations always wire per-VC credit views; a mismatch is a construction bug
					panic(fmt.Sprintf("router %d: %T cannot allocate per-VC", r.id, r.out[op].view))
				}
				ovc := alloc.GrantableVCIn(class, escape, v)
				if ovc < 0 {
					continue
				}
				flat := ip*r.maxVCs + v
				picks[flat] = vaPick{op: op, ovc: ovc, escape: escape, valid: true}
				//vichar:alloc the nomination scratch is pre-sized to ports*maxVCs at construction; append never exceeds that capacity
				flats = append(flats, flat)
				r.Counters.VAOps++
				r.probe.VAOp()
			}
		}
	}
	r.vaFlats = flats
	if len(flats) == 0 {
		return
	}
	grants := 0
	// Stage 2: per contested output VC, arbitrate among all
	// requesting input VCs. Output VCs are visited in the order of
	// their first nomination (ascending flat id), which is a pure
	// function of router state.
	keys := r.vaKeys[:0]
	groups := r.vaGroups
	for _, flat := range flats {
		pk := picks[flat]
		k := pk.op*r.maxVCs + pk.ovc
		if len(groups[k]) == 0 {
			//vichar:alloc the key scratch is pre-sized to ports*maxVCs at construction; append never exceeds that capacity
			keys = append(keys, k)
		}
		//vichar:alloc each group row grows to at most the input VC count once, then is reset to length zero per tick
		groups[k] = append(groups[k], flat)
	}
	r.vaKeys = keys
	req := r.reqWords
	for _, k := range keys {
		op, ovc := k/r.maxVCs, k%r.maxVCs
		for i := range req {
			req[i] = 0
		}
		for _, flat := range groups[k] {
			req[flat>>6] |= 1 << (uint(flat) & 63)
		}
		groups[k] = groups[k][:0]
		w := r.vaS2G[k].ArbitrateMask(req)
		if w < 0 {
			continue
		}
		ip, v := w/r.maxVCs, w%r.maxVCs
		win := &r.in[ip]
		st := &win.vc[v]
		alloc := r.out[op].view.(perVCAllocator)
		alloc.ClaimVCIn(int(st.pkt.Class), ovc)
		st.state = vcActive
		win.vaMask[v>>6] &^= 1 << (uint(v) & 63)
		win.actMask[v>>6] |= 1 << (uint(v) & 63)
		st.outPort = op
		st.outVC = ovc
		win.outInfo[v] = op<<outInfoShift | ovc
		r.Counters.VCGrants++
		grants++
		if r.probe != nil {
			r.probe.VAGrant()
			r.probe.Event(metrics.EvVAGrant, now, r.id, st.pkt.ID, -1, op, ovc)
		}
	}
	r.probe.VADenials(len(flats) - grants)
}

// tickSA performs the two-stage switch allocation and moves winners
// through the crossbar onto their links.
func (r *Router) tickSA(now int64) {
	contenders, grants := 0, 0
	req := r.reqWords[:r.maskW]
	for ip := range r.in {
		r.saNominee[ip] = -1
		if r.faults != nil && r.faults.Stalled(ip) {
			continue
		}
		in := &r.in[ip]
		any := false
		if r.probe == nil && in.ubs != nil {
			// Uninstrumented ViChaR fast path: the unified buffer's
			// readiness overlay collapses the whole-port head poll to
			// one AND per 64 VCs, so the inner loop only visits VCs
			// that both hold a granted route (actMask) and have a
			// readable head flit — then checks downstream credit via
			// the flat dispenser-view pointers and the packed outInfo
			// route, all indexed loads with no dynamic dispatch.
			rdy := in.ubs.ReadyWords(now)
			for wi, wm := range in.actMask {
				w := uint64(0)
				for m := wm & rdy[wi]; m != 0; {
					b := bits.TrailingZeros64(m)
					m &^= 1 << uint(b)
					info := in.outInfo[wi<<6+b]
					ovc := info & (1<<outInfoShift - 1)
					var ok bool
					if ov := r.outVic[info>>outInfoShift]; ov != nil {
						ok = ov.CanSendFlit(ovc)
					} else {
						ok = r.out[info>>outInfoShift].view.CanSendFlit(ovc)
					}
					if ok {
						w |= 1 << uint(b)
					}
				}
				req[wi] = w
				any = any || w != 0
			}
		} else if r.probe == nil {
			// Uninstrumented fast path for the fixed organizations:
			// per-VC Ready polls through the buffer interface.
			for wi, wm := range in.actMask {
				w := uint64(0)
				for m := wm; m != 0; {
					b := bits.TrailingZeros64(m)
					m &^= 1 << uint(b)
					v := wi<<6 + b
					ok := in.buf.Ready(v, now)
					if ok {
						info := in.outInfo[v]
						ovc := info & (1<<outInfoShift - 1)
						ok = r.out[info>>outInfoShift].view.CanSendFlit(ovc)
					}
					if ok {
						w |= 1 << uint(b)
					}
				}
				req[wi] = w
				any = any || w != 0
			}
		} else {
			for wi, wm := range in.actMask {
				w := uint64(0)
				for m := wm; m != 0; {
					b := bits.TrailingZeros64(m)
					m &^= 1 << uint(b)
					v := wi<<6 + b
					info := in.outInfo[v]
					op := info >> outInfoShift
					ovc := info & (1<<outInfoShift - 1)
					var ready bool
					if in.ubs != nil {
						ready = in.ubs.Ready(v, now)
					} else {
						ready = in.buf.Ready(v, now)
					}
					if ready && r.out[op].view.CanSendFlit(ovc) {
						w |= 1 << uint(b)
						contenders++
					} else if ready {
						r.probe.CreditStall(op)
					}
				}
				req[wi] = w
				any = any || w != 0
			}
		}
		if !any {
			continue
		}
		r.Counters.SAOps++
		r.probe.SAOp()
		r.saNominee[ip] = r.saS1[ip].ArbitrateMask(req)
	}
	// Stage 2: one pass over the nominees builds each contested output
	// port's input-request word; ports are then arbitrated in ascending
	// order (TrailingZeros over anyOp), exactly the old op loop's order
	// but touching only ports somebody asked for.
	opReq := r.opReq
	var anyOp uint64
	for ip := 0; ip < r.ports; ip++ {
		v := r.saNominee[ip]
		if v < 0 {
			continue
		}
		op := r.in[ip].outInfo[v] >> outInfoShift
		if anyOp&(1<<uint(op)) == 0 {
			anyOp |= 1 << uint(op)
			opReq[op] = 0
		}
		opReq[op] |= 1 << uint(ip)
	}
	for m := anyOp; m != 0; {
		op := bits.TrailingZeros64(m)
		m &^= 1 << uint(op)
		w := r.saS2[op].ArbitrateMask(opReq[op : op+1])
		if w < 0 {
			continue
		}
		r.forward(w, r.saNominee[w], op, now)
		grants++
	}
	r.probe.SADenials(contenders - grants)
}

// forward pops the SA-winning flit and sends it across the crossbar
// and link, returning a credit upstream.
func (r *Router) forward(ip, v, op int, now int64) {
	in := &r.in[ip]
	st := &in.vc[v]
	var f *flit.Flit
	var err error
	if in.ubs != nil {
		f, err = in.ubs.Pop(v, now)
	} else {
		f, err = in.buf.Pop(v, now)
	}
	if err != nil {
		//vichar:invariant SA only nominates VCs with a readable front flit within the same cycle
		panic(fmt.Sprintf("router %d: SA winner vanished: %v", r.id, err))
	}
	if in.buf.Len(v) == 0 {
		in.bufMask[v>>6] &^= 1 << (uint(v) & 63)
	}
	r.Counters.BufferReads++
	r.Counters.XbarTraversals++
	if r.probe != nil {
		r.probe.BufferRead(ip)
		r.probe.Xbar()
		r.probe.SAGrant()
		r.probe.Event(metrics.EvSAGrant, now, r.id, f.Pkt.ID, f.Seq, op, st.outVC)
	}

	if in.credit != nil {
		in.credit.SendCredit(flit.Credit{VC: v, ReleaseVC: f.IsTail()}, now)
	}

	f.VC = st.outVC
	if o := &r.out[op]; o.vichar != nil {
		o.vichar.OnSend(f)
	} else {
		o.view.OnSend(f)
	}
	r.out[op].conn.SendFlit(f, now)

	if f.IsTail() {
		in.actMask[v>>6] &^= 1 << (uint(v) & 63)
		in.outInfo[v] = 0
		// Reset the VC state machine but keep the cands backing array:
		// dropping it would make the next packet's routing computation
		// reallocate on every VC turnover.
		cands := st.cands[:0]
		*st = vcState{}
		st.cands = cands
	}
}

// Occupied returns the total flits buffered across all input ports.
func (r *Router) Occupied() int {
	n := 0
	for i := range r.in {
		n += r.in[i].buf.Occupied()
	}
	return n
}

// Quiescent reports whether a Tick would be a pure no-op: no VC on
// any input port buffers a flit, waits for allocation or holds a
// grant, and no fault model is attached (fault schedules mutate state
// every cycle regardless of traffic). The network's active-router
// worklist uses this to put drained routers to sleep; every stage
// iterates only the masks checked here, and the arbiters, counters
// and probes are untouched when no request exists, so skipping a
// quiescent router's Tick is bit-exact (DESIGN.md §14).
func (r *Router) Quiescent() bool {
	if r.faults != nil {
		return false
	}
	for i := range r.in {
		in := &r.in[i]
		for w := range in.bufMask {
			if in.bufMask[w]|in.vaMask[w]|in.actMask[w] != 0 {
				return false
			}
		}
	}
	return true
}

// TotalSlots returns the router's total input buffering.
func (r *Router) TotalSlots() int { return r.ports * r.cfg.BufferSlots }

// InUseVCsPerPort returns the mean number of in-use virtual channels
// per input port: a VC is in use when its state machine holds a
// packet or it still buffers flits.
func (r *Router) InUseVCsPerPort() float64 {
	n := 0
	for i := range r.in {
		in := &r.in[i]
		for w := range in.bufMask {
			n += bits.OnesCount64(in.bufMask[w] | in.vaMask[w] | in.actMask[w])
		}
	}
	return float64(n) / float64(r.ports)
}

// InputBuffer exposes the buffer at input port p for tests and
// diagnostics.
func (r *Router) InputBuffer(p int) buffers.Buffer { return r.in[p].buf }

// AuditInvariants runs the invariant auditor over every input port
// with a unified buffer, returning the first violation: VC Control
// Table ↔ Slot Availability Tracker coherence, slot-leak freedom,
// one-packet-per-VC, and the readiness overlay agreeing with the
// head stamps at cycle now. Ports without a UBS (the fixed
// organizations) have no cross-view bookkeeping to diverge and skip
// the UBS checks. The network invokes this every cycle when
// Config.Audit is set.
func (r *Router) AuditInvariants(now int64) error {
	classes := r.cfg.VCClasses()
	escBase := r.maxVCs
	if r.cfg.NeedsEscape() {
		escBase = r.maxVCs - r.cfg.EscapeVCs
	}
	for p := range r.in {
		in := &r.in[p]
		// Scan masks must mirror the buffer and VC state machines —
		// the worklist's quiescence decision and every tick stage's
		// iteration set depend on it.
		for v := 0; v < r.maxVCs; v++ {
			w, bit := v>>6, uint64(1)<<(uint(v)&63)
			if got, want := in.bufMask[w]&bit != 0, in.buf.Len(v) > 0; got != want {
				//vichar:alloc violation reporting on the opt-in audit path (Config.Audit), not the steady-state tick
				return fmt.Errorf("router %d port %d vc %d: bufMask=%v but buffered=%d", r.id, p, v, got, in.buf.Len(v))
			}
			st := in.vc[v].state
			if got, want := in.vaMask[w]&bit != 0, st == vcWaitVA; got != want {
				//vichar:alloc violation reporting on the opt-in audit path (Config.Audit), not the steady-state tick
				return fmt.Errorf("router %d port %d vc %d: vaMask=%v but state=%d", r.id, p, v, got, st)
			}
			if got, want := in.actMask[w]&bit != 0, st == vcActive; got != want {
				//vichar:alloc violation reporting on the opt-in audit path (Config.Audit), not the steady-state tick
				return fmt.Errorf("router %d port %d vc %d: actMask=%v but state=%d", r.id, p, v, got, st)
			}
			// The packed SA-scan route must mirror the VC state machine
			// while the VC is active (it is dead state otherwise).
			if st == vcActive {
				want := in.vc[v].outPort<<outInfoShift | in.vc[v].outVC
				if in.outInfo[v] != want {
					//vichar:alloc violation reporting on the opt-in audit path (Config.Audit), not the steady-state tick
					return fmt.Errorf("router %d port %d vc %d: outInfo=%#x want %#x", r.id, p, v, in.outInfo[v], want)
				}
			}
			// VC-class separation: an occupied VC's ID chunk must match
			// its packet's class, and so must a granted output VC (the
			// ejection sink aside — its "VC 0" is not a real channel).
			if classes > 1 && st != vcIdle {
				pc := int(in.vc[v].pkt.Class)
				if err := audit.CheckVCClass("input", r.id, p, v, classOfVC(v, escBase, r.maxVCs, classes), pc); err != nil {
					return err
				}
				if op := in.vc[v].outPort; st == vcActive {
					if _, sink := r.out[op].view.(*sinkView); !sink {
						ovc := in.vc[v].outVC
						if err := audit.CheckVCClass("output", r.id, op, ovc, classOfVC(ovc, escBase, r.maxVCs, classes), pc); err != nil {
							return err
						}
					}
				}
			}
		}
		ubs, ok := in.buf.(*core.UBS)
		if !ok {
			continue
		}
		if err := audit.CheckUBS(ubs); err != nil {
			return fmt.Errorf("router %d port %d: %w", r.id, p, err)
		}
		if err := ubs.CheckReadyMasks(now); err != nil {
			//vichar:alloc violation reporting on the opt-in audit path (Config.Audit), not the steady-state tick
			return fmt.Errorf("router %d port %d: %w", r.id, p, err)
		}
	}
	return nil
}

// DebugState renders the router's microarchitectural state — per-VC
// state machines, buffered flit counts, output credit views — for
// deadlock diagnosis.
func (r *Router) DebugState() string {
	var b []byte
	b = fmt.Appendf(b, "router %d\n", r.id)
	stateName := map[uint8]string{vcIdle: "idle", vcWaitVA: "waitVA", vcActive: "active"}
	for ip := range r.in {
		in := &r.in[ip]
		for v := range in.vc {
			st := &in.vc[v]
			if st.state == vcIdle && in.buf.Len(v) == 0 {
				continue
			}
			b = fmt.Appendf(b, "  in[%s] vc%d: %s len=%d", topology.PortName(ip), v, stateName[st.state], in.buf.Len(v))
			if st.state != vcIdle {
				b = fmt.Appendf(b, " pkt=%v out=%s/vc%d", st.pkt, topology.PortName(st.outPort), st.outVC)
				if st.state == vcWaitVA {
					b = fmt.Appendf(b, " cands=%v since=%d esc=%v", st.cands, st.waitSince, st.pkt.Escaped)
				}
			}
			b = append(b, '\n')
		}
	}
	for op := range r.out {
		out := &r.out[op]
		if out.view == nil {
			continue
		}
		b = fmt.Appendf(b, "  out[%s]: freeSlots=%d outstandingVCs=%d\n",
			topology.PortName(op), out.view.FreeSlots(), out.view.OutstandingVCs())
	}
	return string(b)
}
