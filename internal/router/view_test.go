package router

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/flit"
)

func headFlit(vc int) *flit.Flit {
	return &flit.Flit{Pkt: &flit.Packet{Size: 4}, Type: flit.Head, VC: vc}
}

func tailFlit(vc int) *flit.Flit {
	return &flit.Flit{Pkt: &flit.Packet{Size: 4}, Type: flit.Tail, VC: vc}
}

func TestNewCreditViewDispatch(t *testing.T) {
	mk := func(arch config.BufferArch) CreditView {
		cfg := config.Default()
		cfg.Arch = arch
		if arch == config.Generic {
			cfg.VCs, cfg.VCDepth, cfg.BufferSlots = 4, 4, 16
		}
		return NewCreditView(&cfg)
	}
	if _, ok := mk(config.Generic).(*genericView); !ok {
		t.Error("generic view type wrong")
	}
	if _, ok := mk(config.ViChaR).(*vicharView); !ok {
		t.Error("vichar view type wrong")
	}
	if _, ok := mk(config.DAMQ).(*sharedView); !ok {
		t.Error("damq view type wrong")
	}
	if _, ok := mk(config.FCCB).(*sharedView); !ok {
		t.Error("fccb view type wrong")
	}
}

func TestGenericViewCreditAccounting(t *testing.T) {
	v := newGenericView(nil, 2, 3, 0, true, 1)
	if v.FreeSlots() != 6 {
		t.Fatalf("fresh free slots %d", v.FreeSlots())
	}
	vc, ok := v.AllocVC(false)
	if !ok {
		t.Fatal("alloc failed on fresh view")
	}
	for i := 0; i < 3; i++ {
		if !v.CanSendFlit(vc) {
			t.Fatalf("no credit at flit %d", i)
		}
		f := headFlit(vc)
		if i == 2 {
			f = tailFlit(vc)
		}
		v.OnSend(f)
	}
	if v.CanSendFlit(vc) {
		t.Fatal("send allowed beyond depth")
	}
	v.OnCredit(flit.Credit{VC: vc})
	if !v.CanSendFlit(vc) {
		t.Fatal("credit not restored")
	}
}

func TestGenericViewAtomicAllocation(t *testing.T) {
	v := newGenericView(nil, 1, 4, 0, true, 1)
	vc, ok := v.AllocVC(false)
	if !ok || vc != 0 {
		t.Fatalf("alloc got %d/%v", vc, ok)
	}
	v.OnSend(headFlit(0))
	v.OnSend(tailFlit(0)) // tail sent: VC closed but 2 flits downstream
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("atomic view re-allocated a non-drained VC")
	}
	v.OnCredit(flit.Credit{VC: 0})
	v.OnCredit(flit.Credit{VC: 0, ReleaseVC: true})
	if _, ok := v.AllocVC(false); !ok {
		t.Fatal("atomic view refused a fully drained VC")
	}
}

func TestGenericViewNonAtomicAllocation(t *testing.T) {
	v := newGenericView(nil, 1, 4, 0, false, 1)
	if _, ok := v.AllocVC(false); !ok {
		t.Fatal("fresh alloc failed")
	}
	v.OnSend(headFlit(0))
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("allocated a VC whose packet is still open")
	}
	v.OnSend(tailFlit(0))
	if _, ok := v.AllocVC(false); !ok {
		t.Fatal("non-atomic view refused VC after tail sent")
	}
}

func TestGenericViewEscapePartition(t *testing.T) {
	v := newGenericView(nil, 4, 2, 1, true, 1)
	// Normal allocations never touch the escape VC (id 3).
	for i := 0; i < 3; i++ {
		vc, ok := v.AllocVC(false)
		if !ok || vc == 3 {
			t.Fatalf("normal alloc %d got %d/%v", i, vc, ok)
		}
	}
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("normal class exhausted but alloc succeeded")
	}
	if !v.HasFreeVC(true) {
		t.Fatal("escape VC should be free")
	}
	vc, ok := v.AllocVC(true)
	if !ok || vc != 3 {
		t.Fatalf("escape alloc got %d/%v", vc, ok)
	}
}

func TestGenericViewGrantableClaim(t *testing.T) {
	v := newGenericView(nil, 4, 2, 0, true, 1)
	g := v.GrantableVC(false, 2)
	if g != 2 {
		t.Fatalf("hint ignored: got %d", g)
	}
	v.ClaimVC(2)
	if v.GrantableVC(false, 2) == 2 {
		t.Fatal("claimed VC still grantable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double claim did not panic")
		}
	}()
	v.ClaimVC(2)
}

func TestGenericViewPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(v *genericView)
	}{
		{"send without credit", func(v *genericView) {
			v.OnSend(headFlit(0))
			v.OnSend(headFlit(0)) // depth 1: second send has no credit
		}},
		{"credit unknown vc", func(v *genericView) { v.OnCredit(flit.Credit{VC: 9}) }},
		{"credit overflow", func(v *genericView) { v.OnCredit(flit.Credit{VC: 1}) }},
		{"claim out of range", func(v *genericView) { v.ClaimVC(7) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := newGenericView(nil, 2, 1, 0, true, 1)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f(v)
		})
	}
}

func TestSharedViewPoolAccounting(t *testing.T) {
	v := newSharedView(nil, 4, 6, 0, 1)
	// 6 slots, 4 permanent per-queue reservations: 2 shared.
	if v.FreeSlots() != 2 {
		t.Fatalf("fresh shared slots %d, want 2", v.FreeSlots())
	}
	vc, _ := v.AllocVC(false)
	// The queue can absorb the shared pool plus its own reservation.
	for i := 0; i < 3; i++ {
		if !v.CanSendFlit(vc) {
			t.Fatalf("no credit at flit %d", i)
		}
		v.OnSend(headFlit(vc))
	}
	if v.CanSendFlit(vc) {
		t.Fatal("send beyond shared pool + reservation")
	}
	// Other queues still have their reservations.
	other := (vc + 1) % 4
	if !v.CanSendFlit(other) {
		t.Fatal("another queue lost its reserved slot")
	}
	// A departure refills the reservation first, then the pool.
	v.OnCredit(flit.Credit{VC: vc})
	if v.FreeSlots() != 0 || !v.resFree[vc] {
		t.Fatal("reservation not refilled first")
	}
	v.OnCredit(flit.Credit{VC: vc})
	if v.FreeSlots() != 1 {
		t.Fatal("shared credit not restored")
	}
}

// A queue's permanent reservation guarantees progress even when the
// shared pool is exhausted by other queues — the DAMQ anti-deadlock
// provision.
func TestSharedViewReservationGuarantee(t *testing.T) {
	v := newSharedView(nil, 2, 4, 0, 1) // 2 shared + 2 reserved
	v.OnSend(headFlit(0))
	v.OnSend(headFlit(0)) // queue 0 eats the shared pool
	if v.FreeSlots() != 0 {
		t.Fatal("shared pool should be empty")
	}
	if !v.CanSendFlit(1) {
		t.Fatal("queue 1 lost its guaranteed slot")
	}
	v.OnSend(headFlit(1))
	if v.CanSendFlit(1) {
		t.Fatal("queue 1 sent past its reservation")
	}
	if !v.CanSendFlit(0) {
		t.Fatal("queue 0's own reservation missing")
	}
}

func TestSharedViewVCLifecycle(t *testing.T) {
	v := newSharedView(nil, 2, 8, 0, 1)
	a, _ := v.AllocVC(false)
	b, ok := v.AllocVC(false)
	if !ok || a == b {
		t.Fatalf("allocs %d %d", a, b)
	}
	if v.OutstandingVCs() != 2 {
		t.Fatal("outstanding count wrong")
	}
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("over-allocated fixed VCs")
	}
	v.OnSend(tailFlit(a)) // tail closes the VC for new packets
	if _, ok := v.AllocVC(false); !ok {
		t.Fatal("closed VC not re-allocatable (non-atomic queueing)")
	}
}

func TestViCharViewTokenFlow(t *testing.T) {
	v := newViCharView(nil, 16, 16, 0, 1)
	if v.FreeSlots() != 16 || v.OutstandingVCs() != 0 {
		t.Fatal("fresh vichar view wrong")
	}
	// Every token grant reserves one slot, so all 16 tokens fit — the
	// paper's Figure 5 extreme of vk single-slot VCs.
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		vc, ok := v.AllocVC(false)
		if !ok || seen[vc] {
			t.Fatalf("token %d: %d/%v", i, vc, ok)
		}
		seen[vc] = true
	}
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("17th token granted")
	}
	if v.OutstandingVCs() != 16 {
		t.Fatal("outstanding wrong")
	}
	if v.FreeSlots() != 0 {
		t.Fatalf("shared pool %d with every slot reserved", v.FreeSlots())
	}
	// Each VC can still land exactly its one reserved flit.
	for vc := 0; vc < 16; vc++ {
		if !v.CanSendFlit(vc) {
			t.Fatalf("vc %d lost its reserved slot", vc)
		}
		v.OnSend(headFlit(vc))
	}
	if v.CanSendFlit(0) {
		t.Fatal("send past the reservation")
	}
	// A tail departure returns the flit's slot and the token.
	v.OnCredit(flit.Credit{VC: 5, ReleaseVC: true})
	if v.FreeSlots() != 1 || !v.HasFreeVC(false) {
		t.Fatalf("release credit not applied: free=%d", v.FreeSlots())
	}
	if vc, ok := v.AllocVC(false); !ok || vc != 5 {
		t.Fatalf("released token not re-dispensed: %d/%v", vc, ok)
	}
}

// A packet deeper than one flit flows through a VC by alternating its
// reservation with departures even when the shared pool is empty.
func TestViCharViewReservationCycling(t *testing.T) {
	v := newViCharView(nil, 2, 2, 0, 1)
	a, ok := v.AllocVC(false)
	b, ok2 := v.AllocVC(false)
	if !ok || !ok2 {
		t.Fatal("setup allocs failed")
	}
	v.OnSend(headFlit(a)) // consumes a's reservation (pool empty)
	v.OnSend(headFlit(b))
	if v.CanSendFlit(a) || v.CanSendFlit(b) {
		t.Fatal("over-capacity send allowed")
	}
	// a's flit departs downstream: reservation refills, next flit of
	// a can be sent. Repeat indefinitely: the packet streams through
	// a single slot.
	for i := 0; i < 5; i++ {
		v.OnCredit(flit.Credit{VC: a})
		if !v.CanSendFlit(a) {
			t.Fatalf("round %d: reservation not refilled", i)
		}
		v.OnSend(headFlit(a))
	}
	v.OnCredit(flit.Credit{VC: a, ReleaseVC: true})
	if v.OutstandingVCs() != 1 || v.FreeSlots() != 1 {
		t.Fatalf("release accounting wrong: out=%d free=%d", v.OutstandingVCs(), v.FreeSlots())
	}
}

func TestViCharViewEscapeTokens(t *testing.T) {
	v := newViCharView(nil, 8, 8, 2, 1)
	if v.HasFreeVC(true) != true {
		t.Fatal("escape tokens missing")
	}
	e, ok := v.AllocVC(true)
	if !ok || e < 6 {
		t.Fatalf("escape token %d/%v", e, ok)
	}
	// Normal tokens unaffected.
	for i := 0; i < 6; i++ {
		if _, ok := v.AllocVC(false); !ok {
			t.Fatalf("normal token %d missing", i)
		}
	}
	if _, ok := v.AllocVC(false); ok {
		t.Fatal("normal pool should be empty")
	}
}

func TestViCharViewPanics(t *testing.T) {
	v := newViCharView(nil, 2, 2, 0, 1)
	v.OnSend(headFlit(0))
	v.OnSend(headFlit(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("send without slot credit did not panic")
			}
		}()
		v.OnSend(headFlit(0))
	}()
	v.OnCredit(flit.Credit{VC: 0})
	v.OnCredit(flit.Credit{VC: 1})
	defer func() {
		if recover() == nil {
			t.Error("credit overflow did not panic")
		}
	}()
	v.OnCredit(flit.Credit{VC: 0})
}

func TestSinkViewAlwaysAvailable(t *testing.T) {
	v := NewSinkView()
	if !v.CanSendFlit(3) || !v.HasFreeVC(false) || !v.HasFreeVC(true) {
		t.Fatal("sink refused")
	}
	vc, ok := v.AllocVC(false)
	if !ok || vc != 0 {
		t.Fatalf("sink alloc %d/%v", vc, ok)
	}
	v.OnSend(headFlit(0))
	if v.OutstandingVCs() != 1 {
		t.Fatal("sink outstanding tracking wrong")
	}
	v.OnSend(tailFlit(0))
	if v.OutstandingVCs() != 0 {
		t.Fatal("sink outstanding not released")
	}
	if v.FreeSlots() <= 0 {
		t.Fatal("sink slots exhausted")
	}
}

func TestSharedViewGrantableClaim(t *testing.T) {
	v := newSharedView(nil, 4, 8, 1, 1) // queue 3 is the escape class
	// Normal class scans 0..2 from the hint.
	if got := v.GrantableVC(false, 2); got != 2 {
		t.Fatalf("hint ignored: %d", got)
	}
	v.ClaimVC(2)
	if got := v.GrantableVC(false, 2); got == 2 {
		t.Fatal("claimed queue still grantable")
	}
	// Escape class only offers queue 3.
	if got := v.GrantableVC(true, 0); got != 3 {
		t.Fatalf("escape grantable %d, want 3", got)
	}
	v.ClaimVC(0)
	v.ClaimVC(1)
	if got := v.GrantableVC(false, 0); got != -1 {
		t.Fatalf("exhausted class still grants %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double claim did not panic")
		}
	}()
	v.ClaimVC(1)
}

func TestSharedViewOutstanding(t *testing.T) {
	v := newSharedView(nil, 3, 6, 0, 1)
	if v.OutstandingVCs() != 0 {
		t.Fatal("fresh outstanding nonzero")
	}
	v.ClaimVC(0)
	v.ClaimVC(2)
	if v.OutstandingVCs() != 2 {
		t.Fatalf("outstanding %d, want 2", v.OutstandingVCs())
	}
	v.OnSend(tailFlit(0)) // tail closes the packet
	if v.OutstandingVCs() != 1 {
		t.Fatalf("outstanding %d after tail, want 1", v.OutstandingVCs())
	}
}

func TestSharedViewStrayCreditPanics(t *testing.T) {
	v := newSharedView(nil, 2, 4, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("stray credit did not panic")
		}
	}()
	v.OnCredit(flit.Credit{VC: 0})
}

func TestSharedViewNeedsSlotPerQueue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized shared view did not panic")
		}
	}()
	newSharedView(nil, 8, 4, 0, 1)
}

func TestViCharViewStrayCreditPanics(t *testing.T) {
	v := newViCharView(nil, 4, 4, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("stray UBS credit did not panic")
		}
	}()
	v.OnCredit(flit.Credit{VC: 1})
}

func TestViCharViewOutOfRangeSend(t *testing.T) {
	v := newViCharView(nil, 4, 4, 0, 1)
	if v.CanSendFlit(-1) || v.CanSendFlit(9) {
		t.Fatal("out-of-range vc sendable")
	}
}
