package snap

import (
	"fmt"
	"strings"
	"testing"

	"vichar/internal/flit"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("hdr")
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-5)
	w.Int(-123456)
	w.F64(3.14159)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.U64s([]uint64{9, 8})
	w.I64s([]int64{-1, 2})
	w.Ints([]int{4, -4})
	w.Bools([]bool{true, false, true})
	w.F64s([]float64{0.5, -0.25})
	data := w.Finish()

	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("hdr"); err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -5 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -123456 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	u := make([]uint64, 2)
	r.U64sInto(u)
	if u[0] != 9 || u[1] != 8 {
		t.Fatalf("U64sInto = %v", u)
	}
	i64 := make([]int64, 2)
	r.I64sInto(i64)
	if i64[0] != -1 || i64[1] != 2 {
		t.Fatalf("I64sInto = %v", i64)
	}
	ints := make([]int, 2)
	r.IntsInto(ints)
	if ints[0] != 4 || ints[1] != -4 {
		t.Fatalf("IntsInto = %v", ints)
	}
	bools := make([]bool, 3)
	r.BoolsInto(bools)
	if !bools[0] || bools[1] || !bools[2] {
		t.Fatalf("BoolsInto = %v", bools)
	}
	f64s := make([]float64, 2)
	r.F64sInto(f64s)
	if f64s[0] != 0.5 || f64s[1] != -0.25 {
		t.Fatalf("F64sInto = %v", f64s)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestEveryByteMutationRejectedOrDetected(t *testing.T) {
	w := NewWriter()
	w.Section("s")
	w.U64(42)
	w.String("payload")
	data := w.Finish()
	for i := range data {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 0x40
		if _, err := Open(mut); err == nil {
			t.Fatalf("mutation at byte %d of %d was not rejected", i, len(data))
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	data := NewWriter().Finish()
	for i := 0; i < len(data); i++ {
		if _, err := Open(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
}

func TestSectionMismatch(t *testing.T) {
	w := NewWriter()
	w.Section("alpha")
	r, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("beta"); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("section mismatch error = %v", err)
	}
}

func TestLengthMismatchInto(t *testing.T) {
	w := NewWriter()
	w.U64s([]uint64{1, 2, 3})
	r, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	r.U64sInto(make([]uint64, 2))
	if r.Err() == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestStickyErrorStopsReads(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	r, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	r.U64()
	r.U64() // past the end
	first := r.Err()
	if first == nil {
		t.Fatal("overread not reported")
	}
	r.U64()
	if r.Err() != first {
		t.Fatal("error was not sticky")
	}
}

func TestFlitRefRoundTrip(t *testing.T) {
	p := &flit.Packet{ID: 77, Src: 1, Dst: 2, Size: 3}
	flits := flit.MakeFlits(p)
	f := flits[1]
	f.VC = 9
	f.ArrivedAt = 1234

	w := NewWriter()
	w.Flit(f)
	w.Flit(nil)
	data := w.Finish()

	// Restore side: fresh flit objects rebuilt from the packet.
	p2 := &flit.Packet{ID: 77, Src: 1, Dst: 2, Size: 3}
	rebuilt := flit.MakeFlits(p2)
	resolve := func(pkt uint64, seq int) (*flit.Flit, error) {
		if pkt != p2.ID || seq < 0 || seq >= len(rebuilt) {
			return nil, fmt.Errorf("unknown flit %d/%d", pkt, seq)
		}
		return rebuilt[seq], nil
	}

	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Flit(resolve)
	if err != nil {
		t.Fatal(err)
	}
	if got != rebuilt[1] || got.VC != 9 || got.ArrivedAt != 1234 {
		t.Fatalf("flit ref resolved to %+v", got)
	}
	if nilF, err := r.Flit(resolve); err != nil || nilF != nil {
		t.Fatalf("nil flit ref = %v, %v", nilF, err)
	}
	unknown := func(pkt uint64, seq int) (*flit.Flit, error) {
		return nil, fmt.Errorf("nope")
	}
	w2 := NewWriter()
	w2.Flit(f)
	r2, err := Open(w2.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Flit(unknown); err == nil {
		t.Fatal("resolver failure not propagated")
	}
}
