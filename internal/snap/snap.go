// Package snap is the binary codec behind the simulator's
// checkpoint/restore: a versioned, checksummed envelope with typed
// primitive accessors and named section markers.
//
// The format is deliberately simple — little-endian fixed-width
// fields, u32 length prefixes, a magic string and format version up
// front, and a CRC-32 trailer over everything before it — so that any
// single corrupted byte is rejected before state is loaded, and so
// the layout can evolve behind the version number.
//
// Restore follows a construct-then-load discipline: the caller
// rebuilds all wiring from the embedded config and then loads only
// mutable values into the wired structures. Reader helpers therefore
// copy *into* caller-owned slices (arena- and slab-backed arrays must
// keep their identity; live pointers alias them) instead of
// allocating replacements.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"vichar/internal/flit"
)

const (
	magic = "VCHRSNAP"
	// Version is the snapshot format version; Open rejects any other.
	// Version 2 added packet Class/Kind/Req, per-class NI streams,
	// ViChaR class reserves and the transaction-engine section.
	Version = 2
)

// Writer accumulates a snapshot payload and seals it with Finish.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the magic and version already
// emitted.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic...)
	w.U32(Version)
	return w
}

// Section emits a named marker; Reader.Section checks it, turning a
// writer/reader drift into an immediate, located error instead of a
// silent misparse.
func (w *Writer) Section(name string) { w.String(name) }

// U8 emits one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool emits a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 emits a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 emits a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 emits an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int emits an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 emits a float64 by its IEEE-754 bits, so sums and averages
// round-trip bit-exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes emits a length-prefixed byte slice.
func (w *Writer) Bytes(v []byte) {
	w.U32(uint32(len(v)))
	w.buf = append(w.buf, v...)
}

// String emits a length-prefixed string.
func (w *Writer) String(v string) {
	w.U32(uint32(len(v)))
	w.buf = append(w.buf, v...)
}

// U64s emits a length-prefixed []uint64.
func (w *Writer) U64s(v []uint64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// I64s emits a length-prefixed []int64.
func (w *Writer) I64s(v []int64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I64(x)
	}
}

// Ints emits a length-prefixed []int.
func (w *Writer) Ints(v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Int(x)
	}
}

// Bools emits a length-prefixed []bool.
func (w *Writer) Bools(v []bool) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Bool(x)
	}
}

// F64s emits a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

// Flit emits a flit reference — identity as (packet ID, sequence
// index) plus the flit's two mutable fields — or an absence marker
// for nil. Flit objects are rebuilt on restore from their packet via
// flit.MakeFlits, so identity, not contents, is what travels.
func (w *Writer) Flit(f *flit.Flit) {
	if f == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U64(f.Pkt.ID)
	w.Int(f.Seq)
	w.Int(f.VC)
	w.I64(f.ArrivedAt)
}

// Packet emits a packet reference — identity only, or an absence
// marker for nil. Packet contents travel once in the network's packet
// table; everything else references them by ID.
func (w *Writer) Packet(p *flit.Packet) {
	if p == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U64(p.ID)
}

// Finish appends the CRC-32 (IEEE) of everything written and returns
// the sealed snapshot.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, sum)
}

// Resolver maps a flit reference (packet ID, sequence index) back to
// the canonical rebuilt flit object. Each live flit is referenced by
// exactly one container, so the resolver also lets Reader.Flit apply
// the reference's mutable fields in place.
type Resolver func(pkt uint64, seq int) (*flit.Flit, error)

// PacketResolver maps a packet ID back to the canonical rebuilt
// packet object.
type PacketResolver func(id uint64) (*flit.Packet, error)

// Reader walks a sealed snapshot. Errors are sticky: after the first
// failure every accessor returns a zero value and Err reports the
// cause, so load code can read a whole section and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// Open verifies the envelope — length, magic, version, checksum — and
// returns a reader positioned after the version field.
func Open(data []byte) (*Reader, error) {
	const envelope = len(magic) + 4 + 4 // magic + version + trailing crc
	if len(data) < envelope {
		return nil, fmt.Errorf("snap: %d bytes is too short for a snapshot", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snap: bad magic %q", data[:len(magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("snap: checksum mismatch: stored %08x, computed %08x", got, want)
	}
	r := &Reader{buf: body, off: len(magic)}
	if v := r.U32(); v != Version {
		return nil, fmt.Errorf("snap: format version %d not supported (want %d)", v, Version)
	}
	return r, r.err
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Section consumes a marker and checks its name.
func (r *Reader) Section(name string) error {
	got := r.String()
	if r.err != nil {
		return r.err
	}
	if got != name {
		r.fail("expected section %q, found %q", name, got)
	}
	return r.err
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte at offset %d", r.off-1)
		return false
	}
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int stored as int64.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte slice (freshly allocated).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Len reads a u32 length prefix for a caller-managed variable-length
// sequence.
func (r *Reader) Len() int { return int(r.U32()) }

// U64sInto copies a length-prefixed []uint64 into dst, which must
// have exactly the stored length — the restore contract is that the
// constructed topology already sized every array.
func (r *Reader) U64sInto(dst []uint64) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("[]uint64 length %d does not match constructed length %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// I64sInto copies a length-prefixed []int64 into dst (exact length).
func (r *Reader) I64sInto(dst []int64) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("[]int64 length %d does not match constructed length %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.I64()
	}
}

// IntsInto copies a length-prefixed []int into dst (exact length).
func (r *Reader) IntsInto(dst []int) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("[]int length %d does not match constructed length %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.Int()
	}
}

// BoolsInto copies a length-prefixed []bool into dst (exact length).
func (r *Reader) BoolsInto(dst []bool) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("[]bool length %d does not match constructed length %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.Bool()
	}
}

// F64sInto copies a length-prefixed []float64 into dst (exact length).
func (r *Reader) F64sInto(dst []float64) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("[]float64 length %d does not match constructed length %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// room fails unless n more elements of size bytes each could still be
// read — the guard that keeps a corrupted length prefix from driving a
// huge allocation in the append readers.
func (r *Reader) room(n, size int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || n > (len(r.buf)-r.off)/size {
		r.fail("sequence of %d elements exceeds the %d remaining bytes", n, len(r.buf)-r.off)
		return false
	}
	return true
}

// IntsAppend reads a length-prefixed []int appending into dst[:0],
// for scratch-backed slices whose length varies but whose backing
// array should be reused.
func (r *Reader) IntsAppend(dst []int) []int {
	n := r.Len()
	if !r.room(n, 8) {
		return dst[:0]
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.Int())
	}
	return dst
}

// I64sAppend reads a length-prefixed []int64 appending into dst[:0].
func (r *Reader) I64sAppend(dst []int64) []int64 {
	n := r.Len()
	if !r.room(n, 8) {
		return dst[:0]
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.I64())
	}
	return dst
}

// F64sAppend reads a length-prefixed []float64 appending into dst[:0].
func (r *Reader) F64sAppend(dst []float64) []float64 {
	n := r.Len()
	if !r.room(n, 8) {
		return dst[:0]
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.F64())
	}
	return dst
}

// Packet reads a packet reference and resolves it to the canonical
// rebuilt packet. A stored absence marker yields nil.
func (r *Reader) Packet(resolve PacketResolver) (*flit.Packet, error) {
	if !r.Bool() {
		return nil, r.err
	}
	id := r.U64()
	if r.err != nil {
		return nil, r.err
	}
	p, err := resolve(id)
	if err != nil {
		r.fail("%v", err)
		return nil, r.err
	}
	return p, nil
}

// Flit reads a flit reference, resolves it to the canonical rebuilt
// flit and applies the reference's mutable fields. A stored absence
// marker yields nil.
func (r *Reader) Flit(resolve Resolver) (*flit.Flit, error) {
	if !r.Bool() {
		return nil, r.err
	}
	pkt := r.U64()
	seq := r.Int()
	vc := r.Int()
	at := r.I64()
	if r.err != nil {
		return nil, r.err
	}
	f, err := resolve(pkt, seq)
	if err != nil {
		r.fail("%v", err)
		return nil, r.err
	}
	f.VC = vc
	f.ArrivedAt = at
	return f, nil
}
