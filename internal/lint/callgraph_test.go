package lint

import (
	"os"
	"testing"
)

// buildFixtureGraph loads the hotnet fixture and builds its call
// graph.
func buildFixtureGraph(t *testing.T) *callGraph {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLoader(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.load(cwd, []string{"./testdata/src/hotnet"}); err != nil {
		t.Fatal(err)
	}
	return buildCallGraph(l)
}

// nodeByName finds the unique graph node with the display name.
func nodeByName(t *testing.T, g *callGraph, name string) *cgNode {
	t.Helper()
	var found *cgNode
	for _, n := range g.nodes {
		if n.name == name {
			if found != nil {
				t.Fatalf("ambiguous node name %q", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %q", name)
	}
	return found
}

// calleeNames returns the display names of a node's direct callees.
func calleeNames(n *cgNode) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.callees {
		out[c.name] = true
	}
	return out
}

// TestCallGraphEdges pins one example of every edge kind the builder
// claims to resolve (see the package comment of callgraph.go).
func TestCallGraphEdges(t *testing.T) {
	g := buildFixtureGraph(t)
	if !g.rootsFound {
		t.Fatal("Network.Step root not found in fixture")
	}
	step := calleeNames(nodeByName(t, g, "Network.Step"))
	for name, kind := range map[string]string{
		"Network.dispatch":     "direct call",
		"Network.describe":     "direct call",
		"Network.bump":         "method value passed to apply",
		"Network.deliverShard": "func-typed field value fan-out",
	} {
		if !step[name] {
			t.Errorf("Step is missing %s edge to %s (has %v)", kind, name, step)
		}
	}
	dispatch := calleeNames(nodeByName(t, g, "Network.dispatch"))
	if !dispatch["ring.push"] {
		t.Errorf("dispatch is missing interface-dispatch edge to ring.push (has %v)", dispatch)
	}
	compute := calleeNames(nodeByName(t, g, "Network.compute"))
	if !compute["Network.compute.func"] {
		t.Errorf("compute is missing encloser edge to its literal (has %v)", compute)
	}
}

// TestCallGraphHotSet checks BFS reachability: everything on the tick
// path is hot with the right witness root, construction-time and dead
// code are not.
func TestCallGraphHotSet(t *testing.T) {
	g := buildFixtureGraph(t)
	for _, name := range []string{
		"Network.Step", "Network.dispatch", "Network.describe",
		"Network.label", "Network.compute", "Network.observe",
		"Network.bump", "Network.deliverShard", "Network.runSharded",
		"ring.push", "apply",
	} {
		n := nodeByName(t, g, name)
		if !n.hot {
			t.Errorf("%s should be hot", name)
		} else if n.root != "Network.Step" {
			t.Errorf("%s has witness root %q, want Network.Step", name, n.root)
		}
	}
	for _, name := range []string{"NewNet", "Network.auditPass", "Network.reset", "ring.clear"} {
		if nodeByName(t, g, name).hot {
			t.Errorf("%s should not be hot", name)
		}
	}
}
