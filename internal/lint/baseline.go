// The lint.baseline ratchet: pre-existing findings are grandfathered
// by (rule, package, function, count) so the tree lints clean today,
// while any *new* finding — or a baseline that overstates reality
// after a fix, which means it was not regenerated — fails the run.
// Keys deliberately exclude line numbers: unrelated edits that shift
// code may not invalidate the baseline, only changing the actual
// finding count in a function does.
package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// RuleBaselineStale marks a baseline entry whose findings have
// shrunk without the file being regenerated via -update-baseline.
const RuleBaselineStale = "baseline-stale"

// BaselineName is the ratchet file committed at the module root.
const BaselineName = "lint.baseline"

type baselineKey struct {
	Rule, Pkg, Func string
}

type baselineEntry struct {
	count int
	line  int // line in the baseline file, for stale diagnostics
}

// Baseline is a parsed ratchet file.
type Baseline struct {
	Path    string
	entries map[baselineKey]*baselineEntry
}

// ReadBaseline parses the ratchet file. A missing file yields
// (nil, nil): no baseline, nothing grandfathered.
func ReadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := &Baseline{Path: path, entries: map[baselineKey]*baselineEntry{}}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("lint: %s:%d: want 4 tab-separated fields (rule, package, function, count), got %d", path, lineNo, len(fields))
		}
		count, err := strconv.Atoi(fields[3])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("lint: %s:%d: bad count %q", path, lineNo, fields[3])
		}
		key := baselineKey{Rule: fields[0], Pkg: fields[1], Func: fields[2]}
		if _, dup := b.entries[key]; dup {
			return nil, fmt.Errorf("lint: %s:%d: duplicate entry %s %s %s", path, lineNo, key.Rule, key.Pkg, key.Func)
		}
		b.entries[key] = &baselineEntry{count: count, line: lineNo}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteBaseline regenerates the ratchet file from the current
// (post-waiver, pre-baseline) findings.
func WriteBaseline(path string, diags []Diagnostic) error {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{Rule: d.Rule, Pkg: d.Pkg, Func: d.Func}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Rule < b.Rule
	})
	var sb strings.Builder
	sb.WriteString("# vichar-lint baseline: grandfathered findings, keyed rule<TAB>package<TAB>function<TAB>count.\n")
	sb.WriteString("# New findings beyond these counts fail the lint; fixing findings requires\n")
	sb.WriteString("# regenerating with `go run ./cmd/vichar-lint -update-baseline ./...` so the\n")
	sb.WriteString("# ratchet only ever tightens. See DESIGN.md §13.\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%d\n", k.Rule, k.Pkg, k.Func, counts[k])
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// apply suppresses up to the grandfathered count per key and reports
// stale entries: keys whose observed count shrank below the baseline
// in a package this run actually linted. hotRulesRan gates staleness
// of hot-path entries — a run whose patterns exclude the tick roots
// cannot see hot findings and must not call their entries stale.
func (b *Baseline) apply(diags []Diagnostic, linted map[string]bool, hotRulesRan bool) (kept []Diagnostic, suppressed int, stale []Diagnostic) {
	if b == nil {
		return diags, 0, nil
	}
	observed := map[baselineKey]int{}
	for _, d := range diags {
		key := baselineKey{Rule: d.Rule, Pkg: d.Pkg, Func: d.Func}
		observed[key]++
		if e, ok := b.entries[key]; ok && observed[key] <= e.count {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	keys := make([]baselineKey, 0, len(b.entries))
	for k := range b.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return b.entries[keys[i]].line < b.entries[keys[j]].line })
	for _, k := range keys {
		if !linted[k.Pkg] {
			continue
		}
		if k.Rule == RuleHotPathAlloc && !hotRulesRan {
			continue
		}
		e := b.entries[k]
		if got := observed[k]; got < e.count {
			stale = append(stale, Diagnostic{
				Pos:  token.Position{Filename: b.Path, Line: e.line, Column: 1},
				Rule: RuleBaselineStale,
				Pkg:  k.Pkg,
				Func: k.Func,
				Msg: fmt.Sprintf("baseline entry %s %s %s expects %d finding(s) but %d remain; the ratchet only tightens — regenerate with -update-baseline",
					k.Rule, k.Pkg, k.Func, e.count, got),
			})
		}
	}
	return kept, suppressed, stale
}
