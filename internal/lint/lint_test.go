package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// expectation is one (file, line, rule) a fixture marks with //!lint.
type expectation struct {
	file string
	line int
	rule string
}

// readExpectations scans every fixture source for //!lint markers.
// A marker may name several rules: `//!lint rule1 rule2`.
func readExpectations(t *testing.T, root string) map[expectation]bool {
	t.Helper()
	want := map[expectation]bool{}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "//!lint ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[expectation{file: p, line: line, rule: rule}] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures runs the full engine over the fixture tree and
// demands an exact match between produced diagnostics and //!lint
// markers: every marker must fire (positive cases) and nothing else
// may (negative cases — unmarked lines, scope exclusions,
// annotation suppressions).
func TestFixtures(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(cwd, "testdata", "src")
	want := readExpectations(t, root)
	if len(want) == 0 {
		t.Fatal("no //!lint markers found under testdata/src")
	}

	diags, err := Run(cwd, []string{"./testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	got := map[expectation]bool{}
	for _, d := range diags {
		got[expectation{file: d.Pos.Filename, line: d.Pos.Line, rule: d.Rule}] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing diagnostic: %s:%d [%s]", e.file, e.line, e.rule)
		}
	}
	for e := range got {
		if !want[e] {
			t.Errorf("unexpected diagnostic: %s:%d [%s]", e.file, e.line, e.rule)
		}
	}

	// Each rule must be exercised by at least one positive and one
	// negative case: a marker proves the positive; a fixture file
	// containing the rule's trigger pattern with no marker on every
	// line proves the negative (asserted by the exact-match check
	// above). Require presence of a positive per rule here.
	for _, rule := range []string{RuleMapRange, RuleAmbientEntropy, RuleCheckedErrors, RulePanics, RuleConcurrency,
		RuleHotPathAlloc, RuleProbeGuard, RulePhaseOwnership} {
		found := false
		for e := range want {
			if e.rule == rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no fixture exercises rule %s", rule)
		}
	}
}

// TestScopeExclusions pins the scoping contract: deterministic-core
// rules stay quiet outside the deterministic package set.
func TestScopeExclusions(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(cwd, []string{"./testdata/src/stats"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("package stats should lint clean, got %s", d)
	}
}

// TestAnnotationRequiresReason verifies a bare //vichar:ordered (no
// justification) does not suppress.
func TestAnnotationRequiresReason(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(cwd, []string{"./testdata/src/router"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Rule == RuleMapRange && strings.Contains(d.Pos.Filename, "maprange.go") && d.Pos.Line == 40 {
			found = true
		}
	}
	if !found {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Errorf("bare annotation suppressed the diagnostic; got:\n%s", strings.Join(lines, "\n"))
	}
}

// TestRepositoryIsClean is the determinism contract's own regression
// test: the shipped tree must lint clean. Any new map range, ambient
// entropy source, dropped error or unannotated panic in the
// simulator core fails this test.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleRoot, _, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(moduleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the site or annotate it (//vichar:ordered, //vichar:invariant, //vichar:nolint) with a justification")
	}
}

// TestDiagnosticString pins the CLI output format other tooling
// (editors, CI annotations) parses.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: RuleMapRange, Msg: "m"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "f.go", 3, 7
	if got, want := d.String(), "f.go:3:7: [map-range] m"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
