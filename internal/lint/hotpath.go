// The hot-path purity passes (DESIGN.md §13): hot-path-alloc,
// probe-guard and phase-ownership. They run over the call graph of
// callgraph.go after the per-package rules, because all three need
// cross-package facts — reachability from the tick roots, the
// nil-safety of metrics methods, and the resolution of shard
// functions wired through struct fields.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hot-path rule names.
const (
	RuleHotPathAlloc   = "hot-path-alloc"
	RuleProbeGuard     = "probe-guard"
	RulePhaseOwnership = "phase-ownership"
)

// hotChecker runs the cross-package passes.
type hotChecker struct {
	fset       *token.FileSet
	modulePath string
	graph      *callGraph
	linted     map[string]bool // import paths matched by the patterns
	diags      *[]Diagnostic

	ann      map[*ast.File]annotations
	callFuns map[ast.Expr]bool // callee positions of the body being scanned

	// explained records, per file and line, every allocation the AST
	// pass is aware of — findings before suppression plus the lines a
	// //vichar:alloc waiver covers. The escape-audit mode cross-checks
	// the compiler's decisions against this set.
	explained map[string]map[int]bool
}

func newHotChecker(l *loader, graph *callGraph, linted map[string]bool, diags *[]Diagnostic) *hotChecker {
	return &hotChecker{
		fset:       l.fset,
		modulePath: l.modulePath,
		graph:      graph,
		linted:     linted,
		diags:      diags,
		ann:        map[*ast.File]annotations{},
		explained:  map[string]map[int]bool{},
	}
}

func (h *hotChecker) annotationsFor(f *ast.File) annotations {
	a, ok := h.ann[f]
	if !ok {
		a = parseAnnotations(h.fset, f)
		h.ann[f] = a
	}
	return a
}

func (h *hotChecker) report(rule string, pos token.Pos, pkg, fn, format string, args ...any) {
	p := h.fset.Position(pos)
	*h.diags = append(*h.diags, Diagnostic{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...), Pkg: pkg, Func: fn})
}

func (h *hotChecker) markExplained(pos token.Pos) {
	p := h.fset.Position(pos)
	m := h.explained[p.Filename]
	if m == nil {
		m = map[int]bool{}
		h.explained[p.Filename] = m
	}
	m[p.Line] = true
}

// run executes the three passes. Hot-path-alloc covers the hot set;
// probe-guard and phase-ownership are package-wide over the linted
// deterministic packages (guard discipline and shard ownership hold
// everywhere, not only on paths the graph can prove hot).
func (h *hotChecker) run() {
	deterministic := func(p *Package) bool {
		return deterministicPkgs[p.Name] && h.linted[p.ImportPath]
	}
	h.markWaiverLines(deterministic)
	for _, n := range h.graph.hotNodes(deterministic) {
		h.checkAllocs(n)
	}
	for _, p := range h.graph.pkgs {
		if !deterministic(p) {
			continue
		}
		if !h.graph.isMetricsPath(p.ImportPath) {
			h.checkProbeGuards(p)
		}
		h.checkPhaseOwnership(p)
	}
}

// markWaiverLines records every //vichar:alloc (and nolint
// hot-path-alloc) annotation in the deterministic packages as
// explained, so a compiler-reported escape on a waived line does not
// trip the escape audit.
func (h *hotChecker) markWaiverLines(keep func(p *Package) bool) {
	for _, p := range h.graph.pkgs {
		if !keep(p) {
			continue
		}
		for _, f := range p.Files {
			for line, as := range h.annotationsFor(f) {
				for _, a := range as {
					if a.reason == "" {
						continue
					}
					if a.kind == "alloc" || (a.kind == "nolint" && a.rule == RuleHotPathAlloc) {
						pos := f.Pos() // any pos in the file resolves the name
						pp := h.fset.Position(pos)
						m := h.explained[pp.Filename]
						if m == nil {
							m = map[int]bool{}
							h.explained[pp.Filename] = m
						}
						// An annotation covers its own line and the next
						// (doc-comment style), mirroring suppresses.
						m[line] = true
						m[line+1] = true
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------- hot-path-alloc

// allocReport is the shared tail of every allocation finding: mark
// the line explained for the escape audit, then emit unless waived.
func (h *hotChecker) allocReport(n *cgNode, ann annotations, pos token.Pos, what string) {
	h.markExplained(pos)
	line := h.fset.Position(pos).Line
	if ann.suppresses(RuleHotPathAlloc, line) {
		return
	}
	h.report(RuleHotPathAlloc, pos, n.pkg.ImportPath, n.name,
		"%s on the tick path (%s reachable from %s); hoist it to construction time, reuse a scratch buffer, or annotate //vichar:alloc <reason>",
		what, n.name, n.root)
}

// pointerShaped reports whether converting t to an interface stores
// the value directly in the data word (no heap allocation).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// checkAllocs walks one hot function body flagging
// allocation-causing constructs. Nested function literals are their
// own hot nodes and are skipped here; panic arguments are exempt
// (terminating error paths, already policed by panic-discipline).
func (h *hotChecker) checkAllocs(n *cgNode) {
	info := n.pkg.Info
	ann := h.annotationsFor(n.file)
	handled := map[ast.Node]bool{} // &T{} reported once at the unary op
	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			if e == n.lit {
				return true
			}
			if capt := h.capturedVar(n, e); capt != "" {
				h.allocReport(n, ann, e.Pos(), "func literal capturing "+capt+" allocates a closure")
			}
			return false // the literal's body is its own hot node
		case *ast.DeferStmt:
			h.allocReport(n, ann, e.Defer, "defer allocates a deferred-call record")
			return true
		case *ast.GoStmt:
			h.allocReport(n, ann, e.Go, "go statement allocates a goroutine")
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					handled[cl] = true
					h.allocReport(n, ann, e.Pos(), "&-composite literal allocates")
				}
			}
			return true
		case *ast.CompositeLit:
			if handled[e] {
				return true
			}
			tv, ok := info.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				h.allocReport(n, ann, e.Pos(), "slice literal allocates")
			case *types.Map:
				h.allocReport(n, ann, e.Pos(), "map literal allocates")
			}
			return true
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						h.allocReport(n, ann, e.OpPos, "string concatenation allocates")
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			// A method value (x.M used as a value) allocates a bound
			// closure.
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal && !h.callFuns[e] {
				h.allocReport(n, ann, e.Pos(), "method value allocates a closure")
			}
			return true
		case *ast.CallExpr:
			return h.checkCall(n, ann, info, e)
		}
		return true
	}
	// Pre-pass: record which selector expressions are call callees so
	// the method-value case above can tell `x.M()` from `x.M`.
	h.callFuns = map[ast.Expr]bool{}
	ast.Inspect(n.body(), func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			h.callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(n.body(), walk)
}

// checkCall handles the CallExpr cases of checkAllocs: builtins,
// allocating conversions, fmt/strings, and interface boxing of
// arguments. Returns false when the subtree should be skipped.
func (h *hotChecker) checkCall(n *cgNode, ann annotations, info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// Terminating error path; panic-discipline owns it. The
				// compiler still heap-allocates the panic argument, so
				// mark every line of the call as explained for the
				// escape audit.
				for line := h.fset.Position(call.Pos()).Line; line <= h.fset.Position(call.End()).Line; line++ {
					p := h.fset.Position(call.Pos())
					m := h.explained[p.Filename]
					if m == nil {
						m = map[int]bool{}
						h.explained[p.Filename] = m
					}
					m[line] = true
				}
				return false
			case "make":
				h.allocReport(n, ann, call.Pos(), "make allocates")
			case "new":
				h.allocReport(n, ann, call.Pos(), "new allocates")
			case "append":
				h.allocReport(n, ann, call.Pos(), "append may grow its backing array")
			}
			return true
		}
	}
	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		if from, ok := info.Types[call.Args[0]]; ok && allocatingConversion(from.Type, to) {
			h.allocReport(n, ann, call.Pos(), "conversion between string and byte/rune slice allocates")
		}
		return true
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			h.allocReport(n, ann, call.Pos(), "fmt."+fn.Name()+" allocates")
			return true // args feed the flagged call; don't double-report boxing
		case "strings":
			h.allocReport(n, ann, call.Pos(), "strings."+fn.Name()+" allocates")
			return true
		}
	}
	// Interface boxing: a concrete, non-pointer-shaped argument
	// passed to an interface parameter heap-allocates the box.
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			h.checkBoxing(n, ann, info, call, sig)
		}
	}
	return true
}

// allocatingConversion reports whether a conversion from -> to copies
// its payload (string <-> []byte / []rune).
func allocatingConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRune := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRune(to)) || (isByteOrRune(from) && isStr(to))
}

// checkBoxing flags concrete values boxed into interface parameters.
// Constants are exempt (the compiler materializes them statically),
// as are pointer-shaped values (stored directly in the data word).
func (h *hotChecker) checkBoxing(n *cgNode, ann annotations, info *types.Info, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice; no per-element boxing
			}
			s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		h.allocReport(n, ann, arg.Pos(),
			"argument boxes "+types.TypeString(at, types.RelativeTo(n.pkg.Types))+" into an interface, which allocates")
	}
}

// capturedVar returns the name of a variable the literal captures
// from its enclosing function, or "" if it captures nothing (the
// compiler materializes capture-free literals statically).
func (h *hotChecker) capturedVar(n *cgNode, lit *ast.FuncLit) string {
	info := n.pkg.Info
	encl := n.body()
	captured := ""
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared in the enclosing function (or its params/receiver)
		// but outside the literal itself.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		start := encl.Pos()
		if n.decl != nil {
			start = n.decl.Pos() // include receiver and parameters
		}
		if v.Pos() >= start && v.Pos() <= encl.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// ---------------------------------------------------------------- probe-guard

// checkProbeGuards enforces that every call of an internal/metrics
// method from a deterministic package is either nil-receiver-safe in
// the callee (the probe convention) or dominated by an
// `if x != nil` / `if x == nil { return }` guard on a prefix of the
// receiver chain. This pins the observability layer's
// ~zero-cost-when-disabled property: no probe wiring can dereference
// or record unconditionally.
func (h *hotChecker) checkProbeGuards(p *Package) {
	info := p.Info
	for _, f := range p.Files {
		ann := h.annotationsFor(f)
		w := &pathWalker{}
		w.inspect(f, func(x ast.Node, path []ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			// Constructors wire probes at build time, outside the tick
			// loop; the disabled-observability contract is about the
			// per-cycle path (same carve-out as panic-discipline).
			for _, anc := range path {
				if fd, ok := anc.(*ast.FuncDecl); ok && constructorName(fd.Name.Name) {
					return
				}
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !h.graph.isMetricsPath(fn.Pkg().Path()) {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return // package-level constructor: not a probe access
			}
			if h.nilSafeMethod(fn) {
				return
			}
			prefixes := receiverPrefixes(sel.X)
			if len(prefixes) > 0 && guardedByNilCheck(info, path, prefixes) {
				return
			}
			line := h.fset.Position(call.Pos()).Line
			if ann.suppresses(RuleProbeGuard, line) {
				return
			}
			h.report(RuleProbeGuard, call.Pos(), p.ImportPath, "",
				"metrics call %s.%s is not dominated by a nil guard on its receiver and the method is not nil-receiver-safe; wrap it in `if x != nil` or annotate //vichar:nolint %s <reason>",
				exprString(sel.X), fn.Name(), RuleProbeGuard)
		})
	}
}

// nilSafeMethod reports whether the metrics method's first statement
// is the nil-receiver bail-out `if p == nil { return }` (possibly
// `if p == nil || ... { return }`).
func (h *hotChecker) nilSafeMethod(fn *types.Func) bool {
	n := h.graph.byFunc[fn]
	if n == nil || n.decl == nil || n.decl.Recv == nil || len(n.decl.Recv.List) == 0 {
		return false
	}
	names := n.decl.Recv.List[0].Names
	if len(names) == 0 {
		return false
	}
	recv := names[0].Name
	body := n.decl.Body
	if body == nil || len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return condNilEq(ifs.Cond, recv) && terminates(ifs.Body)
}

// condNilEq reports whether cond guarantees `name == nil` when true
// travels to the then-branch: a `name == nil` comparison, possibly
// as a disjunct (`name == nil || ...` still implies the branch runs
// whenever name is nil).
func condNilEq(cond ast.Expr, name string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condNilEq(e.X, name) || condNilEq(e.Y, name)
		case token.EQL:
			return nilComparison(e, name)
		}
	}
	return false
}

// nilComparison reports whether e compares the named identifier (or
// dotted path) against nil with the expression's own operator.
func nilComparison(e *ast.BinaryExpr, name string) bool {
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	matches := func(x ast.Expr) bool { return exprString(ast.Unparen(x)) == name }
	return (isNil(e.X) && matches(e.Y)) || (isNil(e.Y) && matches(e.X))
}

// condNilNeq reports whether cond guarantees `name != nil` in the
// then-branch: a `name != nil` conjunct (`name != nil && ...`).
func condNilNeq(cond ast.Expr, name string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condNilNeq(e.X, name) || condNilNeq(e.Y, name)
		case token.NEQ:
			return nilComparison(e, name)
		}
	}
	return false
}

// terminates reports whether the block always transfers control away
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// receiverPrefixes renders the dotted prefixes of a receiver chain:
// for `n.obs.reg` it returns ["n", "n.obs", "n.obs.reg"]. A guard on
// any prefix dominates the access. Non-ident/selector chains yield
// nothing (indexing and calls are not tractable as guard subjects).
func receiverPrefixes(e ast.Expr) []string {
	var parts []string
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			parts = append(parts, v.Sel.Name)
			e = v.X
		case *ast.Ident:
			parts = append(parts, v.Name)
			out := make([]string, 0, len(parts))
			acc := ""
			for i := len(parts) - 1; i >= 0; i-- {
				if acc == "" {
					acc = parts[i]
				} else {
					acc += "." + parts[i]
				}
				out = append(out, acc)
			}
			return out
		default:
			return nil
		}
	}
}

// exprString renders an ident/selector chain as source text.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		x := exprString(v.X)
		if x == "" {
			return ""
		}
		return x + "." + v.Sel.Name
	}
	return ""
}

// guardedByNilCheck reports whether any prefix of the receiver chain
// is proven non-nil at the call: an enclosing `if prefix != nil`
// then-branch (or `if prefix == nil` else-branch), or an earlier
// sibling `if prefix == nil { return/... }` early exit.
func guardedByNilCheck(info *types.Info, path []ast.Node, prefixes []string) bool {
	for _, name := range prefixes {
		for i := len(path) - 1; i >= 0; i-- {
			ifs, ok := path[i].(*ast.IfStmt)
			if !ok {
				continue
			}
			inThen := i+1 < len(path) && path[i+1] == ifs.Body
			inElse := i+1 < len(path) && ifs.Else != nil && path[i+1] == ifs.Else
			if inThen && condNilNeq(ifs.Cond, name) {
				return true
			}
			if inElse && condNilEq(ifs.Cond, name) {
				return true
			}
		}
		// Early-exit guard in an enclosing block, before the statement
		// leading to the call.
		for i := 0; i < len(path)-1; i++ {
			block, ok := path[i].(*ast.BlockStmt)
			if !ok {
				continue
			}
			for _, stmt := range block.List {
				if stmt == path[i+1] || containsNode(stmt, path[i+1]) {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Init != nil {
					continue
				}
				if condNilEq(ifs.Cond, name) && terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// containsNode reports whether outer's extent encloses inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// pathWalker is an ast.Inspect wrapper that maintains the ancestor
// path of the visited node.
type pathWalker struct {
	stack []ast.Node
}

func (w *pathWalker) inspect(root ast.Node, visit func(x ast.Node, path []ast.Node)) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		visit(x, w.stack)
		w.stack = append(w.stack, x)
		return true
	})
}

// ---------------------------------------------------------------- phase-ownership

// checkPhaseOwnership machine-checks the sharded-phase contract of
// DESIGN.md §10: a function passed to runSharded may only write
// state selected by a shard-derived index. It resolves the shard
// functions at each runSharded call site — inline literals, named
// methods, and functions wired through struct fields — and analyzes
// each once.
func (h *hotChecker) checkPhaseOwnership(p *Package) {
	info := p.Info
	analyzed := map[*cgNode]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			var calleeName string
			switch fe := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeName = fe.Name
			case *ast.SelectorExpr:
				calleeName = fe.Sel.Name
			}
			if calleeName != "runSharded" {
				return true
			}
			for _, arg := range call.Args {
				for _, n := range h.shardFuncNodes(info, arg) {
					if analyzed[n] {
						continue
					}
					analyzed[n] = true
					h.analyzeShardFunc(n)
				}
			}
			return true
		})
	}
}

// shardFuncNodes resolves a runSharded argument to the function
// node(s) it denotes.
func (h *hotChecker) shardFuncNodes(info *types.Info, arg ast.Expr) []*cgNode {
	if n := h.graph.funcValueNode(info, arg); n != nil {
		return []*cgNode{n}
	}
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if field, ok := info.Uses[sel.Sel].(*types.Var); ok && field.IsField() {
			return h.graph.fieldAssigns[field]
		}
	}
	return nil
}

// analyzeShardFunc checks one shard function body. Shared roots are
// the receiver (for methods) and every variable captured from an
// enclosing scope (for literals); writes through them require a
// shard-derived index somewhere in the access chain. Local aliases
// into shared state (`l := &n.links[i]`) are accepted as shard-owned
// by construction — the contract is enforced at the selection point.
func (h *hotChecker) analyzeShardFunc(n *cgNode) {
	info := n.pkg.Info
	ann := h.annotationsFor(n.file)
	body := n.body()

	var params []*ast.Field
	start := body.Pos()
	var recvObj types.Object
	if n.decl != nil {
		start = n.decl.Pos()
		if n.decl.Type.Params != nil {
			params = n.decl.Type.Params.List
		}
		if n.decl.Recv != nil && len(n.decl.Recv.List) > 0 && len(n.decl.Recv.List[0].Names) > 0 {
			recvObj = info.Defs[n.decl.Recv.List[0].Names[0]]
		}
	} else {
		start = n.lit.Pos()
		if n.lit.Type.Params != nil {
			params = n.lit.Type.Params.List
		}
	}

	// The shard parameter is the function's first parameter.
	derived := map[types.Object]bool{}
	if len(params) > 0 && len(params[0].Names) > 0 {
		if obj := info.Defs[params[0].Names[0]]; obj != nil {
			derived[obj] = true
		}
	}

	// Fixpoint: anything computed from a derived value is derived.
	usesDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && derived[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				rhsDerived := false
				for _, r := range s.Rhs {
					if usesDerived(r) {
						rhsDerived = true
					}
				}
				if !rhsDerived {
					return true
				}
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil && !derived[obj] {
							derived[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if !usesDerived(s.X) {
					return true
				}
				for _, k := range []ast.Expr{s.Key, s.Value} {
					if id, ok := k.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil && !derived[obj] {
							derived[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// shared reports whether the chain root lives outside the shard
	// function (captured variable, receiver, or package-level state).
	shared := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if recvObj != nil && obj == recvObj {
			return true
		}
		return v.Pos() < start || v.Pos() > body.End()
	}

	flag := func(pos token.Pos, target string) {
		line := h.fset.Position(pos).Line
		if ann.suppresses(RulePhaseOwnership, line) {
			return
		}
		h.report(RulePhaseOwnership, pos, n.pkg.ImportPath, n.name,
			"write to %s in sharded phase function %s without a shard-derived index; shard functions may only mutate state their shard owns (DESIGN.md §10) or annotate //vichar:nolint %s <reason>",
			target, n.name, RulePhaseOwnership)
	}

	checkTarget := func(e ast.Expr) {
		root, hasDerivedIndex := chainRoot(e, usesDerived)
		if root == nil || !shared(root) {
			return
		}
		if !hasDerivedIndex {
			flag(e.Pos(), exprChainString(e))
		}
	}

	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.lit {
			return false // nested literal: out of the phase contract's scope
		}
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && (id.Name == "_" || !shared(id)) {
					continue
				}
				checkTarget(l)
			}
		case *ast.IncDecStmt:
			checkTarget(s.X)
		case *ast.ExprStmt:
			// A discarded method-call result on shared state is
			// presumptively a mutation; require shard ownership of the
			// receiver chain.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, isMethod := info.Selections[sel]; !isMethod {
				return true
			}
			root, hasDerivedIndex := chainRoot(sel.X, usesDerived)
			if root == nil || !shared(root) {
				return true
			}
			if !hasDerivedIndex {
				flag(call.Pos(), exprChainString(sel.X)+"."+sel.Sel.Name+"(...)")
			}
		}
		return true
	})
}

// chainRoot walks an access chain (selectors, indexing, derefs) to
// its root identifier, reporting whether any index along the chain
// uses a shard-derived value.
func chainRoot(e ast.Expr, usesDerived func(ast.Expr) bool) (*ast.Ident, bool) {
	hasDerived := false
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v, hasDerived
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			if usesDerived(v.Index) {
				hasDerived = true
			}
			e = v.X
		case *ast.SliceExpr:
			for _, ix := range []ast.Expr{v.Low, v.High, v.Max} {
				if ix != nil && usesDerived(ix) {
					hasDerived = true
				}
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil, hasDerived
		}
	}
}

// exprChainString renders an access chain for diagnostics, falling
// back to a placeholder for complex sub-expressions.
func exprChainString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprChainString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprChainString(v.X) + "[...]"
	case *ast.SliceExpr:
		return exprChainString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprChainString(v.X)
	}
	return "<expr>"
}
