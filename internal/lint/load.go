// Package lint is the vichar-lint static-analysis engine: a
// stdlib-only (go/parser + go/ast + go/types) checker enforcing the
// simulator's determinism and invariant contract (see DESIGN.md,
// "Determinism & invariants"):
//
//   - map-range: no iteration over Go maps in the deterministic
//     simulator-core packages (map iteration order is randomized and
//     would make cycle-accurate runs seed-irreproducible); opt out
//     with `//vichar:ordered <reason>` at sites proven
//     order-insensitive.
//   - ambient-entropy: no global math/rand functions and no
//     time.Now/Since/Until anywhere in the simulator — all randomness
//     must flow through a seeded *rand.Rand derived from Config.Seed.
//   - checked-errors: error returns from simulator-internal calls
//     (buffers.Buffer, router pipeline methods, ...) must not be
//     silently dropped in the deterministic packages.
//   - panic-discipline: panics only in constructors or at annotated
//     invariant-violation sites (`//vichar:invariant <reason>`).
//
// The engine loads packages itself (no go/packages dependency): it
// resolves `./...`-style patterns against the enclosing module,
// parses every package, topologically sorts the local import graph
// and type-checks with a chained importer — local packages from the
// in-process graph, everything else from source via go/importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Dir is the absolute directory of the package sources.
	Dir string
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Name is the package name (clause name, not path base).
	Name string
	// Files are the parsed non-test sources, ordered by file name.
	Files []*ast.File
	// TestFiles are the parsed _test.go sources (in-package and
	// external); they are scanned syntactically, not type-checked.
	TestFiles []*ast.File
	// Types and Info carry the type-checker output for Files.
	Types *types.Package
	Info  *types.Info
}

// loader resolves patterns, parses and type-checks packages.
type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string

	pkgs   map[string]*Package       // by import path
	byPath map[string]*types.Package // type-checked, by import path
	src    types.Importer            // source importer for non-local deps
}

// findModule locates the enclosing module root and path starting at
// dir.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// newLoader builds a loader rooted at the module enclosing cwd.
func newLoader(cwd string) (*loader, error) {
	root, path, err := findModule(cwd)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: path,
		pkgs:       map[string]*Package{},
		byPath:     map[string]*types.Package{},
		src:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// expand resolves the patterns (directories, optionally ending in
// "/...") into a sorted list of package directories containing Go
// files. Directories named testdata (and hidden/underscore ones) are
// skipped during recursive expansion unless the pattern root itself
// lies inside one — that is how the linter's own fixture suite loads
// its test packages.
func (l *loader) expand(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(cwd, root)
		}
		root = filepath.Clean(root)
		if !recursive {
			if ok, err := hasGoFiles(root); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", root)
			}
			add(root)
			continue
		}
		inTestdata := strings.Contains(root+string(filepath.Separator), string(filepath.Separator)+"testdata"+string(filepath.Separator))
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || (name == "testdata" && !inTestdata)) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(p); err != nil {
				return err
			} else if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go
// file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// importPathFor maps a package directory to its module-qualified
// import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// parse reads the directory into a Package (unchecked).
func (l *loader) parse(dir string) (*Package, error) {
	ip, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Dir: dir, ImportPath: ip}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, file)
			continue
		}
		if p.Name == "" {
			p.Name = file.Name.Name
		} else if p.Name != file.Name.Name {
			return nil, fmt.Errorf("lint: %s: packages %s and %s in one directory", dir, p.Name, file.Name.Name)
		}
		p.Files = append(p.Files, file)
	}
	if p.Name == "" && len(p.TestFiles) > 0 {
		p.Name = p.TestFiles[0].Name.Name
	}
	return p, nil
}

// localImports returns the package's imports within the module,
// sorted.
func (l *loader) localImports(p *Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// chainImporter resolves local packages from the loaded graph and
// everything else (the standard library) from source.
type chainImporter struct{ l *loader }

func (c chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.l.byPath[path]; ok {
		return p, nil
	}
	if p, ok := c.l.pkgs[path]; ok {
		if err := c.l.check(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if path == c.l.modulePath || strings.HasPrefix(path, c.l.modulePath+"/") {
		// A module package imported by a linted one but not matched by
		// the patterns: load it on demand (type-checked, not linted).
		dir := filepath.Join(c.l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(path, c.l.modulePath)))
		p, err := c.l.parse(dir)
		if err != nil {
			return nil, err
		}
		c.l.pkgs[path] = p
		if err := c.l.check(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return c.l.src.Import(path)
}

// check type-checks the package (and, via the importer, its local
// dependencies first).
func (l *loader) check(p *Package) error {
	if p.Types != nil {
		return nil
	}
	if len(p.Files) == 0 {
		return nil // test-only directory; scanned syntactically
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: chainImporter{l}}
	tpkg, err := conf.Check(p.ImportPath, l.fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	p.Types, p.Info = tpkg, info
	l.byPath[p.ImportPath] = tpkg
	return nil
}

// load resolves, parses and type-checks every package matched by the
// patterns, returned sorted by import path.
func (l *loader) load(cwd string, patterns []string) ([]*Package, error) {
	dirs, err := l.expand(cwd, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.parse(dir)
		if err != nil {
			return nil, err
		}
		if p.Name == "" {
			continue
		}
		l.pkgs[p.ImportPath] = p
		pkgs = append(pkgs, p)
	}
	// Type-check in deterministic order; the chained importer pulls
	// local dependencies in first, and detects cycles as ordinary
	// import cycles through the type checker.
	for _, p := range pkgs {
		if err := l.check(p); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}
