// Static call graph over the loaded module, rooted at the cycle
// kernel's tick entry points. The hot-path purity passes (hotpath.go)
// run over the reachable set — the "hot set" — so a new allocation or
// ownership violation is caught wherever it hides, not just in the
// function that textually contains the tick loop.
//
// Edge kinds:
//
//   - direct: `f()` / `x.M()` resolved through go/types to a declared
//     function or concrete method.
//   - interface dispatch: `x.M()` where x is interface-typed fans out
//     to method M of every named type in the module that implements
//     the interface (sound over-approximation; the simulator's Buffer
//     and CreditView plug points are exactly this shape).
//   - function values: a function or method referenced as a value
//     (passed as an argument, assigned, stored in a composite
//     literal) is treated as called by the referencing function —
//     the callback idiom of runSharded and traffic.Generator.Tick.
//   - func fields: a call through a func-typed struct field fans out
//     to every function value assigned to that field anywhere in the
//     module (the flitLink.deliver closures wired in network.New).
//   - literals: a func literal is an edge target of its enclosing
//     function (defining a closure on the tick path almost always
//     means running — and allocating — it there).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// rootSpec names a hot-set root by package name, receiver base type
// and method name. Matching is name-based so the linter's fixture
// suite can declare its own roots.
type rootSpec struct {
	pkg, recv, name string
}

// hotRoots are the tick entry points of DESIGN.md §13: the cycle
// kernel's Step and the router's compute stage. Buffer operations and
// every other per-cycle path are reached from these transitively.
var hotRoots = []rootSpec{
	{pkg: "network", recv: "Network", name: "Step"},
	{pkg: "router", recv: "Router", name: "Tick"},
}

// cgNode is one function in the call graph: a declared function or
// method (decl != nil) or a function literal (lit != nil).
type cgNode struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	fn   *types.Func // nil for literals

	name    string // display name, e.g. "Network.Step" or "New.func"
	callees []*cgNode

	hot  bool
	root string // name of the root whose BFS reached this node
}

// body returns the node's function body.
func (n *cgNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

// callGraph is the module-wide graph plus the indexes the hot-path
// passes need.
type callGraph struct {
	fset       *token.FileSet
	modulePath string

	pkgs  []*Package
	nodes []*cgNode // all nodes, deterministic order

	byDecl map[*ast.FuncDecl]*cgNode
	byLit  map[*ast.FuncLit]*cgNode
	byFunc map[*types.Func]*cgNode

	// fieldAssigns maps a func-typed struct field to every function
	// value assigned to it anywhere in the module.
	fieldAssigns map[*types.Var][]*cgNode

	// namedTypes are the module's named (non-interface) types, for
	// interface-dispatch resolution.
	namedTypes []*types.Named

	// implCache memoizes interface-method fan-out.
	implCache map[*types.Func][]*cgNode

	// rootsFound records whether any tick root was present in the
	// loaded graph; without roots the hot-path-alloc pass cannot run,
	// so baseline staleness for it is not decidable.
	rootsFound bool
}

// buildCallGraph constructs the graph over every type-checked package
// the loader knows (linted and loaded-on-demand alike) and marks the
// hot set from hotRoots.
func buildCallGraph(l *loader) *callGraph {
	g := &callGraph{
		fset:         l.fset,
		modulePath:   l.modulePath,
		byDecl:       map[*ast.FuncDecl]*cgNode{},
		byLit:        map[*ast.FuncLit]*cgNode{},
		byFunc:       map[*types.Func]*cgNode{},
		fieldAssigns: map[*types.Var][]*cgNode{},
		implCache:    map[*types.Func][]*cgNode{},
	}
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.pkgs[path]
		if p.Info == nil {
			continue
		}
		g.pkgs = append(g.pkgs, p)
	}
	g.collectNodes()
	g.collectNamedTypes()
	g.collectFieldAssigns()
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	g.markHot()
	return g
}

// funcDisplayName renders "Recv.Name" for methods, "Name" otherwise.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName strips pointers and generics from a receiver type
// expression, leaving the base type name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

// collectNodes creates a node per function declaration and per func
// literal, in file order.
func (g *callGraph) collectNodes() {
	for _, p := range g.pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &cgNode{pkg: p, file: f, decl: fd, name: funcDisplayName(fd)}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					n.fn = obj
					g.byFunc[obj] = n
				}
				g.byDecl[fd] = n
				g.nodes = append(g.nodes, n)
				encl := n
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					lit, ok := x.(*ast.FuncLit)
					if !ok {
						return true
					}
					ln := &cgNode{pkg: p, file: f, lit: lit, name: encl.name + ".func"}
					g.byLit[lit] = ln
					g.nodes = append(g.nodes, ln)
					return true
				})
			}
		}
	}
}

// collectNamedTypes gathers the concrete named types of every module
// package for interface-dispatch resolution.
func (g *callGraph) collectNamedTypes() {
	for _, p := range g.pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
}

// funcValueNode resolves an expression used as a function value — a
// func literal, a function ident, or a method value — to its node.
func (g *callGraph) funcValueNode(info *types.Info, e ast.Expr) *cgNode {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[v]
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return g.byFunc[fn]
		}
	}
	return nil
}

// collectFieldAssigns indexes every function value stored into a
// struct field: `x.F = fn`, `T{F: fn}`.
func (g *callGraph) collectFieldAssigns() {
	for _, p := range g.pkgs {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch s := x.(type) {
				case *ast.AssignStmt:
					for i, lhs := range s.Lhs {
						if i >= len(s.Rhs) {
							break
						}
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						field, ok := info.Uses[sel.Sel].(*types.Var)
						if !ok || !field.IsField() {
							continue
						}
						if n := g.funcValueNode(info, s.Rhs[i]); n != nil {
							g.fieldAssigns[field] = append(g.fieldAssigns[field], n)
						}
					}
				case *ast.CompositeLit:
					for _, elt := range s.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						field, ok := info.Uses[key].(*types.Var)
						if !ok || !field.IsField() {
							continue
						}
						if n := g.funcValueNode(info, kv.Value); n != nil {
							g.fieldAssigns[field] = append(g.fieldAssigns[field], n)
						}
					}
				}
				return true
			})
		}
	}
}

// implementations fans an interface method out to the matching
// concrete methods of every named type in the module.
func (g *callGraph) implementations(m *types.Func) []*cgNode {
	if cached, ok := g.implCache[m]; ok {
		return cached
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*cgNode
	for _, named := range g.namedTypes {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.byFunc[fn]; n != nil {
			out = append(out, n)
		}
	}
	g.implCache[m] = out
	return out
}

// addEdges walks one node's body (literals excluded — they are their
// own nodes) and records its callees.
func (g *callGraph) addEdges(n *cgNode) {
	info := n.pkg.Info
	add := func(callee *cgNode) {
		if callee != nil {
			n.callees = append(n.callees, callee)
		}
	}
	// funNodes marks the Fun operand of each call so a function
	// reference used as a callee is not double-counted as a value.
	funNodes := map[ast.Node]bool{}
	body := n.body()
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.lit {
			add(g.byLit[lit]) // defining a closure on the hot path
			return false      // its body is the literal node's own walk
		}
		switch e := x.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			funNodes[fun] = true
			switch fe := fun.(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[fe].(*types.Func); ok {
					add(g.byFunc[fn])
				}
			case *ast.SelectorExpr:
				funNodes[fe.Sel] = true
				switch obj := info.Uses[fe.Sel].(type) {
				case *types.Func:
					sig, _ := obj.Type().(*types.Signature)
					if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
						for _, impl := range g.implementations(obj) {
							add(impl)
						}
					} else {
						add(g.byFunc[obj])
					}
				case *types.Var:
					// Call through a func-typed field: fan out to every
					// value ever assigned to it.
					if obj.IsField() {
						for _, target := range g.fieldAssigns[obj] {
							add(target)
						}
					}
				}
			}
		case *ast.Ident:
			if funNodes[e] {
				return true
			}
			if fn, ok := info.Uses[e].(*types.Func); ok {
				add(g.byFunc[fn]) // function value
			}
		case *ast.SelectorExpr:
			if funNodes[e] || funNodes[e.Sel] {
				return true
			}
			switch obj := info.Uses[e.Sel].(type) {
			case *types.Func:
				add(g.byFunc[obj]) // method value
			case *types.Var:
				// A func-typed field referenced as a value (passed as a
				// callback): whoever receives it may call it, so fan out
				// to every function assigned to the field.
				if obj.IsField() {
					if _, ok := obj.Type().Underlying().(*types.Signature); ok {
						for _, target := range g.fieldAssigns[obj] {
							add(target)
						}
					}
				}
			}
		}
		return true
	})
}

// markHot BFS-marks every node reachable from the root specs.
func (g *callGraph) markHot() {
	var queue []*cgNode
	for _, n := range g.nodes {
		if n.decl == nil || n.decl.Recv == nil {
			continue
		}
		for _, spec := range hotRoots {
			if n.pkg.Name == spec.pkg && n.decl.Name.Name == spec.name &&
				recvTypeName(n.decl.Recv.List[0].Type) == spec.recv {
				n.hot = true
				n.root = n.name
				queue = append(queue, n)
			}
		}
	}
	g.rootsFound = len(queue) > 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.callees {
			if !c.hot {
				c.hot = true
				c.root = n.root
				queue = append(queue, c)
			}
		}
	}
}

// hotNodes returns the hot set restricted to packages satisfying
// keep, in deterministic (position) order.
func (g *callGraph) hotNodes(keep func(p *Package) bool) []*cgNode {
	var out []*cgNode
	for _, n := range g.nodes {
		if n.hot && keep(n.pkg) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := g.fset.Position(out[i].body().Pos()), g.fset.Position(out[j].body().Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// isMetricsPath reports whether the import path is the observability
// package (internal/metrics), whose own internals are exempt from the
// probe-guard rule.
func (g *callGraph) isMetricsPath(path string) bool {
	return strings.HasSuffix(path, "/internal/metrics")
}
