package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diag(rule, pkg, fn string) Diagnostic {
	return Diagnostic{Rule: rule, Pkg: pkg, Func: fn}
}

// TestBaselineRoundTrip writes findings out and reads the same counts
// back.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), BaselineName)
	diags := []Diagnostic{
		diag(RuleHotPathAlloc, "vichar/internal/buffers", "DAMQ.Write"),
		diag(RuleHotPathAlloc, "vichar/internal/buffers", "DAMQ.Write"),
		diag(RuleHotPathAlloc, "vichar/internal/core", "UBS.Pop"),
	}
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("baseline read back as missing")
	}
	if got := b.entries[baselineKey{RuleHotPathAlloc, "vichar/internal/buffers", "DAMQ.Write"}]; got == nil || got.count != 2 {
		t.Errorf("DAMQ.Write entry = %+v, want count 2", got)
	}
	if got := b.entries[baselineKey{RuleHotPathAlloc, "vichar/internal/core", "UBS.Pop"}]; got == nil || got.count != 1 {
		t.Errorf("UBS.Pop entry = %+v, want count 1", got)
	}
}

// TestBaselineMissingFile pins the no-baseline contract: (nil, nil).
func TestBaselineMissingFile(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope"))
	if b != nil || err != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", b, err)
	}
}

// TestBaselineRejectsMalformed pins the strict-parse contract.
func TestBaselineRejectsMalformed(t *testing.T) {
	for name, content := range map[string]string{
		"three fields": "hot-path-alloc\tpkg\t3\n",
		"bad count":    "hot-path-alloc\tpkg\tFn\tzero\n",
		"zero count":   "hot-path-alloc\tpkg\tFn\t0\n",
		"duplicate":    "r\tp\tf\t1\nr\tp\tf\t2\n",
	} {
		path := filepath.Join(t.TempDir(), BaselineName)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBaseline(path); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestBaselineApply covers the three ratchet outcomes at once:
// grandfathered findings are suppressed up to their count, excess
// findings are kept, and over-stated entries in linted packages come
// back stale.
func TestBaselineApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), BaselineName)
	grandfathered := []Diagnostic{
		diag(RuleHotPathAlloc, "m/a", "F"),
		diag(RuleHotPathAlloc, "m/a", "F"),
		diag(RuleHotPathAlloc, "m/b", "G"),
		diag(RuleProbeGuard, "m/c", "H"),
	}
	if err := WriteBaseline(path, grandfathered); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Today's run: F regressed to 3 findings (one new), G was fixed
	// (stale), H's package was not linted (not stale).
	today := []Diagnostic{
		diag(RuleHotPathAlloc, "m/a", "F"),
		diag(RuleHotPathAlloc, "m/a", "F"),
		diag(RuleHotPathAlloc, "m/a", "F"),
	}
	linted := map[string]bool{"m/a": true, "m/b": true}
	kept, suppressed, stale := b.apply(today, linted, true)
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(kept) != 1 || kept[0].Func != "F" {
		t.Errorf("kept = %v, want the one excess F finding", kept)
	}
	if len(stale) != 1 || stale[0].Func != "G" || stale[0].Rule != RuleBaselineStale {
		t.Errorf("stale = %v, want exactly the fixed G entry", stale)
	}
	if len(stale) == 1 && !strings.Contains(stale[0].Msg, "-update-baseline") {
		t.Errorf("stale message should point at -update-baseline: %s", stale[0].Msg)
	}

	// The same shrink is NOT stale when the hot rules could not run
	// (patterns excluded the tick roots).
	_, _, stale = b.apply(today, linted, false)
	if len(stale) != 0 {
		t.Errorf("hot-path entries must not go stale without roots, got %v", stale)
	}
}
