// Analyze is the full lint pipeline: per-package determinism rules,
// the cross-package hot-path purity passes over the call graph, and
// the lint.baseline ratchet. Run (rules.go) is the thin wrapper the
// tests and simple callers use.
package lint

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Options configures an Analyze run.
type Options struct {
	// Patterns are the package patterns to lint; empty means "./...".
	Patterns []string
	// BaselinePath overrides the ratchet file location; empty means
	// <module root>/lint.baseline (applied only if it exists).
	BaselinePath string
	// NoBaseline disables the ratchet entirely (raw findings).
	NoBaseline bool
}

// Result is the outcome of one Analyze run.
type Result struct {
	// Diags are the actionable findings: post-waiver, post-baseline,
	// including baseline-stale entries. Non-empty means the lint fails.
	Diags []Diagnostic
	// Raw are the post-waiver, pre-baseline findings — the set a
	// regenerated baseline would grandfather.
	Raw []Diagnostic
	// Suppressed counts findings the baseline grandfathered.
	Suppressed int
	// Hot is the AST pass's hot-set view, for EscapeAudit.
	Hot *HotReport
	// ModuleRoot is the enclosing module directory.
	ModuleRoot string
	// BaselinePath is the ratchet file applied, or "" if none was.
	BaselinePath string
}

// Analyze loads the packages matched by the patterns and runs every
// pass.
func Analyze(cwd string, opts Options) (*Result, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := newLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.load(cwd, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	linted := map[string]bool{}
	for _, p := range pkgs {
		if p.Types == nil && len(p.Files) > 0 {
			return nil, fmt.Errorf("lint: %s not type-checked", p.ImportPath)
		}
		linted[p.ImportPath] = true
		c := &checker{fset: l.fset, modulePath: l.modulePath, pkg: p, diags: &diags}
		c.run()
	}
	graph := buildCallGraph(l)
	h := newHotChecker(l, graph, linted, &diags)
	h.run()
	attributeFuncs(graph, diags)
	sortDiags(diags)

	res := &Result{
		Raw:        diags,
		Hot:        hotReport(graph, h, linted),
		ModuleRoot: l.moduleRoot,
	}
	if opts.NoBaseline {
		res.Diags = diags
		return res, nil
	}
	path := opts.BaselinePath
	if path == "" {
		path = filepath.Join(l.moduleRoot, BaselineName)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		return nil, err
	}
	if b == nil {
		res.Diags = diags
		return res, nil
	}
	kept, suppressed, stale := b.apply(diags, linted, graph.rootsFound)
	res.Diags = append(kept, stale...)
	sortDiags(res.Diags)
	res.Suppressed = suppressed
	res.BaselinePath = path
	return res, nil
}

// attributeFuncs fills each diagnostic's Func field from the call
// graph's declaration extents, so the baseline can key findings by
// enclosing function.
func attributeFuncs(g *callGraph, diags []Diagnostic) {
	type extent struct {
		start, end int
		name       string
	}
	byFile := map[string][]extent{}
	for _, n := range g.nodes {
		if n.decl == nil {
			continue
		}
		p := g.fset.Position(n.decl.Pos())
		end := g.fset.Position(n.decl.End())
		byFile[p.Filename] = append(byFile[p.Filename], extent{start: p.Line, end: end.Line, name: n.name})
	}
	for i := range diags {
		if diags[i].Func != "" {
			continue
		}
		for _, e := range byFile[diags[i].Pos.Filename] {
			if diags[i].Pos.Line >= e.start && diags[i].Pos.Line <= e.end {
				diags[i].Func = e.name
				break
			}
		}
	}
}

// hotReport assembles the escape-audit view: the extents of every
// hot function in the linted deterministic packages, plus the lines
// the AST pass explained.
func hotReport(g *callGraph, h *hotChecker, linted map[string]bool) *HotReport {
	rep := &HotReport{Explained: h.explained}
	for _, n := range g.hotNodes(func(p *Package) bool {
		return deterministicPkgs[p.Name] && linted[p.ImportPath]
	}) {
		start := g.fset.Position(n.body().Pos())
		end := g.fset.Position(n.body().End())
		rep.Funcs = append(rep.Funcs, HotFunc{
			File:      start.Filename,
			Name:      n.name,
			Root:      n.root,
			StartLine: start.Line,
			EndLine:   end.Line,
		})
	}
	return rep
}

// sortDiags orders diagnostics by position, then rule.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
