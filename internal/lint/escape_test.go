package lint

import (
	"strconv"
	"strings"
	"testing"
)

// TestParseEscapeOutput pins the compiler-output contract: heap
// decisions are extracted with paths made absolute, "does not escape"
// lines are skipped, and the two duplicate sources — a package
// compiled again for its tests, and -m -m restating a decision with a
// trailing colon before the flow explanation — collapse to one entry.
func TestParseEscapeOutput(t *testing.T) {
	out := strings.Join([]string{
		"# vichar/internal/network",
		"./internal/network/network.go:10:6: f escapes to heap:",
		"./internal/network/network.go:10:6:   flow: {heap} = &f:",
		"./internal/network/network.go:10:6: f escapes to heap",
		"./internal/network/network.go:10:6: f escapes to heap", // test recompile
		"./internal/network/network.go:12:9: x does not escape",
		"./internal/network/network.go:14:2: moved to heap: y",
		"not a diagnostic line",
	}, "\n")
	lines := parseEscapeOutput("/mod", out)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %+v", len(lines), lines)
	}
	if lines[0].file != "/mod/internal/network/network.go" || lines[0].line != 10 || lines[0].msg != "f escapes to heap" {
		t.Errorf("line 0 = %+v", lines[0])
	}
	if lines[1].line != 14 || !strings.Contains(lines[1].msg, "moved to heap") {
		t.Errorf("line 1 = %+v", lines[1])
	}
}

// TestAuditEscapes covers the matching rules: an unexplained escape
// in a hot extent is a finding; explained lines (with one line of
// slack), cold functions, constant-string boxing, a literal's own
// escape at its start line, and testdata paths are not.
func TestAuditEscapes(t *testing.T) {
	rep := &HotReport{
		Funcs: []HotFunc{
			{File: "/m/a.go", Name: "Network.Step", Root: "Network.Step", StartLine: 10, EndLine: 30},
			{File: "/m/a.go", Name: "New.func", Root: "Network.Step", StartLine: 50, EndLine: 55},
			{File: "/m/testdata/f.go", Name: "Hot", Root: "Network.Step", StartLine: 1, EndLine: 100},
		},
		Explained: map[string]map[int]bool{
			"/m/a.go": {20: true},
		},
	}
	lines := []escapeLine{
		{file: "/m/a.go", line: 15, msg: "make([]int, n) escapes to heap"}, // finding
		{file: "/m/a.go", line: 21, msg: "x escapes to heap"},              // explained via slack
		{file: "/m/a.go", line: 40, msg: "y escapes to heap"},              // cold gap
		{file: "/m/a.go", line: 12, msg: `"boom" escapes to heap`},         // constant boxing
		{file: "/m/a.go", line: 50, msg: "func literal escapes to heap"},   // the literal itself
		{file: "/m/testdata/f.go", line: 5, msg: "z escapes to heap"},      // fixture tree
		{file: "/m/a.go", line: 52, msg: "moved to heap: v"},               // moved in clean func -> finding
		{file: "/m/a.go", line: 22, msg: "moved to heap: w"},               // moved in reviewed func
	}
	diags := auditEscapes("/m", rep, lines)
	var got []string
	for _, d := range diags {
		got = append(got, d.Pos.Filename[len("/m/"):]+":"+strconv.Itoa(d.Pos.Line))
	}
	want := []string{"a.go:15", "a.go:52"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("findings = %v, want %v\n%v", got, want, diags)
	}
	for _, d := range diags {
		if d.Rule != RuleEscapeAudit {
			t.Errorf("rule = %s, want %s", d.Rule, RuleEscapeAudit)
		}
	}
}
