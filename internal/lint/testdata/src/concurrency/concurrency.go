// Package concurrency is a lint fixture for the concurrency-ownership
// rule: its import path sits under internal/, so `go` statements are
// forbidden outside the shard-executor file. Lines expecting a
// diagnostic carry an end-of-line marker checked by the engine's
// tests.
package concurrency

// results is a sink so the goroutine bodies below have something to do.
var results = make(chan int, 4)

// fanOut spawns an ad-hoc goroutine with no annotation: flagged. The
// scheduling of such a goroutine relative to the cycle kernel's
// barriers is a hidden input the determinism contract does not admit.
func fanOut(xs []int) {
	for _, x := range xs {
		x := x
		go func() { //!lint concurrency-ownership
			results <- x * x
		}()
	}
}

// drain runs serially: a plain call is never flagged.
func drain(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += <-results
	}
	return total
}

// prefetch spawns a goroutine that only warms an OS cache and carries
// a justification: the annotation waives the rule.
func prefetch(path string, warm func(string)) {
	//vichar:nolint concurrency-ownership cache warming has no observable effect on simulator state
	go warm(path)
}

// prefetchBare carries a bare nolint with no justification: a naked
// marker does not suppress, so the site is still flagged.
func prefetchBare(path string, warm func(string)) {
	//vichar:nolint concurrency-ownership
	go warm(path) //!lint concurrency-ownership
}
