// Package stats is a lint fixture for rule scoping: it is NOT in the
// deterministic package set, so map iteration and unchecked panics
// are allowed here (aggregation code runs off the tick path).
package stats

// tally may range a map freely outside the deterministic core.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mustPositive panics outside the deterministic set: not flagged.
func mustPositive(x int) int {
	if x <= 0 {
		panic("stats: non-positive input")
	}
	return x
}
