// Package network is a lint fixture for the hot-path purity passes:
// it declares its own Network.Step tick root and exercises
// hot-path-alloc over every call-graph edge kind (direct calls,
// method values, func-typed fields, interface dispatch, literals)
// plus phase-ownership over runSharded arguments. Lines expecting a
// diagnostic carry an end-of-line marker checked by the engine's
// tests.
package network

import "fmt"

// flitT is a minimal payload so composite literals have a type.
type flitT struct{ seq int }

// buffer is the interface-dispatch plug point: Step reaches ring.push
// only through it.
type buffer interface {
	push(f *flitT)
}

// ring is the buffer implementation the dispatch fan-out must find.
type ring struct{ items []*flitT }

func (r *ring) push(f *flitT) {
	r.items = append(r.items, f) //!lint hot-path-alloc
}

func (r *ring) clear() { r.items = r.items[:0] }

// Network mirrors the real kernel's shape: a func-typed phase field
// bound to a method at construction time.
type Network struct {
	name      string
	steps     int
	counts    []int
	rings     []*ring
	bufs      []buffer
	scratch   []int
	deliverFn func(shard int)
}

// NewNet is the constructor: its allocations are not hot (it is not
// reachable from Step) and must stay unflagged.
func NewNet(k int) *Network {
	n := &Network{counts: make([]int, k), name: "net"}
	for i := 0; i < k; i++ {
		r := &ring{}
		n.rings = append(n.rings, r)
		n.bufs = append(n.bufs, r)
	}
	n.deliverFn = n.deliverShard
	return n
}

// Step is this fixture's tick root (rootSpec network/Network/Step).
func (n *Network) Step() {
	n.runSharded(n.deliverFn)
	n.dispatch()
	_ = n.describe(len(n.counts))
	_ = n.label(n.name)
	n.compute()
	apply(n.bump) //!lint hot-path-alloc
}

// runSharded mimics the kernel's phase driver: serial here, but the
// ownership contract applies to its arguments all the same.
func (n *Network) runSharded(fn func(shard int)) {
	for s := 0; s < len(n.counts); s++ {
		fn(s)
	}
}

// deliverShard is reached only through the deliverFn field: the
// func-field fan-out must mark it hot, and phase-ownership must
// resolve it from the runSharded call site.
func (n *Network) deliverShard(shard int) {
	n.counts[shard] = shard // legal: shard-derived index
	n.steps++               //!lint phase-ownership
}

// dispatch exercises allocation checks plus interface dispatch.
func (n *Network) dispatch() {
	f := &flitT{seq: n.steps} //!lint hot-path-alloc
	for _, b := range n.bufs {
		b.push(f)
	}
	n.scratch = append(n.scratch, 1) //!lint hot-path-alloc
	sizes := make([]int, 4)          //!lint hot-path-alloc
	n.steps += len(sizes)
	byName := map[string]int{"net": 1} //!lint hot-path-alloc
	n.steps += len(byName)
	defer n.bump() //!lint hot-path-alloc
}

// observe holds the waiver cases: a justified annotation suppresses,
// a bare one must not.
func (n *Network) observe() {
	//vichar:alloc fixture: the staging row grows to steady capacity once, then is reused
	n.scratch = append(n.scratch, 2)
	//vichar:alloc
	n.scratch = append(n.scratch, 3) //!lint hot-path-alloc
}

// describe allocates through fmt (call + interface boxing of v).
func (n *Network) describe(v int) string {
	return fmt.Sprintf("net-%d", v) //!lint hot-path-alloc
}

// label allocates by non-constant string concatenation.
func (n *Network) label(s string) string {
	return "net:" + s //!lint hot-path-alloc
}

// compute defines a closure over a local: the capture allocates.
func (n *Network) compute() {
	base := len(n.scratch)
	grow := func() int { return base + 1 } //!lint hot-path-alloc
	n.counts[0] = grow()
	n.observe()
}

// bump is reached as a method value (apply(n.bump) in Step).
func (n *Network) bump() { n.steps++ }

// apply models a callback sink; the method value passed to it is
// treated as called by the passer.
func apply(f func()) { f() }

// reset is only called from a shard literal below; the receiver-chain
// write inside it is checked at the call site, not here.
func (n *Network) reset() { n.steps = 0 }

// auditPass is not hot (nothing on the tick path calls it), so its
// allocations stay unflagged — but its runSharded literal is still
// under the phase-ownership contract.
func (n *Network) auditPass() {
	total := 0
	waived := 0
	n.runSharded(func(shard int) {
		lo, hi := shard*2, shard*2+2
		for i := lo; i < hi && i < len(n.counts); i++ {
			n.counts[i]++ // legal: i is shard-derived via lo
		}
		n.rings[shard].clear() // legal: shard-derived receiver chain
		n.steps = shard        //!lint phase-ownership
		total += shard         //!lint phase-ownership
		n.reset()              //!lint phase-ownership
		//vichar:nolint phase-ownership fixture: the accumulator is merged serially after the barrier
		waived += shard
	})
	n.steps = total + waived
}
