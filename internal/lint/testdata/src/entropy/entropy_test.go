// Test-file fixture for the syntactic ambient-entropy scan: _test.go
// files are not type-checked, but global rand and clock reads are
// still banned under internal/.
package entropy

import (
	"math/rand"
	"testing"
	"time"
)

func TestSeededOK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if rng.Float64() < 0 { // seeded stream: fine
		t.Fatal("impossible")
	}
}

func TestAmbientFlagged(t *testing.T) {
	_ = rand.Float64()  //!lint ambient-entropy
	_ = time.Now()      //!lint ambient-entropy
	_ = time.Unix(0, 0) // pure conversion: fine
	t.Log("fixture only; never executed")
}
