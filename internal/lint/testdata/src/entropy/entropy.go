// Package entropy is a lint fixture for the ambient-entropy rule,
// which applies to every package: all randomness must flow through a
// seeded *rand.Rand, and the wall clock never enters the simulator.
package entropy

import (
	"math/rand"
	"time"
)

// seeded builds and uses a deterministic stream: the approved path.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // method on *rand.Rand: fine
}

// ambient draws from the process-global stream: flagged.
func ambient() int {
	return rand.Intn(10) //!lint ambient-entropy
}

// wallClock reads the host clock: flagged.
func wallClock() int64 {
	return time.Now().UnixNano() //!lint ambient-entropy
}

// duration manipulates time values without reading the clock: fine.
func duration(d time.Duration) float64 {
	return d.Seconds()
}

// measured uses Since, which reads the clock implicitly, but the
// call is justified: the annotation waives the rule.
func measured(start time.Time) time.Duration {
	//vichar:nolint ambient-entropy wall-clock here feeds a human progress display, not the simulation
	return time.Since(start)
}
