// Package metrics is a lint fixture standing in for the real
// observability layer: its import path ends in /internal/metrics, so
// probe-guard treats calls into it as probe accesses. It declares one
// nil-receiver-safe method (the probe convention) and one that is
// not, so the caller-side fixture can exercise both directions.
package metrics

// Probe is a minimal recorder handle; a nil Probe means observability
// is disabled.
type Probe struct{ n int }

// Inc is NOT nil-receiver-safe: callers must guard it.
func (p *Probe) Inc() { p.n++ }

// Observe follows the probe convention: the first statement bails out
// on a nil receiver, so unguarded calls are legal.
func (p *Probe) Observe(v int) {
	if p == nil {
		return
	}
	p.n += v
}

// NewProbe wires a live probe.
func NewProbe() *Probe { return &Probe{} }
