// Package router is a lint fixture for the probe-guard rule: a
// deterministic package calling into an internal/metrics package.
// Lines expecting a diagnostic carry an end-of-line marker checked by
// the engine's tests.
package router

import "vichar/internal/lint/testdata/src/probeguard/internal/metrics"

// Router wires an optional probe, nil when observability is off.
type Router struct {
	probe *metrics.Probe
}

// New wires probes at construction time: the constructor carve-out
// keeps build-time calls unflagged.
func New() *Router {
	r := &Router{probe: metrics.NewProbe()}
	r.probe.Inc()
	return r
}

// inc calls a non-nil-safe method with no dominating guard: flagged.
func (r *Router) inc() {
	r.probe.Inc() //!lint probe-guard
}

// incGuarded dominates the access with a then-branch guard: legal.
func (r *Router) incGuarded() {
	if r.probe != nil {
		r.probe.Inc()
	}
}

// incEarlyExit guards with an early return before the access: legal.
func (r *Router) incEarlyExit() {
	if r.probe == nil {
		return
	}
	r.probe.Inc()
}

// observe calls the nil-receiver-safe method unguarded: legal, the
// callee bails out on nil itself.
func (r *Router) observe(v int) {
	r.probe.Observe(v)
}

// incWaived documents why the unguarded access is safe: the
// justified annotation waives the rule.
func (r *Router) incWaived() {
	//vichar:nolint probe-guard fixture: this router is only built by New, which always wires the probe
	r.probe.Inc()
}
