// Package router is a lint fixture: its name places it in the
// deterministic set, so the map-range rule applies. Lines expecting a
// diagnostic carry an end-of-line marker checked by the engine's tests.
package router

// sumMap ranges over a map with no annotation: flagged.
func sumMap(m map[int]int) int {
	n := 0
	for _, v := range m { //!lint map-range
		n += v
	}
	return n
}

// sumSlice ranges over a slice: order is positional, never flagged.
func sumSlice(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}

// countMap ranges over a map but only accumulates a commutative
// count, and says so: the annotation waives the rule.
func countMap(m map[string]bool) int {
	n := 0
	//vichar:ordered result is a commutative count, order-insensitive
	for range m {
		n++
	}
	return n
}

// bareAnnotation carries the marker without a justification, which
// does not suppress: annotations must say why the site is safe.
func bareAnnotation(m map[int]int) int {
	n := 0
	//vichar:ordered
	for k := range m { //!lint map-range
		n += k
	}
	return n
}

// keyIndexing reads a map by key inside a slice range: only range
// statements over maps are flagged, not map access.
func keyIndexing(keys []int, m map[int]int) int {
	n := 0
	for _, k := range keys {
		n += m[k]
	}
	return n
}
