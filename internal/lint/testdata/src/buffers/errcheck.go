// Package buffers is a lint fixture for the checked-errors rule:
// error returns from module-internal calls (the real buffers.Buffer
// write/pop paths) must be handled in the deterministic packages.
package buffers

import (
	"errors"
	"fmt"
)

// ErrFull mirrors the real package's flow-control error.
var ErrFull = errors.New("buffers: full")

// Slot is a one-entry buffer standing in for the real interface.
type Slot struct{ v int }

// Write fails when the slot is taken.
func (s *Slot) Write(v int) error {
	if s.v != 0 {
		return ErrFull
	}
	s.v = v
	return nil
}

// drop discards the error result outright: flagged.
func drop(s *Slot) {
	s.Write(1) //!lint checked-errors
}

// acknowledge discards explicitly via blank assignment: fine — the
// discard is visible at the call site.
func acknowledge(s *Slot) {
	_ = s.Write(2)
}

// handled propagates the error: fine.
func handled(s *Slot) error {
	if err := s.Write(3); err != nil {
		return err
	}
	return nil
}

// deferred drops an error from a deferred internal call: flagged.
func deferred(s *Slot) {
	defer s.Write(4) //!lint checked-errors
}

// stdlib calls returning errors are outside the module: not flagged
// (go vet and errcheck-style tools own that ground).
func prints() {
	fmt.Println("fixture")
}
