// Package metrics is a lint fixture: the observability layer joined
// the deterministic package set (its recorders are merged in the
// kernel's serial phase, so staging order must be reproducible), and
// this fixture pins the rules that guard it. Lines expecting a
// diagnostic carry an end-of-line marker checked by the engine's
// tests.
package metrics

import "sort"

// renderSeries ranges a map while rendering: flagged — exposition
// output must be byte-deterministic.
func renderSeries(series map[string]uint64) []string {
	var out []string
	for name, v := range series { //!lint map-range
		_ = v
		out = append(out, name)
	}
	return out
}

// renderSorted iterates the same map through a sorted key slice: the
// idiom the real registry uses, never flagged.
func renderSorted(series map[string]uint64) []string {
	names := make([]string, 0, len(series))
	for name := range series { //vichar:ordered keys are collected then sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sink mimics a JSONL writer whose error encodes a short write.
func sink(line string) error {
	if line == "" {
		return errSink
	}
	return nil
}

var errSink = sortableError("metrics: empty line")

type sortableError string

func (e sortableError) Error() string { return string(e) }

// flush discards the sink's error: flagged — a lost write makes the
// trace silently incomplete.
func flush(lines []string) {
	for _, l := range lines {
		sink(l) //!lint checked-errors
	}
}

// flushChecked acknowledges the drop explicitly: legal.
func flushChecked(lines []string) {
	for _, l := range lines {
		_ = sink(l)
	}
}

// NewRing validates its capacity in a constructor, where panics are
// the package convention: not flagged.
func NewRing(capacity int) []uint64 {
	if capacity <= 0 {
		panic("metrics: ring capacity must be positive")
	}
	return make([]uint64, capacity)
}

// drain panics outside a constructor with no invariant annotation:
// flagged — tick-path code must return errors.
func drain(ring []uint64, n int) []uint64 {
	if n > len(ring) {
		panic("metrics: drain past ring end") //!lint panic-discipline
	}
	return ring[:n]
}

// drainInvariant documents the "cannot happen" bookkeeping violation:
// the annotation waives the rule.
func drainInvariant(ring []uint64, n int) []uint64 {
	if n > len(ring) {
		//vichar:invariant drain length is clamped by the caller's staging count
		panic("metrics: drain past ring end")
	}
	return ring[:n]
}
