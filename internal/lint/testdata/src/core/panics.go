// Package core is a lint fixture for panic-discipline: panics are
// legal in constructors and at annotated invariant violations only.
package core

import "fmt"

// Pool is a toy slot pool.
type Pool struct{ free int }

// NewPool may panic on invalid construction parameters: fine.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("core: pool needs at least one slot, got %d", n))
	}
	return &Pool{free: n}
}

// Take panics on an ordinary empty condition with no annotation:
// flagged — this should return an error instead.
func (p *Pool) Take() int {
	if p.free == 0 {
		panic("core: pool empty") //!lint panic-discipline
	}
	p.free--
	return p.free
}

// Put panics on a genuine bookkeeping invariant and says so: the
// annotation waives the rule.
func (p *Pool) Put(cap int) {
	p.free++
	if p.free > cap {
		//vichar:invariant free count exceeding capacity means double-release, unrecoverable bookkeeping corruption
		panic("core: pool overflow")
	}
}
