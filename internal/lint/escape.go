// Escape-audit mode: cross-check the AST hot-path-alloc pass against
// the compiler's actual escape analysis (`go build -gcflags=-m -m`).
// The AST pass is a reviewable approximation; the compiler is ground
// truth. Any heap decision the compiler reports inside a hot
// function that the AST pass neither flagged nor saw waived means the
// lint has drifted and must be taught the new construct — so the two
// views cannot diverge silently.
package lint

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// RuleEscapeAudit marks a compiler-observed heap allocation in a hot
// function that the AST pass did not explain.
const RuleEscapeAudit = "escape-audit"

// HotFunc is one hot-set function's extent, for matching compiler
// diagnostics to the hot set.
type HotFunc struct {
	File      string // absolute path
	Name      string
	Root      string // witness tick root
	StartLine int
	EndLine   int
}

// HotReport is the AST pass's view of the hot set, produced by
// Analyze and consumed by EscapeAudit.
type HotReport struct {
	Funcs []HotFunc
	// Explained maps file -> line -> true for every allocation the AST
	// pass accounted for: findings before suppression plus waiver
	// annotation lines.
	Explained map[string]map[int]bool
}

// escapeLine is one parsed compiler diagnostic.
type escapeLine struct {
	file string
	line int
	msg  string
}

// EscapeAudit builds the module with escape-analysis diagnostics
// enabled and returns a finding for every compiler-reported heap
// allocation inside a hot function that the AST pass did not explain.
func EscapeAudit(moduleRoot string, rep *HotReport) ([]Diagnostic, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./...")
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: escape audit build failed: %v\n%s", err, out)
	}
	return auditEscapes(moduleRoot, rep, parseEscapeOutput(moduleRoot, string(out))), nil
}

// parseEscapeOutput extracts the heap-relevant diagnostics
// ("escapes to heap", "moved to heap") from the compiler output,
// normalizing file paths to absolute.
func parseEscapeOutput(moduleRoot, out string) []escapeLine {
	var lines []escapeLine
	seen := map[escapeLine]bool{}
	for _, raw := range strings.Split(out, "\n") {
		raw = strings.TrimSpace(raw)
		if !strings.Contains(raw, "escapes to heap") && !strings.Contains(raw, "moved to heap") {
			continue
		}
		if strings.Contains(raw, "does not escape") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(raw, ":", 4)
		if len(parts) < 4 {
			continue
		}
		line, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleRoot, filepath.FromSlash(strings.TrimPrefix(file, "./")))
		}
		// Packages are compiled once normally and once for their tests,
		// and -m -m re-states a decision with a trailing colon before
		// the flow explanation; normalize and dedupe both forms.
		el := escapeLine{
			file: filepath.Clean(file),
			line: line,
			msg:  strings.TrimSuffix(strings.TrimSpace(parts[3]), ":"),
		}
		if seen[el] {
			continue
		}
		seen[el] = true
		lines = append(lines, el)
	}
	return lines
}

// auditEscapes matches compiler diagnostics to hot-function extents
// and drops the ones the AST pass explained. A line is explained if
// the pass produced a finding or saw a waiver within one line of it
// (the compiler anchors some diagnostics on the operand rather than
// the operator).
func auditEscapes(moduleRoot string, rep *HotReport, lines []escapeLine) []Diagnostic {
	funcsByFile := map[string][]HotFunc{}
	for _, f := range rep.Funcs {
		if strings.Contains(filepath.ToSlash(f.File), "/testdata/") {
			continue
		}
		funcsByFile[f.File] = append(funcsByFile[f.File], f)
	}
	explained := func(file string, line int) bool {
		m := rep.Explained[file]
		if m == nil {
			return false
		}
		return m[line] || m[line-1] || m[line+1]
	}
	// A hot function with any explained line has been reviewed by the
	// AST pass; "moved to heap" diagnostics (anchored on declaration
	// sites, often far from the construct that caused the move) are
	// only reported for functions the pass believed entirely clean.
	funcHasExplained := func(f HotFunc) bool {
		m := rep.Explained[f.File]
		for l := f.StartLine; l <= f.EndLine; l++ {
			if m[l] {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	for _, el := range lines {
		for _, f := range funcsByFile[el.file] {
			if el.line < f.StartLine || el.line > f.EndLine {
				continue
			}
			if explained(el.file, el.line) {
				break
			}
			// A quoted literal escaping is a string constant boxed into
			// an interface — the AST pass exempts constants (they box
			// only on terminating panic/error paths), and inlining
			// re-anchors such escapes onto caller lines the pass never
			// saw, so the audit exempts them too.
			if strings.HasPrefix(el.msg, "\"") {
				break
			}
			// "func literal escapes to heap" is anchored on the literal
			// itself, but the allocation happens in the ENCLOSING
			// function when the literal is built — the extent that
			// starts at this very line is the value escaping, not the
			// allocator. The encloser is audited separately (if hot).
			if el.line == f.StartLine && strings.HasPrefix(el.msg, "func literal escapes") {
				break
			}
			if strings.Contains(el.msg, "moved to heap") && funcHasExplained(f) {
				break
			}
			diags = append(diags, Diagnostic{
				Pos:  token.Position{Filename: el.file, Line: el.line, Column: 1},
				Rule: RuleEscapeAudit,
				Func: f.Name,
				Msg: fmt.Sprintf("compiler reports %q inside hot function %s (reachable from %s) but the hot-path-alloc pass did not explain this line; teach the pass the construct or fix the allocation",
					el.msg, f.Name, f.Root),
			})
			break
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags
}
