package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Rule names, as printed in diagnostics and accepted by
// //vichar:nolint annotations.
const (
	RuleMapRange       = "map-range"
	RuleAmbientEntropy = "ambient-entropy"
	RuleCheckedErrors  = "checked-errors"
	RulePanics         = "panic-discipline"
	RuleConcurrency    = "concurrency-ownership"
)

// shardExecutorFile is the one file under internal/ allowed to spawn
// goroutines: the two-phase cycle kernel's worker pool (DESIGN.md
// §10). Everywhere else a `go` statement bypasses the kernel's
// ownership contract and its deterministic merge, so the
// concurrency-ownership rule rejects it unless the site carries a
// //vichar:nolint concurrency-ownership justification.
const shardExecutorFile = "internal/network/shards.go"

// deterministicPkgs are the simulator-core packages whose tick-path
// code must be bit-reproducible for a given seed; the map-range,
// checked-errors and panic-discipline rules apply only to them.
var deterministicPkgs = map[string]bool{
	"router":  true,
	"network": true,
	"arbiter": true,
	"core":    true,
	"buffers": true,
	"routing": true,
	"metrics": true,
	"faults":  true,
	"txn":     true,
}

// Diagnostic is one rule violation. Pkg and Func key the finding for
// the lint.baseline ratchet; they do not appear in String().
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
	Pkg  string // import path of the package containing the finding
	Func string // enclosing function, e.g. "Network.Step"; "" at file scope
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// annotation is one //vichar:<kind> <reason> suppression comment.
type annotation struct {
	kind   string
	reason string // first token after kind for nolint; rest for others
	rule   string // nolint only: the named rule
}

// annotations indexes a file's //vichar: comments by line.
type annotations map[int][]annotation

// parseAnnotations collects the //vichar: comments of a file.
func parseAnnotations(fset *token.FileSet, f *ast.File) annotations {
	out := annotations{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//vichar:")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			a := annotation{kind: fields[0], reason: strings.TrimSpace(strings.Join(fields[1:], " "))}
			if a.kind == "nolint" && len(fields) >= 2 {
				a.rule = fields[1]
				a.reason = strings.TrimSpace(strings.Join(fields[2:], " "))
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], a)
		}
	}
	return out
}

// suppresses reports whether an annotation on the diagnostic's line
// (or the line directly above, for doc-comment style) waives the
// rule. Annotations must carry a justification; a bare marker does
// not suppress.
func (ann annotations) suppresses(rule string, line int) bool {
	kind := map[string]string{RuleMapRange: "ordered", RulePanics: "invariant", RuleHotPathAlloc: "alloc"}[rule]
	for _, l := range []int{line, line - 1} {
		for _, a := range ann[l] {
			if a.reason == "" {
				continue
			}
			if a.kind == kind || (a.kind == "nolint" && a.rule == rule) {
				return true
			}
		}
	}
	return false
}

// checker runs the rules over one loaded package.
type checker struct {
	fset       *token.FileSet
	modulePath string
	pkg        *Package
	diags      *[]Diagnostic
}

func (c *checker) report(rule string, pos token.Pos, format string, args ...any) {
	p := c.fset.Position(pos)
	*c.diags = append(*c.diags, Diagnostic{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...), Pkg: c.pkg.ImportPath})
}

// run applies every applicable rule to the package.
func (c *checker) run() {
	deterministic := deterministicPkgs[c.pkg.Name]
	internal := strings.Contains(c.pkg.ImportPath, "/internal/") ||
		strings.HasSuffix(c.pkg.ImportPath, "/internal")
	for _, f := range c.pkg.Files {
		ann := parseAnnotations(c.fset, f)
		c.checkEntropy(f, ann)
		if internal {
			c.checkConcurrency(f, ann)
		}
		if deterministic {
			c.checkMapRange(f, ann)
			c.checkErrors(f, ann)
			c.checkPanics(f, ann)
		}
	}
	for _, f := range c.pkg.TestFiles {
		ann := parseAnnotations(c.fset, f)
		c.checkEntropySyntactic(f, ann)
	}
}

// checkMapRange flags `range` statements over map-typed expressions:
// Go randomizes map iteration order, so any map range on the tick
// path makes two same-seed runs diverge.
func (c *checker) checkMapRange(f *ast.File, ann annotations) {
	info := c.pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		line := c.fset.Position(rs.For).Line
		if ann.suppresses(RuleMapRange, line) {
			return true
		}
		c.report(RuleMapRange, rs.For,
			"range over map %s: iteration order is nondeterministic in a deterministic package; iterate an ordered slice or annotate //vichar:ordered <reason>",
			types.TypeString(tv.Type, types.RelativeTo(c.pkg.Types)))
		return true
	})
}

// checkConcurrency flags `go` statements in internal packages outside
// the shard-executor file. The two-phase cycle kernel's determinism
// argument rests on every parallel region running through
// shardExecutor.run with caller-side index-ordered merges; an ad-hoc
// goroutine anywhere else in the simulator core reintroduces
// scheduling order as a hidden input. Only an explicit
// //vichar:nolint concurrency-ownership <reason> waives the rule.
func (c *checker) checkConcurrency(f *ast.File, ann annotations) {
	name := filepath.ToSlash(c.fset.Position(f.Package).Filename)
	if name == shardExecutorFile || strings.HasSuffix(name, "/"+shardExecutorFile) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		line := c.fset.Position(gs.Go).Line
		if ann.suppresses(RuleConcurrency, line) {
			return true
		}
		c.report(RuleConcurrency, gs.Go,
			"go statement outside the shard executor (%s): internal packages must route parallelism through the cycle kernel or annotate //vichar:nolint %s <reason>",
			shardExecutorFile, RuleConcurrency)
		return true
	})
}

// entropyBanned maps ambient-entropy sources to the reason they are
// banned. Constructors of seeded streams (rand.New, rand.NewSource,
// rand.NewZipf) stay allowed: they are exactly how Config.Seed flows
// into the simulator.
func entropyBanned(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false // methods on *rand.Rand etc. are the seeded path
	}
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
			return "", false
		}
		return fmt.Sprintf("global %s.%s draws from ambient process-wide state", pkg.Name(), fn.Name()), true
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return fmt.Sprintf("time.%s injects wall-clock entropy", fn.Name()), true
		}
	case "crypto/rand":
		return fmt.Sprintf("crypto/rand.%s is nondeterministic by design", fn.Name()), true
	}
	return "", false
}

// checkEntropy flags uses of ambient entropy sources — global
// math/rand functions and wall-clock reads. All simulator randomness
// must come from a seeded *rand.Rand handed down from Config.Seed so
// a run is a pure function of its configuration.
func (c *checker) checkEntropy(f *ast.File, ann annotations) {
	info := c.pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		why, banned := entropyBanned(fn)
		if !banned {
			return true
		}
		line := c.fset.Position(sel.Pos()).Line
		if ann.suppresses(RuleAmbientEntropy, line) {
			return true
		}
		c.report(RuleAmbientEntropy, sel.Pos(),
			"%s; route randomness through a seeded *rand.Rand from config", why)
		return true
	})
}

// checkEntropySyntactic is the test-file variant of checkEntropy:
// _test.go files are not type-checked, so it resolves the banned
// names through the file's import table instead.
func (c *checker) checkEntropySyntactic(f *ast.File, ann annotations) {
	names := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		switch path {
		case "math/rand", "math/rand/v2", "time", "crypto/rand":
		default:
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if path == "math/rand/v2" {
			name = "rand"
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = path
	}
	if len(names) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := names[id.Name]
		if !ok {
			return true
		}
		banned, why := false, ""
		switch path {
		case "math/rand", "math/rand/v2":
			switch sel.Sel.Name {
			case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG", "Rand", "Source":
			default:
				banned, why = true, fmt.Sprintf("global %s.%s draws from ambient process-wide state", id.Name, sel.Sel.Name)
			}
		case "time":
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				banned, why = true, fmt.Sprintf("time.%s injects wall-clock entropy", sel.Sel.Name)
			}
		case "crypto/rand":
			banned, why = true, fmt.Sprintf("crypto/rand.%s is nondeterministic by design", sel.Sel.Name)
		}
		if !banned {
			return true
		}
		line := c.fset.Position(sel.Pos()).Line
		if ann.suppresses(RuleAmbientEntropy, line) {
			return true
		}
		c.report(RuleAmbientEntropy, sel.Pos(),
			"%s; route randomness through a seeded *rand.Rand from config", why)
		return true
	})
}

// errType is the predeclared error interface.
var errType = types.Universe.Lookup("error").Type()

// checkErrors flags statements that call a module-internal function
// returning an error and drop the result on the floor. Buffer and
// pipeline errors encode flow-control violations; ignoring one hides
// a conservation bug. Assigning to blank (`_ = ...`) stays legal as
// an explicit acknowledgement.
func (c *checker) checkErrors(f *ast.File, ann annotations) {
	check := func(call *ast.CallExpr) {
		fn := calleeFunc(c.pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != c.modulePath && !strings.HasPrefix(path, c.modulePath+"/") {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		returnsErr := false
		for i := 0; i < sig.Results().Len(); i++ {
			if types.Identical(sig.Results().At(i).Type(), errType) {
				returnsErr = true
			}
		}
		if !returnsErr {
			return
		}
		line := c.fset.Position(call.Pos()).Line
		if ann.suppresses(RuleCheckedErrors, line) {
			return
		}
		c.report(RuleCheckedErrors, call.Pos(),
			"error result of %s.%s discarded; handle it or assign to _ explicitly", fn.Pkg().Name(), fn.Name())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				check(call)
			}
		case *ast.GoStmt:
			check(s.Call)
		case *ast.DeferStmt:
			check(s.Call)
		}
		return true
	})
}

// calleeFunc resolves the called function or method object, or nil
// for builtins, conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// constructorName reports whether the function name marks a
// constructor (New*, new*) or initializer, where argument-validation
// panics are the package convention.
func constructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// checkPanics enforces panic discipline: in the deterministic
// packages a panic is legal only inside a constructor (invalid
// construction parameters) or at a site annotated
// //vichar:invariant <reason> (a "cannot happen" bookkeeping
// violation). Everything else must return an error.
func (c *checker) checkPanics(f *ast.File, ann annotations) {
	info := c.pkg.Info
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if constructorName(fd.Name.Name) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			line := c.fset.Position(call.Pos()).Line
			if ann.suppresses(RulePanics, line) {
				return true
			}
			c.report(RulePanics, call.Pos(),
				"panic outside a constructor in %s; return an error or annotate the invariant with //vichar:invariant <reason>", fd.Name.Name)
			return true
		})
	}
}

// Run loads the packages matched by the patterns (resolved relative
// to cwd within the enclosing module) and returns every diagnostic,
// sorted by position. An empty pattern list means "./...". The module
// root's lint.baseline, when present, is applied automatically; use
// Analyze for finer control.
func Run(cwd string, patterns []string) ([]Diagnostic, error) {
	res, err := Analyze(cwd, Options{Patterns: patterns})
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}
