package power

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/stats"
)

func countersFor(flitsPerCycle float64, hops int, cycles int64, pktSize int) stats.Counters {
	events := uint64(flitsPerCycle * float64(hops) * float64(cycles))
	return stats.Counters{
		BufferWrites:   events,
		BufferReads:    events,
		XbarTraversals: events,
		LinkTraversals: events,
		VAOps:          events / uint64(pktSize),
		SAOps:          events,
		VCGrants:       events / uint64(pktSize),
	}
}

func TestStaticPowerPositiveAndBounded(t *testing.T) {
	cfg := config.Default()
	m := NewModel(&cfg)
	w := m.StaticWatts()
	if w <= 0 || w > 20 {
		t.Fatalf("static network power %.3f W implausible", w)
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	cfg := config.Default()
	m := NewModel(&cfg)
	const cycles = 10_000
	low := m.DynamicWatts(countersFor(5, 7, cycles, 4), cycles)
	high := m.DynamicWatts(countersFor(20, 7, cycles, 4), cycles)
	if !(high > low && low > 0) {
		t.Fatalf("dynamic power not increasing: low=%.3f high=%.3f", low, high)
	}
	if m.DynamicWatts(stats.Counters{}, cycles) != 0 {
		t.Fatal("zero activity should cost zero dynamic power")
	}
	if m.DynamicWatts(countersFor(5, 7, cycles, 4), 0) != 0 {
		t.Fatal("zero-cycle window should cost zero dynamic power")
	}
}

func TestHalfBufferStaticSaving(t *testing.T) {
	gen := config.Default()
	vic8 := config.Default()
	vic8.Arch = config.ViChaR
	vic8.BufferSlots = 8
	g := NewModel(&gen).StaticWatts()
	v := NewModel(&vic8).StaticWatts()
	if v >= g {
		t.Fatalf("ViC-8 static %.3f W not below GEN-16 %.3f W", v, g)
	}
	saving := 1 - v/g
	if saving < 0.2 || saving > 0.6 {
		t.Fatalf("static saving %.1f%% outside plausible band", saving*100)
	}
}

// At equal activity the equal-size ViChaR network must cost within a
// few percent of the generic one (paper: +2%, never above +5%).
func TestEqualSizeNetworkPowerClose(t *testing.T) {
	gen := config.Default()
	vic := config.Default()
	vic.Arch = config.ViChaR
	const cycles = 10_000
	c := countersFor(16, 7, cycles, 4)
	res := stats.Results{Counters: c, MeasureCycles: cycles}
	g := NewModel(&gen).NetworkWatts(&res)
	v := NewModel(&vic).NetworkWatts(&res)
	ratio := v / g
	if ratio < 1.0 || ratio > 1.06 {
		t.Fatalf("ViC-16/GEN-16 power ratio %.4f, want (1.00, 1.06]", ratio)
	}
}

// At equal activity the half-size ViChaR network must save roughly a
// third of network power (paper: ~34%).
func TestHalfSizeNetworkPowerSaving(t *testing.T) {
	gen := config.Default()
	vic8 := config.Default()
	vic8.Arch = config.ViChaR
	vic8.BufferSlots = 8
	const cycles = 10_000
	c := countersFor(16, 7, cycles, 4)
	res := stats.Results{Counters: c, MeasureCycles: cycles}
	g := NewModel(&gen).NetworkWatts(&res)
	v := NewModel(&vic8).NetworkWatts(&res)
	saving := 1 - v/g
	if saving < 0.25 || saving > 0.45 {
		t.Fatalf("half-buffer network power saving %.1f%%, want ~34%%", saving*100)
	}
}

func TestAnnotate(t *testing.T) {
	cfg := config.Default()
	m := NewModel(&cfg)
	res := stats.Results{Counters: countersFor(10, 7, 1000, 4), MeasureCycles: 1000}
	m.Annotate(&res)
	if res.AvgPowerWatts <= 0 {
		t.Fatal("annotate left power unset")
	}
	if res.AvgPowerWatts != m.NetworkWatts(&res) {
		t.Fatal("annotate disagrees with NetworkWatts")
	}
}

func TestActivityClamped(t *testing.T) {
	cfg := config.Default()
	m := NewModel(&cfg)
	// Absurd over-saturation activity must not exceed the model's
	// peak-activity envelope for the clamped components.
	const cycles = 100
	crazy := countersFor(1e6, 7, cycles, 4)
	w := m.DynamicWatts(crazy, cycles)
	peak := m.DynamicWatts(countersFor(1e7, 7, cycles, 4), cycles)
	if w <= 0 || w != peak {
		t.Fatalf("activity not clamped at the peak envelope: %.3f vs %.3f W", w, peak)
	}
}

func TestBreakdownExposed(t *testing.T) {
	cfg := config.Default()
	m := NewModel(&cfg)
	if m.Breakdown().PortArea() <= 0 {
		t.Fatal("breakdown not wired through")
	}
}
