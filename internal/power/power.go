// Package power converts simulated activity into network power, the
// substitute for the paper's methodology of back-annotating dynamic
// and leakage power from the synthesized router designs into the
// network simulator (§4.1).
//
// Every synthesized component's Table-1-calibrated peak power (from
// internal/synth) is split into a static part — leakage plus clock,
// drawn every cycle — and a dynamic part that is consumed in
// proportion to measured switching activity, normalized to the
// component's reference activity (one event per port per cycle at
// peak). Static fractions are chosen so that the simulated curves
// reproduce the paper's Figure 12(h) relations: ViC-16 within a few
// percent above GEN-16, and ViC-8 roughly a third below it.
package power

import (
	"vichar/internal/config"
	"vichar/internal/stats"
	"vichar/internal/synth"
)

// Static (leakage + clock) fraction of each component's peak power.
// Buffers lead leakage (the paper cites 64% of router leakage), but
// at 90 nm dynamic still dominates total power at load, hence the
// moderate fractions.
const (
	staticFracBuffer = 0.25
	staticFracCtrl   = 0.30
	staticFracVA     = 0.10
	staticFracSA     = 0.10
	staticFracRest   = 0.10
)

// Reference activity at which a component draws its full dynamic
// power: buffers — one write and one read per port per cycle;
// allocators — one operation per port per cycle; rest of router — one
// flit through each crossbar input per cycle.

// Model computes network power for one configuration.
type Model struct {
	cfg *config.Config
	bd  synth.Breakdown

	routers int
	ports   int
}

// NewModel builds a power model for the configuration.
func NewModel(cfg *config.Config) *Model {
	return &Model{
		cfg:     cfg,
		bd:      synth.Estimate(cfg),
		routers: cfg.Nodes(),
		ports:   cfg.Ports(),
	}
}

// Breakdown exposes the underlying synthesis estimate.
func (m *Model) Breakdown() synth.Breakdown { return m.bd }

// StaticWatts returns the load-independent network power in watts.
func (m *Model) StaticWatts() float64 {
	perPort := staticFracBuffer*m.bd.BufPower +
		staticFracCtrl*m.bd.CtrlPower +
		staticFracVA*m.bd.VAPower +
		staticFracSA*m.bd.SAPower
	perRouter := float64(m.ports)*perPort + staticFracRest*m.bd.RestPower
	return float64(m.routers) * perRouter * 1e-3 // mW → W
}

// DynamicWatts converts measured activity counters accumulated over
// the given number of cycles into dynamic network power in watts.
func (m *Model) DynamicWatts(c stats.Counters, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	portCycles := float64(cycles) * float64(m.routers*m.ports)
	routerCycles := float64(cycles) * float64(m.routers)

	// Per-port components: activity is events per port-cycle divided
	// by the component's reference events per port-cycle.
	bufAct := min1(float64(c.BufferWrites+c.BufferReads) / (2 * portCycles))
	ctrlAct := bufAct // control logic switches with buffer accesses
	vaAct := float64(c.VAOps) / portCycles
	saAct := float64(c.SAOps) / portCycles

	perPort := (1-staticFracBuffer)*m.bd.BufPower*bufAct +
		(1-staticFracCtrl)*m.bd.CtrlPower*ctrlAct +
		(1-staticFracVA)*m.bd.VAPower*min1(vaAct) +
		(1-staticFracSA)*m.bd.SAPower*min1(saAct)

	// Rest of router: crossbar + links, reference P flits per router
	// per cycle.
	restAct := float64(c.XbarTraversals) / (float64(m.ports) * routerCycles)
	perRouter := float64(m.ports)*perPort + (1-staticFracRest)*m.bd.RestPower*min1(restAct)

	return float64(m.routers) * perRouter * 1e-3 // mW → W
}

// NetworkWatts returns total (static + dynamic) network power for a
// finished run.
func (m *Model) NetworkWatts(r *stats.Results) float64 {
	return m.StaticWatts() + m.DynamicWatts(r.Counters, r.MeasureCycles)
}

// Annotate fills r.AvgPowerWatts in place and returns it.
func (m *Model) Annotate(r *stats.Results) *stats.Results {
	r.AvgPowerWatts = m.NetworkWatts(r)
	return r
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
