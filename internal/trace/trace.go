// Package trace records and replays packet workloads. A trace is the
// list of packet creation events of a run — cycle, source,
// destination and size — which makes any workload (including the
// stochastic generators) reproducible as a file, and lets externally
// captured SoC traces drive the simulator (the paper's stated future
// work: "evaluate the performance of ViChaR using workloads and
// traces from existing System-on-Chip architectures").
//
// The on-disk format is one event per line, space-separated:
//
//	cycle src dst size
//
// with '#' comment lines and blank lines ignored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one packet creation event.
type Entry struct {
	// Cycle is the creation time; replay injects the packet into its
	// source queue at this cycle.
	Cycle int64
	// Src and Dst are node IDs.
	Src, Dst int
	// Size is the packet length in flits.
	Size int
}

// Validate reports the first structural problem with the entry for a
// network of nodes nodes.
func (e Entry) Validate(nodes int) error {
	switch {
	case e.Cycle < 0:
		return fmt.Errorf("trace: negative cycle %d", e.Cycle)
	case e.Src < 0 || e.Src >= nodes:
		return fmt.Errorf("trace: source %d outside %d nodes", e.Src, nodes)
	case e.Dst < 0 || e.Dst >= nodes:
		return fmt.Errorf("trace: destination %d outside %d nodes", e.Dst, nodes)
	case e.Src == e.Dst:
		return fmt.Errorf("trace: self-addressed packet at node %d", e.Src)
	case e.Size < 1:
		return fmt.Errorf("trace: packet size %d", e.Size)
	}
	return nil
}

// Write serializes entries to w in creation order.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# vichar packet trace: cycle src dst size"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace from r. Entries are returned sorted by cycle
// (stable, preserving same-cycle order). Every data line must consist
// of exactly four integer fields; lines with missing, trailing or
// non-numeric tokens are rejected with a line-numbered error rather
// than silently truncated or partially parsed.
func Read(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %q: %w", lineNo, line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Cycle < entries[j].Cycle })
	return entries, nil
}

// parseLine parses one non-comment trace line of exactly four
// integer fields: cycle src dst size.
func parseLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Entry{}, fmt.Errorf("want 4 fields (cycle src dst size), got %d", len(fields))
	}
	cycle, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad cycle: %w", err)
	}
	src, err := strconv.Atoi(fields[1])
	if err != nil {
		return Entry{}, fmt.Errorf("bad source: %w", err)
	}
	dst, err := strconv.Atoi(fields[2])
	if err != nil {
		return Entry{}, fmt.Errorf("bad destination: %w", err)
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil {
		return Entry{}, fmt.Errorf("bad size: %w", err)
	}
	return Entry{Cycle: cycle, Src: src, Dst: dst, Size: size}, nil
}

// ValidateAll checks every entry against the node count.
func ValidateAll(entries []Entry, nodes int) error {
	for i, e := range entries {
		if err := e.Validate(nodes); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return nil
}
