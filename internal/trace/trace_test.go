package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := []Entry{
		{Cycle: 1, Src: 0, Dst: 5, Size: 4},
		{Cycle: 1, Src: 3, Dst: 2, Size: 1},
		{Cycle: 9, Src: 7, Dst: 0, Size: 8},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadSortsByCycle(t *testing.T) {
	src := "5 0 1 4\n1 2 3 4\n3 1 2 4\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Cycle != 1 || out[1].Cycle != 3 || out[2].Cycle != 5 {
		t.Fatalf("not sorted: %+v", out)
	}
}

func TestReadStableWithinCycle(t *testing.T) {
	src := "2 0 1 4\n2 5 6 4\n2 3 4 4\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Src != 0 || out[1].Src != 5 || out[2].Src != 3 {
		t.Fatalf("same-cycle order not preserved: %+v", out)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n  \n1 0 1 4\n# mid\n2 1 0 4\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d entries", len(out))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"1 2 3",        // too few fields
		"a b c d",      // non-numeric fields
		"1 2 3 4 5x",   // trailing garbage token
		"1 2 3 4 oops", // trailing word (fmt.Sscanf used to accept this)
		"1 2 3 4 5",    // extra numeric field
		"1 2 3x 4",     // non-numeric destination
		"nope",
	} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("garbage %q accepted", src)
		}
	}
}

// Malformed lines are reported with their 1-based line number, past
// comments and blanks, and leave no partial result.
func TestReadErrorCarriesLineNumber(t *testing.T) {
	src := "# header\n1 0 1 4\n\n2 1 0 4 oops\n"
	out, err := Read(strings.NewReader(src))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name line 4", err)
	}
	if out != nil {
		t.Fatalf("partial result %v returned with error", out)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		e  Entry
		ok bool
	}{
		{Entry{Cycle: 0, Src: 0, Dst: 1, Size: 1}, true},
		{Entry{Cycle: -1, Src: 0, Dst: 1, Size: 1}, false},
		{Entry{Cycle: 0, Src: -1, Dst: 1, Size: 1}, false},
		{Entry{Cycle: 0, Src: 0, Dst: 64, Size: 1}, false},
		{Entry{Cycle: 0, Src: 3, Dst: 3, Size: 1}, false},
		{Entry{Cycle: 0, Src: 0, Dst: 1, Size: 0}, false},
	}
	for i, c := range cases {
		err := c.e.Validate(64)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v) = %v, want ok=%v", i, c.e, err, c.ok)
		}
	}
	if err := ValidateAll([]Entry{{Cycle: 0, Src: 0, Dst: 1, Size: 1}, {Src: 9, Dst: 9}}, 16); err == nil {
		t.Error("ValidateAll missed a bad entry")
	}
}

// Property: write-then-read is identity for any sorted, valid trace.
func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		var in []Entry
		cycle := int64(0)
		for _, r := range raw {
			cycle += int64(r % 7)
			e := Entry{
				Cycle: cycle,
				Src:   int(r % 16),
				Dst:   int((r / 16) % 16),
				Size:  1 + int((r/256)%8),
			}
			if e.Src == e.Dst {
				continue
			}
			in = append(in, e)
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// failWriter fails after n bytes to exercise Write's error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = bytes.ErrTooLarge

func TestWriteErrorPropagates(t *testing.T) {
	entries := []Entry{{Cycle: 1, Src: 0, Dst: 1, Size: 4}}
	if err := Write(&failWriter{left: 3}, entries); err == nil {
		t.Error("header write error swallowed")
	}
	if err := Write(&failWriter{left: 60}, make([]Entry, 50)); err == nil {
		t.Error("entry write error swallowed")
	}
}

func TestValidateAllOK(t *testing.T) {
	entries := []Entry{
		{Cycle: 0, Src: 0, Dst: 1, Size: 1},
		{Cycle: 5, Src: 2, Dst: 3, Size: 8},
	}
	if err := ValidateAll(entries, 16); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}
