package flit

import (
	"testing"
	"testing/quick"
)

func TestTypeClassification(t *testing.T) {
	cases := []struct {
		typ    Type
		isHead bool
		isTail bool
		str    string
	}{
		{Head, true, false, "H"},
		{Body, false, false, "D"},
		{Tail, false, true, "T"},
		{HeadTail, true, true, "HT"},
	}
	for _, c := range cases {
		if got := c.typ.IsHead(); got != c.isHead {
			t.Errorf("%v.IsHead() = %v, want %v", c.typ, got, c.isHead)
		}
		if got := c.typ.IsTail(); got != c.isTail {
			t.Errorf("%v.IsTail() = %v, want %v", c.typ, got, c.isTail)
		}
		if got := c.typ.String(); got != c.str {
			t.Errorf("%v.String() = %q, want %q", c.typ, got, c.str)
		}
	}
}

func TestTypeStringUnknown(t *testing.T) {
	if got := Type(42).String(); got != "Type(42)" {
		t.Errorf("unknown type prints %q", got)
	}
}

func TestMakeFlitsFourFlitPacket(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: 5, Size: 4}
	fs := MakeFlits(p)
	if len(fs) != 4 {
		t.Fatalf("got %d flits, want 4", len(fs))
	}
	wantTypes := []Type{Head, Body, Body, Tail}
	for i, f := range fs {
		if f.Type != wantTypes[i] {
			t.Errorf("flit %d type %v, want %v", i, f.Type, wantTypes[i])
		}
		if f.Seq != i {
			t.Errorf("flit %d seq %d", i, f.Seq)
		}
		if f.Pkt != p {
			t.Errorf("flit %d does not share the packet", i)
		}
	}
}

func TestMakeFlitsSingleFlit(t *testing.T) {
	fs := MakeFlits(&Packet{Size: 1})
	if len(fs) != 1 {
		t.Fatalf("got %d flits, want 1", len(fs))
	}
	if fs[0].Type != HeadTail {
		t.Errorf("single flit type %v, want HeadTail", fs[0].Type)
	}
	if !fs[0].IsHead() || !fs[0].IsTail() {
		t.Error("single flit must be both head and tail")
	}
}

func TestMakeFlitsTwoFlit(t *testing.T) {
	fs := MakeFlits(&Packet{Size: 2})
	if len(fs) != 2 || fs[0].Type != Head || fs[1].Type != Tail {
		t.Fatalf("two-flit packet decomposed as %v", fs)
	}
}

func TestMakeFlitsDegenerate(t *testing.T) {
	if fs := MakeFlits(&Packet{Size: 0}); fs != nil {
		t.Errorf("zero-size packet yielded %d flits", len(fs))
	}
	if fs := MakeFlits(&Packet{Size: -3}); fs != nil {
		t.Errorf("negative-size packet yielded %d flits", len(fs))
	}
}

// Property: any positive packet size yields exactly one head, exactly
// one tail, and size flits in sequence order.
func TestMakeFlitsProperty(t *testing.T) {
	prop := func(sz uint8) bool {
		size := int(sz%64) + 1
		fs := MakeFlits(&Packet{Size: size})
		if len(fs) != size {
			return false
		}
		heads, tails := 0, 0
		for i, f := range fs {
			if f.Seq != i {
				return false
			}
			if f.IsHead() {
				heads++
			}
			if f.IsTail() {
				tails++
			}
		}
		return heads == 1 && tails == 1 && fs[0].IsHead() && fs[size-1].IsTail()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketLatency(t *testing.T) {
	p := &Packet{CreatedAt: 100, EjectedAt: 187}
	if got := p.Latency(); got != 87 {
		t.Errorf("latency %d, want 87", got)
	}
}

func TestStrings(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, Size: 4}
	if got := p.String(); got != "pkt#7 1->2 (4 flits)" {
		t.Errorf("packet string %q", got)
	}
	f := &Flit{Pkt: p, Type: Body, Seq: 2, VC: 3}
	if got := f.String(); got != "D[2] of pkt#7 1->2 (4 flits) vc=3" {
		t.Errorf("flit string %q", got)
	}
}
