// Package flit defines the atomic units of flow control exchanged by
// NoC routers: flits, the packets they compose, and the credits that
// implement backpressure.
//
// A packet is decomposed into a head flit, zero or more body flits and
// a tail flit (a single-flit packet is marked as both head and tail).
// Flits are the granularity at which buffers and channels are
// allocated under wormhole flow control; packets are the granularity
// at which virtual channels are allocated.
package flit

import "fmt"

// Type classifies a flit's position within its packet.
type Type uint8

const (
	// Head is the first flit of a packet. It carries routing
	// information and triggers route computation (RC) and virtual
	// channel allocation (VA) in each router it enters.
	Head Type = iota
	// Body is a middle (data) flit. It inherits the route and VC of
	// its head.
	Body
	// Tail is the last flit of a packet. Its departure releases the
	// virtual channel that the packet holds.
	Tail
	// HeadTail marks a single-flit packet, which is simultaneously
	// head and tail.
	HeadTail
)

// String returns a one-letter mnemonic matching the paper's figures
// (H = head, D = data/body, T = tail).
func (t Type) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "D"
	case Tail:
		return "T"
	case HeadTail:
		return "HT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsHead reports whether the flit type opens a packet.
func (t Type) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit type closes a packet.
func (t Type) IsTail() bool { return t == Tail || t == HeadTail }

// Packet carries the simulation-level metadata shared by all flits of
// one message. Flits point back at their packet, so per-packet fields
// (destination, timestamps) are stored exactly once.
type Packet struct {
	// ID is unique across one simulation run.
	ID uint64
	// Src and Dst are node identifiers in the network's topology.
	Src, Dst int
	// Size is the number of flits in the packet.
	Size int
	// CreatedAt is the cycle the packet entered its source queue.
	CreatedAt int64
	// InjectedAt is the cycle the head flit left the source queue and
	// entered the network proper.
	InjectedAt int64
	// EjectedAt is the cycle the tail flit reached the destination's
	// processing element. Zero until ejection.
	EjectedAt int64
	// SeqNo is the global ejection-order independent creation ordinal
	// used by the measurement protocol (warm-up accounting).
	SeqNo uint64
	// Escaped is set when an adaptively routed packet has been
	// re-channelled onto an escape virtual channel after a deadlock
	// timeout; from then on it routes deterministically.
	Escaped bool
	// Class is the packet's virtual-channel class. Fire-and-forget
	// traffic always carries class 0; the transaction layer maps
	// request messages to class 0 and response messages to class 1 so
	// the VC allocators keep the two on disjoint channel partitions.
	Class uint8
	// Kind is the transaction-layer message kind (txn package
	// constants); 0 for plain fire-and-forget packets.
	Kind uint8
	// Req is the packet ID of the request this packet responds to
	// (response kinds only; 0 otherwise).
	Req uint64
}

// Latency returns the packet's network latency in cycles: creation (at
// the source queue) to tail ejection. It is only meaningful after the
// packet has been ejected.
func (p *Packet) Latency() int64 { return p.EjectedAt - p.CreatedAt }

// Hops returns the minimal hop distance this packet must travel given
// X and Y displacement; it is a convenience for tests and stats and
// assumes a mesh.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d (%d flits)", p.ID, p.Src, p.Dst, p.Size)
}

// Flit is a single flow-control unit in transit. A flit's VC field is
// rewritten at every hop: it names the virtual channel the flit
// occupies at the input port it is (or will next be) buffered at.
type Flit struct {
	Pkt  *Packet
	Type Type
	// Seq is the flit's index within its packet (head == 0).
	Seq int
	// VC is the virtual channel at the current/next input port,
	// assigned by the upstream router's VC allocator.
	VC int
	// ArrivedAt is the cycle the flit was written into the current
	// input buffer; used to enforce per-stage pipeline timing.
	ArrivedAt int64
}

// IsHead reports whether this flit opens its packet.
func (f *Flit) IsHead() bool { return f.Type.IsHead() }

// IsTail reports whether this flit closes its packet.
func (f *Flit) IsTail() bool { return f.Type.IsTail() }

func (f *Flit) String() string {
	return fmt.Sprintf("%s[%d] of %s vc=%d", f.Type, f.Seq, f.Pkt, f.VC)
}

// MakeFlits decomposes a packet into its flit sequence. The returned
// flits share the packet pointer; VC and ArrivedAt are zero until the
// network assigns them.
func MakeFlits(p *Packet) []*Flit {
	if p.Size <= 0 {
		return nil
	}
	fs := make([]*Flit, p.Size)
	for i := range fs {
		t := Body
		switch {
		case p.Size == 1:
			t = HeadTail
		case i == 0:
			t = Head
		case i == p.Size-1:
			t = Tail
		}
		fs[i] = &Flit{Pkt: p, Type: t, Seq: i}
	}
	return fs
}

// Credit is the backpressure message a router returns upstream when it
// frees buffer resources.
type Credit struct {
	// VC identifies the virtual channel whose flit departed. For
	// statically partitioned buffers the freed slot belongs to this
	// VC; for unified buffers the slot returns to the shared pool and
	// VC only matters when ReleaseVC is set.
	VC int
	// ReleaseVC is set when the departing flit was a tail: the
	// virtual channel itself is free again and, for ViChaR, its token
	// returns to the dispenser.
	ReleaseVC bool
}
