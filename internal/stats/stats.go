// Package stats accumulates the metrics the paper reports: average
// packet latency, throughput (flits/cycle), percent buffer occupancy,
// the spatial and temporal distribution of in-use virtual channels,
// and the activity counters the power model back-annotates.
//
// The measurement protocol follows §4.1: packets keep being injected
// until WarmupPackets+MeasurePackets have been ejected; the first
// WarmupPackets ejections are warm-up and excluded from latency,
// throughput and occupancy statistics.
package stats

import (
	"fmt"
	"sort"

	"vichar/internal/flit"
)

// percentile returns the p-quantile (0..1) of an ascending-sorted
// sample using linear interpolation between the two closest ranks
// (the "C = 1" / inclusive convention: pos = p*(n-1), the value
// interpolated between sorted[floor(pos)] and sorted[ceil(pos)]).
// A single-element sample returns that element for every p, and
// p = 1.0 returns the maximum.
func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return float64(sorted[len(sorted)-1])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// Counters tallies the microarchitectural events the power model
// converts into energy. All counts are network-wide totals.
type Counters struct {
	// BufferWrites and BufferReads count flit slot accesses at router
	// input ports.
	BufferWrites uint64
	BufferReads  uint64
	// XbarTraversals counts flits crossing a router crossbar.
	XbarTraversals uint64
	// LinkTraversals counts flits crossing an inter-router link.
	LinkTraversals uint64
	// VAOps counts virtual-channel allocation attempts (stage-1
	// arbitration activations).
	VAOps uint64
	// SAOps counts switch-allocation activations.
	SAOps uint64
	// VCGrants counts successful VC allocations (token grants).
	VCGrants uint64

	// Fault-model activity (zero without Config.Faults): flits lost
	// on links, flits failing their CRC at the receiver, link-level
	// retransmissions, port-cycles spent frozen by a stall fault, and
	// packets re-channelled onto escape VCs.
	FlitDrops      uint64
	FlitCorrupts   uint64
	Retransmits    uint64
	StallCycles    uint64
	EscapeReroutes uint64
}

// Sub returns the counter difference c - other (for windowed
// measurement over cumulative counters).
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		BufferWrites:   c.BufferWrites - other.BufferWrites,
		BufferReads:    c.BufferReads - other.BufferReads,
		XbarTraversals: c.XbarTraversals - other.XbarTraversals,
		LinkTraversals: c.LinkTraversals - other.LinkTraversals,
		VAOps:          c.VAOps - other.VAOps,
		SAOps:          c.SAOps - other.SAOps,
		VCGrants:       c.VCGrants - other.VCGrants,
		FlitDrops:      c.FlitDrops - other.FlitDrops,
		FlitCorrupts:   c.FlitCorrupts - other.FlitCorrupts,
		Retransmits:    c.Retransmits - other.Retransmits,
		StallCycles:    c.StallCycles - other.StallCycles,
		EscapeReroutes: c.EscapeReroutes - other.EscapeReroutes,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.BufferWrites += other.BufferWrites
	c.BufferReads += other.BufferReads
	c.XbarTraversals += other.XbarTraversals
	c.LinkTraversals += other.LinkTraversals
	c.VAOps += other.VAOps
	c.SAOps += other.SAOps
	c.VCGrants += other.VCGrants
	c.FlitDrops += other.FlitDrops
	c.FlitCorrupts += other.FlitCorrupts
	c.Retransmits += other.Retransmits
	c.StallCycles += other.StallCycles
	c.EscapeReroutes += other.EscapeReroutes
}

// SeriesPoint is one sample of a time-series metric.
type SeriesPoint struct {
	Cycle int64
	Value float64
}

// ChannelLoad is the measured utilization of one inter-router link.
type ChannelLoad struct {
	// From and To are the endpoint node IDs; Port is the output port
	// at From.
	From, To, Port int
	// Load is flits per cycle over the measurement window (link
	// capacity is 1).
	Load float64
}

// Results is the outcome of one simulation run.
type Results struct {
	// Label identifies the configuration ("GEN-16", "ViC-8", ...).
	Label string
	// InjectionRate echoes the offered load in flits/node/cycle.
	InjectionRate float64

	// AvgLatency is the mean packet latency in cycles (creation to
	// tail ejection) over the measurement window.
	AvgLatency float64
	// AvgQueueLatency is the mean time packets spent waiting in their
	// source queue before the head flit entered the network.
	AvgQueueLatency float64
	// AvgNetworkLatency is the mean in-network time (head injection
	// to tail ejection); AvgLatency = AvgQueueLatency +
	// AvgNetworkLatency.
	AvgNetworkLatency float64
	// P50Latency, P95Latency and P99Latency are latency percentiles
	// over the measured packets; MaxLatency is the worst case.
	P50Latency float64
	P95Latency float64
	P99Latency float64
	MaxLatency int64
	// Throughput is network-wide ejected flits per cycle during the
	// measurement window.
	Throughput float64
	// AvgOccupancy is the mean fraction of buffer slots occupied
	// (0..1) sampled over the measurement window.
	AvgOccupancy float64
	// AvgInUseVCs is the mean number of in-use virtual channels per
	// router port over the measurement window.
	AvgInUseVCs float64
	// PerNodeVCs is the per-node mean of in-use VCs per port — the
	// spatial map of paper Figure 13(e).
	PerNodeVCs []float64
	// VCSeries is the temporal evolution of network-mean in-use VCs —
	// paper Figure 13(f). Sampled from cycle zero (including warm-up).
	VCSeries []SeriesPoint

	// MeasuredPackets is the number of packets in the latency
	// average.
	MeasuredPackets int64
	// EjectedPackets is the total ejected, including warm-up.
	EjectedPackets int64
	// MeasureCycles is the length of the measurement window.
	MeasureCycles int64
	// TotalCycles is the complete run length.
	TotalCycles int64
	// Saturated is set when the run hit its cycle cap before ejecting
	// its quota — the network could not sustain the offered load.
	Saturated bool

	// ChannelLoads is the per-link utilization over the measurement
	// window (inter-router links only), and MaxChannelLoad its
	// maximum — the bottleneck channel.
	ChannelLoads   []ChannelLoad
	MaxChannelLoad float64

	// Counters are the activity totals over the measurement window.
	Counters Counters
	// AvgPowerWatts is filled in by the power model (0 if unused).
	AvgPowerWatts float64

	// Txn carries the transaction-layer results; nil (and omitted
	// from JSON) when Config.Txn is off, so fire-and-forget result
	// fixtures are unaffected by the layer's existence.
	Txn *TxnResults `json:",omitempty"`
}

// TxnResults is the transaction layer's end-to-end outcome: counts
// over the whole run, latency statistics (request creation to
// retirement, in cycles) over the measurement window.
type TxnResults struct {
	// Issued and Retired count transactions over the whole run; a gap
	// at finalization means transactions were still in flight.
	Issued  int64
	Retired int64
	// MeasuredTxns is the number of latency samples below.
	MeasuredTxns int64
	// AvgLatency and the percentiles summarize end-to-end transaction
	// latency: request creation to response tail ejection at the
	// requester (posted writes: to tail ejection at the target).
	AvgLatency float64
	P50Latency float64
	P95Latency float64
	P99Latency float64
	MaxLatency int64
}

// FinalizeTxn reduces the engine's latency samples into TxnResults.
// samples is not retained; a nil or empty slice yields zero latency
// statistics.
func FinalizeTxn(samples []int64, issued, retired int64) *TxnResults {
	t := &TxnResults{Issued: issued, Retired: retired, MeasuredTxns: int64(len(samples))}
	if len(samples) == 0 {
		return t
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	sum := 0.0
	for _, l := range sorted {
		sum += float64(l)
	}
	t.AvgLatency = sum / float64(len(sorted))
	t.P50Latency = percentile(sorted, 0.50)
	t.P95Latency = percentile(sorted, 0.95)
	t.P99Latency = percentile(sorted, 0.99)
	t.MaxLatency = sorted[len(sorted)-1]
	return t
}

func (r *Results) String() string {
	return fmt.Sprintf("%s@%.3f: lat=%.1f thr=%.2f occ=%.1f%% vcs=%.2f pkts=%d sat=%v",
		r.Label, r.InjectionRate, r.AvgLatency, r.Throughput,
		r.AvgOccupancy*100, r.AvgInUseVCs, r.MeasuredPackets, r.Saturated)
}

// Collector accumulates metrics during a run. The network calls its
// hooks; it is not safe for concurrent use. Under the two-phase cycle
// kernel (DESIGN.md §10) every mutation happens in the serial commit
// sub-phase — staged ejections are replayed in ascending node order
// between the deliver and compute barriers — so the collector never
// sees concurrent callers and its totals are independent of the
// kernel's worker count.
type Collector struct {
	warmup  int64
	measure int64
	nodes   int

	ejected      int64
	measured     int64
	latencySum   float64
	queueSum     float64
	latencies    []int64
	ejectedFlits int64

	measuring    bool
	opened       bool // the window has opened at least once
	measureStart int64
	measureEnd   int64 // 0 while the window is still open

	occSum     float64
	occSamples int64

	vcSum        float64
	vcSamples    int64
	perNodeSum   []float64
	perNodeCount int64

	series []SeriesPoint

	counters Counters
}

// NewCollector returns a collector for the given measurement protocol
// over a network of nodes nodes.
func NewCollector(warmupPackets, measurePackets, nodes int) *Collector {
	return &Collector{
		warmup:     int64(warmupPackets),
		measure:    int64(measurePackets),
		nodes:      nodes,
		perNodeSum: make([]float64, nodes),
	}
}

// Measuring reports whether the measurement window is open at the
// given moment.
func (c *Collector) Measuring() bool { return c.measuring }

// Done reports whether the ejection quota has been met.
func (c *Collector) Done() bool { return c.ejected >= c.warmup+c.measure }

// Ejected returns the total ejected packet count so far.
func (c *Collector) Ejected() int64 { return c.ejected }

// Latencies returns a copy of the per-packet latencies recorded in
// the measurement window, in ejection order. The determinism
// regression test compares them element-wise across same-seed runs.
func (c *Collector) Latencies() []int64 {
	out := make([]int64, len(c.latencies))
	copy(out, c.latencies)
	return out
}

// PacketEjected records the ejection of p at cycle now. The
// measurement window opens at the cycle of the boundary ejection —
// the warmup-th one, or the very first when there is no warm-up — so
// latency sums, throughput, occupancy samples and the network's
// counter snapshots all bracket the same [start, end] interval
// (Window).
func (c *Collector) PacketEjected(p *flit.Packet, now int64) {
	c.ejected++
	if !c.opened && (c.ejected == c.warmup || c.warmup == 0) {
		c.measuring = true
		c.opened = true
		c.measureStart = now
	}
	if c.measuring && c.ejected > c.warmup && c.measured < c.measure {
		c.measured++
		c.latencySum += float64(p.Latency())
		c.queueSum += float64(p.InjectedAt - p.CreatedAt)
		c.latencies = append(c.latencies, p.Latency())
		c.ejectedFlits += int64(p.Size)
		if c.measured == c.measure {
			c.measureEnd = now
			c.measuring = false
		}
	}
}

// Sample records one stats sample: the network-wide buffer occupancy
// fraction and the per-node mean in-use VC count per port. The VC
// time series is recorded for the whole run; occupancy and VC
// averages only accumulate during the measurement window.
func (c *Collector) Sample(now int64, occupancy float64, perNodeVCs []float64) {
	mean := 0.0
	for _, v := range perNodeVCs {
		mean += v
	}
	if len(perNodeVCs) > 0 {
		mean /= float64(len(perNodeVCs))
	}
	c.series = append(c.series, SeriesPoint{Cycle: now, Value: mean})

	if !c.measuring {
		return
	}
	c.occSum += occupancy
	c.occSamples++
	c.vcSum += mean
	c.vcSamples++
	for i, v := range perNodeVCs {
		if i < len(c.perNodeSum) {
			c.perNodeSum[i] += v
		}
	}
	c.perNodeCount++
}

// AddCounters accumulates activity events; the network only calls it
// for events inside the measurement window.
func (c *Collector) AddCounters(delta Counters) { c.counters.Add(delta) }

// Window returns the measurement window's bounds as of cycle now.
// start is the cycle the window opened; end is the cycle it closed,
// or now while it is still open — a saturated run that hits its cycle
// cap mid-measurement gets the same bounds every downstream consumer
// (throughput, occupancy, power) divides by. ok is false when the
// window never opened (no measurable ejection before the cap).
func (c *Collector) Window(now int64) (start, end int64, ok bool) {
	if !c.opened {
		return 0, 0, false
	}
	end = c.measureEnd
	if end == 0 {
		end = now
	}
	return c.measureStart, end, true
}

// Finalize closes the run at cycle now and computes the results.
// saturated marks a run that hit its cycle cap short of its quota.
func (c *Collector) Finalize(now int64, saturated bool) Results {
	r := Results{
		MeasuredPackets: c.measured,
		EjectedPackets:  c.ejected,
		TotalCycles:     now,
		Saturated:       saturated,
		Counters:        c.counters,
		VCSeries:        c.series,
	}
	if start, end, ok := c.Window(now); ok {
		r.MeasureCycles = end - start
	}
	if c.measured > 0 {
		r.AvgLatency = c.latencySum / float64(c.measured)
		r.AvgQueueLatency = c.queueSum / float64(c.measured)
		r.AvgNetworkLatency = r.AvgLatency - r.AvgQueueLatency
		sorted := make([]int64, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.P50Latency = percentile(sorted, 0.50)
		r.P95Latency = percentile(sorted, 0.95)
		r.P99Latency = percentile(sorted, 0.99)
		r.MaxLatency = sorted[len(sorted)-1]
	}
	if r.MeasureCycles > 0 {
		r.Throughput = float64(c.ejectedFlits) / float64(r.MeasureCycles)
	}
	if c.occSamples > 0 {
		r.AvgOccupancy = c.occSum / float64(c.occSamples)
	}
	if c.vcSamples > 0 {
		r.AvgInUseVCs = c.vcSum / float64(c.vcSamples)
	}
	r.PerNodeVCs = make([]float64, c.nodes)
	if c.perNodeCount > 0 {
		for i := range r.PerNodeVCs {
			r.PerNodeVCs[i] = c.perNodeSum[i] / float64(c.perNodeCount)
		}
	}
	return r
}
