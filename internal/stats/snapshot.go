package stats

import (
	"fmt"

	"vichar/internal/snap"
)

// This file implements the checkpoint half of the stats layer. The
// collector is pure accumulated state — every field except the
// measurement protocol (which re-derives from the configuration) is
// serialized, floats by their IEEE-754 bits, so a restored run's
// Finalize output is byte-identical to the straight-through run's.

// SaveState serializes the counter block.
func (c *Counters) SaveState(w *snap.Writer) {
	w.U64(c.BufferWrites)
	w.U64(c.BufferReads)
	w.U64(c.XbarTraversals)
	w.U64(c.LinkTraversals)
	w.U64(c.VAOps)
	w.U64(c.SAOps)
	w.U64(c.VCGrants)
	w.U64(c.FlitDrops)
	w.U64(c.FlitCorrupts)
	w.U64(c.Retransmits)
	w.U64(c.StallCycles)
	w.U64(c.EscapeReroutes)
}

// LoadState restores a counter block saved by SaveState.
func (c *Counters) LoadState(r *snap.Reader) error {
	c.BufferWrites = r.U64()
	c.BufferReads = r.U64()
	c.XbarTraversals = r.U64()
	c.LinkTraversals = r.U64()
	c.VAOps = r.U64()
	c.SAOps = r.U64()
	c.VCGrants = r.U64()
	c.FlitDrops = r.U64()
	c.FlitCorrupts = r.U64()
	c.Retransmits = r.U64()
	c.StallCycles = r.U64()
	c.EscapeReroutes = r.U64()
	return r.Err()
}

// SaveState serializes the collector's accumulated measurements.
func (c *Collector) SaveState(w *snap.Writer) {
	w.Section("collector")
	w.I64(c.ejected)
	w.I64(c.measured)
	w.F64(c.latencySum)
	w.F64(c.queueSum)
	w.I64s(c.latencies)
	w.I64(c.ejectedFlits)
	w.Bool(c.measuring)
	w.Bool(c.opened)
	w.I64(c.measureStart)
	w.I64(c.measureEnd)
	w.F64(c.occSum)
	w.I64(c.occSamples)
	w.F64(c.vcSum)
	w.I64(c.vcSamples)
	w.F64s(c.perNodeSum)
	w.I64(c.perNodeCount)
	w.Int(len(c.series))
	for _, p := range c.series {
		w.I64(p.Cycle)
		w.F64(p.Value)
	}
	c.counters.SaveState(w)
}

// LoadState restores measurements saved by SaveState into a collector
// constructed with the same protocol and node count.
func (c *Collector) LoadState(r *snap.Reader) error {
	if err := r.Section("collector"); err != nil {
		return err
	}
	c.ejected = r.I64()
	c.measured = r.I64()
	c.latencySum = r.F64()
	c.queueSum = r.F64()
	c.latencies = r.I64sAppend(c.latencies)
	c.ejectedFlits = r.I64()
	c.measuring = r.Bool()
	c.opened = r.Bool()
	c.measureStart = r.I64()
	c.measureEnd = r.I64()
	c.occSum = r.F64()
	c.occSamples = r.I64()
	c.vcSum = r.F64()
	c.vcSamples = r.I64()
	r.F64sInto(c.perNodeSum)
	c.perNodeCount = r.I64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("stats: negative series length %d in snapshot", n)
	}
	c.series = c.series[:0]
	for i := 0; i < n; i++ {
		c.series = append(c.series, SeriesPoint{Cycle: r.I64(), Value: r.F64()})
		if r.Err() != nil {
			return r.Err()
		}
	}
	return c.counters.LoadState(r)
}
