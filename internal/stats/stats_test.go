package stats

import (
	"math"
	"strings"
	"testing"

	"vichar/internal/flit"
)

func eject(c *Collector, now, created int64) {
	c.PacketEjected(&flit.Packet{Size: 4, CreatedAt: created, EjectedAt: now}, now)
}

func TestWarmupExcluded(t *testing.T) {
	c := NewCollector(2, 3, 4)
	// Two warm-up packets with huge latencies must not count.
	eject(c, 1000, 0)
	eject(c, 2000, 0)
	if c.Measuring() != true {
		t.Fatal("measurement window should open at the warm-up boundary")
	}
	// Three measured packets with latency 10 each.
	eject(c, 2010, 2000)
	eject(c, 2020, 2010)
	eject(c, 2030, 2020)
	if !c.Done() {
		t.Fatal("quota met but not done")
	}
	r := c.Finalize(2030, false)
	if r.AvgLatency != 10 {
		t.Fatalf("avg latency %.1f, want 10 (warm-up leaked in)", r.AvgLatency)
	}
	if r.MeasuredPackets != 3 || r.EjectedPackets != 5 {
		t.Fatalf("measured %d / ejected %d", r.MeasuredPackets, r.EjectedPackets)
	}
}

func TestThroughputOverWindow(t *testing.T) {
	c := NewCollector(1, 2, 4)
	eject(c, 100, 0)   // warm-up; window opens at cycle 100
	eject(c, 150, 140) // measured, 4 flits
	eject(c, 200, 190) // measured, 4 flits; window closes at 200
	r := c.Finalize(500, false)
	if r.MeasureCycles != 100 {
		t.Fatalf("window %d cycles, want 100", r.MeasureCycles)
	}
	if math.Abs(r.Throughput-8.0/100) > 1e-9 {
		t.Fatalf("throughput %.4f, want 0.08", r.Throughput)
	}
}

func TestQuotaStopsLatencyAccumulation(t *testing.T) {
	c := NewCollector(0, 1, 4)
	eject(c, 10, 0) // the one measured packet: latency 10
	eject(c, 99999, 0)
	r := c.Finalize(99999, false)
	if r.AvgLatency != 10 {
		t.Fatalf("post-quota ejection leaked into latency: %.1f", r.AvgLatency)
	}
}

func TestZeroWarmup(t *testing.T) {
	c := NewCollector(0, 2, 4)
	eject(c, 50, 40)
	eject(c, 60, 45)
	r := c.Finalize(60, false)
	if r.MeasuredPackets != 2 || r.AvgLatency != 12.5 {
		t.Fatalf("zero-warm-up stats wrong: %+v", r)
	}
}

func TestSampling(t *testing.T) {
	c := NewCollector(1, 10, 2)
	// Before measurement: series recorded, averages not.
	c.Sample(10, 0.5, []float64{2, 4})
	eject(c, 20, 0) // opens the window
	c.Sample(30, 0.25, []float64{1, 3})
	c.Sample(40, 0.75, []float64{3, 5})
	r := c.Finalize(50, true)
	if len(r.VCSeries) != 3 {
		t.Fatalf("series has %d points, want 3 (pre-window included)", len(r.VCSeries))
	}
	if math.Abs(r.AvgOccupancy-0.5) > 1e-9 {
		t.Fatalf("occupancy %.3f, want mean of measured samples 0.5", r.AvgOccupancy)
	}
	if math.Abs(r.AvgInUseVCs-3.0) > 1e-9 {
		t.Fatalf("avg VCs %.3f, want 3", r.AvgInUseVCs)
	}
	if math.Abs(r.PerNodeVCs[0]-2.0) > 1e-9 || math.Abs(r.PerNodeVCs[1]-4.0) > 1e-9 {
		t.Fatalf("per-node VCs %v", r.PerNodeVCs)
	}
	if !r.Saturated {
		t.Fatal("saturation flag lost")
	}
}

func TestCountersAddSub(t *testing.T) {
	a := Counters{BufferWrites: 10, BufferReads: 8, XbarTraversals: 7, LinkTraversals: 6, VAOps: 5, SAOps: 4, VCGrants: 3}
	b := Counters{BufferWrites: 1, BufferReads: 2, XbarTraversals: 3, LinkTraversals: 4, VAOps: 1, SAOps: 1, VCGrants: 1}
	d := a.Sub(b)
	if d.BufferWrites != 9 || d.BufferReads != 6 || d.XbarTraversals != 4 ||
		d.LinkTraversals != 2 || d.VAOps != 4 || d.SAOps != 3 || d.VCGrants != 2 {
		t.Fatalf("sub wrong: %+v", d)
	}
	var sum Counters
	sum.Add(a)
	sum.Add(b)
	if sum.BufferWrites != 11 || sum.VCGrants != 4 {
		t.Fatalf("add wrong: %+v", sum)
	}
}

func TestResultsString(t *testing.T) {
	r := Results{Label: "ViC-16", InjectionRate: 0.25, AvgLatency: 36.5,
		Throughput: 15.9, AvgOccupancy: 0.051, AvgInUseVCs: 0.75, MeasuredPackets: 100}
	s := r.String()
	for _, want := range []string{"ViC-16", "0.250", "36.5", "15.90", "5.1%"} {
		if !strings.Contains(s, want) {
			t.Errorf("results string %q missing %q", s, want)
		}
	}
}

func TestFinalizeWithoutQuota(t *testing.T) {
	// A saturated run never opens the window; finalize must not
	// divide by zero or fabricate metrics.
	c := NewCollector(100, 100, 4)
	eject(c, 10, 0)
	r := c.Finalize(5000, true)
	if r.AvgLatency != 0 || r.MeasuredPackets != 0 {
		t.Fatalf("unopened window fabricated metrics: %+v", r)
	}
	if !r.Saturated || r.EjectedPackets != 1 {
		t.Fatalf("run accounting wrong: %+v", r)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector(0, 100, 4)
	// Latencies 1..100.
	for i := int64(1); i <= 100; i++ {
		eject(c, 1000+i, 1000+i-i) // latency = i
	}
	r := c.Finalize(1100, false)
	if r.MaxLatency != 100 {
		t.Fatalf("max %d, want 100", r.MaxLatency)
	}
	if r.P50Latency < 50 || r.P50Latency > 51 {
		t.Fatalf("p50 %.2f, want ≈50.5", r.P50Latency)
	}
	if r.P95Latency < 95 || r.P95Latency > 96 {
		t.Fatalf("p95 %.2f", r.P95Latency)
	}
	if r.P99Latency < 99 || r.P99Latency > 100 {
		t.Fatalf("p99 %.2f", r.P99Latency)
	}
	if r.P50Latency > r.P95Latency || r.P95Latency > r.P99Latency {
		t.Fatal("percentiles not ordered")
	}
}

func TestPercentileHelper(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty sample percentile nonzero")
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Fatalf("singleton percentile %.1f", got)
	}
	if got := percentile([]int64{1, 3}, 0.5); got != 2 {
		t.Fatalf("interpolated median %.1f, want 2", got)
	}
}

// Pin the percentile contract: linear interpolation between closest
// ranks (pos = p*(n-1)), single-element samples return that element
// for every p, and p=1.0 returns the maximum.
func TestPercentileLinearInterpolation(t *testing.T) {
	cases := []struct {
		name   string
		sorted []int64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"n=1 p=0", []int64{10}, 0, 10},
		{"n=1 p=0.5", []int64{10}, 0.5, 10},
		{"n=1 p=1", []int64{10}, 1.0, 10},
		{"n=2 median interpolates", []int64{10, 20}, 0.5, 15},
		{"n=2 p=1 is max", []int64{10, 20}, 1.0, 20},
		{"n=4 p75", []int64{1, 2, 3, 10}, 0.75, 4.75}, // pos=2.25 -> 3 + 0.25*7
		{"n=5 exact rank", []int64{1, 2, 3, 4, 5}, 0.5, 3},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %g) = %g, want %g", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// P50/P95/P99 over 1..100 under the inclusive linear-interpolation
// convention: pos = p*99.
func TestFinalizePercentiles(t *testing.T) {
	c := NewCollector(0, 100, 1)
	for i := int64(1); i <= 100; i++ {
		c.PacketEjected(&flit.Packet{Size: 1, CreatedAt: 0, InjectedAt: 0, EjectedAt: i}, i)
	}
	r := c.Finalize(100, false)
	if r.P50Latency != 50.5 {
		t.Errorf("P50 = %g, want 50.5", r.P50Latency)
	}
	if r.P95Latency != 95.05 {
		t.Errorf("P95 = %g, want 95.05", r.P95Latency)
	}
	if r.P99Latency != 99.01 {
		t.Errorf("P99 = %g, want 99.01", r.P99Latency)
	}
	if r.MaxLatency != 100 {
		t.Errorf("MaxLatency = %d, want 100", r.MaxLatency)
	}
}

// A saturated run closes its window at the cycle cap: Window,
// MeasureCycles and Throughput must agree on [start, now].
func TestSaturatedWindowConsistency(t *testing.T) {
	c := NewCollector(1, 10, 4)
	eject := func(created, now int64) {
		c.PacketEjected(&flit.Packet{Size: 4, CreatedAt: created, EjectedAt: now}, now)
	}
	eject(90, 100) // warm-up boundary: window opens at cycle 100
	eject(95, 110)
	eject(96, 120)
	eject(97, 130) // only 3 of 10 measured packets before the cap
	start, end, ok := c.Window(200)
	if !ok || start != 100 || end != 200 {
		t.Fatalf("Window(200) = (%d, %d, %v), want (100, 200, true)", start, end, ok)
	}
	r := c.Finalize(200, true)
	if !r.Saturated {
		t.Fatal("run not marked saturated")
	}
	if r.MeasureCycles != 100 {
		t.Fatalf("MeasureCycles = %d, want 100 (window 100..200)", r.MeasureCycles)
	}
	wantThr := float64(3*4) / 100
	if r.Throughput != wantThr {
		t.Fatalf("Throughput = %g, want %g (12 flits over the same window)", r.Throughput, wantThr)
	}
}

// With no warm-up the window opens at the first ejection's cycle (not
// the packet's creation), matching the network's counter snapshots.
func TestZeroWarmupWindowOpensAtEjection(t *testing.T) {
	c := NewCollector(0, 10, 1)
	c.PacketEjected(&flit.Packet{Size: 2, CreatedAt: 40, EjectedAt: 50}, 50)
	start, end, ok := c.Window(60)
	if !ok || start != 50 || end != 60 {
		t.Fatalf("Window(60) = (%d, %d, %v), want (50, 60, true)", start, end, ok)
	}
	if _, _, ok := NewCollector(5, 10, 1).Window(60); ok {
		t.Fatal("unopened window reported ok")
	}
}
