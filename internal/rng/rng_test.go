package rng

import (
	"math/rand"
	"testing"
)

// TestSequenceMatchesMathRand pins the shim's contract with the golden
// fixture wall: a Stream must produce exactly the sequence of
// rand.New(rand.NewSource(seed)) across the method mix the traffic
// generator uses.
func TestSequenceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 42, -7, 1_000_003} {
		s := New(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			switch i % 3 {
			case 0:
				if got, want := s.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, got, want)
				}
			case 1:
				if got, want := s.Intn(97), ref.Intn(97); got != want {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, got, want)
				}
			case 2:
				if got, want := s.Int63n(1_000_003), ref.Int63n(1_000_003); got != want {
					t.Fatalf("seed %d draw %d: Int63n %v != %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestRestoreFastForward checks the checkpoint contract: capturing
// (Seed, Draws) at any point and restoring yields a stream whose
// future output is identical to the original's.
func TestRestoreFastForward(t *testing.T) {
	s := New(99)
	// Consume a mixed prefix; Int63n's rejection sampling makes the
	// draw count a source-level, not call-level, quantity.
	for i := 0; i < 1234; i++ {
		s.Float64()
		s.Int63n(3)
		s.Intn(1 << 30)
	}
	seed, draws := s.Seed(), s.Draws()
	r := Restore(seed, draws)
	if r.Draws() != draws {
		t.Fatalf("restored draw count %d, want %d", r.Draws(), draws)
	}
	for i := 0; i < 5000; i++ {
		if got, want := r.Float64(), s.Float64(); got != want {
			t.Fatalf("draw %d after restore: %v != %v", i, got, want)
		}
		if got, want := r.Int63n(41), s.Int63n(41); got != want {
			t.Fatalf("draw %d after restore: Int63n %v != %v", i, got, want)
		}
	}
	if r.Draws() != s.Draws() {
		t.Fatalf("draw counters diverged: %d != %d", r.Draws(), s.Draws())
	}
}

// TestDrawsCountsSourceSteps verifies the counter advances at least
// once per API call and restores to zero on a fresh stream.
func TestDrawsCountsSourceSteps(t *testing.T) {
	s := New(5)
	if s.Draws() != 0 {
		t.Fatalf("fresh stream has %d draws", s.Draws())
	}
	s.Float64()
	if s.Draws() != 1 {
		t.Fatalf("Float64 consumed %d source steps, want 1", s.Draws())
	}
	before := s.Draws()
	s.Intn(10)
	if s.Draws() <= before {
		t.Fatal("Intn did not advance the draw counter")
	}
}
