// Package rng wraps math/rand's seeded generator in a draw-counting
// shim so a stream's exact position can be captured as (seed, draws)
// and restored by fast-forwarding a freshly seeded source — the basis
// of the simulator's checkpoint/restore contract for random streams.
//
// The count is taken at the *source* level (one increment per
// underlying generator step), not at the API level: rand.Rand methods
// such as Int63n consume a variable number of source steps (rejection
// sampling), so only the source count makes fast-forward exact. Every
// source step of math/rand's generator advances its state identically
// whether drawn through Int63 or Uint64, so replaying N Uint64 calls
// lands the restored stream on the same state as the saved one.
package rng

import (
	"fmt"
	"math/rand"
)

// countingSource wraps a rand.Source64 and counts generator steps.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.draws = 0 }

// Stream is a deterministic random stream identified by (seed, draw
// count). Its sequence is bit-identical to
// rand.New(rand.NewSource(seed)): the shim only counts.
type Stream struct {
	src  countingSource
	rnd  *rand.Rand
	seed int64
}

// New returns a stream seeded like rand.New(rand.NewSource(seed)).
func New(seed int64) *Stream {
	s := &Stream{seed: seed}
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8; this is a
		// construction-time toolchain assumption, not a runtime state.
		panic(fmt.Sprintf("rng: rand.NewSource(%d) does not implement Source64", seed))
	}
	s.src.src = src
	s.rnd = rand.New(&s.src)
	return s
}

// Restore returns a stream positioned as if draws generator steps had
// already been consumed from a fresh stream with the given seed.
func Restore(seed int64, draws uint64) *Stream {
	s := New(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.src.Uint64()
	}
	s.src.draws = draws
	return s
}

// Seed returns the seed the stream was created with.
func (s *Stream) Seed() int64 { return s.seed }

// Draws returns the number of generator steps consumed so far; together
// with Seed it fully identifies the stream's position.
func (s *Stream) Draws() uint64 { return s.src.draws }

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rnd.Float64() }

// Intn returns a uniform variate in [0, n); it panics when n <= 0,
// exactly like rand.Intn.
func (s *Stream) Intn(n int) int { return s.rnd.Intn(n) }

// Int63n returns a uniform variate in [0, n); it panics when n <= 0,
// exactly like rand.Int63n.
func (s *Stream) Int63n(n int64) int64 { return s.rnd.Int63n(n) }
