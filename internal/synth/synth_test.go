package synth

import (
	"math"
	"testing"

	"vichar/internal/config"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f ± %.4f", what, got, want, tol)
	}
}

// At the calibration point the model must reproduce Table 1 exactly.
func TestTable1Anchors(t *testing.T) {
	vic, gen, areaDelta, powerDelta := Table1()

	wantViC := []struct {
		area, power float64
	}{
		{12961.16, 5.36}, {54809.44, 15.36}, {27613.54, 8.82}, {6514.90, 2.06}, {101899.04, 31.60},
	}
	for i, w := range wantViC {
		approx(t, vic[i].AreaUm2, w.area, 0.01, "ViChaR "+vic[i].Component+" area")
		approx(t, vic[i].PowerMW, w.power, 0.01, "ViChaR "+vic[i].Component+" power")
	}
	wantGen := []struct {
		area, power float64
	}{
		{10379.92, 5.12}, {54809.44, 15.36}, {38958.80, 9.94}, {2032.93, 0.64}, {106181.09, 31.06},
	}
	for i, w := range wantGen {
		approx(t, gen[i].AreaUm2, w.area, 0.01, "generic "+gen[i].Component+" area")
		approx(t, gen[i].PowerMW, w.power, 0.01, "generic "+gen[i].Component+" power")
	}

	// Paper: 4,282.05 µm² (4.03%) area savings, 0.54 mW (1.74%)
	// power overhead per port.
	approx(t, areaDelta, -4282.05, 0.1, "area delta")
	approx(t, powerDelta, 0.54, 0.01, "power delta")
	approx(t, -100*areaDelta/gen[4].AreaUm2, 4.03, 0.05, "% area savings")
	approx(t, 100*powerDelta/gen[4].PowerMW, 1.74, 0.05, "% power overhead")
}

// The paper's headline: ViC-8 router vs GEN-16 router saves ~30%
// area and ~34% power.
func TestHalfBufferSavings(t *testing.T) {
	area, power := HalfBufferSavings()
	approx(t, area, 0.30, 0.02, "half-buffer area saving")
	approx(t, power, 0.34, 0.02, "half-buffer power saving")
}

func TestBufferScalesWithSlotsAndWidth(t *testing.T) {
	cfg := config.Default()
	base := Estimate(&cfg)

	cfg2 := cfg
	cfg2.VCDepth = 8
	cfg2.BufferSlots = 32
	doubleSlots := Estimate(&cfg2)
	approx(t, doubleSlots.BufArea/base.BufArea, 2.0, 1e-9, "slots area scaling")
	approx(t, doubleSlots.BufPower/base.BufPower, 2.0, 1e-9, "slots power scaling")

	cfg3 := cfg
	cfg3.FlitWidthBits = 64
	halfWidth := Estimate(&cfg3)
	approx(t, halfWidth.BufArea/base.BufArea, 0.5, 1e-9, "width area scaling")
}

func TestViCharControlScalesWithRows(t *testing.T) {
	a := config.Default()
	a.Arch = config.ViChaR
	b := a
	b.BufferSlots = 8
	ba, bb := Estimate(&a), Estimate(&b)
	if bb.CtrlArea >= ba.CtrlArea {
		t.Fatal("smaller table not smaller")
	}
	if bb.VAArea >= ba.VAArea || bb.SAArea >= ba.SAArea {
		t.Fatal("smaller arbiters not smaller")
	}
}

func TestGenericAllocatorScalesWithVCs(t *testing.T) {
	a := config.Default()
	b := a
	b.VCs, b.VCDepth, b.BufferSlots = 8, 2, 16
	ba, bb := Estimate(&a), Estimate(&b)
	if bb.VAArea <= ba.VAArea {
		t.Fatal("more VCs should cost more VA area")
	}
	// Equal buffer storage costs the same.
	approx(t, bb.BufArea, ba.BufArea, 1e-6, "equal-slot buffer area")
}

// The paper's FC-CB measurements: +18% buffer area, +66% buffer
// dynamic power over a stationary buffer.
func TestFCCBDeltas(t *testing.T) {
	gen := config.Default()
	fc := gen
	fc.Arch = config.FCCB
	g, f := Estimate(&gen), Estimate(&fc)
	approx(t, f.BufArea/g.BufArea, 1.18, 1e-9, "FC-CB buffer area factor")
	approx(t, f.BufPower/g.BufPower, 1.66, 1e-9, "FC-CB buffer power factor")
}

func TestDAMQControlCostlierThanViChaR(t *testing.T) {
	d := config.Default()
	d.Arch = config.DAMQ
	v := config.Default()
	v.Arch = config.ViChaR
	bd, bv := Estimate(&d), Estimate(&v)
	if bd.CtrlArea <= bv.CtrlArea {
		t.Fatal("DAMQ linked-list control should exceed ViChaR's table")
	}
}

func TestRouterTotalsComposition(t *testing.T) {
	cfg := config.Default()
	b := Estimate(&cfg)
	approx(t, b.RouterArea(), 5*b.PortArea()+b.RestArea, 1e-6, "router area composition")
	approx(t, b.RouterPower(), 5*b.PortPower()+b.RestPower, 1e-9, "router power composition")
	if b.PortArea() <= 0 || b.PortPower() <= 0 || b.RestArea <= 0 {
		t.Fatal("non-positive estimates")
	}
}

func TestViC16RouterSlightlySmaller(t *testing.T) {
	gen := config.Default()
	vic := gen
	vic.Arch = config.ViChaR
	g, v := Estimate(&gen), Estimate(&vic)
	ratio := v.RouterArea() / g.RouterArea()
	if ratio >= 1.0 || ratio < 0.95 {
		t.Fatalf("equal-size ViChaR router area ratio %.4f, want slightly below 1", ratio)
	}
	pr := v.RouterPower() / g.RouterPower()
	if pr <= 1.0 || pr > 1.05 {
		t.Fatalf("equal-size ViChaR router power ratio %.4f, want slightly above 1", pr)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]float64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %g, want %g", n, got, want)
		}
	}
}
