// Package synth is the stand-in for the paper's Synopsys Design
// Compiler + TSMC 90 nm synthesis flow (1 V, 500 MHz). It is an
// analytical area/power model anchored to the paper's measured
// Table 1 values and extrapolated with first-order structural scaling
// rules, so that:
//
//   - at the calibration point (P=5, v=4, k=4, 128-bit flits) it
//     reproduces Table 1 exactly, and
//   - away from it (e.g. halved buffers) it reproduces the paper's
//     router-level claims: ~30% area and ~34% power savings for a
//     ViChaR router with half the buffer slots of a generic router.
//
// Scaling rules:
//
//   - buffer slots: ∝ slots × flit width (register file bits);
//   - generic control logic: ∝ v (one read/write pointer pair per VC
//     FIFO);
//   - ViChaR table-based control (UCL): ∝ rows × ceil(log2 slots)
//     (the VC Control Table stores slot IDs; trackers and dispenser
//     are linear in rows);
//   - allocator logic: matrix-arbiter dominated, ∝ Σ n² over the
//     design's arbiter sizes (generic VA: v·(v² + (Pv)²) per port;
//     ViChaR VA: slots² + P²; generic SA: v² + P²; ViChaR SA:
//     slots² + P²);
//   - "rest of router" (crossbar, link drivers, clock tree — not in
//     the per-port Table 1): ∝ P² × width for area, one constant each
//     for area and power, calibrated so the ViC-8 vs GEN-16 full
//     router comparison lands on the paper's 30%/34% numbers.
package synth

import (
	"fmt"
	"math"

	"vichar/internal/config"
)

// Table 1 anchors: per-input-port area (µm²) and power (mW) of each
// component at the calibration point P=5, v=4, k=4, 128-bit flits.
const (
	calVCs   = 4
	calDepth = 4
	calSlots = 16
	calWidth = 128
	calPorts = 5

	anchorViCCtrlArea = 12961.16
	anchorViCBufArea  = 54809.44
	anchorViCVAArea   = 27613.54
	anchorViCSAArea   = 6514.90

	anchorGenCtrlArea = 10379.92
	anchorGenBufArea  = 54809.44
	anchorGenVAArea   = 38958.80
	anchorGenSAArea   = 2032.93

	anchorViCCtrlPower = 5.36
	anchorViCBufPower  = 15.36
	anchorViCVAPower   = 8.82
	anchorViCSAPower   = 2.06

	anchorGenCtrlPower = 5.12
	anchorGenBufPower  = 15.36
	anchorGenVAPower   = 9.94
	anchorGenSAPower   = 0.64

	// Rest-of-router constants (crossbar + link drivers + clock):
	// calibrated so RouterArea/RouterPower reproduce the paper's
	// "50% smaller ViChaR buffer → ~30% router area and ~34% router
	// power savings" claim against the 16-slot generic router.
	restAreaCal  = 520_000.0 // µm²
	restPowerCal = 108.0     // mW
)

// Breakdown is the per-component synthesis estimate for one router of
// a given configuration. Per-port figures follow Table 1's
// organization; router-level figures add all P ports plus the rest of
// the router.
type Breakdown struct {
	Arch config.BufferArch

	// Per input port, µm².
	CtrlArea, BufArea, VAArea, SAArea float64
	// Per input port, mW (peak, at full switching activity).
	CtrlPower, BufPower, VAPower, SAPower float64

	// Rest of the router (crossbar, links, clock), µm² and mW.
	RestArea, RestPower float64

	Ports int
}

// PortArea returns the per-port total in µm² (the Table 1 "TOTAL"
// row).
func (b Breakdown) PortArea() float64 { return b.CtrlArea + b.BufArea + b.VAArea + b.SAArea }

// PortPower returns the per-port total in mW.
func (b Breakdown) PortPower() float64 { return b.CtrlPower + b.BufPower + b.VAPower + b.SAPower }

// RouterArea returns the full router area in µm².
func (b Breakdown) RouterArea() float64 { return float64(b.Ports)*b.PortArea() + b.RestArea }

// RouterPower returns the full router peak power in mW.
func (b Breakdown) RouterPower() float64 { return float64(b.Ports)*b.PortPower() + b.RestPower }

// log2ceil returns ceil(log2(n)) with a floor of 1.
func log2ceil(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}

// arbiterCost is the matrix-arbiter cost proxy: the n² precedence
// matrix dominates.
func arbiterCost(n int) float64 { return float64(n * n) }

// Estimate returns the synthesis estimate for one router of the given
// configuration. DAMQ and FCCB are estimated as their paper-reported
// deltas over the corresponding structures (FC-CB: +18% buffer area,
// +66% buffer dynamic power; DAMQ: generic-like allocators plus a
// linked-list controller ~1.5x the ViChaR table logic).
func Estimate(cfg *config.Config) Breakdown {
	b := Breakdown{Arch: cfg.Arch, Ports: cfg.Ports()}

	widthScale := float64(cfg.BufferSlots*cfg.FlitWidthBits) / float64(calSlots*calWidth)
	b.BufArea = anchorGenBufArea * widthScale
	b.BufPower = anchorGenBufPower * widthScale

	p := cfg.Ports()
	restScale := float64(p*p*cfg.FlitWidthBits) / float64(calPorts*calPorts*calWidth)
	b.RestArea = restAreaCal * restScale
	b.RestPower = restPowerCal * restScale

	switch cfg.Arch {
	case config.Generic, config.DAMQ, config.FCCB:
		v := cfg.VCs
		ctrlScale := float64(v) / calVCs
		b.CtrlArea = anchorGenCtrlArea * ctrlScale
		b.CtrlPower = anchorGenCtrlPower * ctrlScale

		vaScale := (float64(v) * (arbiterCost(v) + arbiterCost(p*v))) /
			(calVCs * (arbiterCost(calVCs) + arbiterCost(calPorts*calVCs)))
		b.VAArea = anchorGenVAArea * vaScale
		b.VAPower = anchorGenVAPower * vaScale

		saScale := (arbiterCost(v) + arbiterCost(p)) /
			(arbiterCost(calVCs) + arbiterCost(calPorts))
		b.SAArea = anchorGenSAArea * saScale
		b.SAPower = anchorGenSAPower * saScale

		if cfg.Arch == config.FCCB {
			// Paper §2: the FC-CB's circular shifter MUXes add ~18%
			// buffer area and its continuous shifting adds ~66%
			// dynamic buffer power over a stationary buffer.
			b.BufArea *= 1.18
			b.BufPower *= 1.66
		}
		if cfg.Arch == config.DAMQ {
			// Linked-list pointer registers and free list: costlier
			// than ViChaR's table (the motivation for the table-based
			// redesign); modeled at 1.5x.
			uclScale := float64(cfg.BufferSlots) * log2ceil(cfg.BufferSlots) / (calSlots * log2ceil(calSlots))
			b.CtrlArea = 1.5 * anchorViCCtrlArea * uclScale
			b.CtrlPower = 1.5 * anchorViCCtrlPower * uclScale
		}

	case config.ViChaR:
		rows := cfg.BufferSlots
		uclScale := float64(rows) * log2ceil(rows) / (calSlots * log2ceil(calSlots))
		b.CtrlArea = anchorViCCtrlArea * uclScale
		b.CtrlPower = anchorViCCtrlPower * uclScale

		vaScale := (arbiterCost(rows) + arbiterCost(p)) /
			(arbiterCost(calSlots) + arbiterCost(calPorts))
		b.VAArea = anchorViCVAArea * vaScale
		b.VAPower = anchorViCVAPower * vaScale

		saScale := vaScale
		b.SAArea = anchorViCSAArea * saScale
		b.SAPower = anchorViCSAPower * saScale

	default:
		panic(fmt.Sprintf("synth: unknown buffer architecture %v", cfg.Arch))
	}
	return b
}

// Table1Row is one line of the reproduced Table 1.
type Table1Row struct {
	Component string
	AreaUm2   float64
	PowerMW   float64
}

// Table1 regenerates the paper's Table 1: the per-input-port
// breakdown for the ViChaR and generic architectures at the
// calibration configuration, plus the overhead/savings lines.
func Table1() (vichar, generic []Table1Row, areaDelta, powerDelta float64) {
	vc := config.Default()
	vc.Arch = config.ViChaR
	gen := config.Default()

	vb := Estimate(&vc)
	gb := Estimate(&gen)

	vichar = []Table1Row{
		{"ViChaR Table-Based Contr. Logic", vb.CtrlArea, vb.CtrlPower},
		{"ViChaR Buffer Slots (16 slots)", vb.BufArea, vb.BufPower},
		{"ViChaR VA Logic", vb.VAArea, vb.VAPower},
		{"ViChaR SA Logic", vb.SAArea, vb.SAPower},
		{"TOTAL for ViChaR Architecture", vb.PortArea(), vb.PortPower()},
	}
	generic = []Table1Row{
		{"Generic Control Logic", gb.CtrlArea, gb.CtrlPower},
		{"Generic Buffer Slots (16 slots)", gb.BufArea, gb.BufPower},
		{"Generic VA Logic", gb.VAArea, gb.VAPower},
		{"Generic SA Logic", gb.SAArea, gb.SAPower},
		{"TOTAL for Gen. Architecture", gb.PortArea(), gb.PortPower()},
	}
	areaDelta = vb.PortArea() - gb.PortArea()
	powerDelta = vb.PortPower() - gb.PortPower()
	return vichar, generic, areaDelta, powerDelta
}

// HalfBufferSavings returns the router-level area and power savings
// fractions of a half-size ViChaR router versus the full-size generic
// router — the paper's headline "30% area, 34% power" claim.
func HalfBufferSavings() (areaSaving, powerSaving float64) {
	gen := config.Default()
	vic := config.Default()
	vic.Arch = config.ViChaR
	vic.BufferSlots = gen.BufferSlots / 2

	gb := Estimate(&gen)
	vb := Estimate(&vic)
	areaSaving = 1 - vb.RouterArea()/gb.RouterArea()
	powerSaving = 1 - vb.RouterPower()/gb.RouterPower()
	return areaSaving, powerSaving
}
