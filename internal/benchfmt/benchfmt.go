// Package benchfmt defines the JSON schemas of the checked-in
// benchmark artifacts (BENCH_kernel.json, BENCH_obs.json), including
// the host-provenance block both embed, plus the loading and delta
// reporting used by `make bench-compare` and the GOMAXPROCS-mismatch
// warning in `make bench-kernel`.
//
// Benchmark numbers are only comparable when they come from the same
// host shape; every artifact therefore records where it was measured
// (CPU model, core count, GOMAXPROCS, go version) so a reader — human
// or tool — can refuse to read a 1-core baseline against a 32-core
// rerun as a regression.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// Host is the provenance block: the machine shape a benchmark
// artifact was recorded on.
type Host struct {
	CPUModel   string `json:"cpu_model"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the provenance block for this process.
func CurrentHost() Host {
	return Host{
		CPUModel:   cpuModel(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// cpuModel reads the CPU model string from /proc/cpuinfo, falling
// back to GOARCH on platforms without one.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(name) {
		case "model name", "Model Name", "cpu model", "Hardware":
			return strings.TrimSpace(val)
		}
	}
	return runtime.GOARCH
}

// Mismatch lists the fields of two provenance blocks that differ,
// most significant first. Empty means the hosts are comparable.
func (h Host) Mismatch(other Host) []string {
	var out []string
	if h.GOMAXPROCS != other.GOMAXPROCS {
		out = append(out, fmt.Sprintf("GOMAXPROCS %d vs %d", h.GOMAXPROCS, other.GOMAXPROCS))
	}
	if h.CPUs != other.CPUs && h.CPUs != 0 && other.CPUs != 0 {
		out = append(out, fmt.Sprintf("cpus %d vs %d", h.CPUs, other.CPUs))
	}
	if h.CPUModel != other.CPUModel && h.CPUModel != "" && other.CPUModel != "" {
		out = append(out, fmt.Sprintf("cpu %q vs %q", h.CPUModel, other.CPUModel))
	}
	if h.GoVersion != other.GoVersion && h.GoVersion != "" && other.GoVersion != "" {
		out = append(out, fmt.Sprintf("go %s vs %s", h.GoVersion, other.GoVersion))
	}
	return out
}

// KernelCell is one (architecture, mesh, injection rate, workers)
// point of the kernel sweep. Mesh is empty for cells recorded on the
// artifact's top-level mesh (LoadKernel normalizes it); TableBytes
// records the route-memoization footprint of the cell's network
// (DESIGN.md §17) so the scaling cells document their table memory.
type KernelCell struct {
	Arch               string  `json:"arch"`
	Mesh               string  `json:"mesh,omitempty"`
	Workers            int     `json:"workers"`
	InjectionRate      float64 `json:"injection_rate"`
	NsPerRun           int64   `json:"ns_per_run"`
	RouterCyclesPerSec float64 `json:"router_cycles_per_sec"`
	SpeedupVsSerial    float64 `json:"speedup_vs_serial,omitempty"`
	TableBytes         int     `json:"table_bytes,omitempty"`
}

// KernelArtifact is the BENCH_kernel.json schema. InjectionRate is
// the saturated sweep's rate, kept top-level for readers of the old
// single-rate schema; each cell carries its own rate. ScalingUnproven
// is the honesty bit: true when the recording host exposed a single
// CPU, in which case the multi-worker cells measure overhead, not
// speedup, and the speedup columns must not be quoted as scaling
// evidence.
type KernelArtifact struct {
	Mesh            string       `json:"mesh"`
	InjectionRate   float64      `json:"injection_rate"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	ScalingUnproven bool         `json:"scaling_unproven,omitempty"`
	Host            Host         `json:"host"`
	Cells           []KernelCell `json:"cells"`
}

// LoadKernel reads a kernel artifact, normalizing files written by
// the old schema: cells without a per-cell rate inherit the top-level
// one, and a missing host block is synthesized from the top-level
// GOMAXPROCS.
func LoadKernel(path string) (*KernelArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a KernelArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i := range a.Cells {
		if a.Cells[i].InjectionRate == 0 {
			a.Cells[i].InjectionRate = a.InjectionRate
		}
		if a.Cells[i].Mesh == "" {
			a.Cells[i].Mesh = a.Mesh
		}
	}
	if a.Host == (Host{}) {
		a.Host.GOMAXPROCS = a.GOMAXPROCS
	}
	return &a, nil
}

// Cell returns the cell matching (arch, mesh, workers, rate), or nil.
// An empty mesh matches the artifact's top-level mesh (what LoadKernel
// normalizes old-schema cells to).
func (a *KernelArtifact) Cell(arch, mesh string, workers int, rate float64) *KernelCell {
	if mesh == "" {
		mesh = a.Mesh
	}
	for i := range a.Cells {
		c := &a.Cells[i]
		cm := c.Mesh
		if cm == "" {
			cm = a.Mesh
		}
		if c.Arch == arch && cm == mesh && c.Workers == workers && c.InjectionRate == rate {
			return c
		}
	}
	return nil
}

// WriteCompare prints a benchstat-style delta report of new vs old,
// cell by cell in old's order, prefixed with any host-shape warnings.
func WriteCompare(w io.Writer, old, cur *KernelArtifact) {
	for _, m := range old.Host.Mismatch(cur.Host) {
		fmt.Fprintf(w, "WARNING: host mismatch, deltas are not comparable: %s\n", m)
	}
	fmt.Fprintf(w, "%-8s %-7s %-9s %-7s %14s %14s %8s\n",
		"arch", "mesh", "rate", "workers", "old rc/s", "new rc/s", "delta")
	matched := 0
	for i := range old.Cells {
		o := &old.Cells[i]
		c := cur.Cell(o.Arch, o.Mesh, o.Workers, o.InjectionRate)
		if c == nil {
			fmt.Fprintf(w, "%-8s %-7s %-9.2f %-7d %14.0f %14s %8s\n",
				o.Arch, o.Mesh, o.InjectionRate, o.Workers, o.RouterCyclesPerSec, "-", "-")
			continue
		}
		matched++
		delta := 0.0
		if o.RouterCyclesPerSec > 0 {
			delta = 100 * (c.RouterCyclesPerSec - o.RouterCyclesPerSec) / o.RouterCyclesPerSec
		}
		fmt.Fprintf(w, "%-8s %-7s %-9.2f %-7d %14.0f %14.0f %+7.1f%%\n",
			o.Arch, o.Mesh, o.InjectionRate, o.Workers, o.RouterCyclesPerSec, c.RouterCyclesPerSec, delta)
	}
	for i := range cur.Cells {
		c := &cur.Cells[i]
		if old.Cell(c.Arch, c.Mesh, c.Workers, c.InjectionRate) == nil {
			fmt.Fprintf(w, "%-8s %-7s %-9.2f %-7d %14s %14.0f %8s\n",
				c.Arch, c.Mesh, c.InjectionRate, c.Workers, "-", c.RouterCyclesPerSec, "new")
		}
	}
	if matched == 0 {
		fmt.Fprintf(w, "no overlapping cells between the two artifacts\n")
	}
}

// MaxLossViolations returns one description per saturated-throughput
// regression beyond maxLossPct: cells of the old artifact's top-level
// (saturated) injection rate whose router-cycles/s dropped by more
// than the threshold in cur. Only cells present in both artifacts are
// judged; an empty result means the gate passes. This is the
// `vichar-benchcmp -max-loss` CI gate.
func MaxLossViolations(old, cur *KernelArtifact, maxLossPct float64) []string {
	var out []string
	for i := range old.Cells {
		o := &old.Cells[i]
		if o.InjectionRate != old.InjectionRate || o.RouterCyclesPerSec <= 0 {
			continue
		}
		c := cur.Cell(o.Arch, o.Mesh, o.Workers, o.InjectionRate)
		if c == nil {
			continue
		}
		loss := 100 * (o.RouterCyclesPerSec - c.RouterCyclesPerSec) / o.RouterCyclesPerSec
		if loss > maxLossPct {
			out = append(out, fmt.Sprintf(
				"%s mesh=%s rate=%.2f workers=%d: %.0f -> %.0f router-cycles/s (-%.1f%% > %.0f%% budget)",
				o.Arch, o.Mesh, o.InjectionRate, o.Workers,
				o.RouterCyclesPerSec, c.RouterCyclesPerSec, loss, maxLossPct))
		}
	}
	return out
}
