package config

import (
	"fmt"
	"strconv"
	"strings"

	"vichar/internal/topology"
)

// FaultKind classifies one scheduled fault event.
type FaultKind int

const (
	// KillLink permanently disables the directed link leaving Node
	// through Port from Cycle on. Worms already granted the link drain
	// normally; the VC allocator stops routing new packets over it and
	// escape traffic is carried by a fault-aware up*/down* escape tree
	// built over the surviving links (routing.EscapeTree). Requires
	// MinimalAdaptive routing, and the surviving bidirectional links
	// must keep the mesh connected.
	KillLink FaultKind = iota
	// StallPort freezes the control logic of input port Port at router
	// Node for Cycles cycles starting at Cycle: no RC, VA or SA
	// progress for that port, while arriving flits still land in its
	// buffer. Credit backpressure propagates the stall upstream.
	StallPort
	// DropFlit drops exactly one flit: the first delivery attempt on
	// the link leaving Node through Port at or after Cycle is faulted
	// and recovered through the link's retransmission buffer.
	DropFlit
)

// String returns the canonical event-kind name.
func (k FaultKind) String() string {
	switch k {
	case KillLink:
		return "kill-link"
	case StallPort:
		return "stall-port"
	case DropFlit:
		return "drop-flit"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ParseFaultKind parses a fault-event kind name.
func ParseFaultKind(s string) (FaultKind, error) {
	switch normalize(s) {
	case "kill-link", "killlink", "kill":
		return KillLink, nil
	case "stall-port", "stallport", "stall", "freeze":
		return StallPort, nil
	case "drop-flit", "dropflit", "drop":
		return DropFlit, nil
	default:
		return 0, fmt.Errorf("config: unknown fault kind %q (kill-link|stall-port|drop-flit)", s)
	}
}

// MarshalText returns the canonical event-kind name.
func (k FaultKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a fault-event kind name.
func (k *FaultKind) UnmarshalText(b []byte) error {
	v, err := ParseFaultKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// FaultEvent is one explicitly scheduled fault. For KillLink and
// DropFlit, Port is the output port of the faulted link at Node
// (cardinal only); for StallPort it is the frozen input port (Local
// allowed — that freezes injection drainage).
type FaultEvent struct {
	// Cycle is the simulation cycle the event takes effect (the first
	// cycle is 1).
	Cycle int64
	Kind  FaultKind
	Node  int
	Port  int
	// Cycles is the stall duration (StallPort only).
	Cycles int `json:",omitempty"`
}

// FaultsConfig schedules the deterministic fault model of a run
// (internal/faults). The zero value disables it. Rate-driven faults
// are drawn from pure counter-based hashes keyed by Seed and the
// faulted resource — never from shared random state — so fault
// placement is bit-identical at every Config.Workers setting.
type FaultsConfig struct {
	// Seed keys the fault hash streams; independent of Config.Seed so
	// traffic and fault placement can be varied separately.
	Seed int64 `json:",omitempty"`

	// DropRate and CorruptRate are per-delivery-attempt probabilities
	// of a flit being lost on, or corrupted while crossing, an
	// inter-router link. Both are detected at the receiver (implicit
	// per-flit CRC) and recovered by the link's retransmission buffer:
	// the faulted flit is held for the retransmit delay and re-sent,
	// blocking the flits behind it so wormhole order is preserved.
	DropRate    float64 `json:",omitempty"`
	CorruptRate float64 `json:",omitempty"`
	// RetransmitDelay is the cycles between a detected fault and the
	// retransmission attempt (0 = default 4). A retransmission is
	// itself subject to the fault rates.
	RetransmitDelay int `json:",omitempty"`

	// StallRate is the per-cycle probability that a healthy router
	// input port freezes for StallCycles cycles (0 = default 8).
	StallRate   float64 `json:",omitempty"`
	StallCycles int     `json:",omitempty"`

	// Events is the explicit fault schedule; see FaultEvent.
	Events []FaultEvent `json:",omitempty"`
}

// Enabled reports whether the configuration injects any faults.
func (f *FaultsConfig) Enabled() bool {
	return f.DropRate > 0 || f.CorruptRate > 0 || f.StallRate > 0 || len(f.Events) > 0
}

// EffectiveRetransmitDelay returns RetransmitDelay with the default
// applied.
func (f *FaultsConfig) EffectiveRetransmitDelay() int {
	if f.RetransmitDelay > 0 {
		return f.RetransmitDelay
	}
	return 4
}

// EffectiveStallCycles returns StallCycles with the default applied.
func (f *FaultsConfig) EffectiveStallCycles() int {
	if f.StallCycles > 0 {
		return f.StallCycles
	}
	return 8
}

// HasHardFaults reports whether the schedule contains a KillLink
// event (which switches escape routing to the fault-aware tree).
func (f *FaultsConfig) HasHardFaults() bool {
	for _, ev := range f.Events {
		if ev.Kind == KillLink {
			return true
		}
	}
	return false
}

// validate checks the fault schedule against the enclosing
// configuration; called from Config.Validate.
func (f *FaultsConfig) validate(c *Config) error {
	switch {
	case f.DropRate < 0 || f.DropRate > 1:
		return fmt.Errorf("config: fault drop rate must be in [0,1], got %g", f.DropRate)
	case f.CorruptRate < 0 || f.CorruptRate > 1:
		return fmt.Errorf("config: fault corrupt rate must be in [0,1], got %g", f.CorruptRate)
	case f.DropRate+f.CorruptRate > 1:
		return fmt.Errorf("config: fault drop+corrupt rates exceed 1 (%g)", f.DropRate+f.CorruptRate)
	case f.StallRate < 0 || f.StallRate > 1:
		return fmt.Errorf("config: port stall rate must be in [0,1], got %g", f.StallRate)
	case f.RetransmitDelay < 0:
		return fmt.Errorf("config: retransmit delay cannot be negative, got %d", f.RetransmitDelay)
	case f.StallCycles < 0:
		return fmt.Errorf("config: stall cycles cannot be negative, got %d", f.StallCycles)
	}
	mesh := topology.Mesh{Width: c.Width, Height: c.Height, Torus: c.Torus}
	for i, ev := range f.Events {
		if ev.Cycle < 1 {
			return fmt.Errorf("config: fault event %d: cycle must be >= 1, got %d", i, ev.Cycle)
		}
		if ev.Node < 0 || ev.Node >= c.Nodes() {
			return fmt.Errorf("config: fault event %d: node %d outside %dx%d mesh", i, ev.Node, c.Width, c.Height)
		}
		switch ev.Kind {
		case StallPort:
			if ev.Port < 0 || ev.Port >= c.Ports() {
				return fmt.Errorf("config: fault event %d: input port %d out of range", i, ev.Port)
			}
			if ev.Cycles < 1 {
				return fmt.Errorf("config: fault event %d: stall duration must be positive, got %d", i, ev.Cycles)
			}
		case KillLink, DropFlit:
			if ev.Port < 0 || ev.Port >= topology.Local {
				return fmt.Errorf("config: fault event %d: %v needs a cardinal output port, got %d", i, ev.Kind, ev.Port)
			}
			if _, ok := mesh.Neighbor(ev.Node, ev.Port); !ok {
				return fmt.Errorf("config: fault event %d: node %d has no link through port %s", i, ev.Node, topology.PortName(ev.Port))
			}
		default:
			return fmt.Errorf("config: fault event %d: unknown kind %v", i, ev.Kind)
		}
	}
	if f.HasHardFaults() {
		if c.Routing != MinimalAdaptive {
			return fmt.Errorf("config: kill-link faults require adaptive routing to route around the dead link")
		}
		if err := f.checkConnected(mesh); err != nil {
			return err
		}
	}
	return nil
}

// checkConnected verifies that the bidirectionally healthy links —
// after every scheduled KillLink has taken effect — still connect the
// mesh; the escape tree needs a spanning tree of such links.
func (f *FaultsConfig) checkConnected(mesh topology.Mesh) error {
	dead := make([]bool, mesh.Nodes()*topology.Local)
	for _, ev := range f.Events {
		if ev.Kind == KillLink {
			dead[ev.Node*topology.Local+ev.Port] = true
		}
	}
	seen := make([]bool, mesh.Nodes())
	queue := []int{0}
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for port := 0; port < topology.Local; port++ {
			nb, ok := mesh.Neighbor(cur, port)
			if !ok || seen[nb] {
				continue
			}
			if dead[cur*topology.Local+port] || dead[nb*topology.Local+topology.Opposite(port)] {
				continue
			}
			seen[nb] = true
			reached++
			queue = append(queue, nb)
		}
	}
	if reached != mesh.Nodes() {
		return fmt.Errorf("config: kill-link faults disconnect the mesh (%d of %d nodes reachable over surviving links)", reached, mesh.Nodes())
	}
	return nil
}

// ParseFaults parses the compact fault-schedule syntax of the
// vichar-sim -faults flag: comma-separated clauses
//
//	seed=<n>            fault seed
//	drop=<rate>         transient flit-drop probability per link hop
//	corrupt=<rate>      transient flit-corruption probability
//	retx=<cycles>       retransmission delay
//	stall=<rate>[:<n>]  per-cycle port-stall probability (duration n)
//	kill=<node>.<port>@<cycle>        hard link failure
//	freeze=<node>.<port>@<cycle>+<n>  targeted port stall for n cycles
//	drop1=<node>.<port>@<cycle>       targeted one-shot flit drop
//
// where <port> is n|e|s|w|l or a port index. An empty string, "off"
// or "none" yields a disabled schedule.
func ParseFaults(s string) (FaultsConfig, error) {
	var f FaultsConfig
	switch normalize(s) {
	case "", "off", "none":
		return f, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return FaultsConfig{}, fmt.Errorf("config: fault clause %q is not key=value", clause)
		}
		var err error
		switch normalize(key) {
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			f.DropRate, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			f.CorruptRate, err = strconv.ParseFloat(val, 64)
		case "retx":
			f.RetransmitDelay, err = strconv.Atoi(val)
		case "stall":
			rate, cycles, has := strings.Cut(val, ":")
			f.StallRate, err = strconv.ParseFloat(rate, 64)
			if err == nil && has {
				f.StallCycles, err = strconv.Atoi(cycles)
			}
		case "kill", "freeze", "drop1":
			var ev FaultEvent
			ev, err = parseFaultEvent(normalize(key), val)
			if err == nil {
				f.Events = append(f.Events, ev)
			}
		default:
			return FaultsConfig{}, fmt.Errorf("config: unknown fault clause %q", key)
		}
		if err != nil {
			return FaultsConfig{}, fmt.Errorf("config: fault clause %q: %v", clause, err)
		}
	}
	return f, nil
}

// parseFaultEvent parses "<node>.<port>@<cycle>" with an optional
// "+<cycles>" stall duration.
func parseFaultEvent(key, val string) (FaultEvent, error) {
	ev := FaultEvent{}
	switch key {
	case "kill":
		ev.Kind = KillLink
	case "freeze":
		ev.Kind = StallPort
	case "drop1":
		ev.Kind = DropFlit
	}
	loc, when, ok := strings.Cut(val, "@")
	if !ok {
		return FaultEvent{}, fmt.Errorf("missing @<cycle>")
	}
	nodeStr, portStr, ok := strings.Cut(loc, ".")
	if !ok {
		return FaultEvent{}, fmt.Errorf("location %q is not <node>.<port>", loc)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return FaultEvent{}, fmt.Errorf("bad node: %v", err)
	}
	ev.Node = node
	if ev.Port, err = parsePort(portStr); err != nil {
		return FaultEvent{}, err
	}
	cycleStr, durStr, hasDur := strings.Cut(when, "+")
	if ev.Cycle, err = strconv.ParseInt(cycleStr, 10, 64); err != nil {
		return FaultEvent{}, fmt.Errorf("bad cycle: %v", err)
	}
	if ev.Kind == StallPort {
		if !hasDur {
			return FaultEvent{}, fmt.Errorf("freeze needs a +<cycles> duration")
		}
		if ev.Cycles, err = strconv.Atoi(durStr); err != nil {
			return FaultEvent{}, fmt.Errorf("bad duration: %v", err)
		}
	} else if hasDur {
		return FaultEvent{}, fmt.Errorf("+<cycles> only applies to freeze")
	}
	return ev, nil
}

// parsePort parses a port as a cardinal letter or an index.
func parsePort(s string) (int, error) {
	switch normalize(s) {
	case "n":
		return topology.North, nil
	case "e":
		return topology.East, nil
	case "s":
		return topology.South, nil
	case "w":
		return topology.West, nil
	case "l":
		return topology.Local, nil
	}
	p, err := strconv.Atoi(s)
	if err != nil || p < 0 || p >= topology.NumPorts {
		return 0, fmt.Errorf("bad port %q (n|e|s|w|l or 0..%d)", s, topology.NumPorts-1)
	}
	return p, nil
}
