package config

import "fmt"

// The enums implement encoding.TextMarshaler/TextUnmarshaler so
// configurations serialize with readable names (JSON, flags, files).
// Unmarshaling accepts the canonical String() form plus the common
// aliases used on command lines.

// ParseBufferArch parses a buffer architecture name.
func ParseBufferArch(s string) (BufferArch, error) {
	switch normalize(s) {
	case "generic", "gen":
		return Generic, nil
	case "vichar", "vic":
		return ViChaR, nil
	case "damq":
		return DAMQ, nil
	case "fccb", "fc-cb":
		return FCCB, nil
	default:
		return 0, fmt.Errorf("config: unknown buffer architecture %q (generic|vichar|damq|fccb)", s)
	}
}

// ParseRouting parses a routing algorithm name.
func ParseRouting(s string) (RoutingAlg, error) {
	switch normalize(s) {
	case "xy":
		return XY, nil
	case "adaptive", "minadaptive", "minimal-adaptive":
		return MinimalAdaptive, nil
	default:
		return 0, fmt.Errorf("config: unknown routing algorithm %q (xy|adaptive)", s)
	}
}

// ParseTraffic parses a traffic process name.
func ParseTraffic(s string) (TrafficProcess, error) {
	switch normalize(s) {
	case "ur", "uniform", "uniformrandom":
		return UniformRandom, nil
	case "ss", "selfsimilar", "self-similar":
		return SelfSimilar, nil
	default:
		return 0, fmt.Errorf("config: unknown traffic process %q (ur|ss)", s)
	}
}

// ParseDest parses a destination pattern name.
func ParseDest(s string) (DestPattern, error) {
	switch normalize(s) {
	case "nr", "random", "normalrandom":
		return NormalRandom, nil
	case "tornado", "tn":
		return Tornado, nil
	case "transpose", "tp":
		return Transpose, nil
	case "bitcomplement", "bit-complement", "bc":
		return BitComplement, nil
	case "hotspot", "hs":
		return Hotspot, nil
	default:
		return 0, fmt.Errorf("config: unknown destination pattern %q (nr|tornado|transpose|bitcomplement|hotspot)", s)
	}
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' {
			continue
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// MarshalText returns the canonical label.
func (a BufferArch) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses a buffer architecture name.
func (a *BufferArch) UnmarshalText(b []byte) error {
	v, err := ParseBufferArch(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// MarshalText returns the canonical label.
func (r RoutingAlg) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a routing algorithm name.
func (r *RoutingAlg) UnmarshalText(b []byte) error {
	v, err := ParseRouting(string(b))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// MarshalText returns the canonical label.
func (t TrafficProcess) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses a traffic process name.
func (t *TrafficProcess) UnmarshalText(b []byte) error {
	v, err := ParseTraffic(string(b))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// MarshalText returns the canonical label.
func (d DestPattern) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText parses a destination pattern name.
func (d *DestPattern) UnmarshalText(b []byte) error {
	v, err := ParseDest(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}
