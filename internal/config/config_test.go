package config

import (
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Nodes() != 64 || cfg.Ports() != 5 {
		t.Fatalf("paper platform is 64 nodes x 5 ports, got %d x %d", cfg.Nodes(), cfg.Ports())
	}
	if cfg.BufferSlots != 16 || cfg.VCs*cfg.VCDepth != 16 {
		t.Fatal("paper platform is 16 slots/port as 4 VCs x 4 flits")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		keyword string
	}{
		{"tiny mesh", func(c *Config) { c.Width = 1 }, "mesh"},
		{"no vcs", func(c *Config) { c.VCs = 0 }, "VC"},
		{"no slots", func(c *Config) { c.BufferSlots = 0 }, "slot"},
		{"no packet", func(c *Config) { c.PacketSize = 0 }, "packet"},
		{"no width", func(c *Config) { c.FlitWidthBits = 0 }, "flit"},
		{"bad rate", func(c *Config) { c.InjectionRate = 1.5 }, "rate"},
		{"bad measure", func(c *Config) { c.MeasurePackets = 0 }, "measurement"},
		{"bad sample", func(c *Config) { c.SampleEvery = 0 }, "sample"},
		{"bad clock", func(c *Config) { c.ClockHz = 0 }, "clock"},
		{"generic depth", func(c *Config) { c.VCDepth = 0 }, "depth"},
		{"generic mismatch", func(c *Config) { c.BufferSlots = 12 }, "equal"},
		{"shared starved", func(c *Config) {
			c.Arch = DAMQ
			c.VCs = 8
			c.BufferSlots = 4
		}, "slots"},
		{"adaptive no escape", func(c *Config) {
			c.Routing = MinimalAdaptive
			c.EscapeVCs = 0
		}, "escape"},
		{"adaptive all escape", func(c *Config) {
			c.Routing = MinimalAdaptive
			c.EscapeVCs = 4
		}, "escape"},
		{"adaptive threshold", func(c *Config) {
			c.Routing = MinimalAdaptive
			c.DeadlockThreshold = 0
		}, "threshold"},
		{"damq delay", func(c *Config) {
			c.Arch = DAMQ
			c.DAMQDelay = -1
		}, "delay"},
		{"vichar vclimit", func(c *Config) {
			c.Arch = ViChaR
			c.VCLimit = -2
		}, "limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default()
			c.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.keyword)) {
				t.Fatalf("error %q does not mention %q", err, c.keyword)
			}
		})
	}
}

func TestMaxVCs(t *testing.T) {
	cfg := Default()
	if cfg.MaxVCs() != 4 {
		t.Fatalf("generic MaxVCs %d", cfg.MaxVCs())
	}
	cfg.Arch = ViChaR
	if cfg.MaxVCs() != 16 {
		t.Fatalf("ViChaR MaxVCs %d, want BufferSlots", cfg.MaxVCs())
	}
	cfg.VCLimit = 6
	if cfg.MaxVCs() != 6 {
		t.Fatalf("capped ViChaR MaxVCs %d", cfg.MaxVCs())
	}
	cfg.VCLimit = 99 // above the pool: ignored
	if cfg.MaxVCs() != 16 {
		t.Fatalf("over-cap MaxVCs %d", cfg.MaxVCs())
	}
	cfg.Arch = DAMQ
	cfg.VCLimit = 0
	if cfg.MaxVCs() != 4 {
		t.Fatalf("DAMQ MaxVCs %d", cfg.MaxVCs())
	}
}

func TestLabels(t *testing.T) {
	cfg := Default()
	if cfg.Label() != "GEN-16" {
		t.Errorf("label %q", cfg.Label())
	}
	cfg.Arch = ViChaR
	cfg.BufferSlots = 8
	if cfg.Label() != "ViC-8" {
		t.Errorf("label %q", cfg.Label())
	}
	if DAMQ.String() != "DAMQ" || FCCB.String() != "FC-CB" {
		t.Error("baseline labels wrong")
	}
	if XY.String() != "XY" || MinimalAdaptive.String() != "MinAdaptive" {
		t.Error("routing labels wrong")
	}
	if UniformRandom.String() != "UR" || SelfSimilar.String() != "SS" {
		t.Error("traffic labels wrong")
	}
	if NormalRandom.String() != "NR" || Tornado.String() != "TN" {
		t.Error("destination labels wrong")
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if !strings.Contains(BufferArch(9).String(), "9") ||
		!strings.Contains(RoutingAlg(9).String(), "9") ||
		!strings.Contains(TrafficProcess(9).String(), "9") ||
		!strings.Contains(DestPattern(9).String(), "9") {
		t.Error("unknown enum values should print their number")
	}
}

func TestEffectiveMaxCycles(t *testing.T) {
	cfg := Default()
	cfg.MaxCycles = 123
	if cfg.EffectiveMaxCycles() != 123 {
		t.Fatal("explicit cap not honored")
	}
	cfg.MaxCycles = 0
	if cfg.EffectiveMaxCycles() < 100_000 {
		t.Fatal("default cap implausibly small")
	}
	// The default cap scales inversely with injection rate.
	slow := Default()
	slow.InjectionRate = 0.05
	fast := Default()
	fast.InjectionRate = 0.5
	if slow.EffectiveMaxCycles() <= fast.EffectiveMaxCycles() {
		t.Fatal("cap should grow for slower injection")
	}
}

func TestAdaptiveDefaultsValid(t *testing.T) {
	cfg := Default()
	cfg.Routing = MinimalAdaptive
	if err := cfg.Validate(); err != nil {
		t.Fatalf("adaptive defaults invalid: %v", err)
	}
	cfg.Arch = ViChaR
	if err := cfg.Validate(); err != nil {
		t.Fatalf("adaptive ViChaR invalid: %v", err)
	}
}

func TestValidateNewFields(t *testing.T) {
	cfg := Default()
	cfg.PacketSizeMax = 2 // below PacketSize=4
	if cfg.Validate() == nil {
		t.Fatal("bad PacketSizeMax accepted")
	}
	cfg = Default()
	cfg.PacketSizeMax = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid PacketSizeMax rejected: %v", err)
	}
	cfg = Default()
	cfg.HotspotFraction = 1.5
	if cfg.Validate() == nil {
		t.Fatal("bad HotspotFraction accepted")
	}
	cfg = Default()
	cfg.Speculative = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("speculative config rejected: %v", err)
	}
}

func TestNewDestLabels(t *testing.T) {
	if Transpose.String() != "TP" || BitComplement.String() != "BC" || Hotspot.String() != "HS" {
		t.Error("new destination labels wrong")
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	for _, a := range []BufferArch{Generic, ViChaR, DAMQ, FCCB} {
		b, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got BufferArch
		if err := got.UnmarshalText(b); err != nil || got != a {
			t.Errorf("arch %v round trip: %v, %v", a, got, err)
		}
	}
	for _, r := range []RoutingAlg{XY, MinimalAdaptive} {
		b, _ := r.MarshalText()
		var got RoutingAlg
		if err := got.UnmarshalText(b); err != nil || got != r {
			t.Errorf("routing %v round trip: %v, %v", r, got, err)
		}
	}
	for _, tr := range []TrafficProcess{UniformRandom, SelfSimilar} {
		b, _ := tr.MarshalText()
		var got TrafficProcess
		if err := got.UnmarshalText(b); err != nil || got != tr {
			t.Errorf("traffic %v round trip: %v, %v", tr, got, err)
		}
	}
	for _, d := range []DestPattern{NormalRandom, Tornado, Transpose, BitComplement, Hotspot} {
		b, _ := d.MarshalText()
		var got DestPattern
		if err := got.UnmarshalText(b); err != nil || got != d {
			t.Errorf("dest %v round trip: %v, %v", d, got, err)
		}
	}
}

func TestUnmarshalTextRejects(t *testing.T) {
	var a BufferArch
	if a.UnmarshalText([]byte("router")) == nil {
		t.Error("bogus arch accepted")
	}
	var r RoutingAlg
	if r.UnmarshalText([]byte("west-first")) == nil {
		t.Error("bogus routing accepted")
	}
	var tr TrafficProcess
	if tr.UnmarshalText([]byte("poisson")) == nil {
		t.Error("bogus traffic accepted")
	}
	var d DestPattern
	if d.UnmarshalText([]byte("shuffle")) == nil {
		t.Error("bogus dest accepted")
	}
}

func TestNormalize(t *testing.T) {
	if normalize(" Fc-Cb\t") != "fc-cb" {
		t.Errorf("normalize wrong: %q", normalize(" Fc-Cb\t"))
	}
}

func TestTorusValidation(t *testing.T) {
	cfg := Default()
	cfg.Torus = true
	cfg.EscapeVCs = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("torus without escape VCs accepted")
	} else if !strings.Contains(err.Error(), "torus") {
		t.Fatalf("error %q does not mention the torus", err)
	}
	cfg.EscapeVCs = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid torus rejected: %v", err)
	}
	if !cfg.NeedsEscape() {
		t.Fatal("torus does not report needing escape")
	}
	plain := Default()
	if plain.NeedsEscape() {
		t.Fatal("mesh XY reports needing escape")
	}
}

// The transpose pattern is only a permutation of a square mesh;
// Validate must reject rectangles instead of letting some nodes
// receive double traffic and others none.
func TestValidateRejectsRectangularTranspose(t *testing.T) {
	cfg := Default()
	cfg.Dest = Transpose
	cfg.Width, cfg.Height = 8, 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("8x4 transpose validated")
	}
	cfg.Width, cfg.Height = 8, 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("8x8 transpose rejected: %v", err)
	}
}

// The hotspot fraction's zero value is rejected, not silently turned
// into 0.1; the default resolves in Default().
func TestHotspotFractionZeroValue(t *testing.T) {
	if got := Default().HotspotFraction; got != 0.1 {
		t.Fatalf("Default hotspot fraction = %g, want 0.1", got)
	}
	cfg := Default()
	cfg.Dest = Hotspot
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default hotspot config rejected: %v", err)
	}
	cfg.HotspotFraction = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("explicit HotspotFraction=0 with hotspot traffic validated")
	}
	// Other patterns don't require the fraction at all.
	cfg.Dest = NormalRandom
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero fraction without hotspot traffic rejected: %v", err)
	}
}
