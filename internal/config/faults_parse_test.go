package config

import (
	"reflect"
	"strings"
	"testing"

	"vichar/internal/topology"
)

func TestParseFaults(t *testing.T) {
	cases := []struct {
		in   string
		want FaultsConfig
	}{
		{"", FaultsConfig{}},
		{"off", FaultsConfig{}},
		{"none", FaultsConfig{}},
		{"seed=9,drop=0.001,corrupt=0.0005,retx=6", FaultsConfig{
			Seed: 9, DropRate: 0.001, CorruptRate: 0.0005, RetransmitDelay: 6,
		}},
		{"stall=0.01", FaultsConfig{StallRate: 0.01}},
		{"stall=0.01:12", FaultsConfig{StallRate: 0.01, StallCycles: 12}},
		{"kill=5.e@100", FaultsConfig{Events: []FaultEvent{
			{Cycle: 100, Kind: KillLink, Node: 5, Port: topology.East},
		}}},
		{"freeze=3.w@50+8", FaultsConfig{Events: []FaultEvent{
			{Cycle: 50, Kind: StallPort, Node: 3, Port: topology.West, Cycles: 8},
		}}},
		{"drop1=0.1@20", FaultsConfig{Events: []FaultEvent{
			{Cycle: 20, Kind: DropFlit, Node: 0, Port: topology.East},
		}}},
		{"drop=0.01, kill=1.n@10, freeze=2.l@5+3", FaultsConfig{
			DropRate: 0.01,
			Events: []FaultEvent{
				{Cycle: 10, Kind: KillLink, Node: 1, Port: topology.North},
				{Cycle: 5, Kind: StallPort, Node: 2, Port: topology.Local, Cycles: 3},
			},
		}},
	}
	for _, c := range cases {
		got, err := ParseFaults(c.in)
		if err != nil {
			t.Errorf("ParseFaults(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFaults(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",                // not key=value
		"warp=0.1",             // unknown clause
		"drop=high",            // bad float
		"seed=1.5",             // bad int
		"stall=0.1:soon",       // bad duration
		"kill=5.e",             // missing @cycle
		"kill=5@100",           // missing port
		"kill=x.e@100",         // bad node
		"kill=5.q@100",         // bad port name
		"kill=5.9@100",         // port index out of range
		"kill=5.e@then",        // bad cycle
		"kill=5.e@100+4",       // duration on a non-freeze
		"freeze=5.e@100",       // freeze without duration
		"freeze=5.e@100+later", // bad freeze duration
	} {
		if _, err := ParseFaults(in); err == nil {
			t.Errorf("ParseFaults(%q) accepted invalid input", in)
		}
	}
}

func TestFaultKindText(t *testing.T) {
	for _, k := range []FaultKind{KillLink, StallPort, DropFlit} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back FaultKind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("%v did not round-trip (got %v)", k, back)
		}
	}
	var k FaultKind
	if err := k.UnmarshalText([]byte("meltdown")); err == nil {
		t.Error("unknown kind unmarshalled without error")
	}
	if got := FaultKind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestFaultsValidate(t *testing.T) {
	base := func() Config {
		c := Default()
		c.Width, c.Height = 4, 4
		c.Routing = MinimalAdaptive
		return c
	}
	ok := []func(*Config){
		func(c *Config) { c.Faults.DropRate = 0.5; c.Faults.CorruptRate = 0.5 },
		func(c *Config) {
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.East}}
		},
		func(c *Config) {
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: StallPort, Node: 0, Port: topology.Local, Cycles: 2}}
		},
	}
	for i, mutate := range ok {
		c := base()
		mutate(&c)
		if err := c.Validate(); err != nil {
			t.Errorf("valid fault config %d rejected: %v", i, err)
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.Faults.DropRate = -0.1 },
		func(c *Config) { c.Faults.CorruptRate = 1.5 },
		func(c *Config) { c.Faults.DropRate = 0.7; c.Faults.CorruptRate = 0.7 },
		func(c *Config) { c.Faults.StallRate = 2 },
		func(c *Config) { c.Faults.RetransmitDelay = -1 },
		func(c *Config) { c.Faults.StallCycles = -1 },
		func(c *Config) {
			c.Faults.Events = []FaultEvent{{Cycle: 0, Kind: DropFlit, Node: 0, Port: topology.East}}
		},
		func(c *Config) {
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: DropFlit, Node: 99, Port: topology.East}}
		},
		func(c *Config) {
			// StallPort with a zero duration.
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: StallPort, Node: 0, Port: 0}}
		},
		func(c *Config) {
			// KillLink through the local port.
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.Local}}
		},
		func(c *Config) {
			// Node 0 has no link to the north (mesh edge).
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.North}}
		},
		func(c *Config) {
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: FaultKind(9), Node: 0, Port: 0}}
		},
		func(c *Config) {
			// Hard faults demand adaptive routing.
			c.Routing = XY
			c.Faults.Events = []FaultEvent{{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.East}}
		},
		func(c *Config) {
			// Cutting both links of corner node 0 disconnects the mesh.
			c.Faults.Events = []FaultEvent{
				{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.East},
				{Cycle: 1, Kind: KillLink, Node: 0, Port: topology.South},
			}
		},
	}
	for i, mutate := range bad {
		c := base()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid fault config %d accepted", i)
		}
	}
}

func TestFaultsEffectiveDefaults(t *testing.T) {
	var f FaultsConfig
	if f.Enabled() {
		t.Error("zero-value FaultsConfig reports enabled")
	}
	if got := f.EffectiveRetransmitDelay(); got != 4 {
		t.Errorf("default retransmit delay = %d, want 4", got)
	}
	if got := f.EffectiveStallCycles(); got != 8 {
		t.Errorf("default stall cycles = %d, want 8", got)
	}
	f.RetransmitDelay, f.StallCycles = 2, 3
	if f.EffectiveRetransmitDelay() != 2 || f.EffectiveStallCycles() != 3 {
		t.Error("explicit delays not honored")
	}
	f.StallRate = 0.1
	if !f.Enabled() {
		t.Error("stall-rate-only config reports disabled")
	}
}
