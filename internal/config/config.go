// Package config defines the validated configuration shared by every
// layer of the simulator: topology shape, router microarchitecture,
// buffer organization, routing algorithm, traffic workload and
// measurement protocol.
//
// The defaults mirror the evaluation platform of the ViChaR paper
// (MICRO 2006, §4.1): an 8x8 mesh of 5-port, 4-stage pipelined
// routers; 4 virtual channels per port, each 4 flits deep (16 slots
// per port, 80 per router); 128-bit flits; 4-flit packets; 500 MHz;
// 300,000 ejected messages of which 100,000 are warm-up.
package config

import "fmt"

// BufferArch selects the input-buffer organization of every router.
type BufferArch int

const (
	// Generic is the conventional statically partitioned buffer:
	// VCs independent FIFO queues of VCDepth flits each ("GEN" in the
	// paper's result graphs).
	Generic BufferArch = iota
	// ViChaR is the paper's dynamic Virtual Channel Regulator: a
	// unified buffer of BufferSlots flits whose slots and virtual
	// channels (up to BufferSlots of them) are dispensed on demand
	// ("ViC" in the result graphs).
	ViChaR
	// DAMQ is the Dynamically Allocated Multi-Queue baseline
	// (Tamir & Frazier, ISCA 1988): unified storage, a fixed number
	// of queues, and a 3-cycle linked-list bookkeeping penalty on
	// every flit arrival and departure.
	DAMQ
	// FCCB is the Fully Connected Circular Buffer baseline (Ni,
	// Pirvu & Bhuyan, ICCD 1998): unified storage shared by a fixed
	// number of VCs; per the paper's fair-comparison assumption its
	// buffer management completes in a single cycle.
	FCCB
)

// String returns the graph label used in the paper.
func (a BufferArch) String() string {
	switch a {
	case Generic:
		return "GEN"
	case ViChaR:
		return "ViC"
	case DAMQ:
		return "DAMQ"
	case FCCB:
		return "FC-CB"
	default:
		return fmt.Sprintf("BufferArch(%d)", int(a))
	}
}

// RoutingAlg selects the routing function.
type RoutingAlg int

const (
	// XY is dimension-ordered deterministic routing (X first, then
	// Y); it is inherently deadlock-free on a mesh.
	XY RoutingAlg = iota
	// MinimalAdaptive routes along any minimal direction, choosing
	// the least congested productive output; deadlock recovery uses
	// escape virtual channels that route deterministically (XY).
	MinimalAdaptive
)

func (r RoutingAlg) String() string {
	switch r {
	case XY:
		return "XY"
	case MinimalAdaptive:
		return "MinAdaptive"
	default:
		return fmt.Sprintf("RoutingAlg(%d)", int(r))
	}
}

// TrafficProcess selects the temporal injection process.
type TrafficProcess int

const (
	// UniformRandom ("UR") injects packets as a Bernoulli process at
	// the configured rate.
	UniformRandom TrafficProcess = iota
	// SelfSimilar ("SS") injects bursts from superposed Pareto ON/OFF
	// sources, emulating internet/Ethernet-like traffic.
	SelfSimilar
)

func (t TrafficProcess) String() string {
	switch t {
	case UniformRandom:
		return "UR"
	case SelfSimilar:
		return "SS"
	default:
		return fmt.Sprintf("TrafficProcess(%d)", int(t))
	}
}

// DestPattern selects the spatial destination distribution.
type DestPattern int

const (
	// NormalRandom ("NR") draws the destination uniformly among all
	// other nodes.
	NormalRandom DestPattern = iota
	// Tornado ("TN") sends each packet halfway around the X dimension
	// (the standard adversarial pattern from Singh et al., ISCA 2003).
	Tornado
	// Transpose ("TP") sends (x,y) -> (y,x), the classic matrix
	// transpose permutation that stresses diagonal paths.
	Transpose
	// BitComplement ("BC") sends node i to node N-1-i, maximizing
	// average hop distance.
	BitComplement
	// Hotspot ("HS") draws uniformly but redirects a fraction of
	// packets to a single hot node (the mesh center), modeling a
	// shared resource such as a memory controller.
	Hotspot
)

func (d DestPattern) String() string {
	switch d {
	case NormalRandom:
		return "NR"
	case Tornado:
		return "TN"
	case Transpose:
		return "TP"
	case BitComplement:
		return "BC"
	case Hotspot:
		return "HS"
	default:
		return fmt.Sprintf("DestPattern(%d)", int(d))
	}
}

// Config is the complete description of one simulation. The zero
// value is not usable; start from Default and override.
type Config struct {
	// Width and Height give the mesh dimensions (paper: 8x8).
	Width, Height int
	// Torus adds wraparound links in both dimensions. Wrap rings
	// close channel-dependency cycles, so a torus requires escape
	// VCs regardless of the routing algorithm (the escape network
	// routes dimension-ordered without ever wrapping).
	Torus bool

	// VCs is the number of virtual channels per port in statically
	// organized schemes (Generic, DAMQ, FCCB) and the design-time v
	// parameter of ViChaR. Paper default: 4.
	VCs int
	// VCDepth is the per-VC FIFO depth k of the Generic scheme.
	// Paper default: 4.
	VCDepth int
	// BufferSlots is the total number of flit slots per input port.
	// For Generic it must equal VCs*VCDepth; for the unified schemes
	// (ViChaR, DAMQ, FCCB) it is the pool size, and for ViChaR it is
	// also the maximum number of simultaneously dispensed VCs.
	BufferSlots int

	// VCLimit, when positive, caps the number of virtual channels a
	// ViChaR port may have dispensed simultaneously below the default
	// of BufferSlots. It exists for the ablation that isolates
	// ViChaR's unified storage from its dynamic VC count (a ViChaR
	// with VCLimit = VCs has unified storage only). Ignored by other
	// architectures.
	VCLimit int

	// FlitWidthBits is the channel/flit width (paper: 128).
	FlitWidthBits int
	// PacketSize is the number of flits per packet (paper: 4 — one
	// head, two data, one tail).
	PacketSize int
	// PacketSizeMax, when greater than PacketSize, enables the
	// variable-size packet protocol the paper's VC Control Table
	// "can trivially be changed to accommodate": sizes are drawn
	// uniformly from [PacketSize, PacketSizeMax].
	PacketSizeMax int

	// HotspotFraction is the probability a Hotspot-pattern packet
	// targets the hot node instead of a uniform destination. Default
	// carries 0.1; the value is used exactly as configured, and
	// Validate rejects a non-positive fraction when the pattern is
	// Hotspot — an explicit 0 is an error, not a silent 0.1.
	HotspotFraction float64

	// Speculative selects the low-latency router organization the
	// paper cites (Peh & Dally, HPCA 2001): VA and SA are performed
	// in the same cycle, with speculation modeled as always
	// succeeding, shortening the pipeline from 4 stages to 3.
	Speculative bool

	Arch    BufferArch
	Routing RoutingAlg
	Traffic TrafficProcess
	Dest    DestPattern

	// InjectionRate is the offered load in flits/node/cycle.
	InjectionRate float64

	// WarmupPackets and MeasurePackets define the measurement
	// protocol: statistics cover ejected packets number
	// WarmupPackets+1 through WarmupPackets+MeasurePackets.
	// Paper: 100,000 and 200,000.
	WarmupPackets  int
	MeasurePackets int
	// MaxCycles bounds a run that cannot reach its ejection quota
	// (deep saturation). 0 means a generous default.
	MaxCycles int64

	// Seed makes runs reproducible; equal configs with equal seeds
	// produce identical results.
	Seed int64

	// Workers is the number of worker goroutines of the two-phase
	// cycle kernel (see DESIGN.md §10). 0 or 1 runs the kernel
	// serially; higher values shard the deliver and compute phases of
	// every cycle across that many workers. Results are bit-identical
	// at every setting — the kernel's ownership contract and its
	// index-ordered commit phase make the outcome independent of
	// worker scheduling — so Workers is purely a wall-clock knob.
	Workers int

	// Audit enables the per-cycle invariant auditor (internal/audit):
	// after every simulation step the network verifies credit
	// conservation on every link and, for ViChaR, cross-checks each
	// port's VC Control Table against its Slot Availability Tracker.
	// Any violation panics. Costs roughly a full pass over all router
	// state per cycle; meant for tests and debugging, not sweeps.
	Audit bool

	// Metrics enables the live observability layer (internal/metrics):
	// per-router, per-port, per-pipeline-stage counters staged on
	// shard-owned recorders and merged serially at the stats sampling
	// cadence, so results and registry state stay bit-identical for
	// any Workers setting. Off by default; the disabled path costs
	// one nil check per instrumentation site.
	Metrics bool

	// TraceEvents, when positive, bounds the flit-lifecycle event
	// tracer's ring buffer (create, inject, RC, VA grant, SA grant,
	// link traverse, eject) and implies Metrics. Zero disables
	// tracing.
	TraceEvents int

	// AtomicVCAlloc, when true, lets a Generic VC be re-allocated
	// only once it has fully drained (atomic buffer allocation). When
	// false, packets may queue back-to-back within a VC FIFO, which
	// exposes head-of-line blocking. ViChaR always allocates at most
	// one packet per VC so this flag does not affect it.
	AtomicVCAlloc bool

	// EscapeVCs is the number of virtual channels (or ViChaR tokens)
	// reserved as deadlock-recovery escape channels when routing is
	// MinimalAdaptive. They carry deterministically (XY) routed
	// packets only.
	EscapeVCs int
	// DeadlockThreshold is the number of cycles a packet may wait for
	// VC allocation before the token dispenser re-channels it onto an
	// escape VC (adaptive routing only).
	DeadlockThreshold int

	// DAMQDelay is the linked-list bookkeeping latency of the DAMQ
	// baseline in cycles (paper: 3, for every flit arrival and
	// departure).
	DAMQDelay int

	// Faults schedules the deterministic fault model (internal/faults):
	// seed-driven transient link faults recovered by per-link
	// retransmission buffers, router port stalls, and scheduled hard
	// link failures routed around by a fault-aware escape tree. The
	// zero value injects nothing. Fault placement is a pure function of
	// Faults.Seed and the faulted resource, so results remain
	// bit-identical at every Workers setting.
	Faults FaultsConfig

	// Txn enables the network-interface transaction layer
	// (internal/txn): request/response protocol traffic with per-node
	// outstanding-request windows, finite memory-controller service
	// queues, and message classes mapped onto disjoint virtual-channel
	// classes. The zero value disables it; see TxnConfig.
	Txn TxnConfig

	// SampleEvery is the stats sampling period, in cycles, for the
	// time-series metrics (buffer occupancy, in-use VC counts).
	SampleEvery int64

	// ClockHz is the router clock (paper: 500 MHz); used by the power
	// model to convert per-event energy into watts.
	ClockHz float64
}

// Default returns the paper's evaluation configuration: an 8x8 mesh,
// Generic 4x4-flit buffers, XY routing, uniform random traffic with
// normally (uniformly) random destinations at a low injection rate.
func Default() Config {
	return Config{
		Width:  8,
		Height: 8,

		VCs:         4,
		VCDepth:     4,
		BufferSlots: 16,

		FlitWidthBits: 128,
		PacketSize:    4,

		HotspotFraction: 0.1,

		Arch:    Generic,
		Routing: XY,
		Traffic: UniformRandom,
		Dest:    NormalRandom,

		InjectionRate: 0.1,

		WarmupPackets:  100_000,
		MeasurePackets: 200_000,
		MaxCycles:      0,

		Seed: 1,

		AtomicVCAlloc: true,

		EscapeVCs:         1,
		DeadlockThreshold: 64,

		DAMQDelay: 3,

		SampleEvery: 100,

		ClockHz: 500e6,
	}
}

// Nodes returns the number of network nodes.
func (c *Config) Nodes() int { return c.Width * c.Height }

// Ports returns the router radix: four mesh directions plus the local
// processing-element port.
func (c *Config) Ports() int { return 5 }

// MaxVCs returns the number of virtual channel identifiers an input
// port of this configuration can have in flight: VCs for the fixed
// schemes, BufferSlots for ViChaR (one slot per VC at the extreme).
func (c *Config) MaxVCs() int {
	if c.Arch == ViChaR {
		if c.VCLimit > 0 && c.VCLimit < c.BufferSlots {
			return c.VCLimit
		}
		return c.BufferSlots
	}
	return c.VCs
}

// NeedsEscape reports whether the configuration's routing relation
// can deadlock and therefore requires escape virtual channels:
// adaptive routing (cyclic turn dependencies) or any torus (cyclic
// wraparound rings).
func (c *Config) NeedsEscape() bool {
	return c.Routing == MinimalAdaptive || c.Torus
}

// EffectiveMaxCycles returns MaxCycles, or a generous default scaled
// to the workload when MaxCycles is zero.
func (c *Config) EffectiveMaxCycles() int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	total := int64(c.WarmupPackets+c.MeasurePackets) * int64(c.PacketSize)
	rate := c.InjectionRate
	if rate < 0.01 {
		rate = 0.01
	}
	est := float64(total) / (rate * float64(c.Nodes()))
	cycles := int64(est*20) + 100_000
	return cycles
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Width < 2 || c.Height < 2:
		return fmt.Errorf("config: mesh must be at least 2x2, got %dx%d", c.Width, c.Height)
	case c.VCs < 1:
		return fmt.Errorf("config: need at least 1 VC, got %d", c.VCs)
	case c.BufferSlots < 1:
		return fmt.Errorf("config: need at least 1 buffer slot, got %d", c.BufferSlots)
	case c.PacketSize < 1:
		return fmt.Errorf("config: packet size must be positive, got %d", c.PacketSize)
	case c.FlitWidthBits < 1:
		return fmt.Errorf("config: flit width must be positive, got %d", c.FlitWidthBits)
	case c.InjectionRate < 0 || c.InjectionRate > 1:
		return fmt.Errorf("config: injection rate must be in [0,1] flits/node/cycle, got %g", c.InjectionRate)
	case c.WarmupPackets < 0 || c.MeasurePackets < 1:
		return fmt.Errorf("config: need non-negative warm-up and positive measurement packet counts, got %d/%d", c.WarmupPackets, c.MeasurePackets)
	case c.SampleEvery < 1:
		return fmt.Errorf("config: sample period must be positive, got %d", c.SampleEvery)
	case c.ClockHz <= 0:
		return fmt.Errorf("config: clock frequency must be positive, got %g", c.ClockHz)
	case c.Workers < 0:
		return fmt.Errorf("config: kernel workers cannot be negative, got %d", c.Workers)
	case c.TraceEvents < 0:
		return fmt.Errorf("config: trace event ring capacity cannot be negative, got %d", c.TraceEvents)
	}
	if c.Arch == Generic {
		if c.VCDepth < 1 {
			return fmt.Errorf("config: generic buffers need positive VC depth, got %d", c.VCDepth)
		}
		if c.BufferSlots != c.VCs*c.VCDepth {
			return fmt.Errorf("config: generic buffer slots (%d) must equal VCs*VCDepth (%d*%d)", c.BufferSlots, c.VCs, c.VCDepth)
		}
	}
	if c.Arch == ViChaR && c.VCLimit < 0 {
		return fmt.Errorf("config: VC limit cannot be negative, got %d", c.VCLimit)
	}
	if c.PacketSizeMax != 0 && c.PacketSizeMax < c.PacketSize {
		return fmt.Errorf("config: max packet size (%d) below packet size (%d)", c.PacketSizeMax, c.PacketSize)
	}
	if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
		return fmt.Errorf("config: hotspot fraction must be in [0,1], got %g", c.HotspotFraction)
	}
	if c.Dest == Hotspot && c.HotspotFraction <= 0 {
		// The zero value is rejected rather than silently replaced;
		// Default() resolves the 0.1 default.
		return fmt.Errorf("config: hotspot traffic needs a positive fraction, got %g (Default() carries 0.1)", c.HotspotFraction)
	}
	if c.Dest == Transpose && c.Width != c.Height {
		// (x,y) -> (y,x) is only a permutation of a square mesh; on a
		// rectangular one some nodes would receive double traffic and
		// others none.
		return fmt.Errorf("config: transpose traffic needs a square mesh, got %dx%d", c.Width, c.Height)
	}
	if c.Arch != Generic && c.BufferSlots < c.VCs {
		// A unified pool smaller than the fixed VC count would leave
		// VCs that can never hold a flit.
		if c.Arch != ViChaR {
			return fmt.Errorf("config: %v needs at least as many slots (%d) as VCs (%d)", c.Arch, c.BufferSlots, c.VCs)
		}
	}
	if c.NeedsEscape() {
		why := "adaptive routing"
		if c.Torus {
			why = "a torus"
		}
		if c.EscapeVCs < 1 {
			return fmt.Errorf("config: %s requires at least one escape VC", why)
		}
		if c.EscapeVCs >= c.MaxVCs() {
			return fmt.Errorf("config: escape VCs (%d) must leave at least one regular VC out of %d", c.EscapeVCs, c.MaxVCs())
		}
		if c.DeadlockThreshold < 1 {
			return fmt.Errorf("config: deadlock threshold must be positive, got %d", c.DeadlockThreshold)
		}
	}
	if c.Arch == DAMQ && c.DAMQDelay < 0 {
		return fmt.Errorf("config: DAMQ delay cannot be negative, got %d", c.DAMQDelay)
	}
	if err := c.Faults.validate(c); err != nil {
		return err
	}
	return c.Txn.validate(c)
}

// Label returns a compact identifier such as "ViC-16" or "GEN-16"
// matching the paper's graph legends.
func (c *Config) Label() string {
	return fmt.Sprintf("%s-%d", c.Arch, c.BufferSlots)
}
