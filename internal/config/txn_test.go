package config

import (
	"strings"
	"testing"
)

func TestParseTxnDisabled(t *testing.T) {
	for _, s := range []string{"", "off", "none", "  OFF ", "N o N e", "\toff\t"} {
		got, err := ParseTxn(s)
		if err != nil {
			t.Fatalf("ParseTxn(%q): %v", s, err)
		}
		if got.Enabled {
			t.Fatalf("ParseTxn(%q) enabled the layer", s)
		}
	}
}

func TestParseTxnFullSpec(t *testing.T) {
	spec := "rate=0.04, Window=16, mix=7/2.5/0.5, posted=0.5, service=12, queue=6, edge=true, reqs=100, shared=false, seed=42"
	got, err := ParseTxn(spec)
	if err != nil {
		t.Fatalf("ParseTxn(%q): %v", spec, err)
	}
	want := TxnConfig{
		Enabled:       true,
		Rate:          0.04,
		Window:        16,
		ReadFrac:      7,
		WriteFrac:     2.5,
		AtomicFrac:    0.5,
		PostedFrac:    0.5,
		ServiceCycles: 12,
		QueueDepth:    6,
		MemEdge:       true,
		Requests:      100,
		SharedVCs:     false,
		Seed:          42,
	}
	if got != want {
		t.Fatalf("ParseTxn(%q) = %+v, want %+v", spec, got, want)
	}
	shared, err := ParseTxn("rate=0.1,shared=true")
	if err != nil || !shared.SharedVCs {
		t.Fatalf("ParseTxn shared=true = %+v, %v", shared, err)
	}
}

func TestParseTxnErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"rate", "not key=value"},
		{"rate=x", "clause"},
		{"rate=0.1,", "not key=value"}, // trailing comma: empty clause
		{"mix=1/2", "not <read>/<write>/<atomic>"},
		{"mix=a/b/c", "bad mix weight"},
		{"window=1.5", "clause"},
		{"edge=maybe", "clause"},
		{"bogus=1", "unknown transaction clause"},
	}
	for _, c := range cases {
		if _, err := ParseTxn(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseTxn(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

func TestTxnEffectiveDefaults(t *testing.T) {
	var zero TxnConfig
	if got := zero.EffectiveWindow(); got != 8 {
		t.Errorf("default window = %d, want 8", got)
	}
	if got := zero.EffectiveServiceCycles(); got != 8 {
		t.Errorf("default service latency = %d, want 8", got)
	}
	if got := zero.EffectiveQueueDepth(); got != 4 {
		t.Errorf("default queue depth = %d, want 4", got)
	}
	if got := zero.EffectiveSeed(7); got != 7 {
		t.Errorf("default seed = %d, want the run seed 7", got)
	}
	r, w, a := zero.EffectiveMix()
	if r != 1 || w != 0 || a != 0 {
		t.Errorf("zero mix = %g/%g/%g, want pure reads 1/0/0", r, w, a)
	}

	set := TxnConfig{Window: 16, ServiceCycles: 12, QueueDepth: 6, Seed: 42,
		ReadFrac: 2, WriteFrac: 1, AtomicFrac: 1}
	if set.EffectiveWindow() != 16 || set.EffectiveServiceCycles() != 12 || set.EffectiveQueueDepth() != 6 {
		t.Error("explicit window/service/queue values must pass through")
	}
	if got := set.EffectiveSeed(7); got != 42 {
		t.Errorf("explicit seed = %d, want 42", got)
	}
	r, w, a = set.EffectiveMix()
	if r != 0.5 || w != 0.25 || a != 0.25 {
		t.Errorf("mix 2/1/1 normalized to %g/%g/%g, want 0.5/0.25/0.25", r, w, a)
	}
}

func TestVCClasses(t *testing.T) {
	cfg := Default()
	if got := cfg.VCClasses(); got != 1 {
		t.Fatalf("transaction layer off: VCClasses = %d, want 1", got)
	}
	cfg.Txn = TxnConfig{Enabled: true, Rate: 0.1}
	if got := cfg.VCClasses(); got != 2 {
		t.Fatalf("class separation on: VCClasses = %d, want 2", got)
	}
	cfg.Txn.SharedVCs = true
	if got := cfg.VCClasses(); got != 1 {
		t.Fatalf("shared VCs: VCClasses = %d, want 1", got)
	}
}

func TestTxnValidate(t *testing.T) {
	base := func() Config {
		cfg := Default()
		cfg.Txn = TxnConfig{Enabled: true, Rate: 0.1}
		return cfg
	}
	baseline := base()
	if err := baseline.Validate(); err != nil {
		t.Fatalf("baseline transaction config rejected: %v", err)
	}
	disabled := Default()
	disabled.Txn = TxnConfig{Rate: -5} // ignored while Enabled is false
	if err := disabled.Validate(); err != nil {
		t.Fatalf("disabled layer must skip transaction validation: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"rate-zero", func(c *Config) { c.Txn.Rate = 0 }, "transaction rate"},
		{"rate-above-one", func(c *Config) { c.Txn.Rate = 1.5 }, "transaction rate"},
		{"negative-window", func(c *Config) { c.Txn.Window = -1 }, "window"},
		{"negative-mix", func(c *Config) { c.Txn.ReadFrac = -1 }, "mix weights"},
		{"posted-above-one", func(c *Config) { c.Txn.PostedFrac = 2 }, "posted-write fraction"},
		{"negative-service", func(c *Config) { c.Txn.ServiceCycles = -1 }, "service latency"},
		{"negative-queue", func(c *Config) { c.Txn.QueueDepth = -1 }, "queue depth"},
		{"negative-reqs", func(c *Config) { c.Txn.Requests = -1 }, "request cap"},
		{"edge-needs-width", func(c *Config) {
			c.Width, c.Height = 2, 2
			c.Txn.MemEdge = true
		}, "interior requester columns"},
		{"regular-vc-per-class", func(c *Config) { c.VCs, c.BufferSlots = 1, 4 }, "one regular VC per class"},
		{"escape-vc-per-class", func(c *Config) {
			c.Routing = MinimalAdaptive
			c.EscapeVCs = 1
		}, "escape VC per class"},
		{"vichar-slots", func(c *Config) {
			c.Arch = ViChaR
			c.BufferSlots = 2
		}, "more buffer slots"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base()
			c.mut(&cfg)
			if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}
