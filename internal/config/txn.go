package config

import (
	"fmt"
	"strconv"
	"strings"
)

// TxnConfig enables the network-interface (NIU) transaction layer
// (internal/txn): request/response protocol traffic generated against
// per-node outstanding-request windows, served by finite memory-
// controller queues, with message classes mapped onto disjoint
// virtual-channel classes so response traffic can never be blocked
// behind request traffic (protocol-deadlock freedom by construction).
// The zero value disables the layer.
type TxnConfig struct {
	// Enabled turns the transaction layer on. Every other field is
	// ignored while it is false.
	Enabled bool `json:",omitempty"`

	// Rate is the per-requester-node request generation probability
	// per cycle (Bernoulli, like InjectionRate but in requests rather
	// than flits).
	Rate float64 `json:",omitempty"`

	// Window caps the outstanding (issued but not yet retired)
	// requests per node; a node at its window stops generating until a
	// retirement frees a slot (0 = default 8).
	Window int `json:",omitempty"`

	// ReadFrac, WriteFrac and AtomicFrac weight the request mix; they
	// are normalized, so 8/1/1 and 0.8/0.1/0.1 are the same mix. All
	// zero means a pure read workload.
	ReadFrac   float64 `json:",omitempty"`
	WriteFrac  float64 `json:",omitempty"`
	AtomicFrac float64 `json:",omitempty"`
	// PostedFrac is the fraction of writes issued as posted writes,
	// which retire at the target without a write-ack response.
	PostedFrac float64 `json:",omitempty"`

	// ServiceCycles is the memory-controller service latency between a
	// request's tail ejection and its response becoming ready
	// (0 = default 8).
	ServiceCycles int `json:",omitempty"`
	// QueueDepth bounds each responder's service queue, counting
	// requests granted ejection, requests in service and responses not
	// yet fully injected back into the network. A full queue refuses
	// ejection-VC grants to further request-class packets — the finite
	// NIU buffer that makes protocol deadlock reachable at all
	// (0 = default 4).
	QueueDepth int `json:",omitempty"`

	// MemEdge places the memory controllers on the left and right mesh
	// columns (DRAM-edge tiles); all requests target an edge tile and
	// only the interior tiles generate them. When false every node is
	// both requester and responder with uniform targets.
	MemEdge bool `json:",omitempty"`

	// Requests, when positive, caps the requests each requester node
	// generates — a drainable workload for deadlock regression tests.
	Requests int `json:",omitempty"`

	// SharedVCs disables the request/response VC-class separation,
	// putting both message classes on one shared VC partition: the
	// classic protocol-deadlock-prone assignment the regression wall
	// runs as its negative control.
	SharedVCs bool `json:",omitempty"`

	// Seed keys the transaction layer's per-node random streams
	// independently of Config.Seed (0 = derive from Config.Seed).
	Seed int64 `json:",omitempty"`
}

// EffectiveWindow returns Window with the default applied.
func (t *TxnConfig) EffectiveWindow() int {
	if t.Window > 0 {
		return t.Window
	}
	return 8
}

// EffectiveServiceCycles returns ServiceCycles with the default
// applied.
func (t *TxnConfig) EffectiveServiceCycles() int {
	if t.ServiceCycles > 0 {
		return t.ServiceCycles
	}
	return 8
}

// EffectiveQueueDepth returns QueueDepth with the default applied.
func (t *TxnConfig) EffectiveQueueDepth() int {
	if t.QueueDepth > 0 {
		return t.QueueDepth
	}
	return 4
}

// EffectiveSeed returns the transaction stream seed, falling back to
// the run seed.
func (t *TxnConfig) EffectiveSeed(runSeed int64) int64 {
	if t.Seed != 0 {
		return t.Seed
	}
	return runSeed
}

// EffectiveMix returns the normalized read/write/atomic request mix;
// an all-zero mix is a pure read workload.
func (t *TxnConfig) EffectiveMix() (read, write, atomic float64) {
	sum := t.ReadFrac + t.WriteFrac + t.AtomicFrac
	if sum <= 0 {
		return 1, 0, 0
	}
	return t.ReadFrac / sum, t.WriteFrac / sum, t.AtomicFrac / sum
}

// VCClasses returns the number of virtual-channel classes every port
// is partitioned into: 2 (requests = class 0, responses = class 1)
// when the transaction layer runs with class separation, 1 otherwise.
func (c *Config) VCClasses() int {
	if c.Txn.Enabled && !c.Txn.SharedVCs {
		return 2
	}
	return 1
}

// validate checks the transaction configuration against the enclosing
// configuration; called from Config.Validate.
func (t *TxnConfig) validate(c *Config) error {
	if !t.Enabled {
		return nil
	}
	switch {
	case t.Rate <= 0 || t.Rate > 1:
		return fmt.Errorf("config: transaction rate must be in (0,1] requests/node/cycle, got %g", t.Rate)
	case t.Window < 0:
		return fmt.Errorf("config: transaction window cannot be negative, got %d", t.Window)
	case t.ReadFrac < 0 || t.WriteFrac < 0 || t.AtomicFrac < 0:
		return fmt.Errorf("config: transaction mix weights cannot be negative, got %g/%g/%g", t.ReadFrac, t.WriteFrac, t.AtomicFrac)
	case t.PostedFrac < 0 || t.PostedFrac > 1:
		return fmt.Errorf("config: posted-write fraction must be in [0,1], got %g", t.PostedFrac)
	case t.ServiceCycles < 0:
		return fmt.Errorf("config: service latency cannot be negative, got %d", t.ServiceCycles)
	case t.QueueDepth < 0:
		return fmt.Errorf("config: service queue depth cannot be negative, got %d", t.QueueDepth)
	case t.Requests < 0:
		return fmt.Errorf("config: per-node request cap cannot be negative, got %d", t.Requests)
	}
	if t.MemEdge && c.Width < 3 {
		return fmt.Errorf("config: memory-edge transactions need interior requester columns, got width %d (want >= 3)", c.Width)
	}
	if classes := c.VCClasses(); classes > 1 {
		esc := 0
		if c.NeedsEscape() {
			if c.EscapeVCs < classes {
				return fmt.Errorf("config: class-separated transactions on an escape-routed topology need one escape VC per class, got %d (want >= %d)", c.EscapeVCs, classes)
			}
			esc = c.EscapeVCs
		}
		if regular := c.MaxVCs() - esc; regular < classes {
			return fmt.Errorf("config: class-separated transactions need one regular VC per class, got %d of %d VCs after %d escape (want >= %d)", regular, c.MaxVCs(), esc, classes)
		}
		if c.Arch == ViChaR && c.BufferSlots <= classes {
			// One slot per class is carved out of the unified pool as the
			// class's forward-progress reserve; at least one shared slot
			// must remain.
			return fmt.Errorf("config: class-separated ViChaR needs more buffer slots (%d) than classes (%d)", c.BufferSlots, classes)
		}
	}
	return nil
}

// ParseTxn parses the compact transaction-workload syntax of the
// vichar-sim -txn flag: comma-separated clauses
//
//	rate=<r>        request generation probability per node per cycle
//	window=<n>      outstanding-request window per node
//	mix=<r>/<w>/<a> read/write/atomic request mix weights
//	posted=<f>      fraction of writes issued as posted writes
//	service=<n>     memory-controller service latency in cycles
//	queue=<n>       memory-controller service queue depth
//	edge=<bool>     place memory controllers on the mesh edge columns
//	reqs=<n>        per-node request cap (drainable workloads)
//	shared=<bool>   share one VC class (deadlock-prone baseline)
//	seed=<n>        transaction stream seed
//
// Any clause enables the layer. An empty string, "off" or "none"
// yields a disabled configuration.
func ParseTxn(s string) (TxnConfig, error) {
	var t TxnConfig
	switch normalize(s) {
	case "", "off", "none":
		return t, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return TxnConfig{}, fmt.Errorf("config: transaction clause %q is not key=value", clause)
		}
		var err error
		switch normalize(key) {
		case "rate":
			t.Rate, err = strconv.ParseFloat(val, 64)
		case "window":
			t.Window, err = strconv.Atoi(val)
		case "mix":
			err = parseMix(val, &t)
		case "posted":
			t.PostedFrac, err = strconv.ParseFloat(val, 64)
		case "service":
			t.ServiceCycles, err = strconv.Atoi(val)
		case "queue":
			t.QueueDepth, err = strconv.Atoi(val)
		case "edge":
			t.MemEdge, err = strconv.ParseBool(val)
		case "reqs":
			t.Requests, err = strconv.Atoi(val)
		case "shared":
			t.SharedVCs, err = strconv.ParseBool(val)
		case "seed":
			t.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return TxnConfig{}, fmt.Errorf("config: unknown transaction clause %q", key)
		}
		if err != nil {
			return TxnConfig{}, fmt.Errorf("config: transaction clause %q: %v", clause, err)
		}
	}
	t.Enabled = true
	return t, nil
}

// parseMix parses "<read>/<write>/<atomic>" weight triples.
func parseMix(val string, t *TxnConfig) error {
	parts := strings.Split(val, "/")
	if len(parts) != 3 {
		return fmt.Errorf("mix %q is not <read>/<write>/<atomic>", val)
	}
	dst := []*float64{&t.ReadFrac, &t.WriteFrac, &t.AtomicFrac}
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("bad mix weight %q: %v", p, err)
		}
		*dst[i] = w
	}
	return nil
}
