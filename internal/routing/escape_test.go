package routing

import (
	"testing"

	"vichar/internal/topology"
)

func allUsable(node, port int) bool { return true }

// walkEscape follows NextHop from src to dst and returns the path's
// node sequence, failing the test on a cycle or an unusable hop.
func walkEscape(t *testing.T, m topology.Mesh, tree *EscapeTree, src, dst int, usable func(node, port int) bool) []int {
	t.Helper()
	path := []int{src}
	cur := src
	for steps := 0; ; steps++ {
		if steps > m.Nodes()*2 {
			t.Fatalf("escape path %d->%d did not terminate: %v", src, dst, path)
		}
		port := tree.NextHop(cur, dst)
		if cur == dst {
			if port != topology.Local {
				t.Fatalf("NextHop(%d,%d) = %d at the destination, want Local", cur, dst, port)
			}
			return path
		}
		if !usable(cur, port) {
			t.Fatalf("escape path %d->%d crosses unusable link %d.%s", src, dst, cur, topology.PortName(port))
		}
		nb, ok := m.Neighbor(cur, port)
		if !ok {
			t.Fatalf("NextHop(%d,%d) = %d leaves the mesh", cur, dst, port)
		}
		cur = nb
		path = append(path, cur)
	}
}

func TestEscapeTreeReachesAllPairs(t *testing.T) {
	m := topology.New(4, 4)
	tree, err := NewEscapeTree(m, allUsable)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			walkEscape(t, m, tree, src, dst, allUsable)
		}
	}
}

func TestEscapeTreeAvoidsDeadLinks(t *testing.T) {
	m := topology.New(4, 4)
	// Kill 5<->6 (east of 5) and 10<->14 (south of 10), in one
	// direction each; the tree must treat both directions as unusable.
	dead := map[[2]int]bool{
		{5, topology.East}:   true,
		{10, topology.South}: true,
	}
	usable := func(node, port int) bool { return !dead[[2]int{node, port}] }
	bidir := func(node, port int) bool {
		if !usable(node, port) {
			return false
		}
		nb, ok := m.Neighbor(node, port)
		return ok && usable(nb, topology.Opposite(port))
	}
	tree, err := NewEscapeTree(m, usable)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			walkEscape(t, m, tree, src, dst, bidir)
		}
	}
}

func TestEscapeTreeTorus(t *testing.T) {
	m := topology.New(4, 4)
	m.Torus = true
	tree, err := NewEscapeTree(m, allUsable)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			walkEscape(t, m, tree, src, dst, allUsable)
		}
	}
}

func TestEscapeTreeDisconnected(t *testing.T) {
	m := topology.New(2, 2)
	// Cut node 3 off entirely: 1.south and 2.east both dead.
	dead := map[[2]int]bool{
		{1, topology.South}: true,
		{2, topology.East}:  true,
	}
	if _, err := NewEscapeTree(m, func(node, port int) bool { return !dead[[2]int{node, port}] }); err == nil {
		t.Fatal("disconnected mesh built an escape tree")
	}
}

// TestEscapeTreeUpDownPhases verifies the deadlock-freedom shape
// directly: along every escape path, once a hop moves down (away from
// the root), no later hop moves up — the up*/down* property that keeps
// the escape channel dependency graph acyclic.
func TestEscapeTreeUpDownPhases(t *testing.T) {
	m := topology.New(4, 4)
	tree, err := NewEscapeTree(m, allUsable)
	if err != nil {
		t.Fatal(err)
	}
	depth := make([]int, m.Nodes())
	for n := 1; n < m.Nodes(); n++ {
		d, cur := 0, n
		for cur != 0 {
			up := tree.up[cur]
			nb, _ := m.Neighbor(cur, up)
			cur = nb
			d++
		}
		depth[n] = d
	}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			path := walkEscape(t, m, tree, src, dst, allUsable)
			descended := false
			for i := 1; i < len(path); i++ {
				down := depth[path[i]] > depth[path[i-1]]
				if down {
					descended = true
				} else if descended {
					t.Fatalf("escape path %d->%d climbs after descending: %v", src, dst, path)
				}
			}
		}
	}
}
