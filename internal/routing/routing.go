// Package routing provides the routing functions used in the paper's
// evaluation: deterministic dimension-ordered XY routing (inherently
// deadlock-free on a mesh, used by all but one experiment) and
// minimal adaptive routing (used by the Figure 12(i) experiment,
// which relies on escape virtual channels for deadlock recovery).
package routing

import (
	"fmt"

	"vichar/internal/topology"
)

// Function computes the productive output ports for a packet at a
// router. The router's VC allocator picks among the candidates.
type Function interface {
	// Candidates returns the set of output ports that move a packet
	// at cur minimally toward dst. When cur == dst it returns only
	// the Local ejection port. The result is never empty and its
	// order is deterministic (X-direction first), so deterministic
	// functions return exactly one port.
	Candidates(m topology.Mesh, cur, dst int) []int
	// AppendCandidates appends the same candidate set to out and
	// returns the extended slice, letting tick-path callers reuse a
	// scratch buffer instead of allocating per routing computation.
	AppendCandidates(out []int, m topology.Mesh, cur, dst int) []int
	// Deterministic reports whether Candidates always returns a
	// single port (and therefore whether the function is
	// deadlock-free on its own).
	Deterministic() bool
	// String names the algorithm.
	String() string
}

// XY is dimension-ordered routing: correct the X offset fully, then
// the Y offset, taking the shorter way around on a torus. On a mesh
// dependent turns are forbidden so it is deadlock-free without escape
// resources; on a torus the wraparound rings close cycles, so it must
// be paired with escape VCs (whose escape network never wraps).
type XY struct{}

// Candidates returns the single dimension-ordered port.
func (x XY) Candidates(m topology.Mesh, cur, dst int) []int {
	return x.AppendCandidates(nil, m, cur, dst)
}

// AppendCandidates appends the single dimension-ordered port to out.
func (XY) AppendCandidates(out []int, m topology.Mesh, cur, dst int) []int {
	//vichar:alloc grows the caller's scratch to capacity 1 on the first routing computation, then reuses it
	return append(out, xyPort(m, cur, dst))
}

// Deterministic is always true for XY.
func (XY) Deterministic() bool { return true }

func (XY) String() string { return "XY" }

// xDir returns the X-dimension port toward dx, shortest way around on
// a torus (ties break East).
func xDir(m topology.Mesh, cx, dx int) int {
	if !m.Torus {
		if dx > cx {
			return topology.East
		}
		return topology.West
	}
	fwd := ((dx - cx) + m.Width) % m.Width
	if fwd <= m.Width-fwd {
		return topology.East
	}
	return topology.West
}

// yDir returns the Y-dimension port toward dy, shortest way around on
// a torus (ties break South).
func yDir(m topology.Mesh, cy, dy int) int {
	if !m.Torus {
		if dy > cy {
			return topology.South
		}
		return topology.North
	}
	fwd := ((dy - cy) + m.Height) % m.Height
	if fwd <= m.Height-fwd {
		return topology.South
	}
	return topology.North
}

// xyPort returns the one dimension-ordered output port.
func xyPort(m topology.Mesh, cur, dst int) int {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	switch {
	case cx != dx:
		return xDir(m, cx, dx)
	case cy != dy:
		return yDir(m, cy, dy)
	default:
		return topology.Local
	}
}

// EscapePort returns the deterministic output port of the escape
// channel network for deadlock recovery; packets re-channelled onto
// an escape VC follow it until ejection. The escape network is
// dimension-ordered and NEVER uses wraparound links, so it is acyclic
// even on a torus (a packet may take the long way around, but it is
// guaranteed to drain).
func EscapePort(m topology.Mesh, cur, dst int) int {
	m.Torus = false
	return xyPort(m, cur, dst)
}

// MinimalAdaptive returns every productive (minimal) direction; the
// allocator chooses among them by downstream credit availability.
// Cyclic dependencies are possible, so it must be paired with escape
// VCs (Duato's protocol) for deadlock recovery.
type MinimalAdaptive struct{}

// Candidates returns every port on a minimal path, X direction first.
func (a MinimalAdaptive) Candidates(m topology.Mesh, cur, dst int) []int {
	return a.AppendCandidates(nil, m, cur, dst)
}

// AppendCandidates appends every port on a minimal path to out, X
// direction first.
func (MinimalAdaptive) AppendCandidates(out []int, m topology.Mesh, cur, dst int) []int {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	if cx == dx && cy == dy {
		//vichar:alloc grows the caller's scratch to capacity ≤ 2 on early routing computations, then reuses it
		return append(out, topology.Local)
	}
	if cx != dx {
		//vichar:alloc grows the caller's scratch to capacity ≤ 2 on early routing computations, then reuses it
		out = append(out, xDir(m, cx, dx))
	}
	if cy != dy {
		//vichar:alloc grows the caller's scratch to capacity ≤ 2 on early routing computations, then reuses it
		out = append(out, yDir(m, cy, dy))
	}
	return out
}

// Deterministic is always false for minimal adaptive routing.
func (MinimalAdaptive) Deterministic() bool { return false }

func (MinimalAdaptive) String() string { return "MinAdaptive" }

// Validate checks that every candidate port actually exists at cur
// (moves to a real neighbor or ejects); used by tests.
func Validate(f Function, m topology.Mesh, cur, dst int) error {
	for _, p := range f.Candidates(m, cur, dst) {
		if p == topology.Local {
			if cur != dst {
				return fmt.Errorf("routing: %s ejects at %d before reaching %d", f, cur, dst)
			}
			continue
		}
		if _, ok := m.Neighbor(cur, p); !ok {
			return fmt.Errorf("routing: %s routes off the mesh edge at node %d port %s", f, cur, topology.PortName(p))
		}
	}
	return nil
}
