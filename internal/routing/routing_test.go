package routing

import (
	"testing"
	"testing/quick"

	"vichar/internal/topology"
)

func walk(t *testing.T, f Function, m topology.Mesh, src, dst int, pick func(cands []int) int) int {
	t.Helper()
	cur := src
	for hops := 0; ; hops++ {
		if hops > m.Nodes()*2 {
			t.Fatalf("%s: walk from %d to %d did not terminate", f, src, dst)
		}
		cands := f.Candidates(m, cur, dst)
		if len(cands) == 0 {
			t.Fatalf("%s: empty candidates at %d for %d", f, cur, dst)
		}
		p := pick(cands)
		if p == topology.Local {
			if cur != dst {
				t.Fatalf("%s: ejected at %d, wanted %d", f, cur, dst)
			}
			return hops
		}
		nb, ok := m.Neighbor(cur, p)
		if !ok {
			t.Fatalf("%s: routed off the edge at %d port %s", f, cur, topology.PortName(p))
		}
		cur = nb
	}
}

func TestXYReachesEveryPair(t *testing.T) {
	m := topology.New(5, 4)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			hops := walk(t, XY{}, m, src, dst, func(c []int) int { return c[0] })
			if hops != m.Hops(src, dst) {
				t.Fatalf("XY %d->%d took %d hops, minimal %d", src, dst, hops, m.Hops(src, dst))
			}
		}
	}
}

func TestXYDimensionOrder(t *testing.T) {
	m := topology.New(8, 8)
	// From (0,0) to (3,3): X must be corrected first.
	got := XY{}.Candidates(m, m.Node(0, 0), m.Node(3, 3))
	if len(got) != 1 || got[0] != topology.East {
		t.Fatalf("XY first move %v, want East", got)
	}
	// X aligned: move in Y.
	got = XY{}.Candidates(m, m.Node(3, 0), m.Node(3, 3))
	if len(got) != 1 || got[0] != topology.South {
		t.Fatalf("XY Y-move %v, want South", got)
	}
	got = XY{}.Candidates(m, m.Node(3, 3), m.Node(3, 3))
	if len(got) != 1 || got[0] != topology.Local {
		t.Fatalf("XY at destination %v, want Local", got)
	}
}

func TestXYDeterministic(t *testing.T) {
	if !(XY{}).Deterministic() {
		t.Error("XY must be deterministic")
	}
	if (MinimalAdaptive{}).Deterministic() {
		t.Error("minimal adaptive must not be deterministic")
	}
}

func TestAdaptiveCandidatesMinimal(t *testing.T) {
	m := topology.New(8, 8)
	// Diagonal: both productive directions offered.
	got := MinimalAdaptive{}.Candidates(m, m.Node(2, 2), m.Node(5, 6))
	if len(got) != 2 || got[0] != topology.East || got[1] != topology.South {
		t.Fatalf("adaptive candidates %v, want [East South]", got)
	}
	// Aligned: single direction.
	got = MinimalAdaptive{}.Candidates(m, m.Node(2, 2), m.Node(2, 7))
	if len(got) != 1 || got[0] != topology.South {
		t.Fatalf("aligned candidates %v", got)
	}
	got = MinimalAdaptive{}.Candidates(m, m.Node(4, 4), m.Node(4, 4))
	if len(got) != 1 || got[0] != topology.Local {
		t.Fatalf("at-destination candidates %v", got)
	}
}

// Property: every adaptive candidate strictly decreases the hop
// distance (minimality), for any pair.
func TestAdaptiveProductiveProperty(t *testing.T) {
	m := topology.New(7, 6)
	prop := func(a, b uint8) bool {
		src := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		for _, p := range (MinimalAdaptive{}).Candidates(m, src, dst) {
			if p == topology.Local {
				if src != dst {
					return false
				}
				continue
			}
			nb, ok := m.Neighbor(src, p)
			if !ok || m.Hops(nb, dst) != m.Hops(src, dst)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: any greedy walk over adaptive candidates terminates at
// the destination in exactly the minimal hop count.
func TestAdaptiveWalkAlwaysMinimal(t *testing.T) {
	m := topology.New(6, 6)
	pickLast := func(c []int) int { return c[len(c)-1] }
	for src := 0; src < m.Nodes(); src += 5 {
		for dst := 0; dst < m.Nodes(); dst += 3 {
			hops := walk(t, MinimalAdaptive{}, m, src, dst, pickLast)
			if hops != m.Hops(src, dst) {
				t.Fatalf("adaptive %d->%d took %d hops, minimal %d", src, dst, hops, m.Hops(src, dst))
			}
		}
	}
}

func TestEscapePortIsXY(t *testing.T) {
	m := topology.New(8, 8)
	for src := 0; src < m.Nodes(); src += 7 {
		for dst := 0; dst < m.Nodes(); dst += 5 {
			if EscapePort(m, src, dst) != (XY{}).Candidates(m, src, dst)[0] {
				t.Fatalf("escape port differs from XY at %d->%d", src, dst)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	m := topology.New(4, 4)
	if err := Validate(XY{}, m, 0, 15); err != nil {
		t.Errorf("XY validate: %v", err)
	}
	if err := Validate(MinimalAdaptive{}, m, 5, 10); err != nil {
		t.Errorf("adaptive validate: %v", err)
	}
}

// XY's channel dependency graph on a mesh is acyclic (the standard
// turn-model argument): verify no walk revisits a channel.
func TestXYNoChannelRevisit(t *testing.T) {
	m := topology.New(5, 5)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			type chann struct{ node, port int }
			seen := map[chann]bool{}
			cur := src
			for cur != dst {
				p := XY{}.Candidates(m, cur, dst)[0]
				c := chann{cur, p}
				if seen[c] {
					t.Fatalf("XY revisited channel %v routing %d->%d", c, src, dst)
				}
				seen[c] = true
				cur, _ = m.Neighbor(cur, p)
			}
		}
	}
}

func TestStrings(t *testing.T) {
	if (XY{}).String() != "XY" {
		t.Error("XY name wrong")
	}
	if (MinimalAdaptive{}).String() != "MinAdaptive" {
		t.Error("adaptive name wrong")
	}
}

// prematureEjector is a broken routing function used to exercise
// Validate's failure paths.
type prematureEjector struct{}

func (prematureEjector) Candidates(m topology.Mesh, cur, dst int) []int {
	return []int{topology.Local}
}
func (prematureEjector) AppendCandidates(out []int, m topology.Mesh, cur, dst int) []int {
	return append(out, topology.Local)
}
func (prematureEjector) Deterministic() bool { return true }
func (prematureEjector) String() string      { return "broken" }

// edgeRunner routes off the mesh edge.
type edgeRunner struct{}

func (edgeRunner) Candidates(m topology.Mesh, cur, dst int) []int {
	return []int{topology.North}
}
func (edgeRunner) AppendCandidates(out []int, m topology.Mesh, cur, dst int) []int {
	return append(out, topology.North)
}
func (edgeRunner) Deterministic() bool { return true }
func (edgeRunner) String() string      { return "edge" }

func TestValidateCatchesBrokenFunctions(t *testing.T) {
	m := topology.New(4, 4)
	if err := Validate(prematureEjector{}, m, 0, 5); err == nil {
		t.Error("premature ejection not caught")
	}
	if err := Validate(edgeRunner{}, m, m.Node(0, 0), m.Node(3, 3)); err == nil {
		t.Error("off-edge routing not caught")
	}
}

func TestTorusXYShortestDirection(t *testing.T) {
	m := topology.NewTorus(8, 8)
	// (0,0) -> (6,0): wrapping West (2 hops) beats East (6 hops).
	got := XY{}.Candidates(m, m.Node(0, 0), m.Node(6, 0))
	if len(got) != 1 || got[0] != topology.West {
		t.Fatalf("torus XY picked %v, want West wrap", got)
	}
	// (0,0) -> (2,0): straight East.
	got = XY{}.Candidates(m, m.Node(0, 0), m.Node(2, 0))
	if got[0] != topology.East {
		t.Fatalf("torus XY picked %v, want East", got)
	}
	// Tie at half-way (4 hops either way): East by convention.
	got = XY{}.Candidates(m, m.Node(0, 0), m.Node(4, 0))
	if got[0] != topology.East {
		t.Fatalf("torus XY tie picked %v, want East", got)
	}
	// Y wrap: (0,1) -> (0,7) is 2 hops North across the wrap.
	got = XY{}.Candidates(m, m.Node(0, 1), m.Node(0, 7))
	if got[0] != topology.North {
		t.Fatalf("torus XY Y-wrap picked %v, want North", got)
	}
}

// Torus XY walks reach every destination in the torus-minimal hop
// count.
func TestTorusXYMinimalWalks(t *testing.T) {
	m := topology.NewTorus(6, 5)
	for src := 0; src < m.Nodes(); src += 2 {
		for dst := 0; dst < m.Nodes(); dst += 3 {
			hops := walk(t, XY{}, m, src, dst, func(c []int) int { return c[0] })
			if hops != m.Hops(src, dst) {
				t.Fatalf("torus XY %d->%d took %d hops, minimal %d", src, dst, hops, m.Hops(src, dst))
			}
		}
	}
}

// The escape network must never use wraparound links: from any node
// it walks plain mesh-XY, which is acyclic on the torus's link
// subset.
func TestTorusEscapeNeverWraps(t *testing.T) {
	m := topology.NewTorus(6, 6)
	mesh := topology.New(6, 6)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst += 7 {
			if src == dst {
				continue
			}
			got := EscapePort(m, src, dst)
			want := XY{}.Candidates(mesh, src, dst)[0]
			if got != want {
				t.Fatalf("escape at %d->%d: %s, mesh-XY %s", src, dst,
					topology.PortName(got), topology.PortName(want))
			}
			// The chosen port always has a non-wrapping neighbor.
			if _, ok := mesh.Neighbor(src, got); !ok && got != topology.Local {
				t.Fatalf("escape at %d uses a wrap-only port %s", src, topology.PortName(got))
			}
		}
	}
}

func TestTorusAdaptiveCandidates(t *testing.T) {
	m := topology.NewTorus(8, 8)
	// (0,0) -> (7,7): both dims wrap; candidates West and North.
	got := MinimalAdaptive{}.Candidates(m, m.Node(0, 0), m.Node(7, 7))
	if len(got) != 2 || got[0] != topology.West || got[1] != topology.North {
		t.Fatalf("torus adaptive candidates %v, want [West North]", got)
	}
}
