package routing

import (
	"testing"

	"vichar/internal/soa"
	"vichar/internal/topology"
)

// TestTablesEquivalence pins the memoization contract exhaustively:
// for every (cur, dst) pair of every (function, topology) combination,
// the table lookups must reproduce the live routing function — same
// candidate contents in the same order, the same candidate bitmask,
// and the same escape-network port. The router's RC stage and the VA
// nomination path read only the tables, so any divergence here would
// silently change allocation tie-breaks.
func TestTablesEquivalence(t *testing.T) {
	meshes := []struct {
		name string
		m    topology.Mesh
	}{
		{"mesh-4x4", topology.New(4, 4)},
		{"mesh-5x3", topology.New(5, 3)},
		{"torus-4x4", topology.NewTorus(4, 4)},
		{"torus-3x5", topology.NewTorus(3, 5)},
	}
	funcs := []struct {
		name string
		f    Function
	}{
		{"XY", XY{}},
		{"MinimalAdaptive", MinimalAdaptive{}},
	}
	for _, mc := range meshes {
		for _, fc := range funcs {
			t.Run(mc.name+"/"+fc.name, func(t *testing.T) {
				m := mc.m
				tab := NewTables(fc.f, m)
				if got, want := tab.Bytes(), TableBytes(fc.f, m); got != want {
					t.Fatalf("Bytes() = %d, TableBytes = %d", got, want)
				}
				n := m.Nodes()
				var want, got []int
				for cur := 0; cur < n; cur++ {
					for dst := 0; dst < n; dst++ {
						want = fc.f.AppendCandidates(want[:0], m, cur, dst)
						got = tab.AppendCandidates(got[:0], cur, dst)
						if len(want) != len(got) {
							t.Fatalf("(%d,%d): table has %d candidates, function has %d",
								cur, dst, len(got), len(want))
						}
						var wantMask uint8
						for i := range want {
							if want[i] != got[i] {
								t.Fatalf("(%d,%d): candidate %d is port %d, function says %d",
									cur, dst, i, got[i], want[i])
							}
							wantMask |= 1 << uint(want[i])
						}
						if gm := tab.CandidateMask(cur, dst); gm != wantMask {
							t.Fatalf("(%d,%d): CandidateMask %#x, want %#x", cur, dst, gm, wantMask)
						}
						if ge, we := tab.EscapePort(cur, dst), EscapePort(m, cur, dst); ge != we {
							t.Fatalf("(%d,%d): escape port %d, want %d", cur, dst, ge, we)
						}
					}
				}
			})
		}
	}
}

// TestTablesArenaBacked pins the arena path: tables built through a
// byte pool sized by TableBytes must not overflow and must agree with
// the plain-allocation build.
func TestTablesArenaBacked(t *testing.T) {
	m := topology.NewTorus(4, 4)
	f := MinimalAdaptive{}
	a := soa.NewArena(0, 0, 0, 0, 0, TableBytes(f, m))
	at := NewTablesIn(a, f, m)
	if n := a.Overflow(); n != 0 {
		t.Fatalf("arena overflowed by %d bytes with a TableBytes-sized pool", n)
	}
	pt := NewTables(f, m)
	n := m.Nodes()
	var x, y []int
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			x = at.AppendCandidates(x[:0], cur, dst)
			y = pt.AppendCandidates(y[:0], cur, dst)
			if len(x) != len(y) {
				t.Fatalf("(%d,%d): arena table has %d candidates, plain has %d", cur, dst, len(x), len(y))
			}
			for i := range x {
				if x[i] != y[i] {
					t.Fatalf("(%d,%d): arena candidate %d = %d, plain = %d", cur, dst, i, x[i], y[i])
				}
			}
			if at.EscapePort(cur, dst) != pt.EscapePort(cur, dst) {
				t.Fatalf("(%d,%d): arena escape %d, plain %d",
					cur, dst, at.EscapePort(cur, dst), pt.EscapePort(cur, dst))
			}
		}
	}
}
