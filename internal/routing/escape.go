package routing

import (
	"fmt"

	"vichar/internal/topology"
)

// EscapeTree is a fault-aware escape routing table: an up*/down*
// routing tree (Schroeder et al., Autonet, 1991) over the healthy
// links of a mesh whose schedule contains hard link failures. Escape
// traffic climbs the tree from the source toward the root until it
// reaches the lowest common ancestor, then descends to the
// destination. Every escape path is therefore a sequence of "up"
// hops followed by "down" hops on a spanning tree, so the channel
// dependency graph of the escape network is acyclic — up channels
// order by decreasing depth, down channels by increasing depth, and
// no legal path re-enters an up channel after a down hop — which
// preserves Duato deadlock freedom on any connected residual
// topology, wraparound links included.
//
// The tree is built once, from the topology with every scheduled
// KillLink excluded (the planned-outage model): escape traffic never
// touches a link that is going to die, so a mid-run failure cannot
// strand an escaped packet or require a table rebuild — rebuilding
// would mix routes from two different trees in flight and void the
// acyclicity argument. Adaptive (non-escape) traffic keeps using a
// doomed link until its kill cycle.
type EscapeTree struct {
	up       []int // port toward the parent; -1 at the root
	children [][]treeChild
	tin      []int // Euler-tour interval: dst is in cur's subtree
	tout     []int // iff tin[cur] <= tin[dst] <= tout[cur]
}

type treeChild struct {
	node, port int
}

// NewEscapeTree builds the escape tree over the links of m for which
// usable returns true in both directions, rooted at node 0 with a
// deterministic BFS (ascending port order). It returns an error when
// the usable links do not connect the mesh.
func NewEscapeTree(m topology.Mesh, usable func(node, port int) bool) (*EscapeTree, error) {
	n := m.Nodes()
	t := &EscapeTree{
		up:       make([]int, n),
		children: make([][]treeChild, n),
		tin:      make([]int, n),
		tout:     make([]int, n),
	}
	seen := make([]bool, n)
	for i := range t.up {
		t.up[i] = -1
	}
	queue := make([]int, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	reached := 1
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for port := 0; port < topology.Local; port++ {
			nb, ok := m.Neighbor(cur, port)
			if !ok || seen[nb] {
				continue
			}
			if !usable(cur, port) || !usable(nb, topology.Opposite(port)) {
				continue
			}
			seen[nb] = true
			reached++
			t.up[nb] = topology.Opposite(port)
			t.children[cur] = append(t.children[cur], treeChild{node: nb, port: port})
			queue = append(queue, nb)
		}
	}
	if reached != n {
		return nil, fmt.Errorf("routing: escape tree cannot span the mesh: %d of %d nodes reachable over usable links", reached, n)
	}
	// Euler tour for O(children) subtree tests in NextHop.
	type frame struct{ node, child int }
	stack := []frame{{node: 0}}
	clock := 0
	t.tin[0] = clock
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child < len(t.children[f.node]) {
			c := t.children[f.node][f.child]
			f.child++
			clock++
			t.tin[c.node] = clock
			stack = append(stack, frame{node: c.node})
			continue
		}
		t.tout[f.node] = clock
		stack = stack[:len(stack)-1]
	}
	return t, nil
}

// NextHop returns the escape output port at cur for a packet bound
// for dst: Local at the destination, down toward the subtree holding
// dst, otherwise up toward the root. Consecutive lookups along a path
// compose into one up-phase followed by one down-phase, which is what
// keeps the escape channel dependency graph acyclic.
func (t *EscapeTree) NextHop(cur, dst int) int {
	if cur == dst {
		return topology.Local
	}
	if t.tin[cur] <= t.tin[dst] && t.tin[dst] <= t.tout[cur] {
		for _, c := range t.children[cur] {
			if t.tin[c.node] <= t.tin[dst] && t.tin[dst] <= t.tout[c.node] {
				return c.port
			}
		}
		//vichar:invariant a destination inside cur's Euler interval must be inside exactly one child interval
		panic(fmt.Sprintf("routing: escape tree lost node %d below %d", dst, cur))
	}
	return t.up[cur]
}
