// Route-compute memoization (DESIGN.md §17): a routing function is a
// pure function of (cur, dst), so the whole mesh's routing decisions
// can be precomputed at construction time into flat byte tables. The
// router's RC stage then becomes an array load (deterministic
// functions) or an unpack of one packed candidate word (adaptive
// functions) instead of coordinate arithmetic behind an interface
// dispatch per head flit.
package routing

import (
	"fmt"

	"vichar/internal/soa"
	"vichar/internal/topology"
)

// Tables memoizes one routing function plus the escape network over
// every (cur, dst) node pair of a mesh. One Tables is built per
// network (arena-backed, shared by all routers); lookups are
// allocation-free beyond the caller's reusable scratch.
type Tables struct {
	n int
	// ports[cur*n+dst] is the single output port of a deterministic
	// function; nil for adaptive functions.
	ports []uint8
	// cands[cur*n+dst] is the packed candidate word of an adaptive
	// function: bits 0-2 hold the first port, bits 3-5 the second,
	// bits 6-7 the candidate count. The word stores explicit ports in
	// emission order (X direction first) rather than a plain port
	// bitmask: ascending-bit iteration over a bitmask would visit
	// North (port 0) before East (port 1) and silently reorder the
	// allocator's tie-breaks. nil for deterministic functions.
	cands []uint8
	// escape[cur*n+dst] is the never-wrapping escape-network port
	// (EscapePort); nil when it would duplicate ports exactly (XY on
	// a mesh), in which case lookups fall through to ports.
	escape []uint8
}

// NewTables builds the memoization tables with plain allocations.
func NewTables(f Function, m topology.Mesh) *Tables { return NewTablesIn(nil, f, m) }

// NewTablesIn is NewTables drawing the tables from the arena's byte
// pool (nil-arena safe), so they sit beside the rest of the network's
// hot state. The arena must be sized with TableBytes.
func NewTablesIn(a *soa.Arena, f Function, m topology.Mesh) *Tables {
	n := m.Nodes()
	t := &Tables{n: n}
	det := f.Deterministic()
	if det {
		t.ports = a.TakeBytes(n * n)
	} else {
		t.cands = a.TakeBytes(n * n)
	}
	if !sharesEscapeTable(f, m) {
		t.escape = a.TakeBytes(n * n)
	}
	scratch := make([]int, 0, 2)
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			i := cur*n + dst
			scratch = f.AppendCandidates(scratch[:0], m, cur, dst)
			if det {
				t.ports[i] = packPort(scratch[0])
			} else {
				t.cands[i] = packCandidates(scratch)
			}
			if t.escape != nil {
				t.escape[i] = packPort(EscapePort(m, cur, dst))
			}
		}
	}
	return t
}

// sharesEscapeTable reports whether the function's own table already
// is the escape network, making a separate escape table redundant: XY
// on a mesh is exactly EscapePort (dimension order, no wraparound).
func sharesEscapeTable(f Function, m topology.Mesh) bool {
	_, isXY := f.(XY)
	return isXY && !m.Torus
}

// packPort narrows a port index into a table byte (3-bit fields in
// the packed candidate word).
func packPort(p int) uint8 {
	if p < 0 || p > 7 {
		//vichar:invariant only reachable from table construction; a 5-port router's port ids always fit 3 bits
		panic(fmt.Sprintf("routing: port %d does not fit a packed table entry", p))
	}
	return uint8(p)
}

// packCandidates packs an ordered candidate set into one byte.
func packCandidates(cands []int) uint8 {
	if len(cands) < 1 || len(cands) > 2 {
		//vichar:invariant only reachable from table construction; minimal routing on a 2-D mesh emits 1 or 2 candidates
		panic(fmt.Sprintf("routing: cannot pack %d candidates into a table word", len(cands)))
	}
	w := uint8(len(cands))<<6 | packPort(cands[0])
	if len(cands) == 2 {
		w |= packPort(cands[1]) << 3
	}
	return w
}

// AppendCandidates appends the memoized candidates for (cur, dst) to
// out: identical contents and order to the underlying function's
// AppendCandidates (pinned exhaustively by TestTablesEquivalence).
func (t *Tables) AppendCandidates(out []int, cur, dst int) []int {
	if t.ports != nil {
		//vichar:alloc grows the caller's scratch to capacity 1 on the first routing computation, then reuses it
		return append(out, int(t.ports[cur*t.n+dst]))
	}
	w := t.cands[cur*t.n+dst]
	//vichar:alloc grows the caller's scratch to capacity ≤ 2 on early routing computations, then reuses it
	out = append(out, int(w&7))
	if w>>6 > 1 {
		//vichar:alloc grows the caller's scratch to capacity ≤ 2 on early routing computations, then reuses it
		out = append(out, int(w>>3&7))
	}
	return out
}

// CandidateMask returns the candidates for (cur, dst) as a bitmask
// over output ports, for order-insensitive membership tests.
func (t *Tables) CandidateMask(cur, dst int) uint8 {
	if t.ports != nil {
		return 1 << (t.ports[cur*t.n+dst] & 7)
	}
	w := t.cands[cur*t.n+dst]
	m := uint8(1) << (w & 7)
	if w>>6 > 1 {
		m |= 1 << (w >> 3 & 7)
	}
	return m
}

// EscapePort returns the memoized escape-network port for (cur, dst).
func (t *Tables) EscapePort(cur, dst int) int {
	if t.escape != nil {
		return int(t.escape[cur*t.n+dst])
	}
	return int(t.ports[cur*t.n+dst])
}

// Bytes returns the tables' total memory footprint in bytes.
func (t *Tables) Bytes() int { return len(t.ports) + len(t.cands) + len(t.escape) }

// TableBytes is the closed-form byte count NewTablesIn takes from the
// arena for the function on the mesh; router.NewArena sizes the byte
// pool with it (TestArenaSizingExact pins the formula).
func TableBytes(f Function, m topology.Mesh) int {
	n := m.Nodes()
	if sharesEscapeTable(f, m) {
		return n * n
	}
	return 2 * n * n
}
