// Package audit is the dynamic companion to the vichar-lint static
// pass: a per-cycle invariant auditor over the simulator's flow
// control and unified-buffer bookkeeping. The static rules keep the
// core deterministic; the checks here catch the conservation bugs
// determinism alone cannot — leaked buffer slots, duplicated or lost
// credits, and VC Control Table rows that diverge from the Slot
// Availability Tracker.
//
// The auditor is pure: it reads component state and returns an error
// describing the first violation, or nil. Callers (the network's
// Step loop, when Config.Audit is set) decide how to escalate; the
// simulator treats any violation as an unrecoverable invariant break.
package audit

import (
	"fmt"

	"vichar/internal/core"
	"vichar/internal/flit"
)

// CheckUBS cross-checks one Unified Buffer Structure's three
// bookkeeping views — the slot array, the Slot Availability Tracker
// and the VC Control Table — and verifies the one-packet-per-VC
// discipline the Token Dispenser is supposed to enforce:
//
//   - every slot ID a table row names is in range, marked occupied by
//     the tracker, holds a flit, and is named by exactly one row;
//   - every slot the tracker marks occupied is named by some row (no
//     slot leaks) and every free slot holds no flit;
//   - within a row, all flits belong to one packet, carry the row's
//     VC ID, and sit in consecutive sequence order.
func CheckUBS(b *core.UBS) error {
	const unowned = -1
	owner := make([]int, b.Slots())
	for i := range owner {
		owner[i] = unowned
	}
	for vc := 0; vc < b.MaxVCs(); vc++ {
		row := b.SlotsOf(vc)
		if len(row) != b.Len(vc) {
			return fmt.Errorf("audit: vc %d row length %d but Len reports %d", vc, len(row), b.Len(vc))
		}
		var pkt *flit.Packet
		var seq0 int
		for i, s := range row {
			if s < 0 || s >= b.Slots() {
				return fmt.Errorf("audit: vc %d names slot %d outside pool of %d", vc, s, b.Slots())
			}
			if owner[s] != unowned {
				return fmt.Errorf("audit: slot %d named by both vc %d and vc %d", s, owner[s], vc)
			}
			owner[s] = vc
			if b.SlotFree(s) {
				return fmt.Errorf("audit: vc %d names slot %d but the tracker marks it free", vc, s)
			}
			f := b.FlitAt(s)
			if f == nil {
				return fmt.Errorf("audit: vc %d names slot %d but the slot is empty", vc, s)
			}
			if f.VC != vc {
				return fmt.Errorf("audit: slot %d flit carries vc %d but sits in row %d", s, f.VC, vc)
			}
			if i == 0 {
				pkt, seq0 = f.Pkt, f.Seq
				continue
			}
			if f.Pkt != pkt {
				return fmt.Errorf("audit: vc %d holds flits of two packets (%d and %d): one-packet-per-VC violated", vc, pkt.ID, f.Pkt.ID)
			}
			if f.Seq != seq0+i {
				return fmt.Errorf("audit: vc %d packet %d flit order broken: slot %d holds seq %d, want %d", vc, pkt.ID, s, f.Seq, seq0+i)
			}
		}
	}
	occupied := 0
	for i := 0; i < b.Slots(); i++ {
		free := b.SlotFree(i)
		if !free {
			occupied++
		}
		switch {
		case !free && owner[i] == unowned:
			return fmt.Errorf("audit: slot %d leaked: tracker marks it occupied but no VC row names it", i)
		case free && b.FlitAt(i) != nil:
			return fmt.Errorf("audit: slot %d marked free but still holds a flit", i)
		}
	}
	if occupied != b.Occupied() {
		return fmt.Errorf("audit: tracker shows %d occupied slots but Occupied reports %d", occupied, b.Occupied())
	}
	return nil
}

// LinkState is the conservation snapshot of one directed link taken
// between simulation steps: the upstream credit view's debit must
// equal the flits in flight on the forward channel, plus the flits
// resident in the downstream input buffer, plus the credits in flight
// on the reverse channel. Any imbalance means a credit was dropped,
// duplicated, or a buffer slot was charged to the wrong link.
type LinkState struct {
	// Name identifies the link in violation reports (e.g. "3->4").
	Name string
	// Outstanding is the upstream view's debit: flits sent minus
	// credits received (CreditView.OutstandingFlits).
	Outstanding int
	// InFlightFlits counts flits on the forward channel.
	InFlightFlits int
	// DownstreamOccupied counts flits resident in the downstream
	// input buffer the link feeds.
	DownstreamOccupied int
	// InFlightCredits counts credits on the reverse channel.
	InFlightCredits int
	// RetxHeld counts flits parked in the link's retransmission
	// buffer (0 or 1): the declared-fault term that lets the auditor
	// distinguish a flit a fault is holding from a flit the simulator
	// leaked. Always 0 without Config.Faults.
	RetxHeld int
}

// CheckLink verifies the credit-conservation equation for one link.
func CheckLink(s LinkState) error {
	if got := s.InFlightFlits + s.DownstreamOccupied + s.InFlightCredits + s.RetxHeld; got != s.Outstanding {
		return fmt.Errorf("audit: link %s credit conservation broken: view outstanding %d, accounted %d (%d in flight + %d buffered + %d credits + %d held for retransmit)",
			s.Name, s.Outstanding, got, s.InFlightFlits, s.DownstreamOccupied, s.InFlightCredits, s.RetxHeld)
	}
	return nil
}

// CheckLinkFaults verifies declared-fault conservation on one link:
// every dropped or corrupted flit must either have been retransmitted
// or still sit in the retransmission buffer. An imbalance means the
// fault layer lost a flit instead of recovering it.
func CheckLinkFaults(name string, drops, corrupts, retransmits uint64, held int) error {
	if drops+corrupts != retransmits+uint64(held) {
		return fmt.Errorf("audit: link %s fault accounting broken: %d drops + %d corrupts != %d retransmits + %d held",
			name, drops, corrupts, retransmits, held)
	}
	return nil
}

// CheckLinks verifies a batch of link snapshots in order and returns
// the first violation, or nil. The two-phase kernel shards the audit
// across its worker pool: each shard snapshots and checks a contiguous
// chunk of links with this function, and the kernel merges the
// per-shard results in shard index order — so the violation reported
// is the same one a serial scan of all links would find first. Like
// the rest of the package the function is pure; it is safe to call
// concurrently on disjoint snapshot slices.
func CheckLinks(states []LinkState) error {
	for _, s := range states {
		if err := CheckLink(s); err != nil {
			return err
		}
	}
	return nil
}

// CheckVCClass verifies the transaction layer's VC-class separation
// contract at one virtual channel: a packet may only occupy a VC
// whose ID falls inside the packet's own class chunk (where names the
// side being checked, "input" or "output"). A mismatch means a
// response packet could queue behind — or be blocked by — request
// traffic, which would void the protocol-deadlock-freedom argument.
func CheckVCClass(where string, router, port, vc, vcClass, pktClass int) error {
	if vcClass == pktClass {
		return nil
	}
	return fmt.Errorf("audit: router %d %s port %d: vc %d belongs to class %d but carries a class-%d packet",
		router, where, port, vc, vcClass, pktClass)
}
