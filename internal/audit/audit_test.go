package audit_test

import (
	"strings"
	"testing"

	"vichar/internal/audit"
	"vichar/internal/core"
	"vichar/internal/flit"
)

// fill writes packet p's flits into b on the given VC starting at
// cycle now, failing the test on any buffer error.
func fill(t *testing.T, b *core.UBS, p *flit.Packet, vc int, now int64) []*flit.Flit {
	t.Helper()
	fs := flit.MakeFlits(p)
	for _, f := range fs {
		f.VC = vc
		if err := b.Write(f, now); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// TestCheckUBSClean exercises a legal write/read/drain sequence: the
// auditor must stay silent at every intermediate state.
func TestCheckUBSClean(t *testing.T) {
	b := core.NewUBS(8)
	if err := audit.CheckUBS(b); err != nil {
		t.Fatalf("empty UBS: %v", err)
	}
	p := &flit.Packet{ID: 1, Size: 3}
	fill(t, b, p, 2, 10)
	q := &flit.Packet{ID: 2, Size: 2}
	fill(t, b, q, 5, 10)
	if err := audit.CheckUBS(b); err != nil {
		t.Fatalf("after writes: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Pop(2, 11+int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := audit.CheckUBS(b); err != nil {
			t.Fatalf("after pop %d: %v", i, err)
		}
	}
	if got := b.Occupied(); got != 2 {
		t.Fatalf("occupied = %d, want 2", got)
	}
}

// TestCheckUBSOnePacketPerVC plants a second packet's flit in an
// occupied VC row — legal at the buffer layer, which does not know
// about packets — and demands the auditor flag it.
func TestCheckUBSOnePacketPerVC(t *testing.T) {
	b := core.NewUBS(8)
	fill(t, b, &flit.Packet{ID: 1, Size: 2}, 3, 10)
	fill(t, b, &flit.Packet{ID: 2, Size: 1}, 3, 10)
	err := audit.CheckUBS(b)
	if err == nil || !strings.Contains(err.Error(), "one-packet-per-VC") {
		t.Fatalf("want one-packet-per-VC violation, got %v", err)
	}
}

// TestCheckUBSSequenceOrder writes one packet's flits out of order:
// the row's sequence numbers are no longer consecutive.
func TestCheckUBSSequenceOrder(t *testing.T) {
	b := core.NewUBS(8)
	p := &flit.Packet{ID: 7, Size: 3}
	fs := flit.MakeFlits(p)
	for _, i := range []int{1, 0, 2} {
		fs[i].VC = 0
		if err := b.Write(fs[i], 10); err != nil {
			t.Fatal(err)
		}
	}
	err := audit.CheckUBS(b)
	if err == nil || !strings.Contains(err.Error(), "order broken") {
		t.Fatalf("want flit-order violation, got %v", err)
	}
}

// TestCheckLink pins the conservation equation on both sides.
func TestCheckLink(t *testing.T) {
	ok := audit.LinkState{Name: "0->1", Outstanding: 5, InFlightFlits: 2, DownstreamOccupied: 2, InFlightCredits: 1}
	if err := audit.CheckLink(ok); err != nil {
		t.Fatalf("balanced link: %v", err)
	}
	bad := ok
	bad.InFlightCredits = 0
	err := audit.CheckLink(bad)
	if err == nil || !strings.Contains(err.Error(), "credit conservation") {
		t.Fatalf("want conservation violation, got %v", err)
	}
}
