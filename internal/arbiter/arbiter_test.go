package arbiter

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func arbiters(n int) map[string]Arbiter {
	return map[string]Arbiter{
		"roundrobin": NewRoundRobin(n),
		"matrix":     NewMatrix(n),
	}
}

func TestNoRequestsNoWinner(t *testing.T) {
	for name, a := range arbiters(4) {
		if w := a.Arbitrate(make([]bool, 4)); w != -1 {
			t.Errorf("%s: empty request vector granted %d", name, w)
		}
	}
}

func TestSingleRequester(t *testing.T) {
	for name, a := range arbiters(5) {
		for i := 0; i < 5; i++ {
			req := make([]bool, 5)
			req[i] = true
			if w := a.Arbitrate(req); w != i {
				t.Errorf("%s: sole requester %d got %d", name, i, w)
			}
		}
	}
}

func TestWinnerAlwaysRequested(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, a := range arbiters(8) {
		for trial := 0; trial < 500; trial++ {
			req := make([]bool, 8)
			any := false
			for i := range req {
				req[i] = rng.Intn(2) == 0
				any = any || req[i]
			}
			w := a.Arbitrate(req)
			if !any {
				if w != -1 {
					t.Fatalf("%s: granted %d with no requests", name, w)
				}
				continue
			}
			if w < 0 || !req[w] {
				t.Fatalf("%s: granted non-requesting input %d of %v", name, w, req)
			}
		}
	}
}

// Strong fairness: under full contention every input is served
// exactly once per n grants.
func TestFullContentionRoundRobin(t *testing.T) {
	const n = 6
	for name, a := range arbiters(n) {
		req := make([]bool, n)
		for i := range req {
			req[i] = true
		}
		seen := make(map[int]int)
		for i := 0; i < n*10; i++ {
			seen[a.Arbitrate(req)]++
		}
		for i := 0; i < n; i++ {
			if seen[i] != 10 {
				t.Errorf("%s: input %d served %d times of 10", name, i, seen[i])
			}
		}
	}
}

// Starvation freedom: a persistent requester is served within n
// grants no matter what the other inputs do.
func TestStarvationFreedom(t *testing.T) {
	const n = 7
	rng := rand.New(rand.NewSource(2))
	for name, a := range arbiters(n) {
		persistent := 3
		waited := 0
		for round := 0; round < 1000; round++ {
			req := make([]bool, n)
			req[persistent] = true
			for i := range req {
				if i != persistent && rng.Intn(2) == 0 {
					req[i] = true
				}
			}
			if a.Arbitrate(req) == persistent {
				waited = 0
			} else {
				waited++
				if waited >= n {
					t.Fatalf("%s: input %d starved for %d grants", name, persistent, waited)
				}
			}
		}
	}
}

// Matrix arbiter property: the winner is always least recently served
// among current requesters.
func TestMatrixLeastRecentlyServed(t *testing.T) {
	const n = 5
	m := NewMatrix(n)
	lastServed := make([]int, n)
	for i := range lastServed {
		// Initial priority order 0 > 1 > ... means input 0 acts as
		// the least recently served.
		lastServed[i] = i - n
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 2000; round++ {
		req := make([]bool, n)
		any := false
		for i := range req {
			req[i] = rng.Intn(3) != 0
			any = any || req[i]
		}
		w := m.Arbitrate(req)
		if !any {
			continue
		}
		for i := 0; i < n; i++ {
			if req[i] && lastServed[i] < lastServed[w] {
				t.Fatalf("round %d: granted %d (served %d) over older requester %d (served %d)",
					round, w, lastServed[w], i, lastServed[i])
			}
		}
		lastServed[w] = round
	}
}

func TestReset(t *testing.T) {
	for name, a := range arbiters(4) {
		req := []bool{true, true, true, true}
		first := a.Arbitrate(req)
		a.Arbitrate(req)
		a.Reset()
		if got := a.Arbitrate(req); got != first {
			t.Errorf("%s: after reset granted %d, want %d", name, got, first)
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	for name, a := range arbiters(4) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: size mismatch did not panic", name)
				}
			}()
			a.Arbitrate(make([]bool, 3))
		}()
	}
}

func TestBadSizePanics(t *testing.T) {
	for _, mk := range []func() Arbiter{
		func() Arbiter { return NewRoundRobin(0) },
		func() Arbiter { return NewMatrix(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructing a zero/negative arbiter did not panic")
				}
			}()
			mk()
		}()
	}
}

func TestSize(t *testing.T) {
	if NewRoundRobin(9).Size() != 9 || NewMatrix(9).Size() != 9 {
		t.Error("Size does not echo construction size")
	}
}

// Property: both arbiters agree that a winner exists iff a request
// exists.
func TestWinnerExistenceProperty(t *testing.T) {
	prop := func(bits uint16) bool {
		req := make([]bool, 16)
		any := false
		for i := range req {
			req[i] = bits&(1<<i) != 0
			any = any || req[i]
		}
		rr := NewRoundRobin(16).Arbitrate(req)
		mx := NewMatrix(16).Arbitrate(req)
		return (rr >= 0) == any && (mx >= 0) == any
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: ArbitrateMask is bit-for-bit the mask-indexed twin of
// Arbitrate — same winner and same priority-pointer evolution over any
// request sequence, for sizes below, at and above one mask word.
func TestArbitrateMaskEquivalence(t *testing.T) {
	for _, n := range []int{1, 5, 16, 63, 64, 65, 80, 128} {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a := NewRoundRobin(n)
			b := NewRoundRobin(n)
			req := make([]bool, n)
			words := make([]uint64, (n+63)/64)
			for step := 0; step < 200; step++ {
				for i := range words {
					words[i] = 0
				}
				for i := range req {
					req[i] = rng.Intn(3) == 0
					if req[i] {
						words[i>>6] |= 1 << (uint(i) & 63)
					}
				}
				if wa, wb := a.Arbitrate(req), b.ArbitrateMask(words); wa != wb {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestArbitrateMaskTooNarrowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("narrow mask did not panic")
		}
	}()
	NewRoundRobin(65).ArbitrateMask([]uint64{0})
}

func TestRoundRobinBank(t *testing.T) {
	bank := NewRoundRobinBank(3, 4)
	if len(bank) != 3 {
		t.Fatalf("bank size %d", len(bank))
	}
	for i := range bank {
		if bank[i].Size() != 4 {
			t.Fatalf("arbiter %d size %d", i, bank[i].Size())
		}
		if w := bank[i].Arbitrate([]bool{false, true, false, true}); w != 1 {
			t.Fatalf("arbiter %d first grant %d", i, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width bank did not panic")
		}
	}()
	NewRoundRobinBank(1, 0)
}
