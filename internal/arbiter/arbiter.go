// Package arbiter provides the arbitration primitives used by the
// virtual-channel and switch allocators: a round-robin arbiter with a
// rotating priority pointer and a matrix arbiter maintaining a
// least-recently-served partial order. Both are strongly fair: a
// persistent requester is served within N grants.
package arbiter

import (
	"fmt"
	"math/bits"
)

// Arbiter selects one winner among a set of requesters each cycle.
type Arbiter interface {
	// Arbitrate picks a winner among the indices whose requests[i] is
	// true and updates internal priority state. It returns -1 when
	// nothing is requested.
	Arbitrate(requests []bool) int
	// Size returns the number of request inputs.
	Size() int
	// Reset restores the initial priority state.
	Reset()
}

// RoundRobin is a rotating-priority arbiter: after a grant the
// priority pointer moves to the requester after the winner, so each
// input is at most n-1 grants away from being highest priority.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin arbiter over n inputs.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic(fmt.Sprintf("arbiter: size must be positive, got %d", n))
	}
	return &RoundRobin{n: n}
}

// Size returns the number of request inputs.
func (a *RoundRobin) Size() int { return a.n }

// Reset restores the priority pointer to input 0.
func (a *RoundRobin) Reset() { a.next = 0 }

// Pos returns the priority pointer — the arbiter's only mutable
// state — for checkpointing.
func (a *RoundRobin) Pos() int { return a.next }

// SetPos restores a checkpointed priority pointer.
func (a *RoundRobin) SetPos(pos int) error {
	if pos < 0 || pos >= a.n {
		return fmt.Errorf("arbiter: priority pointer %d outside a %d-input arbiter", pos, a.n)
	}
	a.next = pos
	return nil
}

// Arbitrate grants the first requester at or after the priority
// pointer, then advances the pointer past the winner.
func (a *RoundRobin) Arbitrate(requests []bool) int {
	if len(requests) != a.n {
		//vichar:invariant a request vector sized differently from the arbiter means the caller wired the wrong port set
		panic(fmt.Sprintf("arbiter: got %d requests for a %d-input arbiter", len(requests), a.n))
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if requests[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// ArbitrateMask is Arbitrate over a request bitmask: words holds one
// bit per input (bit i of words[i/64] set when input i requests), and
// bits at or above Size must be zero. It grants the same winner and
// evolves the same priority state as Arbitrate on the equivalent bool
// slice, but finds the winner with word scans and trailing-zero counts
// instead of a per-input loop — the shape the router's hot VC masks
// are already in.
func (a *RoundRobin) ArbitrateMask(words []uint64) int {
	if len(words)*64 < a.n {
		//vichar:invariant a mask narrower than the arbiter means the caller wired the wrong port set
		panic(fmt.Sprintf("arbiter: got %d mask bits for a %d-input arbiter", len(words)*64, a.n))
	}
	// Single-word fast path (every ≤64-input arbiter: the switch and VC
	// allocators' port-stage arbiters always, the VC stages up to 64
	// VCs): the wrap search collapses to two trailing-zero counts — the
	// first set bit at or after the pointer, else the lowest set bit.
	if len(words) == 1 {
		m := words[0]
		if m == 0 {
			return -1
		}
		if hi := m &^ (1<<(uint(a.next)&63) - 1); hi != 0 {
			return a.grant(bits.TrailingZeros64(hi))
		}
		return a.grant(bits.TrailingZeros64(m))
	}
	// First set bit at or after the priority pointer...
	w := a.next >> 6
	if m := words[w] &^ (1<<(uint(a.next)&63) - 1); m != 0 {
		return a.grant(w<<6 + bits.TrailingZeros64(m))
	}
	for w++; w < len(words); w++ {
		if m := words[w]; m != 0 {
			return a.grant(w<<6 + bits.TrailingZeros64(m))
		}
	}
	// ...then wrap to the first set bit before it.
	for w = 0; w<<6 < a.next; w++ {
		if m := words[w]; m != 0 {
			idx := w<<6 + bits.TrailingZeros64(m)
			if idx >= a.next {
				break
			}
			return a.grant(idx)
		}
	}
	return -1
}

// grant records idx as the winner and advances the priority pointer
// past it, exactly as Arbitrate does.
func (a *RoundRobin) grant(idx int) int {
	a.next = idx + 1
	if a.next == a.n {
		a.next = 0
	}
	return idx
}

// NewRoundRobinBank returns count independent round-robin arbiters of
// the given input width as one contiguous slice — the
// struct-of-arrays layout the router uses so a tick's arbiter state
// sits on adjacent cache lines instead of behind per-arbiter pointers.
func NewRoundRobinBank(count, inputs int) []RoundRobin {
	bank := make([]RoundRobin, count)
	InitBank(bank, inputs)
	return bank
}

// InitBank readies a caller-owned (typically arena-backed) slice of
// round-robin arbiters with the given input width.
func InitBank(bank []RoundRobin, inputs int) {
	if inputs < 1 {
		//vichar:invariant construction-time wiring error, same contract as NewRoundRobin
		panic(fmt.Sprintf("arbiter: size must be positive, got %d", inputs))
	}
	for i := range bank {
		bank[i] = RoundRobin{n: inputs}
	}
}

// Matrix is a least-recently-served arbiter: a triangular matrix of
// precedence bits; the winner is the requester that has precedence
// over every other requester, and granting clears its precedence.
// This is the classical design used in VC router allocators.
type Matrix struct {
	n    int
	prec [][]bool // prec[i][j]: i has priority over j
}

// NewMatrix returns a matrix arbiter over n inputs with initial
// priority order 0 > 1 > ... > n-1.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic(fmt.Sprintf("arbiter: size must be positive, got %d", n))
	}
	m := &Matrix{n: n, prec: make([][]bool, n)}
	for i := range m.prec {
		m.prec[i] = make([]bool, n)
	}
	m.Reset()
	return m
}

// Size returns the number of request inputs.
func (m *Matrix) Size() int { return m.n }

// Reset restores the initial priority order 0 > 1 > ... > n-1.
func (m *Matrix) Reset() {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			m.prec[i][j] = i < j
		}
	}
}

// Arbitrate grants the requester that has precedence over all other
// current requesters, then demotes it below everyone.
func (m *Matrix) Arbitrate(requests []bool) int {
	if len(requests) != m.n {
		//vichar:invariant a request vector sized differently from the arbiter means the caller wired the wrong port set
		panic(fmt.Sprintf("arbiter: got %d requests for a %d-input arbiter", len(requests), m.n))
	}
	winner := -1
	for i := 0; i < m.n; i++ {
		if !requests[i] {
			continue
		}
		ok := true
		for j := 0; j < m.n; j++ {
			if j != i && requests[j] && !m.prec[i][j] {
				ok = false
				break
			}
		}
		if ok {
			winner = i
			break
		}
	}
	if winner >= 0 {
		for j := 0; j < m.n; j++ {
			if j != winner {
				m.prec[winner][j] = false
				m.prec[j][winner] = true
			}
		}
	}
	return winner
}

var (
	_ Arbiter = (*RoundRobin)(nil)
	_ Arbiter = (*Matrix)(nil)
)
