// Package faults compiles Config.Faults into the deterministic fault
// plan the simulator injects through its two-phase cycle kernel:
// transient link faults (flit drops and corruptions recovered by a
// per-link retransmission buffer), router port stalls, and scheduled
// hard link failures.
//
// Every rate-driven decision is a pure counter-based hash of the
// fault seed and the faulted resource's identity — never a shared
// random stream — and every piece of mutable fault state (a link's
// retransmission buffer, a router's stall windows) is owned by
// exactly the kernel shard that owns the underlying resource. Fault
// placement is therefore bit-identical for any Config.Workers
// setting, which the determinism tests assert with faults enabled.
package faults

import (
	"fmt"
	"math"
	"sort"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/topology"
)

// neverDead marks a link with no scheduled hard failure.
const neverDead = math.MaxInt64

// Domain separators keep the link-fault and port-stall hash streams
// disjoint even when they share a resource index.
const (
	domainLink  = 0x6c696e6b // "link"
	domainStall = 0x7374616c // "stal"
)

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output passes statistical randomness tests (Steele et al., OOPSLA
// 2014). The fault model uses it as a stateless counter-based RNG.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform sample in [0,1) for draw n of the given
// stream under a domain seed; a pure function, so any shard can
// evaluate it for the resources it owns without coordination.
func roll(domain, stream, n uint64) float64 {
	h := mix64(domain + mix64(stream+mix64(n)))
	return float64(h>>11) / (1 << 53)
}

// stallWindow is one scheduled port stall.
type stallWindow struct {
	at     int64
	cycles int64
}

// Plan is the immutable compiled fault schedule of one run; the
// network builds per-link and per-router mutable state from it at
// wiring time. A nil *Plan (faults disabled) is valid for every
// constructor and returns nil state.
type Plan struct {
	nodes, ports int

	dropRate    float64
	corruptRate float64
	stallRate   float64
	retxDelay   int64
	stallCycles int64
	linkSeed    uint64
	stallSeed   uint64

	killAt  []int64         // [node*4+port] first dead cycle, else neverDead
	dropAt  [][]int64       // [node*4+port] scheduled one-shot drop cycles, ascending
	stallAt [][]stallWindow // [node*ports+port] scheduled stalls, ascending
	hasKill bool
}

// NewPlan compiles the configuration's fault schedule, or returns nil
// when faults are disabled. The configuration must already be
// validated.
func NewPlan(cfg *config.Config) *Plan {
	f := &cfg.Faults
	if !f.Enabled() {
		return nil
	}
	p := &Plan{
		nodes:       cfg.Nodes(),
		ports:       cfg.Ports(),
		dropRate:    f.DropRate,
		corruptRate: f.CorruptRate,
		stallRate:   f.StallRate,
		retxDelay:   int64(f.EffectiveRetransmitDelay()),
		stallCycles: int64(f.EffectiveStallCycles()),
		linkSeed:    mix64(uint64(f.Seed) + domainLink),
		stallSeed:   mix64(uint64(f.Seed) + domainStall),
	}
	p.killAt = make([]int64, p.nodes*topology.Local)
	for i := range p.killAt {
		p.killAt[i] = neverDead
	}
	p.dropAt = make([][]int64, p.nodes*topology.Local)
	p.stallAt = make([][]stallWindow, p.nodes*p.ports)
	for _, ev := range f.Events {
		switch ev.Kind {
		case config.KillLink:
			k := ev.Node*topology.Local + ev.Port
			if ev.Cycle < p.killAt[k] {
				p.killAt[k] = ev.Cycle
			}
			p.hasKill = true
		case config.DropFlit:
			k := ev.Node*topology.Local + ev.Port
			p.dropAt[k] = append(p.dropAt[k], ev.Cycle)
		case config.StallPort:
			k := ev.Node*p.ports + ev.Port
			p.stallAt[k] = append(p.stallAt[k], stallWindow{at: ev.Cycle, cycles: int64(ev.Cycles)})
		}
	}
	for _, cycles := range p.dropAt {
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	}
	for _, ws := range p.stallAt {
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].at < ws[j].at })
	}
	return p
}

// HasHardFaults reports whether any link is scheduled to die (and the
// routers therefore need the fault-aware escape tree).
func (p *Plan) HasHardFaults() bool { return p != nil && p.hasKill }

// LinkEverDead reports whether the directed link leaving node through
// the cardinal port dies at any point in the schedule; the escape
// tree excludes such links for the whole run (planned-outage model).
func (p *Plan) LinkEverDead(node, port int) bool {
	if p == nil {
		return false
	}
	return p.killAt[node*topology.Local+port] != neverDead
}

// Outcome is the fate of one link delivery attempt.
type Outcome uint8

const (
	// Deliver lands the flit downstream.
	Deliver Outcome = iota
	// Drop loses the flit on the wire; the sender-side retransmission
	// buffer recovers it after the retransmit delay.
	Drop
	// Corrupt delivers a flit that fails its CRC at the receiver;
	// recovered exactly like a drop, tallied separately.
	Corrupt
)

// LinkState is the mutable fault state of one directed inter-router
// link: its delivery-attempt counter, scheduled one-shot drops, and
// the single-flit retransmission buffer. It is written only by the
// link's tick, which the kernel runs in the receiving router's shard.
type LinkState struct {
	plan    *Plan
	stream  uint64
	attempt uint64

	drops   []int64
	dropIdx int

	holding *flit.Flit
	readyAt int64

	// Drops, Corrupts and Retransmits count this link's fault
	// activity; the network folds them into the run's Counters.
	// Retransmits counts re-send attempts — a retry may itself fault
	// and be retried, so every fault is answered by exactly one
	// retransmission attempt. Declared-fault conservation
	// (audit.CheckLinkFaults): Drops + Corrupts == Retransmits + Held.
	Drops       uint64
	Corrupts    uint64
	Retransmits uint64
}

// Link builds the fault state for the directed link leaving node
// through the cardinal port; nil on a nil plan.
func (p *Plan) Link(node, port int) *LinkState {
	if p == nil {
		return nil
	}
	return &LinkState{
		plan:   p,
		stream: uint64(node*topology.Local + port),
		drops:  p.dropAt[node*topology.Local+port],
	}
}

// Attempt rolls the fate of one delivery attempt at cycle now,
// consuming scheduled one-shot drops first. It tallies the fault
// counters; the caller moves the flit accordingly (Hold on a fresh
// fault, Rearm on a failed retransmission).
func (s *LinkState) Attempt(now int64) Outcome {
	s.attempt++
	if s.dropIdx < len(s.drops) && s.drops[s.dropIdx] <= now {
		s.dropIdx++
		s.Drops++
		return Drop
	}
	r := roll(s.plan.linkSeed, s.stream, s.attempt)
	if r < s.plan.dropRate {
		s.Drops++
		return Drop
	}
	if r < s.plan.dropRate+s.plan.corruptRate {
		s.Corrupts++
		return Corrupt
	}
	return Deliver
}

// Hold parks a faulted flit in the retransmission buffer; it blocks
// the link until released, preserving wormhole flit order.
func (s *LinkState) Hold(f *flit.Flit, now int64) {
	if s.holding != nil {
		//vichar:invariant the retransmission buffer holds one flit; the link must not attempt deliveries past a held flit
		panic(fmt.Sprintf("faults: link stream %d already holds a flit", s.stream))
	}
	s.holding = f
	s.readyAt = now + s.plan.retxDelay
}

// Rearm re-delays the held flit after a faulted retransmission,
// counting the failed re-send attempt.
func (s *LinkState) Rearm(now int64) {
	s.readyAt = now + s.plan.retxDelay
	s.Retransmits++
}

// HeldDue reports whether a held flit's retransmission is due.
func (s *LinkState) HeldDue(now int64) bool {
	return s.holding != nil && now >= s.readyAt
}

// Blocked reports whether the link is waiting on a retransmission.
func (s *LinkState) Blocked() bool { return s.holding != nil }

// Release hands back the held flit for delivery, counting the
// successful retransmission attempt.
func (s *LinkState) Release() *flit.Flit {
	f := s.holding
	s.holding = nil
	s.Retransmits++
	return f
}

// HeldFlit returns the flit parked in the retransmission buffer, or
// nil. Safe on nil; checkpointing walks it to find every packet still
// referenced by a mid-retransmission flit.
func (s *LinkState) HeldFlit() *flit.Flit {
	if s == nil {
		return nil
	}
	return s.holding
}

// Held returns the number of flits parked in the retransmission
// buffer (0 or 1) — the declared-fault term of the link's credit
// conservation equation. Safe on nil.
func (s *LinkState) Held() int {
	if s == nil || s.holding == nil {
		return 0
	}
	return 1
}

// RouterState is the mutable fault state of one router: per-output
// hard-failure cycles and per-input stall windows. Owned by the
// router's compute shard; BeginCycle must run before the pipeline
// stages read Stalled/LinkDead.
type RouterState struct {
	plan *Plan
	node int
	now  int64

	deadAt     []int64 // per cardinal output port
	stallUntil []int64 // per input port, exclusive end cycle
	winIdx     []int
	windows    [][]stallWindow
	stalled    []bool
}

// Router builds the fault state for one router; nil on a nil plan.
func (p *Plan) Router(node int) *RouterState {
	if p == nil {
		return nil
	}
	s := &RouterState{
		plan:       p,
		node:       node,
		deadAt:     p.killAt[node*topology.Local : (node+1)*topology.Local],
		stallUntil: make([]int64, p.ports),
		winIdx:     make([]int, p.ports),
		windows:    p.stallAt[node*p.ports : (node+1)*p.ports],
		stalled:    make([]bool, p.ports),
	}
	return s
}

// BeginCycle applies due scheduled stalls, rolls rate-driven stall
// starts on healthy ports, and latches the cycle's per-port frozen
// flags. Decisions hash (seed, node·port, cycle), so they are
// identical whichever shard evaluates them.
func (s *RouterState) BeginCycle(now int64) {
	s.now = now
	for port := range s.stalled {
		for s.winIdx[port] < len(s.windows[port]) && s.windows[port][s.winIdx[port]].at <= now {
			w := s.windows[port][s.winIdx[port]]
			s.winIdx[port]++
			if end := w.at + w.cycles; end > s.stallUntil[port] {
				s.stallUntil[port] = end
			}
		}
		if s.plan.stallRate > 0 && s.stallUntil[port] <= now {
			stream := uint64(s.node*s.plan.ports + port)
			if roll(s.plan.stallSeed, stream, uint64(now)) < s.plan.stallRate {
				s.stallUntil[port] = now + s.plan.stallCycles
			}
		}
		s.stalled[port] = now < s.stallUntil[port]
	}
}

// Stalled reports whether input port's control logic is frozen this
// cycle (flits still land in its buffer; RC/VA/SA skip it).
func (s *RouterState) Stalled(port int) bool { return s.stalled[port] }

// LinkDead reports whether the output link through port is dead at
// the cycle latched by BeginCycle. The VC allocator stops selecting
// dead ports; worms granted before the failure drain normally.
func (s *RouterState) LinkDead(port int) bool {
	return port < len(s.deadAt) && s.now >= s.deadAt[port]
}
