package faults

import (
	"fmt"

	"vichar/internal/snap"
)

// This file implements the checkpoint half of the fault subsystem.
// The Plan is immutable and re-derives from the configuration, so
// only the per-link retransmission state and the per-router stall
// registers are serialized. RouterState's now/stalled scratch is
// recomputed by the first BeginCycle after restore.

// SaveState serializes the link's delivery-attempt counter, scheduled
// drop cursor, retransmission buffer and fault tallies. Safe on nil
// (writes a presence marker only), matching nil-plan wiring.
func (s *LinkState) SaveState(w *snap.Writer) {
	w.Section("linkfaults")
	w.Bool(s != nil)
	if s == nil {
		return
	}
	w.U64(s.attempt)
	w.Int(s.dropIdx)
	w.Flit(s.holding)
	w.I64(s.readyAt)
	w.U64(s.Drops)
	w.U64(s.Corrupts)
	w.U64(s.Retransmits)
}

// LoadState restores state saved by SaveState into a link rebuilt
// from the same plan.
func (s *LinkState) LoadState(r *snap.Reader, resolve snap.Resolver) error {
	if err := r.Section("linkfaults"); err != nil {
		return err
	}
	has := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if has != (s != nil) {
		return fmt.Errorf("faults: snapshot link state present=%v, wiring has %v", has, s != nil)
	}
	if s == nil {
		return nil
	}
	s.attempt = r.U64()
	dropIdx := r.Int()
	if dropIdx < 0 || dropIdx > len(s.drops) {
		if r.Err() == nil {
			return fmt.Errorf("faults: snapshot drop cursor %d outside [0,%d]", dropIdx, len(s.drops))
		}
		return r.Err()
	}
	s.dropIdx = dropIdx
	f, err := r.Flit(resolve)
	if err != nil {
		return err
	}
	s.holding = f
	s.readyAt = r.I64()
	s.Drops = r.U64()
	s.Corrupts = r.U64()
	s.Retransmits = r.U64()
	return r.Err()
}

// SaveState serializes the router's stall registers: per-port stall
// deadlines and scheduled-window cursors. Safe on nil.
func (s *RouterState) SaveState(w *snap.Writer) {
	w.Section("routerfaults")
	w.Bool(s != nil)
	if s == nil {
		return
	}
	w.I64s(s.stallUntil)
	w.Ints(s.winIdx)
}

// LoadState restores state saved by SaveState into a router fault
// state rebuilt from the same plan.
func (s *RouterState) LoadState(r *snap.Reader) error {
	if err := r.Section("routerfaults"); err != nil {
		return err
	}
	has := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if has != (s != nil) {
		return fmt.Errorf("faults: snapshot router state present=%v, wiring has %v", has, s != nil)
	}
	if s == nil {
		return nil
	}
	r.I64sInto(s.stallUntil)
	r.IntsInto(s.winIdx)
	if err := r.Err(); err != nil {
		return err
	}
	for port, idx := range s.winIdx {
		if idx < 0 || idx > len(s.windows[port]) {
			return fmt.Errorf("faults: snapshot stall cursor %d on port %d outside [0,%d]", idx, port, len(s.windows[port]))
		}
	}
	return nil
}
