package faults

import (
	"testing"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/topology"
)

func planFor(t *testing.T, mutate func(*config.FaultsConfig)) *Plan {
	t.Helper()
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Routing = config.MinimalAdaptive
	mutate(&cfg.Faults)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewPlan(&cfg)
}

func TestNilPlanIsInert(t *testing.T) {
	cfg := config.Default()
	p := NewPlan(&cfg)
	if p != nil {
		t.Fatal("fault-free config compiled a plan")
	}
	if p.HasHardFaults() || p.LinkEverDead(0, topology.East) {
		t.Fatal("nil plan reports faults")
	}
	if p.Link(0, 0) != nil || p.Router(0) != nil {
		t.Fatal("nil plan built state")
	}
	var s *LinkState
	if s.Held() != 0 {
		t.Fatal("nil link state holds a flit")
	}
}

func TestAttemptIsCounterDeterministic(t *testing.T) {
	mk := func() *LinkState {
		p := planFor(t, func(f *config.FaultsConfig) {
			f.Seed = 5
			f.DropRate = 0.2
			f.CorruptRate = 0.1
		})
		return p.Link(3, topology.East)
	}
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		if oa, ob := a.Attempt(int64(i)), b.Attempt(int64(i)); oa != ob {
			t.Fatalf("attempt %d diverged: %d vs %d", i, oa, ob)
		}
	}
	if a.Drops == 0 || a.Corrupts == 0 {
		t.Fatalf("rates 0.2/0.1 over 2000 attempts produced %d drops, %d corrupts", a.Drops, a.Corrupts)
	}
	if frac := float64(a.Drops) / 2000; frac < 0.1 || frac > 0.3 {
		t.Fatalf("drop fraction %.3f far from configured 0.2", frac)
	}
	// Distinct links draw from distinct streams.
	p := planFor(t, func(f *config.FaultsConfig) {
		f.Seed = 5
		f.DropRate = 0.2
		f.CorruptRate = 0.1
	})
	east, west := p.Link(3, topology.East), p.Link(3, topology.West)
	same := true
	for i := 0; i < 100; i++ {
		if east.Attempt(int64(i)) != west.Attempt(int64(i)) {
			same = false
		}
	}
	if same {
		t.Fatal("two different links produced identical fault streams")
	}
}

func TestHoldRearmReleaseLedger(t *testing.T) {
	p := planFor(t, func(f *config.FaultsConfig) {
		f.Seed = 1
		f.DropRate = 0.5
		f.RetransmitDelay = 3
	})
	s := p.Link(0, topology.East)
	f := &flit.Flit{}
	s.Drops++ // the attempt that faulted
	s.Hold(f, 10)
	if !s.Blocked() || s.Held() != 1 {
		t.Fatal("held flit not blocking the link")
	}
	if s.HeldDue(12) {
		t.Fatal("retransmission due before its delay elapsed")
	}
	if !s.HeldDue(13) {
		t.Fatal("retransmission not due after its delay")
	}
	s.Drops++
	s.Rearm(13) // failed retry: counts the attempt
	if s.HeldDue(15) {
		t.Fatal("rearm did not re-delay the held flit")
	}
	if got := s.Release(); got != f {
		t.Fatal("release returned the wrong flit")
	}
	if s.Blocked() || s.Held() != 0 {
		t.Fatal("link still blocked after release")
	}
	if s.Drops+s.Corrupts != s.Retransmits+uint64(s.Held()) {
		t.Fatalf("ledger imbalanced: %d+%d != %d+%d", s.Drops, s.Corrupts, s.Retransmits, s.Held())
	}
}

func TestHoldTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Hold did not panic")
		}
	}()
	p := planFor(t, func(f *config.FaultsConfig) {
		f.DropRate = 0.1
	})
	s := p.Link(0, topology.East)
	s.Hold(&flit.Flit{}, 1)
	s.Hold(&flit.Flit{}, 2)
}

func TestScheduledDropsConsumeInOrder(t *testing.T) {
	p := planFor(t, func(f *config.FaultsConfig) {
		f.Events = []config.FaultEvent{
			{Cycle: 20, Kind: config.DropFlit, Node: 1, Port: topology.South},
			{Cycle: 5, Kind: config.DropFlit, Node: 1, Port: topology.South},
		}
	})
	s := p.Link(1, topology.South)
	if out := s.Attempt(3); out != Deliver {
		t.Fatal("drop fired before its cycle")
	}
	if out := s.Attempt(6); out != Drop {
		t.Fatal("due scheduled drop did not fire")
	}
	if out := s.Attempt(7); out != Deliver {
		t.Fatal("one-shot drop fired twice")
	}
	if out := s.Attempt(25); out != Drop {
		t.Fatal("second scheduled drop did not fire")
	}
}

func TestStallWindowsAndKills(t *testing.T) {
	p := planFor(t, func(f *config.FaultsConfig) {
		f.Events = []config.FaultEvent{
			{Cycle: 10, Kind: config.StallPort, Node: 2, Port: 1, Cycles: 4},
			{Cycle: 30, Kind: config.KillLink, Node: 2, Port: topology.East},
		}
	})
	if !p.HasHardFaults() || !p.LinkEverDead(2, topology.East) {
		t.Fatal("kill schedule not compiled")
	}
	if p.LinkEverDead(2, topology.West) {
		t.Fatal("healthy link reported as dying")
	}
	r := p.Router(2)
	stalled := 0
	for now := int64(1); now <= 40; now++ {
		r.BeginCycle(now)
		if r.Stalled(1) {
			stalled++
		}
		if dead := r.LinkDead(topology.East); dead != (now >= 30) {
			t.Fatalf("cycle %d: LinkDead=%v", now, dead)
		}
	}
	if stalled != 4 {
		t.Fatalf("4-cycle stall window froze the port for %d cycles", stalled)
	}
	if r.Stalled(0) || r.Stalled(topology.Local) {
		t.Fatal("stall leaked onto other ports")
	}
}

func TestRateStallsDeterministic(t *testing.T) {
	mk := func() *RouterState {
		p := planFor(t, func(f *config.FaultsConfig) {
			f.Seed = 9
			f.StallRate = 0.01
			f.StallCycles = 3
		})
		return p.Router(5)
	}
	a, b := mk(), mk()
	stalls := 0
	for now := int64(1); now <= 500; now++ {
		a.BeginCycle(now)
		b.BeginCycle(now)
		for port := 0; port < topology.NumPorts; port++ {
			if a.Stalled(port) != b.Stalled(port) {
				t.Fatalf("cycle %d port %d: stall decision diverged", now, port)
			}
			if a.Stalled(port) {
				stalls++
			}
		}
	}
	if stalls == 0 {
		t.Fatal("stall rate 0.01 over 2500 port-cycles produced no stalls")
	}
}
