package buffers

import (
	"fmt"

	"vichar/internal/flit"
)

// DAMQ models the Dynamically Allocated Multi-Queue buffer of Tamir &
// Frazier (ISCA 1988): a unified pool of slots shared by a fixed
// number of queues (virtual channels). Its linked-list control logic
// — pointer registers and a free list that must be updated on every
// access — costs three cycles per flit arrival and departure (paper
// §2, citing Frazier & Tamir, ICCD 1989). We model that penalty as:
//
//   - an arriving flit becomes visible to the switch allocator only
//     delay cycles after it is written, and
//   - after a departure the queue's read port is busy for delay
//     cycles before the next flit can be read.
//
// Storage is fully shared, so a congested VC can use slots an idle VC
// is not using — but the VC count is fixed, and several packets share
// one queue in FIFO order, preserving head-of-line blocking.
type DAMQ struct {
	vcs   int
	slots int
	delay int64
	qs    []fifo
	occ   int
	// readReadyAt[vc] is the first cycle the queue may be read again
	// after its previous departure.
	readReadyAt []int64
}

// NewDAMQ returns a DAMQ with the given fixed VC count, shared slot
// pool size and per-access bookkeeping delay in cycles.
func NewDAMQ(vcs, slots, delay int) *DAMQ {
	if vcs < 1 || slots < vcs {
		panic(fmt.Sprintf("buffers: DAMQ needs at least one slot per VC, got %d VCs, %d slots", vcs, slots))
	}
	if delay < 0 {
		panic(fmt.Sprintf("buffers: DAMQ delay cannot be negative, got %d", delay))
	}
	return &DAMQ{
		vcs:         vcs,
		slots:       slots,
		delay:       int64(delay),
		qs:          make([]fifo, vcs),
		readReadyAt: make([]int64, vcs),
	}
}

// Slots returns the shared pool size.
func (b *DAMQ) Slots() int { return b.slots }

// MaxVCs returns the fixed queue count.
func (b *DAMQ) MaxVCs() int { return b.vcs }

// FreeSlotsFor returns the shared pool headroom (identical for every
// VC).
func (b *DAMQ) FreeSlotsFor(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.slots - b.occ
}

// Write claims a shared slot for f on queue f.VC.
func (b *DAMQ) Write(f *flit.Flit, now int64) error {
	if f.VC < 0 || f.VC >= b.vcs {
		return ErrBadVC
	}
	if b.occ >= b.slots {
		return ErrFull
	}
	f.ArrivedAt = now
	b.qs[f.VC].push(f)
	b.occ++
	return nil
}

// Front returns the queue head once both the arrival bookkeeping
// (ArrivedAt+delay) and the read-port busy window have elapsed.
func (b *DAMQ) Front(vc int, now int64) *flit.Flit {
	if vc < 0 || vc >= b.vcs {
		return nil
	}
	f := b.qs[vc].front()
	if f == nil {
		return nil
	}
	visible := f.ArrivedAt + b.delay
	if b.delay == 0 {
		visible = f.ArrivedAt + 1
	}
	if now < visible || now < b.readReadyAt[vc] {
		return nil
	}
	return f
}

// Ready reports whether Front would return a flit.
func (b *DAMQ) Ready(vc int, now int64) bool {
	return b.Front(vc, now) != nil
}

// Pop removes the queue head and occupies the read port for the
// bookkeeping delay.
func (b *DAMQ) Pop(vc int, now int64) (*flit.Flit, error) {
	if b.Front(vc, now) == nil {
		return nil, ErrEmpty
	}
	b.occ--
	if b.delay > 0 {
		b.readReadyAt[vc] = now + b.delay
	}
	return b.qs[vc].pop(), nil
}

// Len returns the number of flits on the queue, visible or not.
func (b *DAMQ) Len(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.qs[vc].len()
}

// Occupied returns the total stored flit count.
func (b *DAMQ) Occupied() int { return b.occ }

// InUseVCs returns the number of non-empty queues.
func (b *DAMQ) InUseVCs() int {
	n := 0
	for i := range b.qs {
		if b.qs[i].len() > 0 {
			n++
		}
	}
	return n
}

var _ Buffer = (*DAMQ)(nil)
