package buffers

import (
	"fmt"

	"vichar/internal/flit"
	"vichar/internal/snap"
)

// This file implements the checkpoint half of each buffer
// organization: SaveState writes only mutable contents (flit
// references in FIFO order plus bookkeeping stamps); LoadState
// restores them into a buffer freshly constructed with the same
// shape, resolving flit references through the caller's resolver and
// reusing the existing queue backing arrays.

// forEachFIFO calls fn for every live flit across the queues.
func forEachFIFO(qs []fifo, fn func(*flit.Flit)) {
	for i := range qs {
		q := &qs[i]
		for j := q.head; j < len(q.items); j++ {
			fn(q.items[j])
		}
	}
}

// ForEachFlit calls fn for every stored flit.
func (b *Generic) ForEachFlit(fn func(*flit.Flit)) { forEachFIFO(b.qs, fn) }

// ForEachFlit calls fn for every stored flit.
func (b *DAMQ) ForEachFlit(fn func(*flit.Flit)) { forEachFIFO(b.qs, fn) }

// ForEachFlit calls fn for every stored flit.
func (b *FCCB) ForEachFlit(fn func(*flit.Flit)) { forEachFIFO(b.qs, fn) }

// saveFIFO writes q's live contents in FIFO order.
func saveFIFO(w *snap.Writer, q *fifo) {
	w.Int(q.len())
	for i := q.head; i < len(q.items); i++ {
		w.Flit(q.items[i])
	}
}

// loadFIFO rebuilds q's live contents from saveFIFO output,
// compacting the head to zero (head position is memory layout, not
// simulator state).
func loadFIFO(r *snap.Reader, q *fifo, resolve snap.Resolver) error {
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 {
		return fmt.Errorf("buffers: negative FIFO length %d in snapshot", n)
	}
	q.items = q.items[:0]
	q.head = 0
	for i := 0; i < n; i++ {
		f, err := r.Flit(resolve)
		if err != nil {
			return err
		}
		if f == nil {
			return fmt.Errorf("buffers: nil flit reference inside a FIFO")
		}
		q.push(f)
	}
	return r.Err()
}

// SaveState serializes the generic buffer's mutable contents.
func (b *Generic) SaveState(w *snap.Writer) {
	w.Section("generic")
	w.Int(len(b.qs))
	for i := range b.qs {
		saveFIFO(w, &b.qs[i])
	}
}

// LoadState restores contents saved by SaveState.
func (b *Generic) LoadState(r *snap.Reader, resolve snap.Resolver) error {
	if err := r.Section("generic"); err != nil {
		return err
	}
	if n := r.Int(); n != len(b.qs) {
		return fmt.Errorf("buffers: snapshot has %d generic queues, buffer has %d", n, len(b.qs))
	}
	b.occ = 0
	for i := range b.qs {
		if err := loadFIFO(r, &b.qs[i], resolve); err != nil {
			return err
		}
		if b.qs[i].len() > b.depth {
			return fmt.Errorf("buffers: snapshot overfills generic VC %d: %d > depth %d", i, b.qs[i].len(), b.depth)
		}
		b.occ += b.qs[i].len()
	}
	return r.Err()
}

// SaveState serializes the DAMQ's mutable contents, including the
// per-queue read-port busy stamps of its bookkeeping delay model.
func (b *DAMQ) SaveState(w *snap.Writer) {
	w.Section("damq")
	w.Int(len(b.qs))
	for i := range b.qs {
		saveFIFO(w, &b.qs[i])
	}
	w.I64s(b.readReadyAt)
}

// LoadState restores contents saved by SaveState.
func (b *DAMQ) LoadState(r *snap.Reader, resolve snap.Resolver) error {
	if err := r.Section("damq"); err != nil {
		return err
	}
	if n := r.Int(); n != len(b.qs) {
		return fmt.Errorf("buffers: snapshot has %d DAMQ queues, buffer has %d", n, len(b.qs))
	}
	b.occ = 0
	for i := range b.qs {
		if err := loadFIFO(r, &b.qs[i], resolve); err != nil {
			return err
		}
		b.occ += b.qs[i].len()
	}
	if b.occ > b.slots {
		return fmt.Errorf("buffers: snapshot overfills DAMQ pool: %d > %d slots", b.occ, b.slots)
	}
	r.I64sInto(b.readReadyAt)
	return r.Err()
}

// SaveState serializes the FC-CB's mutable contents.
func (b *FCCB) SaveState(w *snap.Writer) {
	w.Section("fccb")
	w.Int(len(b.qs))
	for i := range b.qs {
		saveFIFO(w, &b.qs[i])
	}
}

// LoadState restores contents saved by SaveState.
func (b *FCCB) LoadState(r *snap.Reader, resolve snap.Resolver) error {
	if err := r.Section("fccb"); err != nil {
		return err
	}
	if n := r.Int(); n != len(b.qs) {
		return fmt.Errorf("buffers: snapshot has %d FC-CB queues, buffer has %d", n, len(b.qs))
	}
	b.occ = 0
	for i := range b.qs {
		if err := loadFIFO(r, &b.qs[i], resolve); err != nil {
			return err
		}
		b.occ += b.qs[i].len()
	}
	if b.occ > b.slots {
		return fmt.Errorf("buffers: snapshot overfills FC-CB pool: %d > %d slots", b.occ, b.slots)
	}
	return r.Err()
}
