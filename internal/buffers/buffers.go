// Package buffers implements the router input-buffer organizations
// the paper compares against: the conventional statically partitioned
// per-VC FIFO buffer ("GEN"), the Dynamically Allocated Multi-Queue
// (DAMQ, Tamir & Frazier 1988) and the Fully Connected Circular
// Buffer (FC-CB, Ni et al. 1998). The ViChaR unified buffer itself —
// the paper's contribution — lives in internal/core and satisfies the
// same Buffer interface.
package buffers

import (
	"errors"

	"vichar/internal/flit"
	"vichar/internal/snap"
)

// Common buffer errors.
var (
	// ErrFull is returned by Write when no slot is available for the
	// flit (the caller violated credit-based flow control).
	ErrFull = errors.New("buffers: no free slot (credit violation)")
	// ErrEmpty is returned by Pop when the virtual channel holds no
	// readable flit.
	ErrEmpty = errors.New("buffers: virtual channel empty")
	// ErrBadVC is returned when a flit names a virtual channel the
	// buffer does not have.
	ErrBadVC = errors.New("buffers: virtual channel out of range")
)

// Buffer is the storage of one router input port. The router's
// per-VC state machines and the upstream credit bookkeeping enforce
// flow control; the buffer only stores flits and preserves per-VC
// FIFO order. The now parameters let architectures with multi-cycle
// bookkeeping (DAMQ) defer flit visibility.
type Buffer interface {
	// Slots returns the total flit capacity of the port.
	Slots() int
	// MaxVCs returns the number of virtual channel identifiers.
	MaxVCs() int
	// FreeSlotsFor returns how many more flits could currently be
	// written to the given VC: remaining private depth for statically
	// partitioned buffers, the shared pool headroom for unified ones.
	FreeSlotsFor(vc int) int
	// Write stores f (on channel f.VC), stamping f.ArrivedAt = now.
	Write(f *flit.Flit, now int64) error
	// Front returns the flit at the head of vc if it is readable at
	// cycle now, or nil.
	Front(vc int, now int64) *flit.Flit
	// Ready reports whether Front would return a flit, without
	// materializing the pointer. Switch allocation polls every active
	// VC each cycle and only needs the boolean; organizations with
	// out-of-band arrival bookkeeping (the ViChaR UBS) answer it
	// without touching flit storage.
	Ready(vc int, now int64) bool
	// Pop removes and returns the head of vc. It fails if Front would
	// have returned nil.
	Pop(vc int, now int64) (*flit.Flit, error)
	// Len returns the number of flits buffered on vc (including ones
	// not yet visible to readers).
	Len(vc int) int
	// Occupied returns the total number of flits currently stored.
	Occupied() int
	// InUseVCs returns how many VCs currently hold at least one flit.
	InUseVCs() int
	// ForEachFlit calls fn for every flit currently stored, in no
	// particular order; checkpointing walks it to find every packet
	// still referenced by buffered flits.
	ForEachFlit(fn func(*flit.Flit))
	// SaveState serializes the buffer's mutable contents for a
	// checkpoint; wiring and shape are not stored — they re-derive
	// from the configuration at restore time.
	SaveState(w *snap.Writer)
	// LoadState restores contents saved by SaveState into a buffer
	// constructed with the same shape. Flit references resolve
	// through the caller's resolver; queue backing arrays are reused.
	LoadState(r *snap.Reader, resolve snap.Resolver) error
}

// fifo is a slice-backed FIFO with O(1) amortized operations; it
// recycles its backing array once the head index grows past half the
// capacity.
type fifo struct {
	items []*flit.Flit
	head  int
}

func (q *fifo) push(f *flit.Flit) {
	//vichar:alloc grows the recycled backing array to the buffer's steady-state depth, then reuses it
	q.items = append(q.items, f)
}

func (q *fifo) pop() *flit.Flit {
	f := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > len(q.items)/2 && q.head > 8 {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return f
}

func (q *fifo) front() *flit.Flit {
	if q.len() == 0 {
		return nil
	}
	return q.items[q.head]
}

func (q *fifo) len() int { return len(q.items) - q.head }
