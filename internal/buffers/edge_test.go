package buffers

import (
	"errors"
	"testing"

	"vichar/internal/flit"
)

// TestDepthOneBuffers drives every architecture at its minimum
// capacity: depth-1 FIFOs (generic) and single-slot-per-VC pools.
// The degenerate shape exposes off-by-ones in free-slot accounting
// that comfortable depths mask.
func TestDepthOneBuffers(t *testing.T) {
	cases := map[string]Buffer{
		"generic-4x1": NewGeneric(4, 1),
		"damq-4x4":    NewDAMQ(4, 4, 0),
		"fccb-4x4":    NewFCCB(4, 4),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			// One flit per VC fills the buffer exactly.
			for vc := 0; vc < 4; vc++ {
				if free := b.FreeSlotsFor(vc); free < 1 {
					t.Fatalf("vc %d: no free slot in an empty buffer", vc)
				}
				if err := b.Write(mkFlit(uint64(vc), vc, flit.Body), 1); err != nil {
					t.Fatalf("vc %d: %v", vc, err)
				}
			}
			if b.Occupied() != 4 || b.InUseVCs() != 4 {
				t.Fatalf("occupied %d, in-use VCs %d; want 4, 4", b.Occupied(), b.InUseVCs())
			}
			for vc := 0; vc < 4; vc++ {
				if free := b.FreeSlotsFor(vc); free != 0 {
					t.Fatalf("vc %d: %d free slots in a full buffer", vc, free)
				}
				if err := b.Write(mkFlit(9, vc, flit.Body), 1); !errors.Is(err, ErrFull) {
					t.Fatalf("vc %d: overfull write returned %v, want ErrFull", vc, err)
				}
			}
			// Drain and refill each VC to catch stale head/tail state.
			for round := 0; round < 3; round++ {
				for vc := 0; vc < 4; vc++ {
					if _, err := b.Pop(vc, int64(10+round)); err != nil {
						t.Fatalf("round %d vc %d: %v", round, vc, err)
					}
					if err := b.Write(mkFlit(uint64(round), vc, flit.Body), int64(10+round)); err != nil {
						t.Fatalf("round %d vc %d refill: %v", round, vc, err)
					}
				}
			}
			if b.Occupied() != 4 {
				t.Fatalf("occupied %d after drain/refill rounds, want 4", b.Occupied())
			}
		})
	}
}

// TestFIFOWrapAroundCompaction pushes a single VC far past the
// internal FIFO's compaction threshold (head > 8 and past half the
// backing array) with a full-buffer, pop-then-push cadence, checking
// strict FIFO order throughout. A compaction bug that drops or
// duplicates a slot shows up as a sequence break.
func TestFIFOWrapAroundCompaction(t *testing.T) {
	cases := map[string]func() Buffer{
		"generic-1x4": func() Buffer { return NewGeneric(1, 4) },
		"damq-1x4":    func() Buffer { return NewDAMQ(1, 4, 0) },
		"fccb-1x4":    func() Buffer { return NewFCCB(1, 4) },
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			b := mk()
			next := uint64(0)
			for ; next < 4; next++ {
				if err := b.Write(mkFlit(next, 0, flit.Body), 0); err != nil {
					t.Fatal(err)
				}
			}
			for want := uint64(0); want < 100; want++ {
				now := int64(want + 1)
				f, err := b.Pop(0, now)
				if err != nil {
					t.Fatalf("pop %d: %v", want, err)
				}
				if f.Pkt.ID != want {
					t.Fatalf("FIFO order broken at %d: got id %d", want, f.Pkt.ID)
				}
				if err := b.Write(mkFlit(next, 0, flit.Body), now); err != nil {
					t.Fatalf("write %d into freed slot: %v", next, err)
				}
				next++
				if b.Occupied() != 4 {
					t.Fatalf("occupancy %d mid-stream, want steady 4", b.Occupied())
				}
			}
		})
	}
}

// TestInterleavedAllocFree interleaves writes and pops across VCs in
// an adversarial pattern: fill the shared pool from one VC, free from
// another, and verify unified buffers lend slots back and forth
// without leaking capacity.
func TestInterleavedAllocFree(t *testing.T) {
	cases := map[string]Buffer{
		"damq": NewDAMQ(2, 4, 0),
		"fccb": NewFCCB(2, 4),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			id := uint64(0)
			write := func(vc int, now int64) error {
				id++
				return b.Write(mkFlit(id, vc, flit.Body), now)
			}
			// VC 0 grabs the whole shared pool.
			for i := 0; i < 4; i++ {
				if err := write(0, 1); err != nil {
					t.Fatal(err)
				}
			}
			if free := b.FreeSlotsFor(1); free != 0 {
				t.Fatalf("vc 1 sees %d free slots in an exhausted pool", free)
			}
			if err := write(1, 1); !errors.Is(err, ErrFull) {
				t.Fatalf("write into exhausted pool returned %v, want ErrFull", err)
			}
			// Each slot VC 0 frees becomes VC 1's to claim, and vice
			// versa: ping-pong the pool's last slot between the VCs.
			for i := 0; i < 16; i++ {
				from, to := i%2, 1-i%2
				now := int64(2 + i)
				if b.Len(from) == 0 {
					from, to = to, from
				}
				if _, err := b.Pop(from, now); err != nil {
					t.Fatalf("iter %d: pop vc %d: %v", i, from, err)
				}
				if free := b.FreeSlotsFor(to); free != 1 {
					t.Fatalf("iter %d: freed slot not visible to vc %d (free=%d)", i, to, free)
				}
				if err := write(to, now); err != nil {
					t.Fatalf("iter %d: write vc %d: %v", i, to, err)
				}
				if b.Occupied() != 4 {
					t.Fatalf("iter %d: pool leaked: occupancy %d, want 4", i, b.Occupied())
				}
			}
			// Drain everything; the pool must return to fully free.
			for vc := 0; vc < 2; vc++ {
				for b.Len(vc) > 0 {
					if _, err := b.Pop(vc, 100); err != nil {
						t.Fatal(err)
					}
				}
			}
			if b.Occupied() != 0 || b.InUseVCs() != 0 {
				t.Fatalf("pool not empty after drain: occupied %d, in-use %d", b.Occupied(), b.InUseVCs())
			}
			for vc := 0; vc < 2; vc++ {
				if free := b.FreeSlotsFor(vc); free != 4 {
					t.Fatalf("vc %d: %d free slots after drain, want the full pool of 4", vc, free)
				}
			}
		})
	}
}

// TestPopEmptyAfterWrap checks ErrEmpty on a VC that was busy and
// drained — the stale-head case, distinct from a never-used VC.
func TestPopEmptyAfterWrap(t *testing.T) {
	for name, b := range buffersUnderTest() {
		for i := 0; i < 12; i++ {
			if err := b.Write(mkFlit(uint64(i), 2, flit.Body), 0); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if _, err := b.Pop(2, 1); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if _, err := b.Pop(2, 2); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: pop of drained VC returned %v, want ErrEmpty", name, err)
		}
		if f := b.Front(2, 2); f != nil {
			t.Errorf("%s: front of drained VC returned %v", name, f)
		}
	}
}

// TestGenericDepthOneIndependence pins the static partitioning at
// depth 1: filling every other VC never grants or steals the
// remaining VC's single private slot.
func TestGenericDepthOneIndependence(t *testing.T) {
	b := NewGeneric(4, 1)
	for vc := 0; vc < 3; vc++ {
		if err := b.Write(mkFlit(uint64(vc), vc, flit.Body), 1); err != nil {
			t.Fatal(err)
		}
	}
	if free := b.FreeSlotsFor(3); free != 1 {
		t.Fatalf("vc 3's private slot reports %d free, want 1", free)
	}
	if err := b.Write(mkFlit(7, 3, flit.Body), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Pop(0, 2); err != nil {
		t.Fatal(err)
	}
	// VC 0's freed slot is private: VC 3 must still be full.
	if err := b.Write(mkFlit(8, 3, flit.Body), 2); !errors.Is(err, ErrFull) {
		t.Fatalf("depth-1 partition leaked a slot across VCs: %v", err)
	}
}
