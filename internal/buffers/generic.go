package buffers

import (
	"fmt"

	"vichar/internal/flit"
)

// Generic is the conventional statically partitioned input buffer:
// v independent FIFO queues, one per virtual channel, each with a
// private depth of k flits (paper Figure 2, "parallel FIFO
// implementation"). A slot that belongs to VC i can never hold a flit
// of VC j — exactly the under-utilization Figure 3 criticizes.
type Generic struct {
	vcs   int
	depth int
	qs    []fifo
	occ   int
}

// NewGeneric returns a buffer of vcs FIFO queues, each depth flits
// deep.
func NewGeneric(vcs, depth int) *Generic {
	if vcs < 1 || depth < 1 {
		panic(fmt.Sprintf("buffers: generic buffer needs positive shape, got %dx%d", vcs, depth))
	}
	return &Generic{vcs: vcs, depth: depth, qs: make([]fifo, vcs)}
}

// Slots returns vcs*depth.
func (b *Generic) Slots() int { return b.vcs * b.depth }

// MaxVCs returns the fixed VC count.
func (b *Generic) MaxVCs() int { return b.vcs }

// FreeSlotsFor returns the remaining private depth of the VC.
func (b *Generic) FreeSlotsFor(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.depth - b.qs[vc].len()
}

// Write appends f to its VC's private queue.
func (b *Generic) Write(f *flit.Flit, now int64) error {
	if f.VC < 0 || f.VC >= b.vcs {
		return ErrBadVC
	}
	q := &b.qs[f.VC]
	if q.len() >= b.depth {
		return ErrFull
	}
	f.ArrivedAt = now
	q.push(f)
	b.occ++
	return nil
}

// Front returns the head of the VC's queue; flits are readable from
// the cycle after they were written (buffer-write stage).
func (b *Generic) Front(vc int, now int64) *flit.Flit {
	if vc < 0 || vc >= b.vcs {
		return nil
	}
	f := b.qs[vc].front()
	if f == nil || f.ArrivedAt >= now {
		return nil
	}
	return f
}

// Ready reports whether Front would return a flit.
func (b *Generic) Ready(vc int, now int64) bool {
	return b.Front(vc, now) != nil
}

// Pop removes the head of the VC's queue.
func (b *Generic) Pop(vc int, now int64) (*flit.Flit, error) {
	if b.Front(vc, now) == nil {
		return nil, ErrEmpty
	}
	b.occ--
	return b.qs[vc].pop(), nil
}

// Len returns the number of flits on the VC.
func (b *Generic) Len(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.qs[vc].len()
}

// Occupied returns the total stored flit count.
func (b *Generic) Occupied() int { return b.occ }

// InUseVCs returns the number of non-empty queues.
func (b *Generic) InUseVCs() int {
	n := 0
	for i := range b.qs {
		if b.qs[i].len() > 0 {
			n++
		}
	}
	return n
}

var _ Buffer = (*Generic)(nil)
