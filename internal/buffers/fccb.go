package buffers

import (
	"fmt"

	"vichar/internal/flit"
)

// FCCB models the Fully Connected Circular Buffer of Ni, Pirvu &
// Bhuyan (ICCD 1998): like the DAMQ it shares one slot pool among a
// fixed number of virtual channels, but its one-directional circular
// shifter lets it complete buffer management in a single clock cycle
// — the paper explicitly grants it that (generous) assumption in the
// Figure 13(d) comparison. Its remaining weaknesses relative to
// ViChaR are architectural, not temporal: the VC count is fixed, and
// multiple packets share a queue in FIFO order (head-of-line
// blocking). The hardware costs the paper measures for it (26% slower
// datapath, +18% buffer area, +66% dynamic power from continuous
// shifting) are captured by the synthesis model in internal/synth,
// not here.
type FCCB struct {
	vcs   int
	slots int
	qs    []fifo
	occ   int
}

// NewFCCB returns an FC-CB with the given fixed VC count and shared
// slot pool size.
func NewFCCB(vcs, slots int) *FCCB {
	if vcs < 1 || slots < vcs {
		panic(fmt.Sprintf("buffers: FC-CB needs at least one slot per VC, got %d VCs, %d slots", vcs, slots))
	}
	return &FCCB{vcs: vcs, slots: slots, qs: make([]fifo, vcs)}
}

// Slots returns the shared pool size.
func (b *FCCB) Slots() int { return b.slots }

// MaxVCs returns the fixed VC count.
func (b *FCCB) MaxVCs() int { return b.vcs }

// FreeSlotsFor returns the shared pool headroom (identical for every
// VC).
func (b *FCCB) FreeSlotsFor(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.slots - b.occ
}

// Write claims a shared slot for f on channel f.VC.
func (b *FCCB) Write(f *flit.Flit, now int64) error {
	if f.VC < 0 || f.VC >= b.vcs {
		return ErrBadVC
	}
	if b.occ >= b.slots {
		return ErrFull
	}
	f.ArrivedAt = now
	b.qs[f.VC].push(f)
	b.occ++
	return nil
}

// Front returns the VC's head flit; flits are readable from the cycle
// after arrival (single-cycle buffer management).
func (b *FCCB) Front(vc int, now int64) *flit.Flit {
	if vc < 0 || vc >= b.vcs {
		return nil
	}
	f := b.qs[vc].front()
	if f == nil || f.ArrivedAt >= now {
		return nil
	}
	return f
}

// Ready reports whether Front would return a flit.
func (b *FCCB) Ready(vc int, now int64) bool {
	return b.Front(vc, now) != nil
}

// Pop removes the VC's head flit.
func (b *FCCB) Pop(vc int, now int64) (*flit.Flit, error) {
	if b.Front(vc, now) == nil {
		return nil, ErrEmpty
	}
	b.occ--
	return b.qs[vc].pop(), nil
}

// Len returns the number of flits on the VC.
func (b *FCCB) Len(vc int) int {
	if vc < 0 || vc >= b.vcs {
		return 0
	}
	return b.qs[vc].len()
}

// Occupied returns the total stored flit count.
func (b *FCCB) Occupied() int { return b.occ }

// InUseVCs returns the number of non-empty VCs.
func (b *FCCB) InUseVCs() int {
	n := 0
	for i := range b.qs {
		if b.qs[i].len() > 0 {
			n++
		}
	}
	return n
}

var _ Buffer = (*FCCB)(nil)
