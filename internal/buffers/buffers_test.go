package buffers

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vichar/internal/flit"
)

func mkFlit(id uint64, vc int, typ flit.Type) *flit.Flit {
	return &flit.Flit{Pkt: &flit.Packet{ID: id, Size: 4}, Type: typ, VC: vc}
}

// buffersUnderTest returns one instance of every architecture with 4
// VCs and 16 slots.
func buffersUnderTest() map[string]Buffer {
	return map[string]Buffer{
		"generic": NewGeneric(4, 4),
		"damq0":   NewDAMQ(4, 16, 0),
		"fccb":    NewFCCB(4, 16),
	}
}

func TestShape(t *testing.T) {
	for name, b := range buffersUnderTest() {
		if b.Slots() != 16 {
			t.Errorf("%s: slots %d, want 16", name, b.Slots())
		}
		if b.MaxVCs() != 4 {
			t.Errorf("%s: VCs %d, want 4", name, b.MaxVCs())
		}
		if b.Occupied() != 0 || b.InUseVCs() != 0 {
			t.Errorf("%s: fresh buffer not empty", name)
		}
	}
}

func TestWriteFrontPopFIFO(t *testing.T) {
	for name, b := range buffersUnderTest() {
		var want []uint64
		for i := uint64(0); i < 4; i++ {
			f := mkFlit(i, 1, flit.Body)
			if err := b.Write(f, 10); err != nil {
				t.Fatalf("%s: write %d: %v", name, i, err)
			}
			want = append(want, i)
		}
		if b.Len(1) != 4 {
			t.Fatalf("%s: len %d, want 4", name, b.Len(1))
		}
		for _, id := range want {
			f := b.Front(1, 100)
			if f == nil || f.Pkt.ID != id {
				t.Fatalf("%s: front = %v, want id %d", name, f, id)
			}
			got, err := b.Pop(1, 100)
			if err != nil || got.Pkt.ID != id {
				t.Fatalf("%s: pop = %v (%v), want id %d", name, got, err, id)
			}
		}
		if b.Occupied() != 0 {
			t.Fatalf("%s: not empty after draining", name)
		}
	}
}

// Flits must not be readable in the cycle they are written
// (buffer-write stage).
func TestSameCycleInvisibility(t *testing.T) {
	for name, b := range buffersUnderTest() {
		if name == "damq0" {
			continue // covered with its own delay semantics below
		}
		if err := b.Write(mkFlit(1, 0, flit.Head), 5); err != nil {
			t.Fatal(err)
		}
		if b.Front(0, 5) != nil {
			t.Errorf("%s: flit visible in its write cycle", name)
		}
		if b.Front(0, 6) == nil {
			t.Errorf("%s: flit invisible one cycle after write", name)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	for name, b := range buffersUnderTest() {
		if _, err := b.Pop(0, 100); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s: pop of empty vc returned %v", name, err)
		}
	}
}

func TestBadVC(t *testing.T) {
	for name, b := range buffersUnderTest() {
		if err := b.Write(mkFlit(1, 9, flit.Head), 1); !errors.Is(err, ErrBadVC) {
			t.Errorf("%s: write to vc 9 returned %v", name, err)
		}
		if err := b.Write(mkFlit(1, -1, flit.Head), 1); !errors.Is(err, ErrBadVC) {
			t.Errorf("%s: write to vc -1 returned %v", name, err)
		}
		if b.Front(9, 10) != nil || b.Len(9) != 0 || b.FreeSlotsFor(9) != 0 {
			t.Errorf("%s: out-of-range vc not inert", name)
		}
	}
}

func TestGenericPartitioning(t *testing.T) {
	b := NewGeneric(4, 4)
	// Fill VC 0 to its private depth.
	for i := 0; i < 4; i++ {
		if err := b.Write(mkFlit(uint64(i), 0, flit.Body), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Write(mkFlit(99, 0, flit.Body), 1); !errors.Is(err, ErrFull) {
		t.Fatalf("over-depth write returned %v", err)
	}
	// Other VCs remain fully available: the static partition cannot
	// lend slots.
	if got := b.FreeSlotsFor(1); got != 4 {
		t.Fatalf("vc 1 free slots %d, want 4", got)
	}
	if err := b.Write(mkFlit(100, 1, flit.Body), 1); err != nil {
		t.Fatalf("vc 1 write failed: %v", err)
	}
}

func TestSharedPoolLending(t *testing.T) {
	// DAMQ and FC-CB let one VC absorb the whole pool.
	for name, b := range map[string]Buffer{
		"damq": NewDAMQ(4, 16, 0),
		"fccb": NewFCCB(4, 16),
	} {
		for i := 0; i < 16; i++ {
			if err := b.Write(mkFlit(uint64(i), 2, flit.Body), 1); err != nil {
				t.Fatalf("%s: write %d: %v", name, i, err)
			}
		}
		if err := b.Write(mkFlit(99, 3, flit.Body), 1); !errors.Is(err, ErrFull) {
			t.Fatalf("%s: overfull write returned %v", name, err)
		}
		if got := b.FreeSlotsFor(0); got != 0 {
			t.Fatalf("%s: free slots %d with full pool", name, got)
		}
	}
}

func TestDAMQThreeCycleVisibility(t *testing.T) {
	b := NewDAMQ(4, 16, 3)
	if err := b.Write(mkFlit(1, 0, flit.Head), 10); err != nil {
		t.Fatal(err)
	}
	for now := int64(10); now < 13; now++ {
		if b.Front(0, now) != nil {
			t.Fatalf("flit visible at %d, before the 3-cycle bookkeeping", now)
		}
	}
	if b.Front(0, 13) == nil {
		t.Fatal("flit invisible at arrival+3")
	}
}

func TestDAMQReadPortBusy(t *testing.T) {
	b := NewDAMQ(4, 16, 3)
	for i := 0; i < 3; i++ {
		if err := b.Write(mkFlit(uint64(i), 0, flit.Body), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Pop(0, 10); err != nil {
		t.Fatal(err)
	}
	// The read port is busy for the bookkeeping delay.
	if b.Front(0, 11) != nil || b.Front(0, 12) != nil {
		t.Fatal("queue readable during the read-port busy window")
	}
	if b.Front(0, 13) == nil {
		t.Fatal("queue still unreadable after the busy window")
	}
	// Another queue is unaffected.
	if err := b.Write(mkFlit(9, 1, flit.Body), 0); err != nil {
		t.Fatal(err)
	}
	if b.Front(1, 11) == nil {
		t.Fatal("independent queue blocked by vc 0's read port")
	}
}

func TestDAMQZeroDelayBehavesLikeFCCB(t *testing.T) {
	d := NewDAMQ(4, 16, 0)
	f := NewFCCB(4, 16)
	rng := rand.New(rand.NewSource(4))
	now := int64(0)
	for step := 0; step < 2000; step++ {
		now++
		vc := rng.Intn(4)
		if rng.Intn(2) == 0 && d.FreeSlotsFor(vc) > 0 {
			fd := mkFlit(uint64(step), vc, flit.Body)
			ff := mkFlit(uint64(step), vc, flit.Body)
			if err := d.Write(fd, now); err != nil {
				t.Fatal(err)
			}
			if err := f.Write(ff, now); err != nil {
				t.Fatal(err)
			}
		} else {
			df := d.Front(vc, now)
			ff := f.Front(vc, now)
			if (df == nil) != (ff == nil) {
				t.Fatalf("step %d: visibility diverged", step)
			}
			if df != nil {
				a, _ := d.Pop(vc, now)
				b, _ := f.Pop(vc, now)
				if a.Pkt.ID != b.Pkt.ID {
					t.Fatalf("step %d: order diverged", step)
				}
			}
		}
		if d.Occupied() != f.Occupied() {
			t.Fatalf("step %d: occupancy diverged", step)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGeneric(0, 4) },
		func() { NewGeneric(4, 0) },
		func() { NewDAMQ(0, 16, 3) },
		func() { NewDAMQ(4, 3, 3) },
		func() { NewDAMQ(4, 16, -1) },
		func() { NewFCCB(0, 16) },
		func() { NewFCCB(4, 2) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

// Property: under random interleaved writes and pops every buffer
// preserves per-VC FIFO order and exact occupancy accounting.
func TestRandomOpsInvariants(t *testing.T) {
	type archMk struct {
		name string
		mk   func() Buffer
	}
	for _, am := range []archMk{
		{"generic", func() Buffer { return NewGeneric(4, 4) }},
		{"damq", func() Buffer { return NewDAMQ(4, 16, 3) }},
		{"fccb", func() Buffer { return NewFCCB(4, 16) }},
	} {
		am := am
		t.Run(am.name, func(t *testing.T) {
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				b := am.mk()
				model := make([][]uint64, 4)
				occupied := 0
				now := int64(0)
				id := uint64(0)
				for step := 0; step < 500; step++ {
					now++
					vc := rng.Intn(4)
					if rng.Intn(2) == 0 {
						if b.FreeSlotsFor(vc) == 0 {
							if err := b.Write(mkFlit(id, vc, flit.Body), now); !errors.Is(err, ErrFull) {
								return false
							}
							continue
						}
						if err := b.Write(mkFlit(id, vc, flit.Body), now); err != nil {
							return false
						}
						model[vc] = append(model[vc], id)
						occupied++
						id++
					} else {
						f := b.Front(vc, now)
						if f == nil {
							continue
						}
						if len(model[vc]) == 0 || f.Pkt.ID != model[vc][0] {
							return false
						}
						if _, err := b.Pop(vc, now); err != nil {
							return false
						}
						model[vc] = model[vc][1:]
						occupied--
					}
					if b.Occupied() != occupied {
						return false
					}
					inUse := 0
					for v := 0; v < 4; v++ {
						if b.Len(v) != len(model[v]) {
							return false
						}
						if len(model[v]) > 0 {
							inUse++
						}
					}
					if b.InUseVCs() != inUse {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}
