// Package txn is the network-interface (NIU) transaction layer: a
// request/response protocol running on top of the flit network. Each
// requester node issues read, write and atomic requests against a
// bounded outstanding-request window; each responder node (a memory
// controller) serves ejected requests through a finite service queue
// and injects the matching response back toward the requester.
//
// Message kinds map onto virtual-channel classes — requests on class
// 0, responses on class 1 — so a response can never be blocked behind
// (or queued after) request traffic anywhere in the network. Together
// with the bounded requester windows and the responder's guaranteed
// response drain, this makes the protocol deadlock-free by
// construction; the router's audit layer cross-checks the class
// separation every cycle when Config.Audit is set. Running with
// Config.Txn.SharedVCs collapses both message kinds onto one class —
// the classic protocol-deadlock-prone NIU the regression wall uses as
// its negative control.
//
// Determinism: the engine mutates cross-node state (windows, pending
// tables, service queues) only from the simulator's serial sub-phase —
// Tick and OnEject both run there, iterating nodes in ascending ID
// order off per-node rng streams — and the only compute-phase entry
// point, Responder.Peek/Admit/Injected, touches state owned by the
// calling node alone. Results are therefore bit-identical for any
// worker count, and the engine checkpoints exactly (SaveState /
// LoadState).
package txn

import (
	"fmt"
	"sort"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/rng"
	"vichar/internal/topology"
)

// Transaction-layer message kinds, carried in flit.Packet.Kind. None
// marks plain fire-and-forget packets (the background traffic
// generator's), which the layer ignores except for responder-queue
// admission accounting.
const (
	None uint8 = iota
	ReadReq
	ReadRsp
	WriteReq // non-posted write: expects a WriteAck
	WriteAck
	PostedWrite // retires at the target, no response
	AtomicReq
	AtomicRsp
)

// Request and response VC classes (flit.Packet.Class). With
// Config.Txn.SharedVCs both kinds ride ClassReq.
const (
	ClassReq uint8 = 0
	ClassRsp uint8 = 1
)

// KindName returns the kind's mnemonic for diagnostics.
func KindName(k uint8) string {
	switch k {
	case None:
		return "none"
	case ReadReq:
		return "read-req"
	case ReadRsp:
		return "read-rsp"
	case WriteReq:
		return "write-req"
	case WriteAck:
		return "write-ack"
	case PostedWrite:
		return "posted-write"
	case AtomicReq:
		return "atomic-req"
	case AtomicRsp:
		return "atomic-rsp"
	}
	//vichar:alloc only reached from invariant-violation panic messages, never on a healthy tick path
	return fmt.Sprintf("kind-%d", k)
}

// IsRequest reports whether the kind is a requester-to-responder
// message.
func IsRequest(k uint8) bool {
	return k == ReadReq || k == WriteReq || k == PostedWrite || k == AtomicReq
}

// IsResponse reports whether the kind is a responder-to-requester
// message.
func IsResponse(k uint8) bool { return k == ReadRsp || k == WriteAck || k == AtomicRsp }

// ClassOf returns the VC class a message kind rides when class
// separation is on.
func ClassOf(k uint8) uint8 {
	if IsResponse(k) {
		return ClassRsp
	}
	return ClassReq
}

// responseOf returns the response kind a request kind elicits (None
// for posted writes).
func responseOf(k uint8) uint8 {
	switch k {
	case ReadReq:
		return ReadRsp
	case WriteReq:
		return WriteAck
	case AtomicReq:
		return AtomicRsp
	}
	return None
}

// Sender is the network surface the engine injects packets through: a
// transaction-layer packet from src to dst of size flits, carrying the
// kind, VC class and (for responses) the request packet ID it answers.
// The network assigns the packet ID and enqueues the packet at src's
// interface on the class's injection stream.
type Sender interface {
	SendTxnPacket(src, dst, size int, kind, class uint8, req uint64) *flit.Packet
}

// service is one request in a responder's service pipeline, ready to
// complete at readyAt.
type service struct {
	readyAt int64
	kind    uint8  // response kind to emit; None for posted writes
	req     uint64 // request packet ID
	dst     int    // requester node (the response destination)
}

// Responder is one node's memory-controller state: a finite service
// queue whose occupancy gates ejection-side admission. Peek and Admit
// satisfy the router package's Admission interface and run inside the
// owning router's compute phase; everything they touch is owned by
// this node.
type Responder struct {
	depth    int
	reserved int       // ejection grants whose tails have not arrived yet
	queue    []service // requests in service, readyAt non-decreasing
	egress   int       // responses created but not yet fully injected
}

// occupied returns the queue slots currently committed.
func (r *Responder) occupied() int { return r.reserved + len(r.queue) + r.egress }

// Peek reports whether a new packet of the class may be granted
// ejection this cycle: responses always may (the requester's window
// slot was reserved at issue), request-class packets need a free
// service-queue slot.
func (r *Responder) Peek(class int) bool {
	if class == int(ClassRsp) {
		return true
	}
	return r.occupied() < r.depth
}

// Admit reserves the queue slot an ejection grant of the class will
// occupy; its tail ejection converts the reservation into a service
// entry (requests) or releases it (everything else).
func (r *Responder) Admit(class int) {
	if class == int(ClassRsp) {
		return
	}
	if r.occupied() >= r.depth {
		//vichar:invariant VA calls Peek before Admit within the same cycle; an over-admission is a gating bug
		panic("txn: responder admission beyond queue depth")
	}
	r.reserved++
}

// Injected releases the egress slot of a response whose last flit just
// left the node's interface. Called from the owning node's compute
// phase (the NI tick).
func (r *Responder) Injected() {
	if r.egress == 0 {
		//vichar:invariant every response injection was preceded by exactly one completion that took the egress slot
		panic("txn: response injected without an egress slot")
	}
	r.egress--
}

// requester is one node's request-issue state.
type requester struct {
	stream  *rng.Stream
	flight  int              // outstanding (issued, not retired) requests
	issued  int              // total requests issued, against Config.Txn.Requests
	pending map[uint64]int64 // request packet ID -> creation cycle
}

// Engine drives the transaction layer for one network.
type Engine struct {
	cfg  *config.Config
	mesh topology.Mesh
	send Sender

	requesters []int // node IDs that issue requests, ascending
	targets    []int // node IDs requests may address, ascending
	isTarget   []bool

	reqs  []requester  // indexed by node; zero-valued for non-requesters
	resps []*Responder // indexed by node; nil for non-responders

	window   int
	service  int
	reqCap   int // per-node request cap, 0 = unbounded
	readCut  float64
	writeCut float64 // cumulative mix cuts: [0,readCut) read, [readCut,writeCut) write, rest atomic

	issued  int64
	retired int64
	samples []int64 // end-to-end transaction latencies, measurement window only
}

// New builds the engine for the configuration. The mesh must match
// the network's; send is the network's injection surface.
func New(cfg *config.Config, mesh topology.Mesh, send Sender) *Engine {
	t := &cfg.Txn
	e := &Engine{
		cfg:      cfg,
		mesh:     mesh,
		send:     send,
		isTarget: make([]bool, mesh.Nodes()),
		reqs:     make([]requester, mesh.Nodes()),
		resps:    make([]*Responder, mesh.Nodes()),
		window:   t.EffectiveWindow(),
		service:  t.EffectiveServiceCycles(),
		reqCap:   t.Requests,
	}
	read, write, _ := t.EffectiveMix()
	e.readCut = read
	e.writeCut = read + write

	// Node roles. Memory-edge mode puts the controllers on the left and
	// right mesh columns — the DRAM-edge floorplan — so every request
	// crosses the interior and response traffic shares horizontal
	// channels with requests bound for the far column (the overlap that
	// makes shared-VC protocol deadlock reachable). Otherwise every
	// node plays both roles with uniform targets.
	for id := 0; id < mesh.Nodes(); id++ {
		x := id % cfg.Width
		edge := x == 0 || x == cfg.Width-1
		if !t.MemEdge || edge {
			e.targets = append(e.targets, id)
			e.isTarget[id] = true
			e.resps[id] = &Responder{depth: t.EffectiveQueueDepth()}
		}
		if !t.MemEdge || !edge {
			e.requesters = append(e.requesters, id)
			e.reqs[id].stream = rng.New(streamSeed(t.EffectiveSeed(cfg.Seed), id))
			e.reqs[id].pending = make(map[uint64]int64)
		}
	}
	return e
}

// streamSeed derives node id's request stream seed. The derivation
// differs from the traffic generator's so the two layers never share a
// sequence even under Txn.Seed == Config.Seed.
func streamSeed(seed int64, node int) int64 {
	return seed*2_147_483_629 + int64(node)*104_729 + 97
}

// Responder returns node id's memory-controller admission state, or
// nil when the node is not a responder; the network installs it as the
// ejection port's admission gate.
func (e *Engine) Responder(id int) *Responder { return e.resps[id] }

// Classes returns the VC class count the engine's packets use.
func (e *Engine) Classes() int { return e.cfg.VCClasses() }

// classFor returns the VC class for a message kind under the
// configured assignment.
func (e *Engine) classFor(kind uint8) uint8 {
	if e.cfg.Txn.SharedVCs {
		return ClassReq
	}
	return ClassOf(kind)
}

// requestSize returns the flit count of a request kind: writes carry a
// data payload, reads and atomics are header-sized.
func (e *Engine) requestSize(kind uint8) int {
	if kind == WriteReq || kind == PostedWrite {
		return e.cfg.PacketSize
	}
	return 1
}

// responseSize returns the flit count of a response kind: read
// responses carry the data payload, acks are header-sized.
func (e *Engine) responseSize(kind uint8) int {
	if kind == ReadRsp {
		return e.cfg.PacketSize
	}
	return 1
}

// Tick runs the serial per-cycle work: responder completions first
// (freeing queue slots and injecting responses), then request
// generation, both in ascending node order.
func (e *Engine) Tick(now int64) {
	for _, id := range e.targets {
		r := e.resps[id]
		for len(r.queue) > 0 && r.queue[0].readyAt <= now {
			s := r.queue[0]
			copy(r.queue, r.queue[1:])
			r.queue = r.queue[:len(r.queue)-1]
			if s.kind == None {
				continue // posted write: service done, slot freed
			}
			e.send.SendTxnPacket(id, s.dst, e.responseSize(s.kind), s.kind, e.classFor(s.kind), s.req)
			r.egress++
		}
	}
	for _, id := range e.requesters {
		q := &e.reqs[id]
		if q.flight >= e.window || (e.reqCap > 0 && q.issued >= e.reqCap) {
			continue
		}
		if q.stream.Float64() >= e.cfg.Txn.Rate {
			continue
		}
		kind := e.drawKind(q.stream)
		dst := e.drawTarget(q.stream, id)
		p := e.send.SendTxnPacket(id, dst, e.requestSize(kind), kind, e.classFor(kind), 0)
		q.pending[p.ID] = now
		q.flight++
		q.issued++
		e.issued++
	}
}

// drawKind draws a request kind from the configured mix.
func (e *Engine) drawKind(s *rng.Stream) uint8 {
	u := s.Float64()
	switch {
	case u < e.readCut:
		return ReadReq
	case u < e.writeCut:
		if s.Float64() < e.cfg.Txn.PostedFrac {
			return PostedWrite
		}
		return WriteReq
	default:
		return AtomicReq
	}
}

// drawTarget draws a uniform request target, excluding the requester
// itself when it is also a responder.
func (e *Engine) drawTarget(s *rng.Stream, self int) int {
	for {
		dst := e.targets[s.Intn(len(e.targets))]
		if dst != self {
			return dst
		}
	}
}

// OnEject handles a packet whose tail just ejected, from the serial
// commit sub-phase. Requests at a responder convert their admission
// reservation into a service entry (posted writes also retire their
// requester here); responses retire the transaction at the requester.
// Plain packets (Kind None) arriving at a responder release the
// admission reservation their ejection grant took. measuring gates the
// latency sample on the collector's measurement window.
func (e *Engine) OnEject(p *flit.Packet, now int64, measuring bool) {
	r := e.resps[p.Dst]
	// Any class-ReqVC packet ejecting at a responder consumed one
	// admission reservation at its ejection-VA grant; release it here.
	// Under shared VCs that includes responses — the coupling that
	// wedges the negative control.
	if r != nil && p.Class == ClassReq {
		if r.reserved == 0 {
			//vichar:invariant every gated ejection was admitted exactly once before its tail arrived
			panic(fmt.Sprintf("txn: node %d ejected %s with no admission reserved", p.Dst, KindName(p.Kind)))
		}
		r.reserved--
	}
	switch {
	case IsRequest(p.Kind):
		if r == nil {
			//vichar:invariant requests target responder nodes only
			panic(fmt.Sprintf("txn: %s ejected at non-responder node %d", KindName(p.Kind), p.Dst))
		}
		//vichar:alloc responder service queue is bounded by QueueDepth; append capacity settles there
		r.queue = append(r.queue, service{
			readyAt: now + int64(e.service),
			kind:    responseOf(p.Kind),
			req:     p.ID,
			dst:     p.Src,
		})
		if p.Kind == PostedWrite {
			e.retire(p.Src, p.ID, now, measuring)
		}
	case IsResponse(p.Kind):
		e.retire(p.Dst, p.Req, now, measuring)
	}
}

// retire completes node's transaction req, recording its end-to-end
// latency (request creation to retirement) when measuring.
func (e *Engine) retire(node int, req uint64, now int64, measuring bool) {
	q := &e.reqs[node]
	created, ok := q.pending[req]
	if !ok {
		//vichar:invariant one retirement per issued request; a duplicate means a duplicated or misrouted response
		panic(fmt.Sprintf("txn: node %d retiring unknown request %d", node, req))
	}
	delete(q.pending, req)
	q.flight--
	e.retired++
	if measuring {
		//vichar:alloc one latency sample per measured transaction — the metric being collected, not per-cycle churn
		e.samples = append(e.samples, now-created)
	}
}

// OnInjected notifies the engine that a packet's last flit left node
// src's interface; responses release their responder egress slot.
// Called from the owning node's compute phase — it must only touch
// that node's state.
func (e *Engine) OnInjected(src int, p *flit.Packet) {
	if IsResponse(p.Kind) {
		e.resps[src].Injected()
	}
}

// Outstanding returns the transactions issued and not yet retired.
func (e *Engine) Outstanding() int64 { return e.issued - e.retired }

// Done reports whether a capped workload (Config.Txn.Requests > 0) has
// issued every request and retired every transaction.
func (e *Engine) Done() bool {
	if e.reqCap == 0 {
		return false
	}
	for _, id := range e.requesters {
		if e.reqs[id].issued < e.reqCap {
			return false
		}
	}
	return e.retired == e.issued
}

// Issued and Retired return the engine's lifetime transaction counts.
func (e *Engine) Issued() int64  { return e.issued }
func (e *Engine) Retired() int64 { return e.retired }

// Samples returns the recorded end-to-end transaction latencies
// (measurement window only); the caller must not mutate it.
func (e *Engine) Samples() []int64 { return e.samples }

// Quiescent reports whether the engine can generate no further work
// without network input: no responder holds queued or egress work and
// either the workload is capped out or generation is off.
func (e *Engine) Quiescent() bool {
	for _, id := range e.targets {
		r := e.resps[id]
		if len(r.queue) > 0 || r.egress > 0 || r.reserved > 0 {
			return false
		}
	}
	if e.reqCap == 0 {
		return false
	}
	for _, id := range e.requesters {
		if e.reqs[id].issued < e.reqCap {
			return false
		}
	}
	return true
}

// pendingIDs returns node id's pending request IDs in ascending order
// (checkpoint serialization must not depend on map iteration order).
func (e *Engine) pendingIDs(id int) []uint64 {
	q := &e.reqs[id]
	ids := make([]uint64, 0, len(q.pending))
	//vichar:ordered keys are sorted ascending before any consumer sees them
	for req := range q.pending {
		ids = append(ids, req)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}
