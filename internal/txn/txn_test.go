package txn

import (
	"bytes"
	"strings"
	"testing"

	"vichar/internal/config"
	"vichar/internal/flit"
	"vichar/internal/snap"
	"vichar/internal/topology"
)

// fakeNet is a minimal Sender: it assigns packet IDs and records every
// packet the engine asks the network to inject.
type fakeNet struct {
	nextID uint64
	sent   []*flit.Packet
}

func (f *fakeNet) SendTxnPacket(src, dst, size int, kind, class uint8, req uint64) *flit.Packet {
	f.nextID++
	p := &flit.Packet{ID: f.nextID, Src: src, Dst: dst, Size: size, Kind: kind, Class: class, Req: req}
	f.sent = append(f.sent, p)
	return p
}

func (f *fakeNet) take() []*flit.Packet {
	s := f.sent
	f.sent = nil
	return s
}

func testCfg(memEdge bool) *config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Txn = config.TxnConfig{
		Enabled:       true,
		Rate:          1,
		Window:        2,
		ReadFrac:      1,
		ServiceCycles: 2,
		QueueDepth:    2,
		MemEdge:       memEdge,
	}
	return &cfg
}

func newEngine(cfg *config.Config) (*Engine, *fakeNet) {
	f := &fakeNet{}
	return New(cfg, topology.New(cfg.Width, cfg.Height), f), f
}

// harness drives an engine over a perfect one-cycle network: packets
// sent in cycle T eject in cycle T+1 (requests subject to the
// responder's admission gate), and response injections drain the NI
// instantly.
type harness struct {
	e        *Engine
	f        *fakeNet
	inflight []*flit.Packet
	now      int64
}

func (h *harness) step() {
	keep := h.inflight[:0]
	for _, p := range h.inflight {
		if r := h.e.Responder(p.Dst); r != nil && p.Class == ClassReq {
			if !r.Peek(int(p.Class)) {
				keep = append(keep, p)
				continue
			}
			r.Admit(int(p.Class))
		}
		h.e.OnEject(p, h.now, true)
	}
	h.inflight = keep
	h.e.Tick(h.now)
	for _, p := range h.f.take() {
		if IsResponse(p.Kind) {
			h.e.OnInjected(p.Src, p)
		}
		h.inflight = append(h.inflight, p)
	}
	h.now++
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not contain %q", r, want)
		}
	}()
	fn()
}

func TestKindHelpers(t *testing.T) {
	cases := []struct {
		kind     uint8
		name     string
		req, rsp bool
		class    uint8
		answer   uint8
	}{
		{None, "none", false, false, ClassReq, None},
		{ReadReq, "read-req", true, false, ClassReq, ReadRsp},
		{ReadRsp, "read-rsp", false, true, ClassRsp, None},
		{WriteReq, "write-req", true, false, ClassReq, WriteAck},
		{WriteAck, "write-ack", false, true, ClassRsp, None},
		{PostedWrite, "posted-write", true, false, ClassReq, None},
		{AtomicReq, "atomic-req", true, false, ClassReq, AtomicRsp},
		{AtomicRsp, "atomic-rsp", false, true, ClassRsp, None},
	}
	for _, c := range cases {
		if got := KindName(c.kind); got != c.name {
			t.Errorf("KindName(%d) = %q, want %q", c.kind, got, c.name)
		}
		if got := IsRequest(c.kind); got != c.req {
			t.Errorf("IsRequest(%s) = %v, want %v", c.name, got, c.req)
		}
		if got := IsResponse(c.kind); got != c.rsp {
			t.Errorf("IsResponse(%s) = %v, want %v", c.name, got, c.rsp)
		}
		if got := ClassOf(c.kind); got != c.class {
			t.Errorf("ClassOf(%s) = %d, want %d", c.name, got, c.class)
		}
		if got := responseOf(c.kind); got != c.answer {
			t.Errorf("responseOf(%s) = %s, want %s", c.name, KindName(got), KindName(c.answer))
		}
	}
	if got := KindName(99); got != "kind-99" {
		t.Errorf("KindName(99) = %q, want kind-99", got)
	}
}

func TestNodeRoles(t *testing.T) {
	cfg := testCfg(true)
	e, _ := newEngine(cfg)
	for id := 0; id < 16; id++ {
		edge := id%4 == 0 || id%4 == 3
		if gotResp := e.Responder(id) != nil; gotResp != edge {
			t.Errorf("node %d: responder = %v, want %v (memory-edge)", id, gotResp, edge)
		}
		if gotReq := e.reqs[id].stream != nil; gotReq != !edge {
			t.Errorf("node %d: requester = %v, want %v (memory-edge)", id, gotReq, !edge)
		}
	}
	if len(e.requesters) != 8 || len(e.targets) != 8 {
		t.Fatalf("memory-edge 4x4: %d requesters, %d targets, want 8/8", len(e.requesters), len(e.targets))
	}

	cfg = testCfg(false)
	e, _ = newEngine(cfg)
	if len(e.requesters) != 16 || len(e.targets) != 16 {
		t.Fatalf("uniform 4x4: %d requesters, %d targets, want 16/16", len(e.requesters), len(e.targets))
	}
}

func TestClassAssignment(t *testing.T) {
	cfg := testCfg(true)
	e, _ := newEngine(cfg)
	if e.Classes() != 2 {
		t.Fatalf("class-separated engine: Classes() = %d, want 2", e.Classes())
	}
	if e.classFor(ReadReq) != ClassReq || e.classFor(ReadRsp) != ClassRsp {
		t.Fatal("class separation must put requests on class 0 and responses on class 1")
	}

	cfg.Txn.SharedVCs = true
	e, _ = newEngine(cfg)
	if e.Classes() != 1 {
		t.Fatalf("shared-VC engine: Classes() = %d, want 1", e.Classes())
	}
	if e.classFor(ReadRsp) != ClassReq {
		t.Fatal("shared VCs must collapse responses onto class 0")
	}
}

func TestWindowGatesGeneration(t *testing.T) {
	cfg := testCfg(false)
	e, f := newEngine(cfg)
	for cycle := int64(0); cycle < 4; cycle++ {
		e.Tick(cycle)
	}
	// Rate 1 with window 2 and no retirements: exactly two requests per
	// node, then every requester stalls at its window.
	if got, want := e.Issued(), int64(2*16); got != want {
		t.Fatalf("issued %d requests, want %d (window-capped)", got, want)
	}
	if got := e.Outstanding(); got != e.Issued() {
		t.Fatalf("outstanding %d, want all %d in flight", got, e.Issued())
	}
	for _, p := range f.take() {
		if p.Src == p.Dst {
			t.Fatalf("request %d targets its own node %d", p.ID, p.Src)
		}
		if p.Kind != ReadReq || p.Class != ClassReq || p.Req != 0 || p.Size != 1 {
			t.Fatalf("pure-read mix produced %s class %d req %d size %d", KindName(p.Kind), p.Class, p.Req, p.Size)
		}
	}
	if e.Done() || e.Quiescent() {
		t.Fatal("uncapped workload must never report Done or Quiescent")
	}
}

func TestCappedWorkloadDrains(t *testing.T) {
	cfg := testCfg(true)
	cfg.Txn.ReadFrac, cfg.Txn.WriteFrac, cfg.Txn.AtomicFrac = 1, 1, 1
	cfg.Txn.PostedFrac = 0.5
	cfg.Txn.Requests = 5
	e, f := newEngine(cfg)
	h := &harness{e: e, f: f}
	for !e.Done() {
		if h.now > 10_000 {
			t.Fatalf("capped workload not drained after %d cycles: %d/%d retired",
				h.now, e.Retired(), e.Issued())
		}
		h.step()
	}
	want := int64(5 * len(e.requesters))
	if e.Issued() != want || e.Retired() != want {
		t.Fatalf("drained with %d issued / %d retired, want %d of each", e.Issued(), e.Retired(), want)
	}
	if e.Outstanding() != 0 {
		t.Fatalf("drained engine reports %d outstanding", e.Outstanding())
	}
	if got := len(e.Samples()); got != int(want) {
		t.Fatalf("recorded %d latency samples, want one per transaction (%d)", got, want)
	}
	for _, s := range e.Samples() {
		if s < 1 {
			t.Fatalf("latency sample %d cycles; the perfect network still takes a round trip", s)
		}
	}
	// Let the in-service posted writes finish, then the layer is fully
	// quiescent.
	for i := 0; i < cfg.Txn.ServiceCycles+1; i++ {
		h.step()
	}
	if !e.Quiescent() {
		t.Fatal("drained and serviced engine must be quiescent")
	}
}

func TestPostedWriteRetiresAtTarget(t *testing.T) {
	cfg := testCfg(true)
	cfg.Txn.ReadFrac, cfg.Txn.WriteFrac = 0, 1
	cfg.Txn.PostedFrac = 1
	cfg.Txn.Window = 1
	cfg.Txn.Requests = 1
	e, f := newEngine(cfg)

	e.Tick(0)
	sent := f.take()
	if len(sent) != len(e.requesters) {
		t.Fatalf("sent %d requests, want one per requester (%d)", len(sent), len(e.requesters))
	}
	p := sent[0]
	if p.Kind != PostedWrite || p.Size != cfg.PacketSize {
		t.Fatalf("posted-write mix produced %s size %d, want posted-write size %d",
			KindName(p.Kind), p.Size, cfg.PacketSize)
	}
	r := e.Responder(p.Dst)
	if !r.Peek(int(ClassReq)) {
		t.Fatal("idle responder refused admission")
	}
	r.Admit(int(ClassReq))
	e.OnEject(p, 1, true)
	if e.Retired() != 1 {
		t.Fatalf("posted write must retire at tail ejection, retired = %d", e.Retired())
	}
	if r.occupied() != 1 {
		t.Fatalf("posted write must hold its service slot, occupied = %d", r.occupied())
	}
	// Service completes with no response injected; the slot frees
	// silently.
	e.Tick(1 + int64(cfg.Txn.ServiceCycles))
	if got := f.take(); len(got) != 0 {
		t.Fatalf("posted-write completion injected %d packets, want none", len(got))
	}
	if r.occupied() != 0 {
		t.Fatalf("serviced posted write must free its slot, occupied = %d", r.occupied())
	}
}

func TestResponderAdmission(t *testing.T) {
	r := &Responder{depth: 2}
	if !r.Peek(int(ClassRsp)) || !r.Peek(int(ClassReq)) {
		t.Fatal("empty responder must admit both classes")
	}
	r.Admit(int(ClassReq))
	r.Admit(int(ClassReq))
	if r.Peek(int(ClassReq)) {
		t.Fatal("full responder must refuse request-class admission")
	}
	if !r.Peek(int(ClassRsp)) {
		t.Fatal("responses bypass the admission gate even at a full queue")
	}
	r.Admit(int(ClassRsp)) // no-op: responses take no slot
	if r.occupied() != 2 {
		t.Fatalf("response admission took a slot: occupied = %d, want 2", r.occupied())
	}
	mustPanic(t, "admission beyond queue depth", func() { r.Admit(int(ClassReq)) })
	mustPanic(t, "without an egress slot", func() { r.Injected() })
}

func TestOnEjectInvariants(t *testing.T) {
	cfg := testCfg(true)
	e, _ := newEngine(cfg)
	interior, edge := 1, 0 // node 1 is a requester, node 0 a memory edge

	t.Run("request-at-non-responder", func(t *testing.T) {
		mustPanic(t, "non-responder", func() {
			e.OnEject(&flit.Packet{Kind: ReadReq, Class: ClassReq, Src: edge, Dst: interior}, 0, false)
		})
	})
	t.Run("eject-without-admission", func(t *testing.T) {
		mustPanic(t, "no admission reserved", func() {
			e.OnEject(&flit.Packet{Kind: None, Class: ClassReq, Src: interior, Dst: edge}, 0, false)
		})
	})
	t.Run("retire-unknown-request", func(t *testing.T) {
		mustPanic(t, "unknown request", func() {
			e.OnEject(&flit.Packet{Kind: ReadRsp, Class: ClassRsp, Src: edge, Dst: interior, Req: 12345}, 0, false)
		})
	})
}

func TestPlainPacketReleasesReservation(t *testing.T) {
	cfg := testCfg(true)
	e, _ := newEngine(cfg)
	r := e.Responder(0)
	r.Admit(int(ClassReq))
	e.OnEject(&flit.Packet{Kind: None, Class: ClassReq, Src: 1, Dst: 0}, 0, false)
	if r.occupied() != 0 {
		t.Fatalf("plain packet must only release its reservation, occupied = %d", r.occupied())
	}
	if e.Retired() != 0 || len(r.queue) != 0 {
		t.Fatal("plain packet must neither retire nor enter service")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := testCfg(true)
	cfg.Txn.Rate = 0.5
	cfg.Txn.ReadFrac, cfg.Txn.WriteFrac, cfg.Txn.AtomicFrac = 1, 1, 1
	cfg.Txn.PostedFrac = 0.5
	e1, f1 := newEngine(cfg)
	h := &harness{e: e1, f: f1}
	for i := 0; i < 25; i++ {
		h.step()
	}
	if e1.Outstanding() == 0 {
		t.Fatal("snapshot cut must land mid-flight to exercise pending state")
	}
	// Pin a non-trivial egress count so the cut covers responses still
	// draining their source interface.
	e1.resps[0].egress++

	w1 := snap.NewWriter()
	e1.SaveState(w1)
	blob := w1.Finish()

	r, err := snap.Open(blob)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	e2, f2 := newEngine(cfg)
	if err := e2.LoadState(r); err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	w2 := snap.NewWriter()
	e2.SaveState(w2)
	if !bytes.Equal(blob, w2.Finish()) {
		t.Fatal("re-saved snapshot differs from the original blob")
	}

	// The restored engine must continue bit-identically: same packets,
	// same counters, for the same perfect-network schedule.
	f2.nextID = f1.nextID
	h2 := &harness{e: e2, f: f2, now: h.now}
	h2.inflight = append(h2.inflight, h.inflight...)
	for i := 0; i < 50; i++ {
		h.step()
		h2.step()
	}
	if e1.Issued() != e2.Issued() || e1.Retired() != e2.Retired() {
		t.Fatalf("resumed run diverged: %d/%d issued, %d/%d retired",
			e1.Issued(), e2.Issued(), e1.Retired(), e2.Retired())
	}
	s1, s2 := e1.Samples(), e2.Samples()
	if len(s1) != len(s2) {
		t.Fatalf("resumed run recorded %d samples, original %d", len(s2), len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d diverged: %d vs %d cycles", i, s1[i], s2[i])
		}
	}
}

// loadStateCfg is the smallest memory-edge mesh: a 3x2 with one
// interior requester column (nodes 1 and 4) and four edge targets.
func loadStateCfg() *config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 3, 2
	cfg.Txn = config.TxnConfig{Enabled: true, Rate: 0.5, MemEdge: true}
	return &cfg
}

func TestLoadStateRejectsCorruptCounts(t *testing.T) {
	cfg := loadStateCfg()

	t.Run("pending-beyond-flight", func(t *testing.T) {
		w := snap.NewWriter()
		w.Section("txn")
		w.I64(0) // issued
		w.I64(0) // retired
		w.I64s(nil)
		for range 2 { // requester nodes 1 and 4
			w.I64(1) // seed
			w.U64(0) // draws
			w.Int(0) // flight
			w.Int(0) // issued
			w.Int(1) // pending count > flight
			w.U64(7)
			w.I64(3)
		}
		r, err := snap.Open(w.Finish())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		e, _ := newEngine(cfg)
		if err := e.LoadState(r); err == nil || !strings.Contains(err.Error(), "pending entries") {
			t.Fatalf("LoadState = %v, want pending-count validation error", err)
		}
	})

	t.Run("queue-beyond-depth", func(t *testing.T) {
		w := snap.NewWriter()
		w.Section("txn")
		w.I64(0)
		w.I64(0)
		w.I64s(nil)
		for range 2 { // valid, empty requesters
			w.I64(1)
			w.U64(0)
			w.Int(0)
			w.Int(0)
			w.Int(0)
		}
		w.Int(0)                                 // target 0: reserved
		w.Int(0)                                 // egress
		w.Int(cfg.Txn.EffectiveQueueDepth() + 1) // queued services beyond depth
		for range cfg.Txn.EffectiveQueueDepth() + 1 {
			w.I64(0)
			w.U8(ReadRsp)
			w.U64(1)
			w.Int(1)
		}
		r, err := snap.Open(w.Finish())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		e, _ := newEngine(cfg)
		if err := e.LoadState(r); err == nil || !strings.Contains(err.Error(), "beyond depth") {
			t.Fatalf("LoadState = %v, want queue-depth validation error", err)
		}
	})

	t.Run("wrong-section", func(t *testing.T) {
		w := snap.NewWriter()
		w.Section("gen")
		r, err := snap.Open(w.Finish())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		e, _ := newEngine(cfg)
		if err := e.LoadState(r); err == nil {
			t.Fatal("LoadState accepted a foreign section")
		}
	})
}
