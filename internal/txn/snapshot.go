package txn

import (
	"fmt"

	"vichar/internal/rng"
	"vichar/internal/snap"
)

// SaveState serializes the engine into the checkpoint writer: global
// transaction counts and latency samples, each requester's rng
// position, window and pending table (IDs ascending), and each
// responder's admission and service-queue state. Node roles are
// derived from the configuration at restore, so only per-role payloads
// are written.
func (e *Engine) SaveState(w *snap.Writer) {
	w.Section("txn")
	w.I64(e.issued)
	w.I64(e.retired)
	w.I64s(e.samples)
	for _, id := range e.requesters {
		q := &e.reqs[id]
		w.I64(q.stream.Seed())
		w.U64(q.stream.Draws())
		w.Int(q.flight)
		w.Int(q.issued)
		w.Int(len(q.pending))
		for _, req := range e.pendingIDs(id) {
			w.U64(req)
			w.I64(q.pending[req])
		}
	}
	for _, id := range e.targets {
		r := e.resps[id]
		w.Int(r.reserved)
		w.Int(r.egress)
		w.Int(len(r.queue))
		for _, s := range r.queue {
			w.I64(s.readyAt)
			w.U8(s.kind)
			w.U64(s.req)
			w.Int(s.dst)
		}
	}
}

// LoadState restores the engine from the checkpoint reader. The
// engine must have been built with New over the same configuration
// that produced the snapshot.
func (e *Engine) LoadState(r *snap.Reader) error {
	if err := r.Section("txn"); err != nil {
		return err
	}
	e.issued = r.I64()
	e.retired = r.I64()
	e.samples = r.I64sAppend(e.samples[:0])
	for _, id := range e.requesters {
		q := &e.reqs[id]
		seed := r.I64()
		draws := r.U64()
		q.flight = r.Int()
		q.issued = r.Int()
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if n < 0 || n > q.flight {
			return fmt.Errorf("txn: node %d: %d pending entries for %d in flight", id, n, q.flight)
		}
		q.stream = rng.Restore(seed, draws)
		q.pending = make(map[uint64]int64, n)
		for i := 0; i < n; i++ {
			req := r.U64()
			q.pending[req] = r.I64()
		}
	}
	for _, id := range e.targets {
		resp := e.resps[id]
		resp.reserved = r.Int()
		resp.egress = r.Int()
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if n < 0 || n > resp.depth {
			return fmt.Errorf("txn: node %d: %d queued services beyond depth %d", id, n, resp.depth)
		}
		resp.queue = resp.queue[:0]
		for i := 0; i < n; i++ {
			resp.queue = append(resp.queue, service{
				readyAt: r.I64(),
				kind:    r.U8(),
				req:     r.U64(),
				dst:     r.Int(),
			})
		}
	}
	return r.Err()
}
