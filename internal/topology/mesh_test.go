package topology

import (
	"testing"
	"testing/quick"
)

func TestCoordinateRoundTrip(t *testing.T) {
	m := New(8, 8)
	for n := 0; n < m.Nodes(); n++ {
		x, y := m.XY(n)
		if m.Node(x, y) != n {
			t.Fatalf("node %d -> (%d,%d) -> %d", n, x, y, m.Node(x, y))
		}
	}
}

func TestRowMajorLayout(t *testing.T) {
	m := New(4, 3)
	if m.Nodes() != 12 {
		t.Fatalf("nodes %d", m.Nodes())
	}
	if m.Node(0, 0) != 0 || m.Node(3, 0) != 3 || m.Node(0, 1) != 4 || m.Node(3, 2) != 11 {
		t.Fatal("row-major layout broken")
	}
}

func TestNeighbors(t *testing.T) {
	m := New(4, 4)
	center := m.Node(1, 1)
	cases := []struct {
		port int
		x, y int
	}{
		{North, 1, 0},
		{East, 2, 1},
		{South, 1, 2},
		{West, 0, 1},
	}
	for _, c := range cases {
		nb, ok := m.Neighbor(center, c.port)
		if !ok || nb != m.Node(c.x, c.y) {
			t.Errorf("port %s: got %d ok=%v, want %d", PortName(c.port), nb, ok, m.Node(c.x, c.y))
		}
	}
	if _, ok := m.Neighbor(center, Local); ok {
		t.Error("local port has a neighbor")
	}
}

func TestEdgesHaveNoNeighbor(t *testing.T) {
	m := New(4, 4)
	if _, ok := m.Neighbor(m.Node(0, 0), North); ok {
		t.Error("north of top row exists")
	}
	if _, ok := m.Neighbor(m.Node(0, 0), West); ok {
		t.Error("west of left column exists")
	}
	if _, ok := m.Neighbor(m.Node(3, 3), South); ok {
		t.Error("south of bottom row exists")
	}
	if _, ok := m.Neighbor(m.Node(3, 3), East); ok {
		t.Error("east of right column exists")
	}
}

// Property: neighborship is symmetric through opposite ports.
func TestNeighborSymmetry(t *testing.T) {
	m := New(6, 5)
	prop := func(n uint8, p uint8) bool {
		node := int(n) % m.Nodes()
		port := int(p) % 4
		nb, ok := m.Neighbor(node, port)
		if !ok {
			return true
		}
		back, ok2 := m.Neighbor(nb, Opposite(port))
		return ok2 && back == node
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]int{{North, South}, {East, West}}
	for _, p := range pairs {
		if Opposite(p[0]) != p[1] || Opposite(p[1]) != p[0] {
			t.Errorf("opposite of %s/%s wrong", PortName(p[0]), PortName(p[1]))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Opposite(Local) did not panic")
		}
	}()
	Opposite(Local)
}

func TestHops(t *testing.T) {
	m := New(8, 8)
	if m.Hops(m.Node(0, 0), m.Node(7, 7)) != 14 {
		t.Error("corner-to-corner hops wrong")
	}
	if m.Hops(m.Node(3, 3), m.Node(3, 3)) != 0 {
		t.Error("self hops nonzero")
	}
	if m.Hops(m.Node(2, 5), m.Node(6, 1)) != 8 {
		t.Error("manhattan distance wrong")
	}
}

func TestPortNames(t *testing.T) {
	want := map[int]string{North: "N", East: "E", South: "S", West: "W", Local: "L"}
	for p, n := range want {
		if PortName(p) != n {
			t.Errorf("port %d named %q", p, PortName(p))
		}
	}
	if PortName(9) != "port9" {
		t.Errorf("unknown port named %q", PortName(9))
	}
}

func TestPanics(t *testing.T) {
	m := New(4, 4)
	for i, f := range []func(){
		func() { New(0, 4) },
		func() { m.XY(-1) },
		func() { m.XY(16) },
		func() { m.Node(4, 0) },
		func() { m.Node(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTorusWraparound(t *testing.T) {
	m := NewTorus(4, 3)
	// East from the last column wraps to the first.
	if nb, ok := m.Neighbor(m.Node(3, 1), East); !ok || nb != m.Node(0, 1) {
		t.Fatalf("east wrap -> %d, %v", nb, ok)
	}
	if nb, ok := m.Neighbor(m.Node(0, 1), West); !ok || nb != m.Node(3, 1) {
		t.Fatalf("west wrap -> %d, %v", nb, ok)
	}
	if nb, ok := m.Neighbor(m.Node(2, 0), North); !ok || nb != m.Node(2, 2) {
		t.Fatalf("north wrap -> %d, %v", nb, ok)
	}
	if nb, ok := m.Neighbor(m.Node(2, 2), South); !ok || nb != m.Node(2, 0) {
		t.Fatalf("south wrap -> %d, %v", nb, ok)
	}
	if _, ok := m.Neighbor(0, Local); ok {
		t.Fatal("local port has a neighbor on torus")
	}
}

func TestTorusHops(t *testing.T) {
	m := NewTorus(8, 8)
	// Corner to corner is 2 hops on a torus (1 wrap in each dim).
	if got := m.Hops(m.Node(0, 0), m.Node(7, 7)); got != 2 {
		t.Fatalf("torus corner hops %d, want 2", got)
	}
	// Half-way around: 4 in each dimension.
	if got := m.Hops(m.Node(0, 0), m.Node(4, 4)); got != 8 {
		t.Fatalf("torus half-way hops %d, want 8", got)
	}
	// Mesh distances unchanged when shorter.
	if got := m.Hops(m.Node(1, 1), m.Node(3, 2)); got != 3 {
		t.Fatalf("short torus hops %d, want 3", got)
	}
}

// Property: torus neighborship stays symmetric through opposite ports
// including across the wrap.
func TestTorusNeighborSymmetry(t *testing.T) {
	m := NewTorus(5, 4)
	for node := 0; node < m.Nodes(); node++ {
		for port := 0; port < Local; port++ {
			nb, ok := m.Neighbor(node, port)
			if !ok {
				t.Fatalf("torus node %d port %s has no neighbor", node, PortName(port))
			}
			back, ok := m.Neighbor(nb, Opposite(port))
			if !ok || back != node {
				t.Fatalf("torus symmetry broken at %d port %s", node, PortName(port))
			}
		}
	}
}
