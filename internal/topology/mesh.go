// Package topology models the 2-D mesh interconnect the paper
// evaluates on: every node couples a router to a processing element;
// routers have four cardinal ports plus the local PE port.
package topology

import "fmt"

// Port indices of a 5-port mesh router. The four cardinal directions
// carry inter-router links; Local connects the processing element.
const (
	North = 0
	East  = 1
	South = 2
	West  = 3
	Local = 4
	// NumPorts is the router radix P (paper: P=5).
	NumPorts = 5
)

// PortName returns the conventional name of a port index.
func PortName(p int) string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("port%d", p)
	}
}

// Opposite returns the port on the far side of a link: a flit leaving
// through North enters its neighbor through South, and so on. Local
// has no opposite and panics.
func Opposite(p int) int {
	switch p {
	case North:
		return South
	case East:
		return West
	case South:
		return North
	case West:
		return East
	default:
		panic(fmt.Sprintf("topology: port %s has no opposite", PortName(p)))
	}
}

// Mesh is a Width x Height 2-D mesh, optionally with wraparound links
// in both dimensions (a 2-D torus). Node IDs are row-major:
// node = y*Width + x, with x growing East and y growing South.
type Mesh struct {
	Width, Height int
	// Torus adds the wraparound links: leaving East from the last
	// column arrives at the first, and so on. Wrap links close rings,
	// so routing over them needs escape channels for deadlock
	// recovery.
	Torus bool
}

// New returns a mesh of the given dimensions.
func New(width, height int) Mesh {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("topology: mesh dimensions must be positive, got %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// NewTorus returns a torus of the given dimensions.
func NewTorus(width, height int) Mesh {
	m := New(width, height)
	m.Torus = true
	return m
}

// Nodes returns the node count.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// XY returns the coordinates of a node.
func (m Mesh) XY(node int) (x, y int) {
	if node < 0 || node >= m.Nodes() {
		panic(fmt.Sprintf("topology: node %d outside %dx%d mesh", node, m.Width, m.Height))
	}
	return node % m.Width, node / m.Width
}

// Node returns the node at the given coordinates.
func (m Mesh) Node(x, y int) int {
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		panic(fmt.Sprintf("topology: (%d,%d) outside %dx%d mesh", x, y, m.Width, m.Height))
	}
	return y*m.Width + x
}

// Neighbor returns the node reached by leaving node through the given
// cardinal port, and whether such a neighbor exists. On a mesh, edge
// routers lack some neighbors; on a torus every cardinal port wraps.
// Local never has one.
func (m Mesh) Neighbor(node, port int) (int, bool) {
	x, y := m.XY(node)
	switch port {
	case North:
		y--
	case East:
		x++
	case South:
		y++
	case West:
		x--
	default:
		return 0, false
	}
	if m.Torus {
		x = (x + m.Width) % m.Width
		y = (y + m.Height) % m.Height
		return m.Node(x, y), true
	}
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		return 0, false
	}
	return m.Node(x, y), true
}

// Degree returns the number of connected cardinal ports at node: its
// inter-router link count. Interior mesh nodes and every torus node
// have all four; mesh edges and corners have fewer.
func (m Mesh) Degree(node int) int {
	d := 0
	for p := 0; p < Local; p++ {
		if _, ok := m.Neighbor(node, p); ok {
			d++
		}
	}
	return d
}

// Hops returns the minimal hop distance between two nodes, accounting
// for wraparound on a torus.
func (m Mesh) Hops(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	if m.Torus {
		if w := m.Width - dx; w < dx {
			dx = w
		}
		if w := m.Height - dy; w < dy {
			dy = w
		}
	}
	return dx + dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
