package traffic

import (
	"math"
	"testing"
	"vichar/internal/rng"
	"vichar/internal/snap"

	"vichar/internal/config"
	"vichar/internal/topology"
)

func cfgWith(proc config.TrafficProcess, dest config.DestPattern, rate float64, seed int64) *config.Config {
	cfg := config.Default()
	cfg.Traffic = proc
	cfg.Dest = dest
	cfg.InjectionRate = rate
	cfg.Seed = seed
	return &cfg
}

// countPackets runs the generator for cycles and returns total packet
// creations and per-node counts.
func countPackets(g *Generator, mesh topology.Mesh, cycles int64) (total int64, perNode []int64) {
	perNode = make([]int64, mesh.Nodes())
	for now := int64(1); now <= cycles; now++ {
		g.Tick(now, func(src, dst, size int) {
			total++
			perNode[src]++
		})
	}
	return total, perNode
}

func TestUniformRandomRateAccuracy(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0.30, 1)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	const cycles = 20_000
	total, _ := countPackets(g, mesh, cycles)
	gotRate := float64(total) * float64(cfg.PacketSize) / (cycles * float64(mesh.Nodes()))
	if math.Abs(gotRate-0.30) > 0.01 {
		t.Fatalf("offered load %.4f, want 0.30 ± 0.01", gotRate)
	}
}

func TestSelfSimilarRateAccuracy(t *testing.T) {
	cfg := cfgWith(config.SelfSimilar, config.NormalRandom, 0.25, 2)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	const cycles = 60_000
	total, _ := countPackets(g, mesh, cycles)
	gotRate := float64(total) * float64(cfg.PacketSize) / (cycles * float64(mesh.Nodes()))
	// Heavy-tailed sources converge slowly; allow a loose band.
	if math.Abs(gotRate-0.25) > 0.05 {
		t.Fatalf("self-similar offered load %.4f, want 0.25 ± 0.05", gotRate)
	}
}

// Self-similar traffic must be burstier than Bernoulli at equal mean
// rate: the variance of per-window packet counts should be clearly
// larger.
func TestSelfSimilarBurstiness(t *testing.T) {
	const rate, cycles, window = 0.25, 40_000, 100
	variance := func(proc config.TrafficProcess) float64 {
		cfg := cfgWith(proc, config.NormalRandom, rate, 3)
		cfg.Width, cfg.Height = 2, 2 // few sources: bursts stay visible
		mesh := topology.New(cfg.Width, cfg.Height)
		g := New(cfg, mesh)
		var counts []float64
		cur := 0.0
		for now := int64(1); now <= cycles; now++ {
			g.Tick(now, func(src, dst, size int) { cur++ })
			if now%window == 0 {
				counts = append(counts, cur)
				cur = 0
			}
		}
		mean := 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		v := 0.0
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(len(counts))
	}
	vUR := variance(config.UniformRandom)
	vSS := variance(config.SelfSimilar)
	if vSS < 2*vUR {
		t.Fatalf("self-similar variance %.2f not clearly above Bernoulli %.2f", vSS, vUR)
	}
}

func TestDeterminism(t *testing.T) {
	for _, proc := range []config.TrafficProcess{config.UniformRandom, config.SelfSimilar} {
		cfg := cfgWith(proc, config.NormalRandom, 0.2, 77)
		mesh := topology.New(cfg.Width, cfg.Height)
		record := func() [][2]int {
			g := New(cfg, mesh)
			var events [][2]int
			for now := int64(1); now <= 3000; now++ {
				g.Tick(now, func(src, dst, size int) { events = append(events, [2]int{src, dst}) })
			}
			return events
		}
		a, b := record(), record()
		if len(a) != len(b) {
			t.Fatalf("%v: runs produced %d vs %d events", proc, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: event %d diverged: %v vs %v", proc, i, a[i], b[i])
			}
		}
	}
}

// TestSeedReproducibilityAllPatterns extends TestDeterminism across
// every destination pattern and the variable-size packet protocol:
// the full (src, dst, size) event stream must replay bit-for-bit from
// Config.Seed alone. All generator randomness flows from per-node
// streams seeded off Config.Seed — the static ambient-entropy lint
// rule keeps it that way; this test catches everything else (e.g. an
// iteration-order dependence in the source scan).
func TestSeedReproducibilityAllPatterns(t *testing.T) {
	patterns := []config.DestPattern{
		config.NormalRandom, config.Tornado, config.Transpose,
		config.BitComplement, config.Hotspot,
	}
	for _, dest := range patterns {
		for _, proc := range []config.TrafficProcess{config.UniformRandom, config.SelfSimilar} {
			cfg := cfgWith(proc, dest, 0.2, 99)
			cfg.PacketSizeMax = cfg.PacketSize + 3
			mesh := topology.New(cfg.Width, cfg.Height)
			record := func() [][3]int {
				g := New(cfg, mesh)
				var events [][3]int
				for now := int64(1); now <= 2000; now++ {
					g.Tick(now, func(src, dst, size int) { events = append(events, [3]int{src, dst, size}) })
				}
				return events
			}
			a, b := record(), record()
			if len(a) != len(b) {
				t.Fatalf("%v/%v: runs produced %d vs %d events", proc, dest, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v/%v: event %d diverged: %v vs %v", proc, dest, i, a[i], b[i])
				}
			}
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	cfg1 := cfgWith(config.UniformRandom, config.NormalRandom, 0.2, 1)
	cfg2 := cfgWith(config.UniformRandom, config.NormalRandom, 0.2, 2)
	mesh := topology.New(cfg1.Width, cfg1.Height)
	count := func(cfg *config.Config) int64 {
		g := New(cfg, mesh)
		var events int64
		var first int64 = -1
		for now := int64(1); now <= 500; now++ {
			g.Tick(now, func(src, dst, size int) {
				events++
				if first < 0 {
					first = now*1000 + int64(src)
				}
			})
		}
		return first
	}
	if count(cfg1) == count(cfg2) {
		t.Fatal("different seeds produced identical first event")
	}
}

func TestNormalRandomNeverSelf(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0.5, 5)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	for now := int64(1); now <= 2000; now++ {
		g.Tick(now, func(src, dst, size int) {
			if src == dst {
				t.Fatalf("self-addressed packet at node %d", src)
			}
			if dst < 0 || dst >= mesh.Nodes() {
				t.Fatalf("destination %d out of range", dst)
			}
		})
	}
}

func TestNormalRandomCoversAllDestinations(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0.5, 6)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	seen := map[int]bool{}
	for i := 0; i < 20_000; i++ {
		seen[g.Destination(0)] = true
	}
	if len(seen) != mesh.Nodes()-1 {
		t.Fatalf("node 0 reached %d destinations of %d", len(seen), mesh.Nodes()-1)
	}
}

func TestTornadoPattern(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Tornado, 0.2, 7)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	// Tornado on a width-8 mesh: dst x = (x + 3) mod 8, same y.
	for src := 0; src < mesh.Nodes(); src++ {
		dst := g.Destination(src)
		sx, sy := mesh.XY(src)
		dx, dy := mesh.XY(dst)
		if dy != sy || dx != (sx+3)%8 {
			t.Fatalf("tornado %d(%d,%d) -> %d(%d,%d)", src, sx, sy, dst, dx, dy)
		}
	}
}

func TestTornadoTinyMesh(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Tornado, 0.2, 8)
	cfg.Width, cfg.Height = 2, 2
	mesh := topology.New(2, 2)
	g := New(cfg, mesh)
	for src := 0; src < 4; src++ {
		if dst := g.Destination(src); dst == src {
			t.Fatalf("tornado self-addressed on 2x2 at node %d", src)
		}
	}
}

func TestZeroRateGeneratesNothing(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0, 9)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	total, _ := countPackets(g, mesh, 2000)
	if total != 0 {
		t.Fatalf("zero rate produced %d packets", total)
	}
}

func TestSelfSimilarAtPeakPanics(t *testing.T) {
	cfg := cfgWith(config.SelfSimilar, config.NormalRandom, 1.0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("self-similar at the ON-peak did not panic")
		}
	}()
	New(cfg, topology.New(cfg.Width, cfg.Height))
}

func TestParetoProperties(t *testing.T) {
	rng := newTestRand(11)
	const mean = 40.0
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		d := pareto(rng, 1.9, mean)
		if d < 1 {
			t.Fatal("pareto draw below 1")
		}
		sum += float64(d)
	}
	got := sum / n
	// alpha=1.9 has finite mean but huge variance; accept a wide band.
	if got < mean*0.7 || got > mean*1.6 {
		t.Fatalf("pareto mean %.1f, want ≈%.1f", got, mean)
	}
}

// newTestRand builds the same RNG type the generator uses.
func newTestRand(seed int64) *rng.Stream { return rng.New(seed) }

func TestTransposePattern(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Transpose, 0.2, 12)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	for src := 0; src < mesh.Nodes(); src++ {
		dst := g.Destination(src)
		sx, sy := mesh.XY(src)
		dx, dy := mesh.XY(dst)
		if sx == sy {
			// Diagonal nodes transpose onto themselves; the generator
			// must redraw so the node still offers load.
			if dst == src {
				t.Fatalf("transpose diagonal (%d,%d) -> itself", sx, sy)
			}
			continue
		}
		if dx != sy || dy != sx {
			t.Fatalf("transpose (%d,%d) -> (%d,%d)", sx, sy, dx, dy)
		}
	}
}

func TestBitComplementPattern(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.BitComplement, 0.2, 13)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	for src := 0; src < mesh.Nodes(); src++ {
		if dst := g.Destination(src); dst != mesh.Nodes()-1-src {
			t.Fatalf("bit complement %d -> %d", src, dst)
		}
	}
}

func TestHotspotPattern(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Hotspot, 0.2, 14)
	cfg.HotspotFraction = 0.5
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	hits := 0
	const draws = 10_000
	for i := 0; i < draws; i++ {
		if g.Destination(0) == g.HotNode() {
			hits++
		}
	}
	// 50% directed plus the uniform component's occasional hot pick.
	frac := float64(hits) / draws
	if frac < 0.45 || frac > 0.60 {
		t.Fatalf("hotspot fraction %.3f, want ≈0.5", frac)
	}
	// The hot node itself never self-addresses.
	for i := 0; i < 1000; i++ {
		if g.Destination(g.HotNode()) == g.HotNode() {
			t.Fatal("hot node self-addressed")
		}
	}
}

func TestHotspotDefaultFraction(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Hotspot, 0.2, 15)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	hits := 0
	const draws = 20_000
	for i := 0; i < draws; i++ {
		if g.Destination(0) == g.HotNode() {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.08 || frac > 0.16 {
		t.Fatalf("default hotspot fraction %.3f, want ≈0.1", frac)
	}
}

func TestVariablePacketSizes(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0.2, 16)
	cfg.PacketSize, cfg.PacketSizeMax = 2, 6
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	seen := map[int]int{}
	for i := 0; i < 20_000; i++ {
		s := g.PacketSize(3)
		if s < 2 || s > 6 {
			t.Fatalf("size %d outside [2,6]", s)
		}
		seen[s]++
	}
	for s := 2; s <= 6; s++ {
		if seen[s] == 0 {
			t.Fatalf("size %d never drawn", s)
		}
	}
}

// The offered flit rate must stay calibrated when packet sizes vary.
func TestVariableSizeRateAccuracy(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.NormalRandom, 0.30, 17)
	cfg.PacketSize, cfg.PacketSizeMax = 2, 6 // mean 4
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	var flits int64
	const cycles = 20_000
	for now := int64(1); now <= cycles; now++ {
		g.Tick(now, func(src, dst, size int) { flits += int64(size) })
	}
	got := float64(flits) / (cycles * float64(mesh.Nodes()))
	if math.Abs(got-0.30) > 0.015 {
		t.Fatalf("variable-size offered load %.4f, want 0.30", got)
	}
}

// Every destination pattern must deliver the configured offered load
// at every node. Fixed permutations self-map some sources (Transpose
// on the mesh diagonal, Bit-Complement on an odd mesh's center);
// before the redraw fallback those nodes silently never injected.
func TestOfferedLoadDeliveredAllPatterns(t *testing.T) {
	patterns := []struct {
		name string
		dest config.DestPattern
	}{
		{"normal-random", config.NormalRandom},
		{"tornado", config.Tornado},
		{"transpose", config.Transpose},
		{"bit-complement", config.BitComplement},
		{"hotspot", config.Hotspot},
	}
	meshes := []struct {
		name          string
		width, height int
	}{
		{"4x4", 4, 4},
		{"3x3", 3, 3}, // odd: Bit-Complement self-maps the center node
	}
	const (
		rate   = 0.20
		cycles = 20_000
	)
	for _, m := range meshes {
		for _, pat := range patterns {
			t.Run(m.name+"/"+pat.name, func(t *testing.T) {
				cfg := cfgWith(config.UniformRandom, pat.dest, rate, 99)
				cfg.Width, cfg.Height = m.width, m.height
				mesh := topology.New(cfg.Width, cfg.Height)
				g := New(cfg, mesh)
				perNode := make([]int64, mesh.Nodes())
				for now := int64(1); now <= cycles; now++ {
					g.Tick(now, func(src, dst, size int) {
						if src == dst {
							t.Fatalf("self-addressed packet at node %d", src)
						}
						perNode[src]++
					})
				}
				for node, pkts := range perNode {
					got := float64(pkts) * float64(cfg.PacketSize) / cycles
					if math.Abs(got-rate) > 0.03 {
						t.Fatalf("node %d offered load %.4f, want %.2f ± 0.03", node, got, rate)
					}
				}
			})
		}
	}
}

// TestTransposeIsPermutation pins the satellite fix for transpose on
// rectangles: on the (square) meshes Validate admits, the
// deterministic part of the pattern must be a bijection — no
// off-diagonal node may be targeted by two sources or by none.
func TestTransposeIsPermutation(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Transpose, 0.2, 20)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	hits := make([]int, mesh.Nodes())
	for src := 0; src < mesh.Nodes(); src++ {
		x, y := mesh.XY(src)
		if x == y {
			continue // diagonal falls back to a uniform redraw
		}
		hits[g.Destination(src)]++
	}
	for node, n := range hits {
		x, y := mesh.XY(node)
		want := 1
		if x == y {
			want = 0
		}
		if n != want {
			t.Fatalf("node %d (%d,%d) targeted %d times, want %d", node, x, y, n, want)
		}
	}
}

// TestTransposeDeliveredLoadHistogram checks delivered load, not just
// the mapping: every off-diagonal node must receive approximately the
// per-node offered load — the rectangular-mesh bug concentrated
// double load on some nodes and none on others.
func TestTransposeDeliveredLoadHistogram(t *testing.T) {
	const rate, cycles = 0.30, 20_000
	cfg := cfgWith(config.UniformRandom, config.Transpose, rate, 21)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	recv := make([]int64, mesh.Nodes())
	for now := int64(1); now <= cycles; now++ {
		g.Tick(now, func(src, dst, size int) { recv[dst]++ })
	}
	for node, c := range recv {
		x, y := mesh.XY(node)
		if x == y {
			continue // diagonal receives only diagonal fallbacks
		}
		got := float64(c) * float64(cfg.PacketSize) / cycles
		if got < 0.6*rate || got > 1.5*rate {
			t.Fatalf("node %d (%d,%d) delivered load %.4f, want ≈%.2f", node, x, y, got, rate)
		}
	}
}

// TestTransposeRejectsRectangle mirrors Config.Validate's check at
// the generator constructor for callers that bypass validation.
func TestTransposeRejectsRectangle(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Transpose, 0.2, 22)
	cfg.Width, cfg.Height = 8, 4
	defer func() {
		if recover() == nil {
			t.Fatal("transpose on an 8x4 mesh did not panic")
		}
	}()
	New(cfg, topology.New(8, 4))
}

// TestSelfSimilarWarmStartUnbiased pins the satellite fix for the
// warm-start bias: at a low configured rate the initial OFF phase
// must come from the rate's own Pareto OFF distribution (mean ≈1960
// cycles at rate 0.02), so the first few hundred cycles cannot begin
// with every source bursting at the ON peak, as the old fixed
// Int63n(meanOn) phase guaranteed.
func TestSelfSimilarWarmStartUnbiased(t *testing.T) {
	const rate, window = 0.02, 500
	cfg := cfgWith(config.SelfSimilar, config.NormalRandom, rate, 23)
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	var total int64
	for now := int64(1); now <= window; now++ {
		g.Tick(now, func(src, dst, size int) { total++ })
	}
	early := float64(total) * float64(cfg.PacketSize) / (window * float64(mesh.Nodes()))
	// The biased warm start measured ≈0.1+ here (every source ON
	// within its first 40 cycles); the unbiased one stays near the
	// configured rate.
	if early > 5*rate {
		t.Fatalf("early-window offered load %.4f is %.1fx the configured %.2f — warm-start bias", early, early/rate, rate)
	}
}

// TestHotspotFractionHonored checks the zero-value fix: the generator
// uses the configured fraction exactly, so a (validation-bypassing)
// zero yields no directed hotspot traffic at all rather than a
// silent 0.1.
func TestHotspotFractionHonored(t *testing.T) {
	cfg := cfgWith(config.UniformRandom, config.Hotspot, 0.2, 24)
	cfg.HotspotFraction = 0
	mesh := topology.New(cfg.Width, cfg.Height)
	g := New(cfg, mesh)
	hits := 0
	const draws = 20_000
	for i := 0; i < draws; i++ {
		if g.Destination(0) == g.HotNode() {
			hits++
		}
	}
	// Only the uniform component may land on the hot node: 1/63.
	if frac := float64(hits) / draws; frac > 0.03 {
		t.Fatalf("hot fraction %.3f with HotspotFraction=0, want only the uniform component", frac)
	}
}

// TestGeneratorStateRoundTrip drives a generator, checkpoints it,
// restores into a freshly constructed one, and requires the two event
// streams to stay identical — the traffic half of the simulator's
// bit-identical resume contract.
func TestGeneratorStateRoundTrip(t *testing.T) {
	for _, proc := range []config.TrafficProcess{config.UniformRandom, config.SelfSimilar} {
		cfg := cfgWith(proc, config.Hotspot, 0.22, 25)
		cfg.PacketSizeMax = cfg.PacketSize + 3
		mesh := topology.New(cfg.Width, cfg.Height)
		g := New(cfg, mesh)
		for now := int64(1); now <= 5_000; now++ {
			g.Tick(now, func(src, dst, size int) {})
		}
		w := snap.NewWriter()
		g.SaveState(w)
		data := w.Finish()

		r, err := snap.Open(data)
		if err != nil {
			t.Fatal(err)
		}
		g2 := New(cfg, mesh)
		if err := g2.LoadState(r); err != nil {
			t.Fatal(err)
		}
		for now := int64(5_001); now <= 10_000; now++ {
			var a, b [][3]int
			g.Tick(now, func(src, dst, size int) { a = append(a, [3]int{src, dst, size}) })
			g2.Tick(now, func(src, dst, size int) { b = append(b, [3]int{src, dst, size}) })
			if len(a) != len(b) {
				t.Fatalf("%v cycle %d: %d vs %d events", proc, now, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v cycle %d event %d: %v vs %v", proc, now, i, a[i], b[i])
				}
			}
		}
	}
}
