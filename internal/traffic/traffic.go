// Package traffic implements the paper's workload generators: the
// temporal injection processes (Uniform Random Bernoulli injection
// and Self-Similar Pareto ON/OFF bursts) and the spatial destination
// patterns (Normal Random and Tornado from the paper's evaluation,
// plus the standard Transpose, Bit-Complement and Hotspot patterns).
package traffic

import (
	"fmt"
	"math"

	"vichar/internal/config"
	"vichar/internal/rng"
	"vichar/internal/snap"
	"vichar/internal/topology"
)

// Generator produces packet creation events for every node. Each node
// owns an independent deterministic random stream so results are
// reproducible and insensitive to node iteration order. The streams
// are rng.Stream draw-counting shims, so a generator's position can
// be checkpointed as per-node (seed, draws) pairs and restored
// bit-exactly (SaveState/LoadState).
type Generator struct {
	cfg     *config.Config
	mesh    topology.Mesh
	pktProb float64 // per-cycle packet probability at the target rate
	rngs    []*rng.Stream
	onoff   []onOffState // used when cfg.Traffic == SelfSimilar
	peak    float64      // ON-state injection rate, flits/cycle
	hot     int          // hotspot destination node
}

// onOffState is one Pareto ON/OFF source: ON periods inject at the
// peak rate, OFF periods are silent; both durations are Pareto
// distributed, whose heavy tail produces self-similar aggregate
// traffic.
type onOffState struct {
	on        bool
	remaining int64
}

// Shape parameters of the ON/OFF source. alphaOn=1.9 is the classic
// measured Ethernet value (finite mean, infinite variance);
// meanOn=40 cycles keeps bursts several packets long.
const (
	alphaOn  = 1.9
	alphaOff = 1.25
	meanOn   = 40.0
)

// seedFor derives the node's stream seed from the run seed; the large
// odd multiplier decorrelates adjacent node streams.
func seedFor(seed int64, node int) int64 {
	return seed*1_000_003 + int64(node)*7_919 + 11
}

// New returns a generator for the configuration. It panics on a
// configuration Validate would reject as unrealizable (rate above the
// ON-peak for self-similar traffic, transpose on a rectangle).
func New(cfg *config.Config, mesh topology.Mesh) *Generator {
	g := &Generator{
		cfg:     cfg,
		mesh:    mesh,
		pktProb: cfg.InjectionRate / meanPacketSize(cfg),
		rngs:    make([]*rng.Stream, mesh.Nodes()),
		peak:    1.0,
		hot:     mesh.Node(mesh.Width/2, mesh.Height/2),
	}
	for i := range g.rngs {
		// Distinct, seed-derived stream per node.
		g.rngs[i] = rng.New(seedFor(cfg.Seed, i))
	}
	if cfg.Dest == config.Transpose && mesh.Width != mesh.Height {
		panic(fmt.Sprintf("traffic: transpose needs a square mesh, got %dx%d", mesh.Width, mesh.Height))
	}
	if cfg.Traffic == config.SelfSimilar {
		if cfg.InjectionRate >= g.peak {
			panic(fmt.Sprintf("traffic: self-similar rate %g must stay below the ON-peak %g", cfg.InjectionRate, g.peak))
		}
		g.onoff = make([]onOffState, mesh.Nodes())
		for i := range g.onoff {
			// Start each source in an OFF period drawn from the
			// configured rate's own OFF distribution: a fixed
			// Int63n(meanOn) phase would start low-rate runs with OFF
			// periods far shorter than steady state, biasing the early
			// cycles toward synchronized over-injection.
			g.onoff[i] = onOffState{on: false, remaining: g.offPeriod(g.rngs[i])}
		}
	}
	return g
}

// offPeriod draws one OFF-period length for the configured rate.
func (g *Generator) offPeriod(stream *rng.Stream) int64 {
	mo := g.meanOff()
	if math.IsInf(mo, 1) {
		return math.MaxInt64 / 2
	}
	return pareto(stream, alphaOff, mo)
}

// meanPacketSize returns the expected flits per packet, accounting
// for the variable-size protocol.
func meanPacketSize(cfg *config.Config) float64 {
	if cfg.PacketSizeMax > cfg.PacketSize {
		return float64(cfg.PacketSize+cfg.PacketSizeMax) / 2
	}
	return float64(cfg.PacketSize)
}

// meanOff returns the OFF-period mean that makes the long-run average
// rate equal the configured injection rate given the ON peak.
func (g *Generator) meanOff() float64 {
	r := g.cfg.InjectionRate
	if r <= 0 {
		return math.Inf(1)
	}
	return meanOn * (g.peak - r) / r
}

// pareto draws a Pareto(alpha, xm) variate where xm is derived from
// the requested mean: mean = alpha*xm/(alpha-1).
func pareto(stream *rng.Stream, alpha, mean float64) int64 {
	xm := mean * (alpha - 1) / alpha
	u := stream.Float64()
	for u == 0 {
		u = stream.Float64()
	}
	d := xm / math.Pow(u, 1/alpha)
	if d < 1 {
		d = 1
	}
	if d > 1e7 {
		d = 1e7 // clamp the heavy tail so one draw cannot stall a run
	}
	return int64(d)
}

// Tick advances every source by one cycle and calls
// emit(src, dst, size) for each packet created this cycle (at most
// one per node per cycle). Destination never returns the source
// itself, so every generated packet is emitted and each node's
// measured injection rate matches the configured offered load.
func (g *Generator) Tick(now int64, emit func(src, dst, size int)) {
	for node := 0; node < g.mesh.Nodes(); node++ {
		if g.generates(node) {
			emit(node, g.Destination(node), g.PacketSize(node))
		}
	}
}

// PacketSize draws the next packet's flit count for a source node.
func (g *Generator) PacketSize(node int) int {
	if g.cfg.PacketSizeMax > g.cfg.PacketSize {
		span := g.cfg.PacketSizeMax - g.cfg.PacketSize + 1
		return g.cfg.PacketSize + g.rngs[node].Intn(span)
	}
	return g.cfg.PacketSize
}

// generates decides whether the node creates a packet this cycle.
func (g *Generator) generates(node int) bool {
	stream := g.rngs[node]
	switch g.cfg.Traffic {
	case config.UniformRandom:
		return g.pktProb > 0 && stream.Float64() < g.pktProb
	case config.SelfSimilar:
		st := &g.onoff[node]
		for st.remaining <= 0 {
			st.on = !st.on
			if st.on {
				st.remaining = pareto(stream, alphaOn, meanOn)
			} else {
				st.remaining = g.offPeriod(stream)
			}
		}
		st.remaining--
		if !st.on {
			return false
		}
		return stream.Float64() < g.peak/meanPacketSize(g.cfg)
	default:
		panic(fmt.Sprintf("traffic: unknown process %v", g.cfg.Traffic))
	}
}

// Destination draws a destination for a packet created at src
// according to the configured spatial pattern. Fixed permutation
// patterns map some sources to themselves (Transpose on the mesh
// diagonal, Bit-Complement on the center of an odd-sized mesh); a
// self-addressed packet would never enter the network, silently
// under-delivering the configured offered load at exactly those
// nodes, so such sources fall back to a uniform draw over the other
// nodes. The fallback consumes the node's own RNG stream, keeping the
// draw order deterministic and independent of other nodes.
func (g *Generator) Destination(src int) int {
	stream := g.rngs[src]
	switch g.cfg.Dest {
	case config.NormalRandom:
		return g.uniformOther(stream, src)
	case config.Tornado:
		// Tornado offsets each packet ceil(k/2)-1 hops along X
		// (Singh et al., ISCA 2003), stressing the X bisection.
		x, y := g.mesh.XY(src)
		off := (g.mesh.Width+1)/2 - 1
		if off == 0 {
			off = 1
		}
		return g.mesh.Node((x+off)%g.mesh.Width, y)
	case config.Transpose:
		// (x,y) -> (y,x); the mesh is square (enforced by Validate and
		// by New), so the swapped coordinates are always in range.
		x, y := g.mesh.XY(src)
		if dst := g.mesh.Node(y, x); dst != src {
			return dst
		}
		return g.uniformOther(stream, src)
	case config.BitComplement:
		if dst := g.mesh.Nodes() - 1 - src; dst != src {
			return dst
		}
		return g.uniformOther(stream, src)
	case config.Hotspot:
		// HotspotFraction is used exactly as configured: Default()
		// carries 0.1 and Validate rejects a non-positive fraction.
		if src != g.hot && stream.Float64() < g.cfg.HotspotFraction {
			return g.hot
		}
		return g.uniformOther(stream, src)
	default:
		panic(fmt.Sprintf("traffic: unknown destination pattern %v", g.cfg.Dest))
	}
}

// uniformOther draws uniformly among all nodes except src.
func (g *Generator) uniformOther(stream *rng.Stream, src int) int {
	n := g.mesh.Nodes()
	d := stream.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// HotNode returns the hotspot destination (the mesh center).
func (g *Generator) HotNode() int { return g.hot }

// SaveState serializes the generator's mutable state: per-node stream
// draw counts plus the ON/OFF source phases. Seeds are not stored —
// they re-derive from the config at restore time.
func (g *Generator) SaveState(w *snap.Writer) {
	w.Section("traffic")
	w.Int(len(g.rngs))
	for _, s := range g.rngs {
		w.U64(s.Draws())
	}
	w.Int(len(g.onoff))
	for _, st := range g.onoff {
		w.Bool(st.on)
		w.I64(st.remaining)
	}
}

// LoadState restores the state written by SaveState into a generator
// freshly constructed from the same structural configuration: each
// node stream is re-seeded and fast-forwarded to its saved draw
// count.
func (g *Generator) LoadState(r *snap.Reader) error {
	if err := r.Section("traffic"); err != nil {
		return err
	}
	if n := r.Int(); n != len(g.rngs) {
		return fmt.Errorf("traffic: snapshot has %d node streams, generator has %d", n, len(g.rngs))
	}
	for i := range g.rngs {
		g.rngs[i] = rng.Restore(seedFor(g.cfg.Seed, i), r.U64())
	}
	if n := r.Int(); n != len(g.onoff) {
		return fmt.Errorf("traffic: snapshot has %d ON/OFF sources, generator has %d", n, len(g.onoff))
	}
	for i := range g.onoff {
		g.onoff[i] = onOffState{on: r.Bool(), remaining: r.I64()}
	}
	return r.Err()
}
