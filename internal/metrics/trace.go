package metrics

import (
	"fmt"
	"io"
	"sort"
)

// EventKind classifies one step of a flit's lifecycle.
type EventKind uint8

// Flit lifecycle stages, in pipeline order. Packet-scoped stages
// (create, RC, VA grant) carry Flit == -1; flit-scoped stages carry
// the flit's sequence number within its packet.
const (
	EvCreate  EventKind = iota // packet created at the source NI
	EvInject                   // flit left the NI onto the injection link
	EvRC                       // head flit finished route computation
	EvVAGrant                  // packet won an output VC in VC allocation
	EvSAGrant                  // flit won switch allocation and crossed the crossbar
	EvLink                     // flit arrived over a router-to-router link
	EvEject                    // flit consumed at the destination NI
)

// String names the kind as it appears in the JSONL sink.
func (k EventKind) String() string {
	switch k {
	case EvCreate:
		return "create"
	case EvInject:
		return "inject"
	case EvRC:
		return "rc"
	case EvVAGrant:
		return "va_grant"
	case EvSAGrant:
		return "sa_grant"
	case EvLink:
		return "link"
	case EvEject:
		return "eject"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flit-lifecycle record. Seq is a global monotonic
// sequence number assigned at drain time in the kernel's serial
// phase, so the total event order is identical for any worker count.
type Event struct {
	Seq    uint64
	Cycle  int64
	Kind   EventKind
	Packet uint64
	Flit   int // flit index within the packet; -1 for packet-scoped events
	Node   int // router/NI where the event happened
	Port   int // port involved; -1 when not applicable
	VC     int // virtual channel involved; -1 when not applicable
}

// Tracer keeps the most recent events in a bounded ring buffer.
// Writes happen only via Drain in the kernel's serial phase; Events,
// Timeline and WriteJSONL copy under the same lock that guards
// drains, so they are safe from the exporter goroutine.
type Tracer struct {
	reg     *Registry // lock owner; drains and reads synchronize on it
	buf     []Event
	cap     int
	next    uint64 // total events ever appended == next Seq
	dropped uint64
}

// NewTracer returns a tracer retaining at most capacity events. The
// registry's lock orders drains against concurrent readers.
func NewTracer(reg *Registry, capacity int) *Tracer {
	if capacity <= 0 {
		panic("metrics: tracer capacity must be positive")
	}
	return &Tracer{reg: reg, buf: make([]Event, 0, capacity), cap: capacity}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return t.cap }

// Drain moves every staged event out of the recorders, in recorder
// index order, assigning each a global Seq. Serial phase only; the
// fixed drain order makes the event stream worker-count invariant.
func (t *Tracer) Drain(recs []*Recorder) {
	t.reg.mu.Lock()
	for _, rec := range recs {
		for _, e := range rec.events {
			e.Seq = t.next
			t.next++
			if len(t.buf) < t.cap {
				//vichar:alloc the ring fills to its fixed cap once, then overwrites slots in place
				t.buf = append(t.buf, e)
			} else {
				t.buf[int(e.Seq)%t.cap] = e
				t.dropped++
			}
		}
		rec.events = rec.events[:0]
	}
	t.reg.mu.Unlock()
}

// Dropped reports how many events were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	t.reg.mu.RLock()
	defer t.reg.mu.RUnlock()
	return t.dropped
}

// Total reports how many events were ever recorded (retained or not).
func (t *Tracer) Total() uint64 {
	t.reg.mu.RLock()
	defer t.reg.mu.RUnlock()
	return t.next
}

// Events returns the retained events in Seq order.
func (t *Tracer) Events() []Event {
	t.reg.mu.RLock()
	out := make([]Event, len(t.buf))
	copy(out, t.buf)
	t.reg.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Timeline reconstructs one packet's retained lifecycle: every event
// that names the packet, in chronological order — by cycle, with Seq
// breaking ties. (Seq alone orders events by drain batch, within
// which the serial-phase recorder precedes all node recorders, so it
// is not chronological across recorders.) An empty slice means the
// packet's events were never recorded or have been evicted.
func (t *Tracer) Timeline(packet uint64) []Event {
	var out []Event
	t.reg.mu.RLock()
	for _, e := range t.buf {
		if e.Packet == packet {
			out = append(out, e)
		}
	}
	t.reg.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteJSONL renders the retained events as one JSON object per line,
// in Seq order. The fields are rendered by hand in a fixed key order
// so the sink is byte-deterministic.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, e := range t.Events() {
		_, err := fmt.Fprintf(w,
			`{"seq":%d,"cycle":%d,"kind":%q,"packet":%d,"flit":%d,"node":%d,"port":%d,"vc":%d}`+"\n",
			e.Seq, e.Cycle, e.Kind.String(), e.Packet, e.Flit, e.Node, e.Port, e.VC)
		if err != nil {
			return err
		}
	}
	return nil
}
