package metrics

import (
	"fmt"

	"vichar/internal/snap"
)

// This file implements the checkpoint half of the observability
// layer. Series descriptors re-register at construction time in the
// same order on restore, so only values travel: the registry's merged
// totals, each recorder's staged (unmerged) counter deltas and
// undrained events, and the tracer's ring. Staged state is captured
// as-is — flushing it early would change the drain interleaving and
// break the resumed run's byte-exact event stream.

// saveEvent writes one flit-lifecycle event.
func saveEvent(w *snap.Writer, e Event) {
	w.U64(e.Seq)
	w.I64(e.Cycle)
	w.U8(uint8(e.Kind))
	w.U64(e.Packet)
	w.Int(e.Flit)
	w.Int(e.Node)
	w.Int(e.Port)
	w.Int(e.VC)
}

// loadEvent reads one flit-lifecycle event.
func loadEvent(r *snap.Reader) Event {
	return Event{
		Seq:    r.U64(),
		Cycle:  r.I64(),
		Kind:   EventKind(r.U8()),
		Packet: r.U64(),
		Flit:   r.Int(),
		Node:   r.Int(),
		Port:   r.Int(),
		VC:     r.Int(),
	}
}

// SaveState serializes the registry's merged counter totals and gauge
// values. Safe against a concurrent exporter scrape.
func (r *Registry) SaveState(w *snap.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w.Section("registry")
	w.U64s(r.cvals)
	w.F64s(r.gvals)
}

// LoadState restores values saved by SaveState into a registry with
// the same series registered in the same order.
func (r *Registry) LoadState(rd *snap.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := rd.Section("registry"); err != nil {
		return err
	}
	rd.U64sInto(r.cvals)
	rd.F64sInto(r.gvals)
	return rd.Err()
}

// SaveState serializes the recorder's staged counter deltas and
// undrained events.
func (rec *Recorder) SaveState(w *snap.Writer) {
	w.Section("recorder")
	w.U64s(rec.counts)
	w.Int(len(rec.events))
	for _, e := range rec.events {
		saveEvent(w, e)
	}
}

// LoadState restores staged state saved by SaveState into a recorder
// with the same counters registered.
func (rec *Recorder) LoadState(r *snap.Reader) error {
	if err := r.Section("recorder"); err != nil {
		return err
	}
	r.U64sInto(rec.counts)
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("metrics: negative staged-event count %d in snapshot", n)
	}
	rec.events = rec.events[:0]
	for i := 0; i < n; i++ {
		rec.events = append(rec.events, loadEvent(r))
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}

// SaveState serializes the tracer's ring, total-event counter and
// eviction count.
func (t *Tracer) SaveState(w *snap.Writer) {
	t.reg.mu.RLock()
	defer t.reg.mu.RUnlock()
	w.Section("tracer")
	w.U64(t.next)
	w.U64(t.dropped)
	w.Int(len(t.buf))
	for _, e := range t.buf {
		saveEvent(w, e)
	}
}

// LoadState restores a ring saved by SaveState into a tracer of the
// same capacity.
func (t *Tracer) LoadState(r *snap.Reader) error {
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if err := r.Section("tracer"); err != nil {
		return err
	}
	t.next = r.U64()
	t.dropped = r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > t.cap {
		return fmt.Errorf("metrics: snapshot ring holds %d events, tracer capacity is %d", n, t.cap)
	}
	t.buf = t.buf[:0]
	for i := 0; i < n; i++ {
		t.buf = append(t.buf, loadEvent(r))
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}
