// Package metrics is the simulator's live observability layer: a
// typed registry of named counters and gauges fed by the router
// pipeline and the two-phase cycle kernel, plus a bounded
// flit-lifecycle event tracer (trace.go) and an HTTP exporter
// (handler.go) serving the Prometheus text format.
//
// The layer is built around the kernel's ownership contract
// (DESIGN.md §10): hot-path code never touches shared state. Every
// shard-owned component (a router, its network interface, the links
// of its deliver plan) increments counters on a private Recorder —
// a plain slice, no atomics, no locks — and the network folds all
// recorders into the shared Registry serially, in recorder index
// order, during the commit side of the kernel (the sample cadence
// plus a final flush). Totals are therefore bit-identical for any
// worker count, and concurrent readers (the HTTP exporter, the
// Snapshot API) only ever take the registry lock, never a recorder.
//
// Disabled-path cost is a nil-pointer check per probe call
// (probe.go); enabled-path cost is amortized over the flush cadence.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Label is one key/value pair of a metric series. Labels are kept as
// ordered slices (not maps) so every rendering and snapshot of the
// registry is deterministic.
type Label struct {
	Key, Value string
}

// Labels is the ordered label set of one series.
type Labels []Label

// String renders the label set in Prometheus exposition syntax,
// without the surrounding braces; empty for an unlabeled series.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// CounterID names one counter series within its Recorder.
type CounterID int

// GaugeID names one gauge series within the Registry.
type GaugeID int

// seriesDesc describes one registered series.
type seriesDesc struct {
	name   string
	help   string
	labels Labels
}

// Registry holds the merged totals of every registered series. All
// mutation goes through MergeRecorders and SetGauge — serial-phase
// operations — while Snapshot and WritePrometheus may be called from
// any goroutine (the HTTP exporter's scrape path).
type Registry struct {
	mu       sync.RWMutex
	counters []seriesDesc
	cvals    []uint64
	gauges   []seriesDesc
	gvals    []float64
}

// NewRegistry returns an empty registry. Register every series (via
// NewRecorder/Recorder.Counter and Gauge) at construction time,
// before the first concurrent reader.
func NewRegistry() *Registry { return &Registry{} }

// Gauge registers a gauge series and returns its ID.
func (r *Registry) Gauge(name, help string, labels Labels) GaugeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, seriesDesc{name: name, help: help, labels: labels})
	r.gvals = append(r.gvals, 0)
	return GaugeID(len(r.gauges) - 1)
}

// SetGauge stores the gauge's current value. Serial phase only.
func (r *Registry) SetGauge(id GaugeID, v float64) {
	r.mu.Lock()
	r.gvals[id] = v
	r.mu.Unlock()
}

// Recorder is the single-writer staging area of one shard-owned
// component. Counter increments touch only the recorder's private
// slices; MergeRecorders folds them into the registry. A recorder
// must only ever be written by the shard that owns its component —
// the kernel's phase barriers order those writes against the serial
// merge.
type Recorder struct {
	reg    *Registry
	ids    []int // registry counter index per local CounterID
	counts []uint64
	trace  bool
	events []Event
}

// NewRecorder returns a recorder whose counters will merge into r.
// trace enables flit-event staging (StageEvent is a no-op otherwise).
func (r *Registry) NewRecorder(trace bool) *Recorder {
	return &Recorder{reg: r, trace: trace}
}

// Counter registers a counter series owned by this recorder and
// returns the recorder-local ID used with Inc/Add.
func (rec *Recorder) Counter(name, help string, labels Labels) CounterID {
	reg := rec.reg
	reg.mu.Lock()
	reg.counters = append(reg.counters, seriesDesc{name: name, help: help, labels: labels})
	reg.cvals = append(reg.cvals, 0)
	global := len(reg.counters) - 1
	reg.mu.Unlock()
	rec.ids = append(rec.ids, global)
	rec.counts = append(rec.counts, 0)
	return CounterID(len(rec.counts) - 1)
}

// Inc adds one to the counter. Owner shard only; never allocates.
func (rec *Recorder) Inc(id CounterID) { rec.counts[id]++ }

// Add accumulates n into the counter. Owner shard only.
func (rec *Recorder) Add(id CounterID, n uint64) { rec.counts[id] += n }

// StageEvent appends a flit-lifecycle event to the recorder's staging
// buffer (a no-op when the recorder was created without tracing).
// The event's Seq is assigned later, when the tracer drains the
// recorder in the serial phase.
func (rec *Recorder) StageEvent(e Event) {
	if !rec.trace {
		return
	}
	//vichar:alloc the staging buffer grows to the per-tick event peak, then Drain resets it to length zero in place
	rec.events = append(rec.events, e)
}

// Pending returns the number of staged, undrained events (tests).
func (rec *Recorder) Pending() int { return len(rec.events) }

// MergeRecorders folds every recorder's staged counter deltas into
// the registry, in slice order, under one lock acquisition, and
// zeroes the staging counts. Must run in the kernel's serial phase;
// the fixed merge order is what keeps registry state bit-identical
// across worker counts.
func (r *Registry) MergeRecorders(recs []*Recorder) {
	r.mu.Lock()
	for _, rec := range recs {
		for i, v := range rec.counts {
			if v != 0 {
				r.cvals[rec.ids[i]] += v
				rec.counts[i] = 0
			}
		}
	}
	r.mu.Unlock()
}

// CounterValue is one counter series with its merged total.
type CounterValue struct {
	Name   string
	Labels Labels
	Value  uint64
}

// GaugeValue is one gauge series with its current value.
type GaugeValue struct {
	Name   string
	Labels Labels
	Value  float64
}

// Snapshot is a consistent copy of the registry at one merge point.
type Snapshot struct {
	Counters []CounterValue
	Gauges   []GaugeValue
}

// Sum totals every counter series with the given name across labels
// (e.g. the network-wide buffer writes over all routers and ports).
func (s Snapshot) Sum(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// Gauge returns the first gauge with the given name (ok=false when
// absent).
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Snapshot copies the registry's current series and values. Safe for
// concurrent use; the copy reflects the last serial merge, which lags
// a running simulation by at most the flush cadence.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make([]CounterValue, len(r.counters)),
		Gauges:   make([]GaugeValue, len(r.gauges)),
	}
	for i, d := range r.counters {
		s.Counters[i] = CounterValue{Name: d.name, Labels: d.labels, Value: r.cvals[i]}
	}
	for i, d := range r.gauges {
		s.Gauges[i] = GaugeValue{Name: d.name, Labels: d.labels, Value: r.gvals[i]}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: series grouped by name under one HELP/TYPE
// header, names in lexical order, label sets in registration order
// within a name — a deterministic rendering of a deterministic state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	type row struct {
		desc  string // name{labels}
		value string
	}
	groups := map[string][]row{}
	helps := map[string]string{}
	types := map[string]string{}
	var names []string
	add := func(name, help, typ string, labels Labels, value string) {
		if _, seen := groups[name]; !seen {
			names = append(names, name)
			helps[name] = help
			types[name] = typ
		}
		desc := name
		if ls := labels.String(); ls != "" {
			desc = name + "{" + ls + "}"
		}
		groups[name] = append(groups[name], row{desc: desc, value: value})
	}
	r.mu.RLock()
	for i, d := range r.counters {
		add(d.name, d.help, "counter", d.labels, fmt.Sprintf("%d", s.Counters[i].Value))
	}
	for i, d := range r.gauges {
		add(d.name, d.help, "gauge", d.labels, formatFloat(s.Gauges[i].Value))
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if h := helps[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, types[name]); err != nil {
			return err
		}
		for _, rw := range groups[name] {
			if _, err := fmt.Fprintf(w, "%s %s\n", rw.desc, rw.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a gauge value without exponent noise for the
// integral values (cycle counts) that dominate the gauge set.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
