package metrics

import "net/http"

// Handler serves the registry in the Prometheus text exposition
// format. When tr is non-nil the handler also serves the retained
// flit-event ring as JSONL under /trace (relative to its mount
// point). Both endpoints read under the registry lock, so they are
// safe while the simulation is stepping on another goroutine; the
// values reflect the last serial flush.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already streaming; all we can do is
			// stop writing.
			return
		}
	})
	if tr != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			if err := tr.WriteJSONL(w); err != nil {
				return
			}
		})
	}
	return mux
}
