package metrics

import "strconv"

// Probes are the instrumentation surface the simulator core calls on
// its hot path. Every probe method is safe on a nil receiver and
// returns immediately, so an un-instrumented run pays exactly one
// nil check per call site; an instrumented run writes to the owning
// shard's Recorder, never to shared state.

// RouterProbe instruments one router's pipeline stages with
// per-port, per-stage counters and flit-lifecycle events.
type RouterProbe struct {
	rec *Recorder

	bufWrite    []CounterID // per input port
	bufRead     []CounterID // per input port
	creditStall []CounterID // per output port
	portStall   []CounterID // per input port (fault-model stalls)
	rc          CounterID
	vaOps       CounterID
	vaGrants    CounterID
	vaDenials   CounterID
	saOps       CounterID
	saGrants    CounterID
	saDenials   CounterID
	xbar        CounterID
	reroutes    CounterID
}

// NewRouterProbe registers the router's counter series on rec.
// portNames label the per-port series (index-aligned with the
// router's port numbering).
func NewRouterProbe(rec *Recorder, node int, portNames []string) *RouterProbe {
	r := strconv.Itoa(node)
	p := &RouterProbe{rec: rec}
	for _, pn := range portNames {
		rl := Labels{{"router", r}, {"port", pn}}
		p.bufWrite = append(p.bufWrite, rec.Counter("vichar_buffer_writes_total",
			"Flit writes into router input buffers.", rl))
		p.bufRead = append(p.bufRead, rec.Counter("vichar_buffer_reads_total",
			"Flit reads out of router input buffers.", rl))
		p.creditStall = append(p.creditStall, rec.Counter("vichar_credit_stalls_total",
			"Cycles an active VC held a ready flit but lacked downstream credit.", rl))
		p.portStall = append(p.portStall, rec.Counter("vichar_port_stall_cycles_total",
			"Cycles an input port's control logic was frozen by a fault-model stall.", rl))
	}
	l := Labels{{"router", r}}
	p.rc = rec.Counter("vichar_rc_total", "Head flits routed (route computation).", l)
	p.vaOps = rec.Counter("vichar_va_ops_total", "VC allocator invocations.", l)
	p.vaGrants = rec.Counter("vichar_va_grants_total", "Output VCs granted by the VC allocator.", l)
	p.vaDenials = rec.Counter("vichar_va_denials_total", "VC allocation requests denied this cycle.", l)
	p.saOps = rec.Counter("vichar_sa_ops_total", "Switch allocator invocations.", l)
	p.saGrants = rec.Counter("vichar_sa_grants_total", "Crossbar passages granted by the switch allocator.", l)
	p.saDenials = rec.Counter("vichar_sa_denials_total", "Switch allocation requests denied this cycle.", l)
	p.xbar = rec.Counter("vichar_xbar_traversals_total", "Flits through the crossbar.", l)
	p.reroutes = rec.Counter("vichar_escape_reroutes_total",
		"Packets re-channelled onto the escape network after the deadlock threshold.", l)
	return p
}

// PortStall records one cycle input port spent frozen by a
// fault-model stall.
func (p *RouterProbe) PortStall(port int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.portStall[port])
}

// EscapeReroute records one packet re-channelled onto an escape VC.
func (p *RouterProbe) EscapeReroute() {
	if p == nil {
		return
	}
	p.rec.Inc(p.reroutes)
}

// BufferWrite records a flit written into input port's buffer.
func (p *RouterProbe) BufferWrite(port int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.bufWrite[port])
}

// BufferRead records a flit read out of input port's buffer.
func (p *RouterProbe) BufferRead(port int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.bufRead[port])
}

// CreditStall records one cycle in which an active VC on the given
// output port had a flit ready but no downstream credit.
func (p *RouterProbe) CreditStall(outPort int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.creditStall[outPort])
}

// RC records one routed head flit.
func (p *RouterProbe) RC() {
	if p == nil {
		return
	}
	p.rec.Inc(p.rc)
}

// VAOp records one VC-allocator invocation.
func (p *RouterProbe) VAOp() {
	if p == nil {
		return
	}
	p.rec.Inc(p.vaOps)
}

// VAGrant records one granted output VC.
func (p *RouterProbe) VAGrant() {
	if p == nil {
		return
	}
	p.rec.Inc(p.vaGrants)
}

// VADenials records n VC requests that competed this cycle and lost.
func (p *RouterProbe) VADenials(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.rec.Add(p.vaDenials, uint64(n))
}

// SAOp records one switch-allocator invocation.
func (p *RouterProbe) SAOp() {
	if p == nil {
		return
	}
	p.rec.Inc(p.saOps)
}

// SAGrant records one granted crossbar passage.
func (p *RouterProbe) SAGrant() {
	if p == nil {
		return
	}
	p.rec.Inc(p.saGrants)
}

// SADenials records n switch requests that competed this cycle and lost.
func (p *RouterProbe) SADenials(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.rec.Add(p.saDenials, uint64(n))
}

// Xbar records one flit through the crossbar.
func (p *RouterProbe) Xbar() {
	if p == nil {
		return
	}
	p.rec.Inc(p.xbar)
}

// Event stages a flit-lifecycle event at this router (no-op when
// tracing is off).
func (p *RouterProbe) Event(kind EventKind, cycle int64, node int, packet uint64, flit, port, vc int) {
	if p == nil {
		return
	}
	p.rec.StageEvent(Event{
		Cycle: cycle, Kind: kind, Packet: packet, Flit: flit,
		Node: node, Port: port, VC: vc,
	})
}

// NIProbe instruments one network interface: flits injected into the
// router fabric and cycles stalled waiting for injection credit.
type NIProbe struct {
	rec      *Recorder
	node     int
	injected CounterID
	stalls   CounterID
}

// NewNIProbe registers the NI's counter series on rec.
func NewNIProbe(rec *Recorder, node int) *NIProbe {
	l := Labels{{"node", strconv.Itoa(node)}}
	return &NIProbe{
		rec:  rec,
		node: node,
		injected: rec.Counter("vichar_ni_flits_injected_total",
			"Flits the network interface pushed onto its injection link.", l),
		stalls: rec.Counter("vichar_ni_credit_stalls_total",
			"Cycles the network interface held a flit but lacked injection credit.", l),
	}
}

// Inject records one flit leaving the NI, with its lifecycle event.
func (p *NIProbe) Inject(cycle int64, packet uint64, flit, vc int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.injected)
	p.rec.StageEvent(Event{
		Cycle: cycle, Kind: EvInject, Packet: packet, Flit: flit,
		Node: p.node, Port: -1, VC: vc,
	})
}

// CreditStall records one cycle the NI was blocked on injection credit.
func (p *NIProbe) CreditStall() {
	if p == nil {
		return
	}
	p.rec.Inc(p.stalls)
}

// LinkProbe instruments one router-to-router flit link. It writes on
// the receiving router's recorder, because link delivery executes in
// the receiver's shard under the kernel's ownership plan.
type LinkProbe struct {
	rec    *Recorder
	node   int // receiving router
	port   int // receiving input port
	traced CounterID
}

// NewLinkProbe registers the link's utilization counter on the
// receiver's recorder. from/to are router IDs; portName labels the
// receiving input port.
func NewLinkProbe(rec *Recorder, from, to, inPort int, portName string) *LinkProbe {
	l := Labels{
		{"from", strconv.Itoa(from)},
		{"to", strconv.Itoa(to)},
		{"port", portName},
	}
	return &LinkProbe{
		rec:  rec,
		node: to,
		port: inPort,
		traced: rec.Counter("vichar_link_flits_total",
			"Flits delivered over each router-to-router link.", l),
	}
}

// Deliver records one flit arriving over the link.
func (p *LinkProbe) Deliver(cycle int64, packet uint64, flit, vc int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.traced)
	p.rec.StageEvent(Event{
		Cycle: cycle, Kind: EvLink, Packet: packet, Flit: flit,
		Node: p.node, Port: p.port, VC: vc,
	})
}

// LinkFaultProbe instruments the fault model of one inter-router
// link: drops, corruptions and retransmissions. Like LinkProbe it
// writes on the receiving router's recorder (the link ticks in the
// receiver's shard). Created only when Config.Faults is enabled, so
// fault-free runs register no fault series.
type LinkFaultProbe struct {
	rec     *Recorder
	dropped CounterID
	corrupt CounterID
	retrans CounterID
}

// NewLinkFaultProbe registers the link's fault counters on the
// receiver's recorder. from/to are router IDs; portName labels the
// sender's output port.
func NewLinkFaultProbe(rec *Recorder, from, to int, portName string) *LinkFaultProbe {
	l := Labels{
		{"from", strconv.Itoa(from)},
		{"to", strconv.Itoa(to)},
		{"port", portName},
	}
	return &LinkFaultProbe{
		rec: rec,
		dropped: rec.Counter("vichar_link_flits_dropped_total",
			"Flits lost on a link by the fault model.", l),
		corrupt: rec.Counter("vichar_link_flits_corrupted_total",
			"Flits failing their CRC at the receiver under the fault model.", l),
		retrans: rec.Counter("vichar_link_retransmits_total",
			"Flits re-sent from a link's retransmission buffer.", l),
	}
}

// Fault records one dropped (or, when corrupt, corrupted) flit.
func (p *LinkFaultProbe) Fault(corrupt bool) {
	if p == nil {
		return
	}
	if corrupt {
		p.rec.Inc(p.corrupt)
		return
	}
	p.rec.Inc(p.dropped)
}

// Retransmit records one flit re-sent from the retransmission buffer.
func (p *LinkFaultProbe) Retransmit() {
	if p == nil {
		return
	}
	p.rec.Inc(p.retrans)
}

// NetProbe instruments the network's serial phase: packet creation
// at injection scheduling and flit ejection at the destination NI.
type NetProbe struct {
	rec     *Recorder
	created CounterID
	ejected CounterID
	flits   CounterID
}

// NewNetProbe registers the network-level counter series on rec.
func NewNetProbe(rec *Recorder) *NetProbe {
	return &NetProbe{
		rec: rec,
		created: rec.Counter("vichar_packets_created_total",
			"Packets created and queued for injection.", nil),
		ejected: rec.Counter("vichar_packets_ejected_total",
			"Packets fully ejected at their destination.", nil),
		flits: rec.Counter("vichar_flits_ejected_total",
			"Flits ejected at their destination.", nil),
	}
}

// PacketCreated records one packet entering the source NI queue.
func (p *NetProbe) PacketCreated(cycle int64, packet uint64, src int) {
	if p == nil {
		return
	}
	p.rec.Inc(p.created)
	p.rec.StageEvent(Event{
		Cycle: cycle, Kind: EvCreate, Packet: packet, Flit: -1,
		Node: src, Port: -1, VC: -1,
	})
}

// FlitEjected records one flit consumed at its destination; tail
// marks the packet complete.
func (p *NetProbe) FlitEjected(cycle int64, packet uint64, flit, node, vc int, tail bool) {
	if p == nil {
		return
	}
	p.rec.Inc(p.flits)
	if tail {
		p.rec.Inc(p.ejected)
	}
	p.rec.StageEvent(Event{
		Cycle: cycle, Kind: EvEject, Packet: packet, Flit: flit,
		Node: node, Port: -1, VC: vc,
	})
}
