package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryMergeAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewRecorder(false)
	b := reg.NewRecorder(false)
	ca := a.Counter("m_total", "help a", Labels{{"node", "0"}})
	cb := b.Counter("m_total", "help a", Labels{{"node", "1"}})
	other := b.Counter("other_total", "help b", nil)

	a.Inc(ca)
	a.Add(ca, 4)
	b.Inc(cb)
	b.Add(other, 7)

	// Nothing visible before the serial merge.
	if got := reg.Snapshot().Sum("m_total"); got != 0 {
		t.Fatalf("pre-merge sum = %d, want 0", got)
	}
	reg.MergeRecorders([]*Recorder{a, b})
	s := reg.Snapshot()
	if got := s.Sum("m_total"); got != 6 {
		t.Fatalf("m_total = %d, want 6", got)
	}
	if got := s.Sum("other_total"); got != 7 {
		t.Fatalf("other_total = %d, want 7", got)
	}

	// Merging is a drain: a second merge with no new increments must
	// not double-count.
	reg.MergeRecorders([]*Recorder{a, b})
	if got := reg.Snapshot().Sum("m_total"); got != 6 {
		t.Fatalf("after idempotent merge m_total = %d, want 6", got)
	}

	a.Inc(ca)
	reg.MergeRecorders([]*Recorder{a, b})
	if got := reg.Snapshot().Sum("m_total"); got != 7 {
		t.Fatalf("after second increment m_total = %d, want 7", got)
	}
}

func TestGauges(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g_now", "current cycle", nil)
	reg.SetGauge(g, 42)
	v, ok := reg.Snapshot().Gauge("g_now")
	if !ok || v != 42 {
		t.Fatalf("gauge = (%g, %v), want (42, true)", v, ok)
	}
	if _, ok := reg.Snapshot().Gauge("missing"); ok {
		t.Fatal("missing gauge reported present")
	}
}

// The disabled path (nil probes) and the enabled steady-state path
// (recorder increments, event staging after the rings warmed up) must
// not allocate: the instrumentation sits on the router's per-cycle
// hot path.
func TestHotPathDoesNotAllocate(t *testing.T) {
	var nilProbe *RouterProbe
	if n := testing.AllocsPerRun(1000, func() {
		nilProbe.BufferWrite(0)
		nilProbe.VAOp()
		nilProbe.Event(EvRC, 1, 0, 1, -1, -1, 0)
	}); n != 0 {
		t.Fatalf("nil probe path allocates %.1f/op", n)
	}

	reg := NewRegistry()
	rec := reg.NewRecorder(true)
	probe := NewRouterProbe(rec, 0, []string{"N", "S", "E", "W", "L"})
	tr := NewTracer(reg, 64)
	recs := []*Recorder{rec}
	// Warm the staging slice and the ring once.
	for i := 0; i < 100; i++ {
		probe.Event(EvRC, int64(i), 0, uint64(i), -1, -1, 0)
	}
	reg.MergeRecorders(recs)
	tr.Drain(recs)
	if n := testing.AllocsPerRun(1000, func() {
		probe.BufferWrite(2)
		probe.SAOp()
		probe.Event(EvSAGrant, 5, 0, 9, 0, 1, 2)
		reg.MergeRecorders(recs)
		tr.Drain(recs)
	}); n != 0 {
		t.Fatalf("enabled steady-state path allocates %.1f/op", n)
	}
}

func TestTracerRingAndTimeline(t *testing.T) {
	reg := NewRegistry()
	rec := reg.NewRecorder(true)
	tr := NewTracer(reg, 4)
	for i := 0; i < 6; i++ {
		rec.StageEvent(Event{Cycle: int64(i), Kind: EvLink, Packet: uint64(i % 2), Flit: 0, Node: i})
	}
	tr.Drain([]*Recorder{rec})
	if rec.Pending() != 0 {
		t.Fatalf("drain left %d staged events", rec.Pending())
	}
	if tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("total/dropped = %d/%d, want 6/2", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(2 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest evicted first)", i, e.Seq, want)
		}
	}
	tl := tr.Timeline(1)
	if len(tl) != 2 || tl[0].Seq != 3 || tl[1].Seq != 5 {
		t.Fatalf("timeline(1) = %+v, want retained seqs 3 and 5", tl)
	}
}

func TestTracerSeqOrderAcrossRecorders(t *testing.T) {
	reg := NewRegistry()
	r1 := reg.NewRecorder(true)
	r2 := reg.NewRecorder(true)
	tr := NewTracer(reg, 16)
	r2.StageEvent(Event{Cycle: 1, Kind: EvInject, Node: 2})
	r1.StageEvent(Event{Cycle: 1, Kind: EvInject, Node: 1})
	tr.Drain([]*Recorder{r1, r2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Node != 1 || evs[1].Node != 2 {
		t.Fatalf("drain order not recorder-index order: %+v", evs)
	}
}

func TestWriteJSONL(t *testing.T) {
	reg := NewRegistry()
	rec := reg.NewRecorder(true)
	tr := NewTracer(reg, 8)
	rec.StageEvent(Event{Cycle: 3, Kind: EvEject, Packet: 7, Flit: 1, Node: 4, Port: -1, VC: 0})
	tr.Drain([]*Recorder{rec})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"cycle":3,"kind":"eject","packet":7,"flit":1,"node":4,"port":-1,"vc":0}` + "\n"
	if b.String() != want {
		t.Fatalf("JSONL = %q, want %q", b.String(), want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	rec := reg.NewRecorder(false)
	c := rec.Counter("vichar_z_total", "the z metric", Labels{{"router", "3"}, {"port", "N"}})
	reg.Gauge("vichar_a_gauge", "the a gauge", nil)
	rec.Add(c, 12)
	reg.MergeRecorders([]*Recorder{rec})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# HELP vichar_a_gauge the a gauge\n" +
		"# TYPE vichar_a_gauge gauge\n" +
		"vichar_a_gauge 0\n" +
		"# HELP vichar_z_total the z metric\n" +
		"# TYPE vichar_z_total counter\n" +
		`vichar_z_total{router="3",port="N"} 12` + "\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerServesMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	rec := reg.NewRecorder(true)
	c := rec.Counter("vichar_h_total", "handler test", nil)
	tr := NewTracer(reg, 8)
	rec.Inc(c)
	rec.StageEvent(Event{Cycle: 1, Kind: EvCreate, Packet: 1, Flit: -1, Node: 0, Port: -1, VC: -1})
	reg.MergeRecorders([]*Recorder{rec})
	tr.Drain([]*Recorder{rec})

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	if body := get("/"); !strings.Contains(body, "vichar_h_total 1") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, `"kind":"create"`) {
		t.Fatalf("trace body missing event:\n%s", body)
	}
}
