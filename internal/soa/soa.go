// Package soa provides the struct-of-arrays backing store for the
// simulator's hot per-(router, port, VC) state (DESIGN.md §14).
//
// The tick path touches a handful of small per-VC arrays every cycle
// — credit counters, VC-grant flags, UBS table rows, tracker bitmaps,
// live-VC masks. Allocated object-by-object they scatter across the
// heap and every router tick becomes a pointer chase; drawn from one
// network-owned contiguous slab they pack in construction order
// (router-major, then port, then VC), so the state one router's tick
// reads sits on a handful of cache lines. The existing objects
// (core.Table, core.Tracker, router credit views, VC state machines)
// keep their APIs and become views over slab-owned memory.
//
// A Pool is a bump allocator: construction-time Take calls carve
// subslices off one backing array and the pool is never freed or
// reused piecemeal — the simulator's hot state lives exactly as long
// as the Network that owns it. Pools are not thread-safe; all Takes
// happen during single-threaded network construction.
package soa

// Pool is a bump allocator over one contiguous backing array of T.
// The zero Pool (or a nil *Pool) is valid and degrades every Take to
// a plain allocation, which is what keeps arena-free construction —
// unit tests building a lone Router or UBS — working unchanged.
type Pool[T any] struct {
	backing []T
	off     int
	// overflow counts elements served by fallback allocations after
	// the backing array ran out; diagnostics for sizing formulas.
	overflow int
}

// NewPool returns a pool with capacity for n elements.
func NewPool[T any](n int) *Pool[T] {
	if n < 0 {
		n = 0
	}
	return &Pool[T]{backing: make([]T, n)}
}

// Take carves the next n zero-valued elements off the pool. When the
// pool is nil or exhausted it falls back to a fresh allocation — a
// sizing shortfall costs locality, never correctness.
func (p *Pool[T]) Take(n int) []T {
	if n <= 0 {
		return nil
	}
	if p == nil || p.off+n > len(p.backing) {
		if p != nil {
			p.overflow += n
		}
		return make([]T, n)
	}
	s := p.backing[p.off : p.off+n : p.off+n]
	p.off += n
	return s
}

// Used returns the number of elements taken from the backing array.
func (p *Pool[T]) Used() int {
	if p == nil {
		return 0
	}
	return p.off
}

// Overflow returns the number of elements served outside the backing
// array; nonzero means the sizing formula undershot.
func (p *Pool[T]) Overflow() int {
	if p == nil {
		return 0
	}
	return p.overflow
}
