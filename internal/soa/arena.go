package soa

import "vichar/internal/flit"

// Arena bundles the typed pools the simulator's hot state draws from:
// flit slot arrays, integer bookkeeping (control-table rings, credit
// counters), and uint64 bitmap words (availability trackers, VC
// masks). One Arena is built per Network with capacities from a
// closed-form sizing formula; every router, buffer and credit view
// then takes its per-(router, port, VC) arrays from it in ascending
// router-id order, which is what lays the whole mesh's tick-path state
// out contiguously (DESIGN.md §14).
//
// A nil *Arena is valid everywhere an Arena is accepted and degrades
// every take to a plain allocation — standalone construction (unit
// tests building one Router or UBS) needs no pool.
type Arena struct {
	Flits  *Pool[*flit.Flit]
	Ints   *Pool[int]
	Int64s *Pool[int64]
	Words  *Pool[uint64]
	Bools  *Pool[bool]
	Bytes  *Pool[uint8]
}

// NewArena returns an arena with the given per-pool capacities.
func NewArena(flits, ints, int64s, words, bools, bytes int) *Arena {
	return &Arena{
		Flits:  NewPool[*flit.Flit](flits),
		Ints:   NewPool[int](ints),
		Int64s: NewPool[int64](int64s),
		Words:  NewPool[uint64](words),
		Bools:  NewPool[bool](bools),
		Bytes:  NewPool[uint8](bytes),
	}
}

// TakeFlits carves n flit slots (nil-arena safe).
func (a *Arena) TakeFlits(n int) []*flit.Flit {
	if a == nil {
		return make([]*flit.Flit, n)
	}
	return a.Flits.Take(n)
}

// TakeInts carves n ints (nil-arena safe).
func (a *Arena) TakeInts(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Ints.Take(n)
}

// TakeInt64s carves n int64 cycle stamps (nil-arena safe).
func (a *Arena) TakeInt64s(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	return a.Int64s.Take(n)
}

// TakeWords carves n bitmap words (nil-arena safe).
func (a *Arena) TakeWords(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.Words.Take(n)
}

// TakeBools carves n bools (nil-arena safe).
func (a *Arena) TakeBools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.Bools.Take(n)
}

// TakeBytes carves n bytes (nil-arena safe); the route-memoization
// tables of internal/routing live here.
func (a *Arena) TakeBytes(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	return a.Bytes.Take(n)
}

// Overflow sums the pools' fallback allocations; nonzero means the
// sizing formula undershot somewhere.
func (a *Arena) Overflow() int {
	if a == nil {
		return 0
	}
	return a.Flits.Overflow() + a.Ints.Overflow() + a.Int64s.Overflow() +
		a.Words.Overflow() + a.Bools.Overflow() + a.Bytes.Overflow()
}
