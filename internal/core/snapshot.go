package core

import (
	"fmt"

	"vichar/internal/flit"
	"vichar/internal/snap"
)

// This file implements the checkpoint half of ViChaR's control
// structures. Everything here loads *in place*: the slot array,
// tracker bitmaps and control-table rings are arena-backed and
// aliased by live pointers, so restore copies values into the
// existing arrays rather than replacing them.

// save writes the tracker's bitmap and free count.
func (t *Tracker) save(w *snap.Writer) {
	w.U64s(t.words)
	w.Int(t.free)
}

// load restores a tracker of identical size in place.
func (t *Tracker) load(r *snap.Reader) error {
	r.U64sInto(t.words)
	free := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if free < 0 || free > t.n {
		return fmt.Errorf("core: snapshot tracker free count %d outside [0,%d]", free, t.n)
	}
	t.free = free
	return nil
}

// save writes the control table's rings, head/count registers and
// active-row count.
func (t *Table) save(w *snap.Writer) {
	w.Ints(t.flat)
	w.Ints(t.head)
	w.Ints(t.count)
	w.Int(t.active)
}

// load restores a table of identical shape in place.
func (t *Table) load(r *snap.Reader) error {
	r.IntsInto(t.flat)
	r.IntsInto(t.head)
	r.IntsInto(t.count)
	active := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if active < 0 || active > len(t.head) {
		return fmt.Errorf("core: snapshot table active rows %d outside [0,%d]", active, len(t.head))
	}
	t.active = active
	return nil
}

// SaveState serializes the Token Dispenser's availability bitmaps.
func (d *Dispenser) SaveState(w *snap.Writer) {
	w.Section("dispenser")
	d.normal.save(w)
	w.Bool(d.hasEscape)
	if d.hasEscape {
		d.escape.save(w)
	}
}

// LoadState restores a dispenser constructed with the same token
// shape.
func (d *Dispenser) LoadState(r *snap.Reader) error {
	if err := r.Section("dispenser"); err != nil {
		return err
	}
	if err := d.normal.load(r); err != nil {
		return err
	}
	if has := r.Bool(); has != d.hasEscape {
		return fmt.Errorf("core: snapshot dispenser escape set %v, constructed %v", has, d.hasEscape)
	}
	if d.hasEscape {
		if err := d.escape.load(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// ForEachFlit calls fn for every flit stored in the unified buffer.
func (b *UBS) ForEachFlit(fn func(*flit.Flit)) {
	for _, f := range b.slots {
		if f != nil {
			fn(f)
		}
	}
}

// SaveState serializes the unified buffer's mutable contents: slot
// occupancy (as flit references), arrival stamps, the readiness
// overlay, the Slot Availability Tracker and the VC Control Table.
func (b *UBS) SaveState(w *snap.Writer) {
	w.Section("ubs")
	w.Int(len(b.slots))
	for _, f := range b.slots {
		w.Flit(f)
	}
	w.I64s(b.arrived)
	w.I64s(b.headArrived)
	w.U64s(b.readyMask)
	w.U64s(b.pendMask)
	w.I64(b.pendCycle)
	b.tracker.save(w)
	b.table.save(w)
}

// LoadState restores contents saved by SaveState into a UBS
// constructed with the same slot and VC-row counts.
func (b *UBS) LoadState(r *snap.Reader, resolve snap.Resolver) error {
	if err := r.Section("ubs"); err != nil {
		return err
	}
	if n := r.Int(); n != len(b.slots) {
		return fmt.Errorf("core: snapshot has %d UBS slots, buffer has %d", n, len(b.slots))
	}
	for i := range b.slots {
		f, err := r.Flit(resolve)
		if err != nil {
			return err
		}
		b.slots[i] = f
	}
	r.I64sInto(b.arrived)
	r.I64sInto(b.headArrived)
	r.U64sInto(b.readyMask)
	r.U64sInto(b.pendMask)
	b.pendCycle = r.I64()
	if err := b.tracker.load(r); err != nil {
		return err
	}
	return b.table.load(r)
}
