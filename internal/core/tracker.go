package core

import (
	"fmt"
	"math/bits"

	"vichar/internal/soa"
)

// Tracker is the availability bookkeeping shared by the Slot
// Availability Tracker and the VC Availability Tracker (paper Figure
// 9 bottom-right and Figure 10 top-left): one bit per entry — 1 for
// available, 0 for occupied — plus a free count. Acquire grants the
// top-most (lowest-numbered) available entry with a word scan and a
// trailing-zero count, matching the combinational single-cycle
// hardware; the bitmap words live in the network arena so every
// tracker of a router sits on adjacent cache lines.
type Tracker struct {
	words []uint64
	n     int
	free  int
}

// NewTracker returns a tracker over n entries, all available.
func NewTracker(n int) *Tracker {
	t := &Tracker{}
	t.init(n, nil)
	return t
}

// init readies a (possibly embedded) tracker over n entries, drawing
// its bitmap from the arena when one is supplied.
func (t *Tracker) init(n int, a *soa.Arena) {
	if n < 1 {
		panic(fmt.Sprintf("core: tracker needs at least one entry, got %d", n))
	}
	t.n = n
	t.free = n
	t.words = a.TakeWords((n + 63) / 64)
	for i := range t.words {
		t.words[i] = ^uint64(0)
	}
	// Bits at or above n stay permanently zero so word scans never
	// grant a phantom entry.
	if r := uint(n) & 63; r != 0 {
		t.words[len(t.words)-1] = 1<<r - 1
	}
}

// Size returns the number of tracked entries.
func (t *Tracker) Size() int { return t.n }

// Free returns the number of available entries.
func (t *Tracker) Free() int { return t.free }

// Available reports whether entry i is free.
func (t *Tracker) Available(i int) bool {
	return i >= 0 && i < t.n && t.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Acquire claims and returns the top-most available entry, or -1 when
// the table is all-zero (everything occupied) — the condition the
// paper reflects into the credit information sent to adjacent
// routers.
func (t *Tracker) Acquire() int {
	if t.free == 0 {
		return -1
	}
	for w, m := range t.words {
		if m != 0 {
			b := bits.TrailingZeros64(m)
			t.words[w] = m &^ (1 << uint(b))
			t.free--
			return w<<6 + b
		}
	}
	//vichar:invariant unreachable while free>0 — the free counter diverged from the availability bitmap
	panic("core: tracker free count out of sync with bitmap")
}

// rangeWord masks word w of the bitmap down to the bits covering
// entries [lo, hi).
func (t *Tracker) rangeWord(w, lo, hi int) uint64 {
	m := t.words[w]
	if w == lo>>6 {
		m &= ^uint64(0) << (uint(lo) & 63)
	}
	if w == (hi-1)>>6 {
		if r := uint(hi) & 63; r != 0 {
			m &= 1<<r - 1
		}
	}
	return m
}

// AcquireRange claims and returns the top-most available entry within
// [lo, hi), or -1 when that span is fully occupied. AcquireRange over
// the whole tracker grants exactly what Acquire would — the span is a
// restriction, not a different policy.
func (t *Tracker) AcquireRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return -1
	}
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		if m := t.rangeWord(w, lo, hi); m != 0 {
			b := bits.TrailingZeros64(m)
			t.words[w] &^= 1 << uint(b)
			t.free--
			return w<<6 + b
		}
	}
	return -1
}

// FreeInRange returns the number of available entries within [lo, hi).
func (t *Tracker) FreeInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return 0
	}
	n := 0
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		n += bits.OnesCount64(t.rangeWord(w, lo, hi))
	}
	return n
}

// Release marks entry i available again. Releasing a free entry is a
// bookkeeping bug and panics.
func (t *Tracker) Release(i int) {
	if i < 0 || i >= t.n {
		//vichar:invariant releasing an entry outside the tracker means a corrupted slot id
		panic(fmt.Sprintf("core: release of entry %d outside tracker of %d", i, t.n))
	}
	bit := uint64(1) << (uint(i) & 63)
	if t.words[i>>6]&bit != 0 {
		//vichar:invariant double release — the slot-conservation bug the audit exists to catch
		panic(fmt.Sprintf("core: double release of entry %d", i))
	}
	t.words[i>>6] |= bit
	t.free++
}
