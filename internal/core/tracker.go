package core

import "fmt"

// Tracker is the availability bookkeeping shared by the Slot
// Availability Tracker and the VC Availability Tracker (paper Figure
// 9 bottom-right and Figure 10 top-left): one bit per entry — 1 for
// available, 0 for occupied — plus a pointer to the top-most
// available entry. Acquire and Release are O(1) amortized, matching
// the combinational single-cycle hardware.
type Tracker struct {
	avail []bool
	free  int
	// next caches the top-most available pointer; it is advanced
	// lazily and wraps on release of a lower index.
	next int
}

// NewTracker returns a tracker over n entries, all available.
func NewTracker(n int) *Tracker {
	if n < 1 {
		panic(fmt.Sprintf("core: tracker needs at least one entry, got %d", n))
	}
	t := &Tracker{avail: make([]bool, n), free: n}
	for i := range t.avail {
		t.avail[i] = true
	}
	return t
}

// Size returns the number of tracked entries.
func (t *Tracker) Size() int { return len(t.avail) }

// Free returns the number of available entries.
func (t *Tracker) Free() int { return t.free }

// Available reports whether entry i is free.
func (t *Tracker) Available(i int) bool {
	return i >= 0 && i < len(t.avail) && t.avail[i]
}

// Acquire claims and returns the top-most available entry, or -1 when
// the table is all-zero (everything occupied) — the condition the
// paper reflects into the credit information sent to adjacent
// routers.
func (t *Tracker) Acquire() int {
	if t.free == 0 {
		return -1
	}
	n := len(t.avail)
	for i := 0; i < n; i++ {
		idx := (t.next + i) % n
		if t.avail[idx] {
			t.avail[idx] = false
			t.free--
			t.next = (idx + 1) % n
			return idx
		}
	}
	//vichar:invariant unreachable while free>0 — the free counter diverged from the availability bitmap
	panic("core: tracker free count out of sync with bitmap")
}

// Release marks entry i available again. Releasing a free entry is a
// bookkeeping bug and panics.
func (t *Tracker) Release(i int) {
	if i < 0 || i >= len(t.avail) {
		//vichar:invariant releasing an entry outside the tracker means a corrupted slot id
		panic(fmt.Sprintf("core: release of entry %d outside tracker of %d", i, len(t.avail)))
	}
	if t.avail[i] {
		//vichar:invariant double release — the slot-conservation bug the audit exists to catch
		panic(fmt.Sprintf("core: double release of entry %d", i))
	}
	t.avail[i] = true
	t.free++
	if i < t.next {
		t.next = i
	}
}
