package core

import (
	"fmt"

	"vichar/internal/buffers"
	"vichar/internal/flit"
	"vichar/internal/soa"
)

// UBS is the Unified Buffer Structure of one router input port: a
// pool of slots flits shared by up to slots virtual channels.
// Physically it is the same storage as a generic v x k buffer —
// "logically grouped in a single vk-flit entity" (paper §3.2) — so
// its capacity is v*k, but any slot can serve any VC and a VC's slots
// need not be consecutive.
//
// UBS implements buffers.Buffer. The arriving-flit path consults the
// Slot Availability Tracker for a free slot and records it in the VC
// Control Table; the departing-flit path reads the table row's first
// entry. Both complete within the cycle, and flits become readable
// the cycle after they are written (buffer-write stage), exactly like
// the generic parallel FIFO.
type UBS struct {
	slots []*flit.Flit
	// arrived[i] mirrors slots[i].ArrivedAt for occupied slots, so the
	// switch allocator's per-cycle readiness polls stay inside the
	// arena-backed side arrays instead of chasing flit pointers.
	arrived []int64
	// headArrived[vc] caches the arrival stamp of the VC's
	// departing-flit pointer (neverReady when the row is empty), so
	// Ready is one load: a waiting VC is polled every cycle but its
	// head only changes on a push to an empty row or a pop.
	headArrived []int64
	// readyMask/pendMask accelerate the switch allocator's whole-port
	// readiness poll to one AND per 64 VCs (DESIGN.md §14). Bit v of
	// readyMask is set iff Ready(v, now) for every now > pendCycle;
	// bits whose head arrived AT cycle pendCycle wait in pendMask and
	// are promoted by the first operation of a later cycle. The stamps
	// above stay authoritative; the masks are a derived overlay,
	// cross-checked by CheckReadyMasks from the invariant audit.
	readyMask []uint64
	pendMask  []uint64
	pendCycle int64
	tracker   Tracker
	table     Table
}

// neverReady marks an empty VC row in headArrived: no cycle count
// reaches it, so Ready's single compare also answers "is there a
// flit at all".
const neverReady = int64(^uint64(0) >> 1)

// NewUBS returns a unified buffer with the given slot count. The
// number of VC rows equals the slot count: under full load every slot
// can be its own single-flit VC (paper Figure 5, rightmost
// configuration).
func NewUBS(slots int) *UBS { return NewUBSWithVCs(slots, slots) }

// NewUBSWithVCs returns a unified buffer whose control table has
// fewer VC rows than slots; used by the ablation that caps the Token
// Dispenser below the full vk.
func NewUBSWithVCs(slots, vcs int) *UBS { return NewUBSIn(nil, slots, vcs) }

// NewUBSIn is NewUBSWithVCs drawing the slot array, tracker bitmap and
// control-table rings from the arena (nil-arena safe), so the unified
// buffers of adjacent ports and routers pack contiguously.
func NewUBSIn(a *soa.Arena, slots, vcs int) *UBS {
	if slots < 1 {
		panic(fmt.Sprintf("core: UBS needs at least one slot, got %d", slots))
	}
	if vcs < 1 || vcs > slots {
		panic(fmt.Sprintf("core: UBS VC rows must be in [1,%d], got %d", slots, vcs))
	}
	w := (vcs + 63) / 64
	b := &UBS{
		slots:       a.TakeFlits(slots),
		arrived:     a.TakeInt64s(slots),
		headArrived: a.TakeInt64s(vcs),
		readyMask:   a.TakeWords(w),
		pendMask:    a.TakeWords(w),
	}
	for i := range b.headArrived {
		b.headArrived[i] = neverReady
	}
	b.tracker.init(slots, a)
	// Any slot can serve any VC, so each row's ring must be able to
	// hold every slot.
	b.table.init(vcs, slots, a)
	return b
}

// Slots returns the pool capacity.
func (b *UBS) Slots() int { return len(b.slots) }

// MaxVCs returns the number of VC identifiers (the control table's
// row count; equal to the slot count unless capped).
func (b *UBS) MaxVCs() int { return b.table.Rows() }

// FreeSlotsFor returns the shared pool headroom; every VC sees the
// same pool.
func (b *UBS) FreeSlotsFor(vc int) int {
	if vc < 0 || vc >= b.table.Rows() {
		return 0
	}
	return b.tracker.Free()
}

// Write steers f into the slot indicated by the Slot Availability
// Tracker and appends the slot ID to f.VC's control-table row.
func (b *UBS) Write(f *flit.Flit, now int64) error {
	if f.VC < 0 || f.VC >= b.table.Rows() {
		return buffers.ErrBadVC
	}
	slot := b.tracker.Acquire()
	if slot < 0 {
		return buffers.ErrFull
	}
	f.ArrivedAt = now
	b.slots[slot] = f
	b.arrived[slot] = now
	if b.table.Len(f.VC) == 0 {
		b.headArrived[f.VC] = now
		b.flushPend(now)
		b.pendMask[uint(f.VC)>>6] |= 1 << (uint(f.VC) & 63)
	}
	b.table.Append(f.VC, slot)
	return nil
}

// flushPend promotes pending bits stamped before now into readyMask;
// after it returns, pendMask collects bits stamped exactly now.
func (b *UBS) flushPend(now int64) {
	if b.pendCycle == now {
		return
	}
	for i, p := range b.pendMask {
		if p != 0 {
			b.readyMask[i] |= p
			b.pendMask[i] = 0
		}
	}
	b.pendCycle = now
}

// ReadyWords returns the per-VC readiness bitmask as of cycle now:
// bit v is set iff Ready(v, now). The switch allocator ANDs it
// against its active-VC mask, turning the whole-port poll into one
// word operation per 64 VCs. Callers must treat the words as
// read-only and re-call each cycle (the call promotes bits that
// became readable at the cycle boundary).
func (b *UBS) ReadyWords(now int64) []uint64 {
	b.flushPend(now)
	return b.readyMask
}

// Front returns the flit at the VC's departing-flit pointer if it is
// readable this cycle. The cached head stamp gates the control-table
// walk: an empty or not-yet-readable row answers without it.
func (b *UBS) Front(vc int, now int64) *flit.Flit {
	if vc < 0 || vc >= len(b.headArrived) || b.headArrived[vc] >= now {
		return nil
	}
	slot := b.table.Head(vc)
	f := b.slots[slot]
	if f == nil {
		//vichar:invariant the VC Control Table must only name occupied slots; an empty one is table/tracker divergence
		panic(fmt.Sprintf("core: control table names empty slot %d for vc %d", slot, vc))
	}
	return f
}

// Ready reports whether Front would return a flit: one load against
// the cached head arrival stamp — no control-table walk, no flit
// pointer chase — which is what the switch allocator's per-cycle
// polling wants.
func (b *UBS) Ready(vc int, now int64) bool {
	return vc >= 0 && vc < len(b.headArrived) && b.headArrived[vc] < now
}

// Pop removes the VC's head flit, NULLing its table entry and
// returning its slot to the tracker. It reads the departing-flit
// pointer once instead of re-running Front's lookup.
func (b *UBS) Pop(vc int, now int64) (*flit.Flit, error) {
	if vc < 0 || vc >= len(b.headArrived) || b.headArrived[vc] >= now {
		return nil, buffers.ErrEmpty
	}
	slot, next := b.table.PopHeadNext(vc)
	f := b.slots[slot]
	if f == nil {
		//vichar:invariant the VC Control Table must only name occupied slots; an empty one is table/tracker divergence
		panic(fmt.Sprintf("core: control table names empty slot %d for vc %d", slot, vc))
	}
	b.slots[slot] = nil
	b.tracker.Release(slot)
	// The popped head was readable (stamp < now), so after promoting
	// anything stamped before now its bit sits in readyMask — a Pop
	// reached through the stamp-polling path may not have flushed yet
	// this cycle. The bit then stays only if the new head is itself
	// already readable.
	b.flushPend(now)
	if next >= 0 {
		at := b.arrived[next]
		b.headArrived[vc] = at
		if at >= now {
			b.readyMask[uint(vc)>>6] &^= 1 << (uint(vc) & 63)
			b.pendMask[uint(vc)>>6] |= 1 << (uint(vc) & 63)
		}
	} else {
		b.headArrived[vc] = neverReady
		b.readyMask[uint(vc)>>6] &^= 1 << (uint(vc) & 63)
	}
	return f, nil
}

// CheckReadyMasks cross-checks the readiness overlay against the
// authoritative head stamps at cycle now: bit v of (readyMask OR
// still-pending-from-now pendMask-for-next-cycle) must equal
// Ready(v, now) after promotion. Used by the invariant audit.
func (b *UBS) CheckReadyMasks(now int64) error {
	b.flushPend(now)
	for v := 0; v < len(b.headArrived); v++ {
		got := b.readyMask[uint(v)>>6]&(1<<(uint(v)&63)) != 0
		if want := b.headArrived[v] < now; got != want {
			//vichar:alloc error construction on the audit mismatch path
			return fmt.Errorf("core: readyMask bit %d is %v, head stamp says %v (stamp %d, now %d)", v, got, want, b.headArrived[v], now)
		}
	}
	return nil
}

// Len returns the number of flits the VC currently owns.
func (b *UBS) Len(vc int) int { return b.table.Len(vc) }

// Occupied returns the number of slots in use.
func (b *UBS) Occupied() int { return len(b.slots) - b.tracker.Free() }

// InUseVCs returns the number of VCs holding at least one flit.
func (b *UBS) InUseVCs() int { return b.table.ActiveRows() }

// SlotsOf exposes the VC's slot list for tests and diagnostics.
func (b *UBS) SlotsOf(vc int) []int {
	//vichar:alloc diagnostic copy for tests and the invariant audit; not on the steady-state tick path
	return b.table.Slots(vc)
}

// SlotFree reports whether the Slot Availability Tracker marks slot i
// free; out-of-range IDs report false. Used by the invariant auditor
// to cross-check the tracker bitmap against the VC Control Table.
func (b *UBS) SlotFree(i int) bool { return b.tracker.Available(i) }

// FlitAt returns the flit stored in slot i, or nil when the slot is
// empty or out of range. Used by the invariant auditor.
func (b *UBS) FlitAt(i int) *flit.Flit {
	if i < 0 || i >= len(b.slots) {
		return nil
	}
	return b.slots[i]
}

var _ buffers.Buffer = (*UBS)(nil)
