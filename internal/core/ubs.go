package core

import (
	"fmt"

	"vichar/internal/buffers"
	"vichar/internal/flit"
)

// UBS is the Unified Buffer Structure of one router input port: a
// pool of slots flits shared by up to slots virtual channels.
// Physically it is the same storage as a generic v x k buffer —
// "logically grouped in a single vk-flit entity" (paper §3.2) — so
// its capacity is v*k, but any slot can serve any VC and a VC's slots
// need not be consecutive.
//
// UBS implements buffers.Buffer. The arriving-flit path consults the
// Slot Availability Tracker for a free slot and records it in the VC
// Control Table; the departing-flit path reads the table row's first
// entry. Both complete within the cycle, and flits become readable
// the cycle after they are written (buffer-write stage), exactly like
// the generic parallel FIFO.
type UBS struct {
	slots   []*flit.Flit
	tracker *Tracker
	table   *Table
}

// NewUBS returns a unified buffer with the given slot count. The
// number of VC rows equals the slot count: under full load every slot
// can be its own single-flit VC (paper Figure 5, rightmost
// configuration).
func NewUBS(slots int) *UBS { return NewUBSWithVCs(slots, slots) }

// NewUBSWithVCs returns a unified buffer whose control table has
// fewer VC rows than slots; used by the ablation that caps the Token
// Dispenser below the full vk.
func NewUBSWithVCs(slots, vcs int) *UBS {
	if slots < 1 {
		panic(fmt.Sprintf("core: UBS needs at least one slot, got %d", slots))
	}
	if vcs < 1 || vcs > slots {
		panic(fmt.Sprintf("core: UBS VC rows must be in [1,%d], got %d", slots, vcs))
	}
	return &UBS{
		slots:   make([]*flit.Flit, slots),
		tracker: NewTracker(slots),
		table:   NewTable(vcs),
	}
}

// Slots returns the pool capacity.
func (b *UBS) Slots() int { return len(b.slots) }

// MaxVCs returns the number of VC identifiers (the control table's
// row count; equal to the slot count unless capped).
func (b *UBS) MaxVCs() int { return b.table.Rows() }

// FreeSlotsFor returns the shared pool headroom; every VC sees the
// same pool.
func (b *UBS) FreeSlotsFor(vc int) int {
	if vc < 0 || vc >= b.table.Rows() {
		return 0
	}
	return b.tracker.Free()
}

// Write steers f into the slot indicated by the Slot Availability
// Tracker and appends the slot ID to f.VC's control-table row.
func (b *UBS) Write(f *flit.Flit, now int64) error {
	if f.VC < 0 || f.VC >= b.table.Rows() {
		return fmt.Errorf("%w: vc %d of %d", buffers.ErrBadVC, f.VC, b.table.Rows())
	}
	slot := b.tracker.Acquire()
	if slot < 0 {
		return fmt.Errorf("%w: all %d UBS slots occupied", buffers.ErrFull, len(b.slots))
	}
	f.ArrivedAt = now
	b.slots[slot] = f
	b.table.Append(f.VC, slot)
	return nil
}

// Front returns the flit at the VC's departing-flit pointer if it is
// readable this cycle.
func (b *UBS) Front(vc int, now int64) *flit.Flit {
	slot := b.table.Head(vc)
	if slot < 0 {
		return nil
	}
	f := b.slots[slot]
	if f == nil {
		//vichar:invariant the VC Control Table must only name occupied slots; an empty one is table/tracker divergence
		panic(fmt.Sprintf("core: control table names empty slot %d for vc %d", slot, vc))
	}
	if f.ArrivedAt >= now {
		return nil
	}
	return f
}

// Pop removes the VC's head flit, NULLing its table entry and
// returning its slot to the tracker.
func (b *UBS) Pop(vc int, now int64) (*flit.Flit, error) {
	if b.Front(vc, now) == nil {
		return nil, fmt.Errorf("%w: vc %d", buffers.ErrEmpty, vc)
	}
	slot := b.table.PopHead(vc)
	f := b.slots[slot]
	b.slots[slot] = nil
	b.tracker.Release(slot)
	return f, nil
}

// Len returns the number of flits the VC currently owns.
func (b *UBS) Len(vc int) int { return b.table.Len(vc) }

// Occupied returns the number of slots in use.
func (b *UBS) Occupied() int { return len(b.slots) - b.tracker.Free() }

// InUseVCs returns the number of VCs holding at least one flit.
func (b *UBS) InUseVCs() int { return b.table.ActiveRows() }

// SlotsOf exposes the VC's slot list for tests and diagnostics.
func (b *UBS) SlotsOf(vc int) []int {
	//vichar:alloc diagnostic copy for tests and the invariant audit; not on the steady-state tick path
	return b.table.Slots(vc)
}

// SlotFree reports whether the Slot Availability Tracker marks slot i
// free; out-of-range IDs report false. Used by the invariant auditor
// to cross-check the tracker bitmap against the VC Control Table.
func (b *UBS) SlotFree(i int) bool { return b.tracker.Available(i) }

// FlitAt returns the flit stored in slot i, or nil when the slot is
// empty or out of range. Used by the invariant auditor.
func (b *UBS) FlitAt(i int) *flit.Flit {
	if i < 0 || i >= len(b.slots) {
		return nil
	}
	return b.slots[i]
}

var _ buffers.Buffer = (*UBS)(nil)
