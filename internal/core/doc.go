// Package core implements the paper's contribution: the dynamic
// Virtual Channel Regulator (ViChaR), composed of the Unified Buffer
// Structure (UBS) and the Unified Control Logic (UCL).
//
// One ViChaR module regulates one router port. Physically the UBS is
// the same v*k flit slots a generic router has; the UCL makes them a
// single logical pool and dispenses a variable number of virtual
// channels over it — between v deep VCs under light traffic and v*k
// single-slot VCs under heavy traffic — with at most one packet per
// VC, so head-of-line blocking within a VC cannot occur.
//
// The five UCL sub-modules of paper Figure 6 map onto this package as
// follows:
//
//   - VC Control Table      → Table (table.go): per-VC ordered slot
//     ID lists; a NULLed row is a free VC.
//   - Slot Availability Tracker → Tracker (tracker.go): a bitmap with
//     a top-most-available pointer.
//   - VC Availability Tracker   → Tracker, instantiated over VC IDs
//     inside the Dispenser.
//   - Token (VC) Dispenser  → Dispenser (dispenser.go): FCFS grant of
//     free VC tokens, escape-channel fallback for deadlock recovery.
//   - Arriving/Departing Flit Pointers Logic → the Write/Front/Pop
//     paths of UBS (ubs.go), which steer flits to slots indicated by
//     the Slot Availability Tracker and read each VC's first non-NULL
//     entry.
//
// All sub-modules complete their work within a single simulated
// cycle, reflecting the paper's single-clock table-based design (vs.
// the DAMQ's 3-cycle linked lists).
//
// In the full router, the UBS sits at each input port while the
// Dispenser state is mirrored at the upstream router's output port —
// exactly the logical split of paper Figure 6, where the token
// dispenser and second-stage VC arbitration serve "all flits destined
// to a particular output port".
package core
