package core

import (
	"fmt"

	"vichar/internal/soa"
)

// Table is the VC Control Table, "the central hub of ViChaR's
// operation" (paper §3.2.2): one row per virtual channel ID, each row
// holding, in arrival order, the slot IDs of the flits that VC
// currently owns in the unified buffer. Rows are NULLed (emptied) to
// mark free VCs; a VC's slots may be non-consecutive, which is what
// frees ViChaR from the contiguity constraints of static buffers.
//
// Rows are fixed-stride ring buffers over one flat arena-backed array
// (vcs rows x stride entries): Append, Head and PopHead are all O(1)
// index arithmetic, and a router's whole table packs into a handful
// of cache lines instead of per-row heap slices.
//
// The Arriving Flit Pointer of a VC corresponds to appending to its
// row; the Departing Flit Pointer is the row's first entry.
type Table struct {
	flat   []int // vcs rows x stride ring entries
	head   []int // per row: ring index of the departing-flit pointer
	count  []int // per row: entries held
	stride int
	active int
}

// NewTable returns a control table with vcs rows, each able to hold
// vcs entries (the paper sizes it at vk rows so every slot can be its
// own VC; the UBS widens rows to its slot count via newTable).
func NewTable(vcs int) *Table {
	t := &Table{}
	t.init(vcs, vcs, nil)
	return t
}

// init readies a (possibly embedded) table of vcs rows x stride
// entries, drawing storage from the arena when one is supplied.
func (t *Table) init(vcs, stride int, a *soa.Arena) {
	if vcs < 1 {
		panic(fmt.Sprintf("core: control table needs at least one row, got %d", vcs))
	}
	if stride < 1 {
		panic(fmt.Sprintf("core: control table rows need at least one entry, got %d", stride))
	}
	t.stride = stride
	t.flat = a.TakeInts(vcs * stride)
	t.head = a.TakeInts(vcs)
	t.count = a.TakeInts(vcs)
}

// Rows returns the number of VC rows.
func (t *Table) Rows() int { return len(t.head) }

// ActiveRows returns the number of rows currently holding at least
// one slot ID (in-use VCs with buffered flits).
func (t *Table) ActiveRows() int { return t.active }

// Len returns the number of slots row vc currently holds.
func (t *Table) Len(vc int) int {
	if vc < 0 || vc >= len(t.head) {
		return 0
	}
	return t.count[vc]
}

// Append records that the newest flit of VC vc was steered into slot.
func (t *Table) Append(vc, slot int) {
	if vc < 0 || vc >= len(t.head) {
		//vichar:invariant the UBS validates VC ids before steering a flit; an out-of-range row is bookkeeping corruption
		panic(fmt.Sprintf("core: control table append to row %d of %d", vc, len(t.head)))
	}
	n := t.count[vc]
	if n == t.stride {
		//vichar:invariant a row holds at most the buffer's slot count; overflowing it means tracker/table divergence
		panic(fmt.Sprintf("core: control table row %d overflows its %d-entry ring", vc, t.stride))
	}
	if n == 0 {
		t.active++
	}
	pos := t.head[vc] + n
	if pos >= t.stride {
		pos -= t.stride
	}
	t.flat[vc*t.stride+pos] = slot
	t.count[vc] = n + 1
}

// Head returns the slot ID of VC vc's departing-flit pointer (its
// first non-NULL entry), or -1 when the row is empty.
func (t *Table) Head(vc int) int {
	if vc < 0 || vc >= len(t.head) || t.count[vc] == 0 {
		return -1
	}
	return t.flat[vc*t.stride+t.head[vc]]
}

// PopHead NULLs out VC vc's first entry (its flit departed) and
// returns the freed slot ID. It panics on an empty row — the router
// must not dequeue from an empty VC.
func (t *Table) PopHead(vc int) int {
	slot, _ := t.PopHeadNext(vc)
	return slot
}

// PopHeadNext is PopHead that also reports the row's new head slot
// (-1 when the row emptied), saving the departure path a second
// head lookup.
func (t *Table) PopHeadNext(vc int) (slot, next int) {
	if vc < 0 || vc >= len(t.head) || t.count[vc] == 0 {
		//vichar:invariant the router must not dequeue from an empty VC; Front gates every Pop
		panic(fmt.Sprintf("core: control table pop from empty row %d", vc))
	}
	h := t.head[vc]
	slot = t.flat[vc*t.stride+h]
	h++
	if h == t.stride {
		h = 0
	}
	t.head[vc] = h
	n := t.count[vc] - 1
	t.count[vc] = n
	if n == 0 {
		t.active--
		return slot, -1
	}
	return slot, t.flat[vc*t.stride+h]
}

// Slots returns a copy of VC vc's slot list in FIFO order; intended
// for tests and diagnostics.
func (t *Table) Slots(vc int) []int {
	if vc < 0 || vc >= len(t.head) {
		return nil
	}
	//vichar:alloc diagnostic copy for tests and the invariant audit; not on the steady-state tick path
	out := make([]int, t.count[vc])
	for i := range out {
		pos := t.head[vc] + i
		if pos >= t.stride {
			pos -= t.stride
		}
		out[i] = t.flat[vc*t.stride+pos]
	}
	return out
}
