package core

import "fmt"

// Table is the VC Control Table, "the central hub of ViChaR's
// operation" (paper §3.2.2): one row per virtual channel ID, each row
// holding, in arrival order, the slot IDs of the flits that VC
// currently owns in the unified buffer. Rows are NULLed (emptied) to
// mark free VCs; a VC's slots may be non-consecutive, which is what
// frees ViChaR from the contiguity constraints of static buffers.
//
// The Arriving Flit Pointer of a VC corresponds to appending to its
// row; the Departing Flit Pointer is the row's first entry.
type Table struct {
	rows   [][]int
	active int
}

// NewTable returns a control table with vcs rows (the paper sizes it
// at vk rows so every slot can be its own VC).
func NewTable(vcs int) *Table {
	if vcs < 1 {
		panic(fmt.Sprintf("core: control table needs at least one row, got %d", vcs))
	}
	return &Table{rows: make([][]int, vcs)}
}

// Rows returns the number of VC rows.
func (t *Table) Rows() int { return len(t.rows) }

// ActiveRows returns the number of rows currently holding at least
// one slot ID (in-use VCs with buffered flits).
func (t *Table) ActiveRows() int { return t.active }

// Len returns the number of slots row vc currently holds.
func (t *Table) Len(vc int) int {
	if vc < 0 || vc >= len(t.rows) {
		return 0
	}
	return len(t.rows[vc])
}

// Append records that the newest flit of VC vc was steered into slot.
func (t *Table) Append(vc, slot int) {
	if vc < 0 || vc >= len(t.rows) {
		//vichar:invariant the UBS validates VC ids before steering a flit; an out-of-range row is bookkeeping corruption
		panic(fmt.Sprintf("core: control table append to row %d of %d", vc, len(t.rows)))
	}
	if len(t.rows[vc]) == 0 {
		t.active++
	}
	//vichar:alloc each row grows to the unified buffer's slot count once, then PopHead recycles it in place
	t.rows[vc] = append(t.rows[vc], slot)
}

// Head returns the slot ID of VC vc's departing-flit pointer (its
// first non-NULL entry), or -1 when the row is empty.
func (t *Table) Head(vc int) int {
	if vc < 0 || vc >= len(t.rows) || len(t.rows[vc]) == 0 {
		return -1
	}
	return t.rows[vc][0]
}

// PopHead NULLs out VC vc's first entry (its flit departed) and
// returns the freed slot ID. It panics on an empty row — the router
// must not dequeue from an empty VC.
func (t *Table) PopHead(vc int) int {
	if vc < 0 || vc >= len(t.rows) || len(t.rows[vc]) == 0 {
		//vichar:invariant the router must not dequeue from an empty VC; Front gates every Pop
		panic(fmt.Sprintf("core: control table pop from empty row %d", vc))
	}
	row := t.rows[vc]
	slot := row[0]
	n := copy(row, row[1:])
	t.rows[vc] = row[:n]
	if n == 0 {
		t.active--
	}
	return slot
}

// Slots returns a copy of VC vc's slot list in FIFO order; intended
// for tests and diagnostics.
func (t *Table) Slots(vc int) []int {
	if vc < 0 || vc >= len(t.rows) {
		return nil
	}
	//vichar:alloc diagnostic copy for tests and the invariant audit; not on the steady-state tick path
	out := make([]int, len(t.rows[vc]))
	copy(out, t.rows[vc])
	return out
}
