package core

import (
	"fmt"

	"vichar/internal/soa"
)

// Dispenser is the Token (VC) Dispenser: virtual channels are tokens,
// "granted to new packets and then returned to the dispenser upon
// release" (paper §3.2.2). Grants are first-come-first-served — the
// dispenser never prioritizes flits of existing VCs — which is what
// lets ViChaR self-throttle: heavy traffic wins more grants and gets
// many shallow VCs; light traffic requests few grants and the
// resident VCs enjoy the full buffer depth.
//
// When adaptive routing can deadlock, a configurable number of tokens
// are designated escape (drain) channels; they are granted only to
// packets that have been re-channelled onto the deterministic escape
// path after exceeding the deadlock threshold. The highest-numbered
// VC IDs are the escape set.
//
// In the full router one Dispenser instance lives at each output
// port, mirroring the VC availability of the downstream input port —
// the placement of paper Figure 6.
type Dispenser struct {
	normal Tracker
	escape Tracker
	// hasEscape records whether an escape set was configured; the
	// trackers are embedded by value so both availability bitmaps sit
	// next to the dispenser's own fields.
	hasEscape bool
	// escBase is the first escape VC ID.
	escBase int
}

// NewDispenser returns a dispenser over vcs tokens of which escapeVCs
// (the highest-numbered IDs) are reserved for deadlock recovery.
// escapeVCs may be zero when the routing function is inherently
// deadlock-free.
func NewDispenser(vcs, escapeVCs int) *Dispenser {
	return NewDispenserIn(nil, vcs, escapeVCs)
}

// NewDispenserIn is NewDispenser drawing the availability bitmaps from
// the arena (nil-arena safe).
func NewDispenserIn(a *soa.Arena, vcs, escapeVCs int) *Dispenser {
	if vcs < 1 {
		panic(fmt.Sprintf("core: dispenser needs at least one token, got %d", vcs))
	}
	if escapeVCs < 0 || escapeVCs >= vcs {
		panic(fmt.Sprintf("core: escape VCs (%d) must leave at least one regular token of %d", escapeVCs, vcs))
	}
	d := &Dispenser{escBase: vcs - escapeVCs}
	d.normal.init(vcs-escapeVCs, a)
	if escapeVCs > 0 {
		d.hasEscape = true
		d.escape.init(escapeVCs, a)
	}
	return d
}

// Tokens returns the total number of VC tokens.
func (d *Dispenser) Tokens() int {
	n := d.normal.Size()
	if d.hasEscape {
		n += d.escape.Size()
	}
	return n
}

// FreeNormal returns the number of available regular tokens.
func (d *Dispenser) FreeNormal() int { return d.normal.Free() }

// FreeEscape returns the number of available escape tokens.
func (d *Dispenser) FreeEscape() int {
	if !d.hasEscape {
		return 0
	}
	return d.escape.Free()
}

// InUse returns the number of dispensed (outstanding) tokens; this is
// the "number of VCs dispensed" metric of paper Figures 13(e)/(f).
func (d *Dispenser) InUse() int { return d.Tokens() - d.FreeNormal() - d.FreeEscape() }

// Grant dispenses the next free token FCFS. With escape set, the
// grant comes from the escape set (deadlock recovery path of paper
// Figure 10's flow diagram); otherwise from the regular set. It
// returns ok=false when the relevant availability table is all-zero,
// in which case the dispenser "stops granting new VCs to requesting
// packets".
func (d *Dispenser) Grant(escape bool) (vc int, ok bool) {
	if escape {
		if !d.hasEscape {
			return -1, false
		}
		i := d.escape.Acquire()
		if i < 0 {
			return -1, false
		}
		return d.escBase + i, true
	}
	i := d.normal.Acquire()
	if i < 0 {
		return -1, false
	}
	return i, true
}

// GrantIn dispenses the lowest free token whose global VC ID falls in
// [lo, hi) of the chosen set — the class-partitioned grant the
// transaction layer uses so the regulator dispenses within a VC
// class. GrantIn over a set's full ID range is identical to Grant.
func (d *Dispenser) GrantIn(escape bool, lo, hi int) (vc int, ok bool) {
	if escape {
		if !d.hasEscape {
			return -1, false
		}
		i := d.escape.AcquireRange(lo-d.escBase, hi-d.escBase)
		if i < 0 {
			return -1, false
		}
		return d.escBase + i, true
	}
	i := d.normal.AcquireRange(lo, hi)
	if i < 0 {
		return -1, false
	}
	return i, true
}

// FreeIn returns the number of available tokens whose global VC IDs
// fall in [lo, hi) of the chosen set.
func (d *Dispenser) FreeIn(escape bool, lo, hi int) int {
	if escape {
		if !d.hasEscape {
			return 0
		}
		return d.escape.FreeInRange(lo-d.escBase, hi-d.escBase)
	}
	return d.normal.FreeInRange(lo, hi)
}

// IsEscape reports whether the VC ID belongs to the escape set.
func (d *Dispenser) IsEscape(vc int) bool {
	return d.hasEscape && vc >= d.escBase
}

// Return releases a previously granted token (the packet's tail left
// the downstream buffer).
func (d *Dispenser) Return(vc int) {
	if vc < 0 || vc >= d.Tokens() {
		//vichar:invariant returning a token the dispenser never issued means VC id corruption upstream
		panic(fmt.Sprintf("core: return of token %d outside dispenser of %d", vc, d.Tokens()))
	}
	if vc >= d.escBase && d.hasEscape {
		d.escape.Release(vc - d.escBase)
		return
	}
	d.normal.Release(vc)
}
