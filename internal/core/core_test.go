package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vichar/internal/buffers"
	"vichar/internal/flit"
)

// --- Tracker (Slot / VC Availability Tracker) ---

func TestTrackerAcquireAll(t *testing.T) {
	tr := NewTracker(5)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		s := tr.Acquire()
		if s < 0 || s >= 5 || seen[s] {
			t.Fatalf("acquire %d returned %d (seen=%v)", i, s, seen)
		}
		seen[s] = true
	}
	if tr.Free() != 0 {
		t.Fatalf("free %d after exhausting", tr.Free())
	}
	if s := tr.Acquire(); s != -1 {
		t.Fatalf("all-zero tracker granted %d", s)
	}
}

func TestTrackerReleaseReacquire(t *testing.T) {
	tr := NewTracker(3)
	a := tr.Acquire()
	tr.Acquire()
	tr.Acquire()
	tr.Release(a)
	if tr.Free() != 1 || !tr.Available(a) {
		t.Fatal("release not reflected")
	}
	if got := tr.Acquire(); got != a {
		t.Fatalf("reacquire got %d, want the released %d", got, a)
	}
}

func TestTrackerDoubleReleasePanics(t *testing.T) {
	tr := NewTracker(2)
	s := tr.Acquire()
	tr.Release(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	tr.Release(s)
}

func TestTrackerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range release did not panic")
		}
	}()
	NewTracker(2).Release(5)
}

// Property: free count always equals the number of available bits and
// acquires never double-allocate.
func TestTrackerConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker(8)
		held := map[int]bool{}
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 {
				s := tr.Acquire()
				if len(held) == 8 {
					if s != -1 {
						return false
					}
				} else {
					if s < 0 || held[s] {
						return false
					}
					held[s] = true
				}
			} else if len(held) > 0 {
				for s := range held {
					delete(held, s)
					tr.Release(s)
					break
				}
			}
			if tr.Free() != 8-len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- VC Control Table ---

func TestTableAppendPopOrder(t *testing.T) {
	tab := NewTable(4)
	slots := []int{9, 2, 7, 0} // deliberately non-consecutive
	for _, s := range slots {
		tab.Append(1, s)
	}
	if tab.Len(1) != 4 || tab.ActiveRows() != 1 {
		t.Fatalf("len=%d active=%d", tab.Len(1), tab.ActiveRows())
	}
	for _, want := range slots {
		if got := tab.Head(1); got != want {
			t.Fatalf("head %d, want %d", got, want)
		}
		if got := tab.PopHead(1); got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
	}
	if tab.ActiveRows() != 0 || tab.Head(1) != -1 {
		t.Fatal("row not NULLed after draining")
	}
}

func TestTablePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty row did not panic")
		}
	}()
	NewTable(2).PopHead(0)
}

func TestTableSlotsCopy(t *testing.T) {
	tab := NewTable(2)
	tab.Append(0, 3)
	s := tab.Slots(0)
	s[0] = 99
	if tab.Head(0) != 3 {
		t.Fatal("Slots returned aliased storage")
	}
	if tab.Slots(7) != nil {
		t.Fatal("out-of-range row returned slots")
	}
}

// --- Token Dispenser ---

func TestDispenserGrantReturn(t *testing.T) {
	d := NewDispenser(4, 0)
	got := map[int]bool{}
	for i := 0; i < 4; i++ {
		vc, ok := d.Grant(false)
		if !ok || got[vc] {
			t.Fatalf("grant %d: vc=%d ok=%v", i, vc, ok)
		}
		got[vc] = true
	}
	if d.InUse() != 4 {
		t.Fatalf("in use %d, want 4", d.InUse())
	}
	if _, ok := d.Grant(false); ok {
		t.Fatal("grant with all tokens out")
	}
	d.Return(2)
	if vc, ok := d.Grant(false); !ok || vc != 2 {
		t.Fatalf("after return got %d/%v", vc, ok)
	}
}

func TestDispenserEscapeSet(t *testing.T) {
	d := NewDispenser(8, 2)
	if d.FreeNormal() != 6 || d.FreeEscape() != 2 {
		t.Fatalf("free split %d/%d", d.FreeNormal(), d.FreeEscape())
	}
	// Escape tokens are the highest IDs and only granted on request.
	e1, ok1 := d.Grant(true)
	e2, ok2 := d.Grant(true)
	if !ok1 || !ok2 || e1 < 6 || e2 < 6 || e1 == e2 {
		t.Fatalf("escape grants %d,%d", e1, e2)
	}
	if !d.IsEscape(e1) || d.IsEscape(0) {
		t.Fatal("IsEscape misclassifies")
	}
	if _, ok := d.Grant(true); ok {
		t.Fatal("escape grant with escape set exhausted")
	}
	// Normal grants are unaffected.
	for i := 0; i < 6; i++ {
		if vc, ok := d.Grant(false); !ok || vc >= 6 {
			t.Fatalf("normal grant %d: %d/%v", i, vc, ok)
		}
	}
	d.Return(e1)
	if d.FreeEscape() != 1 {
		t.Fatal("escape return not reflected")
	}
}

func TestDispenserNoEscapeConfigured(t *testing.T) {
	d := NewDispenser(4, 0)
	if _, ok := d.Grant(true); ok {
		t.Fatal("escape grant without an escape set")
	}
	if d.FreeEscape() != 0 {
		t.Fatal("phantom escape tokens")
	}
}

func TestDispenserFCFSOrder(t *testing.T) {
	// Tokens are dispensed from the top-most available entry, so the
	// grant order after interleaved returns is deterministic.
	d := NewDispenser(3, 0)
	a, _ := d.Grant(false)
	b, _ := d.Grant(false)
	d.Return(a)
	c, _ := d.Grant(false)
	if c != a {
		t.Fatalf("expected the freed token %d, got %d", a, c)
	}
	d.Return(b)
	d.Return(c)
}

func TestDispenserBadReturnPanics(t *testing.T) {
	d := NewDispenser(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range return did not panic")
		}
	}()
	d.Return(4)
}

func TestDispenserConstructorPanics(t *testing.T) {
	for i, c := range []func(){
		func() { NewDispenser(0, 0) },
		func() { NewDispenser(4, 4) },
		func() { NewDispenser(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

// --- UBS (Unified Buffer Structure) ---

func mkFlit(id uint64, vc int, typ flit.Type) *flit.Flit {
	return &flit.Flit{Pkt: &flit.Packet{ID: id, Size: 4}, Type: typ, VC: vc}
}

func TestUBSShape(t *testing.T) {
	b := NewUBS(16)
	if b.Slots() != 16 || b.MaxVCs() != 16 {
		t.Fatalf("shape %d/%d", b.Slots(), b.MaxVCs())
	}
	c := NewUBSWithVCs(16, 4)
	if c.Slots() != 16 || c.MaxVCs() != 4 {
		t.Fatalf("capped shape %d/%d", c.Slots(), c.MaxVCs())
	}
}

func TestUBSSingleVCFIFO(t *testing.T) {
	b := NewUBS(8)
	for i := uint64(0); i < 5; i++ {
		if err := b.Write(mkFlit(i, 3, flit.Body), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		f, err := b.Pop(3, 100)
		if err != nil || f.Pkt.ID != i {
			t.Fatalf("pop %d: %v (%v)", i, f, err)
		}
	}
}

// The UBS must let one VC's flits land in non-consecutive slots when
// other VCs interleave — the paper's key flexibility.
func TestUBSNonConsecutiveSlots(t *testing.T) {
	b := NewUBS(8)
	if err := b.Write(mkFlit(0, 0, flit.Head), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(mkFlit(1, 1, flit.Head), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(mkFlit(2, 0, flit.Body), 1); err != nil {
		t.Fatal(err)
	}
	s := b.SlotsOf(0)
	if len(s) != 2 || s[1]-s[0] == 1 {
		// slot 1 went to VC 1, so VC 0 holds slots {0, 2}.
		t.Fatalf("vc 0 slots %v, expected non-consecutive", s)
	}
	// FIFO order survives the scattering.
	f, err := b.Pop(0, 100)
	if err != nil || f.Pkt.ID != 0 {
		t.Fatalf("pop got %v (%v)", f, err)
	}
}

// A single VC may absorb the entire pool (few deep VCs under light
// traffic) and the pool exhausts exactly at capacity.
func TestUBSFullPoolOneVC(t *testing.T) {
	b := NewUBS(8)
	for i := uint64(0); i < 8; i++ {
		if err := b.Write(mkFlit(i, 0, flit.Body), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Write(mkFlit(99, 1, flit.Body), 1); !errors.Is(err, buffers.ErrFull) {
		t.Fatalf("overfull write returned %v", err)
	}
	if b.FreeSlotsFor(1) != 0 || b.Occupied() != 8 || b.InUseVCs() != 1 {
		t.Fatal("pool accounting wrong at capacity")
	}
}

// All slots as single-flit VCs (many shallow VCs under heavy
// traffic).
func TestUBSAllSingleFlitVCs(t *testing.T) {
	b := NewUBS(8)
	for vc := 0; vc < 8; vc++ {
		if err := b.Write(mkFlit(uint64(vc), vc, flit.Head), 1); err != nil {
			t.Fatal(err)
		}
	}
	if b.InUseVCs() != 8 {
		t.Fatalf("in-use VCs %d, want 8", b.InUseVCs())
	}
	for vc := 0; vc < 8; vc++ {
		f, err := b.Pop(vc, 10)
		if err != nil || f.Pkt.ID != uint64(vc) {
			t.Fatalf("vc %d pop %v (%v)", vc, f, err)
		}
	}
}

func TestUBSBadVC(t *testing.T) {
	b := NewUBSWithVCs(8, 4)
	if err := b.Write(mkFlit(0, 5, flit.Head), 1); !errors.Is(err, buffers.ErrBadVC) {
		t.Fatalf("write to capped-out vc returned %v", err)
	}
	if _, err := b.Pop(0, 10); !errors.Is(err, buffers.ErrEmpty) {
		t.Fatalf("pop of empty vc returned %v", err)
	}
}

func TestUBSSameCycleInvisibility(t *testing.T) {
	b := NewUBS(4)
	if err := b.Write(mkFlit(0, 0, flit.Head), 7); err != nil {
		t.Fatal(err)
	}
	if b.Front(0, 7) != nil {
		t.Fatal("flit visible in its write cycle")
	}
	if b.Front(0, 8) == nil {
		t.Fatal("flit invisible one cycle later")
	}
}

func TestUBSConstructorPanics(t *testing.T) {
	for i, c := range []func(){
		func() { NewUBS(0) },
		func() { NewUBSWithVCs(4, 0) },
		func() { NewUBSWithVCs(4, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

// Property: slot conservation — free + used == capacity after any
// random operation sequence, every VC keeps FIFO order, and no slot
// is double-allocated (checked implicitly by the tracker's panics).
func TestUBSConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewUBS(12)
		model := make([][]uint64, 12)
		occupied := 0
		id := uint64(0)
		now := int64(0)
		for step := 0; step < 600; step++ {
			now++
			vc := rng.Intn(12)
			if rng.Intn(2) == 0 && occupied < 12 {
				if err := b.Write(mkFlit(id, vc, flit.Body), now); err != nil {
					return false
				}
				model[vc] = append(model[vc], id)
				occupied++
				id++
			} else if f := b.Front(vc, now); f != nil {
				if len(model[vc]) == 0 || f.Pkt.ID != model[vc][0] {
					return false
				}
				if _, err := b.Pop(vc, now); err != nil {
					return false
				}
				model[vc] = model[vc][1:]
				occupied--
			}
			if b.Occupied() != occupied {
				return false
			}
			active := 0
			for v := range model {
				if b.Len(v) != len(model[v]) {
					return false
				}
				if len(model[v]) > 0 {
					active++
				}
			}
			if b.InUseVCs() != active {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
