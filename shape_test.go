package vichar_test

// Shape tests: statistical assertions that the simulator reproduces
// the paper's comparative claims. Absolute numbers differ from the
// authors' testbed; what must hold is who wins, roughly by how much,
// and where the crossovers fall. Runs are scaled down but large
// enough for stable means.

import (
	"sync"
	"testing"

	"vichar"
)

type shapeKey struct {
	arch    vichar.BufferArch
	slots   int
	vcs     int
	depth   int
	rate    float64
	traffic vichar.TrafficProcess
}

var (
	shapeMu    sync.Mutex
	shapeCache = map[shapeKey]vichar.Results{}
)

// shapeRun simulates one paper-platform configuration with caching so
// multiple assertions share runs.
func shapeRun(t *testing.T, key shapeKey) vichar.Results {
	t.Helper()
	shapeMu.Lock()
	if r, ok := shapeCache[key]; ok {
		shapeMu.Unlock()
		return r
	}
	shapeMu.Unlock()

	cfg := vichar.DefaultConfig()
	cfg.Arch = key.arch
	cfg.BufferSlots = key.slots
	if key.arch == vichar.Generic {
		cfg.VCs, cfg.VCDepth = key.vcs, key.depth
	}
	cfg.Traffic = key.traffic
	cfg.InjectionRate = key.rate
	cfg.WarmupPackets = 2_000
	cfg.MeasurePackets = 8_000
	cfg.MaxCycles = 150_000
	cfg.Seed = 1701

	res, err := vichar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shapeMu.Lock()
	shapeCache[key] = res
	shapeMu.Unlock()
	return res
}

func gen16(rate float64) shapeKey {
	return shapeKey{arch: vichar.Generic, slots: 16, vcs: 4, depth: 4, rate: rate}
}

func vic(slots int, rate float64) shapeKey {
	return shapeKey{arch: vichar.ViChaR, slots: slots, rate: rate}
}

// Near saturation ViChaR must clearly beat the equal-size generic
// buffer (the paper's ~25% average claim is dominated by this
// region).
func TestShapeViCharBeatsGenericNearSaturation(t *testing.T) {
	g := shapeRun(t, gen16(0.42))
	v := shapeRun(t, vic(16, 0.42))
	if v.AvgLatency >= g.AvgLatency {
		t.Fatalf("ViC-16 %.1f not below GEN-16 %.1f at 0.42", v.AvgLatency, g.AvgLatency)
	}
	gain := (g.AvgLatency - v.AvgLatency) / g.AvgLatency
	if gain < 0.08 {
		t.Fatalf("latency gain %.1f%% too small near saturation", gain*100)
	}
}

// At low load the two are indistinguishable (paper Figure 12(a)'s
// overlapping region).
func TestShapeLowLoadParity(t *testing.T) {
	g := shapeRun(t, gen16(0.10))
	v := shapeRun(t, vic(16, 0.10))
	diff := (v.AvgLatency - g.AvgLatency) / g.AvgLatency
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("low-load latencies diverge %.1f%% (GEN %.1f, ViC %.1f)",
			diff*100, g.AvgLatency, v.AvgLatency)
	}
}

// The 50%-buffer headline: ViC-8 matches GEN-16 at the paper's
// operating point of 0.25 (Figure 12(f): ViChaR only loses below 8
// flits/port).
func TestShapeHalfBufferEquivalence(t *testing.T) {
	g := shapeRun(t, gen16(0.25))
	v8 := shapeRun(t, vic(8, 0.25))
	diff := (v8.AvgLatency - g.AvgLatency) / g.AvgLatency
	if diff > 0.10 {
		t.Fatalf("ViC-8 latency %.1f is %.1f%% above GEN-16 %.1f at 0.25",
			v8.AvgLatency, diff*100, g.AvgLatency)
	}
	// And below that a sharp crossover appears, as in Figure 12(f).
	// The paper's knee sits at 8 flits/port; our router is somewhat
	// more buffer-efficient and crosses at 5 (see EXPERIMENTS.md).
	v5 := shapeRun(t, vic(5, 0.25))
	if v5.AvgLatency <= g.AvgLatency*1.05 {
		t.Fatalf("ViC-5 %.1f should be clearly worse than GEN-16 %.1f",
			v5.AvgLatency, g.AvgLatency)
	}
	v4 := shapeRun(t, vic(4, 0.25))
	if v4.AvgLatency <= v5.AvgLatency {
		t.Fatalf("latency should keep climbing as the pool shrinks: ViC-4 %.1f vs ViC-5 %.1f",
			v4.AvgLatency, v5.AvgLatency)
	}
}

// Figure 12(g): shrinking a static buffer always hurts.
func TestShapeGenericMonotoneInBufferSize(t *testing.T) {
	small := shapeRun(t, shapeKey{arch: vichar.Generic, slots: 8, vcs: 4, depth: 2, rate: 0.25})
	big := shapeRun(t, gen16(0.25))
	if small.AvgLatency <= big.AvgLatency {
		t.Fatalf("GEN-8 %.1f not above GEN-16 %.1f", small.AvgLatency, big.AvgLatency)
	}
}

// Figure 13(a): ViChaR sustains at least the generic throughput at
// high load.
func TestShapeThroughputAdvantage(t *testing.T) {
	g := shapeRun(t, gen16(0.45))
	v := shapeRun(t, vic(16, 0.45))
	if v.Throughput < g.Throughput {
		t.Fatalf("ViC-16 throughput %.2f below GEN-16 %.2f at 0.45", v.Throughput, g.Throughput)
	}
}

// Figure 13(d): the DAMQ's 3-cycle bookkeeping keeps it strictly
// slower than ViChaR at every load.
func TestShapeDAMQAlwaysSlower(t *testing.T) {
	for _, rate := range []float64{0.10, 0.30} {
		d := shapeRun(t, shapeKey{arch: vichar.DAMQ, slots: 16, rate: rate})
		v := shapeRun(t, vic(16, rate))
		if d.AvgLatency <= v.AvgLatency {
			t.Fatalf("DAMQ %.1f not above ViC %.1f at %.2f", d.AvgLatency, v.AvgLatency, rate)
		}
	}
}

// Figure 13(d): FC-CB tracks ViChaR at low load (both unified,
// single-cycle) but falls behind under heavy load for want of VCs.
func TestShapeFCCBDivergesUnderLoad(t *testing.T) {
	fLow := shapeRun(t, shapeKey{arch: vichar.FCCB, slots: 16, rate: 0.15})
	vLow := shapeRun(t, vic(16, 0.15))
	if d := (fLow.AvgLatency - vLow.AvgLatency) / vLow.AvgLatency; d > 0.05 || d < -0.05 {
		t.Fatalf("FC-CB should match ViChaR at low load: %.1f vs %.1f", fLow.AvgLatency, vLow.AvgLatency)
	}
	fHigh := shapeRun(t, shapeKey{arch: vichar.FCCB, slots: 16, rate: 0.44})
	vHigh := shapeRun(t, vic(16, 0.44))
	if fHigh.AvgLatency <= vHigh.AvgLatency {
		t.Fatalf("FC-CB %.1f should trail ViChaR %.1f at 0.44", fHigh.AvgLatency, vHigh.AvgLatency)
	}
}

// Figure 12(c): ViChaR moves flits through more efficiently, so its
// buffers sit emptier at equal load and size.
func TestShapeOccupancyLower(t *testing.T) {
	g := shapeRun(t, gen16(0.30))
	v := shapeRun(t, vic(16, 0.30))
	if v.AvgOccupancy >= g.AvgOccupancy {
		t.Fatalf("ViC occupancy %.1f%% not below GEN %.1f%%",
			v.AvgOccupancy*100, g.AvgOccupancy*100)
	}
}

// Figure 13(e): congestion concentrates in the mesh center, so the
// dispenser hands out more VCs there than at the corners.
func TestShapeSpatialVCGradient(t *testing.T) {
	res := shapeRun(t, vic(16, 0.30))
	cfg := vichar.DefaultConfig()
	center := res.PerNodeVCs[vichar.NodeAt(cfg, 3, 3)] + res.PerNodeVCs[vichar.NodeAt(cfg, 4, 4)]
	corner := res.PerNodeVCs[vichar.NodeAt(cfg, 0, 0)] + res.PerNodeVCs[vichar.NodeAt(cfg, 7, 7)]
	if center <= corner {
		t.Fatalf("center VC usage %.2f not above corner %.2f", center/2, corner/2)
	}
}

// Figure 13(f): as the network fills from cold start, mean in-use VCs
// grow.
func TestShapeTemporalVCGrowth(t *testing.T) {
	res := shapeRun(t, vic(16, 0.30))
	s := res.VCSeries
	if len(s) < 10 {
		t.Fatalf("series too short: %d", len(s))
	}
	early := (s[0].Value + s[1].Value) / 2
	n := len(s)
	late := (s[n-1].Value + s[n-2].Value) / 2
	if late <= early {
		t.Fatalf("VC usage did not grow: early %.2f late %.2f", early, late)
	}
}

// Figure 12(h) and Table 1: equal-size power within a few percent,
// half-size saves roughly a third.
func TestShapePowerRelations(t *testing.T) {
	g := shapeRun(t, gen16(0.25))
	v16 := shapeRun(t, vic(16, 0.25))
	v8 := shapeRun(t, vic(8, 0.25))
	ratio := v16.AvgPowerWatts / g.AvgPowerWatts
	if ratio < 0.98 || ratio > 1.10 {
		t.Fatalf("ViC-16/GEN-16 power ratio %.3f outside [0.98, 1.10]", ratio)
	}
	saving := 1 - v8.AvgPowerWatts/g.AvgPowerWatts
	if saving < 0.25 || saving > 0.45 {
		t.Fatalf("ViC-8 power saving %.1f%%, want ~34%%", saving*100)
	}
}

// Figure 13(c): no static re-shaping of 12 slots beats the dynamic
// organization.
func TestShapeVCOrganization(t *testing.T) {
	g43 := shapeRun(t, shapeKey{arch: vichar.Generic, slots: 12, vcs: 4, depth: 3, rate: 0.42})
	g34 := shapeRun(t, shapeKey{arch: vichar.Generic, slots: 12, vcs: 3, depth: 4, rate: 0.42})
	v12 := shapeRun(t, vic(12, 0.42))
	best := g43.Throughput
	if g34.Throughput > best {
		best = g34.Throughput
	}
	if v12.Throughput < best*0.98 {
		t.Fatalf("ViC-12 throughput %.2f below best static %.2f", v12.Throughput, best)
	}
}

// Self-similar traffic: the ViChaR advantage survives bursty
// arrivals (Figure 12(b)).
func TestShapeSelfSimilarAdvantage(t *testing.T) {
	g := shapeRun(t, shapeKey{arch: vichar.Generic, slots: 16, vcs: 4, depth: 4, rate: 0.32, traffic: vichar.SelfSimilar})
	v := shapeRun(t, shapeKey{arch: vichar.ViChaR, slots: 16, rate: 0.32, traffic: vichar.SelfSimilar})
	if v.AvgLatency > g.AvgLatency*1.02 {
		t.Fatalf("ViC-16 %.1f worse than GEN-16 %.1f under SS", v.AvgLatency, g.AvgLatency)
	}
}
