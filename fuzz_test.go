package vichar_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vichar"
)

// FuzzParseTxn throws arbitrary strings at the -txn transaction-
// workload grammar: malformed input must come back as an error, never
// a panic, and any accepted spec must survive config validation and
// round-trip the enabled/disabled contract ("", "off" and "none"
// disable; any parsed clause enables).
func FuzzParseTxn(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("none")
	f.Add("rate=0.1")
	f.Add("rate=0.05,window=8,mix=7/2.5/0.5,posted=0.5,service=8,queue=4,edge=true,reqs=100,shared=false,seed=42")
	f.Add("mix=1/0/0,edge=1")
	f.Add("rate=,window=")
	f.Add("mix=1/2")
	f.Add("mix=a/b/c")
	f.Add("rate=1e309")
	f.Add("queue=-3,shared=maybe")
	f.Add("unknown=1")
	f.Add("rate=0.1,,")
	f.Add("=,=,=")
	f.Fuzz(func(t *testing.T, s string) {
		txn, err := vichar.ParseTxn(s)
		if err != nil {
			return
		}
		// Mirror the grammar's normalization: spaces and tabs are
		// stripped anywhere, case is folded.
		norm := strings.ToLower(strings.NewReplacer(" ", "", "\t", "").Replace(s))
		switch norm {
		case "", "off", "none":
			if txn.Enabled {
				t.Fatalf("ParseTxn(%q) = enabled, want disabled", s)
			}
		default:
			if !txn.Enabled {
				t.Fatalf("ParseTxn(%q) accepted clauses but left the layer disabled", s)
			}
		}
		cfg := vichar.DefaultConfig()
		cfg.Txn = txn
		_ = cfg.Validate()
	})
}

// FuzzParse throws arbitrary strings at every text-parsing entry
// point of the public API: the enum parsers, the -faults grammar and
// the JSON config loader. Beyond not panicking, accepted inputs must
// uphold the parsers' contracts — enum values round-trip through
// their String form, parsed fault specs survive validation without
// crashing, and a loaded config re-saves and re-loads to an
// identical value.
func FuzzParse(f *testing.F) {
	f.Add("vichar")
	f.Add("seed=9,drop=0.001,corrupt=0.0005,retx=6,stall=0.01:12")
	f.Add("kill=5.e@100,freeze=3.w@50+8,drop1=0.1@20")
	f.Add(`{"Width": 8, "Height": 8, "Arch": "vichar"}`)
	f.Fuzz(func(t *testing.T, s string) {
		if arch, err := vichar.ParseBufferArch(s); err == nil {
			if back, err := vichar.ParseBufferArch(arch.String()); err != nil || back != arch {
				t.Fatalf("BufferArch %q -> %v did not round-trip (%v, %v)", s, arch, back, err)
			}
		}
		if alg, err := vichar.ParseRouting(s); err == nil {
			if back, err := vichar.ParseRouting(alg.String()); err != nil || back != alg {
				t.Fatalf("RoutingAlg %q -> %v did not round-trip (%v, %v)", s, alg, back, err)
			}
		}
		if tp, err := vichar.ParseTraffic(s); err == nil {
			if back, err := vichar.ParseTraffic(tp.String()); err != nil || back != tp {
				t.Fatalf("TrafficProcess %q -> %v did not round-trip (%v, %v)", s, tp, back, err)
			}
		}
		if dp, err := vichar.ParseDest(s); err == nil {
			if back, err := vichar.ParseDest(dp.String()); err != nil || back != dp {
				t.Fatalf("DestPattern %q -> %v did not round-trip (%v, %v)", s, dp, back, err)
			}
		}
		if faults, err := vichar.ParseFaults(s); err == nil {
			// A parsed spec plugs into a config and validates without
			// panicking; rejection (node off the mesh, etc.) is fine.
			cfg := vichar.DefaultConfig()
			cfg.Routing = vichar.MinimalAdaptive
			cfg.Faults = faults
			_ = cfg.Validate()
		}
		if txn, err := vichar.ParseTxn(s); err == nil {
			// A parsed transaction spec plugs into a config and validates
			// without panicking; rejection (bad rate, negative depths) is
			// fine.
			cfg := vichar.DefaultConfig()
			cfg.Txn = txn
			_ = cfg.Validate()
		}
		if cfg, err := vichar.LoadConfig(strings.NewReader(s)); err == nil {
			var buf bytes.Buffer
			if err := vichar.SaveConfig(&buf, cfg); err != nil {
				t.Fatalf("loaded config failed to save: %v", err)
			}
			again, err := vichar.LoadConfig(&buf)
			if err != nil {
				t.Fatalf("saved config failed to re-load: %v", err)
			}
			if !reflect.DeepEqual(cfg, again) {
				t.Fatalf("config did not round-trip:\n%+v\n%+v", cfg, again)
			}
		}
	})
}
