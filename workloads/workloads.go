// Package workloads generates application-style traffic from task
// communication graphs — the paper's stated future work ("evaluate
// the performance of ViChaR using workloads and traces from existing
// System-on-Chip architectures"). A TaskGraph names the cores of an
// SoC and the bandwidth of each producer→consumer stream; Trace turns
// it into a packet trace that vichar.Simulator.LoadTrace replays
// against any router architecture.
//
// Two built-in graphs follow the shape of the classic NoC mapping
// benchmarks: a Video Object Plane Decoder (VOPD-style, 12 cores) and
// an MPEG-4 decoder (9 cores). Their bandwidth figures are
// representative of the published benchmark tables (MB/s-scale
// ratios), not bit-exact copies; what matters for interconnect
// studies is the hot-path structure they induce.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"vichar"
)

// Edge is one producer→consumer stream of a task graph.
type Edge struct {
	Src, Dst string
	// Bandwidth is the stream's relative traffic volume (any unit;
	// only ratios matter).
	Bandwidth float64
}

// TaskGraph is an application's communication structure.
type TaskGraph struct {
	Name  string
	Tasks []string
	Edges []Edge
}

// Validate reports structural problems: unknown task names, empty
// graphs, non-positive bandwidths, self-loops.
func (g TaskGraph) Validate() error {
	if len(g.Tasks) == 0 || len(g.Edges) == 0 {
		return fmt.Errorf("workloads: graph %q has no tasks or edges", g.Name)
	}
	known := map[string]bool{}
	for _, t := range g.Tasks {
		if known[t] {
			return fmt.Errorf("workloads: graph %q repeats task %q", g.Name, t)
		}
		known[t] = true
	}
	for _, e := range g.Edges {
		if !known[e.Src] || !known[e.Dst] {
			return fmt.Errorf("workloads: graph %q edge %s->%s names an unknown task", g.Name, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("workloads: graph %q has a self-loop at %q", g.Name, e.Src)
		}
		if e.Bandwidth <= 0 {
			return fmt.Errorf("workloads: graph %q edge %s->%s has bandwidth %g", g.Name, e.Src, e.Dst, e.Bandwidth)
		}
	}
	return nil
}

// TotalBandwidth sums the edge volumes.
func (g TaskGraph) TotalBandwidth() float64 {
	t := 0.0
	for _, e := range g.Edges {
		t += e.Bandwidth
	}
	return t
}

// DefaultMapping places tasks on the mesh row-major (task i on node
// i). It fails if the mesh is smaller than the task count.
func (g TaskGraph) DefaultMapping(cfg vichar.Config) (map[string]int, error) {
	if len(g.Tasks) > cfg.Nodes() {
		return nil, fmt.Errorf("workloads: %d tasks do not fit a %dx%d mesh",
			len(g.Tasks), cfg.Width, cfg.Height)
	}
	m := make(map[string]int, len(g.Tasks))
	for i, t := range g.Tasks {
		m[t] = i
	}
	return m, nil
}

// Trace synthesizes a packet trace of the given length: each edge
// injects packets as an independent Bernoulli stream whose rate is
// its share of totalRate (network-wide flits/cycle), using the
// configuration's packet size. The mapping assigns tasks to nodes;
// nil uses DefaultMapping. Entries come back sorted by cycle, ready
// for Simulator.LoadTrace.
func (g TaskGraph) Trace(cfg vichar.Config, mapping map[string]int, cycles int64, totalRate float64, seed int64) ([]vichar.TraceEntry, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cycles < 1 || totalRate <= 0 {
		return nil, fmt.Errorf("workloads: need positive cycles and rate, got %d and %g", cycles, totalRate)
	}
	if mapping == nil {
		var err error
		mapping, err = g.DefaultMapping(cfg)
		if err != nil {
			return nil, err
		}
	}
	for _, task := range g.Tasks {
		node, ok := mapping[task]
		if !ok {
			return nil, fmt.Errorf("workloads: mapping misses task %q", task)
		}
		if node < 0 || node >= cfg.Nodes() {
			return nil, fmt.Errorf("workloads: task %q mapped to node %d outside the %d-node mesh", task, node, cfg.Nodes())
		}
	}

	total := g.TotalBandwidth()
	size := cfg.PacketSize
	rng := rand.New(rand.NewSource(seed))

	// Per-edge per-cycle packet probability.
	probs := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		flitRate := totalRate * e.Bandwidth / total
		probs[i] = flitRate / float64(size)
		if probs[i] > 1 {
			return nil, fmt.Errorf("workloads: edge %s->%s needs %.2f packets/cycle; lower totalRate",
				e.Src, e.Dst, probs[i])
		}
	}

	var entries []vichar.TraceEntry
	for now := int64(1); now <= cycles; now++ {
		for i, e := range g.Edges {
			if rng.Float64() < probs[i] {
				entries = append(entries, vichar.TraceEntry{
					Cycle: now,
					Src:   mapping[e.Src],
					Dst:   mapping[e.Dst],
					Size:  size,
				})
			}
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Cycle < entries[j].Cycle })
	return entries, nil
}

// FeasibleRate returns a network-wide injection rate (flits/cycle)
// the graph can sustain indefinitely: the binding constraints are the
// one-flit-per-cycle injection and ejection ports of the busiest
// task's node. The returned rate leaves the given headroom fraction
// (e.g. 0.1 keeps the hottest port at 90% load).
func (g TaskGraph) FeasibleRate(headroom float64) float64 {
	total := g.TotalBandwidth()
	if total == 0 {
		return 0
	}
	in := map[string]float64{}
	out := map[string]float64{}
	for _, e := range g.Edges {
		out[e.Src] += e.Bandwidth
		in[e.Dst] += e.Bandwidth
	}
	maxShare := 0.0
	for _, t := range g.Tasks {
		if s := in[t] / total; s > maxShare {
			maxShare = s
		}
		if s := out[t] / total; s > maxShare {
			maxShare = s
		}
	}
	if maxShare == 0 {
		return 0
	}
	return (1 - headroom) / maxShare
}

// VOPD returns a Video Object Plane Decoder task graph in the style
// of the classic NoC mapping benchmark: a 12-core pipeline from
// variable-length decoding through inverse DCT to VOP reconstruction
// and padding, with the memory feedback streams that make its traffic
// non-uniform.
func VOPD() TaskGraph {
	return TaskGraph{
		Name: "vopd",
		Tasks: []string{
			"vld", "run_le_dec", "inv_scan", "acdc_pred", "stripe_mem",
			"iquant", "idct", "up_samp", "vop_rec", "pad", "vop_mem", "arm",
		},
		Edges: []Edge{
			{"vld", "run_le_dec", 70},
			{"run_le_dec", "inv_scan", 362},
			{"inv_scan", "acdc_pred", 362},
			{"acdc_pred", "stripe_mem", 49},
			{"stripe_mem", "acdc_pred", 27},
			{"acdc_pred", "iquant", 313},
			{"iquant", "idct", 357},
			{"idct", "up_samp", 353},
			{"up_samp", "vop_rec", 300},
			{"vop_rec", "pad", 313},
			{"pad", "vop_mem", 94},
			{"vop_mem", "pad", 500},
			{"arm", "idct", 16},
			{"arm", "vop_mem", 16},
		},
	}
}

// MPEG4 returns an MPEG-4 decoder task graph in the style of the
// classic 9-core benchmark, dominated by the shared SDRAM and SRAM
// traffic that concentrates load on the memory nodes.
func MPEG4() TaskGraph {
	return TaskGraph{
		Name: "mpeg4",
		Tasks: []string{
			"vu", "au", "med_cpu", "rast", "sdram", "sram1", "sram2", "adsp", "up_samp",
		},
		Edges: []Edge{
			{"vu", "sdram", 190},
			{"au", "sdram", 60},
			{"med_cpu", "sdram", 600},
			{"rast", "sdram", 640},
			{"sdram", "up_samp", 250},
			{"sdram", "adsp", 173},
			{"adsp", "sram2", 201},
			{"sram1", "med_cpu", 40},
			{"med_cpu", "sram1", 40},
			{"up_samp", "rast", 250},
			{"sram2", "adsp", 80},
			{"au", "sram2", 67},
		},
	}
}

// Graphs returns every built-in task graph.
func Graphs() []TaskGraph { return []TaskGraph{VOPD(), MPEG4()} }
