package workloads_test

import (
	"fmt"
	"log"

	"vichar"
	"vichar/workloads"
)

// Synthesize a VOPD workload trace and replay it through the
// simulator.
func ExampleTaskGraph_Trace() {
	g := workloads.VOPD()
	cfg := vichar.DefaultConfig()
	cfg.Arch = vichar.ViChaR
	cfg.InjectionRate = 0 // the trace drives injection
	cfg.WarmupPackets = 100
	cfg.MeasurePackets = 400

	entries, err := g.Trace(cfg, nil, 10_000, g.FeasibleRate(0.2), 1)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := vichar.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.LoadTrace(entries); err != nil {
		log.Fatal(err)
	}
	res := sim.Run()
	fmt.Println(g.Name, res.MeasuredPackets, res.Saturated)
	// Output: vopd 400 false
}

// The built-in graphs and their shapes.
func ExampleGraphs() {
	for _, g := range workloads.Graphs() {
		fmt.Printf("%s: %d cores, %d streams\n", g.Name, len(g.Tasks), len(g.Edges))
	}
	// Output:
	// vopd: 12 cores, 14 streams
	// mpeg4: 9 cores, 12 streams
}
