package workloads

import (
	"math"
	"testing"

	"vichar"
)

func TestBuiltinGraphsValid(t *testing.T) {
	for _, g := range Graphs() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if g.TotalBandwidth() <= 0 {
			t.Errorf("%s: no bandwidth", g.Name)
		}
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	cases := []TaskGraph{
		{Name: "empty"},
		{Name: "dup", Tasks: []string{"a", "a"}, Edges: []Edge{{"a", "a", 1}}},
		{Name: "unknown", Tasks: []string{"a", "b"}, Edges: []Edge{{"a", "c", 1}}},
		{Name: "selfloop", Tasks: []string{"a", "b"}, Edges: []Edge{{"a", "a", 1}}},
		{Name: "zero-bw", Tasks: []string{"a", "b"}, Edges: []Edge{{"a", "b", 0}}},
	}
	for _, g := range cases {
		if g.Validate() == nil {
			t.Errorf("%s accepted", g.Name)
		}
	}
}

func TestDefaultMapping(t *testing.T) {
	cfg := vichar.DefaultConfig()
	m, err := VOPD().DefaultMapping(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 12 || m["vld"] != 0 {
		t.Fatalf("mapping wrong: %v", m)
	}
	small := cfg
	small.Width, small.Height = 2, 2
	if _, err := VOPD().DefaultMapping(small); err == nil {
		t.Fatal("12 tasks fit a 2x2 mesh?")
	}
}

func TestTraceRates(t *testing.T) {
	cfg := vichar.DefaultConfig()
	g := VOPD()
	const cycles = 40_000
	const rate = 4.0 // flits/cycle network-wide
	entries, err := g.Trace(cfg, nil, cycles, rate, 9)
	if err != nil {
		t.Fatal(err)
	}
	gotRate := float64(len(entries)*cfg.PacketSize) / cycles
	if math.Abs(gotRate-rate) > 0.15 {
		t.Fatalf("trace offers %.3f flits/cycle, want %.1f", gotRate, rate)
	}
	// Per-edge shares track bandwidth ratios: the hottest stream
	// (vop_mem->pad, 500) must carry more packets than the coldest
	// (arm->idct, 16).
	byPair := map[[2]int]int{}
	mapping, _ := g.DefaultMapping(cfg)
	for _, e := range entries {
		byPair[[2]int{e.Src, e.Dst}]++
		if e.Cycle < 1 || e.Cycle > cycles {
			t.Fatalf("entry outside the window: %+v", e)
		}
	}
	hot := byPair[[2]int{mapping["vop_mem"], mapping["pad"]}]
	cold := byPair[[2]int{mapping["arm"], mapping["idct"]}]
	if hot <= cold*5 {
		t.Fatalf("bandwidth ratios lost: hot=%d cold=%d", hot, cold)
	}
	// Sorted by cycle.
	for i := 1; i < len(entries); i++ {
		if entries[i].Cycle < entries[i-1].Cycle {
			t.Fatal("entries unsorted")
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	cfg := vichar.DefaultConfig()
	a, err := MPEG4().Trace(cfg, nil, 5_000, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MPEG4().Trace(cfg, nil, 5_000, 2.0, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestTraceRejects(t *testing.T) {
	cfg := vichar.DefaultConfig()
	if _, err := VOPD().Trace(cfg, nil, 0, 1, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := VOPD().Trace(cfg, nil, 100, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	// A rate driving one edge past 1 packet/cycle is unrealizable.
	if _, err := VOPD().Trace(cfg, nil, 100, 50, 1); err == nil {
		t.Error("unrealizable rate accepted")
	}
	// Mapping validation.
	bad := map[string]int{"vld": 999}
	if _, err := VOPD().Trace(cfg, bad, 100, 1, 1); err == nil {
		t.Error("incomplete/out-of-range mapping accepted")
	}
}

// End to end: a VOPD trace replays through the simulator on both
// architectures and every packet is delivered.
func TestTraceDrivesSimulator(t *testing.T) {
	for _, arch := range []vichar.BufferArch{vichar.Generic, vichar.ViChaR} {
		cfg := vichar.DefaultConfig()
		cfg.Arch = arch
		cfg.Width, cfg.Height = 4, 3 // exactly the 12 VOPD cores
		cfg.InjectionRate = 0
		cfg.WarmupPackets = 100
		cfg.MeasurePackets = 500

		entries, err := VOPD().Trace(cfg, nil, 10_000, 2.0, 5)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := vichar.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.LoadTrace(entries); err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		if res.MeasuredPackets != 500 || res.AvgLatency <= 0 {
			t.Fatalf("%v: VOPD replay failed: %+v", arch, res)
		}
	}
}

func TestFeasibleRate(t *testing.T) {
	g := VOPD()
	r := g.FeasibleRate(0.10)
	if r <= 0 {
		t.Fatal("no feasible rate")
	}
	// At the feasible rate, no edge exceeds its source/sink port.
	total := g.TotalBandwidth()
	in := map[string]float64{}
	out := map[string]float64{}
	for _, e := range g.Edges {
		out[e.Src] += e.Bandwidth
		in[e.Dst] += e.Bandwidth
	}
	for _, task := range g.Tasks {
		if load := r * in[task] / total; load > 0.901 {
			t.Fatalf("task %s ejection load %.3f above the headroom bound", task, load)
		}
		if load := r * out[task] / total; load > 0.901 {
			t.Fatalf("task %s injection load %.3f above the headroom bound", task, load)
		}
	}
	if (TaskGraph{Name: "x"}).FeasibleRate(0.1) != 0 {
		t.Error("empty graph has a rate")
	}
}
